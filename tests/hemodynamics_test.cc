// Tests for the haemodynamic response model, block designs, and evoked
// responses in the cohort simulator.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "sim/cohort.h"
#include "sim/hemodynamics.h"

namespace neuroprint::sim {
namespace {

TEST(HrfTest, CanonicalShape) {
  // Zero before stimulus onset.
  EXPECT_DOUBLE_EQ(DoubleGammaHrf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(DoubleGammaHrf(0.0), 0.0);
  // Peak near 5 s with value ~1 (per-gamma mode normalization).
  double peak_t = 0.0, peak_v = 0.0;
  for (double t = 0.0; t < 30.0; t += 0.05) {
    const double v = DoubleGammaHrf(t);
    if (v > peak_v) {
      peak_v = v;
      peak_t = t;
    }
  }
  EXPECT_NEAR(peak_t, 5.0, 0.5);
  EXPECT_NEAR(peak_v, 1.0, 0.1);
  // Post-stimulus undershoot: negative dip after ~10 s.
  double min_v = 1.0;
  for (double t = 8.0; t < 25.0; t += 0.05) {
    min_v = std::min(min_v, DoubleGammaHrf(t));
  }
  EXPECT_LT(min_v, -0.02);
  // Decays back to ~0 by 30 s.
  EXPECT_NEAR(DoubleGammaHrf(30.0), 0.0, 0.01);
}

TEST(HrfTest, KernelSampledAndNormalized) {
  const auto kernel = HrfKernel(0.72);
  ASSERT_TRUE(kernel.ok());
  EXPECT_EQ(kernel->size(), static_cast<std::size_t>(32.0 / 0.72) + 1);
  EXPECT_NEAR(*std::max_element(kernel->begin(), kernel->end()), 1.0, 1e-12);
  EXPECT_FALSE(HrfKernel(0.0).ok());
  EXPECT_FALSE(HrfKernel(0.72, -1.0).ok());
}

TEST(BlockDesignTest, AlternatesRestAndTask) {
  const auto design = BlockDesign(12, 3, 3);
  ASSERT_TRUE(design.ok());
  EXPECT_EQ(*design, (std::vector<double>{0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1}));
  const auto no_rest = BlockDesign(4, 2, 0);
  ASSERT_TRUE(no_rest.ok());
  EXPECT_EQ(*no_rest, (std::vector<double>{1, 1, 1, 1}));
  EXPECT_FALSE(BlockDesign(0, 2, 2).ok());
  EXPECT_FALSE(BlockDesign(8, 0, 2).ok());
}

TEST(ConvolveDesignTest, ImpulseReproducesKernel) {
  std::vector<double> impulse(20, 0.0);
  impulse[0] = 1.0;
  const std::vector<double> kernel{1.0, 0.5, 0.25};
  const auto out = ConvolveDesign(impulse, kernel);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0], 1.0);
  EXPECT_DOUBLE_EQ((*out)[1], 0.5);
  EXPECT_DOUBLE_EQ((*out)[2], 0.25);
  EXPECT_DOUBLE_EQ((*out)[3], 0.0);
}

TEST(ConvolveDesignTest, CausalAndTruncated) {
  const std::vector<double> design{0, 0, 1, 1};
  const std::vector<double> kernel{2.0, 1.0};
  const auto out = ConvolveDesign(design, kernel);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), design.size());
  EXPECT_DOUBLE_EQ((*out)[0], 0.0);
  EXPECT_DOUBLE_EQ((*out)[2], 2.0);
  EXPECT_DOUBLE_EQ((*out)[3], 3.0);
}

TEST(EvokedResponseTest, TaskScansGainBlockLockedSignal) {
  CohortConfig config;
  config.num_subjects = 4;
  config.num_regions = 30;
  config.frames_override = 200;
  config.seed = 11;
  config.evoked_amplitude = 0.0;
  auto quiet = CohortSimulator::Create(config);
  config.evoked_amplitude = 1.5;
  auto evoked = CohortSimulator::Create(config);
  ASSERT_TRUE(quiet.ok());
  ASSERT_TRUE(evoked.ok());

  // REST scans are identical with and without evoked responses.
  const auto rest_quiet =
      quiet->SimulateRegionSeries(0, TaskType::kRest, Encoding::kLeftRight);
  const auto rest_evoked =
      evoked->SimulateRegionSeries(0, TaskType::kRest, Encoding::kLeftRight);
  ASSERT_TRUE(rest_quiet.ok());
  ASSERT_TRUE(rest_evoked.ok());
  EXPECT_TRUE(linalg::AlmostEqual(*rest_quiet, *rest_evoked, 0.0));

  // Task scans differ, and the difference is exactly stimulus-locked:
  // identical across subjects up to per-region/subject gain.
  const auto task_quiet = quiet->SimulateRegionSeries(
      0, TaskType::kMotor, Encoding::kLeftRight);
  const auto task_evoked = evoked->SimulateRegionSeries(
      0, TaskType::kMotor, Encoding::kLeftRight);
  ASSERT_TRUE(task_quiet.ok());
  ASSERT_TRUE(task_evoked.ok());
  EXPECT_FALSE(linalg::AlmostEqual(*task_quiet, *task_evoked, 1e-9));

  const linalg::Matrix delta0 = *task_evoked - *task_quiet;
  // Some regions carry the evoked signal, others (loading 0) none.
  std::size_t active = 0, silent = 0;
  for (std::size_t r = 0; r < delta0.rows(); ++r) {
    const double norm = linalg::Norm2(delta0.RowCopy(r));
    if (norm > 1e-9) {
      ++active;
    } else {
      ++silent;
    }
  }
  EXPECT_GT(active, 0u);
  EXPECT_GT(silent, 0u);

  // The evoked time course is shared across subjects: deltas of two
  // subjects on an active region are perfectly correlated.
  const auto other_quiet = quiet->SimulateRegionSeries(
      1, TaskType::kMotor, Encoding::kLeftRight);
  const auto other_evoked = evoked->SimulateRegionSeries(
      1, TaskType::kMotor, Encoding::kLeftRight);
  const linalg::Matrix delta1 = *other_evoked - *other_quiet;
  for (std::size_t r = 0; r < delta0.rows(); ++r) {
    if (linalg::Norm2(delta0.RowCopy(r)) > 1e-9 &&
        linalg::Norm2(delta1.RowCopy(r)) > 1e-9) {
      EXPECT_NEAR(std::fabs(linalg::PearsonCorrelation(delta0.RowCopy(r),
                                                       delta1.RowCopy(r))),
                  1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace neuroprint::sim
