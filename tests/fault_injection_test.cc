// Acceptance tests for the robustness layer: seeded fault injection
// driving partial-failure batch semantics end to end. The headline case
// is the ISSUE-5 scenario — a 12-subject cohort with 2 subjects
// fault-injected (one corrupt-read error, one all-NaN scan) must complete
// under skip-and-report with the remaining 10 subjects bit-identical (at
// 1, 2, and 8 threads) to a clean run restricted to the same subjects,
// while fail-fast surfaces the lowest-index subject's error.

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "atlas/synthetic_atlas.h"
#include "connectome/group_matrix.h"
#include "connectome/group_matrix_io.h"
#include "connectome/matrix_store.h"
#include "core/attack.h"
#include "nifti/nifti_io.h"
#include "preprocess/pipeline.h"
#include "service/identification_index.h"
#include "service/synthetic_gallery.h"
#include "sim/cohort.h"
#include "sim/voxel_render.h"
#include "util/batch.h"
#include "util/fault.h"
#include "util/random.h"

namespace neuroprint {
namespace {

// Subject index 2 ("S0003") fails the simulate stage with an injected
// read error; subject index 7 ("S0008") produces an all-NaN scan, caught
// by the validate stage. Keyed rules stay deterministic at any thread
// count.
constexpr char kCohortSchedule[] =
    "cohort.simulate_scan#2=error:CorruptData:truncated gzip stream "
    "(injected);"
    "cohort.simulate_scan#7=nan";

sim::CohortConfig SmallCohortConfig() {
  sim::CohortConfig config;
  config.num_subjects = 12;
  config.num_regions = 16;
  config.frames_override = 60;
  config.seed = 99;
  return config;
}

void ExpectBitIdentical(const connectome::GroupMatrix& a,
                        const connectome::GroupMatrix& b) {
  ASSERT_EQ(a.num_features(), b.num_features());
  ASSERT_EQ(a.num_subjects(), b.num_subjects());
  EXPECT_EQ(a.subject_ids(), b.subject_ids());
  for (std::size_t j = 0; j < a.num_subjects(); ++j) {
    const linalg::Vector col_a = a.SubjectColumn(j);
    const linalg::Vector col_b = b.SubjectColumn(j);
    ASSERT_EQ(col_a.size(), col_b.size());
    for (std::size_t i = 0; i < col_a.size(); ++i) {
      ASSERT_EQ(col_a[i], col_b[i]) << "subject " << j << " feature " << i;
    }
  }
}

TEST(FaultInjectionCohortTest, SkipAndReportSurvivorsBitIdenticalAcrossThreads) {
  // Clean 12-subject run, restricted to the 10 subjects that survive the
  // injected schedule — the bitwise reference for every faulted run.
  auto clean_sim = sim::CohortSimulator::Create(SmallCohortConfig());
  ASSERT_TRUE(clean_sim.ok()) << clean_sim.status();
  auto clean = clean_sim->BuildGroupMatrix(sim::TaskType::kRest,
                                           sim::Encoding::kLeftRight);
  ASSERT_TRUE(clean.ok()) << clean.status();
  const std::vector<std::size_t> survivors{0, 1, 3, 4, 5, 6, 8, 9, 10, 11};
  auto reference = clean->RestrictToSubjects(survivors);
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    sim::CohortConfig config = SmallCohortConfig();
    config.failure_policy = FailurePolicy::SkipAndReport();
    config.fault.schedule = kCohortSchedule;
    config.parallel.num_threads = threads;
    auto faulted_sim = sim::CohortSimulator::Create(config);
    ASSERT_TRUE(faulted_sim.ok()) << faulted_sim.status();

    BatchReport report;
    auto faulted = faulted_sim->BuildGroupMatrixWithReport(
        sim::TaskType::kRest, sim::Encoding::kLeftRight,
        /*multisite_noise_fraction=*/0.0, &report);
    ASSERT_TRUE(faulted.ok()) << faulted.status();
    ExpectBitIdentical(*faulted, *reference);

    // The report names both failures with their stages, ascending index.
    EXPECT_EQ(report.attempted, 12u);
    ASSERT_EQ(report.failed.size(), 2u) << report.ToString();
    EXPECT_EQ(report.num_succeeded(), 10u);
    EXPECT_EQ(report.failed[0].index, 2u);
    EXPECT_EQ(report.failed[0].id, "S0003");
    EXPECT_EQ(report.failed[0].stage, "simulate");
    EXPECT_EQ(report.failed[0].status.code(), StatusCode::kCorruptData);
    EXPECT_NE(report.failed[0].status.message().find(
                  "truncated gzip stream (injected)"),
              std::string::npos);
    EXPECT_EQ(report.failed[1].index, 7u);
    EXPECT_EQ(report.failed[1].id, "S0008");
    EXPECT_EQ(report.failed[1].stage, "validate");
    EXPECT_EQ(report.failed[1].status.code(), StatusCode::kCorruptData);
  }
}

TEST(FaultInjectionCohortTest, FailFastReturnsLowestIndexSubjectError) {
  sim::CohortConfig config = SmallCohortConfig();
  config.failure_policy = FailurePolicy::FailFast();
  config.fault.schedule = kCohortSchedule;
  config.parallel.num_threads = 4;
  auto simulator = sim::CohortSimulator::Create(config);
  ASSERT_TRUE(simulator.ok());
  const auto result = simulator->BuildGroupMatrix(sim::TaskType::kRest,
                                                  sim::Encoding::kLeftRight);
  ASSERT_FALSE(result.ok());
  // Subject 2's simulate-stage error, not subject 7's validate error —
  // lowest index wins deterministically even with both firing in parallel.
  EXPECT_EQ(result.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(
      result.status().message().find("truncated gzip stream (injected)"),
      std::string::npos)
      << result.status();
}

TEST(FaultInjectionCohortTest, QuorumPolicyGatesOnSurvivorFraction) {
  sim::CohortConfig config = SmallCohortConfig();
  config.fault.schedule = kCohortSchedule;

  // 10/12 survivors = 0.833: a 0.9 quorum fails the whole batch...
  config.failure_policy = FailurePolicy::Quorum(0.9);
  auto strict_sim = sim::CohortSimulator::Create(config);
  ASSERT_TRUE(strict_sim.ok());
  BatchReport strict_report;
  const auto strict = strict_sim->BuildGroupMatrixWithReport(
      sim::TaskType::kRest, sim::Encoding::kLeftRight, 0.0, &strict_report);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(strict.status().message().find("quorum"), std::string::npos);
  // The aggregate error carries the per-item accounting.
  EXPECT_NE(strict.status().message().find("S0003"), std::string::npos);

  // ...while a 0.8 quorum passes with the same survivors.
  config.failure_policy = FailurePolicy::Quorum(0.8);
  auto lenient_sim = sim::CohortSimulator::Create(config);
  ASSERT_TRUE(lenient_sim.ok());
  const auto lenient = lenient_sim->BuildGroupMatrixWithReport(
      sim::TaskType::kRest, sim::Encoding::kLeftRight, 0.0, nullptr);
  ASSERT_TRUE(lenient.ok()) << lenient.status();
  EXPECT_EQ(lenient->num_subjects(), 10u);
}

// --- Attack-level screening -------------------------------------------------

connectome::GroupMatrix MakeGroup(std::size_t features, std::size_t subjects,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<linalg::Vector> columns(subjects);
  std::vector<std::string> ids;
  for (std::size_t j = 0; j < subjects; ++j) {
    columns[j].resize(features);
    for (double& v : columns[j]) v = rng.Gaussian();
    ids.push_back("subj-" + std::to_string(j));
  }
  return *connectome::GroupMatrix::FromFeatureColumns(columns, ids);
}

connectome::GroupMatrix PoisonSubject(const connectome::GroupMatrix& group,
                                      std::size_t subject) {
  std::vector<linalg::Vector> columns;
  for (std::size_t j = 0; j < group.num_subjects(); ++j) {
    linalg::Vector column = group.SubjectColumn(j);
    if (j == subject) {
      column[column.size() / 2] = std::numeric_limits<double>::quiet_NaN();
    }
    columns.push_back(std::move(column));
  }
  return *connectome::GroupMatrix::FromFeatureColumns(columns,
                                                      group.subject_ids());
}

TEST(FaultInjectionAttackTest, FitScreensUnusableSubjectsUnderSkipPolicy) {
  const connectome::GroupMatrix known = MakeGroup(64, 8, 31);
  const connectome::GroupMatrix poisoned = PoisonSubject(known, 3);

  core::AttackOptions fail_fast;
  fail_fast.num_features = 16;
  const auto strict = core::DeanonymizationAttack::Fit(poisoned, fail_fast);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kCorruptData);

  core::AttackOptions skip;
  skip.num_features = 16;
  skip.failure_policy = FailurePolicy::SkipAndReport();
  BatchReport report;
  const auto attack = core::DeanonymizationAttack::Fit(poisoned, skip, &report);
  ASSERT_TRUE(attack.ok()) << attack.status();
  EXPECT_EQ(report.attempted, 8u);
  ASSERT_EQ(report.failed.size(), 1u);
  EXPECT_EQ(report.failed[0].index, 3u);
  EXPECT_EQ(report.failed[0].id, "subj-3");
  EXPECT_EQ(report.failed[0].stage, "fit_screen");
}

TEST(FaultInjectionAttackTest, IdentifyScreensAndCoversSurvivorsOnly) {
  const connectome::GroupMatrix known = MakeGroup(64, 8, 31);
  core::AttackOptions options;
  options.num_features = 16;
  options.failure_policy = FailurePolicy::SkipAndReport();
  const auto attack = core::DeanonymizationAttack::Fit(known, options);
  ASSERT_TRUE(attack.ok()) << attack.status();

  const connectome::GroupMatrix poisoned = PoisonSubject(known, 5);
  BatchReport report;
  const auto result = attack->Identify(poisoned, &report);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(report.failed.size(), 1u);
  EXPECT_EQ(report.failed[0].id, "subj-5");
  EXPECT_EQ(report.failed[0].stage, "identify_screen");
  // Survivor coverage: 7 predictions, all correct on self-identification.
  EXPECT_EQ(result->predicted_ids.size(), 7u);
  EXPECT_DOUBLE_EQ(result->accuracy, 1.0);
}

TEST(FaultInjectionAttackTest, InjectedFitPointFailsTheFit) {
  const connectome::GroupMatrix known = MakeGroup(32, 4, 17);
  core::AttackOptions options;
  options.num_features = 8;
  options.fault.schedule = "attack.fit=error:NotConverged:injected";
  const auto attack = core::DeanonymizationAttack::Fit(known, options);
  ASSERT_FALSE(attack.ok());
  EXPECT_EQ(attack.status().code(), StatusCode::kNotConverged);
}

// --- Pipeline-level degradation and batches ---------------------------------

class FaultInjectionPipelineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kRegions = 10;

  void SetUp() override {
    atlas::SyntheticAtlasConfig atlas_config;
    atlas_config.nx = 12;
    atlas_config.ny = 12;
    atlas_config.nz = 10;
    atlas_config.num_regions = kRegions;
    atlas_config.seed = 5;
    auto atlas = atlas::GenerateSyntheticAtlas(atlas_config);
    ASSERT_TRUE(atlas.ok());
    atlas_ = std::move(atlas).value();

    sim::CohortConfig cohort_config;
    cohort_config.num_subjects = 3;
    cohort_config.num_regions = kRegions;
    cohort_config.frames_override = 24;
    cohort_config.seed = 13;
    auto cohort = sim::CohortSimulator::Create(cohort_config);
    ASSERT_TRUE(cohort.ok());
    Rng rng(23);
    for (std::size_t s = 0; s < 3; ++s) {
      auto series = cohort->SimulateRegionSeries(s, sim::TaskType::kRest,
                                                 sim::Encoding::kLeftRight);
      ASSERT_TRUE(series.ok());
      auto run = sim::RenderVoxelRun(atlas_, *series, {}, rng);
      ASSERT_TRUE(run.ok());
      runs_.push_back(std::move(run).value());
    }
  }

  preprocess::PipelineConfig FastConfig() const {
    preprocess::PipelineConfig config;
    config.slice_time_correction = false;
    config.smoothing_fwhm_mm = 0.0;
    config.temporal_filter = preprocess::TemporalFilter::kNone;
    config.global_signal_regression = false;
    return config;
  }

  atlas::Atlas atlas_;
  std::vector<image::Volume4D> runs_;
};

TEST_F(FaultInjectionPipelineTest, MotionFailureDegradesToIdentityUnderSkip) {
  preprocess::PipelineConfig config = FastConfig();
  config.failure_policy = FailurePolicy::SkipAndReport();
  config.fault.schedule = "pipeline.motion_correct#3=error";
  const auto output = preprocess::RunPipeline(runs_[0], atlas_, config);
  ASSERT_TRUE(output.ok()) << output.status();
  // Frame 3 fell back to the identity transform and was recorded.
  ASSERT_EQ(output->degraded_frames.size(), 1u);
  EXPECT_EQ(output->degraded_frames[0], 3u);
  ASSERT_GT(output->motion.size(), 3u);
  EXPECT_EQ(output->motion[3].translate_x, 0.0);
  EXPECT_EQ(output->motion[3].rotate_z, 0.0);
  EXPECT_EQ(output->region_series.rows(), kRegions);
}

TEST_F(FaultInjectionPipelineTest, MotionFailureFailsFastByDefault) {
  preprocess::PipelineConfig config = FastConfig();
  config.fault.schedule = "pipeline.motion_correct#3=error:Internal:injected";
  const auto output = preprocess::RunPipeline(runs_[0], atlas_, config);
  ASSERT_FALSE(output.ok());
  EXPECT_EQ(output.status().code(), StatusCode::kInternal);
}

TEST_F(FaultInjectionPipelineTest, BatchSkipsFailedRunAndReportsIt) {
  preprocess::PipelineConfig config = FastConfig();
  config.failure_policy = FailurePolicy::SkipAndReport();
  config.fault.schedule =
      "pipeline.batch_item#1=error:IOError:disk error (injected)";
  const std::vector<std::string> ids{"run-a", "run-b", "run-c"};
  const auto batch =
      preprocess::RunPipelineBatch(runs_, ids, atlas_, config);
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->outputs.size(), 2u);
  EXPECT_EQ(batch->indices, (std::vector<std::size_t>{0, 2}));
  ASSERT_EQ(batch->report.failed.size(), 1u);
  EXPECT_EQ(batch->report.failed[0].index, 1u);
  EXPECT_EQ(batch->report.failed[0].id, "run-b");
  EXPECT_EQ(batch->report.failed[0].status.code(), StatusCode::kIOError);

  // Survivors match standalone runs of the same pipeline (no cross-talk
  // from the failed item).
  preprocess::PipelineConfig clean = FastConfig();
  const auto solo = preprocess::RunPipeline(runs_[2], atlas_, clean);
  ASSERT_TRUE(solo.ok());
  const linalg::Matrix& batched = batch->outputs[1].region_series;
  ASSERT_EQ(batched.rows(), solo->region_series.rows());
  ASSERT_EQ(batched.cols(), solo->region_series.cols());
  for (std::size_t r = 0; r < batched.rows(); ++r) {
    for (std::size_t t = 0; t < batched.cols(); ++t) {
      ASSERT_EQ(batched(r, t), solo->region_series(r, t));
    }
  }
}

TEST_F(FaultInjectionPipelineTest, BatchFailsFastOnLowestIndexFailure) {
  preprocess::PipelineConfig config = FastConfig();
  config.fault.schedule =
      "pipeline.batch_item#1=error:IOError:first;"
      "pipeline.batch_item#2=error:Internal:second";
  const std::vector<std::string> ids;
  const auto batch = preprocess::RunPipelineBatch(runs_, ids, atlas_, config);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kIOError);
  EXPECT_EQ(batch.status().message(), "first");
}

TEST_F(FaultInjectionPipelineTest, AllItemsFailingIsAnErrorEvenUnderSkip) {
  preprocess::PipelineConfig config = FastConfig();
  config.failure_policy = FailurePolicy::SkipAndReport();
  config.fault.schedule = "pipeline.batch_item=error";
  const std::vector<std::string> ids;
  const auto batch = preprocess::RunPipelineBatch(runs_, ids, atlas_, config);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kFailedPrecondition);
}

// --- NIfTI read-path injection ----------------------------------------------

TEST(FaultInjectionNiftiTest, ReadPointInjectsBeforeTouchingDisk) {
  fault::ScopedSchedule scoped("nifti.read=error:IOError:injected read fail");
  ASSERT_TRUE(scoped.status().ok());
  // The injection fires before any filesystem access, so the injected
  // message comes back instead of the missing-file error.
  const auto image = nifti::ReadNifti("/nonexistent/fault-injected.nii");
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kIOError);
  EXPECT_EQ(image.status().message(), "injected read fail");
}

// ---------------------------------------------------------------------------
// Identification service: faulted enrollment and probing

service::SyntheticGalleryConfig ServiceGallery() {
  service::SyntheticGalleryConfig gallery;
  gallery.num_subjects = 22;
  gallery.num_features = 48;
  gallery.seed = 0xfa017ULL;
  return gallery;
}

TEST(FaultInjectionServiceTest, FaultedEnrollmentSurvivorsBitIdentical) {
  // Two of ten enrolled subjects fault (one injected read error, one
  // all-NaN column): skip-and-report must drop exactly those two and
  // leave the index bit-identical to a clean enrollment of the other
  // eight.
  const auto gallery = ServiceGallery();
  auto reference = service::MakeSyntheticGallerySlice(gallery, 0, 0, 12);
  auto tail = service::MakeSyntheticGallerySlice(gallery, 0, 12, 22);
  ASSERT_TRUE(reference.ok() && tail.ok());

  service::IndexOptions skip;
  skip.num_features = 24;
  skip.failure_policy = FailurePolicy::SkipAndReport();
  auto faulted = service::IdentificationIndex::Create(*reference, skip);
  ASSERT_TRUE(faulted.ok()) << faulted.status();
  {
    fault::ScopedSchedule schedule(
        "service.enroll#2=error:CorruptData:injected scanner fault;"
        "service.enroll#7=nan");
    ASSERT_TRUE(schedule.status().ok());
    BatchReport report;
    ASSERT_TRUE(faulted->EnrollBatch(*tail, &report).ok());
    EXPECT_EQ(report.attempted, 10u);
    ASSERT_EQ(report.failed.size(), 2u);
    EXPECT_EQ(report.failed[0].index, 2u);
    EXPECT_EQ(report.failed[0].id, tail->subject_ids()[2]);
    EXPECT_EQ(report.failed[0].stage, "enroll_screen");
    EXPECT_EQ(report.failed[0].status.code(), StatusCode::kCorruptData);
    EXPECT_EQ(report.failed[1].index, 7u);
    EXPECT_EQ(report.failed[1].status.code(), StatusCode::kCorruptData);
  }
  EXPECT_EQ(faulted->size(), 20u);

  auto clean = service::IdentificationIndex::Create(*reference, skip);
  ASSERT_TRUE(clean.ok());
  auto restricted = tail->RestrictToSubjects({0, 1, 3, 4, 5, 6, 8, 9});
  ASSERT_TRUE(restricted.ok());
  ASSERT_TRUE(clean->EnrollBatch(*restricted).ok());
  EXPECT_EQ(faulted->DebugStateString(), clean->DebugStateString());
}

TEST(FaultInjectionServiceTest, FaultedEnrollmentFailsFastAndLeavesIndex) {
  const auto gallery = ServiceGallery();
  auto reference = service::MakeSyntheticGallerySlice(gallery, 0, 0, 12);
  auto tail = service::MakeSyntheticGallerySlice(gallery, 0, 12, 22);
  ASSERT_TRUE(reference.ok() && tail.ok());

  service::IndexOptions strict;
  strict.num_features = 24;  // Default policy: fail fast.
  auto index = service::IdentificationIndex::Create(*reference, strict);
  ASSERT_TRUE(index.ok());
  const std::string before = index->DebugStateString();
  {
    fault::ScopedSchedule schedule(
        "service.enroll#3=error:CorruptData:injected scanner fault");
    ASSERT_TRUE(schedule.status().ok());
    const Status status = index->EnrollBatch(*tail);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kCorruptData);
  }
  // Fail-fast is atomic: no partial batch was committed.
  EXPECT_EQ(index->size(), 12u);
  EXPECT_EQ(index->DebugStateString(), before);
}

TEST(FaultInjectionServiceTest, FaultedProbeIsScreenedUnderSkipPolicy) {
  const auto gallery = ServiceGallery();
  auto reference = service::MakeSyntheticGallerySlice(gallery, 0, 0, 22);
  ASSERT_TRUE(reference.ok());
  service::IndexOptions skip;
  skip.num_features = 24;
  skip.failure_policy = FailurePolicy::SkipAndReport();
  auto index = service::IdentificationIndex::Create(*reference, skip);
  ASSERT_TRUE(index.ok());

  auto probes = service::MakeSyntheticGallerySlice(gallery, 1, 0, 6);
  ASSERT_TRUE(probes.ok());
  fault::ScopedSchedule schedule("service.probe#1=nan");
  ASSERT_TRUE(schedule.status().ok());
  BatchReport report;
  auto result = index->IdentifyBatch(*probes, &report);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(report.attempted, 6u);
  ASSERT_EQ(report.failed.size(), 1u);
  EXPECT_EQ(report.failed[0].index, 1u);
  EXPECT_EQ(report.failed[0].stage, "probe_screen");
  // Survivors cover the other five probes, all correctly identified.
  ASSERT_EQ(result->matches.size(), 5u);
  EXPECT_DOUBLE_EQ(result->accuracy, 1.0);
  for (std::size_t p = 0; p < result->matches.size(); ++p) {
    EXPECT_EQ(result->matches[p].subject_id, result->probe_ids[p]);
  }
}

// ---------------------------------------------------------------------------
// Out-of-core fault points: `io.stream` (file-backed tile reads) and
// `io.spill` (spill-file append / read-back).

std::string OutOfCoreTempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(FaultInjectionOutOfCoreTest, StreamPointInjectsErrorIntoFileReads) {
  const auto gallery = ServiceGallery();
  auto group = service::MakeSyntheticGallerySlice(gallery, 0, 0, 6);
  ASSERT_TRUE(group.ok());
  const std::string path = OutOfCoreTempPath("fault_stream.npgm");
  ASSERT_TRUE(connectome::WriteGroupMatrix(path, *group).ok());
  auto store = connectome::FileMatrixStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();

  {
    fault::ScopedSchedule schedule(
        "io.stream#2=error:IOError:injected stream error");
    ASSERT_TRUE(schedule.status().ok());
    linalg::Matrix tile;
    // Columns before the poisoned one still read.
    EXPECT_TRUE((*store)->ReadColumns(0, 2, &tile).ok());
    const Status hit = (*store)->ReadColumns(0, 6, &tile);
    EXPECT_EQ(hit.code(), StatusCode::kIOError);
    EXPECT_EQ(hit.message(), "injected stream error");
  }

  // The streamed fit propagates an injected store failure regardless of
  // the failure policy: the store, not a subject, failed.
  core::AttackOptions options;
  options.num_features = 16;
  options.failure_policy = FailurePolicy::SkipAndReport();
  options.fault.schedule = "io.stream#1=error:IOError:stream died (injected)";
  const auto attack =
      core::DeanonymizationAttack::FitStreamed(**store, options);
  ASSERT_FALSE(attack.ok());
  EXPECT_EQ(attack.status().code(), StatusCode::kIOError);
}

TEST(FaultInjectionOutOfCoreTest, StreamPointNanIsScreenedLikeCorruptData) {
  const auto gallery = ServiceGallery();
  auto group = service::MakeSyntheticGallerySlice(gallery, 0, 0, 6);
  ASSERT_TRUE(group.ok());
  const std::string path = OutOfCoreTempPath("fault_stream_nan.npgm");
  ASSERT_TRUE(connectome::WriteGroupMatrix(path, *group).ok());
  auto store = connectome::FileMatrixStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();

  core::AttackOptions options;
  options.num_features = 12;
  options.failure_policy = FailurePolicy::SkipAndReport();
  options.fault.schedule = "io.stream#1=nan";
  BatchReport report;
  const auto attack = core::DeanonymizationAttack::FitStreamed(
      **store, options, {}, &report);
  ASSERT_TRUE(attack.ok()) << attack.status();
  EXPECT_EQ(report.attempted, 6u);
  ASSERT_EQ(report.failed.size(), 1u);
  EXPECT_EQ(report.failed[0].index, 1u);
  EXPECT_EQ(report.failed[0].stage, "fit_screen");
  EXPECT_EQ(report.failed[0].status.code(), StatusCode::kCorruptData);
}

TEST(FaultInjectionOutOfCoreTest, SpillWriteFailureLeavesIndexUntouched) {
  const auto gallery = ServiceGallery();
  auto reference = service::MakeSyntheticGallerySlice(gallery, 0, 0, 12);
  auto tail = service::MakeSyntheticGallerySlice(gallery, 0, 12, 22);
  ASSERT_TRUE(reference.ok() && tail.ok());
  service::IndexOptions options;
  options.num_features = 24;
  options.failure_policy = FailurePolicy::SkipAndReport();
  auto index = service::IdentificationIndex::Create(*reference, options);
  ASSERT_TRUE(index.ok()) << index.status();
  const std::string before = index->DebugStateString();

  const connectome::InMemoryMatrixStore store(*tail);
  {
    fault::ScopedSchedule schedule(
        "io.spill#1=error:IOError:spill device full (injected)");
    ASSERT_TRUE(schedule.status().ok());
    const Status status = index->EnrollStream(store);
    EXPECT_EQ(status.code(), StatusCode::kIOError);
  }
  EXPECT_EQ(index->DebugStateString(), before);
  EXPECT_EQ(index->size(), 12u);
}

TEST(FaultInjectionOutOfCoreTest, SpillReadBackFailureLeavesIndexUntouched) {
  // @2 targets the second arrival at (io.spill, column 3): the append
  // succeeds, the commit-time read-back fails — the spill-file-deleted-
  // mid-batch scenario, injected deterministically.
  const auto gallery = ServiceGallery();
  auto reference = service::MakeSyntheticGallerySlice(gallery, 0, 0, 12);
  auto tail = service::MakeSyntheticGallerySlice(gallery, 0, 12, 22);
  ASSERT_TRUE(reference.ok() && tail.ok());
  service::IndexOptions options;
  options.num_features = 24;
  auto index = service::IdentificationIndex::Create(*reference, options);
  ASSERT_TRUE(index.ok()) << index.status();
  const std::string before = index->DebugStateString();

  const connectome::InMemoryMatrixStore store(*tail);
  {
    fault::ScopedSchedule schedule(
        "io.spill#3@2=error:IOError:spill file vanished (injected)");
    ASSERT_TRUE(schedule.status().ok());
    const Status status = index->EnrollStream(store, nullptr, 4);
    EXPECT_EQ(status.code(), StatusCode::kIOError);
  }
  EXPECT_EQ(index->DebugStateString(), before);

  // With no fault armed the same call commits all ten subjects.
  ASSERT_TRUE(index->EnrollStream(store, nullptr, 4).ok());
  EXPECT_EQ(index->size(), 22u);
}

TEST_F(FaultInjectionPipelineTest, SpillFaultFailsBoundedBatch) {
  preprocess::PipelineConfig config = FastConfig();
  config.max_in_flight = 1;
  config.failure_policy = FailurePolicy::SkipAndReport();
  config.fault.schedule = "io.spill#0=error:IOError:spill device full "
                          "(injected)";
  const preprocess::RunSource source =
      [this](std::size_t i) -> Result<image::Volume4D> { return runs_[i]; };
  const auto batch =
      preprocess::RunPipelineBatch(source, 3, {}, atlas_, config);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace neuroprint
