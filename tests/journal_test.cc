// Tests for the crash-safe file primitives: CRC-32C vectors, atomic
// whole-file replacement, journal record framing, torn-tail recovery,
// and the torn/crash fault-injection semantics the durability tier
// builds on.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/crc32c.h"
#include "util/endian.h"
#include "util/fault.h"
#include "util/journal.h"

namespace neuroprint {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::vector<std::uint8_t> bytes;
  char c;
  while (in.get(c)) bytes.push_back(static_cast<std::uint8_t>(c));
  return bytes;
}

std::uint64_t FileSize(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  EXPECT_FALSE(ec) << path;
  return static_cast<std::uint64_t>(size);
}

// --- CRC-32C --------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // iSCSI (RFC 3720) check value.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
  // 32 zero bytes (RFC 3720 test pattern).
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c::Value(zeros.data(), zeros.size()), 0x8A9136AAu);
  // 32 0xff bytes.
  const std::vector<std::uint8_t> ones(32, 0xff);
  EXPECT_EQ(crc32c::Value(ones.data(), ones.size()), 0x62A8AB43u);
  EXPECT_EQ(crc32c::Value(nullptr, 0), 0u);
}

TEST(Crc32cTest, ExtendComposesLikeOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c::Value(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = crc32c::Extend(0, data.data(), split);
    crc = crc32c::Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 37);
  }
  const std::uint32_t clean = crc32c::Value(data.data(), data.size());
  for (std::size_t byte = 0; byte < data.size(); byte += 7) {
    data[byte] ^= 0x10;
    EXPECT_NE(crc32c::Value(data.data(), data.size()), clean);
    data[byte] ^= 0x10;
  }
}

// --- AtomicFileWriter -----------------------------------------------

TEST(AtomicFileWriterTest, CommitPublishesExactBytes) {
  const std::string path = TempPath("atomic_basic.bin");
  auto writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->Append("hello ", 6).ok());
  ASSERT_TRUE(writer->Append("world", 5).ok());
  EXPECT_EQ(writer->bytes_written(), 11u);
  ASSERT_TRUE(writer->Commit().ok());
  const std::vector<std::uint8_t> bytes = ReadAll(path);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "hello world");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicFileWriterTest, AbandonLeavesTargetUntouched) {
  const std::string path = TempPath("atomic_abandon.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "old", 3).ok());
  {
    auto writer = AtomicFileWriter::Create(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append("new contents", 12).ok());
    // Destructor abandons: temp unlinked, target untouched.
  }
  const std::vector<std::uint8_t> bytes = ReadAll(path);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "old");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(AtomicFileWriterTest, TornWriteCrashesWriterAndKeepsOldFile) {
  const std::string path = TempPath("atomic_torn.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "old", 3).ok());
  fault::ScopedSchedule schedule("io.snapshot@2=torn:4");
  ASSERT_TRUE(schedule.status().ok());
  fault::ResetHitCounters();
  auto writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  const Status torn = writer->Append("0123456789", 10);
  EXPECT_EQ(torn.code(), StatusCode::kIOError);
  // The writer is dead: every later call refuses, including Append.
  EXPECT_EQ(writer->Append("x", 1).code(), StatusCode::kIOError);
  EXPECT_EQ(writer->Commit().code(), StatusCode::kIOError);
  // A dead process cannot clean up: the torn temp file stays...
  writer->Abandon();
  EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(FileSize(path + ".tmp"), 4u);
  // ...and the published file never changed.
  const std::vector<std::uint8_t> bytes = ReadAll(path);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "old");
}

TEST(AtomicFileWriterTest, CrashAfterRenameStillPublishes) {
  const std::string path = TempPath("atomic_crash_rename.bin");
  ASSERT_TRUE(AtomicWriteFile(path, "old", 3).ok());
  // Arrivals: create gate (1), append write (2), then Commit's gated
  // sites fsync-temp (3), rename (4), fsync-dir (5); kill the writer
  // right after the rename syscall completes.
  fault::ScopedSchedule schedule("io.snapshot@4=crash");
  ASSERT_TRUE(schedule.status().ok());
  fault::ResetHitCounters();
  auto writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE(writer->Append("new", 3).ok());
  EXPECT_EQ(writer->Commit().code(), StatusCode::kIOError);
  // rename(2) already happened: the new file is fully in place.
  const std::vector<std::uint8_t> bytes = ReadAll(path);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "new");
}

TEST(AtomicFileWriterTest, CleanErrorInjection) {
  const std::string path = TempPath("atomic_error.bin");
  fault::ScopedSchedule schedule(
      "io.snapshot@2=error:IOError:disk full");
  ASSERT_TRUE(schedule.status().ok());
  fault::ResetHitCounters();
  auto writer = AtomicFileWriter::Create(path);
  ASSERT_TRUE(writer.ok());
  const Status status = writer->Append("data", 4);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("disk full"), std::string::npos);
  // Clean failure, not a crash: Abandon still cleans up.
  writer->Abandon();
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// --- JournalWriter / ReplayJournal ----------------------------------

std::vector<std::vector<std::uint8_t>> ReplayAll(const std::string& path,
                                                 JournalScan* scan_out) {
  std::vector<std::vector<std::uint8_t>> records;
  auto scan = ReplayJournal(
      path, [&records](const std::uint8_t* payload, std::size_t size) {
        records.emplace_back(payload, payload + size);
        return Status::OK();
      });
  EXPECT_TRUE(scan.ok()) << scan.status();
  if (scan.ok() && scan_out != nullptr) *scan_out = *scan;
  return records;
}

TEST(JournalTest, AppendReplayRoundTrip) {
  const std::string path = TempPath("journal_roundtrip.wal");
  std::filesystem::remove(path);
  auto journal = JournalWriter::Open(path, 0);
  ASSERT_TRUE(journal.ok()) << journal.status();
  ASSERT_TRUE(journal->Append("alpha", 5).ok());
  ASSERT_TRUE(journal->Append("bb", 2).ok());
  ASSERT_TRUE(journal->Append("gamma!", 6).ok());
  EXPECT_EQ(journal->size_bytes(),
            3 * kJournalRecordHeaderBytes + 5u + 2u + 6u);

  JournalScan scan;
  const auto records = ReplayAll(path, &scan);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(std::string(records[0].begin(), records[0].end()), "alpha");
  EXPECT_EQ(std::string(records[1].begin(), records[1].end()), "bb");
  EXPECT_EQ(std::string(records[2].begin(), records[2].end()), "gamma!");
  EXPECT_EQ(scan.valid_bytes, journal->size_bytes());
  EXPECT_EQ(scan.records, 3u);
  EXPECT_EQ(scan.dropped_bytes, 0u);
}

TEST(JournalTest, MissingFileIsEmptyJournal) {
  const std::string path = TempPath("journal_missing.wal");
  std::filesystem::remove(path);
  JournalScan scan;
  const auto records = ReplayAll(path, &scan);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST(JournalTest, EmptyAndOversizedRecordsRejected) {
  const std::string path = TempPath("journal_bounds.wal");
  std::filesystem::remove(path);
  auto journal = JournalWriter::Open(path, 0);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->Append("", 0).code(), StatusCode::kInvalidArgument);
}

TEST(JournalTest, TornTailTruncatedNotFatal) {
  const std::string path = TempPath("journal_torn_tail.wal");
  std::filesystem::remove(path);
  std::uint64_t two_records = 0;
  {
    auto journal = JournalWriter::Open(path, 0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("first", 5).ok());
    ASSERT_TRUE(journal->Append("second", 6).ok());
    two_records = journal->size_bytes();
  }
  // A crash mid-append: half a record's framing plus garbage.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x40\x00\x00", 3);
  }
  JournalScan scan;
  const auto records = ReplayAll(path, &scan);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(scan.valid_bytes, two_records);
  EXPECT_EQ(scan.dropped_bytes, 3u);

  // Reopening at the validated prefix truncates the tail and appends
  // cleanly from the last good record.
  auto journal = JournalWriter::Open(path, scan.valid_bytes);
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_EQ(FileSize(path), two_records);
  ASSERT_TRUE(journal->Append("third", 5).ok());
  const auto after = ReplayAll(path, nullptr);
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(std::string(after[2].begin(), after[2].end()), "third");
}

TEST(JournalTest, CorruptTailStopsAtLastValidRecord) {
  const std::string path = TempPath("journal_corrupt_tail.wal");
  std::filesystem::remove(path);
  std::uint64_t first_end = 0;
  {
    auto journal = JournalWriter::Open(path, 0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("keep me", 7).ok());
    first_end = journal->size_bytes();
    ASSERT_TRUE(journal->Append("lose me", 7).ok());
  }
  // Flip one payload byte of the second record: framing parses but the
  // CRC fails, so the scan must stop at the first record — never reject
  // the whole journal.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(first_end +
                                        kJournalRecordHeaderBytes + 2));
    f.put('X');
  }
  JournalScan scan;
  const auto records = ReplayAll(path, &scan);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::string(records[0].begin(), records[0].end()), "keep me");
  EXPECT_EQ(scan.valid_bytes, first_end);
  EXPECT_EQ(scan.dropped_bytes, kJournalRecordHeaderBytes + 7u);
}

TEST(JournalTest, ReplayCallbackErrorPropagates) {
  const std::string path = TempPath("journal_fn_error.wal");
  std::filesystem::remove(path);
  {
    auto journal = JournalWriter::Open(path, 0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("r", 1).ok());
  }
  auto scan = ReplayJournal(path, [](const std::uint8_t*, std::size_t) {
    return Status::CorruptData("undecodable record");
  });
  ASSERT_FALSE(scan.ok());
  EXPECT_EQ(scan.status().code(), StatusCode::kCorruptData);
}

TEST(JournalTest, CleanAppendErrorRollsBackToRecordBoundary) {
  const std::string path = TempPath("journal_clean_error.wal");
  std::filesystem::remove(path);
  auto journal = JournalWriter::Open(path, 0);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append("good", 4).ok());
  const std::uint64_t before = journal->size_bytes();
  {
    fault::ScopedSchedule schedule("io.journal=error:IOError:disk full");
    ASSERT_TRUE(schedule.status().ok());
    fault::ResetHitCounters();
    EXPECT_EQ(journal->Append("failed", 6).code(), StatusCode::kIOError);
  }
  // Error implies the record is not on disk and the journal still
  // well-formed: size unchanged, next append lands cleanly.
  EXPECT_EQ(journal->size_bytes(), before);
  EXPECT_EQ(FileSize(path), before);
  ASSERT_TRUE(journal->Append("after", 5).ok());
  const auto records = ReplayAll(path, nullptr);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(std::string(records[1].begin(), records[1].end()), "after");
}

TEST(JournalTest, TornAppendLeavesPrefixRecoverable) {
  const std::string path = TempPath("journal_torn_append.wal");
  std::filesystem::remove(path);
  auto journal = JournalWriter::Open(path, 0);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Append("durable", 7).ok());
  const std::uint64_t durable_bytes = journal->size_bytes();
  // Counters were reset after the schedule was installed, so the torn
  // append's buffered write is arrival 1 at io.journal.
  fault::ScopedSchedule schedule("io.journal@1=torn:5");
  ASSERT_TRUE(schedule.status().ok());
  fault::ResetHitCounters();
  EXPECT_EQ(journal->Append("torn away", 9).code(), StatusCode::kIOError);
  // The writer is dead (no compensating truncate ran): 5 stray bytes.
  EXPECT_EQ(journal->Append("x", 1).code(), StatusCode::kIOError);
  EXPECT_EQ(FileSize(path), durable_bytes + 5);

  JournalScan scan;
  const auto records = ReplayAll(path, &scan);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::string(records[0].begin(), records[0].end()), "durable");
  EXPECT_EQ(scan.valid_bytes, durable_bytes);
  EXPECT_EQ(scan.dropped_bytes, 5u);
}

TEST(JournalTest, SyncEveryBatchesButTruncateResets) {
  const std::string path = TempPath("journal_sync_every.wal");
  std::filesystem::remove(path);
  JournalOptions options;
  options.sync_every = 3;
  auto journal = JournalWriter::Open(path, 0, options);
  ASSERT_TRUE(journal.ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(journal->Append("record", 6).ok());
  }
  ASSERT_TRUE(journal->Sync().ok());
  ASSERT_TRUE(journal->TruncateTo(0).ok());
  EXPECT_EQ(journal->size_bytes(), 0u);
  EXPECT_EQ(FileSize(path), 0u);
  ASSERT_TRUE(journal->Append("fresh", 5).ok());
  const auto records = ReplayAll(path, nullptr);
  ASSERT_EQ(records.size(), 1u);
}

TEST(JournalTest, OpenRejectsShrunkenValidPrefix) {
  const std::string path = TempPath("journal_shrunk.wal");
  std::filesystem::remove(path);
  {
    auto journal = JournalWriter::Open(path, 0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("abc", 3).ok());
  }
  auto reopened = JournalWriter::Open(path, 1u << 20);
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruptData);
}

}  // namespace
}  // namespace neuroprint
