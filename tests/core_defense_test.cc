// Tests for the leverage-guided signature-suppression defense (the
// paper's Discussion section): suppression must break re-identification
// while leaving untargeted edges bit-identical.

#include <cmath>

#include <gtest/gtest.h>

#include "core/defense.h"
#include "sim/cohort.h"

namespace neuroprint::core {
namespace {

class DefenseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::CohortConfig config;
    config.num_subjects = 14;
    config.num_regions = 40;
    config.frames_override = 220;
    config.seed = 321;
    auto cohort = sim::CohortSimulator::Create(config);
    ASSERT_TRUE(cohort.ok());
    auto known = cohort->BuildGroupMatrix(sim::TaskType::kRest,
                                          sim::Encoding::kLeftRight);
    auto release = cohort->BuildGroupMatrix(sim::TaskType::kRest,
                                            sim::Encoding::kRightLeft);
    ASSERT_TRUE(known.ok());
    ASSERT_TRUE(release.ok());
    known_ = std::move(known).value();
    release_ = std::move(release).value();
  }

  connectome::GroupMatrix known_;
  connectome::GroupMatrix release_;
};

TEST_F(DefenseTest, TargetsHighestLeverageEdges) {
  DefenseOptions options;
  options.num_edges = 50;
  const auto defense = SignatureDefense::Fit(release_, options);
  ASSERT_TRUE(defense.ok());
  EXPECT_EQ(defense->target_edges().size(), 50u);
  // The target set must coincide with the attack's own feature choice —
  // defender and attacker are optimizing over the same scores.
  AttackOptions attack_options;
  attack_options.num_features = 50;
  const auto attack = DeanonymizationAttack::Fit(release_, attack_options);
  ASSERT_TRUE(attack.ok());
  EXPECT_EQ(defense->target_edges(), attack->selected_features());
}

TEST_F(DefenseTest, UntargetedEdgesBitIdentical) {
  DefenseOptions options;
  options.num_edges = 30;
  const auto defense = SignatureDefense::Fit(release_, options);
  ASSERT_TRUE(defense.ok());
  const auto defended = defense->Apply(release_);
  ASSERT_TRUE(defended.ok());
  std::vector<bool> targeted(release_.num_features(), false);
  for (std::size_t edge : defense->target_edges()) targeted[edge] = true;
  for (std::size_t e = 0; e < release_.num_features(); ++e) {
    for (std::size_t s = 0; s < release_.num_subjects(); ++s) {
      if (!targeted[e]) {
        ASSERT_EQ(defended->data()(e, s), release_.data()(e, s));
      }
    }
  }
}

TEST_F(DefenseTest, MeanSubstituteRemovesEdgeVariance) {
  DefenseOptions options;
  options.num_edges = 10;
  options.mode = DefenseMode::kMeanSubstitute;
  const auto defense = SignatureDefense::Fit(release_, options);
  ASSERT_TRUE(defense.ok());
  const auto defended = defense->Apply(release_);
  ASSERT_TRUE(defended.ok());
  for (std::size_t edge : defense->target_edges()) {
    const double first = defended->data()(edge, 0);
    for (std::size_t s = 1; s < release_.num_subjects(); ++s) {
      EXPECT_DOUBLE_EQ(defended->data()(edge, s), first);
    }
  }
}

TEST_F(DefenseTest, ShufflePreservesMultiset) {
  DefenseOptions options;
  options.num_edges = 10;
  options.mode = DefenseMode::kShuffle;
  const auto defense = SignatureDefense::Fit(release_, options);
  ASSERT_TRUE(defense.ok());
  const auto defended = defense->Apply(release_);
  ASSERT_TRUE(defended.ok());
  for (std::size_t edge : defense->target_edges()) {
    linalg::Vector before = release_.data().RowCopy(edge);
    linalg::Vector after = defended->data().RowCopy(edge);
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    EXPECT_EQ(before, after);
  }
}

TEST_F(DefenseTest, SuppressionDegradesStaticAttacker) {
  DefenseOptions options;
  options.num_edges = 400;
  options.mode = DefenseMode::kShuffle;
  AttackOptions attack_options;
  attack_options.num_features = 60;
  const auto eval = EvaluateDefense(known_, release_, options, attack_options);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_GE(eval->accuracy_undefended, 0.85);
  EXPECT_LT(eval->accuracy_static_attacker, 0.6 * eval->accuracy_undefended);
  EXPECT_GT(eval->untouched_fraction, 0.4);
}

TEST_F(DefenseTest, DistortionGrowsWithNoiseScale) {
  AttackOptions attack_options;
  attack_options.num_features = 60;
  DefenseOptions small;
  small.noise_scale = 0.5;
  DefenseOptions large;
  large.noise_scale = 4.0;
  const auto eval_small = EvaluateDefense(known_, release_, small, attack_options);
  const auto eval_large = EvaluateDefense(known_, release_, large, attack_options);
  ASSERT_TRUE(eval_small.ok());
  ASSERT_TRUE(eval_large.ok());
  EXPECT_GT(eval_large->distortion, eval_small->distortion);
  // Small-scale noise on 200 of 780 edges stays a modest perturbation.
  EXPECT_LT(eval_small->distortion, 0.5);
}


TEST_F(DefenseTest, GroupContrastSurvivesTargetedDefense) {
  // Split subjects into two synthetic groups and plant a group effect by
  // shifting a band of LOW-leverage edges in group 1; the defense only
  // touches top-leverage edges, so the contrast must survive.
  connectome::GroupMatrix shifted = release_;
  std::vector<int> group_of(release_.num_subjects(), 0);
  for (std::size_t j = release_.num_subjects() / 2;
       j < release_.num_subjects(); ++j) {
    group_of[j] = 1;
  }
  auto scores = ComputeLeverageScores(release_.data());
  ASSERT_TRUE(scores.ok());
  const auto order = TopKIndices(*scores, scores->size());
  // Bottom 100 edges carry the group effect.
  for (std::size_t k = order.size() - 100; k < order.size(); ++k) {
    double* row = shifted.mutable_data().RowPtr(order[k]);
    for (std::size_t j = 0; j < release_.num_subjects(); ++j) {
      if (group_of[j] == 1) row[j] += 0.3;
    }
  }

  DefenseOptions options;
  options.num_edges = 100;
  options.mode = DefenseMode::kShuffle;
  auto defense = SignatureDefense::Fit(shifted, options);
  ASSERT_TRUE(defense.ok());
  auto defended = defense->Apply(shifted);
  ASSERT_TRUE(defended.ok());

  auto preservation =
      GroupContrastPreservation(shifted, *defended, group_of);
  ASSERT_TRUE(preservation.ok()) << preservation.status();
  EXPECT_GT(*preservation, 0.95);

  // Sanity: defending the very edges carrying the contrast destroys it.
  DefenseOptions everything;
  everything.num_edges = shifted.num_features();
  everything.mode = DefenseMode::kShuffle;
  auto kill_all = SignatureDefense::Fit(shifted, everything);
  ASSERT_TRUE(kill_all.ok());
  auto flattened = kill_all->Apply(shifted);
  ASSERT_TRUE(flattened.ok());
  auto destroyed =
      GroupContrastPreservation(shifted, *flattened, group_of);
  ASSERT_TRUE(destroyed.ok());
  EXPECT_LT(*destroyed, *preservation);
}

TEST_F(DefenseTest, GroupContrastValidation) {
  const std::vector<int> bad_labels(release_.num_subjects(), 0);
  EXPECT_FALSE(
      GroupContrastPreservation(release_, release_, bad_labels).ok());
  std::vector<int> invalid(release_.num_subjects(), 0);
  invalid[0] = 2;
  EXPECT_FALSE(GroupContrastPreservation(release_, release_, invalid).ok());
  EXPECT_FALSE(GroupContrastPreservation(release_, release_, {0, 1}).ok());
}

TEST_F(DefenseTest, RejectsBadConfigs) {
  DefenseOptions zero;
  zero.num_edges = 0;
  EXPECT_FALSE(SignatureDefense::Fit(release_, zero).ok());
  DefenseOptions negative;
  negative.noise_scale = -1.0;
  EXPECT_FALSE(SignatureDefense::Fit(release_, negative).ok());
  // Applying to a smaller feature space fails.
  const auto defense = SignatureDefense::Fit(release_);
  ASSERT_TRUE(defense.ok());
  const auto tiny =
      connectome::GroupMatrix::FromFeatureColumns({{1.0, 2.0}}, {"x"});
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(defense->Apply(*tiny).ok());
}

}  // namespace
}  // namespace neuroprint::core
