// Tests for the fault-injection registry (util/fault.h): schedule grammar,
// rule matching (keys, @hit counters), actions, ScopedSchedule replace /
// restore semantics, the disabled fast path, and deterministic byte
// scrambling.

#include "util/fault.h"

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/metrics.h"
#include "util/trace.h"

namespace neuroprint::fault {
namespace {

// Every test leaves the process schedule clean so cases cannot leak into
// each other (or into other suites in the same binary).
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearSchedule(); }
};

TEST_F(FaultTest, ParseSingleErrorRuleWithDefaults) {
  const auto schedule = ParseSchedule("nifti.read=error");
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  ASSERT_EQ(schedule->rules.size(), 1u);
  const Rule& rule = schedule->rules[0];
  EXPECT_EQ(rule.point, "nifti.read");
  EXPECT_FALSE(rule.has_key);
  EXPECT_EQ(rule.hit, 0u);
  EXPECT_EQ(rule.action, Action::kError);
  EXPECT_EQ(rule.code, StatusCode::kInternal);
}

TEST_F(FaultTest, ParseFullGrammar) {
  const auto schedule = ParseSchedule(
      "cohort.simulate_scan#2=error:CorruptData:truncated gzip stream;"
      "cohort.simulate_scan#7=nan;"
      "io.gzip_inflate@3=corrupt;"
      "\n  pipeline.masking=error:IOError  ;");
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  ASSERT_EQ(schedule->rules.size(), 4u);

  EXPECT_EQ(schedule->rules[0].point, "cohort.simulate_scan");
  EXPECT_TRUE(schedule->rules[0].has_key);
  EXPECT_EQ(schedule->rules[0].key, 2u);
  EXPECT_EQ(schedule->rules[0].code, StatusCode::kCorruptData);
  EXPECT_EQ(schedule->rules[0].message, "truncated gzip stream");

  EXPECT_EQ(schedule->rules[1].action, Action::kNaN);
  EXPECT_EQ(schedule->rules[1].key, 7u);

  EXPECT_EQ(schedule->rules[2].action, Action::kCorrupt);
  EXPECT_FALSE(schedule->rules[2].has_key);
  EXPECT_EQ(schedule->rules[2].hit, 3u);

  EXPECT_EQ(schedule->rules[3].point, "pipeline.masking");
  EXPECT_EQ(schedule->rules[3].code, StatusCode::kIOError);
}

TEST_F(FaultTest, ParseEmptyAndSeparatorOnlyIsEmptySchedule) {
  const auto empty = ParseSchedule("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  const auto separators = ParseSchedule(" ; ;; ");
  ASSERT_TRUE(separators.ok());
  EXPECT_TRUE(separators->empty());
}

TEST_F(FaultTest, ParseRejectsMalformedEntries) {
  EXPECT_FALSE(ParseSchedule("no_action_separator").ok());
  EXPECT_FALSE(ParseSchedule("p=explode").ok());
  EXPECT_FALSE(ParseSchedule("p=error:NoSuchCode").ok());
  EXPECT_FALSE(ParseSchedule("p#x=error").ok());    // Non-numeric key.
  EXPECT_FALSE(ParseSchedule("p@zero=error").ok());  // Non-numeric hit.
  EXPECT_FALSE(ParseSchedule("=error").ok());        // Empty point.
  EXPECT_FALSE(ParseSchedule("good=error;bad").ok());
  // Parse errors carry InvalidArgument and name the entry.
  const auto bad = ParseSchedule("p=explode");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("explode"), std::string::npos);
}

TEST_F(FaultTest, ParseCrashActions) {
  const auto schedule =
      ParseSchedule("io.journal@2=torn:4;io.snapshot=crash;io.journal=torn:0");
  ASSERT_TRUE(schedule.ok()) << schedule.status();
  ASSERT_EQ(schedule->rules.size(), 3u);
  EXPECT_EQ(schedule->rules[0].action, Action::kTorn);
  EXPECT_EQ(schedule->rules[0].torn_bytes, 4u);
  EXPECT_EQ(schedule->rules[0].hit, 2u);
  EXPECT_EQ(schedule->rules[1].action, Action::kCrash);
  // torn:0 is legal: the whole write is lost, then the writer dies.
  EXPECT_EQ(schedule->rules[2].action, Action::kTorn);
  EXPECT_EQ(schedule->rules[2].torn_bytes, 0u);
}

TEST_F(FaultTest, ParseRejectsMalformedCrashActions) {
  EXPECT_FALSE(ParseSchedule("p=torn").ok());      // Byte count required.
  EXPECT_FALSE(ParseSchedule("p=torn:").ok());
  EXPECT_FALSE(ParseSchedule("p=torn:x").ok());
  EXPECT_FALSE(ParseSchedule("p=crash:1").ok());   // crash takes no args.
}

TEST_F(FaultTest, ArrivalCountSumsHitsWhileScheduled) {
  EXPECT_EQ(ArrivalCount("sweep.point"), 0u);
  auto schedule = ParseSchedule("sweep.point@99=error");
  ASSERT_TRUE(schedule.ok());
  InstallSchedule(std::move(schedule).value());
  ResetHitCounters();
  // Arrivals count whether or not the rule fires (hit 99 never does),
  // across unkeyed and keyed hits at the same point.
  (void)Hit("sweep.point");
  (void)Hit("sweep.point", 3);
  (void)Hit("sweep.point", 4);
  (void)Hit("other.point");
  EXPECT_EQ(ArrivalCount("sweep.point"), 3u);
  EXPECT_EQ(ArrivalCount("other.point"), 1u);
  ResetHitCounters();
  EXPECT_EQ(ArrivalCount("sweep.point"), 0u);
}

TEST_F(FaultTest, DisabledByDefaultAndPointsAreNoOps) {
  ClearSchedule();
  EXPECT_FALSE(Enabled());
  EXPECT_TRUE(InjectedError("any.point").ok());
  EXPECT_TRUE(InjectedError("any.point", 7).ok());
}

TEST_F(FaultTest, InstalledErrorRuleFiresWithCodeAndMessage) {
  auto schedule = ParseSchedule("a.b=error:IOError:disk on fire");
  ASSERT_TRUE(schedule.ok());
  InstallSchedule(std::move(schedule).value());
  EXPECT_TRUE(Enabled());
  const Status status = InjectedError("a.b");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(status.message(), "disk on fire");
  EXPECT_TRUE(InjectedError("a.other").ok());
}

TEST_F(FaultTest, KeyedRulesFireOnlyForTheirKey) {
  auto schedule = ParseSchedule("p#2=error:CorruptData;p#7=nan");
  ASSERT_TRUE(schedule.ok());
  InstallSchedule(std::move(schedule).value());
  EXPECT_EQ(Hit("p", 2).action, Action::kError);
  EXPECT_EQ(Hit("p", 2).status.code(), StatusCode::kCorruptData);
  EXPECT_EQ(Hit("p", 7).action, Action::kNaN);
  EXPECT_EQ(Hit("p", 0).action, Action::kNone);
  EXPECT_EQ(Hit("p", 3).action, Action::kNone);
  // Keyed rules never match unkeyed arrivals.
  EXPECT_EQ(Hit("p").action, Action::kNone);
}

TEST_F(FaultTest, UnkeyedRuleMatchesAnyArrivalAtThePoint) {
  auto schedule = ParseSchedule("p=error");
  ASSERT_TRUE(schedule.ok());
  InstallSchedule(std::move(schedule).value());
  EXPECT_EQ(Hit("p").action, Action::kError);
  EXPECT_EQ(Hit("p", 42).action, Action::kError);
}

TEST_F(FaultTest, HitCountSelectsTheNthArrivalOnly) {
  auto schedule = ParseSchedule("p@2=error");
  ASSERT_TRUE(schedule.ok());
  InstallSchedule(std::move(schedule).value());
  EXPECT_EQ(Hit("p").action, Action::kNone);   // First arrival.
  EXPECT_EQ(Hit("p").action, Action::kError);  // Second arrival fires.
  EXPECT_EQ(Hit("p").action, Action::kNone);   // Third does not.
  // Counters reset on demand, making runs reproducible.
  ResetHitCounters();
  EXPECT_EQ(Hit("p").action, Action::kNone);
  EXPECT_EQ(Hit("p").action, Action::kError);
}

TEST_F(FaultTest, HitCountersArePerPointAndPerKey) {
  auto schedule = ParseSchedule("p#5@2=error");
  ASSERT_TRUE(schedule.ok());
  InstallSchedule(std::move(schedule).value());
  EXPECT_EQ(Hit("p", 5).action, Action::kNone);
  // Arrivals at other keys / points do not advance key 5's counter.
  EXPECT_EQ(Hit("p", 6).action, Action::kNone);
  EXPECT_EQ(Hit("q", 5).action, Action::kNone);
  EXPECT_EQ(Hit("p", 5).action, Action::kError);
}

TEST_F(FaultTest, InjectedErrorMapsValueActionsToInternal) {
  auto schedule = ParseSchedule("p=nan");
  ASSERT_TRUE(schedule.ok());
  InstallSchedule(std::move(schedule).value());
  const Status status = InjectedError("p");
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("nan"), std::string::npos);
}

TEST_F(FaultTest, ScopedScheduleReplacesAndRestores) {
  auto outer = ParseSchedule("outer.point=error");
  ASSERT_TRUE(outer.ok());
  InstallSchedule(std::move(outer).value());
  {
    ScopedSchedule scoped("inner.point=error");
    ASSERT_TRUE(scoped.status().ok());
    // Replacement, not overlay: the outer rule is inactive inside.
    EXPECT_FALSE(InjectedError("inner.point").ok());
    EXPECT_TRUE(InjectedError("outer.point").ok());
  }
  EXPECT_FALSE(InjectedError("outer.point").ok());
  EXPECT_TRUE(InjectedError("inner.point").ok());
}

TEST_F(FaultTest, EmptyScopedScheduleIsANoOp) {
  auto outer = ParseSchedule("outer.point=error");
  ASSERT_TRUE(outer.ok());
  InstallSchedule(std::move(outer).value());
  {
    ScopedSchedule scoped("");
    ASSERT_TRUE(scoped.status().ok());
    EXPECT_FALSE(InjectedError("outer.point").ok());
  }
  EXPECT_FALSE(InjectedError("outer.point").ok());
}

TEST_F(FaultTest, ScopedScheduleParseFailureLeavesProcessScheduleAlone) {
  auto outer = ParseSchedule("outer.point=error");
  ASSERT_TRUE(outer.ok());
  InstallSchedule(std::move(outer).value());
  {
    ScopedSchedule scoped("garbage");
    EXPECT_EQ(scoped.status().code(), StatusCode::kInvalidArgument);
    EXPECT_FALSE(InjectedError("outer.point").ok());
  }
  EXPECT_FALSE(InjectedError("outer.point").ok());
}

TEST_F(FaultTest, ScopedScheduleRestoresDisabledState) {
  ClearSchedule();
  {
    ScopedSchedule scoped("p=error");
    ASSERT_TRUE(scoped.status().ok());
    EXPECT_TRUE(Enabled());
  }
  EXPECT_FALSE(Enabled());
}

TEST_F(FaultTest, FiresCountTheFaultInjectedMetric) {
  trace::ScopedEnable trace_enable(true);
  metrics::Registry::Global().Reset();
  ScopedSchedule scoped("p#1=error");
  ASSERT_TRUE(scoped.status().ok());
  EXPECT_EQ(Hit("p", 1).action, Action::kError);
  EXPECT_EQ(Hit("p", 2).action, Action::kNone);  // Miss: not counted.
  const metrics::Snapshot snapshot =
      metrics::Registry::Global().TakeSnapshot();
  std::uint64_t injected = 0;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "fault.injected") injected = counter.value;
  }
  EXPECT_EQ(injected, 1u);
}

TEST_F(FaultTest, MacroReturnsInjectedStatusFromStatusFunctions) {
  ScopedSchedule scoped("macro.point=error:CorruptData:via macro");
  ASSERT_TRUE(scoped.status().ok());
  const auto body = []() -> Status {
    NP_FAULT_POINT("macro.point");
    return Status::OK();
  };
  const Status status = body();
  EXPECT_EQ(status.code(), StatusCode::kCorruptData);
  EXPECT_EQ(status.message(), "via macro");

  const auto keyed = [](std::uint64_t key) -> Status {
    NP_FAULT_POINT_KEYED("macro.keyed", key);
    return Status::OK();
  };
  ScopedSchedule keyed_scoped("macro.keyed#3=error");
  ASSERT_TRUE(keyed_scoped.status().ok());
  EXPECT_TRUE(keyed(2).ok());
  EXPECT_FALSE(keyed(3).ok());
}

TEST_F(FaultTest, ScrambleBytesIsDeterministicInSeedAndChangesData) {
  std::vector<unsigned char> a(64, 0xAB), b(64, 0xAB), c(64, 0xAB);
  ScrambleBytes(1234, a.data(), a.size());
  ScrambleBytes(1234, b.data(), b.size());
  ScrambleBytes(4321, c.data(), c.size());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, std::vector<unsigned char>(64, 0xAB));
}

TEST_F(FaultTest, ActionNamesAreStable) {
  EXPECT_STREQ(ActionName(Action::kNone), "none");
  EXPECT_STREQ(ActionName(Action::kError), "error");
  EXPECT_STREQ(ActionName(Action::kNaN), "nan");
  EXPECT_STREQ(ActionName(Action::kCorrupt), "corrupt");
  EXPECT_STREQ(ActionName(Action::kTorn), "torn");
  EXPECT_STREQ(ActionName(Action::kCrash), "crash");
}

}  // namespace
}  // namespace neuroprint::fault
