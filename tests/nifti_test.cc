// NIfTI codec tests: header round-trip, voxel round-trip across data
// types and compression, endianness handling, and corrupt-file rejection.

#include <cstdio>
#include <fstream>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "nifti/nifti_header.h"
#include "nifti/nifti_io.h"
#include "nifti/nifti_stream.h"
#include "util/random.h"

namespace neuroprint::nifti {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

image::Volume4D MakeTestRun(std::size_t nx, std::size_t ny, std::size_t nz,
                            std::size_t nt, Rng& rng) {
  image::Volume4D run(nx, ny, nz, nt);
  run.spacing().dx_mm = 2.0;
  run.spacing().dy_mm = 2.5;
  run.spacing().dz_mm = 3.0;
  run.spacing().tr_seconds = 0.72;
  for (float& v : run.flat()) {
    v = static_cast<float>(rng.Gaussian(500.0, 100.0));
  }
  return run;
}

TEST(NiftiHeaderTest, EncodeDecodeRoundTrip) {
  NiftiHeader header;
  header.dim = {4, 16, 18, 20, 50, 1, 1, 1};
  header.datatype = DataType::kInt16;
  header.pixdim = {1.f, 2.f, 2.5f, 3.f, 0.72f, 1.f, 1.f, 1.f};
  header.scl_slope = 0.5f;
  header.scl_inter = 10.0f;
  header.description = "test image";
  const auto bytes = EncodeHeader(header);
  ASSERT_EQ(bytes.size(), kNiftiHeaderSize);

  bool swapped = true;
  const auto decoded = DecodeHeader(bytes, &swapped);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(swapped);
  EXPECT_EQ(decoded->dim, header.dim);
  EXPECT_EQ(decoded->datatype, DataType::kInt16);
  EXPECT_FLOAT_EQ(decoded->pixdim[4], 0.72f);
  EXPECT_FLOAT_EQ(decoded->scl_slope, 0.5f);
  EXPECT_FLOAT_EQ(decoded->scl_inter, 10.0f);
  EXPECT_EQ(decoded->description, "test image");
}

TEST(NiftiHeaderTest, DetectsByteSwappedHeader) {
  NiftiHeader header;
  header.dim = {3, 8, 8, 8, 1, 1, 1, 1};
  auto bytes = EncodeHeader(header);
  // Simulate a big-endian writer: reverse each multi-byte field we probe.
  auto swap32 = [&](std::size_t off) {
    std::swap(bytes[off], bytes[off + 3]);
    std::swap(bytes[off + 1], bytes[off + 2]);
  };
  auto swap16 = [&](std::size_t off) { std::swap(bytes[off], bytes[off + 1]); };
  swap32(0);  // sizeof_hdr
  for (std::size_t d = 0; d < 8; ++d) swap16(40 + 2 * d);   // dim
  swap16(70);                                               // datatype
  swap16(72);                                               // bitpix
  for (std::size_t d = 0; d < 8; ++d) swap32(76 + 4 * d);   // pixdim
  swap32(108);  // vox_offset
  swap32(112);  // scl_slope
  swap32(116);  // scl_inter
  swap16(252);
  swap16(254);
  for (std::size_t i = 0; i < 12; ++i) swap32(280 + 4 * i);  // srow

  bool swapped = false;
  const auto decoded = DecodeHeader(bytes, &swapped);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(swapped);
  EXPECT_EQ(decoded->dim[1], 8);
  EXPECT_EQ(decoded->datatype, DataType::kFloat32);
}

TEST(NiftiHeaderTest, RejectsGarbage) {
  std::vector<std::uint8_t> garbage(kNiftiHeaderSize, 0xAB);
  EXPECT_FALSE(DecodeHeader(garbage).ok());
  std::vector<std::uint8_t> tiny(10, 0);
  const auto r = DecodeHeader(tiny);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptData);
}

TEST(NiftiHeaderTest, ValidateCatchesBadFields) {
  NiftiHeader header;
  header.dim[0] = 9;
  EXPECT_FALSE(header.Validate().ok());
  header.dim[0] = 3;
  header.dim[2] = -5;
  EXPECT_FALSE(header.Validate().ok());
  header.dim[2] = 4;
  header.vox_offset = 100.0f;
  EXPECT_FALSE(header.Validate().ok());
}

TEST(NiftiHeaderTest, BitsPerVoxel) {
  EXPECT_EQ(*BitsPerVoxel(DataType::kUint8), 8);
  EXPECT_EQ(*BitsPerVoxel(DataType::kInt16), 16);
  EXPECT_EQ(*BitsPerVoxel(DataType::kInt32), 32);
  EXPECT_EQ(*BitsPerVoxel(DataType::kFloat32), 32);
  EXPECT_EQ(*BitsPerVoxel(DataType::kFloat64), 64);
  EXPECT_FALSE(IsSupportedDataType(1));    // DT_BINARY
  EXPECT_FALSE(IsSupportedDataType(128));  // DT_RGB24
}

// Parameterized write/read round trip over dtype x compression.
struct RoundTripCase {
  DataType datatype;
  bool gzip;
  double tolerance;  // Integer types quantize.
};

class NiftiRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(NiftiRoundTripTest, WriteReadPreservesVoxels) {
  const RoundTripCase& c = GetParam();
  Rng rng(55);
  const image::Volume4D run = MakeTestRun(6, 5, 4, 7, rng);
  const std::string path = TempPath(
      std::string("roundtrip_") +
      std::to_string(static_cast<int>(c.datatype)) +
      (c.gzip ? ".nii.gz" : ".nii"));

  WriteOptions options;
  options.datatype = c.datatype;
  ASSERT_TRUE(WriteNifti(path, run, options).ok());

  const auto image = ReadNifti(path);
  ASSERT_TRUE(image.ok()) << image.status();
  ASSERT_EQ(image->data.nx(), run.nx());
  ASSERT_EQ(image->data.ny(), run.ny());
  ASSERT_EQ(image->data.nz(), run.nz());
  ASSERT_EQ(image->data.nt(), run.nt());
  EXPECT_NEAR(image->data.spacing().dy_mm, 2.5, 1e-5);
  EXPECT_NEAR(image->data.spacing().tr_seconds, 0.72, 1e-5);
  for (std::size_t i = 0; i < run.size(); ++i) {
    ASSERT_NEAR(image->data.flat()[i], run.flat()[i], c.tolerance)
        << "voxel " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DtypesAndCompression, NiftiRoundTripTest,
    ::testing::Values(RoundTripCase{DataType::kFloat32, false, 1e-3},
                      RoundTripCase{DataType::kFloat32, true, 1e-3},
                      RoundTripCase{DataType::kFloat64, false, 1e-6},
                      RoundTripCase{DataType::kFloat64, true, 1e-6},
                      RoundTripCase{DataType::kInt16, false, 0.05},
                      RoundTripCase{DataType::kInt16, true, 0.05},
                      RoundTripCase{DataType::kInt32, false, 1e-3},
                      RoundTripCase{DataType::kUint8, false, 4.0}));

TEST(NiftiIoTest, GzipDetectedByMagicNotExtension) {
  Rng rng(66);
  const image::Volume4D run = MakeTestRun(4, 4, 3, 2, rng);
  // Write gzipped content to a path WITHOUT .gz suffix.
  const std::string path = TempPath("misnamed_plain.nii");
  WriteOptions options;
  options.compression = WriteOptions::Compression::kAlways;
  ASSERT_TRUE(WriteNifti(path, run, options).ok());
  const auto image = ReadNifti(path);
  ASSERT_TRUE(image.ok()) << image.status();
  EXPECT_EQ(image->data.nt(), 2u);
}

TEST(NiftiIoTest, ThreeDimensionalImage) {
  Rng rng(77);
  image::Volume3D vol(5, 6, 7);
  for (float& v : vol.flat()) v = static_cast<float>(rng.Uniform(0, 100));
  const std::string path = TempPath("three_d.nii");
  ASSERT_TRUE(WriteNifti3D(path, vol).ok());
  const auto image = ReadNifti(path);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->header.dim[0], 3);
  EXPECT_EQ(image->data.nt(), 1u);
  EXPECT_NEAR(image->data.at(2, 3, 4, 0), vol.at(2, 3, 4), 1e-3);
}

TEST(NiftiIoTest, ConstantVolumeInt16ScalingDegenerate) {
  image::Volume4D run(3, 3, 3, 1, 42.0f);
  const std::string path = TempPath("constant.nii");
  WriteOptions options;
  options.datatype = DataType::kInt16;
  ASSERT_TRUE(WriteNifti(path, run, options).ok());
  const auto image = ReadNifti(path);
  ASSERT_TRUE(image.ok());
  EXPECT_NEAR(image->data.at(1, 1, 1, 0), 42.0, 1e-3);
}

TEST(NiftiIoTest, MissingFileGivesIOError) {
  const auto image = ReadNifti(TempPath("does_not_exist.nii"));
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kIOError);
}

TEST(NiftiIoTest, TruncatedVoxelDataRejected) {
  Rng rng(88);
  const image::Volume4D run = MakeTestRun(8, 8, 8, 3, rng);
  const std::string path = TempPath("truncated.nii");
  ASSERT_TRUE(WriteNifti(path, run).ok());
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::string contents(size / 2, '\0');
  in.read(contents.data(), static_cast<std::streamsize>(contents.size()));
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.close();

  const auto image = ReadNifti(path);
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kCorruptData);
}

TEST(NiftiIoTest, CorruptGzipRejected) {
  const std::string path = TempPath("corrupt.nii.gz");
  std::ofstream out(path, std::ios::binary);
  const char bytes[] = {0x1f, static_cast<char>(0x8b), 0x01, 0x02, 0x03};
  out.write(bytes, sizeof(bytes));
  out.close();
  EXPECT_FALSE(ReadNifti(path).ok());
}

TEST(NiftiIoTest, EmptyVolumeRejected) {
  EXPECT_FALSE(WriteNifti(TempPath("empty.nii"), image::Volume4D()).ok());
}

// --- Robustness: hostile on-disk bytes must come back as Status errors
// (no crash, no UB — the asan-ubsan tier runs these).

std::vector<char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> bytes(size);
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  return bytes;
}

void WriteAllBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(NiftiRobustnessTest, CorruptedMagicRejected) {
  Rng rng(99);
  const image::Volume4D run = MakeTestRun(4, 4, 4, 2, rng);
  const std::string path = TempPath("bad_magic.nii");
  ASSERT_TRUE(WriteNifti(path, run).ok());

  std::vector<char> bytes = ReadAllBytes(path);
  ASSERT_GT(bytes.size(), 348u);
  bytes[344] = 'X';  // magic lives at offset 344: "n+1\0"
  bytes[345] = 'Y';
  WriteAllBytes(path, bytes);

  const auto image = ReadNifti(path);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kCorruptData);
}

TEST(NiftiRobustnessTest, AbsurdDimsRejected) {
  Rng rng(101);
  const image::Volume4D run = MakeTestRun(4, 4, 4, 2, rng);
  const std::string path = TempPath("absurd_dims.nii");
  ASSERT_TRUE(WriteNifti(path, run).ok());

  // dim[] lives at offset 40 as 8 int16s. Claim a 32767^4-voxel image on
  // a few-KB file: the reader must reject it instead of allocating.
  std::vector<char> bytes = ReadAllBytes(path);
  for (std::size_t d = 1; d <= 4; ++d) {
    bytes[40 + 2 * d] = '\xff';
    bytes[40 + 2 * d + 1] = '\x7f';
  }
  WriteAllBytes(path, bytes);
  const auto image = ReadNifti(path);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kCorruptData);
}

TEST(NiftiHeaderTest, DimProductOverflowRejected) {
  // 7 dims of 32767 overflow the std::size_t voxel count; the checked
  // multiply must catch it rather than wrapping to a small "valid" size.
  NiftiHeader header;
  header.dim = {7, 32767, 32767, 32767, 32767, 32767, 32767, 32767};
  const auto count = header.VoxelCount();
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kCorruptData);
}

TEST(NiftiHeaderTest, NonFiniteVoxOffsetRejected) {
  NiftiHeader header;
  header.dim = {3, 4, 4, 4, 1, 1, 1, 1};
  header.vox_offset = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(header.Validate().ok());
  header.vox_offset = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(header.Validate().ok());
  header.vox_offset = 1.0e20f;  // would overflow the size_t conversion
  EXPECT_FALSE(header.Validate().ok());
}

TEST(NiftiRobustnessTest, GzipMidStreamTruncationRejected) {
  Rng rng(111);
  const image::Volume4D run = MakeTestRun(8, 8, 8, 3, rng);
  const std::string path = TempPath("truncated_stream.nii.gz");
  WriteOptions options;
  options.compression = WriteOptions::Compression::kAlways;
  ASSERT_TRUE(WriteNifti(path, run, options).ok());

  // Cut the gzip stream mid-way: the header deflates fine, the voxel
  // payload ends early. Must surface as a Status, not a crash.
  std::vector<char> bytes = ReadAllBytes(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes.resize(bytes.size() * 6 / 10);
  WriteAllBytes(path, bytes);

  const auto image = ReadNifti(path);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kCorruptData);
}

// --- Chunked gzip decode: bytes-consumed accounting -------------------------

// Gaussian voxels are incompressible, so this run's .gz payload is well
// past the decoder's 64 KiB input chunk — truncation points around the
// chunk boundary exercise the refill path, not just the first window.
std::string WriteBigGzRun(const std::string& name, std::size_t* raw_bytes) {
  Rng rng(314);
  const image::Volume4D run = MakeTestRun(32, 32, 16, 4, rng);
  const std::string path = TempPath(name);
  WriteOptions options;
  options.compression = WriteOptions::Compression::kAlways;
  EXPECT_TRUE(WriteNifti(path, run, options).ok());
  if (raw_bytes != nullptr) {
    // Plaintext size = the uncompressed encoding of the same image.
    const std::string raw_path = TempPath("raw_" + name);
    WriteOptions raw_options;
    raw_options.compression = WriteOptions::Compression::kNever;
    EXPECT_TRUE(WriteNifti(raw_path, run, raw_options).ok());
    std::ifstream probe(raw_path, std::ios::binary | std::ios::ate);
    *raw_bytes = static_cast<std::size_t>(probe.tellg());
  }
  return path;
}

std::size_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  return static_cast<std::size_t>(in.tellg());
}

void TruncateFile(const std::string& src, const std::string& dst,
                  std::size_t keep) {
  std::ifstream in(src, std::ios::binary);
  std::string contents(keep, '\0');
  in.read(contents.data(), static_cast<std::streamsize>(keep));
  ASSERT_TRUE(in.good());
  std::ofstream(dst, std::ios::binary | std::ios::trunc)
      .write(contents.data(), static_cast<std::streamsize>(keep));
}

TEST(GzipStreamTest, CleanEndReportsFullAccounting) {
  std::size_t raw_bytes = 0;
  const std::string path = WriteBigGzRun("gz_clean.nii.gz", &raw_bytes);
  ASSERT_GT(FileSize(path), std::size_t{64} << 10)
      << "test needs a payload past the input chunk";
  auto reader = GzipStreamReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  // Deliberately awkward read size: plaintext chunks straddle every input
  // refill boundary.
  std::vector<std::uint8_t> buffer(7777);
  std::size_t total = 0;
  for (;;) {
    const auto got = reader->Read(buffer.data(), buffer.size());
    ASSERT_TRUE(got.ok()) << got.status();
    if (*got == 0) break;
    total += *got;
  }
  EXPECT_TRUE(reader->finished());
  EXPECT_EQ(total, raw_bytes);
  EXPECT_EQ(reader->decoded_bytes(), raw_bytes);
  EXPECT_LE(reader->compressed_consumed(), FileSize(path));
  // A finished stream keeps returning clean end, not an error.
  const auto again = reader->Read(buffer.data(), buffer.size());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST(GzipStreamTest, TruncationAtChunkBoundariesReportsBytesConsumed) {
  const std::string path = WriteBigGzRun("gz_trunc.nii.gz", nullptr);
  const std::size_t size = FileSize(path);
  constexpr std::size_t kChunk = std::size_t{64} << 10;
  ASSERT_GT(size, kChunk + 2);
  // Mid-chunk, exactly at the refill boundary, one past it, and one byte
  // short of the whole stream (inside the gzip trailer).
  for (const std::size_t keep : {kChunk / 2, kChunk, kChunk + 1, size - 1}) {
    const std::string cut = TempPath("gz_cut_" + std::to_string(keep));
    TruncateFile(path, cut, keep);
    auto reader = GzipStreamReader::Open(cut);
    ASSERT_TRUE(reader.ok()) << reader.status();
    std::vector<std::uint8_t> buffer(4096);
    Status failure = Status::OK();
    for (;;) {
      const auto got = reader->Read(buffer.data(), buffer.size());
      if (!got.ok()) {
        failure = got.status();
        break;
      }
      ASSERT_NE(*got, 0u) << "truncated stream reported a clean end at keep="
                          << keep;
    }
    EXPECT_EQ(failure.code(), StatusCode::kCorruptData) << "keep=" << keep;
    EXPECT_NE(failure.message().find("compressed bytes consumed"),
              std::string::npos)
        << failure;
    EXPECT_LE(reader->compressed_consumed(), keep) << "keep=" << keep;
  }
}

TEST(GzipStreamTest, ConcatenatedMembersDecodeSeamlessly) {
  Rng rng(27);
  const image::Volume4D run_a = MakeTestRun(4, 4, 3, 2, rng);
  const image::Volume4D run_b = MakeTestRun(5, 3, 2, 1, rng);
  const std::string path_a = TempPath("gz_member_a.nii.gz");
  const std::string path_b = TempPath("gz_member_b.nii.gz");
  WriteOptions options;
  options.compression = WriteOptions::Compression::kAlways;
  ASSERT_TRUE(WriteNifti(path_a, run_a, options).ok());
  ASSERT_TRUE(WriteNifti(path_b, run_b, options).ok());
  // Plaintext sizes of each member on its own.
  const auto decoded_size = [](const std::string& path) -> std::size_t {
    auto reader = GzipStreamReader::Open(path);
    EXPECT_TRUE(reader.ok());
    if (!reader.ok()) return 0;
    std::vector<std::uint8_t> buffer(4096);
    std::size_t total = 0;
    for (;;) {
      const auto got = reader->Read(buffer.data(), buffer.size());
      EXPECT_TRUE(got.ok()) << got.status();
      if (!got.ok() || *got == 0) break;
      total += *got;
    }
    return total;
  };
  const std::size_t plain_a = decoded_size(path_a);
  const std::size_t plain_b = decoded_size(path_b);
  ASSERT_GT(plain_a, 0u);
  ASSERT_GT(plain_b, 0u);
  const std::string joined = TempPath("gz_joined.nii.gz");
  {
    std::ofstream out(joined, std::ios::binary);
    for (const std::string& p : {path_a, path_b}) {
      std::ifstream in(p, std::ios::binary);
      out << in.rdbuf();
    }
  }
  auto reader = GzipStreamReader::Open(joined);
  ASSERT_TRUE(reader.ok());
  std::vector<std::uint8_t> buffer(4096);
  std::size_t total = 0;
  for (;;) {
    const auto got = reader->Read(buffer.data(), buffer.size());
    ASSERT_TRUE(got.ok()) << got.status();
    if (*got == 0) break;
    total += *got;
  }
  EXPECT_EQ(total, plain_a + plain_b);
  EXPECT_TRUE(reader->finished());
}

TEST(NiftiRobustnessTest, WholeFileGzipTruncationNamesBytesConsumed) {
  // The whole-file reader sits on the same chunked decoder, so its
  // truncation error carries the consumed/decoded accounting too.
  Rng rng(115);
  const image::Volume4D run = MakeTestRun(8, 8, 8, 3, rng);
  const std::string path = TempPath("gz_accounting.nii.gz");
  WriteOptions options;
  options.compression = WriteOptions::Compression::kAlways;
  ASSERT_TRUE(WriteNifti(path, run, options).ok());
  const std::size_t size = FileSize(path);
  const std::string cut = TempPath("gz_accounting_cut.nii.gz");
  TruncateFile(path, cut, size * 6 / 10);
  const auto image = ReadNifti(cut);
  ASSERT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(image.status().message().find("compressed bytes consumed"),
            std::string::npos)
      << image.status();
  // The streamed reader reports the same class of failure.
  auto streamed = NiftiStreamReader::Open(cut);
  if (streamed.ok()) {
    std::vector<float> frame;
    Status status = Status::OK();
    for (std::size_t t = 0; t < streamed->nt() && status.ok(); ++t) {
      status = streamed->ReadFrame(t, &frame);
    }
    EXPECT_EQ(status.code(), StatusCode::kCorruptData);
  } else {
    EXPECT_EQ(streamed.status().code(), StatusCode::kCorruptData);
  }
}

}  // namespace
}  // namespace neuroprint::nifti
