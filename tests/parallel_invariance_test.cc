// Thread-count-invariance golden tests: every parallelized stage of the
// attack pipeline must produce bitwise-identical output for 1, 2, and 8
// threads (the determinism contract of util/thread_pool.h). Floating-point
// addition is non-associative, so these tests fail loudly if any kernel's
// chunking or accumulation order ever depends on the thread count.

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "atlas/synthetic_atlas.h"
#include "connectome/connectome.h"
#include "connectome/matrix_store.h"
#include "core/attack.h"
#include "core/knn.h"
#include "core/matcher.h"
#include "core/tsne.h"
#include "linalg/bidiag.h"
#include "linalg/gemm_kernel.h"
#include "linalg/matrix.h"
#include "linalg/simd/simd.h"
#include "linalg/stats.h"
#include "linalg/svd.h"
#include "linalg/vector_ops.h"
#include "preprocess/pipeline.h"
#include "service/identification_index.h"
#include "service/synthetic_gallery.h"
#include "sim/cohort.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace neuroprint {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

// Bitwise equality: EXPECT_EQ on doubles would accept 0.0 == -0.0 and
// reject NaN == NaN; comparing the bit patterns accepts exactly "the same
// bytes came out".
void ExpectBitwiseEqual(const linalg::Matrix& a, const linalg::Matrix& b,
                        const char* stage) {
  ASSERT_EQ(a.rows(), b.rows()) << stage;
  ASSERT_EQ(a.cols(), b.cols()) << stage;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a.data()[i]),
              std::bit_cast<std::uint64_t>(b.data()[i]))
        << stage << ": element " << i << " differs (" << a.data()[i] << " vs "
        << b.data()[i] << ")";
  }
}

void ExpectBitwiseEqual(const linalg::Vector& a, const linalg::Vector& b,
                        const char* stage) {
  ASSERT_EQ(a.size(), b.size()) << stage;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << stage << ": element " << i;
  }
}

linalg::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.Gaussian();
  }
  // A few exact zeros probe the kernels' sign-of-zero handling.
  m(0, 0) = 0.0;
  m(rows / 2, cols / 2) = 0.0;
  return m;
}

TEST(ParallelInvarianceTest, GemmKernels) {
  const linalg::Matrix a = RandomMatrix(67, 33, 11);
  const linalg::Matrix b = RandomMatrix(33, 41, 12);
  const linalg::Matrix c = RandomMatrix(67, 33, 13);
  const linalg::Vector x = RandomMatrix(33, 1, 14).ColCopy(0);
  const linalg::Matrix mul1 = linalg::MatMul(a, b, ParallelContext{1});
  const linalg::Matrix tmul1 = linalg::MatTMul(a, c, ParallelContext{1});
  const linalg::Matrix mult1 = linalg::MatMulT(a, c, ParallelContext{1});
  const linalg::Matrix gram1 = linalg::Gram(a, ParallelContext{1});
  const linalg::Vector vec1 = linalg::MatVec(a, x, ParallelContext{1});
  for (const std::size_t threads : kThreadCounts) {
    const ParallelContext ctx{threads};
    ExpectBitwiseEqual(mul1, linalg::MatMul(a, b, ctx), "MatMul");
    ExpectBitwiseEqual(tmul1, linalg::MatTMul(a, c, ctx), "MatTMul");
    ExpectBitwiseEqual(mult1, linalg::MatMulT(a, c, ctx), "MatMulT");
    ExpectBitwiseEqual(gram1, linalg::Gram(a, ctx), "Gram");
    ExpectBitwiseEqual(vec1, linalg::MatVec(a, x, ctx), "MatVec");
  }
}

TEST(ParallelInvarianceTest, TiledGemmMatchesReferenceBitwise) {
  // Shapes chosen to cross every blocking boundary of the tiled kernel:
  // the K panel (kGemmPanelK = 256), the M row block (64), the 4x4
  // micro-tile, and the small-problem cutover — all must agree with the
  // canonical-order reference kernel bit for bit, at every thread count.
  struct Shape {
    std::size_t m, k, n;
  };
  const Shape shapes[] = {{3, 5, 2},      {64, 256, 64},  {65, 257, 33},
                          {130, 520, 48}, {31, 700, 100}, {300, 90, 70}};
  for (const auto& [m, k, n] : shapes) {
    const linalg::Matrix a = RandomMatrix(m, k, 101 + m);
    const linalg::Matrix b = RandomMatrix(k, n, 102 + n);
    const linalg::Matrix at = RandomMatrix(k, m, 103 + m);
    const linalg::Matrix bt = RandomMatrix(n, k, 104 + n);

    linalg::Matrix ref(m, n);
    linalg::ReferenceGemm(a, false, b, false, &ref);
    linalg::Matrix ref_ta(m, n);
    linalg::ReferenceGemm(at, true, b, false, &ref_ta);
    linalg::Matrix ref_tb(m, n);
    linalg::ReferenceGemm(a, false, bt, true, &ref_tb);

    for (const std::size_t threads : kThreadCounts) {
      const ParallelContext ctx{threads};
      linalg::Matrix c(m, n);
      linalg::TiledGemm(a, false, b, false, &c, ctx);
      ExpectBitwiseEqual(ref, c, "TiledGemm(N,N)");
      linalg::TiledGemm(at, true, b, false, &c, ctx);
      ExpectBitwiseEqual(ref_ta, c, "TiledGemm(T,N)");
      linalg::TiledGemm(a, false, bt, true, &c, ctx);
      ExpectBitwiseEqual(ref_tb, c, "TiledGemm(N,T)");
    }
  }
}

TEST(ParallelInvarianceTest, TiledGramMatchesGemmBitwise) {
  // Gram computes the upper triangle and mirrors; the mirrored bits must
  // equal the full A^T A product exactly (products commute bitwise).
  for (const std::size_t rows : {40u, 300u, 530u}) {
    const linalg::Matrix a = RandomMatrix(rows, 37, 200 + rows);
    linalg::Matrix full(37, 37);
    linalg::TiledGemm(a, true, a, false, &full, ParallelContext{1});
    for (const std::size_t threads : kThreadCounts) {
      linalg::Matrix g(37, 37);
      linalg::TiledGram(a, &g, ParallelContext{threads});
      ExpectBitwiseEqual(full, g, "TiledGram");
    }
  }
}

TEST(ParallelInvarianceTest, GemmStableUnderOversubscription) {
  // Thread counts far beyond the hardware force the work-stealing pool
  // into constant steals between oversubscribed runners; the output must
  // not move by a bit. The K dimension spans many packing panels so the
  // panel-parallel path has enough chunks to steal.
  const linalg::Matrix a = RandomMatrix(3000, 64, 301);
  const linalg::Matrix b = RandomMatrix(3000, 64, 302);
  const linalg::Matrix tmul1 = linalg::MatTMul(a, b, ParallelContext{1});
  const linalg::Matrix gram1 = linalg::Gram(a, ParallelContext{1});
  for (const std::size_t threads : {16u, 32u, 64u}) {
    const ParallelContext ctx{threads};
    ExpectBitwiseEqual(tmul1, linalg::MatTMul(a, b, ctx),
                       "MatTMul oversubscribed");
    ExpectBitwiseEqual(gram1, linalg::Gram(a, ctx), "Gram oversubscribed");
  }
}

TEST(ParallelInvarianceTest, CorrelationAndZScore) {
  const linalg::Matrix series = RandomMatrix(48, 90, 21);
  const linalg::Matrix other = RandomMatrix(48, 17, 22);
  const linalg::Matrix corr1 = linalg::RowCorrelation(series, ParallelContext{1});
  const linalg::Matrix cross1 =
      linalg::ColumnCrossCorrelation(series, other, ParallelContext{1});
  linalg::Matrix z1 = series;
  linalg::ZScoreRowsInPlace(z1, ParallelContext{1});
  for (const std::size_t threads : kThreadCounts) {
    const ParallelContext ctx{threads};
    ExpectBitwiseEqual(corr1, linalg::RowCorrelation(series, ctx),
                       "RowCorrelation");
    ExpectBitwiseEqual(cross1,
                       linalg::ColumnCrossCorrelation(series, other, ctx),
                       "ColumnCrossCorrelation");
    linalg::Matrix z = series;
    linalg::ZScoreRowsInPlace(z, ctx);
    ExpectBitwiseEqual(z1, z, "ZScoreRowsInPlace");
  }
}

TEST(ParallelInvarianceTest, ConnectomeBuild) {
  const linalg::Matrix series = RandomMatrix(30, 120, 31);
  const auto conn1 = connectome::BuildConnectome(series, ParallelContext{1});
  ASSERT_TRUE(conn1.ok());
  for (const std::size_t threads : kThreadCounts) {
    const auto conn = connectome::BuildConnectome(series,
                                                  ParallelContext{threads});
    ASSERT_TRUE(conn.ok());
    ExpectBitwiseEqual(*conn1, *conn, "BuildConnectome");
  }
}

linalg::Matrix CleanedSeries(const linalg::Matrix& raw, std::size_t threads) {
  preprocess::PipelineConfig config = preprocess::RestingStateConfig();
  config.parallel.num_threads = threads;
  linalg::Matrix series = raw;
  const Status status =
      preprocess::CleanRegionSeries(series, config, /*tr_seconds=*/0.72);
  EXPECT_TRUE(status.ok()) << status.message();
  return series;
}

TEST(ParallelInvarianceTest, TemporalCleanup) {
  const linalg::Matrix raw = RandomMatrix(25, 200, 41);
  const linalg::Matrix clean1 = CleanedSeries(raw, 1);
  for (const std::size_t threads : kThreadCounts) {
    ExpectBitwiseEqual(clean1, CleanedSeries(raw, threads),
                       "CleanRegionSeries");
  }
}

Result<preprocess::PipelineOutput> RunSmallPipeline(
    const image::Volume4D& run, const atlas::Atlas& atlas,
    std::size_t threads) {
  preprocess::PipelineConfig config = preprocess::RestingStateConfig();
  config.motion_correction = false;  // Keep the voxel pass cheap.
  config.parallel.num_threads = threads;
  return preprocess::RunPipeline(run, atlas, config);
}

TEST(ParallelInvarianceTest, VoxelPipeline) {
  atlas::SyntheticAtlasConfig atlas_config;
  atlas_config.nx = 10;
  atlas_config.ny = 10;
  atlas_config.nz = 6;
  atlas_config.num_regions = 8;
  atlas_config.seed = 7;
  const auto atlas = atlas::GenerateSyntheticAtlas(atlas_config);
  ASSERT_TRUE(atlas.ok());

  image::Volume4D run(10, 10, 6, 40);
  Rng rng(51);
  for (float& v : run.flat()) {
    v = static_cast<float>(500.0 + 100.0 * rng.Gaussian());
  }

  const auto out1 = RunSmallPipeline(run, *atlas, 1);
  ASSERT_TRUE(out1.ok());
  for (const std::size_t threads : kThreadCounts) {
    const auto out = RunSmallPipeline(run, *atlas, threads);
    ASSERT_TRUE(out.ok());
    ExpectBitwiseEqual(out1->region_series, out->region_series, "RunPipeline");
  }
}

sim::CohortConfig SmallCohort(std::size_t threads) {
  sim::CohortConfig config = sim::HcpLikeConfig(909);
  config.num_subjects = 8;
  config.num_regions = 16;
  config.frames_override = 60;
  config.parallel.num_threads = threads;
  return config;
}

TEST(ParallelInvarianceTest, CohortGroupMatrix) {
  const auto sim1 = sim::CohortSimulator::Create(SmallCohort(1));
  ASSERT_TRUE(sim1.ok());
  const auto group1 =
      sim1->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  ASSERT_TRUE(group1.ok());
  for (const std::size_t threads : kThreadCounts) {
    const auto sim = sim::CohortSimulator::Create(SmallCohort(threads));
    ASSERT_TRUE(sim.ok());
    const auto group =
        sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
    ASSERT_TRUE(group.ok());
    ExpectBitwiseEqual(group1->data(), group->data(), "BuildGroupMatrix");
  }
}

TEST(ParallelInvarianceTest, EndToEndAttack) {
  // Fit on the LR session, identify the RL session — the whole Figure 3
  // workflow — with the thread count varied through AttackOptions.
  const auto sim = sim::CohortSimulator::Create(SmallCohort(0));
  ASSERT_TRUE(sim.ok());
  const auto known =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  const auto anonymous =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  ASSERT_TRUE(known.ok() && anonymous.ok());

  core::AttackOptions options1;
  options1.num_features = 40;
  options1.parallel.num_threads = 1;
  const auto attack1 = core::DeanonymizationAttack::Fit(*known, options1);
  ASSERT_TRUE(attack1.ok());
  const auto result1 = attack1->Identify(*anonymous);
  ASSERT_TRUE(result1.ok());

  for (const std::size_t threads : kThreadCounts) {
    core::AttackOptions options = options1;
    options.parallel.num_threads = threads;
    const auto attack = core::DeanonymizationAttack::Fit(*known, options);
    ASSERT_TRUE(attack.ok());
    const auto result = attack->Identify(*anonymous);
    ASSERT_TRUE(result.ok());
    ExpectBitwiseEqual(result1->similarity, result->similarity,
                       "Identify similarity");
    EXPECT_EQ(result1->predicted_index, result->predicted_index);
    EXPECT_EQ(result1->predicted_ids, result->predicted_ids);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(result1->accuracy),
              std::bit_cast<std::uint64_t>(result->accuracy));
  }
}

TEST(ParallelInvarianceTest, EndToEndAttackWithTracingEnabled) {
  // Observability must be free of side effects: running the same attack
  // with span/metric collection on cannot perturb a single output bit,
  // and the collection itself must be race-free (the tsan tier runs
  // this).
  const auto sim = sim::CohortSimulator::Create(SmallCohort(0));
  ASSERT_TRUE(sim.ok());
  const auto known =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  const auto anonymous =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  ASSERT_TRUE(known.ok() && anonymous.ok());

  core::AttackOptions plain;
  plain.num_features = 40;
  plain.parallel.num_threads = 1;
  const auto attack1 = core::DeanonymizationAttack::Fit(*known, plain);
  ASSERT_TRUE(attack1.ok());
  const auto result1 = attack1->Identify(*anonymous);
  ASSERT_TRUE(result1.ok());

  for (const std::size_t threads : kThreadCounts) {
    core::AttackOptions traced = plain;
    traced.parallel.num_threads = threads;
    traced.trace.enabled = true;
    const auto attack = core::DeanonymizationAttack::Fit(*known, traced);
    ASSERT_TRUE(attack.ok());
    const auto result = attack->Identify(*anonymous);
    ASSERT_TRUE(result.ok());
    ExpectBitwiseEqual(result1->similarity, result->similarity,
                       "Identify similarity (traced)");
    EXPECT_EQ(result1->predicted_index, result->predicted_index);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(result1->accuracy),
              std::bit_cast<std::uint64_t>(result->accuracy));
  }
  // The traced runs actually recorded spans.
  EXPECT_GT(trace::EventCount(), 0u);
  trace::ClearEvents();
}

TEST(ParallelInvarianceTest, EndToEndAttackStreamed) {
  // The out-of-core fit/identify path must honor the same contract: the
  // (window size x thread count) grid is one bitwise equivalence class,
  // anchored to the 1-thread in-RAM run.
  const auto sim = sim::CohortSimulator::Create(SmallCohort(0));
  ASSERT_TRUE(sim.ok());
  const auto known =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  const auto anonymous =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  ASSERT_TRUE(known.ok() && anonymous.ok());

  core::AttackOptions options1;
  options1.num_features = 40;
  options1.parallel.num_threads = 1;
  const auto attack1 = core::DeanonymizationAttack::Fit(*known, options1);
  ASSERT_TRUE(attack1.ok());
  const auto result1 = attack1->Identify(*anonymous);
  ASSERT_TRUE(result1.ok());

  const connectome::InMemoryMatrixStore known_store(*known);
  const connectome::InMemoryMatrixStore anon_store(*anonymous);
  for (const std::size_t window : {std::size_t{1}, std::size_t{3}}) {
    for (const std::size_t threads : kThreadCounts) {
      core::AttackOptions options = options1;
      options.parallel.num_threads = threads;
      connectome::StreamOptions stream;
      stream.window_cols = window;
      const auto attack = core::DeanonymizationAttack::FitStreamed(
          known_store, options, stream);
      ASSERT_TRUE(attack.ok()) << attack.status();
      ExpectBitwiseEqual(attack1->leverage_scores(),
                         attack->leverage_scores(),
                         "FitStreamed leverage scores");
      EXPECT_EQ(attack1->selected_features(), attack->selected_features());
      const auto result = attack->IdentifyStreamed(anon_store, stream);
      ASSERT_TRUE(result.ok()) << result.status();
      ExpectBitwiseEqual(result1->similarity, result->similarity,
                         "IdentifyStreamed similarity");
      EXPECT_EQ(result1->predicted_index, result->predicted_index);
      EXPECT_EQ(result1->predicted_ids, result->predicted_ids);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(result1->accuracy),
                std::bit_cast<std::uint64_t>(result->accuracy));
    }
  }
}

TEST(ParallelInvarianceTest, TsneEmbedding) {
  const linalg::Matrix points = RandomMatrix(24, 12, 61);
  core::TsneOptions options;
  options.perplexity = 5.0;
  options.max_iterations = 60;

  ScopedDefaultThreadCount baseline(1);
  const auto embed1 = core::TsneEmbed(points, options);
  ASSERT_TRUE(embed1.ok());
  for (const std::size_t threads : kThreadCounts) {
    ScopedDefaultThreadCount scoped(threads);
    const auto embed = core::TsneEmbed(points, options);
    ASSERT_TRUE(embed.ok());
    ExpectBitwiseEqual(embed1->embedding, embed->embedding, "TsneEmbed");
    EXPECT_EQ(std::bit_cast<std::uint64_t>(embed1->kl_divergence),
              std::bit_cast<std::uint64_t>(embed->kl_divergence));
  }
}

TEST(ParallelInvarianceTest, KnnClassification) {
  const linalg::Matrix train = RandomMatrix(60, 5, 71);
  const linalg::Matrix queries = RandomMatrix(23, 5, 72);
  std::vector<int> labels(60);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int>(i % 4);
  }
  const auto pred1 =
      core::KnnClassify(train, labels, queries, 3, ParallelContext{1});
  ASSERT_TRUE(pred1.ok());
  for (const std::size_t threads : kThreadCounts) {
    const auto pred = core::KnnClassify(train, labels, queries, 3,
                                        ParallelContext{threads});
    ASSERT_TRUE(pred.ok());
    EXPECT_EQ(*pred1, *pred);
  }
}

void ExpectBitwiseEqualBatch(const service::BatchIdentifyResult& base,
                             const service::BatchIdentifyResult& got,
                             std::size_t threads, const char* stage) {
  ASSERT_EQ(base.matches.size(), got.matches.size()) << stage;
  EXPECT_EQ(base.probe_ids, got.probe_ids) << stage;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(base.accuracy),
            std::bit_cast<std::uint64_t>(got.accuracy))
      << stage;
  for (std::size_t p = 0; p < base.matches.size(); ++p) {
    EXPECT_EQ(base.matches[p].subject_id, got.matches[p].subject_id)
        << stage << ": " << threads << " threads, probe " << p;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(base.matches[p].similarity),
              std::bit_cast<std::uint64_t>(got.matches[p].similarity))
        << stage << ": " << threads << " threads, probe " << p;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(base.matches[p].margin),
              std::bit_cast<std::uint64_t>(got.matches[p].margin))
        << stage << ": " << threads << " threads, probe " << p;
    EXPECT_EQ(base.matches[p].candidates_scanned,
              got.matches[p].candidates_scanned)
        << stage << ": " << threads << " threads, probe " << p;
  }
}

TEST(ParallelInvarianceTest, ServiceIdentifyBatchAcrossShardedProbes) {
  // The identification service fans (probe x shard) work items onto the
  // pool and merges per-shard candidates in shard order: enrollment,
  // cluster builds, the pruned batch search, and the brute-force oracle
  // must all be bitwise-identical at 1, 2, and 8 threads.
  service::SyntheticGalleryConfig gallery;
  gallery.num_subjects = 200;
  gallery.num_features = 96;
  gallery.seed = 0x1234babeULL;

  struct Run {
    std::string state;
    service::BatchIdentifyResult pruned;
    service::BatchIdentifyResult brute;
  };
  auto build_and_identify = [&](std::size_t threads) {
    Run run;
    service::IndexOptions options;
    options.num_features = 48;
    options.num_shards = 4;
    options.min_cluster_shard_size = 8;  // Clustering active per shard.
    options.parallel.num_threads = threads;
    auto reference = service::MakeSyntheticGallerySlice(gallery, 0, 0, 64);
    EXPECT_TRUE(reference.ok());
    auto index = service::IdentificationIndex::Create(*reference, options);
    EXPECT_TRUE(index.ok()) << index.status();
    auto rest = service::MakeSyntheticGallerySlice(gallery, 0, 64, 200);
    EXPECT_TRUE(rest.ok());
    EXPECT_TRUE(index->EnrollBatch(*rest).ok());
    auto probes = service::MakeSyntheticGallery(gallery, 1);
    EXPECT_TRUE(probes.ok());
    auto pruned = index->IdentifyBatch(*probes);
    EXPECT_TRUE(pruned.ok()) << pruned.status();
    auto brute = index->IdentifyBatchBruteForce(*probes);
    EXPECT_TRUE(brute.ok()) << brute.status();
    run.state = index->DebugStateString();
    run.pruned = std::move(*pruned);
    run.brute = std::move(*brute);
    return run;
  };

  const Run base = build_and_identify(1);
  for (const std::size_t threads : kThreadCounts) {
    const Run got = build_and_identify(threads);
    EXPECT_EQ(base.state, got.state) << threads << " threads";
    ExpectBitwiseEqualBatch(base.pruned, got.pruned, threads,
                            "IdentifyBatch");
    ExpectBitwiseEqualBatch(base.brute, got.brute, threads,
                            "IdentifyBatchBruteForce");
  }
}

// ---------------------------------------------------------------------------
// Scalar vs SIMD kernel parity. The runtime-dispatched vector kernels
// (linalg/simd/) share one canonical accumulation order with the scalar
// reference, so every ISA must produce the same bits on every shape —
// in particular on remainder tails (n % 4 != 0), single-row inputs, the
// kGemmPanelK boundary (255/256/257), and empty inputs. Combined with
// the thread sweep this pins the full contract: same bits for any
// (ISA, thread count) pair.

// Runs `fn` under the scalar kernels and again under the best supported
// vector ISA (a no-op comparison on hosts where scalar is the best).
template <typename Fn>
void ForBothIsas(const Fn& fn) {
  {
    linalg::simd::ScopedIsa scoped(linalg::simd::Isa::kScalar);
    fn(/*scalar=*/true);
  }
  {
    linalg::simd::ScopedIsa scoped(linalg::simd::BestSupportedIsa());
    fn(/*scalar=*/false);
  }
}

void ExpectBitwiseEqualScalar(double a, double b, const char* stage,
                              std::size_t n) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << stage << " at length " << n << ": " << a << " vs " << b;
}

TEST(SimdParityTest, VectorReductionsEveryTailLength) {
  // 0..9 covers every lane-tail remainder twice; the larger sizes cover
  // multi-iteration main loops on both sides of a power of two.
  for (const std::size_t n : {0ul, 1ul, 2ul, 3ul, 4ul, 5ul, 6ul, 7ul, 8ul,
                              9ul, 31ul, 255ul, 256ul, 257ul}) {
    Rng rng(1000 + n);
    linalg::Vector x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.Gaussian();
      y[i] = rng.Gaussian();
    }
    struct Results {
      double dot, norm2sq, mean, variance, pearson;
    } scalar{}, simd{};
    ForBothIsas([&](bool is_scalar) {
      Results& r = is_scalar ? scalar : simd;
      r.dot = linalg::Dot(x, y);
      r.norm2sq = linalg::Norm2Squared(x);
      r.mean = linalg::Mean(x);
      r.variance = linalg::Variance(x);
      r.pearson = linalg::PearsonCorrelation(x, y);
    });
    ExpectBitwiseEqualScalar(scalar.dot, simd.dot, "Dot", n);
    ExpectBitwiseEqualScalar(scalar.norm2sq, simd.norm2sq, "Norm2Squared", n);
    ExpectBitwiseEqualScalar(scalar.mean, simd.mean, "Mean", n);
    ExpectBitwiseEqualScalar(scalar.variance, simd.variance, "Variance", n);
    ExpectBitwiseEqualScalar(scalar.pearson, simd.pearson, "Pearson", n);
  }
}

TEST(SimdParityTest, AxpyTailLengths) {
  for (const std::size_t n : {0ul, 1ul, 3ul, 4ul, 5ul, 8ul, 13ul, 257ul}) {
    Rng rng(2000 + n);
    linalg::Vector x(n), y0(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.Gaussian();
      y0[i] = rng.Gaussian();
    }
    linalg::Vector scalar_y, simd_y;
    ForBothIsas([&](bool is_scalar) {
      linalg::Vector y = y0;
      linalg::Axpy(0.7331, x, y);
      (is_scalar ? scalar_y : simd_y) = std::move(y);
    });
    ExpectBitwiseEqual(scalar_y, simd_y, "Axpy");
  }
}

TEST(SimdParityTest, GemmKernelsAwkwardShapes) {
  struct Shape {
    std::size_t m, k, n;
  };
  // Remainder register tiles (m % 4, n % 4 != 0), a 1-row input, and K
  // straddling the kGemmPanelK = 256 canonical panel boundary.
  constexpr Shape kShapes[] = {{1, 1, 1},   {1, 17, 40},  {4, 4, 4},
                               {5, 3, 7},   {65, 33, 41}, {8, 255, 6},
                               {8, 256, 6}, {8, 257, 6},  {63, 129, 30}};
  for (const Shape& shape : kShapes) {
    const linalg::Matrix a = RandomMatrix(shape.m, shape.k, 31 + shape.m);
    const linalg::Matrix b = RandomMatrix(shape.k, shape.n, 32 + shape.n);
    const linalg::Matrix at = a.Transposed();
    for (const std::size_t threads : kThreadCounts) {
      const ParallelContext ctx{threads};
      linalg::Matrix scalar_mul, simd_mul, scalar_gram, simd_gram;
      ForBothIsas([&](bool is_scalar) {
        (is_scalar ? scalar_mul : simd_mul) = linalg::MatMul(a, b, ctx);
        (is_scalar ? scalar_gram : simd_gram) = linalg::Gram(a, ctx);
      });
      ExpectBitwiseEqual(scalar_mul, simd_mul, "MatMul scalar-vs-simd");
      ExpectBitwiseEqual(scalar_gram, simd_gram, "Gram scalar-vs-simd");
      // Both must still equal the canonical reference order.
      linalg::Matrix ref(shape.m, shape.n);
      linalg::ReferenceGemm(a, false, b, false, &ref);
      ExpectBitwiseEqual(ref, simd_mul, "MatMul vs ReferenceGemm");
      linalg::Matrix gram_ref(shape.k, shape.k);
      linalg::ReferenceGemm(at, false, a, false, &gram_ref);
      ExpectBitwiseEqual(gram_ref, simd_gram, "Gram vs ReferenceGemm");
    }
  }
}

TEST(SimdParityTest, StatsKernels) {
  struct Shape {
    std::size_t rows, cols;
  };
  constexpr Shape kShapes[] = {{1, 7}, {3, 1}, {17, 33}, {5, 257}, {8, 64}};
  for (const Shape& shape : kShapes) {
    linalg::Matrix m = RandomMatrix(shape.rows, shape.cols, 77 + shape.rows);
    // A constant row exercises the degenerate-spread branch next to the
    // vectorized fast path.
    for (std::size_t j = 0; j < shape.cols; ++j) m(0, j) = 2.5;
    const linalg::Matrix probes =
        RandomMatrix(shape.rows, 5, 78 + shape.cols);
    for (const std::size_t threads : kThreadCounts) {
      const ParallelContext ctx{threads};
      linalg::Matrix scalar_z, simd_z, scalar_corr, simd_corr, scalar_xc,
          simd_xc;
      linalg::Vector scalar_norms, simd_norms;
      ForBothIsas([&](bool is_scalar) {
        linalg::Matrix z = m;
        linalg::ZScoreRowsInPlace(z, ctx);
        (is_scalar ? scalar_z : simd_z) = std::move(z);
        (is_scalar ? scalar_corr : simd_corr) = linalg::RowCorrelation(m, ctx);
        (is_scalar ? scalar_xc : simd_xc) =
            linalg::ColumnCrossCorrelation(m, probes, ctx);
        (is_scalar ? scalar_norms : simd_norms) = linalg::RowNormsSquared(m);
      });
      ExpectBitwiseEqual(scalar_z, simd_z, "ZScoreRowsInPlace");
      ExpectBitwiseEqual(scalar_corr, simd_corr, "RowCorrelation");
      ExpectBitwiseEqual(scalar_xc, simd_xc, "ColumnCrossCorrelation");
      ExpectBitwiseEqual(scalar_norms, simd_norms, "RowNormsSquared");
    }
  }
}

TEST(SimdParityTest, DegenerateNormsTakeTheSameBranchOnEveryIsa) {
  // Subnormal-scale and huge-scale columns force the ColumnCrossCorrelation
  // slow path (norm products could underflow/overflow); the branch is a
  // pure function of the norms, so scalar and SIMD must still agree.
  linalg::Matrix a = RandomMatrix(6, 4, 91);
  linalg::Matrix b = RandomMatrix(6, 4, 92);
  for (std::size_t i = 0; i < 6; ++i) {
    a(i, 1) = a(i, 1) * 1e-160;  // norm below the safe window
    b(i, 2) = b(i, 2) * 1e160;   // norm above the safe window
  }
  linalg::Matrix scalar_xc, simd_xc;
  ForBothIsas([&](bool is_scalar) {
    (is_scalar ? scalar_xc : simd_xc) =
        linalg::ColumnCrossCorrelation(a, b, ParallelContext{1});
  });
  ExpectBitwiseEqual(scalar_xc, simd_xc, "ColumnCrossCorrelation degenerate");
}

// ---------------------------------------------------------------------------
// Blocked bidiagonalization: the panel reduction, its level-3 trailing
// updates, and the parallel Givens sweeps of the diagonalization must
// all be thread-count-invariant.

TEST(ParallelInvarianceTest, BlockedBidiagonalization) {
  const linalg::Matrix a = RandomMatrix(90, 70, 21);
  auto run = [&](std::size_t threads) {
    linalg::BidiagOptions options;
    options.parallel.num_threads = threads;
    return linalg::BlockedBidiagonalize(a, options);
  };
  const auto base = run(1);
  ASSERT_TRUE(base.ok()) << base.status();
  for (const std::size_t threads : kThreadCounts) {
    const auto got = run(threads);
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectBitwiseEqual(base->u, got->u, "bidiag U");
    ExpectBitwiseEqual(base->v, got->v, "bidiag V");
    ExpectBitwiseEqual(base->d, got->d, "bidiag d");
    ExpectBitwiseEqual(base->e, got->e, "bidiag e");
  }
}

TEST(ParallelInvarianceTest, BlockedSvd) {
  const linalg::Matrix a = RandomMatrix(96, 80, 22);
  auto run = [&](std::size_t threads) {
    linalg::SvdOptions options;
    options.parallel.num_threads = threads;
    return linalg::Svd(a, options);
  };
  const auto base = run(1);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_TRUE(base->blocked_bidiag);
  for (const std::size_t threads : kThreadCounts) {
    const auto got = run(threads);
    ASSERT_TRUE(got.ok()) << got.status();
    ExpectBitwiseEqual(base->u, got->u, "svd U");
    ExpectBitwiseEqual(base->v, got->v, "svd V");
    ExpectBitwiseEqual(base->s, got->s, "svd s");
  }
}

}  // namespace
}  // namespace neuroprint
