// Unit tests for the dense Matrix type and BLAS-like kernels.

#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "util/random.h"

namespace neuroprint::linalg {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix eye = Matrix::Identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
  const Matrix d = Matrix::Diagonal({2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, RowColCopySetRoundTrip) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.RowCopy(1), (Vector{3, 4}));
  EXPECT_EQ(m.ColCopy(0), (Vector{1, 3, 5}));
  m.SetRow(0, {9, 8});
  EXPECT_EQ(m.RowCopy(0), (Vector{9, 8}));
  m.SetCol(1, {7, 6, 5});
  EXPECT_EQ(m.ColCopy(1), (Vector{7, 6, 5}));
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(7);
  const Matrix m = RandomMatrix(5, 3, rng);
  EXPECT_TRUE(AlmostEqual(m.Transposed().Transposed(), m, 0.0));
  EXPECT_DOUBLE_EQ(m.Transposed()(2, 4), m(4, 2));
}

TEST(MatrixTest, BlockExtraction) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix b = m.Block(1, 1, 2, 2);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_DOUBLE_EQ(b(0, 0), 5);
  EXPECT_DOUBLE_EQ(b(1, 1), 9);
}

TEST(MatrixTest, ArithmeticOperators) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6);
}

TEST(MatrixTest, FrobeniusNormAndMaxAbs) {
  const Matrix m{{3, 4}, {0, 0}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 4.0);
}

TEST(MatrixTest, AllFiniteDetectsNan) {
  Matrix m(2, 2, 1.0);
  EXPECT_TRUE(m.AllFinite());
  m(0, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(m.AllFinite());
  m(0, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(m.AllFinite());
}

TEST(MatMulTest, KnownProduct) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(11);
  const Matrix m = RandomMatrix(4, 4, rng);
  EXPECT_TRUE(AlmostEqual(MatMul(m, Matrix::Identity(4)), m, 1e-15));
  EXPECT_TRUE(AlmostEqual(MatMul(Matrix::Identity(4), m), m, 1e-15));
}

TEST(MatMulTest, TransposedVariantsAgree) {
  Rng rng(13);
  const Matrix a = RandomMatrix(6, 4, rng);
  const Matrix b = RandomMatrix(6, 5, rng);
  EXPECT_TRUE(AlmostEqual(MatTMul(a, b), MatMul(a.Transposed(), b), 1e-12));
  const Matrix c = RandomMatrix(5, 4, rng);
  const Matrix d = RandomMatrix(3, 4, rng);
  EXPECT_TRUE(AlmostEqual(MatMulT(c, d), MatMul(c, d.Transposed()), 1e-12));
}

TEST(MatMulTest, GramMatchesExplicitProduct) {
  Rng rng(17);
  const Matrix a = RandomMatrix(10, 4, rng);
  EXPECT_TRUE(AlmostEqual(Gram(a), MatMul(a.Transposed(), a), 1e-12));
}

TEST(MatVecTest, MatchesMatrixProduct) {
  Rng rng(19);
  const Matrix a = RandomMatrix(5, 3, rng);
  Vector x = {1.0, -2.0, 0.5};
  const Vector y = MatVec(a, x);
  for (std::size_t i = 0; i < 5; ++i) {
    double expected = 0.0;
    for (std::size_t j = 0; j < 3; ++j) expected += a(i, j) * x[j];
    EXPECT_NEAR(y[i], expected, 1e-14);
  }
  const Vector yt = MatTVec(a, {1, 1, 1, 1, 1});
  for (std::size_t j = 0; j < 3; ++j) {
    double expected = 0.0;
    for (std::size_t i = 0; i < 5; ++i) expected += a(i, j);
    EXPECT_NEAR(yt[j], expected, 1e-14);
  }
}

TEST(VectorOpsTest, DotAndNorms) {
  const Vector x{3, 4};
  EXPECT_DOUBLE_EQ(Dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(Norm1(x), 7.0);
  EXPECT_DOUBLE_EQ(NormInf({-6, 2}), 6.0);
}

TEST(VectorOpsTest, AxpyScaleNormalize) {
  Vector y{1, 1};
  Axpy(2.0, {1, 2}, y);
  EXPECT_EQ(y, (Vector{3, 5}));
  Scale(0.5, y);
  EXPECT_EQ(y, (Vector{1.5, 2.5}));
  Vector v{0, 3, 4};
  const double norm = NormalizeInPlace(v);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(Norm2(v), 1.0, 1e-15);
  Vector zero{0, 0};
  EXPECT_DOUBLE_EQ(NormalizeInPlace(zero), 0.0);
  EXPECT_EQ(zero, (Vector{0, 0}));
}

TEST(VectorOpsTest, MeanVarianceStdDev) {
  const Vector x{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(x), 5.0);
  EXPECT_NEAR(Variance(x), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0}), 0.0);
}

TEST(VectorOpsTest, PearsonCorrelationProperties) {
  const Vector x{1, 2, 3, 4, 5};
  EXPECT_NEAR(PearsonCorrelation(x, x), 1.0, 1e-14);
  Vector neg = x;
  Scale(-1.0, neg);
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-14);
  // Correlation is shift/scale invariant.
  Vector y = x;
  Scale(3.0, y);
  for (double& v : y) v += 10.0;
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-14);
  // Zero-variance convention.
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, {2, 2, 2, 2, 2}), 0.0);
}

TEST(VectorOpsTest, ZScoreInPlace) {
  Vector x{1, 2, 3, 4, 5};
  ZScoreInPlace(x);
  EXPECT_NEAR(Mean(x), 0.0, 1e-14);
  EXPECT_NEAR(StdDev(x), 1.0, 1e-14);
  Vector constant{3, 3, 3};
  ZScoreInPlace(constant);
  EXPECT_EQ(constant, (Vector{0, 0, 0}));
}

}  // namespace
}  // namespace neuroprint::linalg
