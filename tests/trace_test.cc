// Tracing-span tests: enablement latching, disabled-mode no-op behavior,
// span nesting/ordering/thread attribution, and chrome://tracing JSON
// well-formedness (the emitted document is parsed back).

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "minijson.h"
#include "util/trace.h"

namespace neuroprint::trace {
namespace {

// Every test starts from a known-disabled, empty-buffer state; the
// enable latch and event buffer are process-wide.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    ClearEvents();
  }
  void TearDown() override {
    SetEnabled(false);
    ClearEvents();
  }
};

TEST_F(TraceTest, ParseTraceEnvSemantics) {
  EXPECT_FALSE(ParseTraceEnv(nullptr));
  EXPECT_FALSE(ParseTraceEnv(""));
  EXPECT_FALSE(ParseTraceEnv("0"));
  EXPECT_TRUE(ParseTraceEnv("1"));
  EXPECT_TRUE(ParseTraceEnv("true"));
  EXPECT_TRUE(ParseTraceEnv("/tmp/out.json"));
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(Enabled());
  {
    NP_TRACE_SCOPE("should.not.appear");
    NP_TRACE_SCOPE("also.not");
  }
  EXPECT_EQ(EventCount(), 0u);
}

TEST_F(TraceTest, ScopedEnableTurnsOnAndRestores) {
  ASSERT_FALSE(Enabled());
  {
    ScopedEnable on(true);
    EXPECT_TRUE(Enabled());
    NP_TRACE_SCOPE("inside");
  }
  EXPECT_FALSE(Enabled());
  EXPECT_EQ(EventCount(), 1u);

  // enable=false never turns an enabled process off.
  SetEnabled(true);
  {
    ScopedEnable off(false);
    EXPECT_TRUE(Enabled());
  }
  EXPECT_TRUE(Enabled());

  // Engaging while already on must not disable on exit.
  {
    ScopedEnable redundant(true);
    EXPECT_TRUE(Enabled());
  }
  EXPECT_TRUE(Enabled());
}

TEST_F(TraceTest, SpansDisabledMidwayStillComplete) {
  SetEnabled(true);
  {
    NP_TRACE_SCOPE("opened.enabled");
    SetEnabled(false);
    // The open span latched its name at construction and records at
    // destruction regardless of the current toggle.
  }
  EXPECT_EQ(EventCount(), 1u);
}

TEST_F(TraceTest, NestingDepthAndCompletionOrder) {
  SetEnabled(true);
  {
    NP_TRACE_SCOPE("outer");
    {
      NP_TRACE_SCOPE("inner");
    }
    {
      NP_TRACE_SCOPE("sibling");
    }
  }
  const std::vector<TraceEvent> events = SnapshotEvents();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: inner, sibling, outer.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "sibling");
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].depth, 0u);
  // All on the same thread.
  EXPECT_EQ(events[0].thread_id, events[2].thread_id);
  EXPECT_EQ(events[1].thread_id, events[2].thread_id);
  // Containment: children start no earlier and end no later than outer.
  const TraceEvent& outer = events[2];
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(events[i].start_ns, outer.start_ns) << events[i].name;
    EXPECT_LE(events[i].start_ns + events[i].duration_ns,
              outer.start_ns + outer.duration_ns)
        << events[i].name;
  }
  // Siblings are ordered: inner finished before sibling started.
  EXPECT_LE(events[0].start_ns + events[0].duration_ns, events[1].start_ns);
}

TEST_F(TraceTest, ThreadsGetDistinctDenseIds) {
  SetEnabled(true);
  {
    NP_TRACE_SCOPE("main.thread");
  }
  std::thread worker([] { NP_TRACE_SCOPE("worker.thread"); });
  worker.join();
  const std::vector<TraceEvent> events = SnapshotEvents();
  ASSERT_EQ(events.size(), 2u);
  ASSERT_EQ(events[0].name, "main.thread");
  ASSERT_EQ(events[1].name, "worker.thread");
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
  // Depth resets per thread: the worker's first span is top-level.
  EXPECT_EQ(events[1].depth, 0u);
}

TEST_F(TraceTest, ClearEventsDropsBuffer) {
  SetEnabled(true);
  {
    NP_TRACE_SCOPE("ephemeral");
  }
  ASSERT_EQ(EventCount(), 1u);
  ClearEvents();
  EXPECT_EQ(EventCount(), 0u);
}

TEST_F(TraceTest, ChromeJsonParsesBackWithAllSpans) {
  SetEnabled(true);
  {
    NP_TRACE_SCOPE("stage.one");
    {
      NP_TRACE_SCOPE("stage.two");
    }
  }
  const std::string json = ToChromeJson();
  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(json, &doc)) << json;
  ASSERT_EQ(doc.type, minijson::Value::Type::kObject);
  const minijson::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, minijson::Value::Type::kArray);
  ASSERT_EQ(events->array.size(), 2u);

  std::vector<std::string> names;
  for (const minijson::Value& event : events->array) {
    ASSERT_EQ(event.type, minijson::Value::Type::kObject);
    const minijson::Value* name = event.Find("name");
    const minijson::Value* ph = event.Find("ph");
    const minijson::Value* cat = event.Find("cat");
    const minijson::Value* ts = event.Find("ts");
    const minijson::Value* dur = event.Find("dur");
    const minijson::Value* pid = event.Find("pid");
    const minijson::Value* tid = event.Find("tid");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(cat, nullptr);
    ASSERT_NE(ts, nullptr);
    ASSERT_NE(dur, nullptr);
    ASSERT_NE(pid, nullptr);
    ASSERT_NE(tid, nullptr);
    EXPECT_EQ(ph->str, "X");  // complete events
    EXPECT_EQ(cat->str, "neuroprint");
    EXPECT_EQ(ts->type, minijson::Value::Type::kNumber);
    EXPECT_EQ(dur->type, minijson::Value::Type::kNumber);
    EXPECT_GE(ts->number, 0.0);
    EXPECT_GE(dur->number, 0.0);
    names.push_back(name->str);
  }
  EXPECT_EQ(names[0], "stage.two");  // completion order
  EXPECT_EQ(names[1], "stage.one");
}

TEST_F(TraceTest, EmptyBufferStillValidJson) {
  const std::string json = ToChromeJson();
  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(json, &doc)) << json;
  const minijson::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

TEST_F(TraceTest, WriteChromeTraceProducesParsableFile) {
  SetEnabled(true);
  {
    NP_TRACE_SCOPE("to.disk");
  }
  const std::string path = ::testing::TempDir() + "/trace_test_out.json";
  ASSERT_TRUE(WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(buffer.str(), &doc));
  const minijson::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 1u);
  EXPECT_EQ(events->array[0].Find("name")->str, "to.disk");
}

TEST_F(TraceTest, WriteChromeTraceBadPathFails) {
  EXPECT_FALSE(WriteChromeTrace("/nonexistent-dir-xyz/trace.json").ok());
}

}  // namespace
}  // namespace neuroprint::trace
