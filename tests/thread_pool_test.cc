// Unit tests for util/thread_pool.h: chunk coverage and thread-count
// invariance of the chunking itself, nested regions, exception and Status
// propagation, oversubscription, and the NEUROPRINT_THREADS resolution
// chain. These carry the `concurrency` ctest label, so the TSan tier runs
// them with real worker threads.

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace neuroprint {
namespace {

// Chunk boundaries recorded by one ParallelFor run, sorted by begin.
std::vector<std::pair<std::size_t, std::size_t>> RecordChunks(
    const ParallelContext& ctx, std::size_t begin, std::size_t end,
    std::size_t grain) {
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  ParallelFor(ctx, begin, end, grain, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mutex);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  return chunks;
}

TEST(ParallelForTest, ZeroLengthRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor(ParallelContext{4}, 5, 5, 2,
              [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  ParallelFor(ParallelContext{4}, 7, 3, 2,
              [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, ZeroGrainBehavesAsGrainOne) {
  const auto chunks = RecordChunks(ParallelContext{2}, 0, 3, 0);
  ASSERT_EQ(chunks.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(chunks[c].first, c);
    EXPECT_EQ(chunks[c].second, c + 1);
  }
}

TEST(ParallelForTest, ChunksCoverRangeExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> hits(103);
    ParallelFor(ParallelContext{threads}, 3, 103, 7,
                [&](std::size_t lo, std::size_t hi) {
                  for (std::size_t i = lo; i < hi; ++i) {
                    hits[i].fetch_add(1);
                  }
                });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), i >= 3 ? 1 : 0) << "index " << i;
    }
  }
}

TEST(ParallelForTest, ChunkBoundariesAreThreadCountInvariant) {
  const auto serial = RecordChunks(ParallelContext{1}, 2, 57, 5);
  const auto threaded = RecordChunks(ParallelContext{8}, 2, 57, 5);
  EXPECT_EQ(serial, threaded);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial.front().first, 2u);
  EXPECT_EQ(serial.back().second, 57u);
}

TEST(ParallelForTest, OversubscriptionCompletes) {
  // Far more runners than cores (this host may have a single core): all
  // chunks must still run exactly once.
  std::atomic<std::size_t> sum{0};
  ParallelFor(ParallelContext{32}, 0, 1000, 1,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) sum.fetch_add(i);
              });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST(ParallelForTest, NestedParallelForRunsInlineWithoutDeadlock) {
  std::atomic<int> inner_calls{0};
  ParallelFor(ParallelContext{4}, 0, 8, 1, [&](std::size_t, std::size_t) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The nested loop must run (inline) rather than deadlock on the pool.
    ParallelFor(ParallelContext{4}, 0, 4, 1,
                [&](std::size_t, std::size_t) { inner_calls.fetch_add(1); });
  });
  EXPECT_EQ(inner_calls.load(), 8 * 4);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ParallelForTest, PropagatesLowestChunkException) {
  try {
    ParallelFor(ParallelContext{4}, 0, 16, 1,
                [&](std::size_t lo, std::size_t) {
                  if (lo == 3 || lo == 11) {
                    throw std::runtime_error("chunk " + std::to_string(lo));
                  }
                });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 3");
  }
}

TEST(ParallelForTest, AllChunksRunEvenWhenOneThrows) {
  std::atomic<int> calls{0};
  EXPECT_THROW(ParallelFor(ParallelContext{4}, 0, 12, 1,
                           [&](std::size_t lo, std::size_t) {
                             calls.fetch_add(1);
                             if (lo == 0) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  EXPECT_EQ(calls.load(), 12);
}

TEST(ParallelForStatusTest, ReturnsOkWhenAllChunksSucceed) {
  std::atomic<int> calls{0};
  const Status status = ParallelForStatus(
      ParallelContext{4}, 0, 10, 3, [&](std::size_t, std::size_t) -> Status {
        calls.fetch_add(1);
        return Status::OK();
      });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls.load(), 4);  // ceil(10 / 3)
}

TEST(ParallelForStatusTest, LowestChunkErrorWins) {
  const Status status = ParallelForStatus(
      ParallelContext{4}, 0, 16, 2, [&](std::size_t lo, std::size_t) -> Status {
        if (lo >= 6) {
          return Status::Internal("chunk starting at " + std::to_string(lo));
        }
        return Status::OK();
      });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("chunk starting at 6"), std::string::npos);
}

TEST(ParallelForStatusTest, EmptyRangeIsOk) {
  EXPECT_TRUE(ParallelForStatus(ParallelContext{4}, 4, 4, 1,
                                [](std::size_t, std::size_t) -> Status {
                                  return Status::Internal("never runs");
                                })
                  .ok());
}

TEST(ParallelReduceTest, SumMatchesSerialBitwise) {
  // Pseudo-random doubles; FP addition is non-associative, so bitwise
  // equality across thread counts demonstrates the fixed chunk grouping.
  std::vector<double> values(1000);
  std::uint64_t state = 42;
  for (double& v : values) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v = static_cast<double>(state >> 11) * 0x1.0p-53 - 0.5;
  }
  auto chunk_sum = [&](std::size_t lo, std::size_t hi) {
    double s = 0.0;
    for (std::size_t i = lo; i < hi; ++i) s += values[i];
    return s;
  };
  auto add = [](double a, double b) { return a + b; };
  const double serial = ParallelReduce(ParallelContext{1}, 0, values.size(),
                                       64, 0.0, chunk_sum, add);
  const double two = ParallelReduce(ParallelContext{2}, 0, values.size(), 64,
                                    0.0, chunk_sum, add);
  const double eight = ParallelReduce(ParallelContext{8}, 0, values.size(), 64,
                                      0.0, chunk_sum, add);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);
}

TEST(ParallelReduceTest, EmptyRangeReturnsInit) {
  EXPECT_EQ(ParallelReduce(
                ParallelContext{4}, 3, 3, 1, 17,
                [](std::size_t, std::size_t) { return 1; },
                [](int a, int b) { return a + b; }),
            17);
}

TEST(ThreadPoolTest, DirectUseRunsAllChunks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(0, 50, 4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WorkStealingDrainsSkewedChunks) {
  // Front-load the cost: the first owner range carries almost all the
  // work, so the other runners go dry immediately and must steal from its
  // back for the loop to finish promptly. Every chunk still runs exactly
  // once regardless of who executes it.
  ThreadPool pool(3);
  constexpr std::size_t kChunks = 64;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.ParallelFor(0, kChunks, 1, [&](std::size_t lo, std::size_t) {
    if (lo < kChunks / 4) {
      // Busy work on the expensive prefix (owned by runner 0).
      volatile double sink = 0.0;
      for (int i = 0; i < 200000; ++i) sink = sink + 1e-9;
    }
    hits[lo].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ManyMoreRunnersThanChunks) {
  // max_runners far beyond the chunk count: runner count clamps to the
  // chunk count and every chunk runs exactly once.
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(5);
  pool.ParallelFor(0, 5, 1,
                   [&](std::size_t lo, std::size_t) { hits[lo].fetch_add(1); },
                   /*max_runners=*/64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::size_t sum = 0;  // No synchronization needed: caller-only.
  pool.ParallelFor(0, 10, 3,
                   [&](std::size_t lo, std::size_t hi) { sum += hi - lo; });
  EXPECT_EQ(sum, 10u);
}

TEST(ParseThreadCountTest, ParsesDigitsRejectsJunk) {
  EXPECT_EQ(ParseThreadCount(nullptr), 0u);
  EXPECT_EQ(ParseThreadCount(""), 0u);
  EXPECT_EQ(ParseThreadCount("8"), 8u);
  EXPECT_EQ(ParseThreadCount("16"), 16u);
  EXPECT_EQ(ParseThreadCount("0"), 0u);
  EXPECT_EQ(ParseThreadCount("-2"), 0u);
  EXPECT_EQ(ParseThreadCount("4x"), 0u);
  EXPECT_EQ(ParseThreadCount(" 4"), 0u);
  EXPECT_EQ(ParseThreadCount("1000000000000"), kMaxThreadCount);
}

TEST(ThreadCountTest, ResolveRespectsContextThenDefault) {
  EXPECT_EQ(ResolveThreadCount(ParallelContext{3}), 3u);
  EXPECT_EQ(ResolveThreadCount(ParallelContext{kMaxThreadCount + 50}),
            kMaxThreadCount);
  EXPECT_GE(ResolveThreadCount(ParallelContext{}), 1u);
}

TEST(ThreadCountTest, ScopedDefaultOverridesAndRestores) {
  const std::size_t before = DefaultThreadCount();
  {
    ScopedDefaultThreadCount scoped(5);
    EXPECT_EQ(DefaultThreadCount(), 5u);
    EXPECT_EQ(ResolveThreadCount(ParallelContext{}), 5u);
    {
      ScopedDefaultThreadCount inner(2);
      EXPECT_EQ(DefaultThreadCount(), 2u);
    }
    EXPECT_EQ(DefaultThreadCount(), 5u);
  }
  EXPECT_EQ(DefaultThreadCount(), before);
}

TEST(ThreadCountTest, ScopedZeroIsANoOp) {
  const std::size_t before = DefaultThreadCount();
  {
    ScopedDefaultThreadCount scoped(0);
    EXPECT_EQ(DefaultThreadCount(), before);
  }
  EXPECT_EQ(DefaultThreadCount(), before);
}

TEST(GrainForWorkTest, ScalesInverselyWithPerItemWork) {
  EXPECT_EQ(GrainForWork(0), kGrainTargetWork);
  EXPECT_EQ(GrainForWork(1), kGrainTargetWork);
  EXPECT_EQ(GrainForWork(kGrainTargetWork), 1u);
  EXPECT_EQ(GrainForWork(kGrainTargetWork * 10), 1u);
  EXPECT_EQ(GrainForWork(256), kGrainTargetWork / 256);
}

}  // namespace
}  // namespace neuroprint
