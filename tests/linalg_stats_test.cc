// Tests for matrix-level statistics: row/column moments, z-scoring,
// covariance, correlation matrices, and the cross-correlation kernel the
// matcher is built on.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "linalg/stats.h"
#include "linalg/vector_ops.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/trace.h"

namespace neuroprint::linalg {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

TEST(StatsTest, RowAndColMeans) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(RowMeans(m), (Vector{2.0, 5.0}));
  EXPECT_EQ(ColMeans(m), (Vector{2.5, 3.5, 4.5}));
  EXPECT_TRUE(RowMeans(Matrix()).empty());
}

TEST(StatsTest, RowStdDevsMatchVectorOps) {
  Rng rng(1);
  const Matrix m = RandomMatrix(5, 40, rng);
  const Vector sds = RowStdDevs(m);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(sds[i], StdDev(m.RowCopy(i)), 1e-12);
  }
}

TEST(StatsTest, ZScoreRowsProperties) {
  Rng rng(2);
  Matrix m = RandomMatrix(6, 50, rng);
  // Plant a constant row.
  for (std::size_t j = 0; j < 50; ++j) m(3, j) = 7.0;
  ZScoreRowsInPlace(m);
  for (std::size_t i = 0; i < 6; ++i) {
    const Vector row = m.RowCopy(i);
    if (i == 3) {
      EXPECT_DOUBLE_EQ(Norm2(row), 0.0);  // Constant row zeroed.
    } else {
      EXPECT_NEAR(Mean(row), 0.0, 1e-12);
      EXPECT_NEAR(StdDev(row), 1.0, 1e-12);
    }
  }
}

TEST(StatsTest, ZScoreColsProperties) {
  Rng rng(3);
  Matrix m = RandomMatrix(30, 4, rng);
  ZScoreColsInPlace(m);
  for (std::size_t j = 0; j < 4; ++j) {
    const Vector col = m.ColCopy(j);
    EXPECT_NEAR(Mean(col), 0.0, 1e-12);
    EXPECT_NEAR(StdDev(col), 1.0, 1e-12);
  }
}

TEST(StatsTest, RowNormsSquared) {
  const Matrix m{{3, 4}, {0, 0}, {1, 2}};
  EXPECT_EQ(RowNormsSquared(m), (Vector{25.0, 0.0, 5.0}));
}

TEST(StatsTest, RowCovarianceMatchesDefinition) {
  Rng rng(4);
  const Matrix m = RandomMatrix(4, 200, rng);
  const Matrix cov = RowCovariance(m);
  for (std::size_t i = 0; i < 4; ++i) {
    // Diagonal equals per-row variance.
    EXPECT_NEAR(cov(i, i), Variance(m.RowCopy(i)), 1e-10);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(cov(i, j), cov(j, i), 1e-12);  // Symmetric.
      // Direct two-pass covariance.
      const Vector a = m.RowCopy(i);
      const Vector b = m.RowCopy(j);
      const double ma = Mean(a), mb = Mean(b);
      double direct = 0.0;
      for (std::size_t t = 0; t < a.size(); ++t) {
        direct += (a[t] - ma) * (b[t] - mb);
      }
      direct /= static_cast<double>(a.size() - 1);
      EXPECT_NEAR(cov(i, j), direct, 1e-10);
    }
  }
}

TEST(StatsTest, RowCorrelationMatchesPairwisePearson) {
  Rng rng(5);
  const Matrix m = RandomMatrix(6, 80, rng);
  const Matrix corr = RowCorrelation(m);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(corr(i, i), 1.0);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(corr(i, j),
                  PearsonCorrelation(m.RowCopy(i), m.RowCopy(j)), 1e-10);
    }
  }
}

TEST(StatsTest, RowCorrelationHandlesConstantRow) {
  Rng rng(6);
  Matrix m = RandomMatrix(3, 30, rng);
  for (std::size_t t = 0; t < 30; ++t) m(1, t) = -2.0;
  const Matrix corr = RowCorrelation(m);
  EXPECT_DOUBLE_EQ(corr(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(corr(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(corr(1, 2), 0.0);
}

TEST(StatsTest, ColumnCrossCorrelationMatchesPairwisePearson) {
  Rng rng(7);
  const Matrix a = RandomMatrix(60, 3, rng);
  const Matrix b = RandomMatrix(60, 4, rng);
  const Matrix cross = ColumnCrossCorrelation(a, b);
  ASSERT_EQ(cross.rows(), 3u);
  ASSERT_EQ(cross.cols(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(cross(i, j),
                  PearsonCorrelation(a.ColCopy(i), b.ColCopy(j)), 1e-10);
    }
  }
}

TEST(StatsTest, ColumnCrossCorrelationSelfDiagonalIsOne) {
  Rng rng(8);
  const Matrix a = RandomMatrix(40, 5, rng);
  const Matrix self = ColumnCrossCorrelation(a, a);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(self(i, i), 1.0, 1e-12);
  }
}

TEST(StatsTest, ColumnCrossCorrelationScaleInvariant) {
  Rng rng(9);
  const Matrix a = RandomMatrix(50, 2, rng);
  Matrix scaled = a;
  for (std::size_t i = 0; i < 50; ++i) {
    scaled(i, 0) = 3.0 * scaled(i, 0) + 11.0;  // Affine per column.
  }
  const Matrix c1 = ColumnCrossCorrelation(a, a);
  const Matrix c2 = ColumnCrossCorrelation(scaled, a);
  EXPECT_NEAR(c1(0, 1), c2(0, 1), 1e-10);
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::uint64_t CounterValue(const std::string& name) {
  const metrics::Snapshot snapshot =
      metrics::Registry::Global().TakeSnapshot();
  for (const auto& counter : snapshot.counters) {
    if (counter.name == name) return counter.value;
  }
  return 0;
}

TEST(StatsDegenerateTest, ZScoreRowsZeroesNaNAndConstantRows) {
  trace::ScopedEnable enable(true);
  metrics::Registry::Global().Reset();
  Rng rng(10);
  Matrix m = RandomMatrix(4, 25, rng);
  for (std::size_t j = 0; j < 25; ++j) m(1, j) = 7.0;  // Constant row.
  m(2, 13) = kNaN;                                     // Poisoned row.
  ZScoreRowsInPlace(m);
  for (std::size_t j = 0; j < 25; ++j) {
    EXPECT_DOUBLE_EQ(m(1, j), 0.0);
    EXPECT_DOUBLE_EQ(m(2, j), 0.0);
  }
  for (std::size_t i : {std::size_t{0}, std::size_t{3}}) {
    EXPECT_NEAR(Mean(m.RowCopy(i)), 0.0, 1e-12);
    EXPECT_NEAR(StdDev(m.RowCopy(i)), 1.0, 1e-12);
  }
  EXPECT_EQ(CounterValue("stats.zero_variance_series"), 1u);
  EXPECT_EQ(CounterValue("stats.nonfinite_series"), 1u);
}

TEST(StatsDegenerateTest, ZScoreColsZeroesNaNAndConstantColumns) {
  trace::ScopedEnable enable(true);
  metrics::Registry::Global().Reset();
  Rng rng(11);
  Matrix m = RandomMatrix(20, 4, rng);
  for (std::size_t i = 0; i < 20; ++i) m(i, 0) = -3.0;  // Constant column.
  m(7, 2) = kNaN;                                       // Poisoned column.
  ZScoreColsInPlace(m);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(m(i, 0), 0.0);
    EXPECT_DOUBLE_EQ(m(i, 2), 0.0);
  }
  for (std::size_t j : {std::size_t{1}, std::size_t{3}}) {
    EXPECT_NEAR(Mean(m.ColCopy(j)), 0.0, 1e-12);
    EXPECT_NEAR(StdDev(m.ColCopy(j)), 1.0, 1e-12);
  }
  EXPECT_EQ(CounterValue("stats.zero_variance_series"), 1u);
  EXPECT_EQ(CounterValue("stats.nonfinite_series"), 1u);
}

TEST(StatsDegenerateTest, RowCorrelationNaNRowYieldsZeroNotNaN) {
  Rng rng(12);
  Matrix m = RandomMatrix(3, 40, rng);
  m(1, 0) = kNaN;
  const Matrix corr = RowCorrelation(m);
  EXPECT_DOUBLE_EQ(corr(1, 1), 1.0);  // Diagonal stays defined.
  EXPECT_DOUBLE_EQ(corr(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(corr(1, 2), 0.0);
  EXPECT_TRUE(std::isfinite(corr(0, 2)));
}

TEST(StatsDegenerateTest, ColumnCrossCorrelationNaNColumnYieldsZero) {
  Rng rng(13);
  Matrix a = RandomMatrix(30, 3, rng);
  Matrix b = RandomMatrix(30, 2, rng);
  a(4, 1) = kNaN;
  const Matrix cross = ColumnCrossCorrelation(a, b);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_DOUBLE_EQ(cross(1, j), 0.0);
    EXPECT_TRUE(std::isfinite(cross(0, j)));
    EXPECT_TRUE(std::isfinite(cross(2, j)));
  }
}

TEST(StatsDegenerateTest, PearsonAndZScoreVectorOpsHandleNaN) {
  Vector poisoned{1.0, kNaN, 3.0, 4.0};
  const Vector clean{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(poisoned, clean), 0.0);
  ZScoreInPlace(poisoned);
  for (double v : poisoned) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace neuroprint::linalg
