// Pinned-seed end-to-end regression test: the full simulate -> fit ->
// identify workflow with a fixed seed must keep producing exactly the
// outputs checked in below — the identification accuracy, the predicted
// assignment, and the top selected leverage features down to the bit.
//
// These goldens pin the composed numeric behavior of the cohort
// simulator, preprocessing-free group-matrix path, leverage-score
// feature selection, and correlation matcher. Any change that moves them
// is either a bug or an intentional numeric change; in the latter case
// regenerate the constants (the test's failure output prints the new
// bits) and explain the change in the commit message. The 50% accuracy
// is not a quality claim — this cohort is deliberately tiny (8 subjects,
// 16 regions, 60 frames) to keep the tier fast.

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "connectome/matrix_store.h"
#include "core/attack.h"
#include "sim/cohort.h"

namespace neuroprint {
namespace {

struct GoldenFeature {
  std::size_t index;
  std::uint64_t leverage_bits;
};

// Generated from the pinned run below at 1 thread; the thread count must
// not matter (see parallel_invariance_test).
//
// Leverage bits re-pinned when the level-1 reductions (Dot / Mean /
// Variance and friends) adopted the SIMD layer's canonical lane-split
// order — four interleaved partial sums folded left to right — which is
// bit-identical across scalar/AVX2/NEON kernels but differs from the old
// single-accumulator serial order by a few ULPs (see
// linalg/simd/simd.h). Accuracy, the predicted assignment, and the
// feature ranking were unaffected.
constexpr std::uint64_t kGoldenAccuracyBits = 0x3fe0000000000000ull;  // 0.5
constexpr std::size_t kGoldenPredictedIndex[] = {0, 5, 4, 4, 4, 5, 5, 7};
constexpr GoldenFeature kGoldenTopFeatures[] = {
    {35, 0x3fc4599afc621866ull},  // 0.15898454020879454
    {80, 0x3fc25c4f96a4e71bull},  // 0.14344210487052397
    {76, 0x3fc1cc4b49fb8bbbull},  // 0.13904706108504947
    {48, 0x3fc13391370aac94ull},  // 0.1343862074621468
    {77, 0x3fc113851180bdb8ull},  // 0.13340819697030581
    {55, 0x3fc105767e69c4a2ull},  // 0.13297921345250524
    {25, 0x3fc02f8404e24c11ull},  // 0.12645006407237294
    {11, 0x3fbfef7d3d6e057cull},  // 0.12474806546926759
};

TEST(RegressionGoldenTest, PinnedSeedAttackMatchesGoldens) {
  sim::CohortConfig config = sim::HcpLikeConfig(909);
  config.num_subjects = 8;
  config.num_regions = 16;
  config.frames_override = 60;
  config.parallel.num_threads = 1;
  const auto sim = sim::CohortSimulator::Create(config);
  ASSERT_TRUE(sim.ok());
  const auto known =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  const auto anonymous =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  ASSERT_TRUE(known.ok() && anonymous.ok());

  core::AttackOptions options;
  options.num_features = 40;
  options.parallel.num_threads = 1;
  const auto attack = core::DeanonymizationAttack::Fit(*known, options);
  ASSERT_TRUE(attack.ok());
  const auto result = attack->Identify(*anonymous);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(std::bit_cast<std::uint64_t>(result->accuracy),
            kGoldenAccuracyBits)
      << "accuracy moved to " << result->accuracy;

  const std::vector<std::size_t> expected_index(
      std::begin(kGoldenPredictedIndex), std::end(kGoldenPredictedIndex));
  EXPECT_EQ(result->predicted_index, expected_index);

  const std::vector<std::size_t>& selected = attack->selected_features();
  const linalg::Vector& leverage = attack->leverage_scores();
  ASSERT_EQ(selected.size(), options.num_features);
  for (std::size_t i = 0; i < std::size(kGoldenTopFeatures); ++i) {
    const GoldenFeature& golden = kGoldenTopFeatures[i];
    ASSERT_EQ(selected[i], golden.index) << "rank " << i;
    const double score = leverage[selected[i]];
    EXPECT_EQ(std::bit_cast<std::uint64_t>(score), golden.leverage_bits)
        << "leverage for feature " << selected[i] << " moved to " << std::hex
        << std::bit_cast<std::uint64_t>(score) << " (" << score << ")";
  }
}

TEST(RegressionGoldenTest, StreamedAttackMatchesTheSameGoldens) {
  // The out-of-core path is pinned to the same constants: file-backed or
  // not, windowed or not, the attack must land on these exact bits.
  sim::CohortConfig config = sim::HcpLikeConfig(909);
  config.num_subjects = 8;
  config.num_regions = 16;
  config.frames_override = 60;
  config.parallel.num_threads = 1;
  const auto sim = sim::CohortSimulator::Create(config);
  ASSERT_TRUE(sim.ok());
  const auto known =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  const auto anonymous =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  ASSERT_TRUE(known.ok() && anonymous.ok());

  core::AttackOptions options;
  options.num_features = 40;
  options.parallel.num_threads = 1;
  const connectome::InMemoryMatrixStore known_store(*known);
  const connectome::InMemoryMatrixStore anon_store(*anonymous);
  connectome::StreamOptions stream;
  stream.window_cols = 3;  // Deliberately awkward: 8 subjects, ragged tail.
  const auto attack = core::DeanonymizationAttack::FitStreamed(
      known_store, options, stream);
  ASSERT_TRUE(attack.ok()) << attack.status();
  const auto result = attack->IdentifyStreamed(anon_store, stream);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(std::bit_cast<std::uint64_t>(result->accuracy),
            kGoldenAccuracyBits)
      << "streamed accuracy moved to " << result->accuracy;
  const std::vector<std::size_t> expected_index(
      std::begin(kGoldenPredictedIndex), std::end(kGoldenPredictedIndex));
  EXPECT_EQ(result->predicted_index, expected_index);

  const std::vector<std::size_t>& selected = attack->selected_features();
  const linalg::Vector& leverage = attack->leverage_scores();
  ASSERT_EQ(selected.size(), options.num_features);
  for (std::size_t i = 0; i < std::size(kGoldenTopFeatures); ++i) {
    const GoldenFeature& golden = kGoldenTopFeatures[i];
    ASSERT_EQ(selected[i], golden.index) << "rank " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(leverage[selected[i]]),
              golden.leverage_bits)
        << "streamed leverage for feature " << selected[i];
  }
}

}  // namespace
}  // namespace neuroprint
