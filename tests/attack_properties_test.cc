// Property-style tests of the end-to-end attack on simulated cohorts:
// determinism, monotonicity in the attack budget, CMC behaviour, and
// margin/accuracy consistency.

#include <gtest/gtest.h>

#include "core/attack.h"
#include "core/matcher.h"
#include "sim/cohort.h"

namespace neuroprint::core {
namespace {

class AttackPropertiesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::CohortConfig config;
    config.num_subjects = 16;
    config.num_regions = 40;
    config.frames_override = 200;
    config.seed = 913;
    auto cohort = sim::CohortSimulator::Create(config);
    ASSERT_TRUE(cohort.ok());
    auto known = cohort->BuildGroupMatrix(sim::TaskType::kRest,
                                          sim::Encoding::kLeftRight);
    auto anonymous = cohort->BuildGroupMatrix(sim::TaskType::kRest,
                                              sim::Encoding::kRightLeft);
    ASSERT_TRUE(known.ok());
    ASSERT_TRUE(anonymous.ok());
    known_ = std::move(known).value();
    anonymous_ = std::move(anonymous).value();
  }

  connectome::GroupMatrix known_;
  connectome::GroupMatrix anonymous_;
};

TEST_F(AttackPropertiesTest, FullyDeterministic) {
  AttackOptions options;
  options.num_features = 64;
  const auto a = DeanonymizationAttack::Fit(known_, options);
  const auto b = DeanonymizationAttack::Fit(known_, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->selected_features(), b->selected_features());
  const auto ra = a->Identify(anonymous_);
  const auto rb = b->Identify(anonymous_);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra->predicted_index, rb->predicted_index);
  EXPECT_TRUE(linalg::AlmostEqual(ra->similarity, rb->similarity, 0.0));
}

TEST_F(AttackPropertiesTest, AccuracyReasonableAcrossBudgets) {
  // Accuracy should reach its plateau quickly and never fall off a cliff
  // as the budget grows (more features only add noise gradually).
  double accuracy_at_16 = 0.0, accuracy_at_256 = 0.0;
  for (const std::size_t budget : {16u, 64u, 256u}) {
    AttackOptions options;
    options.num_features = budget;
    const auto attack = DeanonymizationAttack::Fit(known_, options);
    ASSERT_TRUE(attack.ok());
    const auto result = attack->Identify(anonymous_);
    ASSERT_TRUE(result.ok());
    if (budget == 16) accuracy_at_16 = result->accuracy;
    if (budget == 256) accuracy_at_256 = result->accuracy;
  }
  EXPECT_GE(accuracy_at_16, 0.5);   // Tiny budget already works.
  EXPECT_GE(accuracy_at_256, 0.9);  // Plateau reached.
}

TEST_F(AttackPropertiesTest, CmcDominatesRankOneAccuracy) {
  const auto attack = DeanonymizationAttack::Fit(known_);
  ASSERT_TRUE(attack.ok());
  const auto result = attack->Identify(anonymous_);
  ASSERT_TRUE(result.ok());
  const auto curve =
      CumulativeMatchCurve(result->similarity, known_.subject_ids(),
                           anonymous_.subject_ids(), 16);
  ASSERT_TRUE(curve.ok());
  ASSERT_FALSE(curve->empty());
  EXPECT_DOUBLE_EQ((*curve)[0], result->accuracy);
  for (std::size_t k = 1; k < curve->size(); ++k) {
    EXPECT_GE((*curve)[k], (*curve)[k - 1]);
  }
  // Every true identity is in the gallery, so the curve ends at 1.
  EXPECT_DOUBLE_EQ(curve->back(), 1.0);
}

TEST_F(AttackPropertiesTest, MarginsPositiveForCorrectMatches) {
  const auto attack = DeanonymizationAttack::Fit(known_);
  ASSERT_TRUE(attack.ok());
  const auto result = attack->Identify(anonymous_);
  ASSERT_TRUE(result.ok());
  const auto margins = MatchMargins(result->similarity);
  ASSERT_TRUE(margins.ok());
  for (std::size_t j = 0; j < anonymous_.num_subjects(); ++j) {
    EXPECT_GE((*margins)[j], 0.0);
    if (result->predicted_ids[j] == anonymous_.subject_ids()[j]) {
      EXPECT_GT((*margins)[j], 0.0);
    }
  }
}

TEST_F(AttackPropertiesTest, SubsetGalleryStillRanksTrueIdentity) {
  // Drop half the known subjects: targets whose identity remains in the
  // gallery should still rank it first most of the time; targets whose
  // identity was dropped get the sentinel rank.
  std::vector<linalg::Vector> columns;
  std::vector<std::string> ids;
  for (std::size_t s = 0; s < known_.num_subjects(); s += 2) {
    columns.push_back(known_.SubjectColumn(s));
    ids.push_back(known_.subject_ids()[s]);
  }
  const auto half = connectome::GroupMatrix::FromFeatureColumns(columns, ids);
  ASSERT_TRUE(half.ok());
  const auto attack = DeanonymizationAttack::Fit(*half);
  ASSERT_TRUE(attack.ok());
  const auto result = attack->Identify(anonymous_);
  ASSERT_TRUE(result.ok());
  const auto ranks = TrueMatchRanks(result->similarity, half->subject_ids(),
                                    anonymous_.subject_ids());
  ASSERT_TRUE(ranks.ok());
  std::size_t in_gallery_rank1 = 0, in_gallery_total = 0;
  for (std::size_t j = 0; j < anonymous_.num_subjects(); ++j) {
    if (j % 2 == 0) {
      ++in_gallery_total;
      if ((*ranks)[j] == 1) ++in_gallery_rank1;
    } else {
      EXPECT_EQ((*ranks)[j], half->num_subjects() + 1);
    }
  }
  EXPECT_GE(static_cast<double>(in_gallery_rank1),
            0.7 * static_cast<double>(in_gallery_total));
}

}  // namespace
}  // namespace neuroprint::core
