// Tests for t-SNE (Algorithm 2), k-NN classification, the linear
// epsilon-SVR, and the task-performance regression harness.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/knn.h"
#include "core/svr.h"
#include "core/task_performance.h"
#include "core/tsne.h"
#include "linalg/vector_ops.h"
#include "sim/cohort.h"
#include "util/random.h"

namespace neuroprint::core {
namespace {

// Three well-separated Gaussian blobs in 10 dimensions.
struct BlobData {
  linalg::Matrix points;
  std::vector<int> labels;
};

BlobData MakeBlobs(std::size_t per_blob, double separation, Rng& rng) {
  const std::size_t dims = 10;
  BlobData data;
  data.points = linalg::Matrix(3 * per_blob, dims);
  for (std::size_t blob = 0; blob < 3; ++blob) {
    linalg::Vector centre(dims, 0.0);
    centre[blob] = separation;
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t row = blob * per_blob + i;
      for (std::size_t d = 0; d < dims; ++d) {
        data.points(row, d) = centre[d] + rng.Gaussian();
      }
      data.labels.push_back(static_cast<int>(blob));
    }
  }
  return data;
}

// ---------------------------------------------------------------------------
// t-SNE

TEST(TsneJointProbabilitiesTest, RowsHitTargetPerplexity) {
  Rng rng(1);
  const BlobData data = MakeBlobs(15, 8.0, rng);
  // Build squared distances directly.
  const std::size_t n = data.points.rows();
  linalg::Matrix d2(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const linalg::Vector diff =
          linalg::Subtract(data.points.RowCopy(i), data.points.RowCopy(j));
      d2(i, j) = linalg::Norm2Squared(diff);
    }
  }
  const double perplexity = 10.0;
  const auto p = TsneJointProbabilities(d2, perplexity);
  ASSERT_TRUE(p.ok());
  // Joint distribution sums to 1, is symmetric, zero diagonal.
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ((*p)(i, i), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ((*p)(i, j), (*p)(j, i));
      total += (*p)(i, j);
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(TsneJointProbabilitiesTest, RejectsBadInputs) {
  EXPECT_FALSE(TsneJointProbabilities(linalg::Matrix(3, 3), 2.0).ok());
  EXPECT_FALSE(TsneJointProbabilities(linalg::Matrix(10, 8), 2.0).ok());
  // Perplexity too large for the point count.
  EXPECT_FALSE(TsneJointProbabilities(linalg::Matrix(10, 10), 5.0).ok());
}

TEST(TsneTest, SeparatesBlobsInTwoDimensions) {
  Rng rng(2);
  const BlobData data = MakeBlobs(20, 10.0, rng);
  TsneOptions options;
  options.perplexity = 12.0;
  options.max_iterations = 400;
  const auto result = TsneEmbed(data.points, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->embedding.rows(), 60u);
  ASSERT_EQ(result->embedding.cols(), 2u);
  EXPECT_TRUE(result->embedding.AllFinite());
  EXPECT_GT(result->kl_divergence, 0.0);
  EXPECT_LT(result->kl_divergence, 1.5);

  // Every point's nearest neighbour in the embedding shares its label.
  std::size_t good = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = i;
    for (std::size_t j = 0; j < 60; ++j) {
      if (i == j) continue;
      const double dx = result->embedding(i, 0) - result->embedding(j, 0);
      const double dy = result->embedding(i, 1) - result->embedding(j, 1);
      const double d = dx * dx + dy * dy;
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    if (data.labels[i] == data.labels[best_j]) ++good;
  }
  EXPECT_GE(good, 58u);
}

TEST(TsneTest, DeterministicForSeed) {
  Rng rng(3);
  const BlobData data = MakeBlobs(8, 6.0, rng);
  TsneOptions options;
  options.perplexity = 5.0;
  options.max_iterations = 100;
  const auto a = TsneEmbed(data.points, options);
  const auto b = TsneEmbed(data.points, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(linalg::AlmostEqual(a->embedding, b->embedding, 0.0));
}

TEST(TsneTest, RejectsBadOptionsAndInputs) {
  Rng rng(4);
  const BlobData data = MakeBlobs(8, 6.0, rng);
  TsneOptions bad_dims;
  bad_dims.output_dims = 0;
  EXPECT_FALSE(TsneEmbed(data.points, bad_dims).ok());
  TsneOptions bad_iters;
  bad_iters.max_iterations = 0;
  EXPECT_FALSE(TsneEmbed(data.points, bad_iters).ok());
  EXPECT_FALSE(TsneEmbed(linalg::Matrix(2, 3)).ok());
  linalg::Matrix nan_points = data.points;
  nan_points(0, 0) = std::nan("");
  EXPECT_FALSE(TsneEmbed(nan_points).ok());
}

// ---------------------------------------------------------------------------
// k-NN

TEST(KnnTest, OneNearestNeighbour) {
  linalg::Matrix train{{0, 0}, {10, 10}, {0, 10}};
  const std::vector<int> labels{1, 2, 3};
  linalg::Matrix queries{{1, 1}, {9, 9}, {1, 9}};
  const auto predicted = KnnClassify(train, labels, queries, 1);
  ASSERT_TRUE(predicted.ok());
  EXPECT_EQ(*predicted, (std::vector<int>{1, 2, 3}));
}

TEST(KnnTest, MajorityVoteWithK3) {
  linalg::Matrix train{{0, 0}, {0.5, 0}, {0.6, 0}, {10, 10}};
  const std::vector<int> labels{7, 7, 8, 8};
  linalg::Matrix queries{{0.2, 0}};
  const auto predicted = KnnClassify(train, labels, queries, 3);
  ASSERT_TRUE(predicted.ok());
  EXPECT_EQ((*predicted)[0], 7);  // Two of the three nearest are label 7.
}

TEST(KnnTest, AccuracyHelperAndValidation) {
  const auto acc = ClassificationAccuracy({1, 2, 3}, {1, 2, 4});
  ASSERT_TRUE(acc.ok());
  EXPECT_NEAR(*acc, 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(ClassificationAccuracy({1}, {1, 2}).ok());
  EXPECT_FALSE(ClassificationAccuracy({}, {}).ok());

  linalg::Matrix train{{0, 0}};
  EXPECT_FALSE(KnnClassify(train, {1, 2}, train, 1).ok());
  EXPECT_FALSE(KnnClassify(train, {1}, train, 0).ok());
  // k beyond the gallery clamps to the gallery size instead of erroring.
  const auto clamped = KnnClassify(train, {1}, train, 2);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ((*clamped)[0], 1);
  linalg::Matrix wrong_dims{{0, 0, 0}};
  EXPECT_FALSE(KnnClassify(train, {1}, wrong_dims, 1).ok());
}

// ---------------------------------------------------------------------------
// SVR

TEST(SvrTest, FitsExactLinearFunction) {
  Rng rng(5);
  const std::size_t n = 60, d = 4;
  linalg::Matrix x(n, d);
  linalg::Vector y(n);
  const linalg::Vector w{1.5, -2.0, 0.5, 3.0};
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.7;  // Bias.
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = rng.Gaussian();
      sum += w[j] * x(i, j);
    }
    y[i] = sum;
  }
  SvrOptions options;
  options.cost = 100.0;
  options.epsilon = 0.01;
  options.max_epochs = 5000;
  const auto model = LinearSvr::Fit(x, y, options);
  ASSERT_TRUE(model.ok()) << model.status();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(model->Predict(x.RowCopy(i)), y[i], 0.05);
  }
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_NEAR(model->weights()[j], w[j], 0.05);
  }
  EXPECT_NEAR(model->bias(), 0.7, 0.05);
}

TEST(SvrTest, EpsilonTubeIgnoresSmallNoise) {
  // Targets within the tube produce a sparse dual: a flat function fits.
  Rng rng(6);
  linalg::Matrix x(30, 2);
  linalg::Vector y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.Gaussian();
    x(i, 1) = rng.Gaussian();
    y[i] = 0.01 * rng.Gaussian();  // Essentially zero inside epsilon=0.5.
  }
  SvrOptions options;
  options.epsilon = 0.5;
  const auto model = LinearSvr::Fit(x, y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(std::fabs(model->weights()[0]), 0.05);
  EXPECT_LT(std::fabs(model->weights()[1]), 0.05);
}

TEST(SvrTest, CostBoundsInfluenceOfOutliers) {
  // One wild outlier: with small C its influence is capped.
  linalg::Matrix x(11, 1);
  linalg::Vector y(11);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i) / 10.0;
    y[i] = x(i, 0);
  }
  x(10, 0) = 0.5;
  y[10] = 1000.0;
  SvrOptions options;
  options.cost = 0.1;
  options.epsilon = 0.05;
  const auto model = LinearSvr::Fit(x, y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->Predict({0.5}), 10.0);  // Not dragged to 1000.
}

TEST(SvrTest, PredictBatchMatchesPredict) {
  Rng rng(7);
  linalg::Matrix x(10, 3);
  linalg::Vector y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.Gaussian();
    y[i] = x(i, 0);
  }
  const auto model = LinearSvr::Fit(x, y);
  ASSERT_TRUE(model.ok());
  const auto batch = model->PredictBatch(x);
  ASSERT_TRUE(batch.ok());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ((*batch)[i], model->Predict(x.RowCopy(i)));
  }
}

TEST(SvrTest, RejectsBadInputs) {
  EXPECT_FALSE(LinearSvr::Fit(linalg::Matrix(), {}).ok());
  EXPECT_FALSE(LinearSvr::Fit(linalg::Matrix(3, 2), {1.0}).ok());
  linalg::Matrix bad(2, 2, 1.0);
  bad(0, 0) = std::nan("");
  EXPECT_FALSE(LinearSvr::Fit(bad, {1.0, 2.0}).ok());
  SvrOptions negative_cost;
  negative_cost.cost = -1.0;
  EXPECT_FALSE(
      LinearSvr::Fit(linalg::Matrix(2, 2, 1.0), {1.0, 2.0}, negative_cost).ok());
}

TEST(NrmseTest, KnownValues) {
  // RMSE 1 on targets with mean 10 -> 10%.
  const auto v = NormalizedRmsePercent({11, 9, 11, 9}, {10, 10, 10, 10});
  ASSERT_TRUE(v.ok());
  EXPECT_NEAR(*v, 10.0, 1e-9);
  const auto exact = NormalizedRmsePercent({5, 6}, {5, 6});
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(*exact, 0.0, 1e-12);
  EXPECT_FALSE(NormalizedRmsePercent({1}, {1, 2}).ok());
}

// ---------------------------------------------------------------------------
// Performance regression on the simulated cohort

TEST(PerformanceRegressionTest, RecoversPlantedSkillSignal) {
  sim::CohortConfig config;
  config.num_subjects = 40;
  config.num_regions = 40;
  config.frames_override = 200;
  config.seed = 99;
  const auto cohort = sim::CohortSimulator::Create(config);
  ASSERT_TRUE(cohort.ok());
  const auto group = cohort->BuildGroupMatrix(sim::TaskType::kLanguage,
                                              sim::Encoding::kLeftRight);
  ASSERT_TRUE(group.ok());

  std::vector<linalg::Vector> train_cols, test_cols;
  std::vector<std::string> train_ids, test_ids;
  linalg::Vector train_scores, test_scores;
  for (std::size_t s = 0; s < 40; ++s) {
    const double score = cohort->PerformanceScore(s, sim::TaskType::kLanguage);
    if (s < 32) {
      train_cols.push_back(group->SubjectColumn(s));
      train_ids.push_back(group->subject_ids()[s]);
      train_scores.push_back(score);
    } else {
      test_cols.push_back(group->SubjectColumn(s));
      test_ids.push_back(group->subject_ids()[s]);
      test_scores.push_back(score);
    }
  }
  const auto train =
      connectome::GroupMatrix::FromFeatureColumns(train_cols, train_ids);
  const auto test =
      connectome::GroupMatrix::FromFeatureColumns(test_cols, test_ids);
  ASSERT_TRUE(train.ok());
  ASSERT_TRUE(test.ok());

  PerformanceRegressionOptions options;
  options.num_features = 400;
  const auto eval = EvaluatePerformancePrediction(*train, train_scores, *test,
                                                  test_scores, options);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_LT(eval->train_nrmse_percent, 2.0);
  EXPECT_LT(eval->test_nrmse_percent, 8.0);
  // Prediction must beat the trivial predict-the-mean baseline on test.
  linalg::Vector mean_pred(test_scores.size(), linalg::Mean(train_scores));
  const auto baseline = NormalizedRmsePercent(mean_pred, test_scores);
  ASSERT_TRUE(baseline.ok());
  EXPECT_LT(eval->test_nrmse_percent, 0.8 * *baseline);
}

TEST(PerformanceRegressionTest, RejectsMismatchedScores) {
  const auto group = connectome::GroupMatrix::FromFeatureColumns(
      {{1, 2, 3}, {4, 5, 6}}, {"a", "b"});
  ASSERT_TRUE(group.ok());
  EXPECT_FALSE(PerformanceRegressor::Fit(*group, {1.0}).ok());
  PerformanceRegressionOptions zero;
  zero.num_features = 0;
  EXPECT_FALSE(PerformanceRegressor::Fit(*group, {1.0, 2.0}, zero).ok());
}

}  // namespace
}  // namespace neuroprint::core
