// Tests for the repo-invariant checker (tools/lint/lint.h): each rule must
// fire exactly once on a known-bad synthetic source, stay quiet on clean
// code, and the real src/ tree must be lint-clean (self-check).

#include "tools/lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace neuroprint::lint {
namespace {

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::vector<Finding> LintOne(const std::string& path,
                             const std::string& contents) {
  return LintFile({path, contents}, /*status_functions=*/{});
}

TEST(StripCommentsAndStringsTest, BlanksCommentsAndLiteralsKeepsLines) {
  const std::string in =
      "int a; // rand()\n"
      "/* abort()\n   printf() */ int b;\n"
      "const char* s = \"rand()\";\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("abort"), std::string::npos);
  EXPECT_EQ(out.find("printf"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripCommentsAndStringsTest, HandlesEscapedQuotes) {
  const std::string out =
      StripCommentsAndStrings("const char* s = \"a\\\"rand()\"; int c;");
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int c;"), std::string::npos);
}

TEST(IncludeGuardRule, FiresOnceOnWrongGuard) {
  const std::vector<Finding> findings = LintOne(
      "image/mask.h", "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n");
  ASSERT_EQ(CountRule(findings, "include-guard"), 1);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("NEUROPRINT_IMAGE_MASK_H_"),
            std::string::npos);
}

TEST(IncludeGuardRule, FiresOnMissingGuard) {
  EXPECT_EQ(CountRule(LintOne("a/b.h", "int x;\n"), "include-guard"), 1);
}

TEST(IncludeGuardRule, FiresOnMissingDefine) {
  EXPECT_EQ(CountRule(LintOne("a/b.h", "#ifndef NEUROPRINT_A_B_H_\n#endif\n"),
                      "include-guard"),
            1);
}

TEST(IncludeGuardRule, AcceptsCorrectGuardAndIgnoresNonHeaders) {
  EXPECT_EQ(CountRule(LintOne("a/b.h",
                              "#ifndef NEUROPRINT_A_B_H_\n"
                              "#define NEUROPRINT_A_B_H_\n#endif\n"),
                      "include-guard"),
            0);
  EXPECT_EQ(CountRule(LintOne("a/b.cc", "int x;\n"), "include-guard"), 0);
}

TEST(NoRandRule, FiresOnceOnStrayRand) {
  const std::vector<Finding> findings =
      LintOne("core/knn.cc", "int f() { return rand(); }\n");
  EXPECT_EQ(CountRule(findings, "no-rand"), 1);
}

TEST(NoRandRule, ExemptsRandomModuleAndIgnoresLookalikes) {
  EXPECT_EQ(CountRule(LintOne("util/random.cc", "int f() { return rand(); }\n"),
                      "no-rand"),
            0);
  // srand token inside a longer identifier, member access, and no-call uses.
  EXPECT_EQ(CountRule(LintOne("core/knn.cc",
                              "int mysrand(int); int g() { return "
                              "mysrand(2) + obj.rand(); }\n"),
                      "no-rand"),
            0);
}

TEST(NoNakedStdioRule, FiresOncePerCall) {
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f() { printf(\"x\"); }\nvoid g() { fprintf(stderr, \"y\"); }\n");
  EXPECT_EQ(CountRule(findings, "no-naked-stdio"), 2);
}

TEST(NoNakedStdioRule, ExemptsLoggingAndSnprintf) {
  EXPECT_EQ(CountRule(LintOne("util/logging.cc", "void f() { printf(\"\"); }\n"),
                      "no-naked-stdio"),
            0);
  EXPECT_EQ(CountRule(LintOne("util/csv_writer.cc",
                              "void f(char* b) { snprintf(b, 4, \"\"); }\n"),
                      "no-naked-stdio"),
            0);
}

TEST(NoAbortRule, FiresOnceOutsideCheckH) {
  EXPECT_EQ(CountRule(LintOne("linalg/svd.cc", "void f() { std::abort(); }\n"),
                      "no-abort"),
            1);
  EXPECT_EQ(CountRule(LintOne("util/check.h", "void f() { std::abort(); }\n"),
                      "no-abort"),
            0);
}

TEST(NoExitRule, FiresOnEveryExitFlavorOutsideCheckH) {
  const std::vector<Finding> findings = LintOne(
      "nifti/nifti_io.cc",
      "void f() { exit(1); }\n"
      "void g() { std::exit(1); }\n"
      "void h() { _Exit(2); }\n"
      "void i() { quick_exit(3); }\n"
      "void j() { _exit(4); }\n");
  EXPECT_EQ(CountRule(findings, "no-exit"), 5);
}

TEST(NoExitRule, ExemptsCheckHAndIgnoresLookalikes) {
  EXPECT_EQ(CountRule(LintOne("util/check.h", "void f() { exit(1); }\n"),
                      "no-exit"),
            0);
  // Longer identifiers, member calls, and non-call uses must not match.
  EXPECT_EQ(CountRule(LintOne("core/knn.cc",
                              "void on_exit_handler(); int atexit(void (*)());"
                              "\nvoid f() { obj.exit(); }\nint exit_code = 0;"
                              "\n"),
                      "no-exit"),
            0);
}

TEST(NoThrowRule, FiresOnThrowStatements) {
  const std::vector<Finding> findings = LintOne(
      "linalg/svd.cc",
      "void f() { throw std::runtime_error(\"x\"); }\n"
      "void g() { throw; }\n");
  EXPECT_EQ(CountRule(findings, "no-throw"), 2);
}

TEST(NoThrowRule, ExemptsCheckHRethrowAndComments) {
  EXPECT_EQ(CountRule(LintOne("util/check.h", "void f() { throw 1; }\n"),
                      "no-throw"),
            0);
  // rethrow_exception (thread pool's worker-exception forwarding),
  // identifiers containing `throw`, and comment/string mentions are clean.
  EXPECT_EQ(
      CountRule(LintOne("util/thread_pool.cc",
                        "void f(std::exception_ptr e) { "
                        "std::rethrow_exception(e); }\n"
                        "int throw_away = 0;\n"
                        "// a comment that says throw\n"
                        "const char* s = \"throw\";\n"),
                "no-throw"),
      0);
}

TEST(DcheckSideEffectRule, FiresOnMutatingArguments) {
  EXPECT_EQ(CountRule(LintOne("a.cc", "void f(int i) { NP_DCHECK(i++ < 3); }\n"),
                      "dcheck-side-effect"),
            1);
  EXPECT_EQ(
      CountRule(LintOne("a.cc", "void f(int i) { NP_DCHECK_EQ(i = 3, 3); }\n"),
                "dcheck-side-effect"),
      1);
  EXPECT_EQ(
      CountRule(LintOne("a.cc", "void f(int i) { NP_DCHECK(i *= 2); }\n"),
                "dcheck-side-effect"),
      1);
}

TEST(DcheckSideEffectRule, AcceptsComparisonsAndCheckMacros) {
  const std::string ok =
      "void f(int i, int n) {\n"
      "  NP_DCHECK(i <= n);\n"
      "  NP_DCHECK(i == 3);\n"
      "  NP_DCHECK_GE(n, 0);\n"
      "  NP_CHECK(i >= 0);\n"
      "}\n";
  EXPECT_EQ(CountRule(LintOne("a.cc", ok), "dcheck-side-effect"), 0);
}

TEST(NoUsingNamespaceRule, FiresInHeadersOnly) {
  EXPECT_EQ(CountRule(LintOne("a/b.h",
                              "#ifndef NEUROPRINT_A_B_H_\n"
                              "#define NEUROPRINT_A_B_H_\n"
                              "using namespace std;\n#endif\n"),
                      "no-using-namespace"),
            1);
  EXPECT_EQ(CountRule(LintOne("a/b.cc", "using namespace std;\n"),
                      "no-using-namespace"),
            0);
  // Plain using-declarations are fine.
  EXPECT_EQ(CountRule(LintOne("a/b.h",
                              "#ifndef NEUROPRINT_A_B_H_\n"
                              "#define NEUROPRINT_A_B_H_\n"
                              "using std::vector;\n#endif\n"),
                      "no-using-namespace"),
            0);
}

TEST(NoRawThreadRule, FiresOutsideThreadPool) {
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f() { std::thread t([] {}); t.join(); }\n"
      "void g() { std::jthread t([] {}); }\n");
  EXPECT_EQ(CountRule(findings, "no-raw-thread"), 2);
}

TEST(NoRawThreadRule, ExemptsThreadPoolAndIgnoresLookalikes) {
  EXPECT_EQ(CountRule(LintOne("util/thread_pool.cc",
                              "void f() { std::thread t([] {}); t.join(); }\n"),
                      "no-raw-thread"),
            0);
  EXPECT_EQ(CountRule(LintOne("util/thread_pool.h",
                              "std::vector<std::thread> workers_;\n"),
                      "no-raw-thread"),
            0);
  // this_thread, thread_local, and unqualified identifiers must not match.
  EXPECT_EQ(CountRule(LintOne("core/knn.cc",
                              "void f() { std::this_thread::yield(); }\n"
                              "thread_local int tls = 0;\n"
                              "int thread = 3;\n"),
                      "no-raw-thread"),
            0);
}

TEST(NoStaticLocalRule, FiresOnMutableFunctionLocal) {
  const std::vector<Finding> findings = LintOne(
      "core/tsne.cc",
      "int Counter() {\n"
      "  static int calls = 0;\n"
      "  return ++calls;\n"
      "}\n");
  ASSERT_EQ(CountRule(findings, "no-static-local"), 1);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(NoStaticLocalRule, FiresInsideLambdaBodies) {
  EXPECT_EQ(CountRule(LintOne("core/knn.cc",
                              "void f() {\n"
                              "  auto fn = [] { static int hits = 0; ++hits; "
                              "};\n"
                              "  fn();\n"
                              "}\n"),
                      "no-static-local"),
            1);
}

TEST(NoStaticLocalRule, AcceptsImmutableAndNamespaceScopeStatics) {
  const std::string ok =
      "static int file_scope = 0;\n"  // namespace scope: not a local
      "namespace x {\n"
      "static double also_file_scope = 1.0;\n"
      "}  // namespace x\n"
      "class C {\n"
      "  static int member_;\n"  // static data member: not a local
      "};\n"
      "int f() {\n"
      "  static const int kTable = 3;\n"
      "  static constexpr double kPi = 3.14;\n"
      "  static thread_local int scratch = 0;\n"
      "  int x = static_cast<int>(kPi);\n"
      "  static_assert(sizeof(int) >= 2);\n"
      "  return kTable + x + scratch;\n"
      "}\n";
  EXPECT_EQ(CountRule(LintOne("core/attack.cc", ok), "no-static-local"), 0);
}

TEST(NoStaticLocalRule, ExemptsUtil) {
  EXPECT_EQ(CountRule(LintOne("util/logging.cc",
                              "int f() { static int level = 0; return "
                              "level; }\n"),
                      "no-static-local"),
            0);
}

TEST(UnusedStatusRule, FiresOnceOnIgnoredResult) {
  const std::vector<SourceFile> files = {
      {"io/save.h",
       "#ifndef NEUROPRINT_IO_SAVE_H_\n"
       "#define NEUROPRINT_IO_SAVE_H_\n"
       "Status SaveThing(const std::string& path);\n"
       "#endif  // NEUROPRINT_IO_SAVE_H_\n"},
      {"io/use.cc",
       "#include \"io/save.h\"\n"
       "Status Caller() {\n"
       "  SaveThing(\"dropped\");\n"
       "  Status kept = SaveThing(\"kept\");\n"
       "  NP_RETURN_IF_ERROR(SaveThing(\"propagated\"));\n"
       "  return SaveThing(\"returned\");\n"
       "}\n"}};
  const std::vector<Finding> findings = LintFiles(files);
  ASSERT_EQ(CountRule(findings, "unused-status"), 1);
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const Finding& f) {
                                 return f.rule == "unused-status";
                               });
  EXPECT_EQ(it->file, "io/use.cc");
  EXPECT_EQ(it->line, 3);
}

TEST(CollectStatusFunctionsTest, FindsDeclarationsIncludingStatic) {
  const std::set<std::string> names = CollectStatusFunctions(
      {{"x.h",
        "Status Alpha(int a);\n"
        "static Status Beta();\n"
        "[[nodiscard]] Status Gamma();\n"
        "void NotStatus();\n"
        "Result<int> NotEither();\n"}});
  EXPECT_TRUE(names.count("Alpha"));
  EXPECT_TRUE(names.count("Beta"));
  EXPECT_TRUE(names.count("Gamma"));
  EXPECT_FALSE(names.count("NotStatus"));
  EXPECT_FALSE(names.count("NotEither"));
}

TEST(LintTreeTest, MissingRootIsAnIoError) {
  const std::vector<Finding> findings = LintTree("/nonexistent-neuroprint");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
}

// Self-check: the real library tree must be clean. NEUROPRINT_SOURCE_DIR is
// injected by tests/CMakeLists.txt.
TEST(SelfCheck, SrcTreeIsLintClean) {
  const std::vector<Finding> findings =
      LintTree(std::string(NEUROPRINT_SOURCE_DIR) + "/src");
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.ToString();
  }
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace neuroprint::lint
