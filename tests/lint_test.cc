// Tests for the repo-invariant checker (tools/lint/lint.h): each rule must
// fire exactly once on a known-bad synthetic source, stay quiet on clean
// code, and the real src/ tree must be lint-clean (self-check).

#include "tools/lint/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace neuroprint::lint {
namespace {

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

int LineOfRule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return f.line;
  }
  return -1;
}

std::vector<Finding> LintOne(const std::string& path,
                             const std::string& contents) {
  return LintFile({path, contents}, DeclIndex{});
}

TEST(StripCommentsAndStringsTest, BlanksCommentsAndLiteralsKeepsLines) {
  const std::string in =
      "int a; // rand()\n"
      "/* abort()\n   printf() */ int b;\n"
      "const char* s = \"rand()\";\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("abort"), std::string::npos);
  EXPECT_EQ(out.find("printf"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripCommentsAndStringsTest, HandlesEscapedQuotes) {
  const std::string out =
      StripCommentsAndStrings("const char* s = \"a\\\"rand()\"; int c;");
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_NE(out.find("int c;"), std::string::npos);
}

TEST(StripCommentsAndStringsTest, HandlesRawStrings) {
  // The old state machine treated `)` inside a raw string as end of code
  // context and leaked the tail; the lexer-backed version must blank the
  // whole literal and keep the code around it.
  const std::string out = StripCommentsAndStrings(
      "auto s = R\"x(abort(); \"inner\" )\" still raw )x\"; int live;\n");
  EXPECT_EQ(out.find("abort"), std::string::npos);
  EXPECT_EQ(out.find("still raw"), std::string::npos);
  EXPECT_NE(out.find("int live;"), std::string::npos);
}

TEST(StripCommentsAndStringsTest, KeepsNewlinesInsideRawStrings) {
  const std::string out =
      StripCommentsAndStrings("auto s = R\"(a\nb\nc)\";\nint live;\n");
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("int live;"), std::string::npos);
}

TEST(IncludeGuardRule, FiresOnceOnWrongGuard) {
  const std::vector<Finding> findings = LintOne(
      "image/mask.h", "#ifndef WRONG_H_\n#define WRONG_H_\n#endif\n");
  ASSERT_EQ(CountRule(findings, "include-guard"), 1);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("NEUROPRINT_IMAGE_MASK_H_"),
            std::string::npos);
}

TEST(IncludeGuardRule, FiresOnMissingGuard) {
  EXPECT_EQ(CountRule(LintOne("a/b.h", "int x;\n"), "include-guard"), 1);
}

TEST(IncludeGuardRule, FiresOnMissingDefine) {
  EXPECT_EQ(CountRule(LintOne("a/b.h", "#ifndef NEUROPRINT_A_B_H_\n#endif\n"),
                      "include-guard"),
            1);
}

TEST(IncludeGuardRule, AcceptsCorrectGuardAndIgnoresNonHeaders) {
  EXPECT_EQ(CountRule(LintOne("a/b.h",
                              "#ifndef NEUROPRINT_A_B_H_\n"
                              "#define NEUROPRINT_A_B_H_\n#endif\n"),
                      "include-guard"),
            0);
  EXPECT_EQ(CountRule(LintOne("a/b.cc", "int x;\n"), "include-guard"), 0);
}

TEST(NoRandRule, FiresOnceOnStrayRand) {
  const std::vector<Finding> findings =
      LintOne("core/knn.cc", "int f() { return rand(); }\n");
  EXPECT_EQ(CountRule(findings, "no-rand"), 1);
}

TEST(NoRandRule, ExemptsRandomModuleAndIgnoresLookalikes) {
  EXPECT_EQ(CountRule(LintOne("util/random.cc", "int f() { return rand(); }\n"),
                      "no-rand"),
            0);
  // srand token inside a longer identifier, member access, and no-call uses.
  EXPECT_EQ(CountRule(LintOne("core/knn.cc",
                              "int mysrand(int); int g() { return "
                              "mysrand(2) + obj.rand(); }\n"),
                      "no-rand"),
            0);
}

TEST(NoNakedStdioRule, FiresOncePerCall) {
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f() { printf(\"x\"); }\nvoid g() { fprintf(stderr, \"y\"); }\n");
  EXPECT_EQ(CountRule(findings, "no-naked-stdio"), 2);
}

TEST(NoNakedStdioRule, ExemptsLoggingAndSnprintf) {
  EXPECT_EQ(CountRule(LintOne("util/logging.cc", "void f() { printf(\"\"); }\n"),
                      "no-naked-stdio"),
            0);
  EXPECT_EQ(CountRule(LintOne("util/csv_writer.cc",
                              "void f(char* b) { snprintf(b, 4, \"\"); }\n"),
                      "no-naked-stdio"),
            0);
}

TEST(NoAbortRule, FiresOnceOutsideCheckH) {
  EXPECT_EQ(CountRule(LintOne("linalg/svd.cc", "void f() { std::abort(); }\n"),
                      "no-abort"),
            1);
  EXPECT_EQ(CountRule(LintOne("util/check.h", "void f() { std::abort(); }\n"),
                      "no-abort"),
            0);
}

TEST(NoExitRule, FiresOnEveryExitFlavorOutsideCheckH) {
  const std::vector<Finding> findings = LintOne(
      "nifti/nifti_io.cc",
      "void f() { exit(1); }\n"
      "void g() { std::exit(1); }\n"
      "void h() { _Exit(2); }\n"
      "void i() { quick_exit(3); }\n"
      "void j() { _exit(4); }\n");
  EXPECT_EQ(CountRule(findings, "no-exit"), 5);
}

TEST(NoExitRule, ExemptsCheckHAndIgnoresLookalikes) {
  EXPECT_EQ(CountRule(LintOne("util/check.h", "void f() { exit(1); }\n"),
                      "no-exit"),
            0);
  // Longer identifiers, member calls, and non-call uses must not match.
  EXPECT_EQ(CountRule(LintOne("core/knn.cc",
                              "void on_exit_handler(); int atexit(void (*)());"
                              "\nvoid f() { obj.exit(); }\nint exit_code = 0;"
                              "\n"),
                      "no-exit"),
            0);
}

TEST(NoThrowRule, FiresOnThrowStatements) {
  const std::vector<Finding> findings = LintOne(
      "linalg/svd.cc",
      "void f() { throw std::runtime_error(\"x\"); }\n"
      "void g() { throw; }\n");
  EXPECT_EQ(CountRule(findings, "no-throw"), 2);
}

TEST(NoThrowRule, ExemptsCheckHRethrowAndComments) {
  EXPECT_EQ(CountRule(LintOne("util/check.h", "void f() { throw 1; }\n"),
                      "no-throw"),
            0);
  // rethrow_exception (thread pool's worker-exception forwarding),
  // identifiers containing `throw`, and comment/string mentions are clean.
  EXPECT_EQ(
      CountRule(LintOne("util/thread_pool.cc",
                        "void f(std::exception_ptr e) { "
                        "std::rethrow_exception(e); }\n"
                        "int throw_away = 0;\n"
                        "// a comment that says throw\n"
                        "const char* s = \"throw\";\n"),
                "no-throw"),
      0);
}

TEST(DcheckSideEffectRule, FiresOnMutatingArguments) {
  EXPECT_EQ(CountRule(LintOne("a.cc", "void f(int i) { NP_DCHECK(i++ < 3); }\n"),
                      "dcheck-side-effect"),
            1);
  EXPECT_EQ(
      CountRule(LintOne("a.cc", "void f(int i) { NP_DCHECK_EQ(i = 3, 3); }\n"),
                "dcheck-side-effect"),
      1);
  EXPECT_EQ(
      CountRule(LintOne("a.cc", "void f(int i) { NP_DCHECK(i *= 2); }\n"),
                "dcheck-side-effect"),
      1);
}

TEST(DcheckSideEffectRule, AcceptsComparisonsAndCheckMacros) {
  const std::string ok =
      "void f(int i, int n) {\n"
      "  NP_DCHECK(i <= n);\n"
      "  NP_DCHECK(i == 3);\n"
      "  NP_DCHECK_GE(n, 0);\n"
      "  NP_CHECK(i >= 0);\n"
      "}\n";
  EXPECT_EQ(CountRule(LintOne("a.cc", ok), "dcheck-side-effect"), 0);
}

TEST(NoUsingNamespaceRule, FiresInHeadersOnly) {
  EXPECT_EQ(CountRule(LintOne("a/b.h",
                              "#ifndef NEUROPRINT_A_B_H_\n"
                              "#define NEUROPRINT_A_B_H_\n"
                              "using namespace std;\n#endif\n"),
                      "no-using-namespace"),
            1);
  EXPECT_EQ(CountRule(LintOne("a/b.cc", "using namespace std;\n"),
                      "no-using-namespace"),
            0);
  // Plain using-declarations are fine.
  EXPECT_EQ(CountRule(LintOne("a/b.h",
                              "#ifndef NEUROPRINT_A_B_H_\n"
                              "#define NEUROPRINT_A_B_H_\n"
                              "using std::vector;\n#endif\n"),
                      "no-using-namespace"),
            0);
}

TEST(NoRawThreadRule, FiresOutsideThreadPool) {
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f() { std::thread t([] {}); t.join(); }\n"
      "void g() { std::jthread t([] {}); }\n");
  EXPECT_EQ(CountRule(findings, "no-raw-thread"), 2);
}

TEST(NoRawThreadRule, ExemptsThreadPoolAndIgnoresLookalikes) {
  EXPECT_EQ(CountRule(LintOne("util/thread_pool.cc",
                              "void f() { std::thread t([] {}); t.join(); }\n"),
                      "no-raw-thread"),
            0);
  EXPECT_EQ(CountRule(LintOne("util/thread_pool.h",
                              "std::vector<std::thread> workers_;\n"),
                      "no-raw-thread"),
            0);
  // this_thread, thread_local, and unqualified identifiers must not match.
  EXPECT_EQ(CountRule(LintOne("core/knn.cc",
                              "void f() { std::this_thread::yield(); }\n"
                              "thread_local int tls = 0;\n"
                              "int thread = 3;\n"),
                      "no-raw-thread"),
            0);
}

TEST(SimdConfinementRule, FiresOnIntrinsicHeaderAndIntrinsics) {
  const std::vector<Finding> findings = LintOne(
      "linalg/stats.cc",
      "#include <immintrin.h>\n"
      "double Sum(const double* x) {\n"
      "  __m256d acc = _mm256_loadu_pd(x);\n"
      "  return acc[0];\n"
      "}\n");
  // One for the header, one for the type, one for the load intrinsic.
  EXPECT_EQ(CountRule(findings, "simd-confinement"), 3);
  EXPECT_EQ(CountRule(LintOne("core/matcher.cc",
                              "#include <arm_neon.h>\n"
                              "float64x2_t v = vld1q_f64(p);\n"),
                      "simd-confinement"),
            3);
}

TEST(SimdConfinementRule, ExemptsSimdDirAndIgnoresLookalikes) {
  EXPECT_EQ(CountRule(LintOne("linalg/simd/kernels_avx2.cc",
                              "#include <immintrin.h>\n"
                              "__m256d Zero() { return _mm256_setzero_pd(); }\n"),
                      "simd-confinement"),
            0);
  // Ordinary identifiers that merely resemble vendor prefixes must not
  // match: _max is not _mm*, vstack is not vst1*.
  EXPECT_EQ(CountRule(LintOne("core/knn.cc",
                              "int _max = 0;\n"
                              "int vstack = 1;\n"
                              "int mm256 = 2;\n"),
                      "simd-confinement"),
            0);
}

TEST(NoStaticLocalRule, FiresOnMutableFunctionLocal) {
  const std::vector<Finding> findings = LintOne(
      "core/tsne.cc",
      "int Counter() {\n"
      "  static int calls = 0;\n"
      "  return ++calls;\n"
      "}\n");
  ASSERT_EQ(CountRule(findings, "no-static-local"), 1);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(NoStaticLocalRule, FiresInsideLambdaBodies) {
  EXPECT_EQ(CountRule(LintOne("core/knn.cc",
                              "void f() {\n"
                              "  auto fn = [] { static int hits = 0; ++hits; "
                              "};\n"
                              "  fn();\n"
                              "}\n"),
                      "no-static-local"),
            1);
}

TEST(NoStaticLocalRule, AcceptsImmutableAndNamespaceScopeStatics) {
  const std::string ok =
      "static int file_scope = 0;\n"  // namespace scope: not a local
      "namespace x {\n"
      "static double also_file_scope = 1.0;\n"
      "}  // namespace x\n"
      "class C {\n"
      "  static int member_;\n"  // static data member: not a local
      "};\n"
      "int f() {\n"
      "  static const int kTable = 3;\n"
      "  static constexpr double kPi = 3.14;\n"
      "  static thread_local int scratch = 0;\n"
      "  int x = static_cast<int>(kPi);\n"
      "  static_assert(sizeof(int) >= 2);\n"
      "  return kTable + x + scratch;\n"
      "}\n";
  EXPECT_EQ(CountRule(LintOne("core/attack.cc", ok), "no-static-local"), 0);
}

TEST(NoStaticLocalRule, ExemptsUtil) {
  EXPECT_EQ(CountRule(LintOne("util/logging.cc",
                              "int f() { static int level = 0; return "
                              "level; }\n"),
                      "no-static-local"),
            0);
}

// ---- status-flow family ----

// Shared header fixture: a class with Status/Result members plus free
// functions, so the decl index covers both call shapes.
const char kStatusHeader[] =
    "#ifndef NEUROPRINT_IO_SAVE_H_\n"
    "#define NEUROPRINT_IO_SAVE_H_\n"
    "namespace neuroprint {\n"
    "class Saver {\n"
    " public:\n"
    "  Status Fit(int x);\n"
    "  Result<int> Load(int x);\n"
    "};\n"
    "Status SaveThing(const std::string& path);\n"
    "Result<double> ReadThing(const std::string& path);\n"
    "}  // namespace neuroprint\n"
    "#endif  // NEUROPRINT_IO_SAVE_H_\n";

std::vector<Finding> LintWithHeader(const std::string& body) {
  return LintFiles({{"io/save.h", kStatusHeader}, {"io/use.cc", body}});
}

TEST(UnusedStatusRule, FiresOnceOnIgnoredResult) {
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "Status Caller() {\n"
      "  SaveThing(\"dropped\");\n"
      "  Status kept = SaveThing(\"kept\");\n"
      "  NP_RETURN_IF_ERROR(kept);\n"
      "  NP_RETURN_IF_ERROR(SaveThing(\"propagated\"));\n"
      "  return SaveThing(\"returned\");\n"
      "}\n");
  ASSERT_EQ(CountRule(findings, "unused-status"), 1);
  EXPECT_EQ(LineOfRule(findings, "unused-status"), 3);
}

TEST(UnusedStatusRule, FiresOnMemberCallDrop) {
  // The old line-based rule only matched free calls at statement start;
  // obj.Fit(x); was its canonical blind spot.
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "void Caller(Saver& obj, Saver* ptr) {\n"
      "  obj.Fit(1);\n"
      "  ptr->Fit(2);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "unused-status"), 2);
}

TEST(UnusedStatusRule, FiresOnMultiLineDropAndControlFlowBody) {
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "void Caller(Saver& obj, bool flaky) {\n"
      "  SaveThing(\n"
      "      \"multi\"\n"
      "      \"line\");\n"
      "  if (flaky) obj.Fit(3);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "unused-status"), 2);
  EXPECT_EQ(LineOfRule(findings, "unused-status"), 3);
}

TEST(UnusedStatusRule, QuietOnConsumedForms) {
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "Status Caller(Saver& obj) {\n"
      "  if (!obj.Fit(1).ok()) return obj.Fit(2);\n"
      "  Status s = obj.Fit(3);\n"
      "  (void)s.ok();\n"
      "  UnknownFunction(4);\n"  // not in the index: no finding
      "  return SaveThing(\"r\");\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "unused-status"), 0);
}

TEST(UnusedResultRule, FiresOnDroppedResult) {
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "void Caller(Saver& obj) {\n"
      "  ReadThing(\"dropped\");\n"
      "  obj.Load(1);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "unused-result"), 2);
}

TEST(StatusNeverCheckedRule, FiresWhenVariableIsNeverRead) {
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "void Caller() {\n"
      "  Status s = SaveThing(\"a\");\n"
      "}\n");
  ASSERT_EQ(CountRule(findings, "status-never-checked"), 1);
  EXPECT_EQ(LineOfRule(findings, "status-never-checked"), 3);
}

TEST(StatusNeverCheckedRule, QuietWhenConsumedLaterOrAtClassScope) {
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "class Holder {\n"
      "  Status last_;\n"  // member declaration, not a local
      "};\n"
      "Status Caller() {\n"
      "  Status s = SaveThing(\"a\");\n"
      "  if (!s.ok()) return s;\n"
      "  Status merged;\n"
      "  merged.Update();\n"
      "  return merged;\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "status-never-checked"), 0);
}

TEST(DeclIndexTest, FindsStatusAndResultDeclarations) {
  const DeclIndex index = BuildDeclIndex(
      {{"x.h",
        "Status Alpha(int a);\n"
        "static Status Beta();\n"
        "[[nodiscard]] Status Gamma();\n"
        "Status Klass::Qualified(int x) { return Status::OK(); }\n"
        "void NotStatus();\n"
        "Result<int> Single();\n"
        "Result<std::vector<double>> Nested();\n"
        "Status local = Alpha(1);\n"}});
  EXPECT_TRUE(index.status_functions.count("Alpha"));
  EXPECT_TRUE(index.status_functions.count("Beta"));
  EXPECT_TRUE(index.status_functions.count("Gamma"));
  EXPECT_TRUE(index.status_functions.count("Qualified"));
  EXPECT_FALSE(index.status_functions.count("NotStatus"));
  EXPECT_FALSE(index.status_functions.count("local"));
  EXPECT_TRUE(index.result_functions.count("Single"));
  EXPECT_TRUE(index.result_functions.count("Nested"));
}

TEST(CollectStatusFunctionsTest, LegacyShimStillWorks) {
  const std::set<std::string> names =
      CollectStatusFunctions({{"x.h", "Status Alpha(int a);\n"}});
  EXPECT_TRUE(names.count("Alpha"));
}

// ---- determinism family ----

TEST(NondetWallclockRule, FiresOutsideSanctionedModules) {
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f() { auto t = std::chrono::steady_clock::now(); (void)t; }\n"
      "long g() { return time(nullptr); }\n"
      "long h() { return std::time(nullptr); }\n");
  EXPECT_EQ(CountRule(findings, "nondet-wallclock"), 3);
}

TEST(NondetWallclockRule, ExemptsObservabilityModulesAndLookalikes) {
  for (const char* path :
       {"util/trace.cc", "util/metrics.cc", "util/fault.cc",
        "util/stopwatch.h"}) {
    EXPECT_EQ(CountRule(LintOne(path,
                                "void f() { auto t = "
                                "std::chrono::steady_clock::now(); (void)t; "
                                "}\n"),
                        "nondet-wallclock"),
              0)
        << path;
  }
  // Member calls named `time`, identifiers containing time, declarations.
  EXPECT_EQ(CountRule(LintOne("core/knn.cc",
                              "void f(Clock& c) { c.time(); }\n"
                              "int timestep = 3;\n"
                              "double exposure_time(int frames);\n"),
                      "nondet-wallclock"),
            0);
}

TEST(NondetUnorderedIterRule, FiresOnRangeForOverUnordered) {
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "#include <unordered_map>\n"
      "void f(const std::unordered_map<int, int>& m) {\n"
      "  for (const auto& kv : m) { (void)kv; }\n"
      "}\n");
  ASSERT_EQ(CountRule(findings, "nondet-unordered-iter"), 1);
  EXPECT_EQ(LineOfRule(findings, "nondet-unordered-iter"), 3);
}

TEST(NondetUnorderedIterRule, QuietOnOrderedContainers) {
  EXPECT_EQ(CountRule(LintOne("core/attack.cc",
                              "void f(const std::map<int, int>& m,\n"
                              "       const std::vector<int>& v) {\n"
                              "  for (const auto& kv : m) { (void)kv; }\n"
                              "  for (int x : v) { (void)x; }\n"
                              "}\n"),
                      "nondet-unordered-iter"),
            0);
}

TEST(NondetFloatAccumRule, FiresOnCapturedFloatAccumulation) {
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f(ThreadPool& pool) {\n"
      "  double total = 0.0;\n"
      "  ParallelFor(pool, 0, 8, 1, [&](std::size_t lo, std::size_t hi) {\n"
      "    total += static_cast<double>(hi - lo);\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "nondet-float-accum"), 1);
}

TEST(NondetFloatAccumRule, QuietOnBodyLocalAccumulatorAndLinalg) {
  // Per-chunk accumulators are the blessed pattern: deterministic because
  // each chunk owns its partial sum.
  const std::string body_local =
      "void f(ThreadPool& pool, std::vector<double>& out) {\n"
      "  ParallelFor(pool, 0, 8, 1, [&](std::size_t lo, std::size_t hi) {\n"
      "    double partial = 0.0;\n"
      "    for (std::size_t i = lo; i < hi; ++i) partial += 1.0;\n"
      "    out[lo] = partial;\n"
      "  });\n"
      "}\n";
  EXPECT_EQ(CountRule(LintOne("core/attack.cc", body_local),
                      "nondet-float-accum"),
            0);
  // Chained declarators (double s0 = 0, s1 = 0;) are all locals.
  const std::string chained =
      "void f(ThreadPool& pool, std::vector<double>& y) {\n"
      "  ParallelFor(pool, 0, 8, 1, [&](std::size_t lo, std::size_t hi) {\n"
      "    double s0 = 0.0, s1 = 0.0;\n"
      "    s1 += 2.0;\n"
      "    y[lo] = s0 + s1;\n"
      "  });\n"
      "}\n";
  EXPECT_EQ(CountRule(LintOne("core/attack.cc", chained),
                      "nondet-float-accum"),
            0);
}

// ---- parallel-race family ----

TEST(ParallelRaceRule, FiresOnByRefMutation) {
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f(ThreadPool& pool, std::vector<double>& out) {\n"
      "  int count = 0;\n"
      "  ParallelFor(pool, 0, 8, 1, [&](std::size_t lo, std::size_t hi) {\n"
      "    ++count;\n"
      "    out.push_back(1.0);\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallel-race"), 2);
}

TEST(ParallelRaceRule, FiresOnExplicitRefCapture) {
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f(ThreadPool& pool) {\n"
      "  int hits = 0;\n"
      "  ParallelReduce(pool, 0, 8, 1, [&hits](std::size_t i) {\n"
      "    hits += 1;\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallel-race"), 1);
}

TEST(ParallelRaceRule, QuietOnPerIndexWritesAndAtomics) {
  // The two canonical false-positive traps: per-index writes into a shared
  // buffer, and an atomic counter.
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f(ThreadPool& pool, std::vector<double>& out) {\n"
      "  std::atomic<int> hits{0};\n"
      "  ParallelFor(pool, 0, 8, 1, [&](std::size_t lo, std::size_t hi) {\n"
      "    for (std::size_t i = lo; i < hi; ++i) {\n"
      "      out[i] = static_cast<double>(i);\n"
      "      hits += 1;\n"
      "    }\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallel-race"), 0);
}

TEST(ParallelRaceRule, QuietOnValueCapturesAndLocals) {
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f(ThreadPool& pool, int seed) {\n"
      "  ParallelFor(pool, 0, 8, 1, [seed](std::size_t lo, std::size_t hi) {\n"
      "    int local = seed;\n"
      "    local += static_cast<int>(hi - lo);\n"
      "  });\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallel-race"), 0);
}

TEST(ParallelRaceRule, QuietOutsideParallelEntryPoints) {
  // Mutating a by-ref capture in an ordinary lambda is fine.
  const std::vector<Finding> findings = LintOne(
      "core/attack.cc",
      "void f(std::vector<double>& out) {\n"
      "  auto fill = [&](double v) { out.push_back(v); };\n"
      "  fill(1.0);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "parallel-race"), 0);
}

// ---- suppressions ----

TEST(SuppressionTest, TrailingCommentSilencesItsLineOnly) {
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "void Caller(Saver& obj) {\n"
      "  obj.Fit(1);  // NP_LINT(unused-status)\n"
      "  obj.Fit(2);\n"
      "}\n");
  ASSERT_EQ(CountRule(findings, "unused-status"), 1);
  EXPECT_EQ(LineOfRule(findings, "unused-status"), 4);
  EXPECT_EQ(CountRule(findings, "unused-suppression"), 0);
}

TEST(SuppressionTest, CommentOnlyLineSilencesNextLine) {
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "void Caller(Saver& obj) {\n"
      "  // NP_LINT(unused-status)\n"
      "  obj.Fit(1);\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "unused-status"), 0);
  EXPECT_EQ(CountRule(findings, "unused-suppression"), 0);
}

TEST(SuppressionTest, UnusedSuppressionIsReported) {
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "void Caller(Saver& obj) {\n"
      "  obj.Fit(1);  // NP_LINT(no-rand)\n"
      "}\n");
  // The wrong rule id suppresses nothing: the original finding stays AND
  // the stale suppression is flagged.
  EXPECT_EQ(CountRule(findings, "unused-status"), 1);
  ASSERT_EQ(CountRule(findings, "unused-suppression"), 1);
  EXPECT_EQ(LineOfRule(findings, "unused-suppression"), 3);
}

TEST(SuppressionTest, UnknownRuleIdsDoNotRegister) {
  // A typo'd rule id is inert: no suppression, and no unused-suppression
  // churn either (the misspelling cannot match any finding).
  const std::vector<Finding> findings = LintWithHeader(
      "#include \"io/save.h\"\n"
      "void Caller(Saver& obj) {\n"
      "  obj.Fit(1);  // NP_LINT(unused-statu)\n"
      "}\n");
  EXPECT_EQ(CountRule(findings, "unused-status"), 1);
  EXPECT_EQ(CountRule(findings, "unused-suppression"), 0);
}

// ---- output formats ----

TEST(FormatFindingsTest, TextJsonAndGithub) {
  const std::vector<Finding> findings = {
      {"core/a.cc", 7, "no-rand", "message \"quoted\""}};
  const std::string text = FormatFindings(findings, "text", "src");
  EXPECT_EQ(text, "src/core/a.cc:7: [no-rand] message \"quoted\"\n");
  const std::string github = FormatFindings(findings, "github", "src");
  EXPECT_EQ(github,
            "::error file=src/core/a.cc,line=7,title=no-rand::message "
            "\"quoted\"\n");
  const std::string json = FormatFindings(findings, "json", "");
  EXPECT_NE(json.find("\"file\": \"core/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
  const std::string empty = FormatFindings({}, "json", "");
  EXPECT_EQ(empty, "[]\n");
}

TEST(LintTreeTest, MissingRootIsAnIoError) {
  const std::vector<Finding> findings = LintTree("/nonexistent-neuroprint");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
}

// Self-check: the real library tree must be clean. NEUROPRINT_SOURCE_DIR is
// injected by tests/CMakeLists.txt.
TEST(SelfCheck, SrcTreeIsLintClean) {
  const std::vector<Finding> findings =
      LintTree(std::string(NEUROPRINT_SOURCE_DIR) + "/src");
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.ToString();
  }
  EXPECT_TRUE(findings.empty());
}

// The engine must pass its own rules (the CLI exposes this as
// `--self-check`; CI runs it on every push).
TEST(SelfCheck, LintEngineIsLintClean) {
  const std::vector<Finding> findings = LintTreeRelative(
      std::string(NEUROPRINT_SOURCE_DIR) + "/tools/lint",
      NEUROPRINT_SOURCE_DIR);
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.ToString();
  }
  EXPECT_TRUE(findings.empty());
}

}  // namespace
}  // namespace neuroprint::lint
