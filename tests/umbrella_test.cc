// Compile-and-smoke test for the umbrella header: every public module
// must be reachable through a single include.

#include "neuroprint.h"

#include <gtest/gtest.h>

namespace neuroprint {
namespace {

TEST(UmbrellaHeaderTest, AllModulesReachable) {
  // One symbol per module proves the include graph is intact.
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_GE(ResolveThreadCount(ParallelContext{3}), 3u);
  EXPECT_EQ(linalg::Matrix::Identity(2)(0, 0), 1.0);
  EXPECT_TRUE(signal::IsPowerOfTwo(8));
  EXPECT_EQ(nifti::kNiftiHeaderSize, 348u);
  EXPECT_EQ(image::Volume3D(2, 2, 2).size(), 8u);
  EXPECT_EQ(atlas::kBackground, 0);
  EXPECT_EQ(connectome::NumEdges(360), 64620u);
  EXPECT_STREQ(sim::TaskName(sim::TaskType::kRest), "REST");
  EXPECT_GT(sim::DoubleGammaHrf(5.0), 0.5);
  core::AttackOptions attack_options;
  EXPECT_EQ(attack_options.num_features, 100u);
  preprocess::PipelineConfig pipeline = preprocess::RestingStateConfig();
  EXPECT_TRUE(pipeline.global_signal_regression);
}

}  // namespace
}  // namespace neuroprint
