// Tests for Status/Result, the RNG, CSV writer, and string helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <set>

#include <cstdint>
#include <sstream>
#include <vector>

#include "util/check.h"
#include "util/csv_writer.h"
#include "util/endian.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace neuroprint {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dims");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dims");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kIOError,
        StatusCode::kCorruptData, StatusCode::kNotConverged,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r(Status::OK());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All residues hit.
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(13);
  const auto p = rng.Permutation(50);
  std::set<std::size_t> unique(p.begin(), p.end());
  EXPECT_EQ(unique.size(), 50u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 49u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  // Weight 0 entries must never be drawn.
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) {
    counts[rng.Categorical({1.0, 0.0, 3.0})]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 3000.0, 0.75, 0.05);
}

TEST(CsvWriterTest, HeaderAndRows) {
  CsvWriter csv;
  csv.SetHeader({"a", "b"});
  csv.AddRow({"1", "x"});
  csv.AddNumericRow({2.5, -3.0});
  EXPECT_EQ(csv.ToString(), "a,b\n1,x\n2.5,-3\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv;
  csv.AddRow({"he,llo", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(csv.ToString(), "\"he,llo\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriterTest, WriteFileRoundTrip) {
  CsvWriter csv;
  csv.SetHeader({"x"});
  csv.AddRow({"1"});
  const std::string path = ::testing::TempDir() + "/np_csv_test.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "x\n1\n");
}

TEST(CsvWriterTest, WriteFileFailsOnBadPath) {
  CsvWriter csv;
  csv.AddRow({"1"});
  const Status s = csv.WriteFile("/nonexistent_dir_zzz/file.csv");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, StrSplitAndJoin) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(StrJoin({}, "-"), "");
}

TEST(StringUtilTest, EndsWithAndTrim) {
  EXPECT_TRUE(EndsWith("image.nii.gz", ".gz"));
  EXPECT_FALSE(EndsWith("image.nii", ".gz"));
  EXPECT_TRUE(EndsWith("x", ""));
  EXPECT_EQ(StrTrim("  hi \n"), "hi");
  EXPECT_EQ(StrTrim("\t\n "), "");
}

TEST(CheckTest, PassingChecksAreSilent) {
  NP_CHECK(1 + 1 == 2);
  NP_CHECK_EQ(3, 3);
  NP_CHECK_LT(2, 3) << "never printed";
}

TEST(CheckDeathTest, FailureAbortsWithExprAndStreamedContext) {
  EXPECT_DEATH(NP_CHECK(2 < 1) << "ctx " << 42, "2 < 1.*ctx 42");
  EXPECT_DEATH(NP_CHECK_GE(1, 5), "Check failed");
}

TEST(CheckTest, DcheckFamilyPassesInBothBuildModes) {
  NP_DCHECK(true);
  NP_DCHECK_EQ(2, 2);
  NP_DCHECK_NE(1, 2);
  NP_DCHECK_LT(1, 2);
  NP_DCHECK_LE(2, 2);
  NP_DCHECK_GT(3, 2);
  NP_DCHECK_GE(3, 3);
}

// The release stub must typecheck its argument without evaluating it; the
// debug build must evaluate (and die on) the same expression.
TEST(CheckDeathTest, DcheckEvaluationTracksBuildMode) {
  int calls = 0;
  auto failing = [&calls]() {
    ++calls;
    return false;
  };
#ifdef NDEBUG
  NP_DCHECK(failing());
  EXPECT_EQ(calls, 0);
#else
  EXPECT_DEATH(NP_DCHECK(failing()), "Check failed");
#endif
}

TEST(EndianTest, ScalarsRoundTripThroughLittleEndianBytes) {
  std::uint8_t buf[8];
  WriteLE(std::int16_t{-12345}, buf);
  EXPECT_EQ(ReadLE<std::int16_t>(buf), -12345);
  WriteLE(std::int32_t{0x12345678}, buf);
  EXPECT_EQ(ReadLE<std::int32_t>(buf), 0x12345678);
  EXPECT_EQ(buf[0], 0x78);  // little-endian on disk, whatever the host
  EXPECT_EQ(buf[3], 0x12);
  WriteLE(std::uint64_t{0xdeadbeefcafef00dULL}, buf);
  EXPECT_EQ(ReadLE<std::uint64_t>(buf), 0xdeadbeefcafef00dULL);
  WriteLE(1.5f, buf);
  EXPECT_EQ(ReadLE<float>(buf), 1.5f);
  WriteLE(-2.25, buf);
  EXPECT_EQ(ReadLE<double>(buf), -2.25);
}

TEST(EndianTest, ReadBEIsByteReversedReadLE) {
  const std::uint8_t le[4] = {0x78, 0x56, 0x34, 0x12};
  const std::uint8_t be[4] = {0x12, 0x34, 0x56, 0x78};
  EXPECT_EQ(ReadLE<std::int32_t>(le), ReadBE<std::int32_t>(be));
}

TEST(EndianTest, AppendLEAndStreamReadLERoundTrip) {
  std::vector<char> buf;
  AppendLE(buf, std::uint32_t{7});
  AppendLE(buf, -1.25);
  ASSERT_EQ(buf.size(), 12u);

  std::istringstream in(std::string(buf.begin(), buf.end()));
  std::uint32_t u = 0;
  double d = 0.0;
  ASSERT_TRUE(ReadLE(in, u));
  ASSERT_TRUE(ReadLE(in, d));
  EXPECT_EQ(u, 7u);
  EXPECT_EQ(d, -1.25);
  // Short read: nothing left in the stream.
  EXPECT_FALSE(ReadLE(in, u));
}

}  // namespace
}  // namespace neuroprint
