// End-to-end integration tests crossing every module boundary: cohort
// simulation -> voxel rendering -> NIfTI files on disk -> preprocessing
// pipeline -> connectomes -> attack; plus the multisite and defense
// compositions at the group-matrix level.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "atlas/atlas_io.h"
#include "atlas/synthetic_atlas.h"
#include "connectome/connectome.h"
#include "connectome/group_matrix.h"
#include "core/attack.h"
#include "core/defense.h"
#include "nifti/nifti_io.h"
#include "preprocess/pipeline.h"
#include "sim/cohort.h"
#include "sim/voxel_render.h"

namespace neuroprint {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// The attacker's real workflow: everything passes through files on disk.
TEST(EndToEndTest, NiftiFilesThroughPipelineToIdentification) {
  // Atlas persisted and re-loaded through NIfTI, as a real tool would.
  atlas::SyntheticAtlasConfig atlas_config;
  atlas_config.nx = 18;
  atlas_config.ny = 20;
  atlas_config.nz = 18;
  atlas_config.num_regions = 30;
  atlas_config.seed = 42;
  auto built_atlas = atlas::GenerateSyntheticAtlas(atlas_config);
  ASSERT_TRUE(built_atlas.ok());
  const std::string atlas_path = TempPath("e2e_atlas.nii.gz");
  ASSERT_TRUE(atlas::WriteAtlasNifti(atlas_path, *built_atlas).ok());
  auto atlas = atlas::ReadAtlasNifti(atlas_path);
  ASSERT_TRUE(atlas.ok());

  sim::CohortConfig config;
  config.num_subjects = 3;
  config.num_regions = 30;
  config.frames_override = 220;
  config.signature_scale = 1.4;
  config.seed = 77;
  auto cohort = sim::CohortSimulator::Create(config);
  ASSERT_TRUE(cohort.ok());

  // Render + write both sessions of every subject.
  Rng rng(55);
  for (std::size_t s = 0; s < 3; ++s) {
    for (const auto& [encoding, tag] :
         {std::pair{sim::Encoding::kLeftRight, "lr"},
          std::pair{sim::Encoding::kRightLeft, "rl"}}) {
      auto series =
          cohort->SimulateRegionSeries(s, sim::TaskType::kRest, encoding);
      ASSERT_TRUE(series.ok());
      sim::VoxelRenderConfig render;
      render.motion_step = 0.02;
      render.drift_amplitude = 10.0;
      render.plant_slice_timing = true;
      auto run = sim::RenderVoxelRun(*atlas, *series, render, rng);
      ASSERT_TRUE(run.ok());
      ASSERT_TRUE(nifti::WriteNifti(
                      TempPath("e2e_s" + std::to_string(s) + "_" + tag + ".nii.gz"),
                      *run)
                      .ok());
    }
  }

  // Read back and preprocess.
  preprocess::PipelineConfig pipeline = preprocess::RestingStateConfig();
  pipeline.temporal_filter = preprocess::TemporalFilter::kNone;  // Broadband sim.
  pipeline.registration.sample_stride = 2;
  pipeline.smoothing_fwhm_mm = 0.0;

  auto load_session = [&](const char* tag) {
    std::vector<linalg::Vector> columns;
    std::vector<std::string> ids;
    for (std::size_t s = 0; s < 3; ++s) {
      auto image = nifti::ReadNifti(
          TempPath("e2e_s" + std::to_string(s) + "_" + tag + ".nii.gz"));
      EXPECT_TRUE(image.ok());
      auto output = preprocess::RunPipeline(image->data, *atlas, pipeline);
      EXPECT_TRUE(output.ok()) << output.status();
      auto conn = connectome::BuildConnectome(output->region_series);
      columns.push_back(*connectome::VectorizeUpperTriangle(*conn));
      ids.push_back("subject-" + std::to_string(s));
    }
    return *connectome::GroupMatrix::FromFeatureColumns(columns, ids);
  };
  const auto known = load_session("lr");
  const auto anonymous = load_session("rl");

  core::AttackOptions options;
  options.num_features = 80;
  auto attack = core::DeanonymizationAttack::Fit(known, options);
  ASSERT_TRUE(attack.ok());
  auto result = attack->Identify(anonymous);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->accuracy, 1.0)
      << "full disk round-trip should identify all 3 subjects";
}

TEST(EndToEndTest, MultisiteNoiseDegradesButDoesNotDestroy) {
  sim::CohortConfig config;
  config.num_subjects = 20;
  config.num_regions = 50;
  config.frames_override = 250;
  config.seed = 99;
  auto cohort = sim::CohortSimulator::Create(config);
  ASSERT_TRUE(cohort.ok());
  auto known =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  ASSERT_TRUE(known.ok());
  auto attack = core::DeanonymizationAttack::Fit(*known);
  ASSERT_TRUE(attack.ok());

  double previous = 1.1;
  bool monotone = true;
  std::vector<double> accuracies;
  for (const double fraction : {0.0, 0.2, 0.6}) {
    auto anonymous = cohort->BuildGroupMatrix(sim::TaskType::kRest,
                                              sim::Encoding::kRightLeft, fraction);
    ASSERT_TRUE(anonymous.ok());
    auto result = attack->Identify(*anonymous);
    ASSERT_TRUE(result.ok());
    accuracies.push_back(result->accuracy);
    if (result->accuracy > previous + 0.10) monotone = false;
    previous = result->accuracy;
  }
  EXPECT_TRUE(monotone) << "accuracy should not grow with site noise";
  EXPECT_GE(accuracies.front(), 0.9);
  EXPECT_GT(accuracies.front(), accuracies.back());
  EXPECT_GT(accuracies.back(), 1.0 / 20.0);  // Still far above chance.
}

TEST(EndToEndTest, CrossTaskIdentificationOrdering) {
  // REST->REST must beat REST->MOTOR (the paper's central asymmetry).
  sim::CohortConfig config;
  config.num_subjects = 16;
  config.num_regions = 50;
  config.seed = 2020;
  auto cohort = sim::CohortSimulator::Create(config);
  ASSERT_TRUE(cohort.ok());
  auto known =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  ASSERT_TRUE(known.ok());
  auto attack = core::DeanonymizationAttack::Fit(*known);
  ASSERT_TRUE(attack.ok());

  auto rest = cohort->BuildGroupMatrix(sim::TaskType::kRest,
                                       sim::Encoding::kRightLeft);
  auto motor = cohort->BuildGroupMatrix(sim::TaskType::kMotor,
                                        sim::Encoding::kRightLeft);
  ASSERT_TRUE(rest.ok());
  ASSERT_TRUE(motor.ok());
  auto rest_result = attack->Identify(*rest);
  auto motor_result = attack->Identify(*motor);
  ASSERT_TRUE(rest_result.ok());
  ASSERT_TRUE(motor_result.ok());
  EXPECT_GT(rest_result->accuracy, motor_result->accuracy + 0.2);
}

TEST(EndToEndTest, DefenseThenAttackComposition) {
  sim::CohortConfig config;
  config.num_subjects = 16;
  config.num_regions = 40;
  config.frames_override = 220;
  config.seed = 31337;
  auto cohort = sim::CohortSimulator::Create(config);
  ASSERT_TRUE(cohort.ok());
  auto known =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  auto release =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  ASSERT_TRUE(known.ok());
  ASSERT_TRUE(release.ok());

  core::DefenseOptions options;
  options.mode = core::DefenseMode::kShuffle;
  options.num_edges = 600;
  auto eval = core::EvaluateDefense(*known, *release, options);
  ASSERT_TRUE(eval.ok()) << eval.status();
  EXPECT_GE(eval->accuracy_undefended, 0.9);
  // Suppressing most of the release's signature must hurt at least one
  // attacker model materially.
  const double best_attacker = std::max(eval->accuracy_static_attacker,
                                        eval->accuracy_adaptive_attacker);
  EXPECT_LT(best_attacker, eval->accuracy_undefended);
  EXPECT_GT(eval->distortion, 0.0);
}

}  // namespace
}  // namespace neuroprint
