// Tests for atlas <-> NIfTI label-volume conversion.

#include <gtest/gtest.h>

#include "atlas/atlas_io.h"
#include "atlas/synthetic_atlas.h"
#include "nifti/nifti_io.h"

namespace neuroprint::atlas {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(AtlasIoTest, LabelVolumeRoundTrip) {
  const auto original = Aal2LikeAtlas(7);
  ASSERT_TRUE(original.ok());
  const image::Volume3D labels = AtlasToLabelVolume(*original);
  const auto restored = AtlasFromLabelVolume(labels);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_regions(), original->num_regions());
  EXPECT_EQ(restored->flat(), original->flat());
}

TEST(AtlasIoTest, NiftiFileRoundTripExact) {
  const auto original = GlasserLikeAtlas(13);
  ASSERT_TRUE(original.ok());
  const std::string path = TempPath("atlas_roundtrip.nii.gz");
  ASSERT_TRUE(WriteAtlasNifti(path, *original).ok());
  const auto restored = ReadAtlasNifti(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_regions(), 360u);
  // Labels must be bit-exact (the writer disables integer autoscaling).
  EXPECT_EQ(restored->flat(), original->flat());
}

TEST(AtlasIoTest, RejectsNegativeAndFractionalLabels) {
  image::Volume3D negative(2, 2, 2, 0.0f);
  negative.at(0, 0, 0) = -1.0f;
  EXPECT_FALSE(AtlasFromLabelVolume(negative).ok());

  image::Volume3D fractional(2, 2, 2, 0.0f);
  fractional.at(0, 0, 0) = 1.5f;
  EXPECT_FALSE(AtlasFromLabelVolume(fractional).ok());
}

TEST(AtlasIoTest, RejectsAllBackgroundAndGaps) {
  const image::Volume3D empty(3, 3, 3, 0.0f);
  EXPECT_FALSE(AtlasFromLabelVolume(empty).ok());

  // Label 2 present but label 1 missing -> empty region 1.
  image::Volume3D gap(3, 3, 3, 0.0f);
  gap.at(1, 1, 1) = 2.0f;
  EXPECT_FALSE(AtlasFromLabelVolume(gap).ok());
}

TEST(AtlasIoTest, Rejects4DImageAsAtlas) {
  image::Volume4D run(3, 3, 3, 2, 1.0f);
  const std::string path = TempPath("atlas_4d.nii");
  ASSERT_TRUE(::neuroprint::nifti::WriteNifti(path, run).ok());
  const auto restored = ReadAtlasNifti(path);
  EXPECT_FALSE(restored.ok());
}

}  // namespace
}  // namespace neuroprint::atlas
