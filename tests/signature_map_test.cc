// Tests for signature localization: edge importance must aggregate to the
// right regions and render onto the atlas grid.

#include <gtest/gtest.h>

#include "atlas/synthetic_atlas.h"
#include "connectome/connectome.h"
#include "core/signature_map.h"

namespace neuroprint::core {
namespace {

TEST(SignatureMapTest, AggregatesEdgeMassToEndpoints) {
  // 4 regions -> 6 edges in order (0,1),(0,2),(0,3),(1,2),(1,3),(2,3).
  linalg::Vector scores{0.4, 0.0, 0.0, 0.0, 0.0, 0.2};
  const std::vector<std::size_t> selected{0, 5};  // Edges (0,1) and (2,3).
  const auto importance = ComputeRegionImportance(selected, scores, 4);
  ASSERT_TRUE(importance.ok()) << importance.status();
  ASSERT_EQ(importance->size(), 4u);
  // Regions 0 and 1 each get half of 0.4; regions 2 and 3 half of 0.2.
  EXPECT_EQ((*importance)[0].region_index, 0u);
  EXPECT_DOUBLE_EQ((*importance)[0].leverage_mass, 0.2);
  EXPECT_EQ((*importance)[0].edge_count, 1u);
  EXPECT_DOUBLE_EQ((*importance)[2].leverage_mass, 0.1);
  // Total mass equals the selected leverage mass.
  double total = 0.0;
  for (const auto& entry : *importance) total += entry.leverage_mass;
  EXPECT_NEAR(total, 0.6, 1e-12);
}

TEST(SignatureMapTest, SortsByMassDescending) {
  linalg::Vector scores{0.1, 0.9, 0.05, 0.0, 0.0, 0.0};
  const auto importance = ComputeRegionImportance({0, 1, 2}, scores, 4);
  ASSERT_TRUE(importance.ok());
  for (std::size_t i = 0; i + 1 < importance->size(); ++i) {
    EXPECT_GE((*importance)[i].leverage_mass,
              (*importance)[i + 1].leverage_mass);
  }
  // Region 0 touches all three selected edges: it must rank first.
  EXPECT_EQ((*importance)[0].region_index, 0u);
  EXPECT_EQ((*importance)[0].edge_count, 3u);
}

TEST(SignatureMapTest, RejectsMismatchedInputs) {
  linalg::Vector scores(6, 0.1);
  EXPECT_FALSE(ComputeRegionImportance({0}, scores, 5).ok());  // 5 -> 10 edges.
  EXPECT_FALSE(ComputeRegionImportance({99}, scores, 4).ok());
  EXPECT_FALSE(ComputeRegionImportance({0}, scores, 1).ok());
}

TEST(SignatureMapTest, RendersOntoAtlasGrid) {
  atlas::SyntheticAtlasConfig config;
  config.nx = 10;
  config.ny = 10;
  config.nz = 10;
  config.num_regions = 4;
  config.seed = 9;
  const auto atlas = atlas::GenerateSyntheticAtlas(config);
  ASSERT_TRUE(atlas.ok());

  linalg::Vector scores(connectome::NumEdges(4), 0.0);
  scores[0] = 1.0;  // Edge (0,1): regions 1 and 2 (1-based labels) get 0.5.
  const auto importance = ComputeRegionImportance({0}, scores, 4);
  ASSERT_TRUE(importance.ok());
  const auto map = RenderSignatureMap(*importance, *atlas);
  ASSERT_TRUE(map.ok());

  for (std::size_t z = 0; z < 10; ++z) {
    for (std::size_t y = 0; y < 10; ++y) {
      for (std::size_t x = 0; x < 10; ++x) {
        const std::int32_t label = atlas->label(x, y, z);
        const float value = map->at(x, y, z);
        if (label == 1 || label == 2) {
          EXPECT_FLOAT_EQ(value, 0.5f);
        } else {
          EXPECT_FLOAT_EQ(value, 0.0f);
        }
      }
    }
  }
}

}  // namespace
}  // namespace neuroprint::core
