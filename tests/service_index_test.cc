// Property tests for the sharded identification index (service tier):
// enroll/remove round-trips, cluster-pruned vs. brute-force top-1 parity,
// deterministic shard assignment, staleness/refresh semantics, and the
// edge-case Status contract.

#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/identification_index.h"
#include "service/synthetic_gallery.h"
#include "util/status.h"

namespace neuroprint::service {
namespace {

SyntheticGalleryConfig SmallGallery(std::size_t subjects,
                                    std::size_t features) {
  SyntheticGalleryConfig config;
  config.num_subjects = subjects;
  config.num_features = features;
  config.seed = 0x5eed5eedULL;
  return config;
}

// A fresh index fitted on subjects [0, reference) of session 0.
Result<IdentificationIndex> MakeIndex(const SyntheticGalleryConfig& gallery,
                                      std::size_t reference,
                                      const IndexOptions& options = {}) {
  auto ref = MakeSyntheticGallerySlice(gallery, 0, 0, reference);
  if (!ref.ok()) return ref.status();
  return IdentificationIndex::Create(*ref, options);
}

TEST(ServiceIndexTest, EnrollRemoveRoundTripMatchesRestrictedEnrollment) {
  // enroll(A..Z) + remove(M) must leave state identical to enrolling the
  // set minus M: the index is a pure function of the member set.
  const auto gallery = SmallGallery(26, 64);
  auto with_m = MakeIndex(gallery, 8);
  auto without_m = MakeIndex(gallery, 8);
  ASSERT_TRUE(with_m.ok()) << with_m.status();
  ASSERT_TRUE(without_m.ok()) << without_m.status();

  auto tail = MakeSyntheticGallerySlice(gallery, 0, 8, 26);
  ASSERT_TRUE(tail.ok());
  const std::string removed_id = SyntheticSubjectId(13);

  ASSERT_TRUE(with_m->EnrollBatch(*tail).ok());
  ASSERT_TRUE(with_m->Remove(removed_id).ok());

  std::vector<std::size_t> keep;
  for (std::size_t j = 0; j < tail->num_subjects(); ++j) {
    if (tail->subject_ids()[j] != removed_id) keep.push_back(j);
  }
  auto restricted = tail->RestrictToSubjects(keep);
  ASSERT_TRUE(restricted.ok());
  ASSERT_TRUE(without_m->EnrollBatch(*restricted).ok());

  EXPECT_FALSE(with_m->Contains(removed_id));
  EXPECT_EQ(with_m->size(), without_m->size());
  EXPECT_EQ(with_m->DebugStateString(), without_m->DebugStateString());
}

TEST(ServiceIndexTest, EnrollmentOrderDoesNotChangeState) {
  const auto gallery = SmallGallery(20, 48);
  auto forward = MakeIndex(gallery, 6);
  auto backward = MakeIndex(gallery, 6);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  auto tail = MakeSyntheticGallerySlice(gallery, 0, 6, 20);
  ASSERT_TRUE(tail.ok());
  for (std::size_t j = 0; j < tail->num_subjects(); ++j) {
    const std::size_t r = tail->num_subjects() - 1 - j;
    ASSERT_TRUE(
        forward->Enroll(tail->subject_ids()[j], tail->SubjectColumn(j)).ok());
    ASSERT_TRUE(
        backward->Enroll(tail->subject_ids()[r], tail->SubjectColumn(r)).ok());
  }
  EXPECT_EQ(forward->DebugStateString(), backward->DebugStateString());
}

TEST(ServiceIndexTest, PrunedSearchMatchesBruteForceTopOne) {
  // Clusters must never change the identification outcome — only the
  // amount of work. Non-vacuity: pruning actually skips candidates.
  auto gallery = SmallGallery(300, 128);
  IndexOptions options;
  options.num_features = 64;
  options.num_shards = 4;
  auto index = MakeIndex(gallery, 64, options);
  ASSERT_TRUE(index.ok()) << index.status();
  auto rest = MakeSyntheticGallerySlice(gallery, 0, 64, 300);
  ASSERT_TRUE(rest.ok());
  ASSERT_TRUE(index->EnrollBatch(*rest).ok());

  auto probes = MakeSyntheticGallery(gallery, 1);
  ASSERT_TRUE(probes.ok());
  auto pruned = index->IdentifyBatch(*probes);
  auto brute = index->IdentifyBatchBruteForce(*probes);
  ASSERT_TRUE(pruned.ok()) << pruned.status();
  ASSERT_TRUE(brute.ok()) << brute.status();

  ASSERT_EQ(pruned->matches.size(), brute->matches.size());
  std::size_t pruned_scanned = 0, brute_scanned = 0;
  for (std::size_t p = 0; p < pruned->matches.size(); ++p) {
    EXPECT_EQ(pruned->matches[p].subject_id, brute->matches[p].subject_id)
        << "probe " << pruned->probe_ids[p];
    pruned_scanned += pruned->matches[p].candidates_scanned;
    brute_scanned += brute->matches[p].candidates_scanned;
  }
  EXPECT_DOUBLE_EQ(pruned->accuracy, brute->accuracy);
  EXPECT_LT(pruned_scanned, brute_scanned) << "pruning was vacuous";
}

TEST(ServiceIndexTest, ShardAssignmentIsDeterministic) {
  const auto gallery = SmallGallery(12, 32);
  IndexOptions options;
  options.num_shards = 5;
  auto a = MakeIndex(gallery, 12, options);
  auto b = MakeIndex(gallery, 12, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t j = 0; j < 40; ++j) {
    const std::string id = SyntheticSubjectId(j);
    // A pure function of (id, num_shards): equal across instances and
    // equal to the documented hash, enrolled or not.
    EXPECT_EQ(a->ShardOf(id), SubjectHash(id) % 5);
    EXPECT_EQ(a->ShardOf(id), b->ShardOf(id));
  }
}

TEST(ServiceIndexTest, SingleProbeMatchesBatch) {
  const auto gallery = SmallGallery(30, 64);
  auto index = MakeIndex(gallery, 30);
  ASSERT_TRUE(index.ok());
  auto probes = MakeSyntheticGallery(gallery, 1);
  ASSERT_TRUE(probes.ok());
  auto batch = index->IdentifyBatch(*probes);
  ASSERT_TRUE(batch.ok());
  for (std::size_t j = 0; j < probes->num_subjects(); ++j) {
    auto single = index->Identify(probes->SubjectColumn(j));
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(single->subject_id, batch->matches[j].subject_id);
    EXPECT_EQ(single->similarity, batch->matches[j].similarity);
    EXPECT_EQ(single->margin, batch->matches[j].margin);
  }
}

TEST(ServiceIndexTest, EdgeCaseStatuses) {
  const auto gallery = SmallGallery(6, 24);
  auto index = MakeIndex(gallery, 6);
  ASSERT_TRUE(index.ok());

  // Duplicate enrollment.
  auto ref = MakeSyntheticGallery(gallery, 0);
  ASSERT_TRUE(ref.ok());
  const Status dup = index->Enroll(SyntheticSubjectId(0), ref->SubjectColumn(0));
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);

  // Removing an id that was never enrolled.
  EXPECT_EQ(index->Remove("nobody").code(), StatusCode::kNotFound);

  // Dimension mismatch on enroll and probe.
  const linalg::Vector short_column(3, 0.5);
  EXPECT_EQ(index->Enroll("new", short_column).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(index->Identify(short_column).status().code(),
            StatusCode::kInvalidArgument);

  // Non-finite probe.
  linalg::Vector bad = ref->SubjectColumn(0);
  bad[1] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(index->Identify(bad).status().code(), StatusCode::kCorruptData);

  // Empty gallery: a clean FailedPrecondition, not an assert.
  for (const std::string& id : index->EnrolledIds()) {
    ASSERT_TRUE(index->Remove(id).ok());
  }
  EXPECT_EQ(index->size(), 0u);
  EXPECT_EQ(index->Identify(ref->SubjectColumn(0)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(index->IdentifyBatch(*ref).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServiceIndexTest, StalenessCountsMutationsAndRefreshResets) {
  const auto gallery = SmallGallery(24, 64);
  auto index = MakeIndex(gallery, 12);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->sketch_staleness(), 0u);

  auto tail = MakeSyntheticGallerySlice(gallery, 0, 12, 24);
  ASSERT_TRUE(tail.ok());
  ASSERT_TRUE(index->EnrollBatch(*tail).ok());
  EXPECT_EQ(index->sketch_staleness(), 12u);
  ASSERT_TRUE(index->Remove(SyntheticSubjectId(3)).ok());
  EXPECT_EQ(index->sketch_staleness(), 13u);

  ASSERT_TRUE(index->RefreshSketch().ok());
  EXPECT_EQ(index->sketch_staleness(), 0u);

  // The refreshed subspace still identifies everyone it retains.
  auto probes = MakeSyntheticGallery(gallery, 1);
  ASSERT_TRUE(probes.ok());
  auto result = index->IdentifyBatch(*probes);
  ASSERT_TRUE(result.ok());
  auto brute = index->IdentifyBatchBruteForce(*probes);
  ASSERT_TRUE(brute.ok());
  EXPECT_DOUBLE_EQ(result->accuracy, brute->accuracy);
}

TEST(ServiceIndexTest, AutoRefreshTriggersOnCadence) {
  const auto gallery = SmallGallery(20, 48);
  IndexOptions options;
  options.refresh_interval = 4;
  auto index = MakeIndex(gallery, 10, options);
  ASSERT_TRUE(index.ok());
  auto tail = MakeSyntheticGallerySlice(gallery, 0, 10, 20);
  ASSERT_TRUE(tail.ok());
  for (std::size_t j = 0; j < 3; ++j) {
    ASSERT_TRUE(
        index->Enroll(tail->subject_ids()[j], tail->SubjectColumn(j)).ok());
  }
  EXPECT_EQ(index->sketch_staleness(), 3u);
  ASSERT_TRUE(
      index->Enroll(tail->subject_ids()[3], tail->SubjectColumn(3)).ok());
  EXPECT_EQ(index->sketch_staleness(), 0u);  // 4th mutation refreshed.
}

TEST(ServiceIndexTest, RefreshWithoutRetainedColumnsFailsCleanly) {
  const auto gallery = SmallGallery(10, 32);
  IndexOptions options;
  options.retain_full_columns = false;
  auto index = MakeIndex(gallery, 10, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->RefreshSketch().code(), StatusCode::kFailedPrecondition);
  // Serving still works without the retained columns.
  auto probes = MakeSyntheticGallery(gallery, 1);
  ASSERT_TRUE(probes.ok());
  EXPECT_TRUE(index->IdentifyBatch(*probes).ok());
}

TEST(ServiceIndexTest, CreateRejectsWideReference) {
  // Leverage needs a tall matrix: more reference subjects than features
  // must be a clean error telling the caller to fit on a sample.
  const auto gallery = SmallGallery(40, 16);
  auto index = MakeIndex(gallery, 40);
  EXPECT_FALSE(index.ok());
  EXPECT_EQ(index.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace neuroprint::service
