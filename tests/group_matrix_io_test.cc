// Tests for binary GroupMatrix persistence: bit-exact round trips and
// corrupt-file rejection, for both the materializing reader and the
// file-backed MatrixStore / incremental writer.

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "connectome/group_matrix_io.h"
#include "connectome/matrix_store.h"
#include "util/random.h"

namespace neuroprint::connectome {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

GroupMatrix MakeGroup(std::size_t features, std::size_t subjects, Rng& rng) {
  std::vector<linalg::Vector> columns(subjects);
  std::vector<std::string> ids;
  for (std::size_t j = 0; j < subjects; ++j) {
    columns[j].resize(features);
    for (double& v : columns[j]) v = rng.Gaussian();
    ids.push_back("subject-" + std::to_string(j));
  }
  return *GroupMatrix::FromFeatureColumns(columns, ids);
}

TEST(GroupMatrixIoTest, RoundTripBitExact) {
  Rng rng(5);
  const GroupMatrix group = MakeGroup(500, 7, rng);
  const std::string path = TempPath("group_roundtrip.npgm");
  ASSERT_TRUE(WriteGroupMatrix(path, group).ok());
  const auto restored = ReadGroupMatrix(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_features(), 500u);
  EXPECT_EQ(restored->num_subjects(), 7u);
  EXPECT_EQ(restored->subject_ids(), group.subject_ids());
  for (std::size_t j = 0; j < 7; ++j) {
    EXPECT_EQ(restored->SubjectColumn(j), group.SubjectColumn(j));
  }
}

TEST(GroupMatrixIoTest, EmptySubjectIdSurvives) {
  const auto group =
      GroupMatrix::FromFeatureColumns({{1.0, 2.0}, {3.0, 4.0}}, {"", "x"});
  ASSERT_TRUE(group.ok());
  const std::string path = TempPath("group_empty_id.npgm");
  ASSERT_TRUE(WriteGroupMatrix(path, *group).ok());
  const auto restored = ReadGroupMatrix(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->subject_ids()[0], "");
  EXPECT_EQ(restored->subject_ids()[1], "x");
}

TEST(GroupMatrixIoTest, RejectsMissingAndGarbageFiles) {
  EXPECT_EQ(ReadGroupMatrix(TempPath("nope.npgm")).status().code(),
            StatusCode::kIOError);
  const std::string path = TempPath("garbage.npgm");
  std::ofstream(path) << "this is not a group matrix";
  EXPECT_EQ(ReadGroupMatrix(path).status().code(), StatusCode::kCorruptData);
}

TEST(GroupMatrixIoTest, RejectsTruncatedValues) {
  Rng rng(6);
  const GroupMatrix group = MakeGroup(100, 4, rng);
  const std::string path = TempPath("group_truncated.npgm");
  ASSERT_TRUE(WriteGroupMatrix(path, group).ok());
  // Chop the last kilobyte off.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  std::string contents(static_cast<std::size_t>(in.tellg()) - 1024, '\0');
  in.seekg(0);
  in.read(contents.data(), static_cast<std::streamsize>(contents.size()));
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(contents.data(), static_cast<std::streamsize>(contents.size()));
  EXPECT_EQ(ReadGroupMatrix(path).status().code(), StatusCode::kCorruptData);
}

TEST(GroupMatrixIoTest, RejectsTrailingBytes) {
  Rng rng(7);
  const GroupMatrix group = MakeGroup(64, 3, rng);
  const std::string path = TempPath("group_trailing.npgm");
  ASSERT_TRUE(WriteGroupMatrix(path, group).ok());
  std::ofstream(path, std::ios::binary | std::ios::app) << "extra";
  const auto restored = ReadGroupMatrix(path);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(restored.status().message().find("trailing"), std::string::npos)
      << restored.status();
}

TEST(GroupMatrixIoTest, ValueCorruptionIsCaughtByChecksum) {
  // A single flipped bit in the value payload keeps every size field
  // consistent — only the v2 CRC trailer can catch it.
  Rng rng(9);
  const GroupMatrix group = MakeGroup(48, 5, rng);
  const std::string path = TempPath("group_bitflip.npgm");
  ASSERT_TRUE(WriteGroupMatrix(path, group).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    // A byte inside the last value, before the 4-byte CRC trailer.
    f.seekp(-7, std::ios::end);
    char byte = 0;
    f.seekg(-7, std::ios::end);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(-7, std::ios::end);
    f.write(&byte, 1);
  }
  const auto restored = ReadGroupMatrix(path);
  ASSERT_EQ(restored.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(restored.status().message().find("checksum mismatch"),
            std::string::npos)
      << restored.status();

  // A corrupted trailer (rather than payload) is the same failure.
  ASSERT_TRUE(WriteGroupMatrix(path, group).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(-1, std::ios::end);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(-1, std::ios::end);
    f.write(&byte, 1);
  }
  EXPECT_EQ(ReadGroupMatrix(path).status().code(), StatusCode::kCorruptData);
}

TEST(GroupMatrixIoTest, AtomicWriteLeavesNoTempBehind) {
  Rng rng(10);
  const GroupMatrix group = MakeGroup(16, 2, rng);
  const std::string path = TempPath("group_atomic.npgm");
  ASSERT_TRUE(WriteGroupMatrix(path, group).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "writer left its publish temp behind";
}

// Hand-crafts an NPGM file whose header promises `subjects` columns with
// matching ids but whose payload holds `payload_columns` columns of
// `features` doubles each. Little-endian host assumed (as the sibling
// hand-crafting tests do).
std::string CraftMismatchedFile(const std::string& name,
                                std::uint64_t features, std::uint64_t subjects,
                                std::uint64_t payload_columns) {
  const std::string path = TempPath(name);
  std::ofstream out(path, std::ios::binary);
  out.write("NPGM", 4);
  const std::uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), 4);
  out.write(reinterpret_cast<const char*>(&features), 8);
  out.write(reinterpret_cast<const char*>(&subjects), 8);
  for (std::uint64_t j = 0; j < subjects; ++j) {
    const std::uint32_t id_length = 1;
    const char id = static_cast<char>('a' + j);
    out.write(reinterpret_cast<const char*>(&id_length), 4);
    out.write(&id, 1);
  }
  const double value = 1.5;
  for (std::uint64_t i = 0; i < payload_columns * features; ++i) {
    out.write(reinterpret_cast<const char*>(&value), 8);
  }
  return path;
}

TEST(GroupMatrixIoTest, RejectsSubjectCountPayloadMismatch) {
  // Header promises 3 subjects, payload holds 2 columns: truncation.
  EXPECT_EQ(
      ReadGroupMatrix(CraftMismatchedFile("group_fewer.npgm", 4, 3, 2))
          .status()
          .code(),
      StatusCode::kCorruptData);
  // Header promises 2 subjects, payload holds 3 columns: trailing data.
  EXPECT_EQ(
      ReadGroupMatrix(CraftMismatchedFile("group_more.npgm", 4, 2, 3))
          .status()
          .code(),
      StatusCode::kCorruptData);
  // Sanity: the crafting helper produces a readable file when consistent.
  const auto ok_case =
      ReadGroupMatrix(CraftMismatchedFile("group_exact.npgm", 4, 2, 2));
  ASSERT_TRUE(ok_case.ok()) << ok_case.status();
  EXPECT_EQ(ok_case->num_subjects(), 2u);
  EXPECT_EQ(ok_case->num_features(), 4u);
}

TEST(GroupMatrixIoTest, HugePromisedPayloadRejectedWithoutAllocation) {
  // In-bounds dimensions (2^31 features x 1 subject = 16 GiB payload) with
  // an empty payload must be rejected by the size plausibility check —
  // before the reader tries to allocate a column buffer.
  const std::string path =
      CraftMismatchedFile("group_16gib.npgm", 1ull << 31, 1, 0);
  const auto restored = ReadGroupMatrix(path);
  EXPECT_EQ(restored.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(restored.status().message().find("truncated"), std::string::npos)
      << restored.status();
}

TEST(GroupMatrixIoTest, RejectsImplausibleDimensions) {
  // Hand-craft a header claiming 2^40 features.
  const std::string path = TempPath("group_huge.npgm");
  std::ofstream out(path, std::ios::binary);
  out.write("NPGM", 4);
  const std::uint32_t version = 1;
  const std::uint64_t features = 1ull << 40, subjects = 1;
  out.write(reinterpret_cast<const char*>(&version), 4);
  out.write(reinterpret_cast<const char*>(&features), 8);
  out.write(reinterpret_cast<const char*>(&subjects), 8);
  out.close();
  EXPECT_EQ(ReadGroupMatrix(path).status().code(), StatusCode::kCorruptData);
}

// Truncates the file at `path` to `keep` bytes (helper for the
// shrank-after-Open cases).
void ShrinkFile(const std::string& path, std::size_t keep) {
  std::ifstream in(path, std::ios::binary);
  std::string contents(keep, '\0');
  in.read(contents.data(), static_cast<std::streamsize>(keep));
  ASSERT_TRUE(in.good());
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

TEST(FileMatrixStoreTest, TilesMatchMaterializedMatrix) {
  Rng rng(8);
  const GroupMatrix group = MakeGroup(37, 9, rng);
  const std::string path = TempPath("store_tiles.npgm");
  ASSERT_TRUE(WriteGroupMatrix(path, group).ok());
  auto store = FileMatrixStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->num_features(), 37u);
  EXPECT_EQ((*store)->num_subjects(), 9u);
  EXPECT_EQ((*store)->subject_ids(), group.subject_ids());
  // Ragged tile shapes, including single elements and full columns.
  for (const auto& [r0, rc, c0, cc] :
       {std::array<std::size_t, 4>{0, 37, 0, 9},
        std::array<std::size_t, 4>{5, 7, 2, 3},
        std::array<std::size_t, 4>{36, 1, 8, 1},
        std::array<std::size_t, 4>{0, 1, 0, 9}}) {
    linalg::Matrix tile;
    ASSERT_TRUE((*store)->ReadTile(r0, rc, c0, cc, &tile).ok());
    for (std::size_t i = 0; i < rc; ++i) {
      for (std::size_t j = 0; j < cc; ++j) {
        EXPECT_EQ(tile(i, j), group.data()(r0 + i, c0 + j));
      }
    }
  }
  linalg::Matrix out_of_bounds;
  EXPECT_EQ((*store)->ReadTile(0, 38, 0, 1, &out_of_bounds).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*store)->ReadTile(0, 1, 9, 1, &out_of_bounds).code(),
            StatusCode::kInvalidArgument);
}

TEST(FileMatrixStoreTest, MaterializeStoreRoundTripsBitExact) {
  Rng rng(9);
  const GroupMatrix group = MakeGroup(53, 6, rng);
  const std::string path = TempPath("store_materialize.npgm");
  ASSERT_TRUE(WriteGroupMatrix(path, group).ok());
  auto store = FileMatrixStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  const auto restored = MaterializeStore(**store);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->subject_ids(), group.subject_ids());
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_EQ(restored->SubjectColumn(j), group.SubjectColumn(j));
  }
}

TEST(FileMatrixStoreTest, MidTileTruncationAfterOpenIsCorruptData) {
  Rng rng(10);
  const GroupMatrix group = MakeGroup(64, 5, rng);
  const std::string path = TempPath("store_shrunk.npgm");
  ASSERT_TRUE(WriteGroupMatrix(path, group).ok());
  auto store = FileMatrixStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  // Shrink the file so the last column's payload ends mid-tile; Open has
  // already validated the header, so only the read can notice.
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  const auto full_size = static_cast<std::size_t>(probe.tellg());
  probe.close();
  ShrinkFile(path, full_size - 32 * sizeof(double));
  linalg::Matrix tile;
  // Early columns are intact.
  EXPECT_TRUE((*store)->ReadColumns(0, 2, &tile).ok());
  const Status late = (*store)->ReadColumns(3, 2, &tile);
  EXPECT_EQ(late.code(), StatusCode::kCorruptData);
  EXPECT_NE(late.message().find("truncated mid-read"), std::string::npos)
      << late;
}

TEST(FileMatrixStoreTest, OpenRejectsHeaderPayloadMismatch) {
  // Header promises 3 subjects, payload holds 2 columns.
  EXPECT_EQ(FileMatrixStore::Open(
                CraftMismatchedFile("store_fewer.npgm", 4, 3, 2))
                .status()
                .code(),
            StatusCode::kCorruptData);
  // Header promises 2 subjects, payload holds 3 columns.
  EXPECT_EQ(FileMatrixStore::Open(
                CraftMismatchedFile("store_more.npgm", 4, 2, 3))
                .status()
                .code(),
            StatusCode::kCorruptData);
  EXPECT_EQ(FileMatrixStore::Open(TempPath("store_missing.npgm"))
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(FileMatrixStoreTest, DeletionAfterOpenIsIOErrorNotCrash) {
  Rng rng(11);
  const GroupMatrix group = MakeGroup(16, 4, rng);
  const std::string path = TempPath("store_deleted.npgm");
  ASSERT_TRUE(WriteGroupMatrix(path, group).ok());
  auto store = FileMatrixStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_EQ(std::remove(path.c_str()), 0);
  // POSIX keeps the open descriptor readable after unlink; replacing the
  // path with an empty file and reopening is the portable way to observe
  // the failure, so accept either a clean read (still-open handle) or a
  // non-OK status — never a crash.
  linalg::Matrix tile;
  const Status status = (*store)->ReadColumns(0, 4, &tile);
  if (!status.ok()) {
    EXPECT_TRUE(status.code() == StatusCode::kIOError ||
                status.code() == StatusCode::kCorruptData)
        << status;
  }
}

TEST(GroupMatrixFileWriterTest, ByteIdenticalToWriteGroupMatrix) {
  Rng rng(12);
  const GroupMatrix group = MakeGroup(41, 6, rng);
  const std::string whole = TempPath("writer_whole.npgm");
  const std::string streamed = TempPath("writer_streamed.npgm");
  ASSERT_TRUE(WriteGroupMatrix(whole, group).ok());
  auto writer =
      GroupMatrixFileWriter::Create(streamed, 41, group.subject_ids());
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (std::size_t j = 0; j < 6; ++j) {
    ASSERT_TRUE(writer->AppendColumn(group.SubjectColumn(j)).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());
  std::ifstream a(whole, std::ios::binary), b(streamed, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(GroupMatrixFileWriterTest, EnforcesColumnContract) {
  const std::string path = TempPath("writer_contract.npgm");
  auto writer = GroupMatrixFileWriter::Create(path, 3, {"a", "b"});
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_EQ(writer->AppendColumn({1.0, 2.0}).code(),
            StatusCode::kInvalidArgument);
  // Finish before every promised column arrived.
  EXPECT_TRUE(writer->AppendColumn({1.0, 2.0, 3.0}).ok());
  EXPECT_EQ(writer->Finish().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(writer->AppendColumn({4.0, 5.0, 6.0}).ok());
  EXPECT_EQ(writer->AppendColumn({7.0, 8.0, 9.0}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(writer->Finish().ok());
  const auto restored = ReadGroupMatrix(path);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->SubjectColumn(1), linalg::Vector({4.0, 5.0, 6.0}));
}

}  // namespace
}  // namespace neuroprint::connectome
