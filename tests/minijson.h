// A small strict-enough JSON parser for tests: the exporter tests parse
// the emitted trace/metrics documents back and assert structure. Not a
// production parser — no streaming, keeps the whole DOM in memory — but
// it rejects malformed input, which is exactly what "well-formedness"
// tests need.

#ifndef NEUROPRINT_TESTS_MINIJSON_H_
#define NEUROPRINT_TESTS_MINIJSON_H_

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace minijson {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  const Value* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace internal {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(Value* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  bool ParseValue(Value* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = Value::Type::kString;
        return ParseString(&out->str);
      case 't':
        out->type = Value::Type::kBool;
        out->boolean = true;
        return Literal("true", 4);
      case 'f':
        out->type = Value::Type::kBool;
        out->boolean = false;
        return Literal("false", 5);
      case 'n':
        out->type = Value::Type::kNull;
        return Literal("null", 4);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(Value* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return false;
    // strtod accepts "inf"/"nan", which JSON does not.
    for (const char* p = start; p < end; ++p) {
      const char c = *p;
      if (!(c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' ||
            (c >= '0' && c <= '9'))) {
        return false;
      }
    }
    out->type = Value::Type::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }

  bool ParseString(std::string* out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return false;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"':
            *out += '"';
            break;
          case '\\':
            *out += '\\';
            break;
          case '/':
            *out += '/';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'n':
            *out += '\n';
            break;
          case 'r':
            *out += '\r';
            break;
          case 't':
            *out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return false;
              }
            }
            pos_ += 4;
            // Tests only emit ASCII escapes; anything else round-trips
            // as '?' rather than full UTF-8 encoding.
            *out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      *out += c;
      ++pos_;
    }
    return false;  // unterminated
  }

  bool ParseArray(Value* out) {
    out->type = Value::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value item;
      SkipWs();
      if (!ParseValue(&item)) return false;
      out->array.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseObject(Value* out) {
    out->type = Value::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (pos_ >= text_.size() || !ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      Value item;
      if (!ParseValue(&item)) return false;
      out->object.emplace_back(std::move(key), std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace internal

inline bool Parse(const std::string& text, Value* out) {
  return internal::Parser(text).Parse(out);
}

}  // namespace minijson

#endif  // NEUROPRINT_TESTS_MINIJSON_H_
