// Tests for the FFT, temporal filters, detrending, regression, and
// resampling — including parameterized sweeps over transform sizes.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "signal/fft.h"
#include "signal/filters.h"
#include "signal/resample.h"
#include "util/random.h"

namespace neuroprint::signal {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<double> RandomSeries(std::size_t n, Rng& rng) {
  std::vector<double> x(n);
  for (double& v : x) v = rng.Gaussian();
  return x;
}

std::vector<double> Sine(std::size_t n, double freq_hz, double tr,
                         double amplitude = 1.0, double phase = 0.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amplitude *
           std::sin(2.0 * kPi * freq_hz * static_cast<double>(i) * tr + phase);
  }
  return x;
}

// ---------------------------------------------------------------------------
// FFT

class FftSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizeTest, RoundTripRecoversSignal) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  const std::vector<double> x = RandomSeries(n, rng);
  ComplexVector data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = Complex(x[i], 0.0);
  Fft(data);
  Ifft(data);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real(), x[i], 1e-9) << "size " << n << " index " << i;
    EXPECT_NEAR(data[i].imag(), 0.0, 1e-9);
  }
}

TEST_P(FftSizeTest, ParsevalHolds) {
  const std::size_t n = GetParam();
  Rng rng(200 + n);
  const std::vector<double> x = RandomSeries(n, rng);
  const ComplexVector spectrum = RealFft(x);
  double time_energy = 0.0;
  for (double v : x) time_energy += v * v;
  double freq_energy = 0.0;
  for (const Complex& c : spectrum) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-8 * std::max(1.0, time_energy));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 64,
                                           100, 128, 176, 255, 300, 405, 512,
                                           1000, 1200));

TEST(FftTest, MatchesNaiveDftSmall) {
  Rng rng(3);
  const std::size_t n = 13;
  const std::vector<double> x = RandomSeries(n, rng);
  const ComplexVector fast = RealFft(x);
  for (std::size_t k = 0; k < n; ++k) {
    Complex slow(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k * t) /
                           static_cast<double>(n);
      slow += x[t] * Complex(std::cos(angle), std::sin(angle));
    }
    EXPECT_NEAR(fast[k].real(), slow.real(), 1e-9);
    EXPECT_NEAR(fast[k].imag(), slow.imag(), 1e-9);
  }
}

TEST(FftTest, PureToneLandsInOneBin) {
  const std::size_t n = 64;
  const double tr = 1.0;
  const std::vector<double> x = Sine(n, 4.0 / 64.0, tr);
  const ComplexVector spectrum = RealFft(x);
  // Energy concentrated at bins 4 and 60 (conjugate).
  for (std::size_t k = 0; k < n; ++k) {
    const double mag = std::abs(spectrum[k]);
    if (k == 4 || k == n - 4) {
      EXPECT_GT(mag, 10.0);
    } else {
      EXPECT_LT(mag, 1e-9);
    }
  }
}

TEST(FftTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(48));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(65), 128u);
}

TEST(FftTest, CircularConvolutionMatchesDirect) {
  Rng rng(5);
  const std::size_t n = 12;
  const std::vector<double> a = RandomSeries(n, rng);
  const std::vector<double> b = RandomSeries(n, rng);
  const std::vector<double> fast = CircularConvolve(a, b);
  for (std::size_t k = 0; k < n; ++k) {
    double slow = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      slow += a[t] * b[(k + n - t) % n];
    }
    EXPECT_NEAR(fast[k], slow, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Filters

TEST(BandPassTest, PassesInBandTone) {
  const double tr = 0.72;
  const std::size_t n = 1200;
  const std::vector<double> x = Sine(n, 0.05, tr);  // Mid-band.
  BandPassConfig config;
  config.tr_seconds = tr;
  const auto y = BandPassFilter(x, config);
  ASSERT_TRUE(y.ok());
  const double in = BandPower(x, 0.04, 0.06, tr);
  const double out = BandPower(*y, 0.04, 0.06, tr);
  EXPECT_GT(out, 0.9 * in);
}

TEST(BandPassTest, RejectsOutOfBandTones) {
  const double tr = 0.72;
  const std::size_t n = 1200;
  // Slow drift at 0.002 Hz plus fast noise at 0.3 Hz.
  std::vector<double> x = Sine(n, 0.002, tr, 5.0);
  const std::vector<double> fast = Sine(n, 0.3, tr, 5.0);
  for (std::size_t i = 0; i < n; ++i) x[i] += fast[i];
  BandPassConfig config;
  config.tr_seconds = tr;
  const auto y = BandPassFilter(x, config);
  ASSERT_TRUE(y.ok());
  EXPECT_LT(BandPower(*y, 0.0, 0.004, tr), 0.01 * BandPower(x, 0.0, 0.004, tr));
  EXPECT_LT(BandPower(*y, 0.25, 0.35, tr), 0.01 * BandPower(x, 0.25, 0.35, tr));
}

TEST(BandPassTest, RemovesDcComponent) {
  std::vector<double> x(200, 7.0);
  const std::vector<double> tone = Sine(200, 0.05, 0.72, 1.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += tone[i];
  BandPassConfig config;
  const auto y = BandPassFilter(x, config);
  ASSERT_TRUE(y.ok());
  double mean = 0.0;
  for (double v : *y) mean += v;
  EXPECT_NEAR(mean / 200.0, 0.0, 1e-10);
}

TEST(BandPassTest, RejectsBadInputs) {
  BandPassConfig config;
  EXPECT_FALSE(BandPassFilter({}, config).ok());
  EXPECT_FALSE(
      BandPassFilter({1.0, std::nan("")}, config).ok());
  BandPassConfig above_nyquist;
  above_nyquist.tr_seconds = 3.0;  // Nyquist ~0.167 Hz < 0.1? no: 0.167>0.1.
  above_nyquist.tr_seconds = 10.0;  // Nyquist 0.05 Hz < 0.1 Hz cutoff.
  EXPECT_FALSE(BandPassFilter({1, 2, 3}, above_nyquist).ok());
  BandPassConfig inverted;
  inverted.low_cutoff_hz = 0.2;
  inverted.high_cutoff_hz = 0.1;
  inverted.tr_seconds = 0.72;
  EXPECT_FALSE(BandPassFilter({1, 2, 3}, inverted).ok());
}

TEST(HighPassTest, RemovesSlowDriftKeepsSignal) {
  const double tr = 0.72;
  const std::size_t n = 800;
  std::vector<double> signal = Sine(n, 0.08, tr, 1.0);
  std::vector<double> x = signal;
  const std::vector<double> drift = Sine(n, 0.001, tr, 10.0);
  for (std::size_t i = 0; i < n; ++i) x[i] += drift[i];
  const auto y = HighPassFilter(x, 1.0 / 200.0, tr);
  ASSERT_TRUE(y.ok());
  // Drift gone, signal preserved.
  EXPECT_LT(BandPower(*y, 0.0, 0.002, tr), 0.05 * BandPower(x, 0.0, 0.002, tr));
  EXPECT_GT(BandPower(*y, 0.07, 0.09, tr), 0.8 * BandPower(signal, 0.07, 0.09, tr));
}

TEST(DetrendTest, RemovesLinearTrendExactly) {
  std::vector<double> x(100);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 3.0 + 0.5 * static_cast<double>(i);
  }
  const auto y = DetrendLinear(x);
  ASSERT_TRUE(y.ok());
  for (double v : *y) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(DetrendTest, DegreeZeroIsDemean) {
  const auto y = DetrendPolynomial({1, 2, 3, 4}, 0);
  ASSERT_TRUE(y.ok());
  EXPECT_NEAR((*y)[0], -1.5, 1e-12);
  EXPECT_NEAR((*y)[3], 1.5, 1e-12);
}

TEST(DetrendTest, QuadraticRemovedByDegreeTwo) {
  std::vector<double> x(50);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i);
    x[i] = 1.0 + 2.0 * t - 0.05 * t * t;
  }
  const auto y = DetrendPolynomial(x, 2);
  ASSERT_TRUE(y.ok());
  for (double v : *y) EXPECT_NEAR(v, 0.0, 1e-7);
}

TEST(DetrendTest, RejectsBadDegree) {
  EXPECT_FALSE(DetrendPolynomial({1, 2, 3}, -1).ok());
  EXPECT_FALSE(DetrendPolynomial({1, 2, 3}, 3).ok());
  EXPECT_FALSE(DetrendPolynomial({}, 1).ok());
}

TEST(RegressOutTest, RemovesConfoundComponent) {
  Rng rng(21);
  const std::size_t n = 200;
  const std::vector<double> confound = RandomSeries(n, rng);
  std::vector<double> signal = RandomSeries(n, rng);
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = signal[i] + 3.0 * confound[i];
  const auto y = RegressOut(x, confound);
  ASSERT_TRUE(y.ok());
  // Residual orthogonal to the confound.
  double dot = 0.0;
  for (std::size_t i = 0; i < n; ++i) dot += (*y)[i] * confound[i];
  EXPECT_NEAR(dot, 0.0, 1e-8);
}

TEST(RegressOutTest, DegenerateConfoundFallsBackToDemean) {
  const std::vector<double> constant(10, 0.0);
  const auto y = RegressOut({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, constant);
  ASSERT_TRUE(y.ok());
  double mean = 0.0;
  for (double v : *y) mean += v;
  EXPECT_NEAR(mean, 0.0, 1e-10);
}

TEST(RegressOutTest, RejectsLengthMismatch) {
  EXPECT_FALSE(RegressOut({1, 2, 3}, {1, 2}).ok());
}

// ---------------------------------------------------------------------------
// Resampling

TEST(ShiftSeriesTest, ZeroShiftIsIdentity) {
  Rng rng(31);
  const std::vector<double> x = RandomSeries(30, rng);
  for (const InterpKind kind :
       {InterpKind::kLinear, InterpKind::kWindowedSinc}) {
    const auto y = ShiftSeries(x, 0.0, kind);
    ASSERT_TRUE(y.ok());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR((*y)[i], x[i], 1e-9);
    }
  }
}

TEST(ShiftSeriesTest, LinearInterpExactOnLinearSeries) {
  std::vector<double> x(20);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 2.0 * static_cast<double>(i);
  const auto y = ShiftSeries(x, 0.25, InterpKind::kLinear);
  ASSERT_TRUE(y.ok());
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    EXPECT_NEAR((*y)[i], 2.0 * (static_cast<double>(i) + 0.25), 1e-10);
  }
}

TEST(ShiftSeriesTest, SincRecoversSmoothShiftAccurately) {
  const double tr = 1.0;
  const std::size_t n = 128;
  const double shift = 0.37;
  const std::vector<double> x = Sine(n, 0.05, tr);
  const std::vector<double> expected = Sine(n, 0.05, tr, 1.0,
                                            2.0 * kPi * 0.05 * shift);
  const auto y = ShiftSeries(x, shift, InterpKind::kWindowedSinc);
  ASSERT_TRUE(y.ok());
  // Interior samples match the analytically shifted sine closely.
  for (std::size_t i = 8; i + 8 < n; ++i) {
    EXPECT_NEAR((*y)[i], expected[i], 5e-3);
  }
}

TEST(ResampleSeriesTest, IdentityRateKeepsSeries) {
  Rng rng(41);
  const std::vector<double> x = RandomSeries(25, rng);
  const auto y = ResampleSeries(x, 0.72, 0.72, InterpKind::kLinear);
  ASSERT_TRUE(y.ok());
  ASSERT_EQ(y->size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR((*y)[i], x[i], 1e-9);
  }
}

TEST(ResampleSeriesTest, UpsamplingDoublesLength) {
  const std::vector<double> x{0, 1, 2, 3};
  const auto y = ResampleSeries(x, 1.0, 0.5, InterpKind::kLinear);
  ASSERT_TRUE(y.ok());
  ASSERT_EQ(y->size(), 7u);
  EXPECT_NEAR((*y)[1], 0.5, 1e-12);
  EXPECT_NEAR((*y)[6], 3.0, 1e-12);
}

TEST(ResampleSeriesTest, RejectsBadInputs) {
  EXPECT_FALSE(ResampleSeries({}, 1.0, 1.0, InterpKind::kLinear).ok());
  EXPECT_FALSE(ResampleSeries({1, 2}, 0.0, 1.0, InterpKind::kLinear).ok());
  EXPECT_FALSE(ResampleSeries({1, 2}, 1.0, -1.0, InterpKind::kLinear).ok());
}

}  // namespace
}  // namespace neuroprint::signal
