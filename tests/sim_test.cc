// Tests for the generative cohort simulator: determinism, the planted
// identity signature, task structure, group structure, performance
// coupling, and the multi-site operators.

#include <cmath>

#include <gtest/gtest.h>

#include "connectome/connectome.h"
#include "linalg/stats.h"
#include "linalg/svd.h"
#include "linalg/vector_ops.h"
#include "sim/cohort.h"
#include "sim/task.h"
#include "sim/voxel_render.h"
#include "atlas/synthetic_atlas.h"

namespace neuroprint::sim {
namespace {

CohortConfig SmallConfig(std::uint64_t seed = 5) {
  CohortConfig config;
  config.num_subjects = 8;
  config.num_regions = 30;
  config.frames_override = 150;
  config.seed = seed;
  return config;
}

TEST(TaskTest, NamesAndProperties) {
  EXPECT_STREQ(TaskName(TaskType::kRest), "REST");
  EXPECT_STREQ(TaskName(TaskType::kWorkingMemory), "WM");
  EXPECT_EQ(kAllTasks.size(), 8u);
  // The Figure-5 ordering: rest most identifying, motor/WM least.
  const double rest = DefaultTaskProperties(TaskType::kRest).signature_strength;
  const double motor = DefaultTaskProperties(TaskType::kMotor).signature_strength;
  const double wm =
      DefaultTaskProperties(TaskType::kWorkingMemory).signature_strength;
  const double language =
      DefaultTaskProperties(TaskType::kLanguage).signature_strength;
  EXPECT_GT(rest, language);
  EXPECT_GT(language, motor);
  EXPECT_GT(language, wm);
  EXPECT_TRUE(HasPerformanceMetric(TaskType::kLanguage));
  EXPECT_FALSE(HasPerformanceMetric(TaskType::kRest));
}

TEST(CohortTest, RejectsBadConfigs) {
  CohortConfig config = SmallConfig();
  config.num_subjects = 1;
  EXPECT_FALSE(CohortSimulator::Create(config).ok());
  config = SmallConfig();
  config.num_regions = 2;
  EXPECT_FALSE(CohortSimulator::Create(config).ok());
  config = SmallConfig();
  config.idiosyncratic_variance = 0.0;
  EXPECT_FALSE(CohortSimulator::Create(config).ok());
  config = SmallConfig();
  config.group_sizes = {3, 3};  // Sums to 6, not 8.
  EXPECT_FALSE(CohortSimulator::Create(config).ok());
}

TEST(CohortTest, DeterministicAcrossInstancesAndCallOrder) {
  const auto a = CohortSimulator::Create(SmallConfig());
  const auto b = CohortSimulator::Create(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Generate in different orders; scan (3, REST, LR) must match exactly.
  (void)b->SimulateRegionSeries(1, TaskType::kMotor, Encoding::kRightLeft);
  const auto s1 = a->SimulateRegionSeries(3, TaskType::kRest, Encoding::kLeftRight);
  const auto s2 = b->SimulateRegionSeries(3, TaskType::kRest, Encoding::kLeftRight);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_TRUE(linalg::AlmostEqual(*s1, *s2, 0.0));
}

TEST(CohortTest, DifferentScansDiffer) {
  const auto sim = CohortSimulator::Create(SmallConfig());
  ASSERT_TRUE(sim.ok());
  const auto base =
      sim->SimulateRegionSeries(0, TaskType::kRest, Encoding::kLeftRight);
  const auto other_subject =
      sim->SimulateRegionSeries(1, TaskType::kRest, Encoding::kLeftRight);
  const auto other_session =
      sim->SimulateRegionSeries(0, TaskType::kRest, Encoding::kRightLeft);
  const auto other_task =
      sim->SimulateRegionSeries(0, TaskType::kMotor, Encoding::kLeftRight);
  EXPECT_FALSE(linalg::AlmostEqual(*base, *other_subject, 1e-6));
  EXPECT_FALSE(linalg::AlmostEqual(*base, *other_session, 1e-6));
  EXPECT_FALSE(linalg::AlmostEqual(*base, *other_task, 1e-6));
}

TEST(CohortTest, SeriesShapeFollowsTaskFrames) {
  CohortConfig config = SmallConfig();
  config.frames_override = 0;  // Use per-task defaults.
  const auto sim = CohortSimulator::Create(config);
  ASSERT_TRUE(sim.ok());
  const auto rest =
      sim->SimulateRegionSeries(0, TaskType::kRest, Encoding::kLeftRight);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->rows(), config.num_regions);
  EXPECT_EQ(rest->cols(), DefaultTaskProperties(TaskType::kRest).num_frames);
}

TEST(CohortTest, IntraSubjectSimilarityExceedsInterSubject) {
  // The core invariant the attack rests on (paper Figure 1): two sessions
  // of the same subject correlate more than scans of different subjects.
  const auto sim = CohortSimulator::Create(SmallConfig(11));
  ASSERT_TRUE(sim.ok());
  const auto lr = sim->BuildGroupMatrix(TaskType::kRest, Encoding::kLeftRight);
  const auto rl = sim->BuildGroupMatrix(TaskType::kRest, Encoding::kRightLeft);
  ASSERT_TRUE(lr.ok());
  ASSERT_TRUE(rl.ok());
  const linalg::Matrix sim_matrix =
      linalg::ColumnCrossCorrelation(lr->data(), rl->data());
  double diag = 0.0, off = 0.0;
  const std::size_t n = sim_matrix.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      (i == j ? diag : off) += sim_matrix(i, j);
    }
  }
  diag /= static_cast<double>(n);
  off /= static_cast<double>(n * n - n);
  EXPECT_GT(diag, off + 0.05);
}

TEST(CohortTest, SignatureStrengthMonotoneInScale) {
  // More signature -> more diagonal contrast.
  auto contrast_at = [](double scale) {
    CohortConfig config = SmallConfig(13);
    config.signature_scale = scale;
    const auto sim = CohortSimulator::Create(config);
    const auto lr = sim->BuildGroupMatrix(TaskType::kRest, Encoding::kLeftRight);
    const auto rl = sim->BuildGroupMatrix(TaskType::kRest, Encoding::kRightLeft);
    const linalg::Matrix m =
        linalg::ColumnCrossCorrelation(lr->data(), rl->data());
    double diag = 0.0, off = 0.0;
    for (std::size_t i = 0; i < m.rows(); ++i) {
      for (std::size_t j = 0; j < m.cols(); ++j) {
        (i == j ? diag : off) += m(i, j);
      }
    }
    return diag / static_cast<double>(m.rows()) -
           off / static_cast<double>(m.rows() * m.rows() - m.rows());
  };
  EXPECT_GT(contrast_at(2.0), contrast_at(0.25) + 0.03);
}

TEST(CohortTest, SameTaskScansClusterAcrossSubjects) {
  // Task component makes same-task scans of different subjects more
  // similar than different-task scans of the same subject (the paper's
  // Figure 6 observation).
  const auto sim = CohortSimulator::Create(SmallConfig(17));
  ASSERT_TRUE(sim.ok());
  const auto wm_a =
      *sim->SimulateRegionSeries(0, TaskType::kWorkingMemory, Encoding::kLeftRight);
  const auto wm_b =
      *sim->SimulateRegionSeries(1, TaskType::kWorkingMemory, Encoding::kLeftRight);
  const auto motor_a =
      *sim->SimulateRegionSeries(0, TaskType::kMotor, Encoding::kLeftRight);

  auto features = [](const linalg::Matrix& series) {
    return *connectome::VectorizeUpperTriangle(
        *connectome::BuildConnectome(series));
  };
  const double same_task_cross_subject =
      linalg::PearsonCorrelation(features(wm_a), features(wm_b));
  const double same_subject_cross_task =
      linalg::PearsonCorrelation(features(wm_a), features(motor_a));
  EXPECT_GT(same_task_cross_subject, same_subject_cross_task);
}

TEST(CohortTest, PerformanceScoresInRangeAndCoupled) {
  CohortConfig config = SmallConfig(19);
  config.num_subjects = 20;
  const auto sim = CohortSimulator::Create(config);
  ASSERT_TRUE(sim.ok());
  linalg::Vector scores;
  for (std::size_t s = 0; s < 20; ++s) {
    const double score = sim->PerformanceScore(s, TaskType::kLanguage);
    EXPECT_GE(score, 50.0);
    EXPECT_LE(score, 100.0);
    scores.push_back(score);
  }
  // Scores vary across subjects.
  EXPECT_GT(linalg::StdDev(scores), 1.0);
  // Deterministic.
  EXPECT_DOUBLE_EQ(sim->PerformanceScore(3, TaskType::kLanguage),
                   sim->PerformanceScore(3, TaskType::kLanguage));
}

TEST(CohortTest, GroupAssignmentFollowsSizes) {
  CohortConfig config = SmallConfig(23);
  config.group_sizes = {3, 2, 3};
  config.group_strength = 0.3;
  const auto sim = CohortSimulator::Create(config);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->GroupOf(0), 0u);
  EXPECT_EQ(sim->GroupOf(2), 0u);
  EXPECT_EQ(sim->GroupOf(3), 1u);
  EXPECT_EQ(sim->GroupOf(5), 2u);
  EXPECT_EQ(sim->GroupOf(7), 2u);
}

TEST(CohortTest, PresetsMatchPaperDatasets) {
  const CohortConfig hcp = HcpLikeConfig();
  EXPECT_EQ(hcp.num_subjects, 100u);
  EXPECT_EQ(hcp.num_regions, 360u);
  const CohortConfig adhd = AdhdLikeConfig();
  EXPECT_EQ(adhd.num_regions, 116u);
  EXPECT_FALSE(adhd.group_sizes.empty());
  const auto sim = CohortSimulator::Create(adhd);
  ASSERT_TRUE(sim.ok());
  const auto group = sim->BuildGroupMatrix(TaskType::kRest, Encoding::kLeftRight);
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->num_features(), 6670u);  // The paper's ADHD feature count.
}

TEST(MultisiteTest, VerbatimOperatorShiftsMeanAndAddsVariance) {
  Rng rng(31);
  linalg::Matrix series(3, 2000);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t t = 0; t < 2000; ++t) {
      series(i, t) = rng.Gaussian(10.0 * (i + 1.0), 2.0);
    }
  }
  linalg::Matrix noised = series;
  Rng noise_rng(32);
  ASSERT_TRUE(AddMultisiteNoise(noised, 0.25, noise_rng).ok());
  for (std::size_t i = 0; i < 3; ++i) {
    const linalg::Vector before = series.RowCopy(i);
    const linalg::Vector after = noised.RowCopy(i);
    // Mean roughly doubles (noise mean equals the signal mean).
    EXPECT_NEAR(linalg::Mean(after), 2.0 * linalg::Mean(before),
                0.05 * linalg::Mean(before));
    // Variance grows by ~the fraction.
    EXPECT_NEAR(linalg::Variance(after), 1.25 * linalg::Variance(before),
                0.15 * linalg::Variance(before));
  }
}

TEST(MultisiteTest, ZeroFractionIsNoOp) {
  Rng rng(33);
  linalg::Matrix series(2, 50);
  for (std::size_t t = 0; t < 50; ++t) {
    series(0, t) = rng.Gaussian();
    series(1, t) = rng.Gaussian();
  }
  linalg::Matrix copy = series;
  ASSERT_TRUE(AddMultisiteNoise(copy, 0.0, rng).ok());
  ASSERT_TRUE(AddSiteEffect(copy, 0.0, rng).ok());
  EXPECT_TRUE(linalg::AlmostEqual(copy, series, 0.0));
  EXPECT_FALSE(AddMultisiteNoise(copy, -0.1, rng).ok());
  EXPECT_FALSE(AddSiteEffect(copy, -0.1, rng).ok());
}

TEST(MultisiteTest, SiteEffectIsLowRankAcrossRegions) {
  // The structured effect couples every region to a handful of shared
  // site signals, so the added perturbation matrix is low-rank — that is
  // what distinguishes it from the (full-rank) i.i.d. operator.
  Rng rng(34);
  const std::size_t regions = 24, frames = 400;
  linalg::Matrix series(regions, frames);
  for (std::size_t i = 0; i < regions; ++i) {
    for (std::size_t t = 0; t < frames; ++t) series(i, t) = rng.Gaussian();
  }
  linalg::Matrix noised = series;
  Rng site_rng(35);
  ASSERT_TRUE(AddSiteEffect(noised, 0.5, site_rng).ok());
  const linalg::Matrix delta = noised - series;
  const auto singular_values = linalg::SingularValues(delta.Transposed());
  ASSERT_TRUE(singular_values.ok());
  // At most 4 site components: singular value 5 must be numerically zero.
  EXPECT_GT((*singular_values)[0], 1e-3);
  EXPECT_LT((*singular_values)[4], 1e-8 * (*singular_values)[0]);
}

TEST(VoxelRenderTest, BackgroundStaysZeroBrainCarriesSignal) {
  atlas::SyntheticAtlasConfig atlas_config;
  atlas_config.nx = 10;
  atlas_config.ny = 10;
  atlas_config.nz = 10;
  atlas_config.num_regions = 4;
  const auto atlas = atlas::GenerateSyntheticAtlas(atlas_config);
  ASSERT_TRUE(atlas.ok());

  Rng rng(41);
  linalg::Matrix series(4, 20);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t t = 0; t < 20; ++t) series(r, t) = rng.Gaussian();
  }
  VoxelRenderConfig render;
  const auto run = RenderVoxelRun(*atlas, series, render, rng);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->nt(), 20u);
  for (std::size_t z = 0; z < 10; ++z) {
    for (std::size_t y = 0; y < 10; ++y) {
      for (std::size_t x = 0; x < 10; ++x) {
        if (atlas->label(x, y, z) == atlas::kBackground) {
          EXPECT_FLOAT_EQ(run->at(x, y, z, 5), 0.0f);
        } else {
          EXPECT_GT(run->at(x, y, z, 5), 100.0f);  // Baseline intensity.
        }
      }
    }
  }
}

TEST(VoxelRenderTest, RejectsMismatchedSeries) {
  atlas::SyntheticAtlasConfig atlas_config;
  atlas_config.nx = 8;
  atlas_config.ny = 8;
  atlas_config.nz = 8;
  atlas_config.num_regions = 3;
  const auto atlas = atlas::GenerateSyntheticAtlas(atlas_config);
  ASSERT_TRUE(atlas.ok());
  Rng rng(43);
  EXPECT_FALSE(RenderVoxelRun(*atlas, linalg::Matrix(5, 10), {}, rng).ok());
  EXPECT_FALSE(RenderVoxelRun(*atlas, linalg::Matrix(3, 0), {}, rng).ok());
}

}  // namespace
}  // namespace neuroprint::sim
