// Tests for leverage scores, randomized row sampling (Algorithm 1), the
// matcher, and the DeanonymizationAttack facade.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/attack.h"
#include "core/leverage.h"
#include "core/knn.h"
#include "core/matcher.h"
#include "core/row_sampling.h"
#include "linalg/svd.h"
#include "sim/cohort.h"
#include "util/random.h"

namespace neuroprint::core {
namespace {

linalg::Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng& rng) {
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

linalg::Matrix RandomLowRank(std::size_t rows, std::size_t cols,
                             std::size_t rank, Rng& rng) {
  return linalg::MatMul(RandomMatrix(rows, rank, rng),
                        RandomMatrix(rank, cols, rng));
}

// ---------------------------------------------------------------------------
// Leverage scores

TEST(LeverageTest, ScoresSumToRank) {
  Rng rng(1);
  const linalg::Matrix a = RandomMatrix(50, 6, rng);
  const auto scores = ComputeLeverageScores(a);
  ASSERT_TRUE(scores.ok());
  double sum = 0.0;
  for (double s : *scores) {
    EXPECT_GE(s, -1e-12);
    EXPECT_LE(s, 1.0 + 1e-12);
    sum += s;
  }
  EXPECT_NEAR(sum, 6.0, 1e-9);  // Full column rank.
}

TEST(LeverageTest, RowSpikeGetsHighScore) {
  // A row aligned with a direction no other row shares has leverage ~1.
  Rng rng(2);
  linalg::Matrix a(40, 3);
  for (std::size_t i = 0; i < 40; ++i) {
    a(i, 0) = rng.Gaussian();
    a(i, 1) = rng.Gaussian();
    a(i, 2) = 0.0;
  }
  a(17, 2) = 5.0;  // Only row touching column 2's direction.
  const auto scores = ComputeLeverageScores(a);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT((*scores)[17], 0.95);
  const auto top = TopLeverageFeatures(a, 1);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)[0], 17u);
}

TEST(LeverageTest, InvariantToColumnMixing) {
  // Leverage depends only on the column space: right-multiplying by an
  // invertible matrix must not change the scores.
  Rng rng(3);
  const linalg::Matrix a = RandomMatrix(30, 4, rng);
  const linalg::Matrix mixer = RandomMatrix(4, 4, rng);
  const linalg::Matrix mixed = linalg::MatMul(a, mixer);
  const auto sa = ComputeLeverageScores(a);
  const auto sm = ComputeLeverageScores(mixed);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sm.ok());
  for (std::size_t i = 0; i < sa->size(); ++i) {
    EXPECT_NEAR((*sa)[i], (*sm)[i], 1e-8);
  }
}

TEST(LeverageTest, RankOptionRestrictsSubspace) {
  Rng rng(4);
  const linalg::Matrix a = RandomMatrix(25, 5, rng);
  LeverageOptions options;
  options.rank = 2;
  const auto scores = ComputeLeverageScores(a, options);
  ASSERT_TRUE(scores.ok());
  double sum = 0.0;
  for (double s : *scores) sum += s;
  EXPECT_NEAR(sum, 2.0, 1e-9);
}

TEST(LeverageTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(ComputeLeverageScores(linalg::Matrix()).ok());
  EXPECT_FALSE(ComputeLeverageScores(linalg::Matrix(3, 10)).ok());  // Wide.
  EXPECT_FALSE(ComputeLeverageScores(linalg::Matrix(10, 3)).ok());  // Zero.
  EXPECT_FALSE(TopLeverageFeatures(linalg::Matrix(10, 3, 1.0), 0).ok());
}


TEST(LeverageTest, GramFastPathMatchesSvdPath) {
  Rng rng(31);
  // Tall enough to trigger the fast path (rows >= 4 * cols).
  const linalg::Matrix a = RandomMatrix(400, 20, rng);
  LeverageOptions fast;
  fast.allow_gram_fast_path = true;
  LeverageOptions exact;
  exact.allow_gram_fast_path = false;
  const auto fast_scores = ComputeLeverageScores(a, fast);
  const auto exact_scores = ComputeLeverageScores(a, exact);
  ASSERT_TRUE(fast_scores.ok());
  ASSERT_TRUE(exact_scores.ok());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR((*fast_scores)[i], (*exact_scores)[i], 1e-8);
  }
}

TEST(LeverageTest, GramFastPathHandlesRankDeficiency) {
  Rng rng(32);
  const linalg::Matrix a = RandomLowRank(300, 12, 5, rng);
  LeverageOptions fast;
  LeverageOptions exact;
  exact.allow_gram_fast_path = false;
  const auto fast_scores = ComputeLeverageScores(a, fast);
  const auto exact_scores = ComputeLeverageScores(a, exact);
  ASSERT_TRUE(fast_scores.ok());
  ASSERT_TRUE(exact_scores.ok());
  double fast_sum = 0.0, exact_sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    fast_sum += (*fast_scores)[i];
    exact_sum += (*exact_scores)[i];
    EXPECT_NEAR((*fast_scores)[i], (*exact_scores)[i], 1e-6);
  }
  EXPECT_NEAR(fast_sum, 5.0, 1e-6);   // Rank 5.
  EXPECT_NEAR(exact_sum, 5.0, 1e-6);
}

// Group-matrix-like input with planted high-leverage rows: base noise plus
// decaying low-rank structure, then `num_planted` rows boosted on a ramp
// (10x down to 2x) so the top-t cutoff falls on well-separated scores —
// the "small set of identity-carrying edges" regime the attack targets.
linalg::Matrix PlantedGroupMatrix(std::size_t rows, std::size_t cols,
                                  std::size_t num_planted,
                                  std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix a = RandomMatrix(rows, cols, rng);
  const linalg::Matrix u = RandomMatrix(rows, 10, rng);
  const linalg::Matrix v = RandomMatrix(cols, 10, rng);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      double s = 0.0;
      for (std::size_t t = 0; t < 10; ++t) {
        s += u(i, t) * v(j, t) / static_cast<double>(1 + t);
      }
      a(i, j) = 0.5 * a(i, j) + s;
    }
  }
  std::vector<std::size_t> planted = rng.Permutation(rows);
  planted.resize(num_planted);
  for (std::size_t p = 0; p < num_planted; ++p) {
    const double boost = 10.0 - 8.0 * static_cast<double>(p) /
                                    static_cast<double>(num_planted - 1);
    for (std::size_t j = 0; j < cols; ++j) a(planted[p], j) *= boost;
  }
  return a;
}

double TopOverlapFraction(const linalg::Vector& x, const linalg::Vector& y,
                          std::size_t t) {
  const auto tx = TopKIndices(x, t);
  const auto ty = TopKIndices(y, t);
  const std::set<std::size_t> sx(tx.begin(), tx.end());
  std::size_t hits = 0;
  for (std::size_t i : ty) hits += sx.count(i);
  return static_cast<double>(hits) / static_cast<double>(t);
}

TEST(LeverageTest, SketchRecoversExactTopFeatures) {
  // The sketched scores must select (almost) the same principal features
  // as the exact SVD path: >= 95% top-50 overlap on a planted group
  // matrix, for several constructions.
  for (std::uint64_t seed : {5u, 17u, 99u}) {
    const linalg::Matrix a = PlantedGroupMatrix(4000, 60, 70, seed);
    LeverageOptions exact;
    exact.allow_gram_fast_path = false;
    const auto exact_scores = ComputeLeverageScores(a, exact);
    ASSERT_TRUE(exact_scores.ok());

    LeverageOptions sketch;
    sketch.sketch = true;
    LeverageDiagnostics diag;
    sketch.diagnostics = &diag;
    const auto sketch_scores = ComputeLeverageScores(a, sketch);
    ASSERT_TRUE(sketch_scores.ok()) << sketch_scores.status();
    EXPECT_TRUE(diag.used_sketch);
    EXPECT_FALSE(diag.used_gram_fast_path);
    EXPECT_GE(TopOverlapFraction(*exact_scores, *sketch_scores, 50), 0.95)
        << "seed " << seed;
  }
}

TEST(LeverageTest, SketchIsDeterministicInTheSeed) {
  const linalg::Matrix a = PlantedGroupMatrix(1500, 40, 50, 7);
  LeverageOptions sketch;
  sketch.sketch = true;
  const auto first = ComputeLeverageScores(a, sketch);
  const auto second = ComputeLeverageScores(a, sketch);
  ASSERT_TRUE(first.ok() && second.ok());
  for (std::size_t i = 0; i < first->size(); ++i) {
    ASSERT_EQ((*first)[i], (*second)[i]) << "row " << i;
  }
  sketch.sketch_seed ^= 1;
  const auto reseeded = ComputeLeverageScores(a, sketch);
  ASSERT_TRUE(reseeded.ok());
  bool any_differs = false;
  for (std::size_t i = 0; i < first->size(); ++i) {
    if ((*first)[i] != (*reseeded)[i]) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(LeverageTest, SvdPathReportsQrPreconditioning) {
  Rng rng(41);
  // Tall enough for the thin-QR SVD fast path (rows >= 1.6 * cols) but not
  // for the Gram path (rows < 4 * cols), so the exact-SVD branch runs and
  // must report that its SVD was QR-preconditioned.
  const linalg::Matrix a = RandomMatrix(100, 40, rng);
  LeverageOptions options;
  LeverageDiagnostics diag;
  options.diagnostics = &diag;
  const auto scores = ComputeLeverageScores(a, options);
  ASSERT_TRUE(scores.ok());
  EXPECT_FALSE(diag.used_gram_fast_path);
  EXPECT_FALSE(diag.used_sketch);
  EXPECT_TRUE(diag.svd_qr_preconditioned);
}

TEST(TopKIndicesTest, OrderingAndTies) {
  const linalg::Vector scores{0.1, 0.5, 0.5, 0.9, 0.2};
  const auto top = TopKIndices(scores, 3);
  EXPECT_EQ(top, (std::vector<std::size_t>{3, 1, 2}));  // Tie: lower index.
  EXPECT_EQ(TopKIndices(scores, 99).size(), 5u);
}

// ---------------------------------------------------------------------------
// Row sampling (Algorithm 1)

TEST(RowSamplingTest, ProbabilitiesMatchDefinitions) {
  linalg::Matrix a{{3, 4}, {0, 0}, {1, 0}};
  const auto uniform = SamplingProbabilities(a, SamplingDistribution::kUniform);
  ASSERT_TRUE(uniform.ok());
  EXPECT_NEAR((*uniform)[0], 1.0 / 3.0, 1e-12);
  const auto l2 = SamplingProbabilities(a, SamplingDistribution::kL2Norm);
  ASSERT_TRUE(l2.ok());
  // Row norms^2: 25, 0, 1 -> p = 25/26, 0, 1/26 (Eq. 1).
  EXPECT_NEAR((*l2)[0], 25.0 / 26.0, 1e-12);
  EXPECT_NEAR((*l2)[1], 0.0, 1e-12);
  EXPECT_NEAR((*l2)[2], 1.0 / 26.0, 1e-12);
}

TEST(RowSamplingTest, SketchHasRequestedShapeAndSourceRows) {
  Rng rng(5);
  const linalg::Matrix a = RandomMatrix(30, 4, rng);
  Rng sample_rng(6);
  const auto sample = SampleRows(a, 10, SamplingDistribution::kL2Norm, sample_rng);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->sketch.rows(), 10u);
  EXPECT_EQ(sample->sketch.cols(), 4u);
  ASSERT_EQ(sample->indices.size(), 10u);
  // Each sketch row is a rescaled copy of its source row.
  for (std::size_t t = 0; t < 10; ++t) {
    const std::size_t src = sample->indices[t];
    const double p = sample->probabilities[src];
    const double scale = 1.0 / std::sqrt(10.0 * p);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(sample->sketch(t, j), scale * a(src, j), 1e-12);
    }
  }
}

TEST(RowSamplingTest, RescalingMakesGramUnbiased) {
  // E[A~^T A~] = A^T A: check that the average over many draws converges.
  Rng rng(7);
  const linalg::Matrix a = RandomMatrix(40, 3, rng);
  const linalg::Matrix truth = linalg::Gram(a);
  linalg::Matrix mean_gram(3, 3);
  const int draws = 400;
  Rng sample_rng(8);
  for (int d = 0; d < draws; ++d) {
    const auto sample =
        SampleRows(a, 8, SamplingDistribution::kL2Norm, sample_rng);
    ASSERT_TRUE(sample.ok());
    mean_gram += linalg::Gram(sample->sketch);
  }
  mean_gram *= 1.0 / draws;
  // Monte-Carlo tolerance: relative error a few percent.
  EXPECT_LT((mean_gram - truth).MaxAbs() / truth.MaxAbs(), 0.12);
}

TEST(RowSamplingTest, LeverageSamplingBeatsUniformOnCoherentMatrix) {
  // A matrix with a few dominant rows: importance sampling should give a
  // smaller expected Gram error than uniform sampling (the motivation for
  // Eq. 1/Eq. 3 over uniform in Section 3.1.2).
  Rng rng(9);
  linalg::Matrix a = RandomMatrix(200, 4, rng);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) *= 20.0;
  }
  double err_uniform = 0.0, err_leverage = 0.0, err_l2 = 0.0;
  Rng sample_rng(10);
  const int draws = 30;
  for (int d = 0; d < draws; ++d) {
    err_uniform += GramApproximationError(
        a, SampleRows(a, 25, SamplingDistribution::kUniform, sample_rng)->sketch);
    err_l2 += GramApproximationError(
        a, SampleRows(a, 25, SamplingDistribution::kL2Norm, sample_rng)->sketch);
    err_leverage += GramApproximationError(
        a,
        SampleRows(a, 25, SamplingDistribution::kLeverage, sample_rng)->sketch);
  }
  EXPECT_LT(err_l2, 0.5 * err_uniform);
  EXPECT_LT(err_leverage, err_uniform);
}

TEST(RowSamplingTest, DrineasErrorBoundHolds) {
  // Eq. 2: E ||A^T A - A~^T A~||_F <= ||A||_F^2 / sqrt(s) for l2 sampling.
  Rng rng(11);
  const linalg::Matrix a = RandomMatrix(100, 5, rng);
  const double bound_budget = a.FrobeniusNorm() * a.FrobeniusNorm();
  Rng sample_rng(12);
  for (const std::size_t s : {10u, 40u, 90u}) {
    double mean_err = 0.0;
    const int draws = 40;
    for (int d = 0; d < draws; ++d) {
      mean_err += GramApproximationError(
          a, SampleRows(a, s, SamplingDistribution::kL2Norm, sample_rng)->sketch);
    }
    mean_err /= draws;
    EXPECT_LE(mean_err, bound_budget / std::sqrt(static_cast<double>(s)))
        << "s = " << s;
  }
}

TEST(RowSamplingTest, RejectsBadArguments) {
  Rng rng(13);
  const linalg::Matrix a = RandomMatrix(10, 3, rng);
  EXPECT_FALSE(SampleRows(a, 0, SamplingDistribution::kUniform, rng).ok());
  const linalg::Matrix zero(10, 3);
  EXPECT_FALSE(SampleRows(zero, 5, SamplingDistribution::kL2Norm, rng).ok());
  EXPECT_FALSE(SamplingProbabilities(linalg::Matrix(), SamplingDistribution::kUniform).ok());
}

// ---------------------------------------------------------------------------
// Matcher

TEST(MatcherTest, ArgmaxAndAccuracy) {
  linalg::Matrix sim{{0.9, 0.1, 0.2},
                     {0.3, 0.8, 0.1},
                     {0.2, 0.4, 0.7}};
  const auto match = ArgmaxMatch(sim);
  EXPECT_EQ(match, (std::vector<std::size_t>{0, 1, 2}));
  const auto acc = IdentificationAccuracy(match, {"a", "b", "c"}, {"a", "b", "c"});
  ASSERT_TRUE(acc.ok());
  EXPECT_DOUBLE_EQ(*acc, 1.0);
  const auto partial =
      IdentificationAccuracy(match, {"a", "b", "c"}, {"a", "x", "c"});
  ASSERT_TRUE(partial.ok());
  EXPECT_NEAR(*partial, 2.0 / 3.0, 1e-12);
}

TEST(MatcherTest, SimilarityStats) {
  linalg::Matrix sim{{0.9, 0.1}, {0.2, 0.8}};
  const auto stats = ComputeSimilarityStats(sim);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->diagonal_mean, 0.85, 1e-12);
  EXPECT_NEAR(stats->off_diagonal_mean, 0.15, 1e-12);
  EXPECT_NEAR(stats->contrast, 0.7, 1e-12);
  EXPECT_NEAR(stats->diagonal_min, 0.8, 1e-12);
  EXPECT_NEAR(stats->off_diagonal_max, 0.2, 1e-12);
  EXPECT_FALSE(ComputeSimilarityStats(linalg::Matrix(2, 3)).ok());
}

TEST(MatcherTest, SimilarityMatrixRequiresSameFeatureSpace) {
  const auto a =
      connectome::GroupMatrix::FromFeatureColumns({{1, 2, 3}}, {"x"});
  const auto b = connectome::GroupMatrix::FromFeatureColumns({{1, 2}}, {"y"});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(SimilarityMatrix(*a, *b).ok());
}

// ---------------------------------------------------------------------------
// Attack facade (on a small simulated cohort)

class AttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::CohortConfig config;
    config.num_subjects = 12;
    config.num_regions = 40;
    config.frames_override = 200;
    config.seed = 77;
    auto cohort = sim::CohortSimulator::Create(config);
    ASSERT_TRUE(cohort.ok());
    auto known = cohort->BuildGroupMatrix(sim::TaskType::kRest,
                                          sim::Encoding::kLeftRight);
    auto anonymous = cohort->BuildGroupMatrix(sim::TaskType::kRest,
                                              sim::Encoding::kRightLeft);
    ASSERT_TRUE(known.ok());
    ASSERT_TRUE(anonymous.ok());
    known_ = std::move(known).value();
    anonymous_ = std::move(anonymous).value();
  }

  connectome::GroupMatrix known_;
  connectome::GroupMatrix anonymous_;
};

TEST_F(AttackTest, IdentifiesSimulatedSubjects) {
  AttackOptions options;
  options.num_features = 60;
  const auto attack = DeanonymizationAttack::Fit(known_, options);
  ASSERT_TRUE(attack.ok()) << attack.status();
  EXPECT_EQ(attack->selected_features().size(), 60u);
  const auto result = attack->Identify(anonymous_);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->accuracy, 0.9);
  EXPECT_EQ(result->similarity.rows(), 12u);
  EXPECT_EQ(result->similarity.cols(), 12u);
  EXPECT_EQ(result->predicted_ids.size(), 12u);
}

TEST_F(AttackTest, SelfIdentificationIsPerfect) {
  const auto attack = DeanonymizationAttack::Fit(known_);
  ASSERT_TRUE(attack.ok());
  const auto result = attack->Identify(known_);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->accuracy, 1.0);
}

TEST_F(AttackTest, ShuffledColumnsStillMatchByIdentity) {
  // Reorder the anonymous subjects; the attack must still map each column
  // back to the right identity string.
  std::vector<linalg::Vector> cols;
  std::vector<std::string> ids;
  const std::size_t n = anonymous_.num_subjects();
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t src = (j * 5 + 3) % n;  // A fixed permutation.
    cols.push_back(anonymous_.SubjectColumn(src));
    ids.push_back(anonymous_.subject_ids()[src]);
  }
  const auto shuffled = connectome::GroupMatrix::FromFeatureColumns(cols, ids);
  ASSERT_TRUE(shuffled.ok());
  const auto attack = DeanonymizationAttack::Fit(known_);
  ASSERT_TRUE(attack.ok());
  const auto result = attack->Identify(*shuffled);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->accuracy, 0.9);
}

TEST_F(AttackTest, MoreFeaturesThanAvailableIsClamped) {
  AttackOptions options;
  options.num_features = 10 * known_.num_features();
  const auto attack = DeanonymizationAttack::Fit(known_, options);
  ASSERT_TRUE(attack.ok());
  EXPECT_EQ(attack->selected_features().size(), known_.num_features());
}

TEST_F(AttackTest, RejectsFeatureSpaceMismatch) {
  const auto attack = DeanonymizationAttack::Fit(known_);
  ASSERT_TRUE(attack.ok());
  const auto other =
      connectome::GroupMatrix::FromFeatureColumns({{1, 2, 3}}, {"q"});
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(attack->Identify(*other).ok());
}

TEST_F(AttackTest, RejectsBadOptions) {
  AttackOptions options;
  options.num_features = 0;
  EXPECT_FALSE(DeanonymizationAttack::Fit(known_, options).ok());
}

TEST_F(AttackTest, EmptyAnonymousSetReturnsCleanStatus) {
  // Regression: an empty probe set used to fall through to the matcher and
  // surface a cryptic internal error; it must be a clean InvalidArgument.
  const auto attack = DeanonymizationAttack::Fit(known_);
  ASSERT_TRUE(attack.ok());
  const auto result = attack->Identify(connectome::GroupMatrix());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("no subjects"), std::string::npos);
}

TEST(KnnRegressionTest, KBeyondGalleryClampsToGallerySize) {
  // Regression: an incrementally shrinking gallery can drop below a fixed
  // k; the classifier degrades to voting over everything instead of
  // erroring.
  linalg::Matrix train{{0, 0}, {1, 0}, {2, 0}};
  const std::vector<int> labels{4, 4, 9};
  linalg::Matrix query{{0.1, 0}};
  const auto predicted = KnnClassify(train, labels, query, 50);
  ASSERT_TRUE(predicted.ok());
  EXPECT_EQ((*predicted)[0], 4);  // Majority over the whole gallery.
}

TEST(KnnRegressionTest, DuplicateDistanceTieBreakIsIndexOrdered) {
  // Four training points equidistant from the query: the neighbour set
  // must be the lowest training indices, not an iteration- or heap-order
  // accident, so predictions are stable across library changes.
  linalg::Matrix train{{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
  const std::vector<int> labels{5, 6, 7, 8};
  linalg::Matrix query{{0, 0}};
  for (std::size_t k = 1; k <= 4; ++k) {
    const auto predicted = KnnClassify(train, labels, query, k);
    ASSERT_TRUE(predicted.ok());
    // All votes are singletons, so the winner is the first tallied —
    // training index 0 — for every k.
    EXPECT_EQ((*predicted)[0], 5) << "k=" << k;
  }
}

TEST_F(AttackTest, SketchModeMatchesExactIdentificationRate) {
  // The whole attack fitted on sketched leverage scores must identify at
  // least as well as the exact fit on this cohort (the rank-truncated
  // sketch discards noise directions, so it can only help here). Both
  // runs are fully seeded, so the rates are stable across platforms.
  AttackOptions exact_opts;
  exact_opts.num_features = 60;
  const auto exact_attack = DeanonymizationAttack::Fit(known_, exact_opts);
  ASSERT_TRUE(exact_attack.ok());
  const auto exact_result = exact_attack->Identify(anonymous_);
  ASSERT_TRUE(exact_result.ok());

  AttackOptions sketch_opts;
  sketch_opts.num_features = 60;
  sketch_opts.leverage.sketch = true;
  const auto sketch_attack = DeanonymizationAttack::Fit(known_, sketch_opts);
  ASSERT_TRUE(sketch_attack.ok());
  const auto sketch_result = sketch_attack->Identify(anonymous_);
  ASSERT_TRUE(sketch_result.ok());

  EXPECT_EQ(sketch_attack->selected_features().size(), 60u);
  EXPECT_GE(exact_result->accuracy, 0.9);
  EXPECT_GE(sketch_result->accuracy, exact_result->accuracy);
}

}  // namespace
}  // namespace neuroprint::core
