// Tests for slice-time correction and the full Figure-4 pipeline: every
// stage must remove its planted artifact without destroying the signal.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "atlas/synthetic_atlas.h"
#include "linalg/stats.h"
#include "linalg/vector_ops.h"
#include "preprocess/pipeline.h"
#include "preprocess/slice_timing.h"
#include "signal/filters.h"
#include "sim/cohort.h"
#include "sim/voxel_render.h"
#include "util/random.h"

namespace neuroprint::preprocess {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(SliceTimingTest, AcquisitionFractionsCoverTr) {
  const auto seq = SliceAcquisitionFractions(4, SliceOrder::kSequentialAscending);
  EXPECT_EQ(seq, (std::vector<double>{0.0, 0.25, 0.5, 0.75}));
  const auto desc =
      SliceAcquisitionFractions(4, SliceOrder::kSequentialDescending);
  EXPECT_EQ(desc, (std::vector<double>{0.75, 0.5, 0.25, 0.0}));
  const auto inter = SliceAcquisitionFractions(5, SliceOrder::kInterleavedOdd);
  // Acquisition order 0,2,4,1,3 -> fractions by slice index.
  const std::vector<double> expected{0.0, 0.6, 0.2, 0.8, 0.4};
  ASSERT_EQ(inter.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(inter[i], expected[i]) << "slice " << i;
  }
}

TEST(SliceTimingTest, AlignsPhaseShiftedSlices) {
  // Two-slice phantom: slice 1's sine is acquired half a TR later. After
  // correction, both slices should be in phase.
  const std::size_t nt = 64;
  image::Volume4D run(1, 1, 2, nt);
  const double freq = 0.05;
  for (std::size_t t = 0; t < nt; ++t) {
    const double phase = 2.0 * kPi * freq * static_cast<double>(t);
    run.at(0, 0, 0, t) = static_cast<float>(std::sin(phase));
    // Slice 1 acquired at t + 0.5 in sample units.
    run.at(0, 0, 1, t) =
        static_cast<float>(std::sin(phase + 2.0 * kPi * freq * 0.5));
  }
  const auto corrected =
      SliceTimeCorrect(run, SliceOrder::kSequentialAscending, 0);
  ASSERT_TRUE(corrected.ok());
  double max_err = 0.0;
  for (std::size_t t = 8; t + 8 < nt; ++t) {
    max_err = std::max(
        max_err, std::fabs(static_cast<double>(corrected->at(0, 0, 1, t)) -
                           corrected->at(0, 0, 0, t)));
  }
  EXPECT_LT(max_err, 0.01);
  // Reference slice untouched.
  for (std::size_t t = 0; t < nt; ++t) {
    EXPECT_FLOAT_EQ(corrected->at(0, 0, 0, t), run.at(0, 0, 0, t));
  }
}

TEST(SliceTimingTest, RejectsBadReferenceSlice) {
  const image::Volume4D run(2, 2, 2, 4);
  EXPECT_FALSE(
      SliceTimeCorrect(run, SliceOrder::kSequentialAscending, 5).ok());
}

TEST(CleanRegionSeriesTest, RemovesDriftAndZScores) {
  Rng rng(11);
  const std::size_t nt = 400;
  const double tr = 0.72;
  linalg::Matrix series(5, nt);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t t = 0; t < nt; ++t) {
      const double time = static_cast<double>(t) * tr;
      series(r, t) = std::sin(2.0 * kPi * 0.05 * time + r) +  // In-band.
                     4.0 * std::sin(2.0 * kPi * 0.001 * time) +  // Drift.
                     0.5 * static_cast<double>(t) / nt +         // Trend.
                     0.1 * rng.Gaussian();
    }
  }
  PipelineConfig config = RestingStateConfig();
  config.global_signal_regression = false;
  ASSERT_TRUE(CleanRegionSeries(series, config, tr).ok());
  for (std::size_t r = 0; r < 5; ++r) {
    const linalg::Vector row = series.RowCopy(r);
    // Z-scored.
    EXPECT_NEAR(linalg::Mean(row), 0.0, 1e-9);
    EXPECT_NEAR(linalg::StdDev(row), 1.0, 1e-9);
    // Drift band empty relative to signal band.
    std::vector<double> x(row.begin(), row.end());
    EXPECT_LT(signal::BandPower(x, 0.0, 0.003, tr),
              0.05 * signal::BandPower(x, 0.04, 0.06, tr));
  }
}

TEST(CleanRegionSeriesTest, GlobalSignalRegressionRemovesSharedComponent) {
  Rng rng(13);
  const std::size_t nt = 300;
  linalg::Matrix series(6, nt);
  std::vector<double> shared(nt);
  for (double& v : shared) v = rng.Gaussian();
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t t = 0; t < nt; ++t) {
      series(r, t) = 2.0 * shared[t] + 0.3 * rng.Gaussian();
    }
  }
  PipelineConfig config;
  config.detrend_degree = -1;
  config.temporal_filter = TemporalFilter::kNone;
  config.global_signal_regression = true;
  config.zscore_series = false;
  ASSERT_TRUE(CleanRegionSeries(series, config, 0.72, shared).ok());
  // Residuals should be orthogonal to the shared signal.
  for (std::size_t r = 0; r < 6; ++r) {
    const linalg::Vector row = series.RowCopy(r);
    linalg::Vector shared_vec(shared.begin(), shared.end());
    EXPECT_LT(std::fabs(linalg::PearsonCorrelation(row, shared_vec)), 0.02);
  }
}

TEST(CleanRegionSeriesTest, RejectsEmpty) {
  linalg::Matrix empty;
  EXPECT_FALSE(CleanRegionSeries(empty, PipelineConfig{}, 0.72).ok());
}

// Full pipeline integration: render a small voxel run with planted
// artifacts and verify the pipeline recovers the underlying region
// signal structure.
class PipelineIntegrationTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kRegions = 12;

  void SetUp() override {
    atlas::SyntheticAtlasConfig atlas_config;
    atlas_config.nx = 14;
    atlas_config.ny = 14;
    atlas_config.nz = 12;
    atlas_config.num_regions = kRegions;
    atlas_config.seed = 3;
    auto atlas = atlas::GenerateSyntheticAtlas(atlas_config);
    ASSERT_TRUE(atlas.ok());
    atlas_ = std::move(atlas).value();

    sim::CohortConfig cohort_config;
    cohort_config.num_subjects = 2;
    cohort_config.num_regions = kRegions;
    cohort_config.frames_override = 120;
    cohort_config.seed = 7;
    auto cohort = sim::CohortSimulator::Create(cohort_config);
    ASSERT_TRUE(cohort.ok());
    auto series = cohort->SimulateRegionSeries(0, sim::TaskType::kRest,
                                               sim::Encoding::kLeftRight);
    ASSERT_TRUE(series.ok());
    truth_series_ = std::move(series).value();
  }

  atlas::Atlas atlas_;
  linalg::Matrix truth_series_;
};

TEST_F(PipelineIntegrationTest, RecoversRegionCorrelationStructure) {
  Rng rng(17);
  sim::VoxelRenderConfig render;
  render.drift_amplitude = 20.0;
  render.voxel_noise = 4.0;
  auto run = sim::RenderVoxelRun(atlas_, truth_series_, render, rng);
  ASSERT_TRUE(run.ok());

  PipelineConfig config = RestingStateConfig();
  config.slice_time_correction = false;  // No slice offsets planted here.
  config.motion_correction = false;      // No motion planted here.
  config.temporal_filter = TemporalFilter::kNone;
  config.global_signal_regression = false;
  config.smoothing_fwhm_mm = 0.0;  // Small parcels; keep them crisp.
  const auto output = RunPipeline(*run, atlas_, config);
  ASSERT_TRUE(output.ok()) << output.status();
  ASSERT_EQ(output->region_series.rows(), kRegions);
  ASSERT_EQ(output->region_series.cols(), truth_series_.cols());

  // The recovered per-region series must correlate strongly with truth.
  double min_corr = 1.0;
  for (std::size_t r = 0; r < kRegions; ++r) {
    const double corr = linalg::PearsonCorrelation(
        output->region_series.RowCopy(r), truth_series_.RowCopy(r));
    min_corr = std::min(min_corr, corr);
  }
  EXPECT_GT(min_corr, 0.95);
}

TEST_F(PipelineIntegrationTest, MotionCorrectionImprovesRecovery) {
  Rng rng(19);
  sim::VoxelRenderConfig render;
  render.motion_step = 0.08;
  render.voxel_noise = 2.0;
  render.drift_amplitude = 0.0;
  auto run = sim::RenderVoxelRun(atlas_, truth_series_, render, rng);
  ASSERT_TRUE(run.ok());

  PipelineConfig no_mc = RestingStateConfig();
  no_mc.slice_time_correction = false;
  no_mc.motion_correction = false;
  no_mc.temporal_filter = TemporalFilter::kNone;
  no_mc.global_signal_regression = false;
  no_mc.smoothing_fwhm_mm = 0.0;
  PipelineConfig with_mc = no_mc;
  with_mc.motion_correction = true;
  with_mc.registration.sample_stride = 1;

  const auto raw = RunPipeline(*run, atlas_, no_mc);
  const auto corrected = RunPipeline(*run, atlas_, with_mc);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(corrected.ok()) << corrected.status();

  auto mean_corr = [&](const linalg::Matrix& series) {
    double sum = 0.0;
    for (std::size_t r = 0; r < kRegions; ++r) {
      sum += linalg::PearsonCorrelation(series.RowCopy(r),
                                        truth_series_.RowCopy(r));
    }
    return sum / kRegions;
  };
  const double corr_raw = mean_corr(raw->region_series);
  const double corr_fixed = mean_corr(corrected->region_series);
  EXPECT_GT(corr_fixed, corr_raw + 0.03);  // Genuinely improves recovery...
  EXPECT_GT(corr_fixed, 0.65);             // ...and is fair in absolute terms
                                           // (parcels here are only ~4 voxels
                                           // across, so residual interpolation
                                           // blur caps the correlation).
  // Motion estimates are non-trivial.
  ASSERT_EQ(corrected->motion.size(), run->nt());
  double max_shift = 0.0;
  for (const auto& m : corrected->motion) {
    max_shift = std::max(max_shift, std::fabs(m.translate_x));
  }
  EXPECT_GT(max_shift, 0.05);
}

TEST_F(PipelineIntegrationTest, RejectsGridMismatchAndNonFinite) {
  image::Volume4D wrong(4, 4, 4, 10);
  EXPECT_FALSE(RunPipeline(wrong, atlas_, PipelineConfig{}).ok());

  Rng rng(23);
  sim::VoxelRenderConfig render;
  auto run = sim::RenderVoxelRun(atlas_, truth_series_, render, rng);
  ASSERT_TRUE(run.ok());
  run->at(1, 1, 1, 0) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(RunPipeline(*run, atlas_, PipelineConfig{}).ok());
}

TEST_F(PipelineIntegrationTest, StageTimingsRecorded) {
  Rng rng(29);
  auto run = sim::RenderVoxelRun(atlas_, truth_series_, {}, rng);
  ASSERT_TRUE(run.ok());
  PipelineConfig config = RestingStateConfig();
  config.registration.sample_stride = 2;
  const auto output = RunPipeline(*run, atlas_, config);
  ASSERT_TRUE(output.ok()) << output.status();
  EXPECT_GE(output->stage_seconds.size(), 5u);
}

}  // namespace
}  // namespace neuroprint::preprocess
