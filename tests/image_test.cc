// Tests for volumes, affines, interpolation, resampling, smoothing,
// masking, and rigid registration (including recovering known motion).

#include <cmath>

#include <gtest/gtest.h>

#include "image/affine.h"
#include "image/interpolate.h"
#include "image/mask.h"
#include "image/registration.h"
#include "image/resample.h"
#include "image/smooth.h"
#include "image/volume.h"
#include "util/random.h"

namespace neuroprint::image {
namespace {

// A smooth blob image: Gaussian bump centred at (cx, cy, cz).
Volume3D BlobVolume(std::size_t n, double cx, double cy, double cz,
                    double sigma = 3.0) {
  Volume3D v(n, n, n);
  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t x = 0; x < n; ++x) {
        const double d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy) +
                          (z - cz) * (z - cz);
        v.at(x, y, z) = static_cast<float>(
            1000.0 * std::exp(-d2 / (2.0 * sigma * sigma)));
      }
    }
  }
  return v;
}

TEST(VolumeTest, IndexingAndTimeSeries) {
  Volume4D run(3, 4, 5, 6);
  run.at(1, 2, 3, 4) = 9.0f;
  EXPECT_FLOAT_EQ(run.at(1, 2, 3, 4), 9.0f);
  const auto series = run.VoxelTimeSeries(1, 2, 3);
  ASSERT_EQ(series.size(), 6u);
  EXPECT_DOUBLE_EQ(series[4], 9.0);
  run.SetVoxelTimeSeries(0, 0, 0, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(run.at(0, 0, 0, 2), 3.0f);
}

TEST(VolumeTest, ExtractAndSetVolumeRoundTrip) {
  Rng rng(1);
  Volume4D run(4, 4, 4, 3);
  for (float& v : run.flat()) v = static_cast<float>(rng.Gaussian());
  const Volume3D middle = run.ExtractVolume(1);
  Volume4D copy = run;
  copy.SetVolume(1, middle);
  for (std::size_t i = 0; i < run.size(); ++i) {
    EXPECT_FLOAT_EQ(copy.flat()[i], run.flat()[i]);
  }
}

TEST(AffineTest, IdentityTransformIsIdentityMatrix) {
  const RigidTransform identity;
  EXPECT_TRUE(identity.IsApproxIdentity());
  const linalg::Matrix m = RigidToAffine(identity, 5, 5, 5);
  EXPECT_TRUE(AlmostEqual(m, linalg::Matrix::Identity(4), 1e-14));
}

TEST(AffineTest, PureTranslation) {
  RigidTransform t;
  t.translate_x = 2.0;
  t.translate_y = -1.0;
  const linalg::Matrix m = RigidToAffine(t, 0, 0, 0);
  double x, y, z;
  ApplyAffine(m, 1, 1, 1, x, y, z);
  EXPECT_NEAR(x, 3.0, 1e-12);
  EXPECT_NEAR(y, 0.0, 1e-12);
  EXPECT_NEAR(z, 1.0, 1e-12);
}

TEST(AffineTest, RotationAboutCentreFixesCentre) {
  RigidTransform t;
  t.rotate_z = 0.5;
  const linalg::Matrix m = RigidToAffine(t, 10, 12, 14);
  double x, y, z;
  ApplyAffine(m, 10, 12, 14, x, y, z);
  EXPECT_NEAR(x, 10.0, 1e-10);
  EXPECT_NEAR(y, 12.0, 1e-10);
  EXPECT_NEAR(z, 14.0, 1e-10);
}

TEST(AffineTest, InverseComposesToIdentity) {
  RigidTransform t{1.0, -2.0, 0.5, 0.1, -0.2, 0.3};
  const linalg::Matrix m = RigidToAffine(t, 8, 8, 8);
  const auto inv = InvertAffine(m);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(AlmostEqual(linalg::MatMul(m, *inv), linalg::Matrix::Identity(4),
                          1e-10));
}

TEST(InterpolateTest, ExactAtGridPoints) {
  Rng rng(3);
  Volume3D v(4, 4, 4);
  for (float& f : v.flat()) f = static_cast<float>(rng.Uniform(0, 10));
  for (std::size_t z = 0; z < 4; ++z) {
    for (std::size_t y = 0; y < 4; ++y) {
      for (std::size_t x = 0; x < 4; ++x) {
        EXPECT_NEAR(SampleTrilinear(v, x, y, z), v.at(x, y, z), 1e-6);
        EXPECT_NEAR(SampleNearest(v, x, y, z), v.at(x, y, z), 1e-6);
      }
    }
  }
}

TEST(InterpolateTest, TrilinearExactOnLinearField) {
  Volume3D v(5, 5, 5);
  for (std::size_t z = 0; z < 5; ++z) {
    for (std::size_t y = 0; y < 5; ++y) {
      for (std::size_t x = 0; x < 5; ++x) {
        v.at(x, y, z) = static_cast<float>(2.0 * x - 3.0 * y + 0.5 * z + 1.0);
      }
    }
  }
  EXPECT_NEAR(SampleTrilinear(v, 1.5, 2.25, 3.75),
              2.0 * 1.5 - 3.0 * 2.25 + 0.5 * 3.75 + 1.0, 1e-5);
}

TEST(InterpolateTest, OutsideReturnsBackground) {
  Volume3D v(3, 3, 3, 5.0f);
  EXPECT_DOUBLE_EQ(SampleTrilinear(v, -0.5, 1, 1, -7.0), -7.0);
  EXPECT_DOUBLE_EQ(SampleTrilinear(v, 1, 1, 2.5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(SampleNearest(v, 5, 1, 1, -7.0), -7.0);
}

TEST(ResampleTest, IdentityRigidKeepsVolume) {
  const Volume3D v = BlobVolume(12, 6, 6, 6);
  const auto out = ResampleRigid(v, RigidTransform{});
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(out->flat()[i], v.flat()[i], 1e-3);
  }
}

TEST(ResampleTest, TranslationMovesBlobCentroid) {
  const Volume3D v = BlobVolume(16, 6, 8, 8);
  RigidTransform t;
  t.translate_x = 3.0;  // Blob centre should move from x=6 to x=9.
  const auto out = ResampleRigid(v, t);
  ASSERT_TRUE(out.ok());
  double cx = 0.0, mass = 0.0;
  for (std::size_t z = 0; z < 16; ++z) {
    for (std::size_t y = 0; y < 16; ++y) {
      for (std::size_t x = 0; x < 16; ++x) {
        cx += x * out->at(x, y, z);
        mass += out->at(x, y, z);
      }
    }
  }
  EXPECT_NEAR(cx / mass, 9.0, 0.15);
}

TEST(ResampleTest, ResampleToGridPreservesLinearField) {
  Volume3D v(8, 8, 8);
  for (std::size_t z = 0; z < 8; ++z) {
    for (std::size_t y = 0; y < 8; ++y) {
      for (std::size_t x = 0; x < 8; ++x) {
        v.at(x, y, z) = static_cast<float>(x + 2.0 * y + 3.0 * z);
      }
    }
  }
  const auto out = ResampleToGrid(v, 15, 15, 15);
  ASSERT_TRUE(out.ok());
  // Corners map to corners under the grid scaling.
  EXPECT_NEAR(out->at(0, 0, 0), 0.0, 1e-4);
  EXPECT_NEAR(out->at(14, 14, 14), v.at(7, 7, 7), 1e-4);
}

TEST(SmoothTest, PreservesConstantVolume) {
  Volume3D v(10, 10, 10, 5.0f);
  const auto out = GaussianSmooth(v, 6.0);
  ASSERT_TRUE(out.ok());
  for (float f : out->flat()) EXPECT_NEAR(f, 5.0f, 1e-5);
}

TEST(SmoothTest, ReducesVariance) {
  Rng rng(5);
  Volume3D v(12, 12, 12);
  for (float& f : v.flat()) f = static_cast<float>(rng.Gaussian());
  const auto out = GaussianSmooth(v, 6.0);
  ASSERT_TRUE(out.ok());
  auto variance = [](const Volume3D& vol) {
    double mean = 0.0;
    for (float f : vol.flat()) mean += f;
    mean /= static_cast<double>(vol.size());
    double var = 0.0;
    for (float f : vol.flat()) var += (f - mean) * (f - mean);
    return var / static_cast<double>(vol.size());
  };
  EXPECT_LT(variance(*out), 0.3 * variance(v));
}

TEST(SmoothTest, FwhmZeroIsIdentityAndNegativeRejected) {
  const Volume3D v = BlobVolume(8, 4, 4, 4);
  const auto same = GaussianSmooth(v, 0.0);
  ASSERT_TRUE(same.ok());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_FLOAT_EQ(same->flat()[i], v.flat()[i]);
  }
  EXPECT_FALSE(GaussianSmooth(v, -1.0).ok());
}

TEST(SmoothTest, FwhmToSigmaKnownValue) {
  EXPECT_NEAR(FwhmToSigma(2.3548), 1.0, 1e-3);
}

TEST(MaskTest, ThresholdSeparatesBrainFromBackground) {
  Volume4D run(10, 10, 10, 2, 0.0f);
  // Bright 4x4x4 cube in the middle.
  for (std::size_t z = 3; z < 7; ++z) {
    for (std::size_t y = 3; y < 7; ++y) {
      for (std::size_t x = 3; x < 7; ++x) {
        run.at(x, y, z, 0) = 1000.0f;
        run.at(x, y, z, 1) = 1000.0f;
      }
    }
  }
  const auto mask = ComputeBrainMask(run, 0.25);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(mask->CountSet(), 64u);
  EXPECT_TRUE(mask->at(5, 5, 5));
  EXPECT_FALSE(mask->at(0, 0, 0));
}

TEST(MaskTest, ErodeRemovesSurface) {
  Mask mask(5, 5, 5);
  for (std::size_t z = 1; z < 4; ++z) {
    for (std::size_t y = 1; y < 4; ++y) {
      for (std::size_t x = 1; x < 4; ++x) mask.set(x, y, z, true);
    }
  }
  const Mask eroded = Erode(mask);
  EXPECT_EQ(eroded.CountSet(), 1u);  // Only the centre survives.
  EXPECT_TRUE(eroded.at(2, 2, 2));
}

TEST(MaskTest, ApplyMaskZeroesBackground) {
  Volume4D run(4, 4, 4, 2, 3.0f);
  Mask mask(4, 4, 4);
  mask.set(1, 1, 1, true);
  ApplyMask(run, mask);
  EXPECT_FLOAT_EQ(run.at(1, 1, 1, 0), 3.0f);
  EXPECT_FLOAT_EQ(run.at(0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(run.at(2, 2, 2, 1), 0.0f);
}

TEST(MaskTest, AllZeroImageRejected) {
  const Volume4D run(4, 4, 4, 2, 0.0f);
  EXPECT_FALSE(ComputeBrainMask(run).ok());
}

// ---------------------------------------------------------------------------
// Registration

class RegistrationRecoveryTest
    : public ::testing::TestWithParam<RigidTransform> {};

TEST_P(RegistrationRecoveryTest, RecoversKnownTransform) {
  const RigidTransform truth = GetParam();
  // Asymmetric two-blob image: a single radially symmetric blob would
  // leave rotation unobservable.
  Volume3D reference = BlobVolume(20, 10, 8, 11, 4.0);
  const Volume3D second = BlobVolume(20, 14, 13, 7, 2.5);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference.flat()[i] += 0.7f * second.flat()[i];
  }
  // Moving image: reference displaced by the INVERSE motion, so aligning
  // it back needs exactly `truth`.
  RigidTransform inverse_motion;
  inverse_motion.translate_x = -truth.translate_x;
  inverse_motion.translate_y = -truth.translate_y;
  inverse_motion.translate_z = -truth.translate_z;
  inverse_motion.rotate_x = -truth.rotate_x;
  inverse_motion.rotate_y = -truth.rotate_y;
  inverse_motion.rotate_z = -truth.rotate_z;
  const auto moving = ResampleRigid(reference, inverse_motion);
  ASSERT_TRUE(moving.ok());

  RegistrationOptions options;
  const auto reg = RegisterRigid(reference, *moving, options);
  ASSERT_TRUE(reg.ok());
  EXPECT_NEAR(reg->transform.translate_x, truth.translate_x, 0.25);
  EXPECT_NEAR(reg->transform.translate_y, truth.translate_y, 0.25);
  EXPECT_NEAR(reg->transform.translate_z, truth.translate_z, 0.25);
  // Rotations are small in this sweep; the rotation/translation trade-off
  // near a radially symmetric blob bounds achievable precision.
  EXPECT_NEAR(reg->transform.rotate_z, truth.rotate_z, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Motions, RegistrationRecoveryTest,
    ::testing::Values(RigidTransform{0, 0, 0, 0, 0, 0},
                      RigidTransform{1.0, 0, 0, 0, 0, 0},
                      RigidTransform{-0.8, 1.2, 0.5, 0, 0, 0},
                      RigidTransform{0.4, -0.3, 0.9, 0, 0, 0.04},
                      RigidTransform{2.0, 1.5, -1.0, 0, 0, 0}));

TEST(RegistrationTest, CostIsZeroAtPerfectAlignment) {
  const Volume3D v = BlobVolume(12, 6, 6, 6);
  EXPECT_NEAR(RegistrationCost(v, v, RigidTransform{}), 0.0, 1e-9);
  RigidTransform off;
  off.translate_x = 1.0;
  EXPECT_GT(RegistrationCost(v, v, off), 1.0);
}

TEST(RegistrationTest, RejectsMismatchedDims) {
  const Volume3D a = BlobVolume(8, 4, 4, 4);
  const Volume3D b = BlobVolume(10, 5, 5, 5);
  EXPECT_FALSE(RegisterRigid(a, b).ok());
}

TEST(MotionCorrectTest, UndoesPlantedMotion) {
  const Volume3D base = BlobVolume(16, 8, 8, 8, 3.0);
  Volume4D run(16, 16, 16, 4);
  run.SetVolume(0, base);
  // Frames 1..3 displaced by increasing translations.
  for (std::size_t t = 1; t < 4; ++t) {
    RigidTransform shift;
    shift.translate_x = 0.5 * static_cast<double>(t);
    const auto moved = ResampleRigid(base, shift);
    ASSERT_TRUE(moved.ok());
    run.SetVolume(t, *moved);
  }
  const auto corrected = MotionCorrect(run);
  ASSERT_TRUE(corrected.ok());
  // Estimated motion magnitudes grow with t.
  EXPECT_NEAR(corrected->motion[1].translate_x, -0.5, 0.3);
  EXPECT_NEAR(corrected->motion[3].translate_x, -1.5, 0.3);
  // Corrected frames are closer to frame 0 than the raw ones.
  const Volume3D raw3 = run.ExtractVolume(3);
  const Volume3D fixed3 = corrected->corrected.ExtractVolume(3);
  const double raw_cost = RegistrationCost(base, raw3, RigidTransform{});
  const double fixed_cost = RegistrationCost(base, fixed3, RigidTransform{});
  EXPECT_LT(fixed_cost, 0.35 * raw_cost);
}

}  // namespace
}  // namespace neuroprint::image
