// Metrics-registry tests: counter/gauge/histogram semantics, the trace
// toggle gating the free helpers, exporter well-formedness (JSON parsed
// back, CSV header), concurrent updates from ParallelFor workers (TSan
// coverage), and the determinism contract — semantic metrics from a full
// simulate-fit-identify run must be bitwise-identical at 1, 2, and 8
// threads while scheduler metrics are excluded from the comparison.

#include <bit>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/attack.h"
#include "minijson.h"
#include "sim/cohort.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace neuroprint::metrics {
namespace {

// The free helpers write to the process-wide registry gated on the trace
// toggle; start every test from a clean, disabled state.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::SetEnabled(false);
    Registry::Global().Reset();
  }
  void TearDown() override {
    trace::SetEnabled(false);
    Registry::Global().Reset();
  }
};

TEST_F(MetricsTest, RegistryCountersAccumulate) {
  Registry registry;
  registry.Add("b.second", 2);
  registry.Add("a.first", 1);
  registry.Add("b.second", 3);
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  // std::map keeps the snapshot sorted by name.
  EXPECT_EQ(snapshot.counters[0].name, "a.first");
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.counters[1].name, "b.second");
  EXPECT_EQ(snapshot.counters[1].value, 5u);
}

TEST_F(MetricsTest, RegistryGaugeLastWriteWins) {
  Registry registry;
  registry.Set("rank", 12.0);
  registry.Set("rank", 7.0);
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, 7.0);
}

TEST_F(MetricsTest, RegistryHistogramSummary) {
  Registry registry;
  registry.Observe("stage", 0.5);
  registry.Observe("stage", 0.1);
  registry.Observe("stage", 0.9);
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramValue& h = snapshot.histograms[0];
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 1.5);
  EXPECT_EQ(h.min, 0.1);
  EXPECT_EQ(h.max, 0.9);
  EXPECT_EQ(h.stability, Stability::kTiming);
}

TEST_F(MetricsTest, FirstRegistrationStabilityWins) {
  Registry registry;
  registry.Add("pool.steals", 1, Stability::kScheduler);
  registry.Add("pool.steals", 1, Stability::kSemantic);  // ignored tag
  const Snapshot snapshot = registry.TakeSnapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].stability, Stability::kScheduler);
  EXPECT_EQ(snapshot.counters[0].value, 2u);
}

TEST_F(MetricsTest, ResetClearsEverything) {
  Registry registry;
  registry.Add("c", 1);
  registry.Set("g", 1.0);
  registry.Observe("h", 1.0);
  registry.Reset();
  const Snapshot snapshot = registry.TakeSnapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST_F(MetricsTest, HelpersAreNoOpsWhenDisabled) {
  ASSERT_FALSE(trace::Enabled());
  Count("ignored", 5);
  SetGauge("ignored.gauge", 1.0);
  Observe("ignored.hist", 1.0);
  const Snapshot snapshot = Registry::Global().TakeSnapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());

  trace::ScopedEnable on(true);
  Count("seen", 5);
  EXPECT_EQ(Registry::Global().TakeSnapshot().counters.size(), 1u);
}

TEST_F(MetricsTest, SemanticOnlyFiltersTimingAndScheduler) {
  Registry registry;
  registry.Add("flops", 100, Stability::kSemantic);
  registry.Add("steals", 3, Stability::kScheduler);
  registry.Set("rank", 8.0, Stability::kSemantic);
  registry.Observe("seconds", 0.25, Stability::kTiming);
  const Snapshot semantic = registry.TakeSnapshot().SemanticOnly();
  ASSERT_EQ(semantic.counters.size(), 1u);
  EXPECT_EQ(semantic.counters[0].name, "flops");
  ASSERT_EQ(semantic.gauges.size(), 1u);
  EXPECT_EQ(semantic.gauges[0].name, "rank");
  EXPECT_TRUE(semantic.histograms.empty());
}

TEST_F(MetricsTest, JsonExportParsesBack) {
  Registry registry;
  registry.Add("gemm.flops", 1234, Stability::kSemantic);
  registry.Set("leverage.rank", 40.0, Stability::kSemantic);
  registry.Set("bad.gauge", std::numeric_limits<double>::quiet_NaN());
  registry.Observe("pipeline.stage_seconds.masking", 0.125);
  const std::string json = registry.TakeSnapshot().ToJson();

  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(json, &doc)) << json;
  ASSERT_EQ(doc.type, minijson::Value::Type::kArray);
  ASSERT_EQ(doc.array.size(), 4u);
  for (const minijson::Value& entry : doc.array) {
    ASSERT_EQ(entry.type, minijson::Value::Type::kObject);
    ASSERT_NE(entry.Find("name"), nullptr);
    ASSERT_NE(entry.Find("kind"), nullptr);
    ASSERT_NE(entry.Find("stability"), nullptr);
  }
  const minijson::Value& counter = doc.array[0];
  EXPECT_EQ(counter.Find("name")->str, "gemm.flops");
  EXPECT_EQ(counter.Find("kind")->str, "counter");
  EXPECT_EQ(counter.Find("stability")->str, "semantic");
  EXPECT_EQ(counter.Find("value")->number, 1234.0);
  // Non-finite gauge serializes as null (JSON has no NaN literal).
  const minijson::Value& bad = doc.array[1];
  EXPECT_EQ(bad.Find("name")->str, "bad.gauge");
  EXPECT_EQ(bad.Find("value")->type, minijson::Value::Type::kNull);
  const minijson::Value& hist = doc.array[3];
  EXPECT_EQ(hist.Find("kind")->str, "histogram");
  EXPECT_EQ(hist.Find("count")->number, 1.0);
  EXPECT_EQ(hist.Find("min")->number, 0.125);
  EXPECT_EQ(hist.Find("max")->number, 0.125);
}

TEST_F(MetricsTest, CsvExportHasHeaderAndRows) {
  Registry registry;
  registry.Add("a.counter", 7);
  registry.Observe("b.hist", 2.0);
  const std::string csv = registry.TakeSnapshot().ToCsv();
  EXPECT_EQ(csv.find("name,kind,stability,value,count,sum,min,max\n"), 0u);
  EXPECT_NE(csv.find("a.counter,counter,semantic,7,,,,\n"), std::string::npos);
  EXPECT_NE(csv.find("b.hist,histogram,timing,,1,2,2,2\n"), std::string::npos);
}

TEST_F(MetricsTest, WriteJsonRoundTripsGlobalRegistry) {
  trace::ScopedEnable on(true);
  Count("written.counter", 11);
  const std::string path = ::testing::TempDir() + "/metrics_test_out.json";
  ASSERT_TRUE(WriteJson(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  minijson::Value doc;
  ASSERT_TRUE(minijson::Parse(buffer.str(), &doc));
  ASSERT_EQ(doc.array.size(), 1u);
  EXPECT_EQ(doc.array[0].Find("name")->str, "written.counter");
  EXPECT_EQ(doc.array[0].Find("value")->number, 11.0);
}

TEST_F(MetricsTest, ConcurrentCountsFromWorkers) {
  // Integer adds commute; counting one per element from work-stealing
  // workers must land on exactly the element count (and TSan must stay
  // quiet about the registry).
  trace::ScopedEnable on(true);
  constexpr std::size_t kItems = 10000;
  ParallelFor(ParallelContext{8}, 0, kItems, /*grain=*/64,
              [](std::size_t begin, std::size_t end) {
                Count("concurrent.items", end - begin);
              });
  // The pooled run also publishes threadpool.* scheduler counters; pick
  // ours out by name.
  const Snapshot snapshot = Registry::Global().TakeSnapshot();
  bool found = false;
  for (const CounterValue& c : snapshot.counters) {
    if (c.name == "concurrent.items") {
      found = true;
      EXPECT_EQ(c.value, kItems);
      EXPECT_EQ(c.stability, Stability::kSemantic);
    }
  }
  EXPECT_TRUE(found);
}

// --- Determinism across thread counts -------------------------------

sim::CohortConfig SmallCohort(std::size_t threads) {
  sim::CohortConfig config = sim::HcpLikeConfig(909);
  config.num_subjects = 8;
  config.num_regions = 16;
  config.frames_override = 60;
  config.parallel.num_threads = threads;
  return config;
}

// Runs the whole simulate -> fit -> identify workflow with collection on
// and returns the semantic slice of the metrics it produced.
Snapshot SemanticMetricsForRun(std::size_t threads) {
  Registry::Global().Reset();
  trace::ScopedEnable on(true);
  const auto sim = sim::CohortSimulator::Create(SmallCohort(threads));
  EXPECT_TRUE(sim.ok());
  const auto known =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  const auto anonymous =
      sim->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  EXPECT_TRUE(known.ok() && anonymous.ok());
  core::AttackOptions options;
  options.num_features = 40;
  options.parallel.num_threads = threads;
  const auto attack = core::DeanonymizationAttack::Fit(*known, options);
  EXPECT_TRUE(attack.ok());
  const auto result = attack->Identify(*anonymous);
  EXPECT_TRUE(result.ok());
  return Registry::Global().TakeSnapshot().SemanticOnly();
}

TEST_F(MetricsTest, SemanticMetricsInvariantAcrossThreadCounts) {
  const Snapshot baseline = SemanticMetricsForRun(1);
  // The run must actually have produced semantic metrics to compare.
  ASSERT_FALSE(baseline.counters.empty());
  ASSERT_FALSE(baseline.gauges.empty());
  EXPECT_TRUE(baseline.histograms.empty())
      << "semantic histograms would break bitwise invariance";

  for (const std::size_t threads : {2u, 8u}) {
    const Snapshot run = SemanticMetricsForRun(threads);
    ASSERT_EQ(run.counters.size(), baseline.counters.size()) << threads;
    for (std::size_t i = 0; i < run.counters.size(); ++i) {
      EXPECT_EQ(run.counters[i].name, baseline.counters[i].name);
      EXPECT_EQ(run.counters[i].value, baseline.counters[i].value)
          << run.counters[i].name << " at " << threads << " threads";
    }
    ASSERT_EQ(run.gauges.size(), baseline.gauges.size()) << threads;
    for (std::size_t i = 0; i < run.gauges.size(); ++i) {
      EXPECT_EQ(run.gauges[i].name, baseline.gauges[i].name);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(run.gauges[i].value),
                std::bit_cast<std::uint64_t>(baseline.gauges[i].value))
          << run.gauges[i].name << " at " << threads << " threads";
    }
  }
}

TEST_F(MetricsTest, SchedulerMetricsTaggedAndExcluded) {
  // A pooled parallel region publishes threadpool.* under the scheduler
  // tag; those must never leak into the semantic comparison set.
  trace::ScopedEnable on(true);
  ParallelFor(ParallelContext{4}, 0, 4096, /*grain=*/16,
              [](std::size_t, std::size_t) {});
  const Snapshot snapshot = Registry::Global().TakeSnapshot();
  bool saw_threadpool = false;
  for (const CounterValue& c : snapshot.counters) {
    if (c.name.rfind("threadpool.", 0) == 0) {
      saw_threadpool = true;
      EXPECT_EQ(c.stability, Stability::kScheduler) << c.name;
    }
  }
  EXPECT_TRUE(saw_threadpool);
  for (const CounterValue& c : snapshot.SemanticOnly().counters) {
    EXPECT_NE(c.name.rfind("threadpool.", 0), 0u) << c.name;
  }
}

}  // namespace
}  // namespace neuroprint::metrics
