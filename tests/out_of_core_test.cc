// The out-of-core tier (ctest -L out-of-core): streamed kernels and
// batch paths must be bitwise-identical to their in-RAM counterparts at
// every window size and thread count (the window determinism contract of
// connectome/matrix_store.h), and the spill / file-backed stores must
// round-trip bit-exactly and fail cleanly when their files disappear.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "atlas/synthetic_atlas.h"
#include "connectome/group_matrix_io.h"
#include "connectome/matrix_store.h"
#include "core/attack.h"
#include "core/leverage.h"
#include "nifti/nifti_io.h"
#include "nifti/nifti_stream.h"
#include "preprocess/pipeline.h"
#include "service/identification_index.h"
#include "service/synthetic_gallery.h"
#include "sim/cohort.h"
#include "sim/voxel_render.h"
#include "util/random.h"
#include "util/spill.h"

namespace neuroprint {
namespace {

const std::size_t kWindowSizes[] = {1, 3, 17, 64, 0};  // 0 = derived.
const std::size_t kThreadCounts[] = {1, 2, 8};

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

connectome::GroupMatrix MakeGroup(std::size_t features, std::size_t subjects,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<linalg::Vector> columns(subjects);
  std::vector<std::string> ids;
  for (std::size_t j = 0; j < subjects; ++j) {
    columns[j].resize(features);
    for (double& v : columns[j]) v = rng.Gaussian();
    ids.push_back("subject-" + std::to_string(j));
  }
  return *connectome::GroupMatrix::FromFeatureColumns(columns, ids);
}

// Writes `group` as NPGM and opens a file-backed store over it.
std::unique_ptr<connectome::FileMatrixStore> OpenFileStore(
    const connectome::GroupMatrix& group, const std::string& name) {
  const std::string path = TempPath(name);
  EXPECT_TRUE(connectome::WriteGroupMatrix(path, group).ok());
  auto store = connectome::FileMatrixStore::Open(path);
  EXPECT_TRUE(store.ok()) << store.status();
  return std::move(store).value();
}

void ExpectBitIdentical(const linalg::Matrix& a, const linalg::Matrix& b,
                        const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << what << " at (" << i << ", " << j << ")";
    }
  }
}

void ExpectSameReport(const BatchReport& a, const BatchReport& b) {
  EXPECT_EQ(a.attempted, b.attempted);
  ASSERT_EQ(a.failed.size(), b.failed.size());
  for (std::size_t i = 0; i < a.failed.size(); ++i) {
    EXPECT_EQ(a.failed[i].index, b.failed[i].index);
    EXPECT_EQ(a.failed[i].id, b.failed[i].id);
    EXPECT_EQ(a.failed[i].stage, b.failed[i].stage);
    EXPECT_EQ(a.failed[i].status.code(), b.failed[i].status.code());
    EXPECT_EQ(a.failed[i].status.message(), b.failed[i].status.message());
    EXPECT_EQ(a.failed[i].degradations, b.failed[i].degradations);
  }
  ASSERT_EQ(a.degraded.size(), b.degraded.size());
  for (std::size_t i = 0; i < a.degraded.size(); ++i) {
    EXPECT_EQ(a.degraded[i].index, b.degraded[i].index);
    EXPECT_EQ(a.degraded[i].degradations, b.degraded[i].degradations);
  }
}

// --- Spill file lifecycle ---------------------------------------------------

TEST(SpillFileTest, RoundTripIsBitExact) {
  auto spill = SpillFile::Create();
  ASSERT_TRUE(spill.ok()) << spill.status();
  const std::vector<double> a{1.5, -2.25, 3.0e-300}, b{4.0};
  ASSERT_TRUE(spill->AppendColumn(a.data(), a.size()).ok());
  ASSERT_TRUE(spill->AppendColumn(b.data(), b.size()).ok());
  EXPECT_EQ(spill->num_columns(), 2u);
  std::vector<double> out;
  ASSERT_TRUE(spill->ReadColumn(1, &out).ok());
  EXPECT_EQ(out, b);
  ASSERT_TRUE(spill->ReadColumn(0, &out).ok());
  EXPECT_EQ(out, a);
  EXPECT_EQ(spill->ReadColumn(2, &out).code(), StatusCode::kInvalidArgument);
}

TEST(SpillFileTest, DeletionMidBatchIsIOError) {
  auto spill = SpillFile::Create();
  ASSERT_TRUE(spill.ok()) << spill.status();
  const std::vector<double> column{1.0, 2.0};
  ASSERT_TRUE(spill->AppendColumn(column.data(), column.size()).ok());
  ASSERT_EQ(std::remove(spill->path().c_str()), 0);
  std::vector<double> out;
  EXPECT_EQ(spill->ReadColumn(0, &out).code(), StatusCode::kIOError);
}

TEST(SpillFileTest, TruncationIsCorruptData) {
  auto spill = SpillFile::Create();
  ASSERT_TRUE(spill.ok()) << spill.status();
  std::vector<double> column(64, 1.25);
  ASSERT_TRUE(spill->AppendColumn(column.data(), column.size()).ok());
  // Chop the tail of the backing file after the append flushed.
  std::ifstream in(spill->path(), std::ios::binary);
  std::string contents(16, '\0');
  in.read(contents.data(), 16);
  ASSERT_TRUE(in.good());
  in.close();
  std::ofstream(spill->path(), std::ios::binary | std::ios::trunc)
      .write(contents.data(), 16);
  std::vector<double> out;
  EXPECT_EQ(spill->ReadColumn(0, &out).code(), StatusCode::kCorruptData);
}

TEST(SpillFileTest, DestructorUnlinksBackingFile) {
  std::string path;
  {
    auto spill = SpillFile::Create();
    ASSERT_TRUE(spill.ok()) << spill.status();
    const double v = 1.0;
    ASSERT_TRUE(spill->AppendColumn(&v, 1).ok());
    path = spill->path();
    EXPECT_TRUE(std::ifstream(path).good());
  }
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(SpillFileTest, MissingSpillDirectoryIsAnUpfrontError) {
  // A misconfigured spill directory must fail at Create() with a message
  // naming the directory and where it came from — not surface later as a
  // cryptic open/write failure mid-batch.
  const std::string missing =
      ::testing::TempDir() + "/no_such_spill_dir/nested";
  auto spill = SpillFile::Create(missing);
  ASSERT_EQ(spill.status().code(), StatusCode::kIOError);
  EXPECT_NE(spill.status().message().find(missing), std::string::npos)
      << spill.status();
  EXPECT_NE(spill.status().message().find("dir"), std::string::npos)
      << spill.status();
}

// --- Window derivation ------------------------------------------------------

TEST(StreamOptionsTest, DeriveWindowColsHonorsRequestAndBounds) {
  EXPECT_EQ(connectome::DeriveWindowCols(1000, 50, 7), 7u);
  const std::size_t derived = connectome::DeriveWindowCols(1000, 50, 0);
  EXPECT_GE(derived, 1u);
  EXPECT_LE(derived, 50u);
  // A gigantic column still yields a usable (clamped) window.
  EXPECT_GE(connectome::DeriveWindowCols(1u << 30, 4, 0), 1u);
  EXPECT_GE(connectome::DeriveRowTile(1u << 30, 4, 0), 1u);
}

// --- Streamed kernels: bitwise parity ---------------------------------------

TEST(StreamedKernelTest, GramMatchesInRamAcrossWindowsAndThreads) {
  const connectome::GroupMatrix group = MakeGroup(96, 23, 31);
  const auto file_store = OpenFileStore(group, "ooc_gram.npgm");
  const connectome::InMemoryMatrixStore ram_store(group);
  const linalg::Matrix want = linalg::Gram(group.data());
  for (const std::size_t window : kWindowSizes) {
    for (const std::size_t threads : kThreadCounts) {
      connectome::StreamOptions stream;
      stream.window_cols = window;
      stream.parallel.num_threads = threads;
      for (const connectome::MatrixStore* store :
           {static_cast<const connectome::MatrixStore*>(&ram_store),
            static_cast<const connectome::MatrixStore*>(file_store.get())}) {
        const auto got = connectome::StreamedGram(*store, stream);
        ASSERT_TRUE(got.ok()) << got.status();
        ExpectBitIdentical(*got, want,
                           "gram window=" + std::to_string(window) +
                               " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(StreamedKernelTest, LeverageMatchesInRamOnGramFastPath) {
  // Tall shape (96 >= 4 * 12): the fully-streamed Gram fast path.
  const connectome::GroupMatrix group = MakeGroup(96, 12, 33);
  const auto file_store = OpenFileStore(group, "ooc_leverage.npgm");
  core::LeverageOptions options;
  options.parallel.num_threads = 1;
  const auto want = core::ComputeLeverageScores(group.data(), options);
  ASSERT_TRUE(want.ok()) << want.status();
  for (const std::size_t window : kWindowSizes) {
    for (const std::size_t threads : kThreadCounts) {
      core::LeverageOptions streamed_options;
      streamed_options.parallel.num_threads = threads;
      core::LeverageDiagnostics diagnostics;
      streamed_options.diagnostics = &diagnostics;
      connectome::StreamOptions stream;
      stream.window_cols = window;
      stream.row_tile = window;  // Exercise ragged row tiles too.
      const auto got = core::ComputeLeverageScoresStreamed(
          *file_store, streamed_options, stream);
      ASSERT_TRUE(got.ok()) << got.status();
      EXPECT_TRUE(diagnostics.used_gram_fast_path);
      ASSERT_EQ(got->size(), want->size());
      for (std::size_t i = 0; i < want->size(); ++i) {
        ASSERT_EQ((*got)[i], (*want)[i])
            << "window " << window << " threads " << threads << " row " << i;
      }
    }
  }
}

TEST(StreamedKernelTest, LeverageFallsBackIdenticallyOffTheFastPath) {
  // Not tall enough for the Gram path: the streamed call materializes and
  // must still match bit for bit.
  const connectome::GroupMatrix group = MakeGroup(24, 10, 35);
  const auto file_store = OpenFileStore(group, "ooc_leverage_fallback.npgm");
  core::LeverageOptions options;
  options.parallel.num_threads = 1;
  const auto want = core::ComputeLeverageScores(group.data(), options);
  ASSERT_TRUE(want.ok()) << want.status();
  core::LeverageDiagnostics diagnostics;
  core::LeverageOptions streamed_options;
  streamed_options.parallel.num_threads = 1;
  streamed_options.diagnostics = &diagnostics;
  const auto got =
      core::ComputeLeverageScoresStreamed(*file_store, streamed_options, {});
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_FALSE(diagnostics.used_gram_fast_path);
  ASSERT_EQ(got->size(), want->size());
  for (std::size_t i = 0; i < want->size(); ++i) {
    ASSERT_EQ((*got)[i], (*want)[i]) << "row " << i;
  }
}

TEST(StreamedKernelTest, SubsetColumnsStoreMatchesBaseColumns) {
  const connectome::GroupMatrix group = MakeGroup(16, 8, 37);
  const connectome::InMemoryMatrixStore base(group);
  auto subset = connectome::SubsetColumnsStore::Create(base, {5, 1, 6});
  ASSERT_TRUE(subset.ok()) << subset.status();
  EXPECT_EQ(subset->num_subjects(), 3u);
  EXPECT_EQ(subset->subject_ids(),
            (std::vector<std::string>{"subject-5", "subject-1", "subject-6"}));
  linalg::Matrix tile;
  ASSERT_TRUE(subset->ReadColumns(0, 3, &tile).ok());
  for (std::size_t i = 0; i < 16; ++i) {
    ASSERT_EQ(tile(i, 0), group.data()(i, 5));
    ASSERT_EQ(tile(i, 1), group.data()(i, 1));
    ASSERT_EQ(tile(i, 2), group.data()(i, 6));
  }
  EXPECT_EQ(connectome::SubsetColumnsStore::Create(base, {8}).status().code(),
            StatusCode::kInvalidArgument);
}

// --- End-to-end attack parity -----------------------------------------------

class StreamedAttackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service::SyntheticGalleryConfig config;
    config.num_subjects = 10;
    config.num_features = 128;
    config.seed = 4242;
    auto known = service::MakeSyntheticGallery(config, 0);
    auto anonymous = service::MakeSyntheticGallery(config, 1);
    ASSERT_TRUE(known.ok() && anonymous.ok());
    known_ = std::move(known).value();
    anonymous_ = std::move(anonymous).value();
  }

  connectome::GroupMatrix known_;
  connectome::GroupMatrix anonymous_;
};

TEST_F(StreamedAttackTest, FitAndIdentifyMatchInRamBitwise) {
  core::AttackOptions options;
  options.num_features = 24;
  options.parallel.num_threads = 1;
  const auto oracle = core::DeanonymizationAttack::Fit(known_, options);
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  const auto oracle_result = oracle->Identify(anonymous_);
  ASSERT_TRUE(oracle_result.ok()) << oracle_result.status();

  const auto known_store = OpenFileStore(known_, "ooc_attack_known.npgm");
  const auto anon_store = OpenFileStore(anonymous_, "ooc_attack_anon.npgm");
  for (const std::size_t window : {std::size_t{1}, std::size_t{5},
                                   std::size_t{0}}) {
    for (const std::size_t threads : kThreadCounts) {
      core::AttackOptions streamed_options = options;
      streamed_options.parallel.num_threads = threads;
      connectome::StreamOptions stream;
      stream.window_cols = window;
      const auto attack = core::DeanonymizationAttack::FitStreamed(
          *known_store, streamed_options, stream);
      ASSERT_TRUE(attack.ok()) << attack.status();
      EXPECT_EQ(attack->selected_features(), oracle->selected_features());
      ASSERT_EQ(attack->leverage_scores().size(),
                oracle->leverage_scores().size());
      for (std::size_t i = 0; i < oracle->leverage_scores().size(); ++i) {
        ASSERT_EQ(attack->leverage_scores()[i], oracle->leverage_scores()[i])
            << "window " << window << " threads " << threads << " row " << i;
      }
      const auto result = attack->IdentifyStreamed(*anon_store, stream);
      ASSERT_TRUE(result.ok()) << result.status();
      ExpectBitIdentical(result->similarity, oracle_result->similarity,
                         "similarity window=" + std::to_string(window));
      EXPECT_EQ(result->predicted_index, oracle_result->predicted_index);
      EXPECT_EQ(result->predicted_ids, oracle_result->predicted_ids);
      EXPECT_EQ(result->accuracy, oracle_result->accuracy);
    }
  }
}

TEST_F(StreamedAttackTest, ScreeningReportsMatchUnderSkipAndReport) {
  // Poison one known and one anonymous column; the streamed screen must
  // produce the same report entries and the same surviving outputs.
  connectome::GroupMatrix bad_known = known_;
  connectome::GroupMatrix bad_anon = anonymous_;
  bad_known.mutable_data()(3, 2) = std::nan("");
  bad_anon.mutable_data()(7, 4) = std::nan("");

  core::AttackOptions options;
  options.num_features = 24;
  options.parallel.num_threads = 1;
  options.failure_policy = FailurePolicy::SkipAndReport();
  BatchReport fit_report_ram, fit_report_stream;
  const auto oracle =
      core::DeanonymizationAttack::Fit(bad_known, options, &fit_report_ram);
  ASSERT_TRUE(oracle.ok()) << oracle.status();

  const auto known_store = OpenFileStore(bad_known, "ooc_screen_known.npgm");
  const auto anon_store = OpenFileStore(bad_anon, "ooc_screen_anon.npgm");
  connectome::StreamOptions stream;
  stream.window_cols = 3;
  const auto attack = core::DeanonymizationAttack::FitStreamed(
      *known_store, options, stream, &fit_report_stream);
  ASSERT_TRUE(attack.ok()) << attack.status();
  ExpectSameReport(fit_report_ram, fit_report_stream);
  EXPECT_EQ(attack->selected_features(), oracle->selected_features());

  BatchReport id_report_ram, id_report_stream;
  const auto oracle_result = oracle->Identify(bad_anon, &id_report_ram);
  const auto result =
      attack->IdentifyStreamed(*anon_store, stream, &id_report_stream);
  ASSERT_TRUE(oracle_result.ok() && result.ok());
  ExpectSameReport(id_report_ram, id_report_stream);
  EXPECT_EQ(result->predicted_ids, oracle_result->predicted_ids);
  EXPECT_EQ(result->accuracy, oracle_result->accuracy);
}

// --- Service enrollment parity ----------------------------------------------

class EnrollStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_subjects = 24;
    config_.num_features = 96;
    config_.seed = 777;
    auto reference = service::MakeSyntheticGallerySlice(config_, 0, 0, 8);
    auto batch = service::MakeSyntheticGallerySlice(config_, 0, 8, 24);
    ASSERT_TRUE(reference.ok() && batch.ok());
    reference_ = std::move(reference).value();
    batch_ = std::move(batch).value();
  }

  service::IndexOptions IndexOptionsFor(bool retain) const {
    service::IndexOptions options;
    options.num_features = 16;
    options.retain_full_columns = retain;
    options.parallel.num_threads = 2;
    return options;
  }

  service::SyntheticGalleryConfig config_;
  connectome::GroupMatrix reference_;
  connectome::GroupMatrix batch_;
};

TEST_F(EnrollStreamTest, MatchesEnrollBatchStateExactly) {
  for (const bool retain : {true, false}) {
    for (const std::size_t window :
         {std::size_t{1}, std::size_t{5}, std::size_t{0}}) {
      auto a = service::IdentificationIndex::Create(reference_,
                                                    IndexOptionsFor(retain));
      auto b = service::IdentificationIndex::Create(reference_,
                                                    IndexOptionsFor(retain));
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_TRUE(a->EnrollBatch(batch_).ok());
      const connectome::InMemoryMatrixStore store(batch_);
      ASSERT_TRUE(b->EnrollStream(store, nullptr, window).ok());
      EXPECT_EQ(a->size(), b->size());
      EXPECT_EQ(a->sketch_staleness(), b->sketch_staleness());
      EXPECT_EQ(a->DebugStateString(), b->DebugStateString())
          << "retain=" << retain << " window=" << window;
    }
  }
}

TEST_F(EnrollStreamTest, FileBackedEnrollMatchesToo) {
  auto a = service::IdentificationIndex::Create(reference_,
                                                IndexOptionsFor(true));
  auto b = service::IdentificationIndex::Create(reference_,
                                                IndexOptionsFor(true));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(a->EnrollBatch(batch_).ok());
  const auto store = OpenFileStore(batch_, "ooc_enroll.npgm");
  ASSERT_TRUE(b->EnrollStream(*store, nullptr, 7).ok());
  EXPECT_EQ(a->DebugStateString(), b->DebugStateString());
}

TEST_F(EnrollStreamTest, ScreenAndReportMatchUnderSkipAndReport) {
  connectome::GroupMatrix bad = batch_;
  bad.mutable_data()(11, 3) = std::nan("");
  service::IndexOptions options = IndexOptionsFor(true);
  options.failure_policy = FailurePolicy::SkipAndReport();
  auto a = service::IdentificationIndex::Create(reference_, options);
  auto b = service::IdentificationIndex::Create(reference_, options);
  ASSERT_TRUE(a.ok() && b.ok());
  // Pre-enroll one id of the batch so the duplicate screen fires too.
  ASSERT_TRUE(a->Enroll(bad.subject_ids()[5], bad.SubjectColumn(5)).ok());
  ASSERT_TRUE(b->Enroll(bad.subject_ids()[5], bad.SubjectColumn(5)).ok());
  BatchReport report_a, report_b;
  ASSERT_TRUE(a->EnrollBatch(bad, &report_a).ok());
  const connectome::InMemoryMatrixStore store(bad);
  ASSERT_TRUE(b->EnrollStream(store, &report_b, 4).ok());
  ExpectSameReport(report_a, report_b);
  ASSERT_EQ(report_b.failed.size(), 2u);
  EXPECT_EQ(a->DebugStateString(), b->DebugStateString());
}

TEST_F(EnrollStreamTest, DimensionMismatchAndFailFastLeaveIndexUntouched) {
  auto index = service::IdentificationIndex::Create(reference_,
                                                    IndexOptionsFor(true));
  ASSERT_TRUE(index.ok());
  const std::string before = index->DebugStateString();
  const connectome::GroupMatrix wrong = MakeGroup(12, 3, 40);
  const connectome::InMemoryMatrixStore wrong_store(wrong);
  EXPECT_EQ(index->EnrollStream(wrong_store).code(),
            StatusCode::kInvalidArgument);
  connectome::GroupMatrix bad = batch_;
  bad.mutable_data()(0, 0) = std::nan("");
  const connectome::InMemoryMatrixStore bad_store(bad);
  EXPECT_EQ(index->EnrollStream(bad_store).code(), StatusCode::kCorruptData);
  EXPECT_EQ(index->DebugStateString(), before);
}

// --- Bounded pipeline batches -----------------------------------------------

class BoundedPipelineTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kRegions = 10;

  void SetUp() override {
    atlas::SyntheticAtlasConfig atlas_config;
    atlas_config.nx = 12;
    atlas_config.ny = 12;
    atlas_config.nz = 10;
    atlas_config.num_regions = kRegions;
    atlas_config.seed = 5;
    auto atlas = atlas::GenerateSyntheticAtlas(atlas_config);
    ASSERT_TRUE(atlas.ok());
    atlas_ = std::move(atlas).value();

    sim::CohortConfig cohort_config;
    cohort_config.num_subjects = 3;
    cohort_config.num_regions = kRegions;
    cohort_config.frames_override = 24;
    cohort_config.seed = 13;
    auto cohort = sim::CohortSimulator::Create(cohort_config);
    ASSERT_TRUE(cohort.ok());
    Rng rng(23);
    for (std::size_t s = 0; s < 3; ++s) {
      auto series = cohort->SimulateRegionSeries(s, sim::TaskType::kRest,
                                                 sim::Encoding::kLeftRight);
      ASSERT_TRUE(series.ok());
      auto run = sim::RenderVoxelRun(atlas_, *series, {}, rng);
      ASSERT_TRUE(run.ok());
      runs_.push_back(std::move(run).value());
    }
  }

  preprocess::PipelineConfig FastConfig() const {
    preprocess::PipelineConfig config;
    config.slice_time_correction = false;
    config.smoothing_fwhm_mm = 0.0;
    config.temporal_filter = preprocess::TemporalFilter::kNone;
    config.global_signal_regression = false;
    return config;
  }

  preprocess::RunSource SourceOverRuns() const {
    return [this](std::size_t i) -> Result<image::Volume4D> {
      return runs_[i];
    };
  }

  atlas::Atlas atlas_;
  std::vector<image::Volume4D> runs_;
};

TEST_F(BoundedPipelineTest, BoundedBatchMatchesVectorOverload) {
  const std::vector<std::string> ids{"run-a", "run-b", "run-c"};
  const preprocess::PipelineConfig config = FastConfig();
  const auto want = preprocess::RunPipelineBatch(runs_, ids, atlas_, config);
  ASSERT_TRUE(want.ok()) << want.status();
  for (const std::size_t in_flight :
       {std::size_t{1}, std::size_t{2}, std::size_t{0}}) {
    preprocess::PipelineConfig bounded = FastConfig();
    bounded.max_in_flight = in_flight;
    const auto got = preprocess::RunPipelineBatch(SourceOverRuns(), 3, ids,
                                                  atlas_, bounded);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->indices, want->indices);
    ExpectSameReport(want->report, got->report);
    ASSERT_EQ(got->outputs.size(), want->outputs.size());
    for (std::size_t k = 0; k < want->outputs.size(); ++k) {
      ExpectBitIdentical(got->outputs[k].region_series,
                         want->outputs[k].region_series,
                         "run " + std::to_string(k) + " in_flight=" +
                             std::to_string(in_flight));
      EXPECT_EQ(got->outputs[k].degraded_frames,
                want->outputs[k].degraded_frames);
    }
  }
}

TEST_F(BoundedPipelineTest, LoadFailureIsReportedAtStageLoad) {
  const std::vector<std::string> ids{"run-a", "run-b", "run-c"};
  preprocess::PipelineConfig config = FastConfig();
  config.failure_policy = FailurePolicy::SkipAndReport();
  config.max_in_flight = 1;
  const preprocess::RunSource source =
      [this](std::size_t i) -> Result<image::Volume4D> {
    if (i == 1) return Status::IOError("decode failed (synthetic)");
    return runs_[i];
  };
  const auto got = preprocess::RunPipelineBatch(source, 3, ids, atlas_, config);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->indices, (std::vector<std::size_t>{0, 2}));
  ASSERT_EQ(got->report.failed.size(), 1u);
  EXPECT_EQ(got->report.failed[0].index, 1u);
  EXPECT_EQ(got->report.failed[0].id, "run-b");
  EXPECT_EQ(got->report.failed[0].stage, "load");
  EXPECT_EQ(got->report.failed[0].status.code(), StatusCode::kIOError);

  // Fail-fast propagates the load error directly.
  preprocess::PipelineConfig fail_fast = FastConfig();
  fail_fast.max_in_flight = 1;
  const auto failed =
      preprocess::RunPipelineBatch(source, 3, ids, atlas_, fail_fast);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIOError);
}

TEST_F(BoundedPipelineTest, NullSourceIsInvalidArgument) {
  const auto got = preprocess::RunPipelineBatch(preprocess::RunSource(), 2, {},
                                                atlas_, FastConfig());
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

// --- Streamed NIfTI decode --------------------------------------------------

image::Volume4D MakeTestVolume() {
  image::Volume4D volume(5, 4, 3, 6);
  volume.spacing().dx_mm = 2.0;
  volume.spacing().dy_mm = 2.0;
  volume.spacing().dz_mm = 2.5;
  volume.spacing().tr_seconds = 0.8;
  std::size_t n = 0;
  for (float& v : volume.flat()) {
    v = static_cast<float>(n % 97) * 0.5f - 10.0f;
    ++n;
  }
  return volume;
}

TEST(NiftiStreamTest, StreamedReadMatchesWholeFileReader) {
  const image::Volume4D volume = MakeTestVolume();
  for (const bool gzip : {false, true}) {
    const std::string path =
        TempPath(gzip ? "ooc_stream.nii.gz" : "ooc_stream.nii");
    ASSERT_TRUE(nifti::WriteNifti(path, volume).ok());
    const auto whole = nifti::ReadNifti(path);
    ASSERT_TRUE(whole.ok()) << whole.status();
    const auto streamed = nifti::ReadNiftiStreamed(path);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    ASSERT_EQ(streamed->data.flat().size(), whole->data.flat().size());
    for (std::size_t i = 0; i < whole->data.flat().size(); ++i) {
      ASSERT_EQ(streamed->data.flat()[i], whole->data.flat()[i])
          << "gzip=" << gzip << " voxel " << i;
    }
    EXPECT_EQ(streamed->data.nt(), whole->data.nt());
    EXPECT_EQ(streamed->data.spacing().tr_seconds,
              whole->data.spacing().tr_seconds);
  }
}

TEST(NiftiStreamTest, FramesReadableInAnyOrder) {
  const image::Volume4D volume = MakeTestVolume();
  const std::string path = TempPath("ooc_frames.nii.gz");
  ASSERT_TRUE(nifti::WriteNifti(path, volume).ok());
  const auto whole = nifti::ReadNifti(path);
  ASSERT_TRUE(whole.ok());
  auto reader = nifti::NiftiStreamReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->nt(), 6u);
  std::vector<float> frame;
  // Forward, then backward (forces the gzip reopen), then forward again.
  for (const std::size_t t : {std::size_t{4}, std::size_t{1}, std::size_t{5}}) {
    ASSERT_TRUE(reader->ReadFrame(t, &frame).ok()) << "frame " << t;
    ASSERT_EQ(frame.size(), reader->frame_voxels());
    const float* want = whole->data.VolumePtr(t);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      ASSERT_EQ(frame[i], want[i]) << "frame " << t << " voxel " << i;
    }
  }
  EXPECT_EQ(reader->ReadFrame(6, &frame).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace neuroprint
