// Durability tier: crash-recovery property tests for the durable
// identification index (CreateDurable / OpenDurable / Checkpoint).
//
// The centerpiece is a deterministic crash sweep: a fixed mutation
// scenario (create, enrolls, a batch, a stream, removes, a checkpoint)
// is re-run once per (fault action, I/O site), with the fault schedule
// `point@k=action` walking k over every arrival at `io.journal` and
// `io.snapshot` until a full pass completes without firing. After each
// simulated crash the data directory is reopened and the recovered
// index must hold exactly the pre-op or post-op member set of the
// interrupted operation, with a DebugStateString bit-identical to a
// never-crashed index over the same members — torn tails truncated,
// checkpoint-redundant records skipped, never a corrupt or merged
// state.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "connectome/matrix_store.h"
#include "service/identification_index.h"
#include "service/synthetic_gallery.h"
#include "util/fault.h"
#include "util/status.h"
#include "util/string_util.h"

namespace neuroprint::service {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.npix";
}

std::string JournalPath(const std::string& dir) { return dir + "/journal.wal"; }

// ---------------------------------------------------------------------------
// Crash sweep
// ---------------------------------------------------------------------------

// The sweep scenario enrolls from subjects [0, kSubjects) of this
// gallery; slices are bitwise-identical to the corresponding columns of
// the full session-0 matrix, so the clean replica can re-enroll any
// member from `full`.
constexpr std::size_t kSubjects = 18;
constexpr std::size_t kReference = 10;

SyntheticGalleryConfig SweepGallery() {
  SyntheticGalleryConfig config;
  config.num_subjects = kSubjects;
  config.num_features = 48;
  config.seed = 0xd00bea75ULL;
  return config;
}

IndexOptions SweepOptions() {
  IndexOptions options;
  options.num_features = 16;
  options.num_shards = 3;
  return options;
}

// Sorted member set after scenario op `op` committed (op = -1 is the
// state before CreateDurable: no index at all). Mirrors RunScenario.
std::vector<std::string> ExpectedAfter(int op) {
  std::set<std::string> members;
  const auto apply = [&members](int step) {
    switch (step) {
      case 0:
        for (std::size_t j = 0; j < kReference; ++j) {
          members.insert(SyntheticSubjectId(j));
        }
        break;
      case 1:
        members.insert(SyntheticSubjectId(10));
        break;
      case 2:
        for (std::size_t j = 11; j < 14; ++j) {
          members.insert(SyntheticSubjectId(j));
        }
        break;
      case 3:
        members.erase(SyntheticSubjectId(3));
        break;
      case 4:
        break;  // Checkpoint: membership unchanged.
      case 5:
        for (std::size_t j = 14; j < 17; ++j) {
          members.insert(SyntheticSubjectId(j));
        }
        break;
      case 6:
        members.insert(SyntheticSubjectId(17));
        break;
      case 7:
        members.erase(SyntheticSubjectId(11));
        break;
      default:
        ADD_FAILURE() << "unknown scenario op " << step;
    }
  };
  for (int step = 0; step <= op; ++step) apply(step);
  return {members.begin(), members.end()};
}

constexpr int kScenarioOps = 8;

// Runs the scenario against a fresh durable index in `dir` and returns
// the index of the first op that failed (-1: clean pass). A fired
// torn/crash rule leaves the journal writer dead, so every later op
// would fail too — stopping at the first error models the process
// dying there.
int RunScenario(const std::string& dir, const connectome::GroupMatrix& reference,
                const connectome::GroupMatrix& full, Status* failure) {
  DurabilityOptions durability;
  durability.data_dir = dir;
  auto index =
      IdentificationIndex::CreateDurable(reference, durability, SweepOptions());
  if (!index.ok()) {
    *failure = index.status();
    return 0;
  }
  Status s = index->Enroll(SyntheticSubjectId(10), full.SubjectColumn(10));
  if (!s.ok()) {
    *failure = s;
    return 1;
  }
  auto batch = MakeSyntheticGallerySlice(SweepGallery(), 0, 11, 14);
  if (!batch.ok()) {
    ADD_FAILURE() << batch.status();
    *failure = batch.status();
    return 2;
  }
  s = index->EnrollBatch(*batch);
  if (!s.ok()) {
    *failure = s;
    return 2;
  }
  s = index->Remove(SyntheticSubjectId(3));
  if (!s.ok()) {
    *failure = s;
    return 3;
  }
  s = index->Checkpoint();
  if (!s.ok()) {
    *failure = s;
    return 4;
  }
  auto streamed = MakeSyntheticGallerySlice(SweepGallery(), 0, 14, 17);
  if (!streamed.ok()) {
    ADD_FAILURE() << streamed.status();
    *failure = streamed.status();
    return 5;
  }
  const connectome::InMemoryMatrixStore store(*streamed);
  s = index->EnrollStream(store, nullptr, 2);
  if (!s.ok()) {
    *failure = s;
    return 5;
  }
  s = index->Enroll(SyntheticSubjectId(17), full.SubjectColumn(17));
  if (!s.ok()) {
    *failure = s;
    return 6;
  }
  s = index->Remove(SyntheticSubjectId(11));
  if (!s.ok()) {
    *failure = s;
    return 7;
  }
  *failure = Status::OK();
  return -1;
}

// A never-crashed, never-persisted index over exactly `members`: fitted
// on the same reference (the subspace is a function of the reference,
// not of later mutations), then diffed toward the member set. The
// enroll/remove round-trip and order-independence properties (service
// tier) make this construction canonical.
Result<IdentificationIndex> BuildCleanReplica(
    const connectome::GroupMatrix& reference,
    const connectome::GroupMatrix& full,
    const std::vector<std::string>& members) {
  auto clean = IdentificationIndex::Create(reference, SweepOptions());
  if (!clean.ok()) return clean.status();
  const std::set<std::string> want(members.begin(), members.end());
  for (const std::string& id : reference.subject_ids()) {
    if (want.count(id) == 0) NP_RETURN_IF_ERROR(clean->Remove(id));
  }
  for (std::size_t j = 0; j < full.num_subjects(); ++j) {
    const std::string& id = full.subject_ids()[j];
    if (want.count(id) != 0 && !clean->Contains(id)) {
      NP_RETURN_IF_ERROR(clean->Enroll(id, full.SubjectColumn(j)));
    }
  }
  return clean;
}

TEST(DurabilityCrashSweepTest, EveryIoSiteRecoversToPreOrPostState) {
  const auto gallery = SweepGallery();
  auto full = MakeSyntheticGallery(gallery, 0);
  auto reference = MakeSyntheticGallerySlice(gallery, 0, 0, kReference);
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(reference.ok()) << reference.status();

  const char* kPoints[] = {"io.journal", "io.snapshot"};
  // Every failure mode the durable writers model: a clean I/O error, a
  // write torn to 0 / 4 / all of its bytes, and a kill right after the
  // syscall.
  const char* kActions[] = {"error:IOError:injected sweep fault", "torn:0",
                            "torn:4", "torn:1000000", "crash"};
  for (const char* point : kPoints) {
    for (const char* action : kActions) {
      bool swept_past_end = false;
      int hit = 0;
      for (hit = 1; hit < 64 && !swept_past_end; ++hit) {
        SCOPED_TRACE(StrFormat("%s@%d=%s", point, hit, action));
        const std::string dir =
            FreshDir(StrFormat("durability_sweep_%d", hit));
        Status failure;
        int failed_op = -1;
        std::uint64_t arrivals = 0;
        {
          fault::ScopedSchedule schedule(
              StrFormat("%s@%d=%s", point, hit, action));
          ASSERT_TRUE(schedule.status().ok()) << schedule.status();
          fault::ResetHitCounters();
          failed_op = RunScenario(dir, *reference, *full, &failure);
          arrivals = fault::ArrivalCount(point);
        }
        if (failed_op == -1) {
          // Clean pass: the hit index walked past the scenario's last
          // arrival at this point, so the sweep covered every site.
          ASSERT_LT(arrivals, static_cast<std::uint64_t>(hit))
              << "scenario passed although the fault fired";
          swept_past_end = true;
        } else {
          ASSERT_FALSE(failure.ok());
        }

        DurabilityOptions durability;
        durability.data_dir = dir;
        auto reopened =
            IdentificationIndex::OpenDurable(durability, SweepOptions());
        if (failed_op == 0 && !reopened.ok()) {
          // CreateDurable died before its snapshot was published: the
          // pre-op state of creation is "no index", and open saying so
          // is the correct recovery.
          continue;
        }
        ASSERT_TRUE(reopened.ok()) << reopened.status();
        const std::vector<std::string> members = reopened->EnrolledIds();
        const std::vector<std::string> pre =
            ExpectedAfter(failed_op == -1 ? kScenarioOps - 1 : failed_op - 1);
        const std::vector<std::string> post =
            ExpectedAfter(failed_op == -1 ? kScenarioOps - 1 : failed_op);
        ASSERT_TRUE(members == pre || members == post)
            << "recovered member set is neither the pre-op nor the post-op "
               "state of op "
            << failed_op << " (failure: " << failure.message() << ")";

        auto clean = BuildCleanReplica(*reference, *full, members);
        ASSERT_TRUE(clean.ok()) << clean.status();
        ASSERT_EQ(reopened->DebugStateString(), clean->DebugStateString())
            << "recovered index diverged from a never-crashed index over "
               "the same members";
      }
      EXPECT_TRUE(swept_past_end)
          << point << "=" << action << " sweep never completed";
    }
  }
}

// ---------------------------------------------------------------------------
// Snapshot / journal round trips
// ---------------------------------------------------------------------------

TEST(DurabilityTest, SnapshotRoundTripIsBitIdentical) {
  SyntheticGalleryConfig gallery;
  gallery.num_subjects = 30;
  gallery.num_features = 64;
  auto group = MakeSyntheticGallery(gallery, 0);
  ASSERT_TRUE(group.ok());
  auto index = IdentificationIndex::Create(*group);
  ASSERT_TRUE(index.ok()) << index.status();

  const std::string path = FreshDir("durability_snapshot") + "/index.npix";
  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  ASSERT_TRUE(index->SaveSnapshot(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "atomic publish left its temp file behind";

  auto reopened = IdentificationIndex::OpenFromSnapshot(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_FALSE(reopened->durable());
  EXPECT_EQ(reopened->EnrolledIds(), index->EnrolledIds());
  EXPECT_EQ(reopened->DebugStateString(), index->DebugStateString());

  auto probes = MakeSyntheticGallery(gallery, 1);
  ASSERT_TRUE(probes.ok());
  auto a = index->IdentifyBatch(*probes);
  auto b = reopened->IdentifyBatch(*probes);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->matches.size(), b->matches.size());
  for (std::size_t p = 0; p < a->matches.size(); ++p) {
    EXPECT_EQ(a->matches[p].subject_id, b->matches[p].subject_id);
    EXPECT_EQ(a->matches[p].similarity, b->matches[p].similarity);
    EXPECT_EQ(a->matches[p].margin, b->matches[p].margin);
  }
}

// The satellite grid: EnrollStream at several window sizes and thread
// counts, a torn-write crash in the middle, recovery, and then full
// DebugStateString + IdentifyBatch parity against a never-persisted
// replica — streaming, persistence, and parallelism must all be
// invisible in the final state.
TEST(DurabilityTest, StreamCrashRecoveryParityAcrossWindowsAndThreads) {
  SyntheticGalleryConfig gallery;
  gallery.num_subjects = 40;
  gallery.num_features = 64;
  gallery.seed = 0x57e2ea11ULL;
  auto reference = MakeSyntheticGallerySlice(gallery, 0, 0, 12);
  auto streamed = MakeSyntheticGallerySlice(gallery, 0, 12, 36);
  auto full = MakeSyntheticGallery(gallery, 0);
  auto probes = MakeSyntheticGallery(gallery, 1);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(streamed.ok());
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(probes.ok());

  IndexOptions base_options;
  base_options.num_features = 24;
  base_options.num_shards = 4;

  auto clean = IdentificationIndex::Create(*reference, base_options);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->EnrollBatch(*streamed).ok());
  ASSERT_TRUE(
      clean->Enroll(full->subject_ids()[36], full->SubjectColumn(36)).ok());
  const std::string want_state = clean->DebugStateString();
  auto want = clean->IdentifyBatch(*probes);
  ASSERT_TRUE(want.ok()) << want.status();

  for (std::size_t window : {std::size_t{1}, std::size_t{3}, std::size_t{17}}) {
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      SCOPED_TRACE(StrFormat("window=%zu threads=%zu", window, threads));
      IndexOptions options = base_options;
      options.parallel.num_threads = threads;
      DurabilityOptions durability;
      durability.data_dir =
          FreshDir(StrFormat("durability_grid_%zu_%zu", window, threads));
      {
        auto index =
            IdentificationIndex::CreateDurable(*reference, durability, options);
        ASSERT_TRUE(index.ok()) << index.status();
        const connectome::InMemoryMatrixStore store(*streamed);
        ASSERT_TRUE(index->EnrollStream(store, nullptr, window).ok());
        // Tear the next mutation's journal append after 7 bytes — less
        // than the record header — and let the "process" die.
        fault::ScopedSchedule schedule("io.journal@1=torn:7");
        ASSERT_TRUE(schedule.status().ok());
        fault::ResetHitCounters();
        EXPECT_EQ(index
                      ->Enroll(full->subject_ids()[36],
                               full->SubjectColumn(36))
                      .code(),
                  StatusCode::kIOError);
      }
      auto recovered = IdentificationIndex::OpenDurable(durability, options);
      ASSERT_TRUE(recovered.ok()) << recovered.status();
      EXPECT_EQ(recovered->size(), 36u);
      EXPECT_FALSE(recovered->Contains(full->subject_ids()[36]));
      // Finish the interrupted work, compact, and reopen once more.
      ASSERT_TRUE(
          recovered->Enroll(full->subject_ids()[36], full->SubjectColumn(36))
              .ok());
      ASSERT_TRUE(recovered->Checkpoint().ok());
      EXPECT_EQ(recovered->journal_size_bytes(), 0u);
      auto reopened = IdentificationIndex::OpenDurable(durability, options);
      ASSERT_TRUE(reopened.ok()) << reopened.status();

      EXPECT_EQ(reopened->DebugStateString(), want_state);
      auto got = reopened->IdentifyBatch(*probes);
      ASSERT_TRUE(got.ok()) << got.status();
      ASSERT_EQ(got->matches.size(), want->matches.size());
      for (std::size_t p = 0; p < got->matches.size(); ++p) {
        EXPECT_EQ(got->matches[p].subject_id, want->matches[p].subject_id);
        EXPECT_EQ(got->matches[p].similarity, want->matches[p].similarity);
        EXPECT_EQ(got->matches[p].margin, want->matches[p].margin);
        EXPECT_EQ(got->matches[p].candidates_scanned,
                  want->matches[p].candidates_scanned);
      }
      EXPECT_EQ(got->accuracy, want->accuracy);
    }
  }
}

// ---------------------------------------------------------------------------
// Durable lifecycle details
// ---------------------------------------------------------------------------

class DurableIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticGalleryConfig gallery;
    gallery.num_subjects = 16;
    gallery.num_features = 40;
    auto reference = MakeSyntheticGallerySlice(gallery, 0, 0, 8);
    auto rest = MakeSyntheticGallerySlice(gallery, 0, 8, 16);
    ASSERT_TRUE(reference.ok());
    ASSERT_TRUE(rest.ok());
    reference_ = std::move(reference).value();
    rest_ = std::move(rest).value();
  }

  connectome::GroupMatrix reference_;
  connectome::GroupMatrix rest_;
};

TEST_F(DurableIndexTest, MissingDataDirectoryConfigurationIsAnError) {
  if (!DataDirectory().empty()) {
    GTEST_SKIP() << "NEUROPRINT_DATA_DIR is set in this environment";
  }
  DurabilityOptions durability;  // No data_dir, no env fallback.
  auto created = IdentificationIndex::CreateDurable(reference_, durability);
  ASSERT_EQ(created.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(created.status().message().find("NEUROPRINT_DATA_DIR"),
            std::string::npos)
      << created.status();
  EXPECT_EQ(IdentificationIndex::OpenDurable(durability).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DurableIndexTest, ZeroSyncEveryIsRejected) {
  DurabilityOptions durability;
  durability.data_dir = FreshDir("durability_sync0");
  durability.sync_every = 0;
  EXPECT_EQ(IdentificationIndex::CreateDurable(reference_, durability)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DurableIndexTest, CheckpointRequiresDurability) {
  auto index = IdentificationIndex::Create(reference_);
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->durable());
  EXPECT_EQ(index->journal_size_bytes(), 0u);
  EXPECT_EQ(index->Checkpoint().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DurableIndexTest, RetainFlagMismatchIsFailedPrecondition) {
  DurabilityOptions durability;
  durability.data_dir = FreshDir("durability_retain");
  auto index = IdentificationIndex::CreateDurable(reference_, durability);
  ASSERT_TRUE(index.ok()) << index.status();
  IndexOptions lean;
  lean.retain_full_columns = false;
  auto reopened = IdentificationIndex::OpenDurable(durability, lean);
  ASSERT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(reopened.status().message().find("retain_full_columns"),
            std::string::npos)
      << reopened.status();
}

TEST_F(DurableIndexTest, CorruptSnapshotIsDetected) {
  DurabilityOptions durability;
  durability.data_dir = FreshDir("durability_corrupt");
  {
    auto index = IdentificationIndex::CreateDurable(reference_, durability);
    ASSERT_TRUE(index.ok()) << index.status();
  }
  const std::string path = SnapshotPath(durability.data_dir);

  // Flip the last payload byte: the CRC must catch it.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekg(-1, std::ios::end);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(-1, std::ios::end);
    f.write(&byte, 1);
  }
  auto flipped = IdentificationIndex::OpenDurable(durability);
  ASSERT_EQ(flipped.status().code(), StatusCode::kCorruptData);
  EXPECT_NE(flipped.status().message().find("checksum mismatch"),
            std::string::npos)
      << flipped.status();

  // Truncate into the header: detected before any payload is trusted.
  std::filesystem::resize_file(path, 10);
  EXPECT_EQ(IdentificationIndex::OpenDurable(durability).status().code(),
            StatusCode::kCorruptData);

  // Wrong magic: not a snapshot at all.
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << "XXXXsomething that is long enough to not be a header issue";
  }
  EXPECT_EQ(IdentificationIndex::OpenDurable(durability).status().code(),
            StatusCode::kCorruptData);
}

TEST_F(DurableIndexTest, StaleSnapshotTempIsSweptOnOpen) {
  DurabilityOptions durability;
  durability.data_dir = FreshDir("durability_tmp_sweep");
  {
    auto index = IdentificationIndex::CreateDurable(reference_, durability);
    ASSERT_TRUE(index.ok()) << index.status();
  }
  const std::string temp = SnapshotPath(durability.data_dir) + ".tmp";
  {
    std::ofstream f(temp, std::ios::binary);
    f << "half-written snapshot from a crashed writer";
  }
  auto reopened = IdentificationIndex::OpenDurable(durability);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_FALSE(std::filesystem::exists(temp));
}

TEST_F(DurableIndexTest, GarbageJournalTailIsTruncatedOnOpen) {
  DurabilityOptions durability;
  durability.data_dir = FreshDir("durability_tail");
  {
    auto index = IdentificationIndex::CreateDurable(reference_, durability);
    ASSERT_TRUE(index.ok()) << index.status();
    ASSERT_TRUE(
        index->Enroll(rest_.subject_ids()[0], rest_.SubjectColumn(0)).ok());
  }
  const std::string journal = JournalPath(durability.data_dir);
  const auto committed_bytes = std::filesystem::file_size(journal);
  {
    // A torn header plus noise: nothing past the committed prefix
    // checks out, so open must keep the prefix and drop the tail.
    std::ofstream f(journal, std::ios::binary | std::ios::app);
    f << "\x13\x37garbage";
  }
  ASSERT_GT(std::filesystem::file_size(journal), committed_bytes);
  auto reopened = IdentificationIndex::OpenDurable(durability);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->size(), reference_.num_subjects() + 1);
  EXPECT_TRUE(reopened->Contains(rest_.subject_ids()[0]));
  EXPECT_EQ(std::filesystem::file_size(journal), committed_bytes)
      << "the invalid tail should have been truncated away";
}

TEST_F(DurableIndexTest, RelaxedSyncEveryStillRecoversCleanShutdown) {
  DurabilityOptions durability;
  durability.data_dir = FreshDir("durability_sync3");
  durability.sync_every = 3;
  std::string state;
  {
    auto index = IdentificationIndex::CreateDurable(reference_, durability);
    ASSERT_TRUE(index.ok()) << index.status();
    for (std::size_t j = 0; j < rest_.num_subjects(); ++j) {
      ASSERT_TRUE(
          index->Enroll(rest_.subject_ids()[j], rest_.SubjectColumn(j)).ok());
    }
    state = index->DebugStateString();
  }
  auto reopened = IdentificationIndex::OpenDurable(durability);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->size(), reference_.num_subjects() + rest_.num_subjects());
  EXPECT_EQ(reopened->DebugStateString(), state);
}

TEST_F(DurableIndexTest, AutoCompactionKeepsJournalEmptyAndConverges) {
  DurabilityOptions durability;
  durability.data_dir = FreshDir("durability_compact");
  durability.compact_min_bytes = 1;  // Compact after every mutation.
  durability.compact_ratio = 0.0;
  auto index = IdentificationIndex::CreateDurable(reference_, durability);
  ASSERT_TRUE(index.ok()) << index.status();
  for (std::size_t j = 0; j < rest_.num_subjects(); ++j) {
    ASSERT_TRUE(
        index->Enroll(rest_.subject_ids()[j], rest_.SubjectColumn(j)).ok());
    EXPECT_EQ(index->journal_size_bytes(), 0u)
        << "mutation " << j << " did not trigger compaction";
  }
  ASSERT_TRUE(index->Remove(rest_.subject_ids()[1]).ok());
  EXPECT_EQ(index->journal_size_bytes(), 0u);

  auto reopened = IdentificationIndex::OpenDurable(durability);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->DebugStateString(), index->DebugStateString());
}

}  // namespace
}  // namespace neuroprint::service
