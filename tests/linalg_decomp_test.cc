// Tests for QR, SVD, symmetric eigendecomposition, Cholesky, and LU,
// including parameterized property sweeps over shapes.

#include <cmath>
#include <tuple>
#include <utility>

#include <gtest/gtest.h>

#include "linalg/bidiag.h"
#include "linalg/cholesky.h"
#include "linalg/eig_sym.h"
#include "linalg/lu.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "linalg/vector_ops.h"
#include "util/random.h"

namespace neuroprint::linalg {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng& rng,
                    double scale = 1.0) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = scale * rng.Gaussian();
  }
  return m;
}

// A random matrix of the given rank (product of two factor matrices).
Matrix RandomLowRank(std::size_t rows, std::size_t cols, std::size_t rank,
                     Rng& rng) {
  return MatMul(RandomMatrix(rows, rank, rng), RandomMatrix(rank, cols, rng));
}

double OrthonormalityError(const Matrix& q) {
  const Matrix gram = MatTMul(q, q);
  return (gram - Matrix::Identity(q.cols())).MaxAbs();
}

// ---------------------------------------------------------------------------
// QR

TEST(QrTest, ReconstructsInput) {
  Rng rng(1);
  const Matrix a = RandomMatrix(8, 5, rng);
  const auto qr = QrDecompose(a);
  ASSERT_TRUE(qr.ok()) << qr.status();
  EXPECT_LT((MatMul(qr->q, qr->r) - a).MaxAbs(), 1e-12);
}

TEST(QrTest, QHasOrthonormalColumns) {
  Rng rng(2);
  const Matrix a = RandomMatrix(10, 4, rng);
  const auto qr = QrDecompose(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_LT(OrthonormalityError(qr->q), 1e-12);
}

TEST(QrTest, RIsUpperTriangular) {
  Rng rng(3);
  const Matrix a = RandomMatrix(6, 6, rng);
  const auto qr = QrDecompose(a);
  ASSERT_TRUE(qr.ok());
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_NEAR(qr->r(i, j), 0.0, 1e-14);
    }
  }
}

TEST(QrTest, RejectsWideMatrix) {
  const Matrix a(2, 5);
  EXPECT_FALSE(QrDecompose(a).ok());
}

TEST(QrTest, RejectsNonFinite) {
  Matrix a(3, 2, 1.0);
  a(1, 1) = std::numeric_limits<double>::quiet_NaN();
  const auto qr = QrDecompose(a);
  EXPECT_FALSE(qr.ok());
  EXPECT_EQ(qr.status().code(), StatusCode::kInvalidArgument);
}

TEST(QrTest, HandlesRankDeficientColumns) {
  // Third column is a multiple of the first: QR must still reconstruct.
  Matrix a{{1, 0, 2}, {1, 1, 2}, {1, 2, 2}, {1, 3, 2}};
  const auto qr = QrDecompose(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_LT((MatMul(qr->q, qr->r) - a).MaxAbs(), 1e-12);
}

TEST(LeastSquaresTest, RecoversExactSolution) {
  Rng rng(4);
  const Matrix a = RandomMatrix(20, 5, rng);
  const Vector truth{1, -2, 3, 0.5, -0.25};
  const Vector b = MatVec(a, truth);
  const auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    EXPECT_NEAR((*x)[i], truth[i], 1e-10);
  }
}

TEST(LeastSquaresTest, ResidualOrthogonalToColumnSpace) {
  Rng rng(5);
  const Matrix a = RandomMatrix(15, 3, rng);
  const Vector b = RandomMatrix(15, 1, rng).ColCopy(0);
  const auto x = LeastSquares(a, b);
  ASSERT_TRUE(x.ok());
  const Vector r = Subtract(b, MatVec(a, *x));
  const Vector atr = MatTVec(a, r);
  EXPECT_LT(NormInf(atr), 1e-10);
}

// ---------------------------------------------------------------------------
// SVD

struct SvdShape {
  std::size_t rows;
  std::size_t cols;
};

class SvdShapeTest : public ::testing::TestWithParam<SvdShape> {};

TEST_P(SvdShapeTest, ReconstructionAndOrthogonality) {
  const auto [rows, cols] = GetParam();
  Rng rng(100 + rows * 31 + cols);
  const Matrix a = RandomMatrix(rows, cols, rng);
  const auto svd = Svd(a);
  ASSERT_TRUE(svd.ok()) << svd.status();
  const std::size_t k = std::min(rows, cols);
  ASSERT_EQ(svd->s.size(), k);
  ASSERT_EQ(svd->u.rows(), rows);
  ASSERT_EQ(svd->u.cols(), k);
  ASSERT_EQ(svd->v.rows(), cols);
  ASSERT_EQ(svd->v.cols(), k);

  const double scale = std::max(1.0, a.MaxAbs());
  EXPECT_LT((svd->Reconstruct() - a).MaxAbs() / scale, 1e-11);
  EXPECT_LT(OrthonormalityError(svd->u), 1e-11);
  EXPECT_LT(OrthonormalityError(svd->v), 1e-11);
  // Descending, non-negative.
  for (std::size_t i = 0; i + 1 < k; ++i) {
    EXPECT_GE(svd->s[i], svd->s[i + 1]);
  }
  if (k > 0) {
    EXPECT_GE(svd->s[k - 1], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapeTest,
    ::testing::Values(SvdShape{1, 1}, SvdShape{3, 3}, SvdShape{5, 2},
                      SvdShape{2, 5}, SvdShape{10, 10}, SvdShape{40, 7},
                      SvdShape{7, 40}, SvdShape{100, 20}, SvdShape{64, 1},
                      SvdShape{1, 64}, SvdShape{33, 32}, SvdShape{200, 10}));

TEST(SvdTest, SingularValuesOfKnownMatrix) {
  // diag(3, 2, 1) embedded in a rotation-free matrix.
  const Matrix a = Matrix::Diagonal({3.0, 1.0, 2.0});
  const auto s = SingularValues(a);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR((*s)[0], 3.0, 1e-12);
  EXPECT_NEAR((*s)[1], 2.0, 1e-12);
  EXPECT_NEAR((*s)[2], 1.0, 1e-12);
}

TEST(SvdTest, RankOfLowRankMatrix) {
  Rng rng(42);
  const Matrix a = RandomLowRank(30, 20, 4, rng);
  const auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_EQ(svd->Rank(1e-10), 4u);
}

TEST(SvdTest, FrobeniusNormMatchesSingularValues) {
  Rng rng(43);
  const Matrix a = RandomMatrix(12, 8, rng);
  const auto s = SingularValues(a);
  ASSERT_TRUE(s.ok());
  double sum = 0.0;
  for (double v : *s) sum += v * v;
  EXPECT_NEAR(std::sqrt(sum), a.FrobeniusNorm(), 1e-10);
}

TEST(SvdTest, QrPreconditionedPathMatchesDirect) {
  Rng rng(44);
  const Matrix a = RandomMatrix(120, 10, rng);
  SvdOptions direct;
  direct.force_direct = true;
  const auto fast = Svd(a);
  const auto slow = Svd(a, direct);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  // The telemetry flag proves the tall input actually took the thin-QR
  // preconditioning path (and that forcing direct bypasses it).
  EXPECT_TRUE(fast->qr_preconditioned);
  EXPECT_FALSE(slow->qr_preconditioned);
  for (std::size_t i = 0; i < fast->s.size(); ++i) {
    EXPECT_NEAR(fast->s[i], slow->s[i], 1e-9 * std::max(1.0, slow->s[0]));
  }
  // Leverage scores (row norms of U) must agree regardless of sign flips.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double lf = 0.0, ls = 0.0;
    for (std::size_t j = 0; j < fast->u.cols(); ++j) {
      lf += fast->u(i, j) * fast->u(i, j);
      ls += slow->u(i, j) * slow->u(i, j);
    }
    EXPECT_NEAR(lf, ls, 1e-9);
  }
}

TEST(SvdTest, AgreesWithJacobiSvd) {
  Rng rng(45);
  const Matrix a = RandomMatrix(20, 6, rng);
  const auto gkr = Svd(a);
  const auto jac = JacobiSvd(a);
  ASSERT_TRUE(gkr.ok());
  ASSERT_TRUE(jac.ok()) << jac.status();
  for (std::size_t i = 0; i < gkr->s.size(); ++i) {
    EXPECT_NEAR(gkr->s[i], jac->s[i], 1e-10 * std::max(1.0, gkr->s[0]));
  }
  EXPECT_LT((jac->Reconstruct() - a).MaxAbs(), 1e-11);
}

TEST(SvdTest, ZeroMatrix) {
  const Matrix a(4, 3);
  const auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  for (double s : svd->s) EXPECT_DOUBLE_EQ(s, 0.0);
  EXPECT_LT(svd->Reconstruct().MaxAbs(), 1e-300);
}

TEST(SvdTest, RejectsNonFinite) {
  Matrix a(3, 3, 1.0);
  a(2, 2) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(Svd(a).ok());
}

TEST(SvdTest, EmptyMatrix) {
  const auto svd = Svd(Matrix());
  ASSERT_TRUE(svd.ok());
  EXPECT_TRUE(svd->s.empty());
}

TEST(SvdTest, BlockedBidiagPathMatchesUnblocked) {
  Rng rng(46);
  // Aspect ratio below the QR-precondition threshold and n >= 64 so the
  // direct branch takes the blocked bidiagonalization.
  const Matrix a = RandomMatrix(80, 72, rng);
  SvdOptions legacy;
  legacy.bidiag_panel = 1;  // force the serial Householder reduction
  const auto blocked = Svd(a);
  const auto serial = Svd(a, legacy);
  ASSERT_TRUE(blocked.ok()) << blocked.status();
  ASSERT_TRUE(serial.ok());
  // The telemetry flag proves the blocked reduction actually engaged
  // (and that panel = 1 bypasses it).
  EXPECT_TRUE(blocked->blocked_bidiag);
  EXPECT_FALSE(serial->blocked_bidiag);
  for (std::size_t i = 0; i < blocked->s.size(); ++i) {
    EXPECT_NEAR(blocked->s[i], serial->s[i], 1e-9 * std::max(1.0, serial->s[0]))
        << "singular value " << i;
  }
  EXPECT_LT((blocked->Reconstruct() - a).MaxAbs(), 1e-10);
  EXPECT_LT(OrthonormalityError(blocked->u), 1e-11);
  EXPECT_LT(OrthonormalityError(blocked->v), 1e-11);
}

TEST(SvdTest, BlockedBidiagEngagesAfterQrPreconditioning) {
  Rng rng(47);
  // Tall enough for the thin-QR precondition; the inner SVD then runs on
  // the 64 x 64 R factor, which clears the blocked-bidiag threshold.
  const Matrix a = RandomMatrix(200, 64, rng);
  const auto svd = Svd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_TRUE(svd->qr_preconditioned);
  EXPECT_TRUE(svd->blocked_bidiag);
  EXPECT_LT((svd->Reconstruct() - a).MaxAbs(), 1e-10);
  EXPECT_LT(OrthonormalityError(svd->u), 1e-11);
}

// ---------------------------------------------------------------------------
// Blocked bidiagonalization

// Rebuilds the n x n upper-bidiagonal middle factor from (d, e).
Matrix BidiagonalMatrix(const Vector& d, const Vector& e) {
  Matrix b(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    b(i, i) = d[i];
    if (i + 1 < d.size()) b(i, i + 1) = e[i];
  }
  return b;
}

TEST(BidiagTest, ReconstructsInputAndOrthogonal) {
  Rng rng(50);
  const Matrix a = RandomMatrix(90, 70, rng);
  const auto f = BlockedBidiagonalize(a);
  ASSERT_TRUE(f.ok()) << f.status();
  ASSERT_EQ(f->d.size(), 70u);
  ASSERT_EQ(f->e.size(), 69u);
  const Matrix rebuilt = MatMulT(MatMul(f->u, BidiagonalMatrix(f->d, f->e)),
                                 f->v);
  EXPECT_LT((rebuilt - a).MaxAbs(), 1e-12 * a.MaxAbs() * 70);
  EXPECT_LT(OrthonormalityError(f->u), 1e-13);
  EXPECT_LT(OrthonormalityError(f->v), 1e-13);
}

TEST(BidiagTest, PanelWidthNeverChangesTheMath) {
  Rng rng(51);
  const Matrix a = RandomMatrix(45, 37, rng);
  for (const std::size_t panel : {std::size_t{1}, std::size_t{7},
                                  std::size_t{32}, std::size_t{64}}) {
    BidiagOptions options;
    options.panel = panel;
    const auto f = BlockedBidiagonalize(a, options);
    ASSERT_TRUE(f.ok()) << "panel " << panel;
    const Matrix rebuilt = MatMulT(MatMul(f->u, BidiagonalMatrix(f->d, f->e)),
                                   f->v);
    EXPECT_LT((rebuilt - a).MaxAbs(), 1e-12) << "panel " << panel;
    EXPECT_LT(OrthonormalityError(f->u), 1e-13) << "panel " << panel;
    EXPECT_LT(OrthonormalityError(f->v), 1e-13) << "panel " << panel;
  }
}

TEST(BidiagTest, HandlesSmallAndDegenerateShapes) {
  Rng rng(52);
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 1}, {2, 1}, {2, 2}, {5, 3}, {33, 33}};
  for (const auto& [rows, cols] : shapes) {
    const Matrix a = RandomMatrix(rows, cols, rng);
    const auto f = BlockedBidiagonalize(a);
    ASSERT_TRUE(f.ok()) << rows << "x" << cols;
    const Matrix rebuilt = MatMulT(MatMul(f->u, BidiagonalMatrix(f->d, f->e)),
                                   f->v);
    EXPECT_LT((rebuilt - a).MaxAbs(), 1e-12) << rows << "x" << cols;
  }
}

TEST(BidiagTest, ZeroColumnsYieldZeroReflectors) {
  Rng rng(53);
  Matrix a = RandomMatrix(12, 6, rng);
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, 2) = 0.0;
  const auto f = BlockedBidiagonalize(a);
  ASSERT_TRUE(f.ok());
  const Matrix rebuilt = MatMulT(MatMul(f->u, BidiagonalMatrix(f->d, f->e)),
                                 f->v);
  EXPECT_LT((rebuilt - a).MaxAbs(), 1e-13);
  EXPECT_LT(OrthonormalityError(f->u), 1e-13);
}

TEST(BidiagTest, RejectsWideMatrix) {
  EXPECT_FALSE(BlockedBidiagonalize(Matrix(3, 5, 1.0)).ok());
}

TEST(BidiagTest, RejectsNonFinite) {
  Matrix a(4, 3, 1.0);
  a(1, 2) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(BlockedBidiagonalize(a).ok());
}

TEST(PseudoInverseTest, InvertsFullRankSquare) {
  Rng rng(46);
  const Matrix a = RandomMatrix(5, 5, rng);
  const auto pinv = PseudoInverse(a);
  ASSERT_TRUE(pinv.ok());
  EXPECT_TRUE(AlmostEqual(MatMul(a, *pinv), Matrix::Identity(5), 1e-9));
}

TEST(PseudoInverseTest, MoorePenroseConditions) {
  Rng rng(47);
  const Matrix a = RandomLowRank(8, 6, 3, rng);
  const auto pinv_result = PseudoInverse(a, 1e-10);
  ASSERT_TRUE(pinv_result.ok());
  const Matrix& p = *pinv_result;
  // A P A = A and P A P = P.
  EXPECT_LT((MatMul(MatMul(a, p), a) - a).MaxAbs(), 1e-9);
  EXPECT_LT((MatMul(MatMul(p, a), p) - p).MaxAbs(), 1e-9);
  // A P and P A are symmetric.
  const Matrix ap = MatMul(a, p);
  EXPECT_TRUE(AlmostEqual(ap, ap.Transposed(), 1e-9));
  const Matrix pa = MatMul(p, a);
  EXPECT_TRUE(AlmostEqual(pa, pa.Transposed(), 1e-9));
}

// ---------------------------------------------------------------------------
// Symmetric eigendecomposition

TEST(EigSymTest, DiagonalMatrix) {
  const auto eig = EigSym(Matrix::Diagonal({1.0, 5.0, 3.0}));
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[2], 1.0, 1e-12);
}

TEST(EigSymTest, ReconstructsRandomSymmetric) {
  Rng rng(48);
  const Matrix g = Gram(RandomMatrix(12, 6, rng));
  const auto eig = EigSym(g);
  ASSERT_TRUE(eig.ok());
  // V diag(l) V^T == G.
  Matrix vl = eig->eigenvectors;
  for (std::size_t j = 0; j < vl.cols(); ++j) {
    for (std::size_t i = 0; i < vl.rows(); ++i) vl(i, j) *= eig->eigenvalues[j];
  }
  EXPECT_LT((MatMulT(vl, eig->eigenvectors) - g).MaxAbs(), 1e-9);
  EXPECT_LT(OrthonormalityError(eig->eigenvectors), 1e-10);
}

TEST(EigSymTest, GramEigenvaluesAreSquaredSingularValues) {
  Rng rng(49);
  const Matrix a = RandomMatrix(15, 5, rng);
  const auto svd = Svd(a);
  const auto eig = EigSym(Gram(a));
  ASSERT_TRUE(svd.ok());
  ASSERT_TRUE(eig.ok());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(eig->eigenvalues[i], svd->s[i] * svd->s[i], 1e-8);
  }
}

TEST(EigSymTest, RejectsAsymmetric) {
  const Matrix a{{1, 2}, {3, 4}};
  EXPECT_FALSE(EigSym(a).ok());
}

// ---------------------------------------------------------------------------
// Cholesky

TEST(CholeskyTest, FactorsKnownSpdMatrix) {
  const Matrix a{{4, 2}, {2, 3}};
  const auto l = CholeskyDecompose(a);
  ASSERT_TRUE(l.ok());
  EXPECT_TRUE(AlmostEqual(MatMulT(*l, *l), a, 1e-12));
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-14);
  EXPECT_NEAR((*l)(0, 1), 0.0, 1e-14);
}

TEST(CholeskyTest, FactorsRandomSpd) {
  Rng rng(50);
  const Matrix b = RandomMatrix(10, 10, rng);
  Matrix a = Gram(b);
  for (std::size_t i = 0; i < 10; ++i) a(i, i) += 1.0;  // Ensure SPD.
  const auto l = CholeskyDecompose(a);
  ASSERT_TRUE(l.ok());
  EXPECT_LT((MatMulT(*l, *l) - a).MaxAbs(), 1e-9);
}

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix a{{1, 2}, {2, 1}};  // Eigenvalues 3, -1.
  const auto l = CholeskyDecompose(a);
  EXPECT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CholeskyTest, JitterRescuesSemiDefinite) {
  // Rank-1 PSD matrix: plain Cholesky fails, jittered succeeds.
  const Matrix a{{1, 1}, {1, 1}};
  EXPECT_FALSE(CholeskyDecompose(a).ok());
  EXPECT_TRUE(CholeskyDecomposeWithJitter(a, 1e-8).ok());
}

TEST(CholeskyTest, SolveMatchesLu) {
  Rng rng(51);
  const Matrix b = RandomMatrix(6, 6, rng);
  Matrix a = Gram(b);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 0.5;
  const Vector rhs = RandomMatrix(6, 1, rng).ColCopy(0);
  const auto l = CholeskyDecompose(a);
  ASSERT_TRUE(l.ok());
  const auto x_chol = CholeskySolve(*l, rhs);
  const auto x_lu = LuSolve(a, rhs);
  ASSERT_TRUE(x_chol.ok());
  ASSERT_TRUE(x_lu.ok());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR((*x_chol)[i], (*x_lu)[i], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// LU

TEST(LuTest, SolvesKnownSystem) {
  const Matrix a{{2, 1}, {1, 3}};
  const auto x = LuSolve(a, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 3.0, 1e-12);
}

TEST(LuTest, InverseTimesOriginalIsIdentity) {
  Rng rng(52);
  const Matrix a = RandomMatrix(7, 7, rng);
  const auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(AlmostEqual(MatMul(a, *inv), Matrix::Identity(7), 1e-9));
}

TEST(LuTest, DeterminantOfKnownMatrix) {
  const Matrix a{{1, 2}, {3, 4}};
  EXPECT_NEAR(Determinant(a), -2.0, 1e-12);
  EXPECT_NEAR(Determinant(Matrix::Identity(5)), 1.0, 1e-12);
}

TEST(LuTest, DeterminantMatchesSingularValueProductMagnitude) {
  Rng rng(53);
  const Matrix a = RandomMatrix(5, 5, rng);
  const auto s = SingularValues(a);
  ASSERT_TRUE(s.ok());
  double product = 1.0;
  for (double v : *s) product *= v;
  EXPECT_NEAR(std::fabs(Determinant(a)), product, 1e-9 * product);
}

TEST(LuTest, RejectsSingular) {
  const Matrix a{{1, 2}, {2, 4}};
  EXPECT_FALSE(LuSolve(a, {1, 1}).ok());
  EXPECT_FALSE(Inverse(a).ok());
}

TEST(LuTest, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0, 1}, {1, 0}};
  const auto x = LuSolve(a, {2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-14);
  EXPECT_NEAR((*x)[1], 2.0, 1e-14);
}

}  // namespace
}  // namespace neuroprint::linalg
