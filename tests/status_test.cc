// Tests for Status / Result<T>: exhaustive StatusCode string mapping (both
// directions), factory/ToString behavior, and Result move / error
// propagation edge cases that the rest of the library leans on.

#include "util/status.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace neuroprint {
namespace {

// Every code paired with its canonical name. Kept in enum order so the
// exhaustiveness check below reads as the single source of truth.
const std::vector<std::pair<StatusCode, const char*>>& AllCodes() {
  static const std::vector<std::pair<StatusCode, const char*>> kCodes = {
      {StatusCode::kOk, "OK"},
      {StatusCode::kInvalidArgument, "InvalidArgument"},
      {StatusCode::kOutOfRange, "OutOfRange"},
      {StatusCode::kFailedPrecondition, "FailedPrecondition"},
      {StatusCode::kNotFound, "NotFound"},
      {StatusCode::kAlreadyExists, "AlreadyExists"},
      {StatusCode::kIOError, "IOError"},
      {StatusCode::kCorruptData, "CorruptData"},
      {StatusCode::kNotConverged, "NotConverged"},
      {StatusCode::kUnimplemented, "Unimplemented"},
      {StatusCode::kInternal, "Internal"},
  };
  return kCodes;
}

TEST(StatusCodeTest, ToStringCoversEveryCode) {
  // kInternal is the last enumerator; if a new code is appended without
  // updating AllCodes() this count check fails before the loop does.
  ASSERT_EQ(AllCodes().size(),
            static_cast<std::size_t>(StatusCode::kInternal) + 1);
  for (const auto& [code, name] : AllCodes()) {
    EXPECT_STREQ(StatusCodeToString(code), name);
  }
}

TEST(StatusCodeTest, ToStringNamesAreUnique) {
  for (const auto& [code_a, name_a] : AllCodes()) {
    for (const auto& [code_b, name_b] : AllCodes()) {
      if (code_a != code_b) {
        EXPECT_STRNE(name_a, name_b);
      }
    }
  }
}

TEST(StatusCodeTest, FromStringRoundTripsEveryCode) {
  for (const auto& [code, name] : AllCodes()) {
    const auto parsed = StatusCodeFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code);
  }
}

TEST(StatusCodeTest, FromStringRejectsUnknownNames) {
  EXPECT_FALSE(StatusCodeFromString("Unknown").has_value());
  EXPECT_FALSE(StatusCodeFromString("").has_value());
  EXPECT_FALSE(StatusCodeFromString("ok").has_value());  // Case-sensitive.
  EXPECT_FALSE(StatusCodeFromString("CorruptData ").has_value());
  EXPECT_FALSE(StatusCodeFromString("kCorruptData").has_value());
}

TEST(StatusTest, DefaultIsOkAndFactoriesCarryCodeAndMessage) {
  EXPECT_TRUE(Status().ok());
  EXPECT_EQ(Status().code(), StatusCode::kOk);
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status().ToString(), "OK");

  const Status s = Status::CorruptData("bad bytes");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruptData);
  EXPECT_EQ(s.message(), "bad bytes");
  EXPECT_EQ(s.ToString(), "CorruptData: bad bytes");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::CorruptData("").code(), StatusCode::kCorruptData);
  EXPECT_EQ(Status::NotConverged("").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValueAndMovesOutWithoutCopy) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(41));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(**result, 41);
  // Move-only payloads come out via the rvalue overload.
  std::unique_ptr<int> owned = std::move(result).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 41);
}

TEST(ResultTest, ErrorStatePreservesStatus) {
  const Result<int> result(Status::NotFound("no such subject"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.status().message(), "no such subject");
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  const Result<int> result(7);
  EXPECT_EQ(result.value_or(-1), 7);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, OkStatusConstructionBecomesInternalError) {
  // Result(Status::OK()) is a programming error; it must not fabricate a
  // value, and the stored status must be non-OK so callers cannot loop.
  const Result<int> result{Status::OK()};
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MutationThroughAccessorsSticks) {
  Result<std::vector<int>> result(std::vector<int>{1, 2});
  result->push_back(3);
  (*result)[0] = 9;
  result.value().push_back(4);
  EXPECT_EQ(*result, (std::vector<int>{9, 2, 3, 4}));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> Doubled(int x) {
  NP_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

Result<int> DoubledTwice(int x) {
  int once = 0;
  NP_ASSIGN_OR_RETURN(once, Doubled(x));
  return Doubled(once);
}

TEST(ResultTest, MacrosPropagateErrorsAndValues) {
  const Result<int> ok = DoubledTwice(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 12);

  const Result<int> err = DoubledTwice(-3);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.status().message(), "negative");
}

}  // namespace
}  // namespace neuroprint
