// Tests for the leveled logger and stopwatch.

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace neuroprint {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = MinLogSeverity(); }
  void TearDown() override { MinLogSeverity() = saved_; }

  // Captures stderr around a callback.
  template <typename Fn>
  std::string CaptureStderr(Fn&& fn) {
    ::testing::internal::CaptureStderr();
    fn();
    return ::testing::internal::GetCapturedStderr();
  }

  LogSeverity saved_ = LogSeverity::kWarning;
};

TEST_F(LoggingTest, EmitsAtOrAboveThreshold) {
  MinLogSeverity() = LogSeverity::kInfo;
  const std::string out = CaptureStderr([] {
    NP_LOG(Info) << "visible " << 42;
    NP_LOG(Warning) << "also visible";
  });
  EXPECT_NE(out.find("visible 42"), std::string::npos);
  EXPECT_NE(out.find("also visible"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, SuppressesBelowThreshold) {
  MinLogSeverity() = LogSeverity::kError;
  const std::string out = CaptureStderr([] {
    NP_LOG(Debug) << "hidden";
    NP_LOG(Info) << "hidden";
    NP_LOG(Warning) << "hidden";
  });
  EXPECT_TRUE(out.empty()) << out;
}

TEST_F(LoggingTest, SeverityTagsDiffer) {
  MinLogSeverity() = LogSeverity::kDebug;
  const std::string out = CaptureStderr([] {
    NP_LOG(Debug) << "d";
    NP_LOG(Error) << "e";
  });
  EXPECT_NE(out.find("[D "), std::string::npos);
  EXPECT_NE(out.find("[E "), std::string::npos);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  const double t0 = watch.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a hair; elapsed must be monotone.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const double t1 = watch.ElapsedSeconds();
  EXPECT_GE(t1, t0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 50);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), t1 + 1.0);
}

}  // namespace
}  // namespace neuroprint
