// Tests for the partial-correlation connectome and the match-margin
// diagnostics.

#include <cmath>

#include <gtest/gtest.h>

#include "connectome/partial_correlation.h"
#include "core/matcher.h"
#include "linalg/matrix.h"
#include "util/random.h"

namespace neuroprint::connectome {
namespace {

TEST(PartialCorrelationTest, UnitDiagonalSymmetricBounded) {
  Rng rng(1);
  linalg::Matrix series(8, 200);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t t = 0; t < 200; ++t) series(i, t) = rng.Gaussian();
  }
  const auto partial = BuildPartialCorrelationConnectome(series);
  ASSERT_TRUE(partial.ok()) << partial.status();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ((*partial)(i, i), 1.0);
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ((*partial)(i, j), (*partial)(j, i));
      EXPECT_LE(std::fabs((*partial)(i, j)), 1.0 + 1e-9);
    }
  }
}

TEST(PartialCorrelationTest, ConditionsOutChainMediation) {
  // Markov chain x -> y -> z: x and z are marginally correlated but
  // conditionally independent given y. Partial correlation must send the
  // (x, z) edge towards zero while Pearson keeps it large.
  Rng rng(2);
  const std::size_t n = 6000;
  linalg::Matrix series(3, n);
  for (std::size_t t = 0; t < n; ++t) {
    const double x = rng.Gaussian();
    const double y = 0.9 * x + 0.45 * rng.Gaussian();
    const double z = 0.9 * y + 0.45 * rng.Gaussian();
    series(0, t) = x;
    series(1, t) = y;
    series(2, t) = z;
  }
  PartialCorrelationOptions options;
  options.shrinkage = 1e-4;  // Plenty of samples; almost no shrinkage.
  const auto partial = BuildPartialCorrelationConnectome(series, options);
  ASSERT_TRUE(partial.ok());
  // Direct edges stay strong; the mediated (x, z) edge collapses.
  EXPECT_GT((*partial)(0, 1), 0.5);
  EXPECT_GT((*partial)(1, 2), 0.5);
  EXPECT_LT(std::fabs((*partial)(0, 2)), 0.1);
}

TEST(PartialCorrelationTest, ShrinkageStabilizesDegenerateCovariance) {
  // A constant region makes the covariance exactly singular: without
  // shrinkage the inversion fails, with shrinkage it succeeds and the
  // output stays bounded.
  Rng rng(3);
  linalg::Matrix series(8, 40);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t t = 0; t < 40; ++t) series(i, t) = rng.Gaussian();
  }
  for (std::size_t t = 0; t < 40; ++t) series(3, t) = 2.0;  // Constant row.
  PartialCorrelationOptions none;
  none.shrinkage = 0.0;
  EXPECT_FALSE(BuildPartialCorrelationConnectome(series, none).ok());
  PartialCorrelationOptions shrunk;
  shrunk.shrinkage = 0.5;
  const auto partial = BuildPartialCorrelationConnectome(series, shrunk);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_TRUE(partial->AllFinite());
}

TEST(PartialCorrelationTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(BuildPartialCorrelationConnectome(linalg::Matrix(1, 10)).ok());
  EXPECT_FALSE(BuildPartialCorrelationConnectome(linalg::Matrix(4, 2)).ok());
  EXPECT_FALSE(
      BuildPartialCorrelationConnectome(linalg::Matrix(4, 10, 5.0)).ok());
  linalg::Matrix nan_series(4, 10, 1.0);
  nan_series(0, 0) = std::nan("");
  EXPECT_FALSE(BuildPartialCorrelationConnectome(nan_series).ok());
}

TEST(MatchMarginsTest, ComputesBestMinusSecond) {
  linalg::Matrix similarity{{0.9, 0.2}, {0.5, 0.8}, {0.1, 0.7}};
  const auto margins = core::MatchMargins(similarity);
  ASSERT_TRUE(margins.ok());
  EXPECT_NEAR((*margins)[0], 0.4, 1e-12);
  EXPECT_NEAR((*margins)[1], 0.1, 1e-12);
  EXPECT_FALSE(core::MatchMargins(linalg::Matrix(1, 3)).ok());
}

}  // namespace
}  // namespace neuroprint::connectome
