// Tests for the Halko randomized range-finder SVD: factor accuracy against
// the exact Svd() across shapes and ranks, subspace capture on gapped
// spectra, and bitwise determinism for a fixed seed.

#include <bit>
#include <cmath>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/randomized_svd.h"
#include "linalg/svd.h"
#include "util/random.h"

namespace neuroprint::linalg {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

// Rank-r matrix with component strengths 2^-t: clean spectral gaps, so the
// randomized range finder captures the dominant subspace to within the
// test tolerances even without power iterations.
Matrix GappedLowRank(std::size_t rows, std::size_t cols, std::size_t rank,
                     double noise, std::uint64_t seed) {
  Rng rng(seed);
  const Matrix u = RandomMatrix(rows, rank, rng);
  const Matrix v = RandomMatrix(cols, rank, rng);
  Matrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      double s = 0.0;
      for (std::size_t t = 0; t < rank; ++t) {
        s += u(i, t) * v(j, t) / static_cast<double>(std::size_t{1} << t);
      }
      a(i, j) = s + noise * rng.Gaussian();
    }
  }
  return a;
}

double OrthonormalityError(const Matrix& q) {
  const Matrix gram = MatTMul(q, q);
  return (gram - Matrix::Identity(q.cols())).MaxAbs();
}

double ReconstructionError(const Matrix& a, const SvdDecomposition& d) {
  Matrix us = d.u;
  for (std::size_t i = 0; i < us.rows(); ++i) {
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= d.s[j];
  }
  return (a - MatMulT(us, d.v)).MaxAbs();
}

bool BitwiseEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a.data()[i]) !=
        std::bit_cast<std::uint64_t>(b.data()[i])) {
      return false;
    }
  }
  return true;
}

struct Shape {
  std::size_t rows;
  std::size_t cols;
};

class RandomizedSvdShapeTest : public ::testing::TestWithParam<Shape> {};

TEST_P(RandomizedSvdShapeTest, MatchesExactSvdOnLowRankInput) {
  const auto [rows, cols] = GetParam();
  const std::size_t rank = 6;
  const Matrix a = GappedLowRank(rows, cols, rank, /*noise=*/0.0, 17);

  RandomizedSvdOptions options;
  options.rank = rank;
  const auto approx = RandomizedSvd(a, options);
  ASSERT_TRUE(approx.ok()) << approx.status();
  const auto exact = Svd(a);
  ASSERT_TRUE(exact.ok()) << exact.status();

  ASSERT_EQ(approx->u.rows(), rows);
  ASSERT_EQ(approx->u.cols(), rank);
  ASSERT_EQ(approx->s.size(), rank);
  ASSERT_EQ(approx->v.rows(), cols);
  ASSERT_EQ(approx->v.cols(), rank);

  // The input has exact rank 6, so a width-(6+p) sketch captures its whole
  // column space and the decomposition agrees with the exact one.
  for (std::size_t i = 0; i < rank; ++i) {
    EXPECT_NEAR(approx->s[i], exact->s[i], 1e-8 * exact->s[0]) << "i=" << i;
  }
  EXPECT_LT(OrthonormalityError(approx->u), 1e-10);
  EXPECT_LT(OrthonormalityError(approx->v), 1e-10);
  EXPECT_LT(ReconstructionError(a, *approx), 1e-9 * exact->s[0]);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RandomizedSvdShapeTest,
                         ::testing::Values(Shape{120, 30}, Shape{30, 120},
                                           Shape{64, 64}, Shape{200, 12}),
                         [](const auto& info) {
                           return std::to_string(info.param.rows) + "x" +
                                  std::to_string(info.param.cols);
                         });

TEST(RandomizedSvdTest, TruncatesToRequestedRankOnNoisyInput) {
  const Matrix a = GappedLowRank(150, 40, 8, /*noise=*/1e-4, 23);
  RandomizedSvdOptions options;
  options.rank = 4;
  options.power_iterations = 2;
  const auto approx = RandomizedSvd(a, options);
  ASSERT_TRUE(approx.ok()) << approx.status();
  const auto exact = Svd(a);
  ASSERT_TRUE(exact.ok());

  ASSERT_EQ(approx->s.size(), 4u);
  // Leading singular values match to the noise scale; the 2^-t gaps make
  // the dominant subspace well-conditioned.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(approx->s[i], exact->s[i], 1e-6 * exact->s[0]) << "i=" << i;
  }
  // Leading left singular vectors align up to sign.
  for (std::size_t j = 0; j < 4; ++j) {
    double dot = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      dot += approx->u(i, j) * exact->u(i, j);
    }
    EXPECT_GT(std::fabs(dot), 0.999) << "column " << j;
  }
}

TEST(RandomizedSvdTest, DeterministicForFixedSeed) {
  const Matrix a = GappedLowRank(90, 25, 5, /*noise=*/1e-3, 31);
  RandomizedSvdOptions options;
  options.rank = 5;
  const auto first = RandomizedSvd(a, options);
  const auto second = RandomizedSvd(a, options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_TRUE(BitwiseEqual(first->u, second->u));
  EXPECT_TRUE(BitwiseEqual(first->v, second->v));
  for (std::size_t i = 0; i < first->s.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(first->s[i]),
              std::bit_cast<std::uint64_t>(second->s[i]));
  }

  options.seed ^= 0x9e3779b97f4a7c15ULL;
  const auto reseeded = RandomizedSvd(a, options);
  ASSERT_TRUE(reseeded.ok());
  EXPECT_FALSE(BitwiseEqual(first->u, reseeded->u));
}

TEST(RandomizedSvdTest, WidthCoveringMinDimFallsBackToExact) {
  const Matrix a = GappedLowRank(60, 10, 4, /*noise=*/1e-3, 41);
  RandomizedSvdOptions options;
  options.rank = 8;  // 8 + 8 oversample >= 10 columns.
  const auto approx = RandomizedSvd(a, options);
  ASSERT_TRUE(approx.ok()) << approx.status();
  const auto exact = Svd(a);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(approx->s.size(), 8u);
  // The fallback runs the exact decomposition and truncates, so the
  // factors agree bitwise.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(approx->s[i]),
              std::bit_cast<std::uint64_t>(exact->s[i]));
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(approx->u(i, j)),
                std::bit_cast<std::uint64_t>(exact->u(i, j)));
    }
  }
}

TEST(RandomizedSvdTest, ThreadCountInvariant) {
  const Matrix a = GappedLowRank(300, 40, 6, /*noise=*/1e-3, 47);
  RandomizedSvdOptions base;
  base.rank = 6;
  base.power_iterations = 1;
  base.parallel = ParallelContext{1};
  const auto serial = RandomizedSvd(a, base);
  ASSERT_TRUE(serial.ok());
  for (std::size_t threads : {2u, 8u}) {
    RandomizedSvdOptions options = base;
    options.parallel = ParallelContext{threads};
    const auto parallel = RandomizedSvd(a, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_TRUE(BitwiseEqual(serial->u, parallel->u)) << threads;
    EXPECT_TRUE(BitwiseEqual(serial->v, parallel->v)) << threads;
  }
}

TEST(RandomizedSvdTest, RejectsInvalidArguments) {
  const Matrix a = GappedLowRank(30, 10, 3, 0.0, 53);
  RandomizedSvdOptions options;
  options.rank = 0;
  EXPECT_FALSE(RandomizedSvd(a, options).ok());

  options.rank = 3;
  options.power_iterations = -1;
  EXPECT_FALSE(RandomizedSvd(a, options).ok());

  options.power_iterations = 1;
  EXPECT_FALSE(RandomizedSvd(Matrix(), options).ok());

  Matrix bad = a;
  bad(1, 1) = std::nan("");
  EXPECT_FALSE(RandomizedSvd(bad, options).ok());
}

}  // namespace
}  // namespace neuroprint::linalg
