// Seeded soak test for the identification service (service tier, slow):
// interleaves enrollment, identification, and removal over thousands of
// synthetic subjects and asserts, every round, that the cluster-pruned
// search never identifies worse than the brute-force oracle and that
// `service.sketch_staleness` resets after automatic refreshes.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/identification_index.h"
#include "service/synthetic_gallery.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace neuroprint::service {
namespace {

// The last-reported value of a gauge, or -1 when it was never set.
double GaugeValueOr(const metrics::Snapshot& snapshot, const std::string& name,
                    double fallback) {
  for (const auto& gauge : snapshot.gauges) {
    if (gauge.name == name) return gauge.value;
  }
  return fallback;
}

TEST(ServiceSoakTest, InterleavedChurnKeepsBruteForceAccuracy) {
  // ~2.5k subjects enrolled over six rounds with removals in between; the
  // feature count (96) bounds the refit sample, so automatic refreshes
  // stay cheap while the gallery grows past it.
  SyntheticGalleryConfig gallery;
  gallery.num_subjects = 2496;  // Reference (96) + six rounds of 400.
  gallery.num_features = 96;
  gallery.noise_scale = 0.3;
  gallery.seed = 0x50a450a4ULL;

  IndexOptions options;
  options.num_features = 48;
  options.num_shards = 8;
  options.refresh_interval = 100;  // Every round's batch triggers >= 1.
  options.refresh_sample = 64;
  options.trace.enabled = true;  // Collect service.* metrics.

  auto reference = MakeSyntheticGallerySlice(gallery, 0, 0, 96);
  ASSERT_TRUE(reference.ok());
  metrics::Registry::Global().Reset();
  auto index = IdentificationIndex::Create(*reference, options);
  ASSERT_TRUE(index.ok()) << index.status();

  const std::size_t kRounds = 6;
  const std::size_t kBatch = 400;
  std::size_t next_subject = 96;
  std::size_t removed_cursor = 0;
  for (std::size_t round = 0; round < kRounds; ++round) {
    // Enroll the next slice (each batch crosses the refresh cadence, so
    // the staleness gauge must come back to zero).
    const std::size_t end =
        std::min(next_subject + kBatch, gallery.num_subjects);
    if (next_subject < end) {
      auto batch = MakeSyntheticGallerySlice(gallery, 0, next_subject, end);
      ASSERT_TRUE(batch.ok());
      ASSERT_TRUE(index->EnrollBatch(*batch).ok());
      next_subject = end;
    }
    EXPECT_EQ(index->sketch_staleness(), 0u) << "round " << round;
    const auto snapshot = metrics::Registry::Global().TakeSnapshot();
    EXPECT_EQ(GaugeValueOr(snapshot, "service.sketch_staleness", -1.0), 0.0)
        << "round " << round;

    // Remove a deterministic handful of enrolled subjects.
    for (std::size_t r = 0; r < 23; ++r) {
      const std::string victim = SyntheticSubjectId(100 + removed_cursor * 7);
      ++removed_cursor;
      if (index->Contains(victim)) {
        ASSERT_TRUE(index->Remove(victim).ok());
      }
    }

    // Identify a strided probe sample from the repeat session: pruned
    // accuracy must never drop below the brute-force baseline.
    std::vector<linalg::Vector> probe_columns;
    std::vector<std::string> probe_ids;
    for (std::size_t j = 0; j < next_subject; j += 29) {
      const std::string id = SyntheticSubjectId(j);
      if (!index->Contains(id)) continue;
      auto probe = MakeSyntheticGallerySlice(gallery, 1, j, j + 1);
      ASSERT_TRUE(probe.ok());
      probe_columns.push_back(probe->SubjectColumn(0));
      probe_ids.push_back(id);
    }
    ASSERT_GE(probe_columns.size(), 3u);
    auto probes = connectome::GroupMatrix::FromFeatureColumns(probe_columns,
                                                              probe_ids);
    ASSERT_TRUE(probes.ok());

    auto pruned = index->IdentifyBatch(*probes);
    auto brute = index->IdentifyBatchBruteForce(*probes);
    ASSERT_TRUE(pruned.ok()) << pruned.status();
    ASSERT_TRUE(brute.ok()) << brute.status();
    EXPECT_GE(pruned->accuracy, brute->accuracy) << "round " << round;
    ASSERT_EQ(pruned->matches.size(), brute->matches.size());
    for (std::size_t p = 0; p < pruned->matches.size(); ++p) {
      EXPECT_EQ(pruned->matches[p].subject_id, brute->matches[p].subject_id)
          << "round " << round << " probe " << pruned->probe_ids[p];
    }
  }
  EXPECT_EQ(next_subject, gallery.num_subjects);
  EXPECT_GT(index->size(), 2000u);

  // The soak crossed the cadence many times: refreshes really happened.
  const auto snapshot = metrics::Registry::Global().TakeSnapshot();
  bool saw_refresh_counter = false;
  for (const auto& counter : snapshot.counters) {
    if (counter.name == "service.sketch_refreshes") {
      saw_refresh_counter = true;
      EXPECT_GE(counter.value, kRounds);
    }
  }
  EXPECT_TRUE(saw_refresh_counter);
}

}  // namespace
}  // namespace neuroprint::service
