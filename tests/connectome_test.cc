// Tests for connectome construction, triangle vectorization, and the
// GroupMatrix container.

#include <cmath>

#include <gtest/gtest.h>

#include "connectome/connectome.h"
#include "connectome/group_matrix.h"
#include "linalg/stats.h"
#include "util/random.h"

namespace neuroprint::connectome {
namespace {

linalg::Matrix RandomSeries(std::size_t regions, std::size_t frames, Rng& rng) {
  linalg::Matrix m(regions, frames);
  for (std::size_t i = 0; i < regions; ++i) {
    for (std::size_t j = 0; j < frames; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

TEST(ConnectomeTest, UnitDiagonalSymmetricBounded) {
  Rng rng(1);
  const auto conn = BuildConnectome(RandomSeries(10, 50, rng));
  ASSERT_TRUE(conn.ok());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ((*conn)(i, i), 1.0);
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ((*conn)(i, j), (*conn)(j, i));
      EXPECT_LE(std::fabs((*conn)(i, j)), 1.0);
    }
  }
}

TEST(ConnectomeTest, PerfectlyCorrelatedRegions) {
  linalg::Matrix series(3, 5);
  for (std::size_t t = 0; t < 5; ++t) {
    series(0, t) = static_cast<double>(t);
    series(1, t) = 2.0 * static_cast<double>(t) + 1.0;  // Same up to affine.
    series(2, t) = -static_cast<double>(t);             // Anti-correlated.
  }
  const auto conn = BuildConnectome(series);
  ASSERT_TRUE(conn.ok());
  EXPECT_NEAR((*conn)(0, 1), 1.0, 1e-12);
  EXPECT_NEAR((*conn)(0, 2), -1.0, 1e-12);
}

TEST(ConnectomeTest, ConstantRegionCorrelatesZero) {
  Rng rng(2);
  linalg::Matrix series = RandomSeries(3, 20, rng);
  for (std::size_t t = 0; t < 20; ++t) series(1, t) = 5.0;
  const auto conn = BuildConnectome(series);
  ASSERT_TRUE(conn.ok());
  EXPECT_DOUBLE_EQ((*conn)(0, 1), 0.0);
  EXPECT_DOUBLE_EQ((*conn)(1, 1), 1.0);
}

TEST(ConnectomeTest, RejectsDegenerateInputs) {
  Rng rng(3);
  EXPECT_FALSE(BuildConnectome(RandomSeries(1, 10, rng)).ok());
  EXPECT_FALSE(BuildConnectome(RandomSeries(5, 2, rng)).ok());
  linalg::Matrix bad = RandomSeries(3, 10, rng);
  bad(1, 1) = std::nan("");
  EXPECT_FALSE(BuildConnectome(bad).ok());
}

TEST(VectorizeTest, NumEdgesMatchesPaper) {
  EXPECT_EQ(NumEdges(360), 64620u);  // Glasser atlas (HCP experiments).
  EXPECT_EQ(NumEdges(116), 6670u);   // AAL2 atlas (ADHD-200 experiments).
  EXPECT_EQ(NumEdges(2), 1u);
}

TEST(VectorizeTest, RoundTripThroughDevectorize) {
  Rng rng(4);
  const auto conn = BuildConnectome(RandomSeries(8, 30, rng));
  ASSERT_TRUE(conn.ok());
  const auto v = VectorizeUpperTriangle(*conn);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), NumEdges(8));
  const auto back = DevectorizeUpperTriangle(*v, 8);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(linalg::AlmostEqual(*back, *conn, 1e-15));
}

TEST(VectorizeTest, OrderIsRowMajorUpperTriangle) {
  linalg::Matrix m{{1.0, 0.1, 0.2}, {0.1, 1.0, 0.3}, {0.2, 0.3, 1.0}};
  const auto v = VectorizeUpperTriangle(m);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, (linalg::Vector{0.1, 0.2, 0.3}));
}

TEST(VectorizeTest, RejectsNonSquareAndSizeMismatch) {
  EXPECT_FALSE(VectorizeUpperTriangle(linalg::Matrix(2, 3)).ok());
  EXPECT_FALSE(DevectorizeUpperTriangle({1, 2, 3}, 4).ok());  // Needs 6.
}

TEST(EdgeIndexTest, MapsToCorrectPairs) {
  // For 4 regions, edges in order: (0,1),(0,2),(0,3),(1,2),(1,3),(2,3).
  const std::pair<std::size_t, std::size_t> expected[] = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  for (std::size_t e = 0; e < 6; ++e) {
    const auto pair = EdgeIndexToRegionPair(e, 4);
    ASSERT_TRUE(pair.ok());
    EXPECT_EQ(*pair, expected[e]) << "edge " << e;
  }
  EXPECT_FALSE(EdgeIndexToRegionPair(6, 4).ok());
}

TEST(EdgeIndexTest, ConsistentWithVectorizeOrder) {
  // The value at feature index e must equal m(i, j) for the mapped pair.
  Rng rng(5);
  const auto conn = BuildConnectome(RandomSeries(12, 40, rng));
  const auto v = VectorizeUpperTriangle(*conn);
  ASSERT_TRUE(v.ok());
  for (std::size_t e = 0; e < v->size(); e += 7) {
    const auto pair = EdgeIndexToRegionPair(e, 12);
    ASSERT_TRUE(pair.ok());
    EXPECT_DOUBLE_EQ((*v)[e], (*conn)(pair->first, pair->second));
  }
}

TEST(GroupMatrixTest, FromConnectomesStacksColumns) {
  Rng rng(6);
  std::vector<linalg::Matrix> connectomes;
  for (int s = 0; s < 3; ++s) {
    connectomes.push_back(*BuildConnectome(RandomSeries(6, 25, rng)));
  }
  const auto group =
      GroupMatrix::FromConnectomes(connectomes, {"s1", "s2", "s3"});
  ASSERT_TRUE(group.ok());
  EXPECT_EQ(group->num_features(), NumEdges(6));
  EXPECT_EQ(group->num_subjects(), 3u);
  // Column 1 equals subject 2's vectorized connectome.
  const auto v = VectorizeUpperTriangle(connectomes[1]);
  EXPECT_EQ(group->SubjectColumn(1), *v);
}

TEST(GroupMatrixTest, RejectsInconsistentInputs) {
  Rng rng(7);
  std::vector<linalg::Matrix> mixed = {
      *BuildConnectome(RandomSeries(6, 25, rng)),
      *BuildConnectome(RandomSeries(7, 25, rng))};
  EXPECT_FALSE(GroupMatrix::FromConnectomes(mixed, {"a", "b"}).ok());
  std::vector<linalg::Matrix> one = {*BuildConnectome(RandomSeries(6, 25, rng))};
  EXPECT_FALSE(GroupMatrix::FromConnectomes(one, {"a", "b"}).ok());
  EXPECT_FALSE(GroupMatrix::FromConnectomes({}, {}).ok());
}

TEST(GroupMatrixTest, RestrictToFeatures) {
  const auto group = GroupMatrix::FromFeatureColumns(
      {{1, 2, 3, 4}, {5, 6, 7, 8}}, {"a", "b"});
  ASSERT_TRUE(group.ok());
  const auto reduced = group->RestrictToFeatures({3, 1});
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->num_features(), 2u);
  EXPECT_EQ(reduced->SubjectColumn(0), (linalg::Vector{4, 2}));
  EXPECT_EQ(reduced->SubjectColumn(1), (linalg::Vector{8, 6}));
  EXPECT_EQ(reduced->subject_ids(), group->subject_ids());
  EXPECT_FALSE(group->RestrictToFeatures({9}).ok());
  EXPECT_FALSE(group->RestrictToFeatures({}).ok());
}

}  // namespace
}  // namespace neuroprint::connectome
