// Tests for window functions and the Welch PSD estimator.

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "signal/spectral.h"
#include "util/random.h"

namespace neuroprint::signal {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<double> Sine(std::size_t n, double freq_hz, double tr,
                         double amplitude = 1.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amplitude * std::sin(2.0 * kPi * freq_hz * static_cast<double>(i) * tr);
  }
  return x;
}

TEST(WindowTest, ShapesAndEndpoints) {
  const auto rect = MakeWindow(WindowKind::kRectangular, 8);
  ASSERT_TRUE(rect.ok());
  for (double w : *rect) EXPECT_DOUBLE_EQ(w, 1.0);

  const auto hann = MakeWindow(WindowKind::kHann, 9);
  ASSERT_TRUE(hann.ok());
  EXPECT_NEAR((*hann)[0], 0.0, 1e-12);
  EXPECT_NEAR((*hann)[8], 0.0, 1e-12);
  EXPECT_NEAR((*hann)[4], 1.0, 1e-12);  // Peak at the centre.

  const auto hamming = MakeWindow(WindowKind::kHamming, 9);
  ASSERT_TRUE(hamming.ok());
  EXPECT_NEAR((*hamming)[0], 0.08, 1e-12);
  EXPECT_NEAR((*hamming)[4], 1.0, 1e-12);

  EXPECT_FALSE(MakeWindow(WindowKind::kHann, 0).ok());
  const auto single = MakeWindow(WindowKind::kHann, 1);
  ASSERT_TRUE(single.ok());
  EXPECT_DOUBLE_EQ((*single)[0], 1.0);
}

TEST(WelchTest, LocatesPureTone) {
  const double tr = 0.72;
  const double tone_hz = 0.1;
  const std::vector<double> x = Sine(2048, tone_hz, tr);
  WelchOptions options;
  options.segment_length = 256;
  options.tr_seconds = tr;
  const auto psd = WelchPsd(x, options);
  ASSERT_TRUE(psd.ok()) << psd.status();
  // The strongest bin must sit at the tone frequency.
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd->power.size(); ++k) {
    if (psd->power[k] > psd->power[peak]) peak = k;
  }
  EXPECT_NEAR(psd->frequency_hz[peak], tone_hz, 0.01);
  // Nearly all power concentrated near the tone.
  const double near = psd->BandPower(tone_hz - 0.02, tone_hz + 0.02);
  const double total = psd->BandPower(0.0, 1.0);
  EXPECT_GT(near, 0.9 * total);
}

TEST(WelchTest, TotalPowerApproximatesVariance) {
  Rng rng(5);
  std::vector<double> x(4096);
  for (double& v : x) v = rng.Gaussian(0.0, 2.0);  // Variance 4.
  WelchOptions options;
  options.segment_length = 256;
  options.window = WindowKind::kHann;
  const auto psd = WelchPsd(x, options);
  ASSERT_TRUE(psd.ok());
  const double total = psd->BandPower(0.0, 1e9);
  EXPECT_NEAR(total, 4.0, 0.8);
  // Rectangular window gives the same total (Parseval is window-agnostic
  // after energy normalization).
  WelchOptions rect = options;
  rect.window = WindowKind::kRectangular;
  const auto psd_rect = WelchPsd(x, rect);
  ASSERT_TRUE(psd_rect.ok());
  EXPECT_NEAR(psd_rect->BandPower(0.0, 1e9), 4.0, 0.8);
}

TEST(WelchTest, WhiteNoiseSpectrumIsFlat) {
  Rng rng(6);
  std::vector<double> x(8192);
  for (double& v : x) v = rng.Gaussian();
  WelchOptions options;
  options.segment_length = 128;
  options.tr_seconds = 1.0;
  const auto psd = WelchPsd(x, options);
  ASSERT_TRUE(psd.ok());
  // Compare band power in two equal-width bands: should be similar.
  const double low = psd->BandPower(0.05, 0.2);
  const double high = psd->BandPower(0.3, 0.45);
  EXPECT_NEAR(low / high, 1.0, 0.35);
}

TEST(WelchTest, DetectsFilteredBand) {
  // After the simulator's scan spectrum question: verify the estimator
  // sees the band structure a band-limited signal has.
  const double tr = 0.72;
  std::vector<double> x = Sine(4096, 0.05, tr, 3.0);
  const std::vector<double> fast = Sine(4096, 0.5, tr, 0.5);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += fast[i];
  WelchOptions options;
  options.segment_length = 512;
  options.tr_seconds = tr;
  const auto psd = WelchPsd(x, options);
  ASSERT_TRUE(psd.ok());
  EXPECT_GT(psd->BandPower(0.03, 0.07), 10.0 * psd->BandPower(0.45, 0.55));
  EXPECT_GT(psd->BandPower(0.45, 0.55), 1e-6);
}

TEST(WelchTest, RejectsBadInputs) {
  const std::vector<double> x(100, 1.0);
  WelchOptions too_long;
  too_long.segment_length = 200;
  EXPECT_FALSE(WelchPsd(x, too_long).ok());
  WelchOptions tiny_seg;
  tiny_seg.segment_length = 1;
  EXPECT_FALSE(WelchPsd(x, tiny_seg).ok());
  WelchOptions bad_overlap;
  bad_overlap.segment_length = 50;
  bad_overlap.overlap = 0.99;
  EXPECT_FALSE(WelchPsd(x, bad_overlap).ok());
  WelchOptions bad_tr;
  bad_tr.segment_length = 50;
  bad_tr.tr_seconds = 0.0;
  EXPECT_FALSE(WelchPsd(x, bad_tr).ok());
  std::vector<double> with_nan(100, 0.0);
  with_nan[3] = std::nan("");
  WelchOptions fine;
  fine.segment_length = 50;
  EXPECT_FALSE(WelchPsd(with_nan, fine).ok());
}

}  // namespace
}  // namespace neuroprint::signal
