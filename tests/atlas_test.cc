// Tests for the atlas type, the synthetic parcellation generator, and
// region time-series extraction.

#include <set>

#include <gtest/gtest.h>

#include "atlas/atlas.h"
#include "atlas/region_timeseries.h"
#include "atlas/synthetic_atlas.h"

namespace neuroprint::atlas {
namespace {

TEST(AtlasTest, LabelAccessAndCounts) {
  Atlas atlas(4, 4, 4, 2);
  atlas.set_label(0, 0, 0, 1);
  atlas.set_label(1, 0, 0, 1);
  atlas.set_label(2, 0, 0, 2);
  EXPECT_EQ(atlas.label(0, 0, 0), 1);
  EXPECT_EQ(atlas.label(3, 3, 3), kBackground);
  const auto counts = atlas.RegionVoxelCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(atlas.BrainVoxelCount(), 3u);
}

TEST(AtlasTest, ValidateCatchesEmptyRegion) {
  Atlas atlas(4, 4, 4, 2);
  atlas.set_label(0, 0, 0, 1);  // Region 2 never used.
  EXPECT_FALSE(atlas.Validate().ok());
  atlas.set_label(1, 1, 1, 2);
  EXPECT_TRUE(atlas.Validate().ok());
}

class SyntheticAtlasRegionsTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SyntheticAtlasRegionsTest, TilesTheMaskCompletely) {
  SyntheticAtlasConfig config;
  config.num_regions = GetParam();
  config.seed = 5 + GetParam();
  const auto atlas = GenerateSyntheticAtlas(config);
  ASSERT_TRUE(atlas.ok()) << atlas.status();
  EXPECT_EQ(atlas->num_regions(), GetParam());
  EXPECT_TRUE(atlas->Validate().ok());

  // Every mask voxel must be labelled (BFS reaches the whole connected
  // ellipsoid) and all labels in range.
  std::set<std::int32_t> labels_seen;
  for (std::int32_t label : atlas->flat()) {
    if (label != kBackground) labels_seen.insert(label);
  }
  EXPECT_EQ(labels_seen.size(), GetParam());
  // An ellipsoid with semi-axes at 90% of each half-dimension fills
  // roughly pi/6 * 0.9^3 ~ 38% of the box (less after discretization).
  EXPECT_GT(atlas->BrainVoxelCount(), atlas->flat().size() / 4);
}

INSTANTIATE_TEST_SUITE_P(RegionCounts, SyntheticAtlasRegionsTest,
                         ::testing::Values(1, 2, 10, 116, 360));

TEST(SyntheticAtlasTest, DeterministicForSeed) {
  SyntheticAtlasConfig config;
  config.num_regions = 20;
  config.seed = 99;
  const auto a = GenerateSyntheticAtlas(config);
  const auto b = GenerateSyntheticAtlas(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->flat(), b->flat());
  config.seed = 100;
  const auto c = GenerateSyntheticAtlas(config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->flat(), c->flat());
}

TEST(SyntheticAtlasTest, PresetsMatchPaperRegionCounts) {
  const auto glasser = GlasserLikeAtlas();
  ASSERT_TRUE(glasser.ok());
  EXPECT_EQ(glasser->num_regions(), 360u);
  const auto aal2 = Aal2LikeAtlas();
  ASSERT_TRUE(aal2.ok());
  EXPECT_EQ(aal2->num_regions(), 116u);
  // 116 * 115 / 2 = 6670, the paper's ADHD-200 feature count.
  EXPECT_EQ(aal2->num_regions() * (aal2->num_regions() - 1) / 2, 6670u);
}

TEST(SyntheticAtlasTest, RejectsImpossibleConfigs) {
  SyntheticAtlasConfig config;
  config.num_regions = 0;
  EXPECT_FALSE(GenerateSyntheticAtlas(config).ok());
  config.num_regions = 10;
  config.nx = 0;
  EXPECT_FALSE(GenerateSyntheticAtlas(config).ok());
  config.nx = 2;
  config.ny = 2;
  config.nz = 2;
  config.num_regions = 1000;  // More regions than voxels.
  EXPECT_FALSE(GenerateSyntheticAtlas(config).ok());
}

TEST(RegionTimeSeriesTest, AveragesVoxelsWithinRegions) {
  Atlas atlas(2, 2, 1, 2);
  atlas.set_label(0, 0, 0, 1);
  atlas.set_label(1, 0, 0, 1);
  atlas.set_label(0, 1, 0, 2);
  // (1,1,0) stays background.
  image::Volume4D run(2, 2, 1, 3);
  run.SetVoxelTimeSeries(0, 0, 0, {1, 2, 3});
  run.SetVoxelTimeSeries(1, 0, 0, {3, 4, 5});
  run.SetVoxelTimeSeries(0, 1, 0, {10, 20, 30});
  run.SetVoxelTimeSeries(1, 1, 0, {999, 999, 999});  // Ignored.

  const auto series = ExtractRegionTimeSeries(run, atlas);
  ASSERT_TRUE(series.ok()) << series.status();
  ASSERT_EQ(series->rows(), 2u);
  ASSERT_EQ(series->cols(), 3u);
  EXPECT_DOUBLE_EQ((*series)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((*series)(0, 2), 4.0);
  EXPECT_DOUBLE_EQ((*series)(1, 1), 20.0);
}

TEST(RegionTimeSeriesTest, RejectsGridMismatch) {
  Atlas atlas(3, 3, 3, 1);
  atlas.set_label(0, 0, 0, 1);
  const image::Volume4D run(4, 4, 4, 2);
  EXPECT_FALSE(ExtractRegionTimeSeries(run, atlas).ok());
}

TEST(RegionTimeSeriesTest, RejectsEmptyRegionAtlas) {
  Atlas atlas(2, 2, 2, 3);  // All regions empty.
  const image::Volume4D run(2, 2, 2, 2);
  EXPECT_FALSE(ExtractRegionTimeSeries(run, atlas).ok());
}

}  // namespace
}  // namespace neuroprint::atlas
