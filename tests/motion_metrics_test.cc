// Tests for framewise displacement, censoring, and the CMC matcher
// extensions.

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "preprocess/motion_metrics.h"

namespace neuroprint {
namespace {

using image::RigidTransform;
using preprocess::CensorMask;
using preprocess::DropCensoredFrames;
using preprocess::FramewiseDisplacement;

TEST(FramewiseDisplacementTest, StillHeadGivesZero) {
  const std::vector<RigidTransform> motion(5);
  const auto fd = FramewiseDisplacement(motion);
  ASSERT_TRUE(fd.ok());
  for (double v : *fd) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FramewiseDisplacementTest, TranslationAndRotationContributions) {
  std::vector<RigidTransform> motion(3);
  motion[1].translate_x = 0.5;   // +0.5 mm step at frame 1.
  motion[2].translate_x = 0.5;   // No further translation change...
  motion[2].rotate_z = 0.01;     // ...but a 0.01 rad rotation at frame 2.
  const auto fd = FramewiseDisplacement(motion, 50.0);
  ASSERT_TRUE(fd.ok());
  EXPECT_DOUBLE_EQ((*fd)[0], 0.0);
  EXPECT_DOUBLE_EQ((*fd)[1], 0.5);
  EXPECT_DOUBLE_EQ((*fd)[2], 0.01 * 50.0);
  EXPECT_FALSE(FramewiseDisplacement(motion, 0.0).ok());
  EXPECT_FALSE(FramewiseDisplacement({}).ok());
}

TEST(CensorMaskTest, FlagsExceedancesAndExtends) {
  const std::vector<double> fd{0.0, 0.1, 0.9, 0.1, 0.1, 1.2, 0.1};
  const auto plain = CensorMask(fd, 0.5);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(*plain, (std::vector<bool>{false, false, true, false, false, true,
                                       false}));
  const auto extended = CensorMask(fd, 0.5, 1);
  ASSERT_TRUE(extended.ok());
  EXPECT_EQ(*extended, (std::vector<bool>{false, false, true, true, false,
                                          true, true}));
  EXPECT_FALSE(CensorMask(fd, 0.0).ok());
  EXPECT_FALSE(CensorMask({}, 0.5).ok());
}

TEST(DropCensoredFramesTest, RemovesFlaggedColumns) {
  linalg::Matrix series{{1, 2, 3, 4, 5}, {10, 20, 30, 40, 50}};
  const std::vector<bool> censored{false, true, false, true, false};
  const auto kept = DropCensoredFrames(series, censored);
  ASSERT_TRUE(kept.ok());
  ASSERT_EQ(kept->cols(), 3u);
  EXPECT_DOUBLE_EQ((*kept)(0, 0), 1);
  EXPECT_DOUBLE_EQ((*kept)(0, 1), 3);
  EXPECT_DOUBLE_EQ((*kept)(0, 2), 5);
  EXPECT_DOUBLE_EQ((*kept)(1, 1), 30);
}

TEST(DropCensoredFramesTest, RejectsOverCensoring) {
  const linalg::Matrix series(2, 4, 1.0);
  EXPECT_FALSE(
      DropCensoredFrames(series, {true, true, false, false}).ok());  // 2 left.
  EXPECT_FALSE(DropCensoredFrames(series, {true, true}).ok());  // Size mismatch.
}

TEST(CmcTest, RanksAndCurve) {
  // Similarity: anonymous 0's true id ("a") scores best; anonymous 1's
  // true id ("b") scores second; anonymous 2's id is missing entirely.
  linalg::Matrix similarity{{0.9, 0.5, 0.1},
                            {0.2, 0.7, 0.2},
                            {0.1, 0.9, 0.3}};
  const std::vector<std::string> known{"a", "b", "c"};
  const std::vector<std::string> anonymous{"a", "b", "zz"};
  const auto ranks = core::TrueMatchRanks(similarity, known, anonymous);
  ASSERT_TRUE(ranks.ok());
  EXPECT_EQ((*ranks)[0], 1u);
  EXPECT_EQ((*ranks)[1], 2u);  // "c" row scores 0.9 > b's 0.7.
  EXPECT_EQ((*ranks)[2], 4u);  // Absent from the gallery.

  const auto curve = core::CumulativeMatchCurve(similarity, known, anonymous, 3);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 3u);
  EXPECT_NEAR((*curve)[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR((*curve)[1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR((*curve)[2], 2.0 / 3.0, 1e-12);  // "zz" never matches.
  // Non-decreasing.
  for (std::size_t k = 1; k < curve->size(); ++k) {
    EXPECT_GE((*curve)[k], (*curve)[k - 1]);
  }
}

TEST(CmcTest, RankOneMatchesIdentificationAccuracy) {
  linalg::Matrix similarity{{0.9, 0.2}, {0.1, 0.8}};
  const std::vector<std::string> ids{"x", "y"};
  const auto curve = core::CumulativeMatchCurve(similarity, ids, ids, 5);
  ASSERT_TRUE(curve.ok());
  const auto accuracy = core::IdentificationAccuracy(
      core::ArgmaxMatch(similarity), ids, ids);
  ASSERT_TRUE(accuracy.ok());
  EXPECT_DOUBLE_EQ((*curve)[0], *accuracy);
  EXPECT_EQ(curve->size(), 2u);  // Clamped to the gallery size.
}

TEST(CmcTest, RejectsBadInputs) {
  const linalg::Matrix similarity(2, 2, 0.5);
  EXPECT_FALSE(core::TrueMatchRanks(similarity, {"a"}, {"a", "b"}).ok());
  EXPECT_FALSE(
      core::CumulativeMatchCurve(similarity, {"a", "b"}, {"a", "b"}, 0).ok());
}

}  // namespace
}  // namespace neuroprint
