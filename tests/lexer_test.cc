// Tests for the lint lexer (tools/lint/lexer.h): the constructs that broke
// the old regex-over-stripped-text scanner must lex correctly — raw
// strings, line continuations, nested-looking block comments, char
// literals, and digit separators.

#include "tools/lint/lexer.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace neuroprint::lint {
namespace {

std::vector<std::string> Spellings(const LexResult& lex, TokenKind kind) {
  std::vector<std::string> out;
  for (const Token& tok : lex.tokens) {
    if (tok.kind == kind) out.push_back(tok.text);
  }
  return out;
}

bool HasIdent(const LexResult& lex, const std::string& text) {
  for (const Token& tok : lex.tokens) {
    if (tok.kind == TokenKind::kIdentifier && tok.text == text) return true;
  }
  return false;
}

TEST(LexerTest, BasicTokens) {
  const LexResult lex = Lex("int x = 42; foo(x);\n");
  const std::vector<std::string> idents =
      Spellings(lex, TokenKind::kIdentifier);
  ASSERT_EQ(idents.size(), 4u);
  EXPECT_EQ(idents[0], "int");
  EXPECT_EQ(idents[1], "x");
  EXPECT_EQ(idents[2], "foo");
  EXPECT_EQ(idents[3], "x");
  EXPECT_EQ(Spellings(lex, TokenKind::kNumber),
            std::vector<std::string>{"42"});
}

TEST(LexerTest, RawStringIsOneToken) {
  // The old scanner treated the `)` inside the raw string as code and lost
  // sync; the lexer must produce exactly one string token.
  const LexResult lex =
      Lex("const char* s = R\"(abort(); \"quoted\")\";\nint after = 1;\n");
  const std::vector<std::string> strings =
      Spellings(lex, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "R\"(abort(); \"quoted\")\"");
  EXPECT_FALSE(HasIdent(lex, "abort"));
  EXPECT_TRUE(HasIdent(lex, "after"));
}

TEST(LexerTest, RawStringWithDelimiterAndPrefix) {
  const LexResult lex =
      Lex("auto s = u8R\"x(a )\" not the end )x\"; int ok = 2;\n");
  const std::vector<std::string> strings =
      Spellings(lex, TokenKind::kString);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "u8R\"x(a )\" not the end )x\"");
  EXPECT_TRUE(HasIdent(lex, "ok"));
}

TEST(LexerTest, RawStringNewlinesAdvanceLineNumbers) {
  const LexResult lex = Lex("auto s = R\"(line\nline\nline)\";\nint y;\n");
  bool found = false;
  for (const Token& tok : lex.tokens) {
    if (tok.kind == TokenKind::kIdentifier && tok.text == "y") {
      EXPECT_EQ(tok.line, 4);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, LineContinuationSplicesTokens) {
  // A backslash-newline inside an identifier or directive splices lines;
  // the physical line counter must still advance.
  const LexResult lex = Lex("int a\\\n b;\nint c;\n");
  EXPECT_TRUE(HasIdent(lex, "a"));
  EXPECT_TRUE(HasIdent(lex, "b"));
  for (const Token& tok : lex.tokens) {
    if (tok.kind == TokenKind::kIdentifier && tok.text == "c") {
      EXPECT_EQ(tok.line, 3);
    }
  }
}

TEST(LexerTest, ContinuationExtendsDirectiveAndLineComment) {
  const LexResult lex =
      Lex("#define M(x) \\\n  do_thing(x)\n"
          "// comment continues \\\n   rand() still comment\nint code;\n");
  // do_thing belongs to the directive, rand() to the comment.
  for (const Token& tok : lex.tokens) {
    if (tok.kind == TokenKind::kIdentifier && tok.text == "do_thing") {
      EXPECT_TRUE(tok.in_preprocessor);
    }
    EXPECT_NE(tok.text, "rand");
  }
  ASSERT_EQ(lex.comments.size(), 1u);
  EXPECT_NE(lex.comments[0].text.find("still comment"), std::string::npos);
  EXPECT_TRUE(HasIdent(lex, "code"));
}

TEST(LexerTest, BlockCommentEndsAtFirstCloser) {
  // `/* /* */` is one comment ending at the first `*/` — no nesting.
  const LexResult lex = Lex("/* outer /* inner */ int live;\n");
  ASSERT_EQ(lex.comments.size(), 1u);
  EXPECT_EQ(lex.comments[0].text, " outer /* inner ");
  EXPECT_TRUE(HasIdent(lex, "live"));
}

TEST(LexerTest, UnterminatedBlockCommentRunsToEof) {
  const LexResult lex = Lex("int before;\n/* never closed\nint hidden;\n");
  EXPECT_TRUE(HasIdent(lex, "before"));
  EXPECT_FALSE(HasIdent(lex, "hidden"));
  ASSERT_EQ(lex.comments.size(), 1u);
}

TEST(LexerTest, CharLiterals) {
  const LexResult lex = Lex("char a = '\\'';\nchar b = 'x';\nchar c = L'y';\n");
  const std::vector<std::string> chars = Spellings(lex, TokenKind::kChar);
  ASSERT_EQ(chars.size(), 3u);
  EXPECT_EQ(chars[0], "'\\''");
  EXPECT_EQ(chars[1], "'x'");
  EXPECT_EQ(chars[2], "L'y'");
}

TEST(LexerTest, DigitSeparatorsAreNotCharLiterals) {
  // `1'000'000` must be one number token, not a number followed by a char
  // literal that swallows the rest of the line.
  const LexResult lex = Lex("int n = 1'000'000; int after = 0x1p-3;\n");
  const std::vector<std::string> numbers =
      Spellings(lex, TokenKind::kNumber);
  ASSERT_EQ(numbers.size(), 2u);  // 1'000'000, 0x1p-3, and nothing else
  EXPECT_EQ(numbers[0], "1'000'000");
  EXPECT_EQ(numbers[1], "0x1p-3");
  EXPECT_TRUE(HasIdent(lex, "after"));
}

TEST(LexerTest, PreprocessorTokensAreFlagged) {
  const LexResult lex = Lex("#include <vector>\nint code;\n");
  bool saw_code = false;
  for (const Token& tok : lex.tokens) {
    if (tok.text == "include" || tok.text == "vector" || tok.text == "#") {
      EXPECT_TRUE(tok.in_preprocessor) << tok.text;
    }
    if (tok.text == "code") {
      EXPECT_FALSE(tok.in_preprocessor);
      saw_code = true;
    }
  }
  EXPECT_TRUE(saw_code);
}

TEST(LexerTest, LongestMunchPunctuation) {
  const LexResult lex = Lex("a <<= b; c <=> d; e->*f; x >>= 1;\n");
  const std::vector<std::string> puncts = Spellings(lex, TokenKind::kPunct);
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<<="), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "<=>"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), "->*"), puncts.end());
  EXPECT_NE(std::find(puncts.begin(), puncts.end(), ">>="), puncts.end());
}

TEST(LexerTest, CommentOffsetsCoverMarkers) {
  const std::string src = "int a;  // tail\n/* block */ int b;\n";
  const LexResult lex = Lex(src);
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_EQ(src.substr(lex.comments[0].offset, 2), "//");
  EXPECT_EQ(src.substr(lex.comments[1].offset, 2), "/*");
  EXPECT_EQ(src.substr(lex.comments[1].offset + lex.comments[1].length - 2, 2),
            "*/");
}

}  // namespace
}  // namespace neuroprint::lint
