#include "bench/bench_util.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <numeric>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "linalg/simd/simd.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace neuroprint::bench {

void PrintHeader(const char* experiment_id, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("==============================================================\n");
}

void WriteCsvOrDie(const CsvWriter& csv, const std::string& filename) {
  const Status status = csv.WriteFile(filename);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", filename.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("\n[csv written: %s]\n", filename.c_str());
}

double IdentificationAccuracyPercent(const connectome::GroupMatrix& known,
                                     const connectome::GroupMatrix& anonymous,
                                     std::size_t num_features) {
  core::AttackOptions options;
  options.num_features = num_features;
  auto attack = core::DeanonymizationAttack::Fit(known, options);
  NP_CHECK(attack.ok()) << attack.status().ToString();
  auto result = attack->Identify(anonymous);
  NP_CHECK(result.ok()) << result.status().ToString();
  return 100.0 * result->accuracy;
}

SubjectSplit SplitSubjects(std::size_t n, std::size_t train_count, Rng& rng) {
  NP_CHECK_LE(train_count, n);
  std::vector<std::size_t> order = rng.Permutation(n);
  SubjectSplit split;
  split.train.assign(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(train_count));
  split.test.assign(order.begin() + static_cast<std::ptrdiff_t>(train_count),
                    order.end());
  return split;
}

connectome::GroupMatrix SelectSubjects(
    const connectome::GroupMatrix& group,
    const std::vector<std::size_t>& subjects) {
  std::vector<linalg::Vector> columns;
  std::vector<std::string> ids;
  columns.reserve(subjects.size());
  for (std::size_t s : subjects) {
    columns.push_back(group.SubjectColumn(s));
    ids.push_back(group.subject_ids()[s]);
  }
  auto result = connectome::GroupMatrix::FromFeatureColumns(columns, ids);
  NP_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

MeanStd Summarize(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  out.mean = std::accumulate(values.begin(), values.end(), 0.0) /
             static_cast<double>(values.size());
  if (values.size() > 1) {
    double sum = 0.0;
    for (double v : values) sum += (v - out.mean) * (v - out.mean);
    out.stddev = std::sqrt(sum / static_cast<double>(values.size() - 1));
  }
  return out;
}

bool FastMode() { return std::getenv("NEUROPRINT_BENCH_FAST") != nullptr; }

std::size_t ParseThreadsFlag(int* argc, char** argv) {
  constexpr const char kFlag[] = "--threads=";
  constexpr std::size_t kFlagLen = sizeof(kFlag) - 1;
  std::size_t threads = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kFlag, kFlagLen) == 0) {
      threads = ParseThreadCount(argv[i] + kFlagLen);
      if (threads == 0) {
        std::fprintf(stderr, "invalid thread count in '%s' (want 1..%zu)\n",
                     argv[i], kMaxThreadCount);
        std::exit(2);
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (threads > 0) SetDefaultThreadCount(threads);
  return threads;
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

namespace {

// High-water-mark resident set of this process in bytes, or a negative
// value when the platform has no getrusage. Linux reports ru_maxrss in
// KiB; Apple reports bytes.
double PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return -1.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss);
#else
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
#endif
#else
  return -1.0;
#endif
}

}  // namespace

void JsonReporter::BeginRecord(const std::string& name) {
  records_.push_back(Record{name, {}});
  const double rss = PeakRssBytes();
  // Negative (unsupported platform) serializes as null via the non-finite
  // path so the field is always present for schema checks.
  AddField("peak_rss_bytes",
           rss < 0.0 ? std::numeric_limits<double>::quiet_NaN() : rss);
  // Every record names the kernel ISA it ran under so perf numbers are
  // attributable: dispatch_isa is what the table resolved to at this
  // moment (benches may swap it with ScopedIsa mid-run), isa_override the
  // NEUROPRINT_ISA value latched at first dispatch ("" when unset).
  AddTextField("dispatch_isa", linalg::simd::IsaName(linalg::simd::ActiveIsa()));
  AddTextField("isa_override", linalg::simd::IsaOverrideEnv());
}

void JsonReporter::AddField(const std::string& key, double value) {
  NP_CHECK(!records_.empty()) << "AddField before BeginRecord";
  std::string serialized = "null";
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    serialized = buf;
  }
  records_.back().fields.emplace_back(key, serialized);
}

void JsonReporter::AddTextField(const std::string& key,
                                const std::string& value) {
  NP_CHECK(!records_.empty()) << "AddTextField before BeginRecord";
  records_.back().fields.emplace_back(key, JsonEscape(value));
}

std::string JsonReporter::ToString() const {
  std::string out = "[\n";
  for (std::size_t r = 0; r < records_.size(); ++r) {
    const Record& record = records_[r];
    out += "  {";
    out += "\"name\": " + JsonEscape(record.name);
    for (const auto& [key, value] : record.fields) {
      out += ", " + JsonEscape(key) + ": " + value;
    }
    out += '}';
    if (r + 1 < records_.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

Status JsonReporter::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IOError("cannot open for write: " + path);
  const std::string contents = ToString();
  file.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string ParseJsonFlag(int* argc, char** argv) {
  constexpr const char kFlag[] = "--json=";
  constexpr std::size_t kFlagLen = sizeof(kFlag) - 1;
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kFlag, kFlagLen) == 0) {
      path.assign(argv[i] + kFlagLen);
      if (path.empty()) {
        std::fprintf(stderr, "empty path in '%s'\n", argv[i]);
        std::exit(2);
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

void WriteJsonOrDie(const JsonReporter& json, const std::string& path) {
  if (path.empty()) return;
  const Status status = json.WriteFile(path);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("\n[json written: %s]\n", path.c_str());
}

namespace {

std::string ParsePathFlag(int* argc, char** argv, const char* flag,
                          std::size_t flag_len) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], flag, flag_len) == 0) {
      path.assign(argv[i] + flag_len);
      if (path.empty()) {
        std::fprintf(stderr, "empty path in '%s'\n", argv[i]);
        std::exit(2);
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

}  // namespace

std::string ParseTraceFlag(int* argc, char** argv) {
  constexpr const char kFlag[] = "--trace=";
  const std::string path = ParsePathFlag(argc, argv, kFlag, sizeof(kFlag) - 1);
  if (!path.empty()) trace::SetEnabled(true);
  return path;
}

std::string ParseMetricsFlag(int* argc, char** argv) {
  constexpr const char kFlag[] = "--metrics=";
  const std::string path = ParsePathFlag(argc, argv, kFlag, sizeof(kFlag) - 1);
  if (!path.empty()) trace::SetEnabled(true);
  return path;
}

void AppendMetricsRecords(JsonReporter& json) {
  const metrics::Snapshot snapshot = metrics::Registry::Global().TakeSnapshot();
  for (const auto& c : snapshot.counters) {
    json.BeginRecord("metric/" + c.name);
    json.AddTextField("kind", "counter");
    json.AddTextField("stability", metrics::StabilityName(c.stability));
    json.AddField("value", static_cast<double>(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    json.BeginRecord("metric/" + g.name);
    json.AddTextField("kind", "gauge");
    json.AddTextField("stability", metrics::StabilityName(g.stability));
    json.AddField("value", g.value);
  }
  for (const auto& h : snapshot.histograms) {
    json.BeginRecord("metric/" + h.name);
    json.AddTextField("kind", "histogram");
    json.AddTextField("stability", metrics::StabilityName(h.stability));
    json.AddField("count", static_cast<double>(h.count));
    json.AddField("sum", h.sum);
    json.AddField("min", h.count > 0 ? h.min : 0.0);
    json.AddField("max", h.count > 0 ? h.max : 0.0);
  }
}

void WriteTraceOrDie(const std::string& trace_path) {
  if (trace_path.empty()) return;
  const Status status = trace::WriteChromeTrace(trace_path);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", trace_path.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("[trace written: %s (%zu spans)]\n", trace_path.c_str(),
              trace::EventCount());
}

void WriteMetricsOrDie(const std::string& metrics_path) {
  if (metrics_path.empty()) return;
  const Status status = metrics::WriteJson(metrics_path);
  if (!status.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", metrics_path.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
  std::printf("[metrics written: %s]\n", metrics_path.c_str());
}

}  // namespace neuroprint::bench
