// Identification-service bench: enrollment throughput, batched identify
// throughput (cluster-pruned vs. the brute-force oracle), and single-probe
// latency percentiles on a large synthetic gallery — the ROADMAP item-1
// serving scenario. The gallery is generated in bounded slices and the
// index runs with retain_full_columns=false, so peak RSS measures the
// memory-lean serving configuration (fingerprints only).
//
// Invariants checked on every run (NP_CHECK, so CI smoke fails loudly):
// the pruned search returns exactly the brute-force top-1 for every probe,
// and in full mode the pruned throughput is >= 5x brute force on the
// >= 50k-subject gallery. A separate paper-shape section (64620 features x
// 100 subjects, the S900 release dimensions) re-checks parity where the
// accuracy numbers mirror the paper's Figure-1 regime.
//
// Flags: `--threads=N`, `--json=PATH` (BENCH_service.json in CI),
// `--trace=PATH`, `--metrics=PATH`.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "service/identification_index.h"
#include "service/synthetic_gallery.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace neuroprint;

namespace {

double Percentile(std::vector<double> sorted_ascending, double q) {
  NP_CHECK(!sorted_ascending.empty());
  std::sort(sorted_ascending.begin(), sorted_ascending.end());
  const double rank = q * static_cast<double>(sorted_ascending.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ascending.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ascending[lo] * (1.0 - frac) + sorted_ascending[hi] * frac;
}

// A strided probe sample (session 1) of `count` enrolled identities.
connectome::GroupMatrix MakeProbes(const service::SyntheticGalleryConfig& g,
                                   std::size_t count) {
  std::vector<linalg::Vector> columns;
  std::vector<std::string> ids;
  const std::size_t stride = std::max<std::size_t>(1, g.num_subjects / count);
  for (std::size_t j = 0; j < g.num_subjects && ids.size() < count;
       j += stride) {
    auto one = service::MakeSyntheticGallerySlice(g, 1, j, j + 1);
    NP_CHECK(one.ok()) << one.status().ToString();
    columns.push_back(one->SubjectColumn(0));
    ids.push_back(one->subject_ids()[0]);
  }
  auto probes = connectome::GroupMatrix::FromFeatureColumns(columns, ids);
  NP_CHECK(probes.ok()) << probes.status().ToString();
  return std::move(probes).value();
}

void CheckTopOneParity(const service::BatchIdentifyResult& pruned,
                       const service::BatchIdentifyResult& brute) {
  NP_CHECK(pruned.matches.size() == brute.matches.size());
  std::size_t mismatches = 0;
  for (std::size_t p = 0; p < pruned.matches.size(); ++p) {
    if (pruned.matches[p].subject_id != brute.matches[p].subject_id) {
      ++mismatches;
    }
  }
  NP_CHECK(mismatches == 0)
      << mismatches << " of " << pruned.matches.size()
      << " probes diverged from the brute-force top-1";
  NP_CHECK(pruned.accuracy >= brute.accuracy);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t flag_threads = bench::ParseThreadsFlag(&argc, argv);
  const std::string json_path = bench::ParseJsonFlag(&argc, argv);
  const std::string trace_path = bench::ParseTraceFlag(&argc, argv);
  const std::string metrics_path = bench::ParseMetricsFlag(&argc, argv);
  const std::size_t threads = ResolveThreadCount(ParallelContext{flag_threads});
  const bool fast = bench::FastMode();

  bench::PrintHeader("service", "gallery-scale identification service");

  service::SyntheticGalleryConfig gallery;
  gallery.num_subjects = fast ? 2000 : 50000;
  gallery.num_features = fast ? 256 : 512;
  gallery.noise_scale = 0.35;
  // Population structure (shared site/family components) is what cluster
  // pruning exploits; real connectome galleries are strongly structured.
  gallery.num_communities = fast ? 16 : 64;
  gallery.community_weight = 0.75;
  gallery.seed = 0xbe9c5e71ceULL;
  gallery.parallel.num_threads = flag_threads;
  const std::size_t reference_subjects = fast ? 128 : 256;
  const std::size_t enroll_slice = 5000;
  const std::size_t batch_probes = fast ? 200 : 512;
  const std::size_t latency_probes = fast ? 100 : 300;

  service::IndexOptions options;
  options.num_features = 100;  // The paper's top-t feature budget.
  options.num_shards = 8;
  // 3x the sqrt(shard) default: tighter cluster radii prune harder on
  // community-structured galleries, and the extra centroid scans are
  // cheap next to the members they skip.
  options.clusters_per_shard =
      3 * static_cast<std::size_t>(std::sqrt(
              static_cast<double>(gallery.num_subjects / options.num_shards)));
  options.retain_full_columns = false;  // Memory-lean serving.
  options.parallel.num_threads = flag_threads;

  std::printf("gallery: %zu subjects x %zu features, %zu selected, "
              "%zu shards, %zu threads%s\n\n",
              gallery.num_subjects, gallery.num_features, options.num_features,
              options.num_shards, threads, fast ? " [fast mode]" : "");

  // --- Enrollment: fit on a reference sample, stream the rest in slices.
  Stopwatch enroll_clock;
  auto reference =
      service::MakeSyntheticGallerySlice(gallery, 0, 0, reference_subjects);
  NP_CHECK(reference.ok()) << reference.status().ToString();
  auto index = service::IdentificationIndex::Create(*reference, options);
  NP_CHECK(index.ok()) << index.status().ToString();
  for (std::size_t begin = reference_subjects; begin < gallery.num_subjects;
       begin += enroll_slice) {
    const std::size_t end =
        std::min(begin + enroll_slice, gallery.num_subjects);
    auto slice = service::MakeSyntheticGallerySlice(gallery, 0, begin, end);
    NP_CHECK(slice.ok()) << slice.status().ToString();
    NP_CHECK(index->EnrollBatch(*slice).ok());
  }
  const double enroll_seconds = enroll_clock.ElapsedSeconds();
  NP_CHECK(index->size() == gallery.num_subjects);
  const double enroll_per_sec =
      static_cast<double>(index->size()) / enroll_seconds;
  std::printf("enroll      %8zu subjects  %8.2f s   %10.0f subjects/s\n",
              index->size(), enroll_seconds, enroll_per_sec);

  // --- Batched identification, pruned vs. brute force (same probes).
  const connectome::GroupMatrix probes = MakeProbes(gallery, batch_probes);
  {
    // Build clusters outside the timed region (a real service amortizes
    // rebuilds across the query stream).
    auto warmup = index->IdentifyBatch(probes);
    NP_CHECK(warmup.ok()) << warmup.status().ToString();
  }
  Stopwatch pruned_clock;
  auto pruned = index->IdentifyBatch(probes);
  const double pruned_seconds = pruned_clock.ElapsedSeconds();
  NP_CHECK(pruned.ok()) << pruned.status().ToString();

  Stopwatch brute_clock;
  auto brute = index->IdentifyBatchBruteForce(probes);
  const double brute_seconds = brute_clock.ElapsedSeconds();
  NP_CHECK(brute.ok()) << brute.status().ToString();

  CheckTopOneParity(*pruned, *brute);
  const double n_probes = static_cast<double>(probes.num_subjects());
  const double pruned_per_sec = n_probes / pruned_seconds;
  const double brute_per_sec = n_probes / brute_seconds;
  const double speedup = brute_seconds / pruned_seconds;
  double scanned = 0.0;
  for (const auto& match : pruned->matches) {
    scanned += static_cast<double>(match.candidates_scanned);
  }
  const double scanned_fraction =
      scanned / (n_probes * static_cast<double>(index->size()));
  std::printf("identify    pruned %10.0f probes/s   brute %10.0f probes/s   "
              "speedup %.2fx   scanned %.1f%%\n",
              pruned_per_sec, brute_per_sec, speedup,
              100.0 * scanned_fraction);
  std::printf("accuracy    pruned %.4f   brute %.4f (top-1, %zu probes)\n",
              pruned->accuracy, brute->accuracy, probes.num_subjects());
  if (!fast) {
    // Acceptance: >= 5x brute-force throughput on the >= 50k gallery.
    NP_CHECK(speedup >= 5.0) << "cluster pruning speedup " << speedup
                             << "x is below the 5x acceptance bar";
  }

  // --- Single-probe latency percentiles.
  std::vector<double> latencies;
  latencies.reserve(latency_probes);
  for (std::size_t p = 0; p < latency_probes; ++p) {
    const std::size_t col = p % probes.num_subjects();
    const linalg::Vector probe = probes.SubjectColumn(col);
    Stopwatch clock;
    auto match = index->Identify(probe);
    latencies.push_back(clock.ElapsedSeconds());
    NP_CHECK(match.ok()) << match.status().ToString();
  }
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  std::printf("latency     p50 %8.3f ms   p99 %8.3f ms (%zu probes)\n\n",
              1e3 * p50, 1e3 * p99, latency_probes);

  bench::JsonReporter json;
  json.BeginRecord("service_identify");
  json.AddField("gallery_subjects", static_cast<double>(index->size()));
  json.AddField("full_features", static_cast<double>(gallery.num_features));
  json.AddField("selected_features",
                static_cast<double>(index->selected_features().size()));
  json.AddField("num_shards", static_cast<double>(options.num_shards));
  json.AddField("threads", static_cast<double>(threads));
  json.AddField("batch_probes", n_probes);
  json.AddField("enroll_per_sec", enroll_per_sec);
  json.AddField("identify_per_sec_pruned", pruned_per_sec);
  json.AddField("identify_per_sec_brute", brute_per_sec);
  json.AddField("speedup", speedup);
  json.AddField("candidates_scanned_fraction", scanned_fraction);
  json.AddField("top1_accuracy_pruned", pruned->accuracy);
  json.AddField("top1_accuracy_brute", brute->accuracy);
  json.AddField("p50_seconds", p50);
  json.AddField("p99_seconds", p99);

  // --- Paper-shape parity: the S900 release dimensions (64620 features,
  // ~100 subjects). Shards stay flat at this population, so this checks
  // the no-pruning path and the subspace fit at the real aspect ratio.
  {
    service::SyntheticGalleryConfig paper;
    paper.num_subjects = fast ? 32 : 100;
    paper.num_features = fast ? 4096 : 64620;
    paper.noise_scale = 0.35;
    paper.seed = 0x900ULL;
    paper.parallel.num_threads = flag_threads;
    service::IndexOptions paper_options;
    paper_options.num_features = 100;
    paper_options.parallel.num_threads = flag_threads;
    auto paper_gallery = service::MakeSyntheticGallery(paper, 0);
    NP_CHECK(paper_gallery.ok());
    auto paper_index =
        service::IdentificationIndex::Create(*paper_gallery, paper_options);
    NP_CHECK(paper_index.ok()) << paper_index.status().ToString();
    auto paper_probes = service::MakeSyntheticGallery(paper, 1);
    NP_CHECK(paper_probes.ok());
    auto paper_pruned = paper_index->IdentifyBatch(*paper_probes);
    auto paper_brute = paper_index->IdentifyBatchBruteForce(*paper_probes);
    NP_CHECK(paper_pruned.ok() && paper_brute.ok());
    CheckTopOneParity(*paper_pruned, *paper_brute);
    std::printf("paper shape %zu x %zu: accuracy %.4f (== brute %.4f)\n",
                paper.num_features, paper.num_subjects,
                paper_pruned->accuracy, paper_brute->accuracy);
    json.BeginRecord("service_paper_shape");
    json.AddField("gallery_subjects", static_cast<double>(paper.num_subjects));
    json.AddField("full_features", static_cast<double>(paper.num_features));
    json.AddField("top1_accuracy_pruned", paper_pruned->accuracy);
    json.AddField("top1_accuracy_brute", paper_brute->accuracy);
  }

  bench::AppendMetricsRecords(json);
  bench::WriteJsonOrDie(json, json_path);
  bench::WriteTraceOrDie(trace_path);
  bench::WriteMetricsOrDie(metrics_path);
  return 0;
}
