// Ablation (Section 3.1.1 claim): the attack reduces 64620 features to
// "< 100 rows" with no accuracy loss. Sweeps the number of retained
// top-leverage features and reports identification accuracy plus matcher
// runtime, locating the accuracy plateau the paper's claim rests on.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/attack.h"
#include "core/matcher.h"
#include "sim/cohort.h"
#include "util/stopwatch.h"

using namespace neuroprint;

int main() {
  bench::PrintHeader("Ablation: feature count",
                     "identification accuracy vs retained leverage features");

  sim::CohortConfig config = sim::HcpLikeConfig();
  config.num_subjects = bench::FastMode() ? 16 : 50;
  auto cohort = sim::CohortSimulator::Create(config);
  NP_CHECK(cohort.ok());
  auto known =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  auto anonymous =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  NP_CHECK(known.ok() && anonymous.ok());

  // Leverage scores once; sweeps reuse them.
  auto scores = core::ComputeLeverageScores(known->data());
  NP_CHECK(scores.ok());

  CsvWriter csv;
  csv.SetHeader({"num_features", "accuracy_percent", "match_millis"});
  std::printf("\n%12s %12s %14s\n", "features", "accuracy", "match time");
  for (const std::size_t t : {5u, 10u, 25u, 50u, 100u, 250u, 1000u, 5000u,
                              20000u, 64620u}) {
    const auto features = core::TopKIndices(*scores, t);
    auto reduced_known = known->RestrictToFeatures(features);
    auto reduced_anon = anonymous->RestrictToFeatures(features);
    NP_CHECK(reduced_known.ok() && reduced_anon.ok());
    Stopwatch clock;
    auto similarity = core::SimilarityMatrix(*reduced_known, *reduced_anon);
    NP_CHECK(similarity.ok());
    auto accuracy = core::IdentificationAccuracy(
        core::ArgmaxMatch(*similarity), reduced_known->subject_ids(),
        reduced_anon->subject_ids());
    NP_CHECK(accuracy.ok());
    const double millis = clock.ElapsedMillis();
    std::printf("%12zu %11.1f%% %11.2fms\n", features.size(),
                100.0 * *accuracy, millis);
    csv.AddNumericRow({static_cast<double>(features.size()),
                       100.0 * *accuracy, millis});
  }
  std::printf(
      "\nexpected: accuracy plateaus near its maximum well below 100 "
      "features\n(the paper's \"64620 -> < 100 rows\" reduction), while "
      "match cost grows\nlinearly with the feature count.\n");
  bench::WriteCsvOrDie(csv, "ablation_features.csv");
  return 0;
}
