// Figures 7, 8, 9: de-anonymization of the ADHD-200-like cohort.
//
//   Figure 7 — similarity matrix restricted to ADHD subtype-1 subjects
//   Figure 8 — similarity matrix restricted to ADHD subtype-3 subjects
//   Figure 9 — the full cohort (cases + controls)
//
// Paper results: strong diagonals in all three; leverage features chosen
// on a training split transfer to held-out test subjects with accuracy
// 97.2 ± 0.9%; full-cohort session-to-session matching reaches
// 94.12 ± 3.4%. The AAL2-like atlas gives 6670 features, matching the
// paper's ADHD feature count.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/matcher.h"
#include "sim/cohort.h"

using namespace neuroprint;

namespace {

// Similarity stats + identification for a subject subset, CSV-dumping the
// matrix under the given figure tag.
void RunSubset(const connectome::GroupMatrix& known,
               const connectome::GroupMatrix& anonymous,
               const std::vector<std::size_t>& subjects, const char* figure,
               const char* description) {
  const auto known_subset = bench::SelectSubjects(known, subjects);
  const auto anon_subset = bench::SelectSubjects(anonymous, subjects);
  core::AttackOptions options;
  options.num_features = 100;
  auto attack = core::DeanonymizationAttack::Fit(known_subset, options);
  NP_CHECK(attack.ok());
  auto result = attack->Identify(anon_subset);
  NP_CHECK(result.ok());
  auto stats = core::ComputeSimilarityStats(result->similarity);
  NP_CHECK(stats.ok());
  std::printf("%-44s  n=%2zu  acc %6.1f%%  diag %.3f  offdiag %.3f\n",
              description, subjects.size(), 100.0 * result->accuracy,
              stats->diagonal_mean, stats->off_diagonal_mean);

  CsvWriter csv;
  csv.SetHeader({"known_subject", "anonymous_subject", "similarity"});
  for (std::size_t i = 0; i < result->similarity.rows(); ++i) {
    for (std::size_t j = 0; j < result->similarity.cols(); ++j) {
      csv.AddNumericRow({static_cast<double>(i), static_cast<double>(j),
                         result->similarity(i, j)});
    }
  }
  bench::WriteCsvOrDie(csv, std::string(figure) + "_adhd_similarity.csv");
}

}  // namespace

int main() {
  bench::PrintHeader("Figures 7/8/9",
                     "de-anonymization of the ADHD-200-like cohort");

  const sim::CohortConfig config = sim::AdhdLikeConfig();
  auto cohort = sim::CohortSimulator::Create(config);
  NP_CHECK(cohort.ok());
  auto known =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  auto anonymous =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  NP_CHECK(known.ok() && anonymous.ok());
  std::printf("cohort: %zu subjects, %zu regions, %zu features "
              "(paper: 6670 AAL2 features)\n\n",
              config.num_subjects, config.num_regions, known->num_features());

  // Partition subjects by group (0 = controls, 1..3 = ADHD subtypes).
  std::vector<std::vector<std::size_t>> by_group(config.group_sizes.size());
  std::vector<std::size_t> all;
  for (std::size_t s = 0; s < config.num_subjects; ++s) {
    by_group[cohort->GroupOf(s)].push_back(s);
    all.push_back(s);
  }

  RunSubset(*known, *anonymous, by_group[1], "fig7",
            "Figure 7: ADHD subtype 1 only");
  RunSubset(*known, *anonymous, by_group[3], "fig8",
            "Figure 8: ADHD subtype 3 only");
  RunSubset(*known, *anonymous, all, "fig9",
            "Figure 9: full cohort (cases + controls)");

  // Section 3.3.4's train/test protocol: leverage features are selected on
  // a training split and transferred to held-out test subjects.
  std::printf("\ntrain/test feature-transfer protocol (paper: 97.2 ± 0.9%%):\n");
  std::vector<double> accuracies;
  Rng rng(777);
  const int repeats = 20;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto split =
        bench::SplitSubjects(config.num_subjects, config.num_subjects / 2, rng);
    const auto train_known = bench::SelectSubjects(*known, split.train);
    const auto test_known = bench::SelectSubjects(*known, split.test);
    const auto test_anon = bench::SelectSubjects(*anonymous, split.test);

    // Features from the TRAIN split; matching happens among TEST subjects.
    core::AttackOptions options;
    options.num_features = 100;
    auto feature_source = core::DeanonymizationAttack::Fit(train_known, options);
    NP_CHECK(feature_source.ok());
    auto reduced_known =
        test_known.RestrictToFeatures(feature_source->selected_features());
    auto reduced_anon =
        test_anon.RestrictToFeatures(feature_source->selected_features());
    NP_CHECK(reduced_known.ok() && reduced_anon.ok());
    auto similarity = core::SimilarityMatrix(*reduced_known, *reduced_anon);
    NP_CHECK(similarity.ok());
    auto accuracy = core::IdentificationAccuracy(
        core::ArgmaxMatch(*similarity), reduced_known->subject_ids(),
        reduced_anon->subject_ids());
    NP_CHECK(accuracy.ok());
    accuracies.push_back(100.0 * *accuracy);
  }
  const auto stats = bench::Summarize(accuracies);
  std::printf("  held-out test accuracy over %d splits: %.1f ± %.1f%%\n",
              repeats, stats.mean, stats.stddev);

  CsvWriter summary;
  summary.SetHeader({"protocol", "accuracy_mean", "accuracy_std", "paper"});
  summary.AddRow({"train_test_transfer", StrFormat("%.2f", stats.mean),
                  StrFormat("%.2f", stats.stddev), "97.2 ± 0.9"});
  bench::WriteCsvOrDie(summary, "fig9_adhd_transfer.csv");
  return 0;
}
