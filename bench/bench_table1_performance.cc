// Table 1: task-performance prediction error (normalized RMSE, percent)
// for the four HCP conditions with behavioural accuracy metrics, over
// repeated random 80/20 train/test splits.
//
// Paper values: train 0.28-0.57%, test 0.60-2.74% (Language 0.33/1.52,
// Emotion 0.28/0.60, Relational 0.44/2.74, WM 0.57/1.93).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/task_performance.h"
#include "sim/cohort.h"
#include "util/stopwatch.h"

using namespace neuroprint;

int main() {
  bench::PrintHeader("Table 1", "task-performance prediction nRMSE (train/test)");

  sim::CohortConfig config = sim::HcpLikeConfig();
  if (bench::FastMode()) config.num_subjects = 30;
  auto cohort = sim::CohortSimulator::Create(config);
  NP_CHECK(cohort.ok());
  const std::size_t subjects = config.num_subjects;
  const std::size_t train_count = subjects * 4 / 5;  // The paper's 80/20.
  const int repeats = bench::FastMode() ? 5 : 25;

  const sim::TaskType tasks[] = {
      sim::TaskType::kLanguage, sim::TaskType::kEmotion,
      sim::TaskType::kRelational, sim::TaskType::kWorkingMemory};
  const double paper_train[] = {0.33, 0.28, 0.44, 0.57};
  const double paper_test[] = {1.52, 0.60, 2.74, 1.93};

  CsvWriter csv;
  csv.SetHeader({"task", "train_nrmse_mean", "train_nrmse_std",
                 "test_nrmse_mean", "test_nrmse_std", "paper_train",
                 "paper_test"});
  std::printf("\n%-16s %18s %18s   %s\n", "task", "train nRMSE (%)",
              "test nRMSE (%)", "paper (train/test)");

  for (std::size_t k = 0; k < 4; ++k) {
    const sim::TaskType task = tasks[k];
    Stopwatch clock;
    auto group = cohort->BuildGroupMatrix(task, sim::Encoding::kLeftRight);
    NP_CHECK(group.ok());
    linalg::Vector scores(subjects);
    for (std::size_t s = 0; s < subjects; ++s) {
      scores[s] = cohort->PerformanceScore(s, task);
    }

    std::vector<double> train_errors, test_errors;
    Rng rng(1000 + k);
    for (int rep = 0; rep < repeats; ++rep) {
      const auto split = bench::SplitSubjects(subjects, train_count, rng);
      const auto train_group = bench::SelectSubjects(*group, split.train);
      const auto test_group = bench::SelectSubjects(*group, split.test);
      linalg::Vector train_scores, test_scores;
      for (std::size_t s : split.train) train_scores.push_back(scores[s]);
      for (std::size_t s : split.test) test_scores.push_back(scores[s]);

      auto eval = core::EvaluatePerformancePrediction(
          train_group, train_scores, test_group, test_scores);
      NP_CHECK(eval.ok()) << eval.status().ToString();
      train_errors.push_back(eval->train_nrmse_percent);
      test_errors.push_back(eval->test_nrmse_percent);
    }
    const auto train_stats = bench::Summarize(train_errors);
    const auto test_stats = bench::Summarize(test_errors);
    std::printf("%-16s %9.2f ± %-6.2f %9.2f ± %-6.2f   %.2f / %.2f   (%.0fs)\n",
                sim::TaskName(task), train_stats.mean, train_stats.stddev,
                test_stats.mean, test_stats.stddev, paper_train[k],
                paper_test[k], clock.ElapsedSeconds());
    csv.AddRow({sim::TaskName(task), StrFormat("%.3f", train_stats.mean),
                StrFormat("%.3f", train_stats.stddev),
                StrFormat("%.3f", test_stats.mean),
                StrFormat("%.3f", test_stats.stddev),
                StrFormat("%.2f", paper_train[k]),
                StrFormat("%.2f", paper_test[k])});
  }
  std::printf("\npaper shape: train < 1%%, test a few percent, test > train.\n");
  bench::WriteCsvOrDie(csv, "table1_performance.csv");
  return 0;
}
