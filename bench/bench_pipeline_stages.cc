// Figure 4 (the preprocessing pipeline): per-stage wall-clock cost of the
// full voxel-level pipeline on a rendered synthetic run with planted
// artifacts. The paper presents the pipeline as a diagram; this bench
// realizes it and reports where the time goes.
//
// Threading: `--threads=N` (default: NEUROPRINT_THREADS / hardware) sets
// the worker count for the parallelized stages. Every configuration is
// run twice — once at 1 thread as the baseline, once at N — and the
// per-stage speedup is reported; outputs are bitwise-identical across
// thread counts (see util/thread_pool.h), so only the times differ.
// `--json=PATH` additionally emits the per-stage records as JSON.
// `--trace=PATH` / `--metrics=PATH` enable the observability layer
// (util/trace.h, util/metrics.h) and write the chrome://tracing span
// dump / metrics JSON; with `--json` the metrics also ride along as
// "metric/..." records.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "atlas/synthetic_atlas.h"
#include "bench/bench_util.h"
#include "connectome/connectome.h"
#include "preprocess/pipeline.h"
#include "sim/cohort.h"
#include "sim/voxel_render.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace neuroprint;

namespace {

// Stage name -> seconds for one full pipeline pass (plus the connectome
// build on the resulting region series, which the attack always runs
// next and which is parallelized the same way).
std::vector<std::pair<std::string, double>> TimeStages(
    const image::Volume4D& run, const atlas::Atlas& atlas,
    preprocess::PipelineConfig config, std::size_t threads) {
  config.parallel.num_threads = threads;
  auto output = preprocess::RunPipeline(run, atlas, config);
  NP_CHECK(output.ok()) << output.status().ToString();
  std::vector<std::pair<std::string, double>> stages =
      std::move(output->stage_seconds);
  Stopwatch clock;
  auto conn =
      connectome::BuildConnectome(output->region_series, config.parallel);
  NP_CHECK(conn.ok()) << conn.status().ToString();
  stages.emplace_back("connectome_build", clock.ElapsedSeconds());
  return stages;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t flag_threads = bench::ParseThreadsFlag(&argc, argv);
  const std::string json_path = bench::ParseJsonFlag(&argc, argv);
  const std::string trace_path = bench::ParseTraceFlag(&argc, argv);
  const std::string metrics_path = bench::ParseMetricsFlag(&argc, argv);
  const std::size_t threads = ResolveThreadCount(
      ParallelContext{flag_threads});

  bench::PrintHeader("Figure 4", "preprocessing pipeline stage costs");

  // A Glasser-like atlas on the default grid, one resting scan rendered
  // to voxels with motion + drift planted.
  atlas::SyntheticAtlasConfig atlas_config;
  if (bench::FastMode()) {
    atlas_config.nx = 20;
    atlas_config.ny = 24;
    atlas_config.nz = 20;
    atlas_config.num_regions = 60;
  }
  auto atlas = atlas::GenerateSyntheticAtlas(atlas_config);
  NP_CHECK(atlas.ok());

  sim::CohortConfig cohort_config = sim::HcpLikeConfig();
  cohort_config.num_subjects = 2;
  cohort_config.num_regions = atlas->num_regions();
  cohort_config.frames_override = bench::FastMode() ? 40 : 120;
  auto cohort = sim::CohortSimulator::Create(cohort_config);
  NP_CHECK(cohort.ok());
  auto series = cohort->SimulateRegionSeries(0, sim::TaskType::kRest,
                                             sim::Encoding::kLeftRight);
  NP_CHECK(series.ok());

  Rng rng(2024);
  sim::VoxelRenderConfig render;
  render.motion_step = 0.05;
  render.drift_amplitude = 15.0;
  Stopwatch clock;
  auto run = sim::RenderVoxelRun(*atlas, *series, render, rng);
  NP_CHECK(run.ok());
  std::printf("rendered %zux%zux%zux%zu run in %.1fs\n", run->nx(), run->ny(),
              run->nz(), run->nt(), clock.ElapsedSeconds());

  preprocess::PipelineConfig config = preprocess::RestingStateConfig();
  config.registration.sample_stride = 2;

  const auto baseline = TimeStages(*run, *atlas, config, 1);
  const auto threaded = TimeStages(*run, *atlas, config, threads);
  NP_CHECK_EQ(baseline.size(), threaded.size());

  double total_1t = 0.0;
  double total_nt = 0.0;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    total_1t += baseline[i].second;
    total_nt += threaded[i].second;
  }

  CsvWriter csv;
  bench::JsonReporter json;
  csv.SetHeader({"stage", "seconds_1thread",
                 StrFormat("seconds_%zuthreads", threads), "speedup",
                 "percent_of_total"});
  std::printf("\nthreads: %zu (baseline: 1)\n", threads);
  std::printf("%-26s %12s %12s %8s %8s\n", "stage", "sec @1t",
              StrFormat("sec @%zut", threads).c_str(), "speedup", "share");
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    const std::string& stage = baseline[i].first;
    const double sec_1t = baseline[i].second;
    const double sec_nt = threaded[i].second;
    const double speedup = sec_nt > 0.0 ? sec_1t / sec_nt : 0.0;
    std::printf("%-26s %12.3f %12.3f %7.2fx %7.1f%%\n", stage.c_str(), sec_1t,
                sec_nt, speedup, 100.0 * sec_nt / total_nt);
    csv.AddRow({stage, StrFormat("%.4f", sec_1t), StrFormat("%.4f", sec_nt),
                StrFormat("%.2f", speedup),
                StrFormat("%.1f", 100.0 * sec_nt / total_nt)});
    json.BeginRecord(stage);
    json.AddField("threads", static_cast<double>(threads));
    json.AddField("seconds_1thread", sec_1t);
    json.AddField("seconds_nthreads", sec_nt);
    json.AddField("speedup", speedup);
  }
  std::printf("%-26s %12.3f %12.3f %7.2fx %7s\n", "TOTAL", total_1t, total_nt,
              total_nt > 0.0 ? total_1t / total_nt : 0.0, "100%");
  if (!trace_path.empty() || !metrics_path.empty()) {
    bench::AppendMetricsRecords(json);
  }
  bench::WriteCsvOrDie(csv, "fig4_pipeline_stages.csv");
  bench::WriteJsonOrDie(json, json_path);
  bench::WriteTraceOrDie(trace_path);
  bench::WriteMetricsOrDie(metrics_path);
  return 0;
}
