// Figure 4 (the preprocessing pipeline): per-stage wall-clock cost of the
// full voxel-level pipeline on a rendered synthetic run with planted
// artifacts. The paper presents the pipeline as a diagram; this bench
// realizes it and reports where the time goes.

#include <cstdio>

#include "atlas/synthetic_atlas.h"
#include "bench/bench_util.h"
#include "preprocess/pipeline.h"
#include "sim/cohort.h"
#include "sim/voxel_render.h"
#include "util/stopwatch.h"

using namespace neuroprint;

int main() {
  bench::PrintHeader("Figure 4", "preprocessing pipeline stage costs");

  // A Glasser-like atlas on the default grid, one resting scan rendered
  // to voxels with motion + drift planted.
  atlas::SyntheticAtlasConfig atlas_config;
  if (bench::FastMode()) {
    atlas_config.nx = 20;
    atlas_config.ny = 24;
    atlas_config.nz = 20;
    atlas_config.num_regions = 60;
  }
  auto atlas = atlas::GenerateSyntheticAtlas(atlas_config);
  NP_CHECK(atlas.ok());

  sim::CohortConfig cohort_config = sim::HcpLikeConfig();
  cohort_config.num_subjects = 2;
  cohort_config.num_regions = atlas->num_regions();
  cohort_config.frames_override = bench::FastMode() ? 40 : 120;
  auto cohort = sim::CohortSimulator::Create(cohort_config);
  NP_CHECK(cohort.ok());
  auto series = cohort->SimulateRegionSeries(0, sim::TaskType::kRest,
                                             sim::Encoding::kLeftRight);
  NP_CHECK(series.ok());

  Rng rng(2024);
  sim::VoxelRenderConfig render;
  render.motion_step = 0.05;
  render.drift_amplitude = 15.0;
  Stopwatch clock;
  auto run = sim::RenderVoxelRun(*atlas, *series, render, rng);
  NP_CHECK(run.ok());
  std::printf("rendered %zux%zux%zux%zu run in %.1fs\n", run->nx(), run->ny(),
              run->nz(), run->nt(), clock.ElapsedSeconds());

  preprocess::PipelineConfig config = preprocess::RestingStateConfig();
  config.registration.sample_stride = 2;
  clock.Restart();
  auto output = preprocess::RunPipeline(*run, *atlas, config);
  NP_CHECK(output.ok()) << output.status().ToString();
  const double total = clock.ElapsedSeconds();

  CsvWriter csv;
  csv.SetHeader({"stage", "seconds", "percent_of_total"});
  std::printf("\n%-26s %10s %8s\n", "stage", "seconds", "share");
  for (const auto& [stage, seconds] : output->stage_seconds) {
    std::printf("%-26s %10.3f %7.1f%%\n", stage.c_str(), seconds,
                100.0 * seconds / total);
    csv.AddRow({stage, StrFormat("%.4f", seconds),
                StrFormat("%.1f", 100.0 * seconds / total)});
  }
  std::printf("%-26s %10.3f %7s\n", "TOTAL", total, "100%");
  std::printf("\nbrain voxels: %zu of %zu; motion estimated on %zu frames\n",
              output->mask.CountSet(), run->voxels_per_volume(),
              output->motion.size());
  bench::WriteCsvOrDie(csv, "fig4_pipeline_stages.csv");
  return 0;
}
