// Durability bench: measures what crash recovery costs at gallery scale.
// Builds a durable index (snapshot holding the bulk of the gallery, a
// write-ahead journal tail of recent enrollments), then times two ways
// of getting a serving index back:
//
//   * replay-on-open — OpenDurable: load the checksummed snapshot and
//     replay the journal tail; and
//   * full re-enrollment — refit the subspace on the reference and
//     EnrollBatch the whole gallery from (regenerated) columns.
//
// Invariants checked on every run (NP_CHECK, so CI smoke fails loudly):
// the reopened and rebuilt indexes hold the same identities and answer a
// brute-force probe batch with bitwise-identical similarities. In full
// mode (5k subjects) replay must be >= 5x faster than re-enrollment —
// the ROADMAP acceptance bar for the durability layer; at smoke scale
// the ratio is only recorded (the fixed costs dominate a 600-subject
// open).
//
// Flags: `--threads=N`, `--json=PATH` (BENCH_durability.json in CI).

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "service/identification_index.h"
#include "service/synthetic_gallery.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace neuroprint;

namespace {

// A strided session-1 probe sample of `count` enrolled identities,
// generated one subject at a time (same shape as bench_out_of_core).
connectome::GroupMatrix MakeProbes(const service::SyntheticGalleryConfig& g,
                                   std::size_t count) {
  std::vector<linalg::Vector> columns;
  std::vector<std::string> ids;
  const std::size_t stride = std::max<std::size_t>(1, g.num_subjects / count);
  for (std::size_t j = 0; j < g.num_subjects && ids.size() < count;
       j += stride) {
    auto one = service::MakeSyntheticGallerySlice(g, 1, j, j + 1);
    NP_CHECK(one.ok()) << one.status().ToString();
    columns.push_back(one->SubjectColumn(0));
    ids.push_back(one->subject_ids()[0]);
  }
  auto probes = connectome::GroupMatrix::FromFeatureColumns(columns, ids);
  NP_CHECK(probes.ok()) << probes.status().ToString();
  return std::move(probes).value();
}

void CheckBitwiseParity(const service::BatchIdentifyResult& reopened,
                        const service::BatchIdentifyResult& rebuilt) {
  NP_CHECK(reopened.matches.size() == rebuilt.matches.size());
  for (std::size_t p = 0; p < reopened.matches.size(); ++p) {
    NP_CHECK(reopened.matches[p].subject_id == rebuilt.matches[p].subject_id)
        << "probe " << p << ": reopened matched "
        << reopened.matches[p].subject_id << ", rebuilt "
        << rebuilt.matches[p].subject_id;
    NP_CHECK(std::bit_cast<std::uint64_t>(reopened.matches[p].similarity) ==
             std::bit_cast<std::uint64_t>(rebuilt.matches[p].similarity))
        << "probe " << p << " similarity bits diverged";
  }
  NP_CHECK(std::bit_cast<std::uint64_t>(reopened.accuracy) ==
           std::bit_cast<std::uint64_t>(rebuilt.accuracy));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t flag_threads = bench::ParseThreadsFlag(&argc, argv);
  const std::string json_path = bench::ParseJsonFlag(&argc, argv);
  const std::size_t threads = ResolveThreadCount(ParallelContext{flag_threads});
  const bool fast = bench::FastMode();

  bench::PrintHeader("durability",
                     "crash recovery: replay-on-open vs full re-enrollment");

  service::SyntheticGalleryConfig gallery;
  gallery.num_subjects = fast ? 600 : 5000;
  gallery.num_features = fast ? 2048 : 16384;
  gallery.noise_scale = 0.35;
  gallery.seed = 0x00d07ab1ULL;
  gallery.parallel.num_threads = flag_threads;
  const std::size_t reference_subjects = fast ? 64 : 128;
  // Subjects enrolled after the last checkpoint: their journal records
  // (full columns) are what replay-on-open has to re-apply.
  const std::size_t journal_tail = fast ? 64 : 256;
  const std::size_t gen_slice = 256;  // Bounded generation batches.
  const std::size_t batch_probes = 32;

  service::IndexOptions options;
  options.num_features = 100;
  options.retain_full_columns = false;  // Memory-lean serving.
  options.parallel.num_threads = flag_threads;

  service::DurabilityOptions durability;
  durability.data_dir =
      std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
      "/bench_durability.data";
  durability.compact_min_bytes = 0;  // The bench compacts explicitly.
  std::filesystem::remove_all(durability.data_dir);

  std::printf("gallery: %zu subjects x %zu features, %zu reference, "
              "journal tail %zu, %zu threads%s\n\n",
              gallery.num_subjects, gallery.num_features, reference_subjects,
              journal_tail, threads, fast ? " [fast mode]" : "");

  // --- Phase 1: build the durable index the way a long-lived service
  // does — bulk enrollment, a checkpoint, then a tail of journaled
  // mutations the next crash would have to replay.
  const std::size_t checkpointed_subjects =
      gallery.num_subjects - journal_tail;
  auto reference =
      service::MakeSyntheticGallerySlice(gallery, 0, 0, reference_subjects);
  NP_CHECK(reference.ok()) << reference.status().ToString();
  Stopwatch build_clock;
  double checkpoint_seconds = 0.0;
  std::uint64_t journal_bytes = 0;
  {
    auto index = service::IdentificationIndex::CreateDurable(
        *reference, durability, options);
    NP_CHECK(index.ok()) << index.status().ToString();
    for (std::size_t begin = reference_subjects;
         begin < checkpointed_subjects; begin += gen_slice) {
      const std::size_t end = std::min(begin + gen_slice,
                                       checkpointed_subjects);
      auto slice = service::MakeSyntheticGallerySlice(gallery, 0, begin, end);
      NP_CHECK(slice.ok()) << slice.status().ToString();
      NP_CHECK(index->EnrollBatch(*slice).ok());
    }
    Stopwatch checkpoint_clock;
    NP_CHECK(index->Checkpoint().ok());
    checkpoint_seconds = checkpoint_clock.ElapsedSeconds();
    for (std::size_t begin = checkpointed_subjects;
         begin < gallery.num_subjects; begin += gen_slice) {
      const std::size_t end =
          std::min(begin + gen_slice, gallery.num_subjects);
      auto slice = service::MakeSyntheticGallerySlice(gallery, 0, begin, end);
      NP_CHECK(slice.ok()) << slice.status().ToString();
      NP_CHECK(index->EnrollBatch(*slice).ok());
    }
    NP_CHECK(index->size() == gallery.num_subjects);
    journal_bytes = index->journal_size_bytes();
  }  // The "crash": the index object goes away without another checkpoint.
  const double build_seconds = build_clock.ElapsedSeconds();
  std::error_code ec;
  const double snapshot_bytes = static_cast<double>(std::filesystem::file_size(
      std::filesystem::path(durability.data_dir) / "snapshot.npix", ec));
  std::printf("build        %8zu subjects  %8.2f s (checkpoint %.3f s)  "
              "snapshot %6.1f MiB  journal %6.1f MiB\n",
              gallery.num_subjects, build_seconds, checkpoint_seconds,
              snapshot_bytes / (1024.0 * 1024.0),
              static_cast<double>(journal_bytes) / (1024.0 * 1024.0));

  // --- Phase 2: recovery via replay-on-open.
  Stopwatch replay_clock;
  auto reopened = service::IdentificationIndex::OpenDurable(durability,
                                                            options);
  const double replay_seconds = replay_clock.ElapsedSeconds();
  NP_CHECK(reopened.ok()) << reopened.status().ToString();
  NP_CHECK(reopened->size() == gallery.num_subjects);
  std::printf("replay-open  %8zu subjects  %8.3f s\n", reopened->size(),
              replay_seconds);

  // --- Phase 3: recovery by re-enrolling everything from source data.
  // Generation cost is excluded — the clock only covers fit + enrollment
  // — so the comparison is conservative in re-enrollment's favor.
  Stopwatch fit_clock;
  auto rebuilt = service::IdentificationIndex::Create(*reference, options);
  NP_CHECK(rebuilt.ok()) << rebuilt.status().ToString();
  double reenroll_seconds = fit_clock.ElapsedSeconds();
  for (std::size_t begin = reference_subjects; begin < gallery.num_subjects;
       begin += gen_slice) {
    const std::size_t end = std::min(begin + gen_slice, gallery.num_subjects);
    auto slice = service::MakeSyntheticGallerySlice(gallery, 0, begin, end);
    NP_CHECK(slice.ok()) << slice.status().ToString();
    Stopwatch enroll_clock;
    NP_CHECK(rebuilt->EnrollBatch(*slice).ok());
    reenroll_seconds += enroll_clock.ElapsedSeconds();
  }
  NP_CHECK(rebuilt->size() == reopened->size());
  std::printf("re-enroll    %8zu subjects  %8.3f s (fit + enroll only)\n",
              rebuilt->size(), reenroll_seconds);

  // --- Parity: recovery must not change a single answer.
  const connectome::GroupMatrix probes = MakeProbes(gallery, batch_probes);
  auto reopened_result = reopened->IdentifyBatchBruteForce(probes);
  auto rebuilt_result = rebuilt->IdentifyBatchBruteForce(probes);
  NP_CHECK(reopened_result.ok() && rebuilt_result.ok());
  CheckBitwiseParity(*reopened_result, *rebuilt_result);

  const double speedup =
      replay_seconds > 0.0 ? reenroll_seconds / replay_seconds : 0.0;
  std::printf("parity       %zu probes bit-identical   accuracy %.4f   "
              "replay speedup %.2fx\n\n",
              probes.num_subjects(), reopened_result->accuracy, speedup);
  if (!fast) {
    // Acceptance: replay-on-open >= 5x faster than full re-enrollment at
    // the 5k-subject gallery. At smoke scale fixed costs dominate both
    // sides, so the ratio is only recorded.
    NP_CHECK(speedup >= 5.0)
        << "replay-on-open took " << replay_seconds << " s vs "
        << reenroll_seconds << " s re-enrollment; speedup " << speedup
        << "x is below the 5x acceptance bar";
  }

  bench::JsonReporter json;
  json.BeginRecord("durability_replay");
  json.AddField("gallery_subjects", static_cast<double>(gallery.num_subjects));
  json.AddField("full_features", static_cast<double>(gallery.num_features));
  json.AddField("journal_tail_subjects", static_cast<double>(journal_tail));
  json.AddField("threads", static_cast<double>(threads));
  json.AddField("snapshot_bytes", snapshot_bytes);
  json.AddField("journal_bytes", static_cast<double>(journal_bytes));
  json.AddField("checkpoint_seconds", checkpoint_seconds);
  json.AddField("replay_open_seconds", replay_seconds);
  json.AddField("reenroll_seconds", reenroll_seconds);
  json.AddField("replay_speedup", speedup);
  json.AddField("top1_accuracy", reopened_result->accuracy);

  std::filesystem::remove_all(durability.data_dir);
  bench::WriteJsonOrDie(json, json_path);
  return 0;
}
