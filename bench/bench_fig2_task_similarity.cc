// Figure 2: pairwise similarity of LANGUAGE-task connectomes.
//
// Paper result: the diagonal still dominates (same-subject task scans are
// most similar), but the contrast between diagonal and off-diagonal is
// weaker than in resting state (Figure 1). This bench reproduces both
// matrices and reports the contrast ratio.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/matcher.h"
#include "sim/cohort.h"

using namespace neuroprint;

namespace {

core::SimilarityStats StatsFor(const sim::CohortSimulator& cohort,
                               sim::TaskType task, CsvWriter* csv) {
  auto known = cohort.BuildGroupMatrix(task, sim::Encoding::kLeftRight);
  auto anonymous = cohort.BuildGroupMatrix(task, sim::Encoding::kRightLeft);
  NP_CHECK(known.ok() && anonymous.ok());
  core::AttackOptions options;
  options.num_features = 100;
  auto attack = core::DeanonymizationAttack::Fit(*known, options);
  NP_CHECK(attack.ok());
  auto result = attack->Identify(*anonymous);
  NP_CHECK(result.ok());
  auto stats = core::ComputeSimilarityStats(result->similarity);
  NP_CHECK(stats.ok());
  if (csv != nullptr) {
    for (std::size_t i = 0; i < result->similarity.rows(); ++i) {
      for (std::size_t j = 0; j < result->similarity.cols(); ++j) {
        csv->AddNumericRow({static_cast<double>(i), static_cast<double>(j),
                            result->similarity(i, j)});
      }
    }
  }
  return *stats;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 2",
                     "pairwise similarity of LANGUAGE-task connectomes");

  sim::CohortConfig config = sim::HcpLikeConfig();
  if (bench::FastMode()) config.num_subjects = 20;
  auto cohort = sim::CohortSimulator::Create(config);
  NP_CHECK(cohort.ok());

  CsvWriter csv;
  csv.SetHeader({"known_subject", "anonymous_subject", "similarity"});
  const core::SimilarityStats task_stats =
      StatsFor(*cohort, sim::TaskType::kLanguage, &csv);
  const core::SimilarityStats rest_stats =
      StatsFor(*cohort, sim::TaskType::kRest, nullptr);

  std::printf("\n%-14s %10s %10s %10s\n", "condition", "diag", "offdiag",
              "contrast");
  std::printf("%-14s %10.3f %10.3f %10.3f\n", "LANGUAGE",
              task_stats.diagonal_mean, task_stats.off_diagonal_mean,
              task_stats.contrast);
  std::printf("%-14s %10.3f %10.3f %10.3f\n", "REST (ref)",
              rest_stats.diagonal_mean, rest_stats.off_diagonal_mean,
              rest_stats.contrast);
  std::printf(
      "\ntask contrast / rest contrast = %.2f  (paper: task contrast is "
      "weaker, ratio < 1)\n",
      task_stats.contrast / rest_stats.contrast);

  bench::WriteCsvOrDie(csv, "fig2_task_similarity.csv");
  return 0;
}
