// Figure 1: pairwise similarity of resting-state connectomes.
//
// Paper result: the subject-aligned similarity matrix between the L-R and
// R-L resting sessions has a strong diagonal (intra-subject similarity)
// and weak off-diagonals; identification accuracy exceeds 94%.
//
// This bench regenerates the matrix on the simulated HCP-like cohort,
// prints its diagonal/off-diagonal statistics and the identification
// accuracy, and writes the full matrix to CSV.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/matcher.h"
#include "sim/cohort.h"
#include "util/stopwatch.h"

using namespace neuroprint;

int main() {
  bench::PrintHeader("Figure 1", "pairwise similarity of resting-state connectomes");

  sim::CohortConfig config = sim::HcpLikeConfig();
  if (bench::FastMode()) config.num_subjects = 20;
  auto cohort = sim::CohortSimulator::Create(config);
  NP_CHECK(cohort.ok());
  std::printf("cohort: %zu subjects, %zu regions (features: %zu)\n",
              config.num_subjects, config.num_regions,
              config.num_regions * (config.num_regions - 1) / 2);

  Stopwatch clock;
  auto known =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  auto anonymous =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  NP_CHECK(known.ok() && anonymous.ok());
  std::printf("group matrices built in %.1fs\n", clock.ElapsedSeconds());

  core::AttackOptions options;
  options.num_features = 100;
  auto attack = core::DeanonymizationAttack::Fit(*known, options);
  NP_CHECK(attack.ok());
  auto result = attack->Identify(*anonymous);
  NP_CHECK(result.ok());
  auto stats = core::ComputeSimilarityStats(result->similarity);
  NP_CHECK(stats.ok());

  std::printf("\n%-28s %8s\n", "metric", "value");
  std::printf("%-28s %7.1f%%  (paper: > 94%%)\n", "identification accuracy",
              100.0 * result->accuracy);
  std::printf("%-28s %8.3f\n", "diagonal mean similarity", stats->diagonal_mean);
  std::printf("%-28s %8.3f\n", "off-diagonal mean", stats->off_diagonal_mean);
  std::printf("%-28s %8.3f\n", "contrast (diag - offdiag)", stats->contrast);
  std::printf("%-28s %8.3f\n", "diagonal min", stats->diagonal_min);
  std::printf("%-28s %8.3f\n", "off-diagonal max", stats->off_diagonal_max);

  CsvWriter csv;
  csv.SetHeader({"known_subject", "anonymous_subject", "similarity"});
  for (std::size_t i = 0; i < result->similarity.rows(); ++i) {
    for (std::size_t j = 0; j < result->similarity.cols(); ++j) {
      csv.AddNumericRow({static_cast<double>(i), static_cast<double>(j),
                         result->similarity(i, j)});
    }
  }
  bench::WriteCsvOrDie(csv, "fig1_rest_similarity.csv");
  return 0;
}
