// Figure 6 (+ Section 3.3.2): t-SNE embedding of every scan (8 conditions
// x all subjects) into 2-D, and task prediction by 1-nearest-neighbour
// against the half of the scans whose task labels are assumed known.
//
// Paper result: eight compact clusters, one per condition; task
// prediction accuracy 100% for the seven tasks and 99.01 +/- 0.52% for
// resting scans, whose rare misclassifications land on GAMBLING.

#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "core/knn.h"
#include "core/tsne.h"
#include "sim/cohort.h"
#include "util/stopwatch.h"

using namespace neuroprint;

int main() {
  bench::PrintHeader("Figure 6", "t-SNE task clustering and 1-NN task prediction");

  sim::CohortConfig config = sim::HcpLikeConfig();
  config.num_subjects = bench::FastMode() ? 12 : 100;
  auto cohort = sim::CohortSimulator::Create(config);
  NP_CHECK(cohort.ok());
  const std::size_t subjects = config.num_subjects;
  const std::size_t scans = 8 * subjects;

  // Stack all scans (L-R session of each condition) into one matrix.
  Stopwatch clock;
  std::vector<int> labels;
  linalg::Matrix points;
  {
    std::vector<linalg::Vector> rows;
    rows.reserve(scans);
    for (sim::TaskType task : sim::kAllTasks) {
      auto group = cohort->BuildGroupMatrix(task, sim::Encoding::kLeftRight);
      NP_CHECK(group.ok());
      for (std::size_t s = 0; s < subjects; ++s) {
        rows.push_back(group->SubjectColumn(s));
        labels.push_back(static_cast<int>(task));
      }
    }
    points = linalg::Matrix(rows.size(), rows[0].size());
    for (std::size_t i = 0; i < rows.size(); ++i) points.SetRow(i, rows[i]);
  }
  std::printf("stacked %zu scans x %zu features in %.1fs\n", points.rows(),
              points.cols(), clock.ElapsedSeconds());

  clock.Restart();
  core::TsneOptions tsne_options;
  tsne_options.perplexity = 30.0;
  tsne_options.max_iterations = bench::FastMode() ? 250 : 750;
  auto embedding = core::TsneEmbed(points, tsne_options);
  NP_CHECK(embedding.ok()) << embedding.status().ToString();
  std::printf("t-SNE: %d iterations, KL divergence %.3f, %.1fs\n",
              embedding->iterations, embedding->kl_divergence,
              clock.ElapsedSeconds());

  // Repeated 50/50 label splits (the paper repeats 100 times).
  const int repeats = bench::FastMode() ? 10 : 100;
  std::map<int, std::vector<double>> per_task_accuracy;
  std::map<int, std::map<int, int>> confusions;
  Rng rng(404);
  for (int rep = 0; rep < repeats; ++rep) {
    const auto split = bench::SplitSubjects(subjects, subjects / 2, rng);
    std::vector<std::size_t> train_rows, test_rows;
    for (std::size_t task = 0; task < 8; ++task) {
      for (std::size_t s : split.train) train_rows.push_back(task * subjects + s);
      for (std::size_t s : split.test) test_rows.push_back(task * subjects + s);
    }
    linalg::Matrix train(train_rows.size(), 2), test(test_rows.size(), 2);
    std::vector<int> train_labels, test_labels;
    for (std::size_t i = 0; i < train_rows.size(); ++i) {
      train.SetRow(i, embedding->embedding.RowCopy(train_rows[i]));
      train_labels.push_back(labels[train_rows[i]]);
    }
    for (std::size_t i = 0; i < test_rows.size(); ++i) {
      test.SetRow(i, embedding->embedding.RowCopy(test_rows[i]));
      test_labels.push_back(labels[test_rows[i]]);
    }
    auto predicted = core::KnnClassify(train, train_labels, test, 1);
    NP_CHECK(predicted.ok());
    std::map<int, std::pair<int, int>> tally;  // task -> (correct, total)
    for (std::size_t i = 0; i < test_labels.size(); ++i) {
      auto& [correct, total] = tally[test_labels[i]];
      ++total;
      if ((*predicted)[i] == test_labels[i]) {
        ++correct;
      } else {
        ++confusions[test_labels[i]][(*predicted)[i]];
      }
    }
    for (const auto& [task, counts] : tally) {
      per_task_accuracy[task].push_back(100.0 * counts.first / counts.second);
    }
  }

  CsvWriter csv;
  csv.SetHeader({"task", "accuracy_mean_percent", "accuracy_std",
                 "most_confused_with"});
  std::printf("\n%-11s %16s   %s\n", "task", "accuracy (mean±sd)",
              "most confused with");
  for (sim::TaskType task : sim::kAllTasks) {
    const auto stats = bench::Summarize(per_task_accuracy[static_cast<int>(task)]);
    std::string confused = "-";
    int best = 0;
    for (const auto& [other, count] : confusions[static_cast<int>(task)]) {
      if (count > best) {
        best = count;
        confused = sim::TaskName(static_cast<sim::TaskType>(other));
      }
    }
    std::printf("%-11s %9.2f ± %-5.2f   %s\n", sim::TaskName(task), stats.mean,
                stats.stddev, confused.c_str());
    csv.AddRow({sim::TaskName(task), StrFormat("%.2f", stats.mean),
                StrFormat("%.2f", stats.stddev), confused});
  }
  std::printf(
      "\npaper: 100%% for the seven tasks, 99.01 ± 0.52%% for REST "
      "(misclassified as GAMBLING).\n");

  // Also persist the embedding itself (the figure's scatter data).
  CsvWriter scatter;
  scatter.SetHeader({"scan", "task", "x", "y"});
  for (std::size_t i = 0; i < points.rows(); ++i) {
    scatter.AddRow({StrFormat("%zu", i),
                    sim::TaskName(static_cast<sim::TaskType>(labels[i])),
                    StrFormat("%.4f", embedding->embedding(i, 0)),
                    StrFormat("%.4f", embedding->embedding(i, 1))});
  }
  bench::WriteCsvOrDie(scatter, "fig6_tsne_embedding.csv");
  bench::WriteCsvOrDie(csv, "fig6_task_prediction.csv");
  return 0;
}
