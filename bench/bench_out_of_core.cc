// Out-of-core enrollment bench: enrolls the same synthetic gallery twice
// — first streamed from a file-backed NPGM store via EnrollStream, then
// from the fully materialized in-RAM matrix via EnrollBatch — and reports
// the peak RSS of each phase. Phase order is load-bearing: getrusage's
// ru_maxrss is a monotone process-wide high-water mark, so the lean
// streamed phase must run before the materialized one or its number would
// just echo the materialized peak.
//
// Invariants checked on every run (NP_CHECK, so CI smoke fails loudly):
// both indexes end at the same size and answer a brute-force probe batch
// with bitwise-identical similarities and the same assignments. In full
// mode (the 5k-subject gallery) the materialized peak must be >= 4x the
// streamed peak — the ROADMAP acceptance bar for the out-of-core path.
//
// Flags: `--threads=N`, `--json=PATH` (BENCH_out_of_core.json in CI).

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench/bench_util.h"
#include "connectome/group_matrix_io.h"
#include "connectome/matrix_store.h"
#include "service/identification_index.h"
#include "service/synthetic_gallery.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace neuroprint;

namespace {

// High-water-mark resident set in bytes (Linux reports KiB, Apple bytes);
// 0 when the platform has no getrusage, which disables the ratio check.
double PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss);
#else
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
#endif
#else
  return 0.0;
#endif
}

// A strided probe sample (session 1) of `count` enrolled identities,
// generated one subject at a time so the probe set never contributes a
// materialized-gallery-sized allocation to the streamed phase's peak.
connectome::GroupMatrix MakeProbes(const service::SyntheticGalleryConfig& g,
                                   std::size_t count) {
  std::vector<linalg::Vector> columns;
  std::vector<std::string> ids;
  const std::size_t stride = std::max<std::size_t>(1, g.num_subjects / count);
  for (std::size_t j = 0; j < g.num_subjects && ids.size() < count;
       j += stride) {
    auto one = service::MakeSyntheticGallerySlice(g, 1, j, j + 1);
    NP_CHECK(one.ok()) << one.status().ToString();
    columns.push_back(one->SubjectColumn(0));
    ids.push_back(one->subject_ids()[0]);
  }
  auto probes = connectome::GroupMatrix::FromFeatureColumns(columns, ids);
  NP_CHECK(probes.ok()) << probes.status().ToString();
  return std::move(probes).value();
}

// Both phases must answer the probe batch identically down to the bit:
// EnrollStream is contractually bit-identical to EnrollBatch, so any
// divergence here is a streaming bug, not bench noise.
void CheckBitwiseParity(const service::BatchIdentifyResult& streamed,
                        const service::BatchIdentifyResult& materialized) {
  NP_CHECK(streamed.matches.size() == materialized.matches.size());
  for (std::size_t p = 0; p < streamed.matches.size(); ++p) {
    NP_CHECK(streamed.matches[p].subject_id ==
             materialized.matches[p].subject_id)
        << "probe " << p << ": streamed matched "
        << streamed.matches[p].subject_id << ", materialized "
        << materialized.matches[p].subject_id;
    NP_CHECK(std::bit_cast<std::uint64_t>(streamed.matches[p].similarity) ==
             std::bit_cast<std::uint64_t>(materialized.matches[p].similarity))
        << "probe " << p << " similarity bits diverged";
  }
  NP_CHECK(std::bit_cast<std::uint64_t>(streamed.accuracy) ==
           std::bit_cast<std::uint64_t>(materialized.accuracy));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t flag_threads = bench::ParseThreadsFlag(&argc, argv);
  const std::string json_path = bench::ParseJsonFlag(&argc, argv);
  const std::size_t threads = ResolveThreadCount(ParallelContext{flag_threads});
  const bool fast = bench::FastMode();

  bench::PrintHeader("out_of_core",
                     "file-backed streamed enrollment vs materialized RSS");

  service::SyntheticGalleryConfig gallery;
  gallery.num_subjects = fast ? 600 : 5000;
  gallery.num_features = fast ? 2048 : 16384;
  gallery.noise_scale = 0.35;
  gallery.num_communities = fast ? 8 : 32;
  gallery.community_weight = 0.75;
  gallery.seed = 0x00c0ffeeULL;
  gallery.parallel.num_threads = flag_threads;
  const std::size_t reference_subjects = fast ? 64 : 128;
  const std::size_t gen_slice = 256;       // Bounded generation batches.
  const std::size_t window_cols = 64;      // Streamed slab: 64 columns.
  const std::size_t batch_probes = 32;

  service::IndexOptions options;
  options.num_features = 100;
  options.retain_full_columns = false;  // Memory-lean serving, both phases.
  options.parallel.num_threads = flag_threads;

  std::printf("gallery: %zu subjects x %zu features, %zu reference, "
              "window %zu, %zu threads%s\n\n",
              gallery.num_subjects, gallery.num_features, reference_subjects,
              window_cols, threads, fast ? " [fast mode]" : "");

  const std::string npgm_path =
      std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR") : "/tmp") +
      "/bench_out_of_core_gallery.npgm";

  // --- Phase 1 (first, see header comment): file-backed streamed enroll.
  // The gallery is rendered straight to disk in bounded slices, so the
  // full cohort never exists in RAM on this path.
  Stopwatch write_clock;
  {
    std::vector<std::string> ids;
    ids.reserve(gallery.num_subjects - reference_subjects);
    for (std::size_t j = reference_subjects; j < gallery.num_subjects; ++j) {
      ids.push_back(service::SyntheticSubjectId(j));
    }
    auto writer = connectome::GroupMatrixFileWriter::Create(
        npgm_path, gallery.num_features, ids);
    NP_CHECK(writer.ok()) << writer.status().ToString();
    for (std::size_t begin = reference_subjects;
         begin < gallery.num_subjects; begin += gen_slice) {
      const std::size_t end =
          std::min(begin + gen_slice, gallery.num_subjects);
      auto slice = service::MakeSyntheticGallerySlice(gallery, 0, begin, end);
      NP_CHECK(slice.ok()) << slice.status().ToString();
      for (std::size_t c = 0; c < slice->num_subjects(); ++c) {
        NP_CHECK(writer->AppendColumn(slice->SubjectColumn(c)).ok());
      }
    }
    NP_CHECK(writer->Finish().ok());
  }
  const double write_seconds = write_clock.ElapsedSeconds();

  auto reference =
      service::MakeSyntheticGallerySlice(gallery, 0, 0, reference_subjects);
  NP_CHECK(reference.ok()) << reference.status().ToString();
  auto streamed_index =
      service::IdentificationIndex::Create(*reference, options);
  NP_CHECK(streamed_index.ok()) << streamed_index.status().ToString();

  Stopwatch streamed_clock;
  {
    auto store = connectome::FileMatrixStore::Open(npgm_path);
    NP_CHECK(store.ok()) << store.status().ToString();
    NP_CHECK(streamed_index->EnrollStream(**store, nullptr, window_cols).ok());
  }
  const double streamed_seconds = streamed_clock.ElapsedSeconds();
  NP_CHECK(streamed_index->size() == gallery.num_subjects);
  const double rss_streamed = PeakRssBytes();
  std::printf("streamed     %8zu subjects  %8.2f s enroll (%.2f s write)  "
              "peak RSS %8.1f MiB\n",
              streamed_index->size(), streamed_seconds, write_seconds,
              rss_streamed / (1024.0 * 1024.0));

  bench::JsonReporter json;
  json.BeginRecord("out_of_core_streamed");  // Carries the streamed HWM.
  json.AddField("gallery_subjects",
                static_cast<double>(gallery.num_subjects));
  json.AddField("full_features", static_cast<double>(gallery.num_features));
  json.AddField("window_cols", static_cast<double>(window_cols));
  json.AddField("threads", static_cast<double>(threads));
  json.AddField("write_seconds", write_seconds);
  json.AddField("enroll_seconds", streamed_seconds);

  // --- Phase 2: materialize the whole remainder in RAM, enroll batched.
  Stopwatch materialize_clock;
  auto materialized = service::MakeSyntheticGallerySlice(
      gallery, 0, reference_subjects, gallery.num_subjects);
  NP_CHECK(materialized.ok()) << materialized.status().ToString();
  auto batch_index = service::IdentificationIndex::Create(*reference, options);
  NP_CHECK(batch_index.ok()) << batch_index.status().ToString();
  NP_CHECK(batch_index->EnrollBatch(*materialized).ok());
  const double materialized_seconds = materialize_clock.ElapsedSeconds();
  NP_CHECK(batch_index->size() == streamed_index->size());
  const double rss_materialized = PeakRssBytes();
  std::printf("materialized %8zu subjects  %8.2f s (generate + enroll)  "
              "peak RSS %8.1f MiB\n",
              batch_index->size(), materialized_seconds,
              rss_materialized / (1024.0 * 1024.0));

  // --- Parity: both galleries answer identically, down to the bit.
  const connectome::GroupMatrix probes = MakeProbes(gallery, batch_probes);
  auto streamed_result = streamed_index->IdentifyBatchBruteForce(probes);
  auto batch_result = batch_index->IdentifyBatchBruteForce(probes);
  NP_CHECK(streamed_result.ok() && batch_result.ok());
  CheckBitwiseParity(*streamed_result, *batch_result);

  const double rss_reduction =
      rss_streamed > 0.0 ? rss_materialized / rss_streamed : 0.0;
  std::printf("parity       %zu probes bit-identical   accuracy %.4f   "
              "RSS reduction %.2fx\n\n",
              probes.num_subjects(), streamed_result->accuracy,
              rss_reduction);
  if (!fast && rss_streamed > 0.0) {
    // Acceptance: >= 4x peak-RSS reduction at the 5k-subject gallery. At
    // smoke scale the materialized matrix is smaller than the process
    // baseline, so the ratio is meaningless there and only recorded.
    NP_CHECK(rss_reduction >= 4.0)
        << "streamed enrollment peaked at " << rss_streamed / (1024.0 * 1024.0)
        << " MiB vs " << rss_materialized / (1024.0 * 1024.0)
        << " MiB materialized; reduction " << rss_reduction
        << "x is below the 4x acceptance bar";
  }

  json.BeginRecord("out_of_core_materialized");  // Carries the full HWM.
  json.AddField("gallery_subjects",
                static_cast<double>(gallery.num_subjects));
  json.AddField("enroll_seconds", materialized_seconds);
  json.AddField("rss_reduction", rss_reduction);
  json.AddField("top1_accuracy", streamed_result->accuracy);

  std::remove(npgm_path.c_str());
  bench::WriteJsonOrDie(json, json_path);
  return 0;
}
