// Ablation (Section 3.1.2: "for a given measure of region-to-region
// coherence"): Pearson full correlation vs shrinkage-regularized partial
// correlation as the connectome substrate of the attack. Also reports
// match-margin statistics (how confidently each anonymous subject is
// matched) under both measures.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "connectome/connectome.h"
#include "connectome/partial_correlation.h"
#include "core/matcher.h"
#include "sim/cohort.h"

using namespace neuroprint;

namespace {

// shrinkage < 0 selects plain Pearson correlation.
connectome::GroupMatrix BuildGroup(const sim::CohortSimulator& cohort,
                                   sim::Encoding encoding, double shrinkage) {
  std::vector<linalg::Vector> columns;
  for (std::size_t s = 0; s < cohort.config().num_subjects; ++s) {
    auto series =
        cohort.SimulateRegionSeries(s, sim::TaskType::kRest, encoding);
    NP_CHECK(series.ok());
    connectome::PartialCorrelationOptions options;
    options.shrinkage = shrinkage;
    Result<linalg::Matrix> conn =
        shrinkage < 0.0
            ? connectome::BuildConnectome(*series)
            : connectome::BuildPartialCorrelationConnectome(*series, options);
    NP_CHECK(conn.ok()) << conn.status().ToString();
    auto features = connectome::VectorizeUpperTriangle(*conn);
    NP_CHECK(features.ok());
    columns.push_back(std::move(features).value());
  }
  auto group = connectome::GroupMatrix::FromFeatureColumns(
      columns, cohort.subject_ids());
  NP_CHECK(group.ok());
  return std::move(group).value();
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: coherence measure",
                     "Pearson vs partial correlation as attack substrate");

  sim::CohortConfig config = sim::HcpLikeConfig();
  config.num_subjects = bench::FastMode() ? 12 : 50;
  // Partial correlation inverts a regions x regions covariance; frames
  // must comfortably exceed regions for a stable estimate.
  config.num_regions = 120;
  config.frames_override = 300;
  auto cohort = sim::CohortSimulator::Create(config);
  NP_CHECK(cohort.ok());

  CsvWriter csv;
  csv.SetHeader({"measure", "accuracy_percent", "margin_mean", "margin_min"});
  std::printf("\n%-16s %10s %14s %12s\n", "measure", "accuracy",
              "margin (mean)", "margin (min)");
  const std::pair<const char*, double> measures[] = {
      {"pearson", -1.0},
      {"partial s=0.05", 0.05},
      {"partial s=0.2", 0.2},
      {"partial s=0.5", 0.5},
  };
  for (const auto& [name, shrinkage] : measures) {
    const auto known =
        BuildGroup(*cohort, sim::Encoding::kLeftRight, shrinkage);
    const auto anonymous =
        BuildGroup(*cohort, sim::Encoding::kRightLeft, shrinkage);
    core::AttackOptions options;
    options.num_features = 100;
    auto attack = core::DeanonymizationAttack::Fit(known, options);
    NP_CHECK(attack.ok());
    auto result = attack->Identify(anonymous);
    NP_CHECK(result.ok());
    auto margins = core::MatchMargins(result->similarity);
    NP_CHECK(margins.ok());
    double mean = 0.0, min = 1e9;
    for (double m : *margins) {
      mean += m;
      min = std::min(min, m);
    }
    mean /= static_cast<double>(margins->size());
    std::printf("%-16s %9.1f%% %14.3f %12.3f\n", name,
                100.0 * result->accuracy, mean, min);
    csv.AddRow({name, StrFormat("%.1f", 100.0 * result->accuracy),
                StrFormat("%.3f", mean), StrFormat("%.3f", min)});
  }
  std::printf(
      "\nfinding: Pearson correlation is the stronger attack substrate. "
      "Partial correlation\nstill identifies far above chance, but the "
      "precision-matrix estimate is noisy at\nfMRI-typical scan lengths "
      "(frames comparable to regions), so its signature is\ndiluted — "
      "consistent with the connectome-fingerprinting literature's "
      "preference for\nfull correlation. Margins quantify per-subject "
      "match confidence.\n");
  bench::WriteCsvOrDie(csv, "ablation_coherence.csv");
  return 0;
}
