// Ablation: evoked (stimulus-locked) task responses and identifiability.
//
// Section 3.3.1 of the paper notes that "task-based activations are
// localized to specific regions ... responsible for performing the task".
// This ablation plants explicit block-design x HRF evoked responses of
// growing amplitude in the simulated task scans and measures same-task
// identification. The evoked time course is shared across subjects (the
// stimulus schedule is), so it saturates the correlations among activated
// regions towards a common value — but precisely because those edges then
// vary little ACROSS subjects, leverage-score selection routes around
// them, and identification is essentially unaffected. The attack is
// robust to evoked activity by construction of its feature selector.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/cohort.h"

using namespace neuroprint;

int main() {
  bench::PrintHeader("Ablation: evoked responses",
                     "task identifiability vs evoked activation amplitude");

  CsvWriter csv;
  csv.SetHeader({"evoked_amplitude", "motor_accuracy", "language_accuracy"});
  std::printf("\n%10s %14s %16s\n", "amplitude", "MOTOR acc", "LANGUAGE acc");
  for (const double amplitude : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    sim::CohortConfig config = sim::HcpLikeConfig();
    config.num_subjects = bench::FastMode() ? 12 : 40;
    config.evoked_amplitude = amplitude;
    auto cohort = sim::CohortSimulator::Create(config);
    NP_CHECK(cohort.ok());

    double accuracies[2] = {0.0, 0.0};
    const sim::TaskType tasks[2] = {sim::TaskType::kMotor,
                                    sim::TaskType::kLanguage};
    for (int i = 0; i < 2; ++i) {
      auto known =
          cohort->BuildGroupMatrix(tasks[i], sim::Encoding::kLeftRight);
      auto anonymous =
          cohort->BuildGroupMatrix(tasks[i], sim::Encoding::kRightLeft);
      NP_CHECK(known.ok() && anonymous.ok());
      accuracies[i] =
          bench::IdentificationAccuracyPercent(*known, *anonymous, 100);
    }
    std::printf("%10.1f %13.1f%% %15.1f%%\n", amplitude, accuracies[0],
                accuracies[1]);
    csv.AddNumericRow({amplitude, accuracies[0], accuracies[1]});
  }
  std::printf(
      "\nfinding: same-task identification is flat in the evoked amplitude. "
      "Stimulus-locked\nresponses saturate activated edges toward a common "
      "value for every subject; such\nedges have low across-subject "
      "leverage, so the principal-features selector avoids\nthem "
      "automatically. Weak MOTOR/WM identifiability must come from the "
      "connectivity\nreorganization itself (modelled by the tasks' low "
      "signature expressivity), not from\nevoked activity masking the "
      "signature.\n");
  bench::WriteCsvOrDie(csv, "ablation_evoked.csv");
  return 0;
}
