// Figure 5: identifiability of subjects across tasks — the 8x8 matrix of
// identification accuracy where the row condition is de-anonymized (L-R
// session) and the column condition is the anonymous target (R-L
// session).
//
// Paper shape: the diagonal is strong for REST (>94%), LANGUAGE and
// RELATIONAL (>90%), SOCIAL (>80%); MOTOR and WM are weak even on the
// diagonal; the matrix is asymmetric; and the REST row de-anonymizes most
// other conditions well.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "sim/cohort.h"
#include "util/stopwatch.h"

using namespace neuroprint;

int main() {
  bench::PrintHeader("Figure 5", "cross-task identification accuracy (8x8)");

  sim::CohortConfig config = sim::HcpLikeConfig();
  if (bench::FastMode()) config.num_subjects = 16;
  auto cohort = sim::CohortSimulator::Create(config);
  NP_CHECK(cohort.ok());
  std::printf("cohort: %zu subjects, %zu regions\n\n", config.num_subjects,
              config.num_regions);

  // Build all 16 group matrices once (8 conditions x 2 sessions).
  Stopwatch clock;
  std::map<int, connectome::GroupMatrix> known, anonymous;
  for (sim::TaskType task : sim::kAllTasks) {
    auto lr = cohort->BuildGroupMatrix(task, sim::Encoding::kLeftRight);
    auto rl = cohort->BuildGroupMatrix(task, sim::Encoding::kRightLeft);
    NP_CHECK(lr.ok() && rl.ok());
    known.emplace(static_cast<int>(task), std::move(lr).value());
    anonymous.emplace(static_cast<int>(task), std::move(rl).value());
  }
  std::printf("built 16 group matrices in %.1fs\n\n", clock.ElapsedSeconds());

  CsvWriter csv;
  csv.SetHeader({"deanonymized_task", "anonymous_task", "accuracy_percent"});

  std::printf("%-11s", "known\\anon");
  for (sim::TaskType col : sim::kAllTasks) {
    std::printf(" %10s", sim::TaskName(col));
  }
  std::printf("\n");
  for (sim::TaskType row : sim::kAllTasks) {
    std::printf("%-11s", sim::TaskName(row));
    // One attack fit per row, reused across targets.
    core::AttackOptions options;
    options.num_features = 100;
    auto attack =
        core::DeanonymizationAttack::Fit(known.at(static_cast<int>(row)), options);
    NP_CHECK(attack.ok());
    for (sim::TaskType col : sim::kAllTasks) {
      auto result = attack->Identify(anonymous.at(static_cast<int>(col)));
      NP_CHECK(result.ok());
      const double acc = 100.0 * result->accuracy;
      std::printf(" %9.1f%%", acc);
      csv.AddRow({sim::TaskName(row), sim::TaskName(col),
                  StrFormat("%.1f", acc)});
    }
    std::printf("\n");
  }

  std::printf(
      "\npaper shape: strong diagonal for REST/LANGUAGE/RELATIONAL/SOCIAL, "
      "weak MOTOR & WM,\nasymmetric matrix, REST row de-anonymizes other "
      "tasks well.\n");
  bench::WriteCsvOrDie(csv, "fig5_cross_task.csv");
  return 0;
}
