// Table 2: identification accuracy under simulated multi-site
// acquisition. The second session's time series are noised with the
// paper's operator (additive Gaussian noise with the signal's mean and a
// fraction of its variance) plus the structured site effect (see
// sim/cohort.h), at variance fractions 10/20/30%.
//
// Paper values: HCP 91.14/86.71/79.05%, ADHD-200 96.33/89.17/84.10%.

#include <cstdio>

#include "bench/bench_util.h"
#include "sim/cohort.h"
#include "util/stopwatch.h"

using namespace neuroprint;

namespace {

double AccuracyAtNoise(const sim::CohortSimulator& cohort, double fraction) {
  auto known =
      cohort.BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  auto anonymous = cohort.BuildGroupMatrix(sim::TaskType::kRest,
                                           sim::Encoding::kRightLeft, fraction);
  NP_CHECK(known.ok() && anonymous.ok());
  return bench::IdentificationAccuracyPercent(*known, *anonymous, 100);
}

}  // namespace

int main() {
  bench::PrintHeader("Table 2",
                     "identification accuracy vs multi-site noise variance");

  sim::CohortConfig hcp_config = sim::HcpLikeConfig();
  if (bench::FastMode()) hcp_config.num_subjects = 20;
  auto hcp = sim::CohortSimulator::Create(hcp_config);
  auto adhd = sim::CohortSimulator::Create(sim::AdhdLikeConfig());
  NP_CHECK(hcp.ok() && adhd.ok());

  const double fractions[] = {0.0, 0.1, 0.2, 0.3};
  const double paper_hcp[] = {100.0, 91.14, 86.71, 79.05};   // 0% row: baseline.
  const double paper_adhd[] = {100.0, 96.33, 89.17, 84.10};

  CsvWriter csv;
  csv.SetHeader({"noise_variance_percent", "hcp_accuracy", "adhd_accuracy",
                 "paper_hcp", "paper_adhd"});
  std::printf("\n%-18s %12s %12s   %s\n", "noise variance", "HCP", "ADHD-200",
              "paper (HCP / ADHD)");
  for (std::size_t i = 0; i < 4; ++i) {
    Stopwatch clock;
    const double hcp_acc = AccuracyAtNoise(*hcp, fractions[i]);
    const double adhd_acc = AccuracyAtNoise(*adhd, fractions[i]);
    if (i == 0) {
      std::printf("%-18s %11.1f%% %11.1f%%   (baseline, not in paper)  %.0fs\n",
                  "0% (baseline)", hcp_acc, adhd_acc, clock.ElapsedSeconds());
    } else {
      std::printf("%-18s %11.1f%% %11.1f%%   %.2f / %.2f   %.0fs\n",
                  StrFormat("%.0f%%", 100 * fractions[i]).c_str(), hcp_acc,
                  adhd_acc, paper_hcp[i], paper_adhd[i],
                  clock.ElapsedSeconds());
    }
    csv.AddNumericRow({100 * fractions[i], hcp_acc, adhd_acc, paper_hcp[i],
                       paper_adhd[i]});
  }
  std::printf("\npaper shape: accuracy declines with noise; ADHD-200 declines "
              "more slowly; >75%% retained at 30%%.\n");
  bench::WriteCsvOrDie(csv, "table2_multisite.csv");
  return 0;
}
