// Extension bench (the paper's Discussion): the privacy/utility trade-off
// of leverage-guided signature suppression.
//
// The paper argues that localizing the identity signature lets a defender
// add noise exactly where it hurts the attack most. This bench sweeps the
// number of suppressed edges and the defense mode, and reports:
//   - attack accuracy against a STATIC attacker (fitted on clean data),
//   - attack accuracy against an ADAPTIVE attacker (re-fits on the
//     defended release),
//   - the relative distortion of the released data (the utility cost).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/defense.h"
#include "sim/cohort.h"

using namespace neuroprint;

namespace {

const char* ModeName(core::DefenseMode mode) {
  switch (mode) {
    case core::DefenseMode::kGaussianNoise:
      return "gaussian";
    case core::DefenseMode::kMeanSubstitute:
      return "mean-sub";
    case core::DefenseMode::kShuffle:
      return "shuffle";
  }
  return "?";
}

}  // namespace

int main() {
  bench::PrintHeader("Extension: defense",
                     "privacy/utility trade-off of signature suppression");

  sim::CohortConfig config = sim::HcpLikeConfig();
  config.num_subjects = bench::FastMode() ? 16 : 50;
  auto cohort = sim::CohortSimulator::Create(config);
  NP_CHECK(cohort.ok());
  auto known =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  auto release =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  NP_CHECK(known.ok() && release.ok());

  CsvWriter csv;
  csv.SetHeader({"mode", "suppressed_edges", "accuracy_undefended",
                 "accuracy_static", "accuracy_adaptive", "distortion"});
  std::printf("\n%-10s %10s %12s %10s %10s %12s\n", "mode", "edges",
              "undefended", "static", "adaptive", "distortion");

  for (const auto mode : {core::DefenseMode::kGaussianNoise,
                          core::DefenseMode::kShuffle}) {
    for (const std::size_t edges : {100u, 500u, 2000u, 10000u}) {
      core::DefenseOptions options;
      options.mode = mode;
      options.num_edges = edges;
      options.noise_scale = 2.0;
      auto eval = core::EvaluateDefense(*known, *release, options);
      NP_CHECK(eval.ok()) << eval.status().ToString();
      std::printf("%-10s %10zu %11.1f%% %9.1f%% %9.1f%% %12.4f\n",
                  ModeName(mode), edges, 100 * eval->accuracy_undefended,
                  100 * eval->accuracy_static_attacker,
                  100 * eval->accuracy_adaptive_attacker, eval->distortion);
      csv.AddRow({ModeName(mode), StrFormat("%zu", edges),
                  StrFormat("%.1f", 100 * eval->accuracy_undefended),
                  StrFormat("%.1f", 100 * eval->accuracy_static_attacker),
                  StrFormat("%.1f", 100 * eval->accuracy_adaptive_attacker),
                  StrFormat("%.4f", eval->distortion)});
    }
  }
  std::printf(
      "\nfindings (supporting the paper's claim that defending is hard):\n"
      "  - suppressing only the release's own top edges barely affects a "
      "static attacker:\n    its feature set (fitted on the other session) "
      "only partially overlaps, and the\n    surviving handful of edges "
      "still identifies (see bench_ablation_features);\n"
      "  - a defender must suppress a large fraction of edges (with "
      "matching distortion)\n    before accuracy collapses;\n"
      "  - Gaussian noising backfires against refit attackers less than "
      "shuffling, because\n    the inflated variance of noised edges "
      "attracts a blind leverage refit onto\n    exactly the ruined "
      "features.\n");
  bench::WriteCsvOrDie(csv, "defense_tradeoff.csv");
  return 0;
}
