// Ablation (Section 3.1.2 design choice): sampling distribution for the
// feature-selection step. Compares the deterministic top-t leverage
// selection (the paper's Principal Features Subspace method) against the
// randomized meta-algorithm (Algorithm 1) under uniform, l2-norm, and
// leverage distributions, at several sketch sizes, on both the sketch
// quality metric (Gram error, the Eq. 2 quantity) and the end-to-end
// identification accuracy.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/matcher.h"
#include "core/row_sampling.h"
#include "sim/cohort.h"

using namespace neuroprint;

namespace {

double AccuracyWithFeatures(const connectome::GroupMatrix& known,
                            const connectome::GroupMatrix& anonymous,
                            const std::vector<std::size_t>& features) {
  auto reduced_known = known.RestrictToFeatures(features);
  auto reduced_anon = anonymous.RestrictToFeatures(features);
  NP_CHECK(reduced_known.ok() && reduced_anon.ok());
  auto similarity = core::SimilarityMatrix(*reduced_known, *reduced_anon);
  NP_CHECK(similarity.ok());
  auto accuracy = core::IdentificationAccuracy(
      core::ArgmaxMatch(*similarity), reduced_known->subject_ids(),
      reduced_anon->subject_ids());
  NP_CHECK(accuracy.ok());
  return 100.0 * *accuracy;
}

const char* DistName(core::SamplingDistribution dist) {
  switch (dist) {
    case core::SamplingDistribution::kUniform:
      return "uniform";
    case core::SamplingDistribution::kL2Norm:
      return "l2-norm";
    case core::SamplingDistribution::kLeverage:
      return "leverage";
  }
  return "?";
}

}  // namespace

int main() {
  bench::PrintHeader("Ablation: sampling",
                     "feature-sampling strategies for the attack");

  sim::CohortConfig config = sim::HcpLikeConfig();
  config.num_subjects = bench::FastMode() ? 16 : 50;
  auto cohort = sim::CohortSimulator::Create(config);
  NP_CHECK(cohort.ok());
  auto known =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  auto anonymous =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  NP_CHECK(known.ok() && anonymous.ok());

  CsvWriter csv;
  csv.SetHeader({"strategy", "sketch_rows", "accuracy_percent",
                 "gram_error_rel"});
  const double gram_norm = linalg::Gram(known->data()).FrobeniusNorm();
  const int draws = 5;

  std::printf("\n%-22s %8s %12s %14s\n", "strategy", "rows", "accuracy",
              "rel Gram err");
  for (const std::size_t s : {25u, 100u, 400u}) {
    // Deterministic principal-features subspace (the paper's method).
    {
      auto features = core::TopLeverageFeatures(known->data(), s);
      NP_CHECK(features.ok());
      const double acc = AccuracyWithFeatures(*known, *anonymous, *features);
      std::printf("%-22s %8zu %11.1f%% %14s\n", "top-leverage (det)", s, acc,
                  "-");
      csv.AddRow({"top-leverage-det", StrFormat("%zu", s),
                  StrFormat("%.1f", acc), ""});
    }
    // Randomized Algorithm 1 under the three distributions.
    for (const auto dist : {core::SamplingDistribution::kUniform,
                            core::SamplingDistribution::kL2Norm,
                            core::SamplingDistribution::kLeverage}) {
      std::vector<double> accs, errs;
      Rng rng(900 + s);
      for (int d = 0; d < draws; ++d) {
        auto sample = core::SampleRows(known->data(), s, dist, rng);
        NP_CHECK(sample.ok());
        accs.push_back(
            AccuracyWithFeatures(*known, *anonymous, sample->indices));
        errs.push_back(
            core::GramApproximationError(known->data(), sample->sketch) /
            gram_norm);
      }
      const auto acc = bench::Summarize(accs);
      const auto err = bench::Summarize(errs);
      std::printf("%-22s %8zu %6.1f ± %-4.1f %10.3f ± %.3f\n",
                  DistName(dist), s, acc.mean, acc.stddev, err.mean,
                  err.stddev);
      csv.AddRow({DistName(dist), StrFormat("%zu", s),
                  StrFormat("%.1f", acc.mean), StrFormat("%.3f", err.mean)});
    }
  }
  std::printf(
      "\nexpected: deterministic top-leverage dominates at small row "
      "budgets; leverage/l2\nbeat uniform on Gram error (the Eq. 2/Eq. 4 "
      "story).\n");
  bench::WriteCsvOrDie(csv, "ablation_sampling.csv");
  return 0;
}
