// Microbenchmarks (google-benchmark) for the computational claims of
// Section 1: the attack's kernels are "computationally inexpensive and
// scale to large datasets". Covers the SVD/leverage path, the matcher,
// the FFT filters, connectome construction, and t-SNE per-iteration cost.
//
// `--threads=N` (stripped before google-benchmark sees the flags) sets
// the worker count for the parallelized kernels and prints a
// speedup-vs-1-thread table for the two gemm-bound kernels before the
// microbenchmark suite runs.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "connectome/connectome.h"
#include "core/leverage.h"
#include "core/matcher.h"
#include "core/row_sampling.h"
#include "core/tsne.h"
#include "linalg/stats.h"
#include "linalg/svd.h"
#include "signal/filters.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace neuroprint {
namespace {

linalg::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

void BM_ThinSvdTallSkinny(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  const linalg::Matrix a = RandomMatrix(rows, cols, 1);
  for (auto _ : state) {
    auto svd = linalg::Svd(a);
    benchmark::DoNotOptimize(svd);
  }
  state.SetComplexityN(static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ThinSvdTallSkinny)
    ->Args({2000, 50})
    ->Args({16000, 100})
    ->Args({64620, 100})
    ->Unit(benchmark::kMillisecond);

void BM_LeverageScores(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = RandomMatrix(rows, 100, 2);
  for (auto _ : state) {
    auto scores = core::ComputeLeverageScores(a);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_LeverageScores)
    ->Arg(6670)
    ->Arg(64620)
    ->Unit(benchmark::kMillisecond);

void BM_RowSampling(benchmark::State& state) {
  const linalg::Matrix a = RandomMatrix(64620, 100, 3);
  Rng rng(4);
  for (auto _ : state) {
    auto sample =
        core::SampleRows(a, 100, core::SamplingDistribution::kL2Norm, rng);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_RowSampling)->Unit(benchmark::kMillisecond);

void BM_SimilarityMatcher(benchmark::State& state) {
  const auto subjects = static_cast<std::size_t>(state.range(0));
  const auto features = static_cast<std::size_t>(state.range(1));
  const linalg::Matrix a = RandomMatrix(features, subjects, 5);
  const linalg::Matrix b = RandomMatrix(features, subjects, 6);
  for (auto _ : state) {
    auto sim = linalg::ColumnCrossCorrelation(a, b);
    benchmark::DoNotOptimize(sim);
  }
}
BENCHMARK(BM_SimilarityMatcher)
    ->Args({100, 100})
    ->Args({100, 64620})
    ->Args({1000, 100})
    ->Unit(benchmark::kMillisecond);

void BM_ConnectomeBuild(benchmark::State& state) {
  const auto regions = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix series = RandomMatrix(regions, 300, 7);
  for (auto _ : state) {
    auto conn = connectome::BuildConnectome(series);
    benchmark::DoNotOptimize(conn);
  }
}
BENCHMARK(BM_ConnectomeBuild)
    ->Arg(116)
    ->Arg(360)
    ->Unit(benchmark::kMillisecond);

void BM_BandPassFilter(benchmark::State& state) {
  const auto frames = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<double> x(frames);
  for (double& v : x) v = rng.Gaussian();
  signal::BandPassConfig config;
  for (auto _ : state) {
    auto y = signal::BandPassFilter(x, config);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_BandPassFilter)->Arg(300)->Arg(1200)->Arg(4096);

void BM_TsneIterations(benchmark::State& state) {
  const auto points = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix data = RandomMatrix(points, 30, 9);
  core::TsneOptions options;
  options.max_iterations = 25;
  options.exaggeration_iterations = 10;
  options.perplexity = 10.0;
  for (auto _ : state) {
    auto result = core::TsneEmbed(data, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["iters_per_run"] = options.max_iterations;
}
BENCHMARK(BM_TsneIterations)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Times one run of `fn` at 1 thread and at `threads`, printing the
// speedup. The kernels are deterministic across thread counts, so the
// two runs produce bitwise-identical results and only wall-clock moves.
template <typename Fn>
void ReportKernelScaling(const char* name, std::size_t threads, Fn&& fn) {
  double sec_1t = 0.0;
  {
    ScopedDefaultThreadCount serial(1);
    Stopwatch clock;
    fn();
    sec_1t = clock.ElapsedSeconds();
  }
  ScopedDefaultThreadCount parallel(threads);
  Stopwatch clock;
  fn();
  const double sec_nt = clock.ElapsedSeconds();
  std::printf("%-24s %10.3fs %10.3fs %7.2fx\n", name, sec_1t, sec_nt,
              sec_nt > 0.0 ? sec_1t / sec_nt : 0.0);
}

void ReportThreadScaling(std::size_t threads) {
  std::printf("thread scaling (1 -> %zu threads):\n", threads);
  std::printf("%-24s %11s %11s %8s\n", "kernel", "sec @1t", "sec @Nt",
              "speedup");
  const linalg::Matrix series = RandomMatrix(360, 1200, 21);
  ReportKernelScaling("connectome_build", threads, [&] {
    auto conn = connectome::BuildConnectome(series);
    benchmark::DoNotOptimize(conn);
  });
  const linalg::Matrix known = RandomMatrix(6670, 100, 22);
  const linalg::Matrix anonymous = RandomMatrix(6670, 100, 23);
  ReportKernelScaling("similarity_matcher", threads, [&] {
    auto sim = linalg::ColumnCrossCorrelation(known, anonymous);
    benchmark::DoNotOptimize(sim);
  });
  std::printf("\n");
}

}  // namespace neuroprint

int main(int argc, char** argv) {
  const std::size_t flag_threads =
      neuroprint::bench::ParseThreadsFlag(&argc, argv);
  neuroprint::ReportThreadScaling(
      neuroprint::ResolveThreadCount(neuroprint::ParallelContext{flag_threads}));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
