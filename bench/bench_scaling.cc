// Microbenchmarks (google-benchmark) for the computational claims of
// Section 1: the attack's kernels are "computationally inexpensive and
// scale to large datasets". Covers the SVD/leverage path, the matcher,
// the FFT filters, connectome construction, and t-SNE per-iteration cost.
//
// `--threads=N` (stripped before google-benchmark sees the flags) sets
// the worker count for the parallelized kernels and prints a
// speedup-vs-1-thread table for the two gemm-bound kernels before the
// microbenchmark suite runs. Before that, comparison tables quantify this
// repo's kernel work: the tiled GEMM micro-kernels against the pre-tiling
// naive triple loops (kept here as baselines), sketched leverage scoring
// against the exact decomposition paths, the dispatched SIMD kernels
// against the scalar reference table (per-ISA, with a bitwise-equality
// assertion), and the blocked bidiagonalization against the serial
// Householder reduction. Pass `--json=PATH` to also emit those
// comparisons as a JSON record array (the committed BENCH_gemm.json); a
// CSV lands next to the binary either way.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "connectome/connectome.h"
#include "core/leverage.h"
#include "core/matcher.h"
#include "core/row_sampling.h"
#include "core/tsne.h"
#include "linalg/matrix.h"
#include "linalg/simd/simd.h"
#include "linalg/stats.h"
#include "linalg/svd.h"
#include "signal/filters.h"
#include "util/check.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace neuroprint {
namespace {

linalg::Matrix RandomMatrix(std::size_t rows, std::size_t cols,
                            std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = rng.Gaussian();
  }
  return m;
}

void BM_ThinSvdTallSkinny(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  const linalg::Matrix a = RandomMatrix(rows, cols, 1);
  for (auto _ : state) {
    auto svd = linalg::Svd(a);
    benchmark::DoNotOptimize(svd);
  }
  state.SetComplexityN(static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ThinSvdTallSkinny)
    ->Args({2000, 50})
    ->Args({16000, 100})
    ->Args({64620, 100})
    ->Unit(benchmark::kMillisecond);

void BM_LeverageScores(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix a = RandomMatrix(rows, 100, 2);
  for (auto _ : state) {
    auto scores = core::ComputeLeverageScores(a);
    benchmark::DoNotOptimize(scores);
  }
}
BENCHMARK(BM_LeverageScores)
    ->Arg(6670)
    ->Arg(64620)
    ->Unit(benchmark::kMillisecond);

void BM_RowSampling(benchmark::State& state) {
  const linalg::Matrix a = RandomMatrix(64620, 100, 3);
  Rng rng(4);
  for (auto _ : state) {
    auto sample =
        core::SampleRows(a, 100, core::SamplingDistribution::kL2Norm, rng);
    benchmark::DoNotOptimize(sample);
  }
}
BENCHMARK(BM_RowSampling)->Unit(benchmark::kMillisecond);

void BM_SimilarityMatcher(benchmark::State& state) {
  const auto subjects = static_cast<std::size_t>(state.range(0));
  const auto features = static_cast<std::size_t>(state.range(1));
  const linalg::Matrix a = RandomMatrix(features, subjects, 5);
  const linalg::Matrix b = RandomMatrix(features, subjects, 6);
  for (auto _ : state) {
    auto sim = linalg::ColumnCrossCorrelation(a, b);
    benchmark::DoNotOptimize(sim);
  }
}
BENCHMARK(BM_SimilarityMatcher)
    ->Args({100, 100})
    ->Args({100, 64620})
    ->Args({1000, 100})
    ->Unit(benchmark::kMillisecond);

void BM_ConnectomeBuild(benchmark::State& state) {
  const auto regions = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix series = RandomMatrix(regions, 300, 7);
  for (auto _ : state) {
    auto conn = connectome::BuildConnectome(series);
    benchmark::DoNotOptimize(conn);
  }
}
BENCHMARK(BM_ConnectomeBuild)
    ->Arg(116)
    ->Arg(360)
    ->Unit(benchmark::kMillisecond);

void BM_BandPassFilter(benchmark::State& state) {
  const auto frames = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<double> x(frames);
  for (double& v : x) v = rng.Gaussian();
  signal::BandPassConfig config;
  for (auto _ : state) {
    auto y = signal::BandPassFilter(x, config);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_BandPassFilter)->Arg(300)->Arg(1200)->Arg(4096);

void BM_TsneIterations(benchmark::State& state) {
  const auto points = static_cast<std::size_t>(state.range(0));
  const linalg::Matrix data = RandomMatrix(points, 30, 9);
  core::TsneOptions options;
  options.max_iterations = 25;
  options.exaggeration_iterations = 10;
  options.perplexity = 10.0;
  for (auto _ : state) {
    auto result = core::TsneEmbed(data, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["iters_per_run"] = options.max_iterations;
}
BENCHMARK(BM_TsneIterations)
    ->Arg(100)
    ->Arg(400)
    ->Unit(benchmark::kMillisecond);

// Pre-tiling GEMM baselines: the serial form of the exact loops
// src/linalg/matrix.cc shipped immediately before the micro-kernel layer
// (per-output-row accumulation with zero-skips and the Gram symmetry
// trick), kept here so the comparison measures the tiling win against the
// real predecessor rather than a strawman.
linalg::Matrix NaiveMatMul(const linalg::Matrix& a, const linalg::Matrix& b) {
  linalg::Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

linalg::Matrix NaiveMatTMul(const linalg::Matrix& a, const linalg::Matrix& b) {
  linalg::Matrix out(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t k = 0; k < a.rows(); ++k) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aki * b(k, j);
    }
  }
  return out;
}

linalg::Matrix NaiveGram(const linalg::Matrix& a) {
  linalg::Matrix out(a.cols(), a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t k = 0; k < a.rows(); ++k) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = i; j < a.cols(); ++j) out(i, j) += aki * a(k, j);
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
  }
  return out;
}

// Tall group matrix whose identity signature is carried by a planted set
// of high-leverage rows with ramped boosts — the concentrated-leverage
// regime the attack targets. Mirrors the construction validated in
// core_attack_test.cc.
linalg::Matrix PlantedGroupMatrix(std::size_t rows, std::size_t cols,
                                  std::size_t num_planted,
                                  std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix a(rows, cols);
  linalg::Matrix u(rows, 10);
  linalg::Matrix v(cols, 10);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) a(i, j) = rng.Gaussian();
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t t = 0; t < 10; ++t) u(i, t) = rng.Gaussian();
  }
  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t t = 0; t < 10; ++t) v(j, t) = rng.Gaussian();
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      double s = 0.0;
      for (std::size_t t = 0; t < 10; ++t) {
        s += u(i, t) * v(j, t) / static_cast<double>(1 + t);
      }
      a(i, j) = 0.5 * a(i, j) + s;
    }
  }
  std::vector<std::size_t> planted = rng.Permutation(rows);
  planted.resize(num_planted);
  for (std::size_t p = 0; p < num_planted; ++p) {
    const double boost = 10.0 - 8.0 * static_cast<double>(p) /
                                    static_cast<double>(num_planted - 1);
    for (std::size_t j = 0; j < cols; ++j) a(planted[p], j) *= boost;
  }
  return a;
}

double TopOverlapFraction(const linalg::Vector& x, const linalg::Vector& y,
                          std::size_t t) {
  auto tx = core::TopKIndices(x, t);
  auto ty = core::TopKIndices(y, t);
  std::sort(tx.begin(), tx.end());
  std::sort(ty.begin(), ty.end());
  std::vector<std::size_t> both;
  std::set_intersection(tx.begin(), tx.end(), ty.begin(), ty.end(),
                        std::back_inserter(both));
  return static_cast<double>(both.size()) / static_cast<double>(t);
}

}  // namespace

// Single-thread comparison of the tiled GEMM micro-kernels against the
// pre-tiling naive loops, and of sketched leverage scoring against the
// exact decomposition paths, at the paper's 64620 x 100 group-matrix
// shape (shrunk under NEUROPRINT_BENCH_FAST). Results go to stdout, to
// scaling_kernels.csv, and — when --json was given — to the JSON report.
void ReportKernelComparisons(bench::JsonReporter* json) {
  const std::size_t rows = bench::FastMode() ? 6462 : 64620;
  const std::size_t cols = 100;
  CsvWriter csv;
  csv.SetHeader({"kernel", "rows", "cols", "baseline_sec", "optimized_sec",
                 "speedup", "top100_overlap"});
  char buf[64];
  const auto format = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return std::string(buf);
  };
  const auto emit = [&](const char* name, const char* baseline_kind,
                        double baseline_sec, double optimized_sec,
                        double overlap) {
    const double speedup =
        optimized_sec > 0.0 ? baseline_sec / optimized_sec : 0.0;
    std::printf("%-24s %11.3fs %11.3fs %7.2fx", name, baseline_sec,
                optimized_sec, speedup);
    if (overlap >= 0.0) std::printf("  overlap %.0f%%", 100.0 * overlap);
    std::printf("\n");
    csv.AddRow({name, format(static_cast<double>(rows)),
                format(static_cast<double>(cols)), format(baseline_sec),
                format(optimized_sec), format(speedup),
                overlap >= 0.0 ? format(overlap) : ""});
    if (json != nullptr) {
      json->BeginRecord(name);
      json->AddTextField("baseline", baseline_kind);
      json->AddField("rows", static_cast<double>(rows));
      json->AddField("cols", static_cast<double>(cols));
      json->AddField("baseline_sec", baseline_sec);
      json->AddField("optimized_sec", optimized_sec);
      json->AddField("speedup", speedup);
      if (overlap >= 0.0) json->AddField("top100_overlap", overlap);
    }
  };

  ScopedDefaultThreadCount serial(1);
  std::printf("kernel comparison (1 thread, %zu x %zu):\n", rows, cols);
  std::printf("%-24s %12s %12s %8s\n", "kernel", "baseline s", "tiled s",
              "speedup");
  {
    const linalg::Matrix a = RandomMatrix(rows, cols, 31);
    const linalg::Matrix b = RandomMatrix(rows, cols, 32);
    const linalg::Matrix c = RandomMatrix(cols, cols, 33);
    Stopwatch clock;
    auto naive = NaiveMatTMul(a, b);
    const double naive_att = clock.ElapsedSeconds();
    clock.Restart();
    auto tiled = linalg::MatTMul(a, b);
    emit("mattmul", "pre-tiling loops", naive_att, clock.ElapsedSeconds(),
         -1.0);
    benchmark::DoNotOptimize(naive);
    benchmark::DoNotOptimize(tiled);

    clock.Restart();
    auto naive_gram = NaiveGram(a);
    const double naive_g = clock.ElapsedSeconds();
    clock.Restart();
    auto tiled_gram = linalg::Gram(a);
    emit("gram", "pre-tiling loops", naive_g, clock.ElapsedSeconds(), -1.0);
    benchmark::DoNotOptimize(naive_gram);
    benchmark::DoNotOptimize(tiled_gram);

    clock.Restart();
    auto naive_mm = NaiveMatMul(a, c);
    const double naive_m = clock.ElapsedSeconds();
    clock.Restart();
    auto tiled_mm = linalg::MatMul(a, c);
    emit("matmul", "pre-tiling loops", naive_m, clock.ElapsedSeconds(), -1.0);
    benchmark::DoNotOptimize(naive_mm);
    benchmark::DoNotOptimize(tiled_mm);
  }
  {
    const linalg::Matrix a = PlantedGroupMatrix(rows, cols, 150, 41);

    core::LeverageOptions exact;
    exact.allow_gram_fast_path = false;
    Stopwatch clock;
    const auto svd_scores = core::ComputeLeverageScores(a, exact);
    const double svd_sec = clock.ElapsedSeconds();
    NP_CHECK(svd_scores.ok()) << svd_scores.status().ToString();

    core::LeverageOptions gram;
    clock.Restart();
    const auto gram_scores = core::ComputeLeverageScores(a, gram);
    const double gram_sec = clock.ElapsedSeconds();
    NP_CHECK(gram_scores.ok()) << gram_scores.status().ToString();

    core::LeverageOptions sketch;
    sketch.sketch = true;
    clock.Restart();
    const auto sketch_scores = core::ComputeLeverageScores(a, sketch);
    const double sketch_sec = clock.ElapsedSeconds();
    NP_CHECK(sketch_scores.ok()) << sketch_scores.status().ToString();

    emit("leverage_gram", "exact SVD leverage", svd_sec, gram_sec,
         TopOverlapFraction(*svd_scores, *gram_scores, 100));
    emit("leverage_sketch", "exact SVD leverage", svd_sec, sketch_sec,
         TopOverlapFraction(*svd_scores, *sketch_scores, 100));
  }
  std::printf("\n");
  bench::WriteCsvOrDie(csv, "scaling_kernels.csv");
}

// Per-ISA kernel comparison: times the gemm-bound and correlation kernels
// under the scalar dispatch table and under the best CPU-supported table
// (ScopedIsa swap; same process, same inputs). The determinism contract
// makes the scalar run a bitwise oracle for the vector run, which is
// asserted here — so the reported speedup can never come from a kernel
// that silently changed the math. One JSON record per kernel per ISA
// (BeginRecord stamps dispatch_isa while the override is active).
void ReportIsaKernels(bench::JsonReporter* json) {
  namespace simd = linalg::simd;
  const std::size_t rows = bench::FastMode() ? 6462 : 64620;
  const std::size_t cols = 100;
  const linalg::Matrix a = RandomMatrix(rows, cols, 51);
  const linalg::Matrix b = RandomMatrix(rows, cols, 52);
  const linalg::Matrix series = RandomMatrix(360, 1200, 53);

  struct Kernel {
    const char* name;
    linalg::Matrix (*run)(const linalg::Matrix&, const linalg::Matrix&);
  };
  const Kernel kernels[] = {
      {"mattmul",
       [](const linalg::Matrix& x, const linalg::Matrix& y) {
         return linalg::MatTMul(x, y);
       }},
      {"gram",
       [](const linalg::Matrix& x, const linalg::Matrix&) {
         return linalg::Gram(x);
       }},
      {"row_correlation",
       [](const linalg::Matrix&, const linalg::Matrix& s) {
         return linalg::RowCorrelation(s);
       }},
  };

  ScopedDefaultThreadCount serial(1);
  const simd::Isa best = simd::BestSupportedIsa();
  std::printf("per-ISA kernels (1 thread, scalar vs %s):\n",
              simd::IsaName(best));
  std::printf("%-24s %11s %11s %8s\n", "kernel", "scalar s",
              simd::IsaName(best), "speedup");
  for (const Kernel& kernel : kernels) {
    double scalar_sec = 0.0;
    linalg::Matrix scalar_out;
    {
      simd::ScopedIsa isa(simd::Isa::kScalar);
      Stopwatch clock;
      scalar_out = kernel.run(a, kernel.name == std::string("row_correlation")
                                     ? series
                                     : b);
      scalar_sec = clock.ElapsedSeconds();
      if (json != nullptr) {
        json->BeginRecord(std::string("isa/") + kernel.name);
        json->AddField("rows", static_cast<double>(rows));
        json->AddField("cols", static_cast<double>(cols));
        json->AddField("seconds", scalar_sec);
      }
    }
    simd::ScopedIsa isa(best);
    Stopwatch clock;
    const linalg::Matrix simd_out = kernel.run(
        a, kernel.name == std::string("row_correlation") ? series : b);
    const double simd_sec = clock.ElapsedSeconds();
    // The contract, enforced: vector kernels may only be faster, never
    // different.
    NP_CHECK((scalar_out - simd_out).MaxAbs() == 0.0)
        << kernel.name << " diverged between scalar and "
        << simd::IsaName(best);
    const double speedup = simd_sec > 0.0 ? scalar_sec / simd_sec : 0.0;
    std::printf("%-24s %10.3fs %10.3fs %7.2fx\n", kernel.name, scalar_sec,
                simd_sec, speedup);
    if (json != nullptr) {
      json->BeginRecord(std::string("isa/") + kernel.name);
      json->AddField("rows", static_cast<double>(rows));
      json->AddField("cols", static_cast<double>(cols));
      json->AddField("seconds", simd_sec);
      json->AddField("speedup_vs_scalar", speedup);
    }
  }
  std::printf("\n");
}

// Exact-SVD bidiagonalization comparison: the legacy serial Householder
// reduction (bidiag_panel = 1) against the blocked panel reduction, at 1
// thread and at `threads` (the blocked trailing updates are level-3 ops
// on the tiled GEMM path, so they scale with the pool). force_direct
// keeps the thin-QR preconditioner out of the way so the measurement is
// the reduction itself.
void ReportSvdBidiag(bench::JsonReporter* json, std::size_t threads) {
  const std::size_t rows = bench::FastMode() ? 400 : 1200;
  const std::size_t cols = bench::FastMode() ? 80 : 200;
  const linalg::Matrix a = RandomMatrix(rows, cols, 61);
  linalg::SvdOptions unblocked;
  unblocked.force_direct = true;
  unblocked.bidiag_panel = 1;
  linalg::SvdOptions blocked;
  blocked.force_direct = true;

  const auto time_svd = [&a](const linalg::SvdOptions& options) {
    Stopwatch clock;
    const auto svd = linalg::Svd(a, options);
    NP_CHECK(svd.ok()) << svd.status().ToString();
    benchmark::DoNotOptimize(svd);
    return clock.ElapsedSeconds();
  };

  double unblocked_sec = 0.0;
  double blocked_1t = 0.0;
  {
    ScopedDefaultThreadCount serial(1);
    unblocked_sec = time_svd(unblocked);
    blocked_1t = time_svd(blocked);
  }
  ScopedDefaultThreadCount parallel(threads);
  const double blocked_nt = time_svd(blocked);

  std::printf("exact-SVD bidiagonalization (%zu x %zu, force_direct):\n",
              rows, cols);
  std::printf("  serial Householder %8.3fs   blocked @1t %8.3fs (%.2fx)   "
              "blocked @%zut %8.3fs (%.2fx)\n\n",
              unblocked_sec, blocked_1t,
              blocked_1t > 0.0 ? unblocked_sec / blocked_1t : 0.0, threads,
              blocked_nt, blocked_nt > 0.0 ? blocked_1t / blocked_nt : 0.0);
  if (json != nullptr) {
    json->BeginRecord("svd_bidiag");
    json->AddField("rows", static_cast<double>(rows));
    json->AddField("cols", static_cast<double>(cols));
    json->AddField("unblocked_sec", unblocked_sec);
    json->AddField("blocked_1t_sec", blocked_1t);
    json->AddField("blocked_nt_sec", blocked_nt);
    json->AddField("threads", static_cast<double>(threads));
    json->AddField("speedup_blocked",
                   blocked_1t > 0.0 ? unblocked_sec / blocked_1t : 0.0);
    json->AddField("thread_scaling",
                   blocked_nt > 0.0 ? blocked_1t / blocked_nt : 0.0);
  }
}

// Times one run of `fn` at 1 thread and at `threads`, printing the
// speedup. The kernels are deterministic across thread counts, so the
// two runs produce bitwise-identical results and only wall-clock moves.
template <typename Fn>
void ReportKernelScaling(const char* name, std::size_t threads, Fn&& fn) {
  double sec_1t = 0.0;
  {
    ScopedDefaultThreadCount serial(1);
    Stopwatch clock;
    fn();
    sec_1t = clock.ElapsedSeconds();
  }
  ScopedDefaultThreadCount parallel(threads);
  Stopwatch clock;
  fn();
  const double sec_nt = clock.ElapsedSeconds();
  std::printf("%-24s %10.3fs %10.3fs %7.2fx\n", name, sec_1t, sec_nt,
              sec_nt > 0.0 ? sec_1t / sec_nt : 0.0);
}

void ReportThreadScaling(std::size_t threads) {
  std::printf("thread scaling (1 -> %zu threads):\n", threads);
  std::printf("%-24s %11s %11s %8s\n", "kernel", "sec @1t", "sec @Nt",
              "speedup");
  const linalg::Matrix series = RandomMatrix(360, 1200, 21);
  ReportKernelScaling("connectome_build", threads, [&] {
    auto conn = connectome::BuildConnectome(series);
    benchmark::DoNotOptimize(conn);
  });
  const linalg::Matrix known = RandomMatrix(6670, 100, 22);
  const linalg::Matrix anonymous = RandomMatrix(6670, 100, 23);
  ReportKernelScaling("similarity_matcher", threads, [&] {
    auto sim = linalg::ColumnCrossCorrelation(known, anonymous);
    benchmark::DoNotOptimize(sim);
  });
  std::printf("\n");
}

}  // namespace neuroprint

int main(int argc, char** argv) {
  const std::size_t flag_threads =
      neuroprint::bench::ParseThreadsFlag(&argc, argv);
  const std::string json_path = neuroprint::bench::ParseJsonFlag(&argc, argv);
  const std::size_t threads =
      neuroprint::ResolveThreadCount(neuroprint::ParallelContext{flag_threads});
  neuroprint::bench::JsonReporter json;
  neuroprint::ReportKernelComparisons(&json);
  neuroprint::ReportIsaKernels(&json);
  neuroprint::ReportSvdBidiag(&json, threads);
  neuroprint::bench::WriteJsonOrDie(json, json_path);
  neuroprint::ReportThreadScaling(threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
