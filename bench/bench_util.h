// Shared helpers for the experiment benches: each bench binary regenerates
// one table or figure of the paper (same rows/series), prints it to
// stdout, and writes a CSV next to the binary.

#ifndef NEUROPRINT_BENCH_BENCH_UTIL_H_
#define NEUROPRINT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "connectome/group_matrix.h"
#include "core/attack.h"
#include "sim/cohort.h"
#include "util/csv_writer.h"
#include "util/string_util.h"

namespace neuroprint::bench {

/// Prints a banner naming the experiment and the paper artifact.
void PrintHeader(const char* experiment_id, const char* description);

/// Writes the CSV (aborting the bench on I/O failure) and reports the path.
void WriteCsvOrDie(const CsvWriter& csv, const std::string& filename);

/// Fits on `known` and identifies `anonymous`; returns accuracy in percent.
double IdentificationAccuracyPercent(const connectome::GroupMatrix& known,
                                     const connectome::GroupMatrix& anonymous,
                                     std::size_t num_features = 100);

/// Splits subject indices 0..n-1 into train/test with the given train
/// count, shuffled by `rng`.
struct SubjectSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};
SubjectSplit SplitSubjects(std::size_t n, std::size_t train_count, Rng& rng);

/// Extracts the sub-group-matrix for the given subject indices.
connectome::GroupMatrix SelectSubjects(const connectome::GroupMatrix& group,
                                       const std::vector<std::size_t>& subjects);

/// Mean and sample standard deviation of a series of values.
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd Summarize(const std::vector<double>& values);

/// True if NEUROPRINT_BENCH_FAST is set: benches shrink their cohorts so a
/// full sweep finishes in seconds (used in smoke checks; reported sizes
/// are printed either way).
bool FastMode();

/// Parses and strips a `--threads=N` flag from argv (compacting argc in
/// place so later flag parsers never see it). A valid value is applied via
/// SetDefaultThreadCount so every kernel taking a default ParallelContext
/// picks it up; an invalid value exits with an error. Returns the parsed
/// count, or 0 when the flag is absent (keeping the NEUROPRINT_THREADS /
/// hardware default).
std::size_t ParseThreadsFlag(int* argc, char** argv);

/// Accumulates flat benchmark records and serializes them as a JSON array
/// of objects, one per record, each carrying a "name" field plus the
/// numeric/text fields added to it. Machine-readable companion to the
/// printed tables (BENCH_gemm.json, CI bench-smoke validation).
class JsonReporter {
 public:
  /// Starts a new record; subsequent Add*Field calls attach to it. Every
  /// record automatically carries a "peak_rss_bytes" field — the process
  /// high-water-mark resident set at the time the record was opened
  /// (getrusage; null on platforms without it) — so memory regressions are
  /// recorded alongside timings without per-bench plumbing. It also
  /// carries "dispatch_isa" (the SIMD table active when the record was
  /// opened: "scalar"/"avx2"/"neon") and "isa_override" (the raw
  /// NEUROPRINT_ISA value latched at first dispatch, "" when unset) so
  /// every perf number is attributable to the kernels that produced it.
  void BeginRecord(const std::string& name);

  /// Adds a numeric field to the current record (%.9g; non-finite values
  /// are serialized as null, which strict JSON parsers accept).
  void AddField(const std::string& key, double value);

  /// Adds a string field to the current record (escaped as needed).
  void AddTextField(const std::string& key, const std::string& value);

  std::size_t record_count() const { return records_.size(); }

  /// Serializes all records as a JSON array.
  std::string ToString() const;

  /// Writes the JSON document to `path`, overwriting.
  Status WriteFile(const std::string& path) const;

 private:
  struct Record {
    std::string name;
    /// key -> pre-serialized JSON value (number, null, or quoted string).
    std::vector<std::pair<std::string, std::string>> fields;
  };
  std::vector<Record> records_;
};

/// Parses and strips a `--json=PATH` flag from argv (same compaction as
/// ParseThreadsFlag). Returns the path, or "" when the flag is absent.
std::string ParseJsonFlag(int* argc, char** argv);

/// Writes the JSON report (aborting the bench on I/O failure) and reports
/// the path. A no-op when `path` is empty (flag absent).
void WriteJsonOrDie(const JsonReporter& json, const std::string& path);

/// Parses and strips a `--trace=PATH` flag from argv. When present,
/// enables span/metric collection (trace::SetEnabled) and returns the
/// chrome://tracing output path; "" when absent.
std::string ParseTraceFlag(int* argc, char** argv);

/// Parses and strips a `--metrics=PATH` flag from argv. When present,
/// enables span/metric collection and returns the metrics-JSON output
/// path; "" when absent.
std::string ParseMetricsFlag(int* argc, char** argv);

/// Appends one record per collected metric to `json` (name prefixed
/// "metric/", fields kind/stability/value or count/sum/min/max), so a
/// bench's `--json` artifact carries its metrics alongside the timings.
void AppendMetricsRecords(JsonReporter& json);

/// Writes the chrome trace / metrics JSON to their paths (no-op for empty
/// paths; aborts the bench on I/O failure).
void WriteTraceOrDie(const std::string& trace_path);
void WriteMetricsOrDie(const std::string& metrics_path);

}  // namespace neuroprint::bench

#endif  // NEUROPRINT_BENCH_BENCH_UTIL_H_
