// Example: the full raw-image path — NIfTI files on disk, through the
// Figure-4 preprocessing pipeline, to a cross-session identity match.
//
// Two subjects are simulated at the voxel level (with head motion,
// scanner drift, and measurement noise planted), written to .nii.gz,
// read back, preprocessed, parcellated, and matched across sessions.
// This is the attacker's real-world workflow: their inputs are image
// files, not ready-made connectomes.
//
// Build & run:  ./build/examples/nifti_pipeline [output_dir]

#include <cstdio>
#include <string>
#include <vector>

#include "atlas/synthetic_atlas.h"
#include "connectome/connectome.h"
#include "connectome/group_matrix.h"
#include "core/attack.h"
#include "nifti/nifti_io.h"
#include "preprocess/pipeline.h"
#include "sim/cohort.h"
#include "sim/voxel_render.h"
#include "util/random.h"
#include "util/stopwatch.h"

using namespace neuroprint;

namespace {

constexpr std::size_t kSubjects = 4;

std::string ScanPath(const std::string& dir, std::size_t subject,
                     const char* session) {
  return dir + "/sub" + std::to_string(subject) + "_" + session + ".nii.gz";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/neuroprint_nifti_demo";
  (void)std::system(("mkdir -p " + dir).c_str());

  // A small Glasser-like atlas (fewer regions so the demo runs in
  // seconds) and a cohort whose region series will be rendered to voxels.
  atlas::SyntheticAtlasConfig atlas_config;
  atlas_config.nx = 24;
  atlas_config.ny = 28;
  atlas_config.nz = 24;
  atlas_config.num_regions = 60;
  atlas_config.seed = 11;
  auto atlas = atlas::GenerateSyntheticAtlas(atlas_config);
  if (!atlas.ok()) return 1;

  sim::CohortConfig cohort_config = sim::HcpLikeConfig();
  cohort_config.num_subjects = kSubjects;
  cohort_config.num_regions = atlas->num_regions();
  cohort_config.frames_override = 280;
  // Coarse 60-region parcels average many voxels, boosting per-edge SNR
  // (same reasoning as the AAL2 preset in sim/cohort.cc).
  cohort_config.signature_scale = 1.4;
  auto cohort = sim::CohortSimulator::Create(cohort_config);
  if (!cohort.ok()) return 1;

  // 1. Acquire: render each subject's two sessions and write NIfTI files.
  std::printf("writing %zu scans to %s ...\n", 2 * kSubjects, dir.c_str());
  Rng rng(31);
  for (std::size_t s = 0; s < kSubjects; ++s) {
    for (const auto& [encoding, name] :
         {std::pair{sim::Encoding::kLeftRight, "LR"},
          std::pair{sim::Encoding::kRightLeft, "RL"}}) {
      auto series = cohort->SimulateRegionSeries(s, sim::TaskType::kRest, encoding);
      if (!series.ok()) return 1;
      sim::VoxelRenderConfig render;
      render.motion_step = 0.02;  // ~0.3 voxel drift: head motion is small
                                  // relative to this demo's coarse parcels.
      render.drift_amplitude = 12.0;
      render.plant_slice_timing = true;
      auto run = sim::RenderVoxelRun(*atlas, *series, render, rng);
      if (!run.ok()) return 1;
      const Status written = nifti::WriteNifti(ScanPath(dir, s, name), *run);
      if (!written.ok()) {
        std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
        return 1;
      }
    }
  }

  // 2. Preprocess: read each file back and run the Figure-4 pipeline.
  preprocess::PipelineConfig pipeline = preprocess::RestingStateConfig();
  pipeline.registration.sample_stride = 2;
  pipeline.smoothing_fwhm_mm = 0.0;  // Parcels are small on this demo grid.
  // The 0.008-0.1 Hz band-pass isolates haemodynamic fluctuations in real
  // BOLD data; the simulator's region signals are broadband by
  // construction, so the band-pass would discard ~86% of their energy and
  // with it the correlation signal. Detrending handles the planted drift.
  pipeline.temporal_filter = preprocess::TemporalFilter::kNone;

  auto process_session = [&](const char* name) {
    std::vector<linalg::Vector> columns;
    std::vector<std::string> ids;
    for (std::size_t s = 0; s < kSubjects; ++s) {
      auto image = nifti::ReadNifti(ScanPath(dir, s, name));
      if (!image.ok()) {
        std::fprintf(stderr, "read: %s\n", image.status().ToString().c_str());
        std::exit(1);
      }
      auto output = preprocess::RunPipeline(image->data, *atlas, pipeline);
      if (!output.ok()) {
        std::fprintf(stderr, "pipeline: %s\n",
                     output.status().ToString().c_str());
        std::exit(1);
      }
      auto connectome = connectome::BuildConnectome(output->region_series);
      auto features = connectome::VectorizeUpperTriangle(*connectome);
      columns.push_back(*features);
      ids.push_back("subject-" + std::to_string(s));
    }
    return *connectome::GroupMatrix::FromFeatureColumns(columns, ids);
  };

  Stopwatch clock;
  const auto known = process_session("LR");
  const auto anonymous = process_session("RL");
  std::printf("preprocessed %zu scans in %.1fs (%zu features each)\n",
              2 * kSubjects, clock.ElapsedSeconds(), known.num_features());

  // 3. Attack: match the anonymous session against the known one.
  core::AttackOptions options;
  options.num_features = 50;
  auto attack = core::DeanonymizationAttack::Fit(known, options);
  if (!attack.ok()) return 1;
  auto result = attack->Identify(anonymous);
  if (!result.ok()) return 1;

  std::printf("\nmatches (from raw .nii.gz files through the full pipeline):\n");
  for (std::size_t j = 0; j < kSubjects; ++j) {
    std::printf("  %s  ->  %s   %s\n", anonymous.subject_ids()[j].c_str(),
                result->predicted_ids[j].c_str(),
                result->predicted_ids[j] == anonymous.subject_ids()[j]
                    ? "CORRECT"
                    : "wrong");
  }
  std::printf("accuracy: %.0f%%\n", 100.0 * result->accuracy);
  return 0;
}
