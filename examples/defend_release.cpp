// Example: the DEFENDER's workflow (the paper's Discussion section).
//
// A data custodian wants to publish a connectome dataset. The paper's
// central observation cuts both ways: because leverage scores localize
// the identity signature, the custodian can (a) see exactly which edges
// and regions carry identity, and (b) suppress them before release. This
// demo measures what that buys — and what it costs — against both a
// static attacker (fitted on clean data from another session) and an
// attacker who re-fits on the defended release.
//
// Build & run:  ./build/examples/defend_release

#include <cstdio>

#include "core/defense.h"
#include "core/signature_map.h"
#include "sim/cohort.h"

using namespace neuroprint;

int main() {
  sim::CohortConfig config = sim::HcpLikeConfig();
  config.num_subjects = 40;
  auto cohort = sim::CohortSimulator::Create(config);
  if (!cohort.ok()) return 1;

  // The attacker holds session 1 with identities; the custodian is about
  // to release session 2.
  auto attacker_data =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  auto release =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  if (!attacker_data.ok() || !release.ok()) return 1;

  // 1. The custodian localizes the signature in their own data.
  auto defense_probe = core::DeanonymizationAttack::Fit(*release);
  if (!defense_probe.ok()) return 1;
  auto importance = core::ComputeRegionImportance(
      defense_probe->selected_features(), defense_probe->leverage_scores(),
      config.num_regions);
  if (importance.ok()) {
    std::printf("signature is concentrated: top 5 of %zu regions carry\n",
                config.num_regions);
    double top_mass = 0.0, total_mass = 0.0;
    for (std::size_t i = 0; i < importance->size(); ++i) {
      if (i < 5) top_mass += (*importance)[i].leverage_mass;
      total_mass += (*importance)[i].leverage_mass;
    }
    std::printf("  %.0f%% of the selected leverage mass\n",
                100.0 * top_mass / total_mass);
  }

  // 2. Sweep suppression budgets and report the privacy/utility frontier.
  std::printf("\n%-18s %12s %10s %10s %12s\n", "suppressed edges",
              "undefended", "static", "refit", "distortion");
  for (const std::size_t edges : {200u, 1000u, 5000u, 20000u}) {
    core::DefenseOptions options;
    options.mode = core::DefenseMode::kShuffle;
    options.num_edges = edges;
    auto eval = core::EvaluateDefense(*attacker_data, *release, options);
    if (!eval.ok()) {
      std::fprintf(stderr, "evaluate: %s\n", eval.status().ToString().c_str());
      return 1;
    }
    std::printf("%-18zu %11.1f%% %9.1f%% %9.1f%% %12.4f\n", edges,
                100 * eval->accuracy_undefended,
                100 * eval->accuracy_static_attacker,
                100 * eval->accuracy_adaptive_attacker, eval->distortion);
  }

  std::printf(
      "\ntakeaway: suppressing only the top few hundred edges does NOT stop "
      "an attacker whose\nfeature set came from a different session — the "
      "signature is low-rank but spread over\nmany edges. Meaningful "
      "protection requires suppressing a large fraction of the\nconnectome, "
      "with the distortion that implies. Defending is much harder than "
      "attacking.\n");
  return 0;
}
