// Example: predicting WHICH task an anonymous scan comes from
// (the paper's Section 3.3.2 / Figure 6).
//
// All scans — resting state plus seven tasks for every subject — are
// embedded into two dimensions with t-SNE. Scans cluster by task, not by
// subject, so a 1-nearest-neighbour rule against the scans with known
// labels predicts the task of an anonymous scan almost perfectly.
//
// Build & run:  ./build/examples/task_identification

#include <cstdio>
#include <vector>

#include "core/knn.h"
#include "core/tsne.h"
#include "sim/cohort.h"

using namespace neuroprint;

int main() {
  // A reduced cohort keeps this demo under a minute; the full-scale
  // reproduction is bench/bench_fig6_tsne_task.
  sim::CohortConfig config = sim::HcpLikeConfig();
  config.num_subjects = 24;
  auto cohort = sim::CohortSimulator::Create(config);
  if (!cohort.ok()) {
    std::fprintf(stderr, "cohort: %s\n", cohort.status().ToString().c_str());
    return 1;
  }
  const std::size_t subjects = config.num_subjects;

  // Stack every scan's vectorized connectome into one point set.
  std::vector<linalg::Vector> rows;
  std::vector<int> labels;
  for (sim::TaskType task : sim::kAllTasks) {
    auto group = cohort->BuildGroupMatrix(task, sim::Encoding::kLeftRight);
    if (!group.ok()) return 1;
    for (std::size_t s = 0; s < subjects; ++s) {
      rows.push_back(group->SubjectColumn(s));
      labels.push_back(static_cast<int>(task));
    }
  }
  linalg::Matrix points(rows.size(), rows[0].size());
  for (std::size_t i = 0; i < rows.size(); ++i) points.SetRow(i, rows[i]);
  std::printf("embedding %zu scans (%zu features each) with t-SNE...\n",
              points.rows(), points.cols());

  core::TsneOptions options;
  options.perplexity = 20.0;
  options.max_iterations = 500;
  auto embedding = core::TsneEmbed(points, options);
  if (!embedding.ok()) {
    std::fprintf(stderr, "tsne: %s\n", embedding.status().ToString().c_str());
    return 1;
  }
  std::printf("done: KL divergence %.3f\n\n", embedding->kl_divergence);

  // Even-indexed subjects keep their labels; odd-indexed are "anonymous".
  std::vector<int> train_labels, test_labels;
  std::vector<std::size_t> train_rows, test_rows;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if ((i % subjects) % 2 == 0) {
      train_rows.push_back(i);
      train_labels.push_back(labels[i]);
    } else {
      test_rows.push_back(i);
      test_labels.push_back(labels[i]);
    }
  }
  linalg::Matrix train(train_rows.size(), 2), test(test_rows.size(), 2);
  for (std::size_t i = 0; i < train_rows.size(); ++i) {
    train.SetRow(i, embedding->embedding.RowCopy(train_rows[i]));
  }
  for (std::size_t i = 0; i < test_rows.size(); ++i) {
    test.SetRow(i, embedding->embedding.RowCopy(test_rows[i]));
  }
  auto predicted = core::KnnClassify(train, train_labels, test, 1);
  if (!predicted.ok()) return 1;

  std::printf("per-task prediction accuracy (1-NN in the t-SNE plane):\n");
  for (sim::TaskType task : sim::kAllTasks) {
    std::size_t total = 0, correct = 0;
    for (std::size_t i = 0; i < test_labels.size(); ++i) {
      if (test_labels[i] != static_cast<int>(task)) continue;
      ++total;
      if ((*predicted)[i] == test_labels[i]) ++correct;
    }
    std::printf("  %-11s %5.1f%%\n", sim::TaskName(task),
                100.0 * static_cast<double>(correct) / static_cast<double>(total));
  }
  auto overall = core::ClassificationAccuracy(*predicted, test_labels);
  std::printf("overall: %.1f%%  (paper: 100%% tasks, ~99%% rest)\n",
              100.0 * *overall);
  return 0;
}
