// Quickstart: the de-anonymization attack end-to-end on a simulated
// HCP-like cohort.
//
// An attacker holds a de-anonymized resting-state dataset (the L-R scans
// of 100 subjects) and a second, anonymized dataset of the same people
// (their R-L scans, acquired on a different day). The attack selects the
// connectome edges with the highest leverage scores in the known dataset
// and matches anonymous subjects to known identities by Pearson
// correlation over those edges.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/attack.h"
#include "core/signature_map.h"
#include "sim/cohort.h"

using neuroprint::connectome::GroupMatrix;
using neuroprint::core::AttackOptions;
using neuroprint::core::ComputeSimilarityStats;
using neuroprint::core::DeanonymizationAttack;
using neuroprint::sim::CohortSimulator;
using neuroprint::sim::Encoding;
using neuroprint::sim::HcpLikeConfig;
using neuroprint::sim::TaskType;

int main() {
  // 1. Simulate the cohort (stands in for the HCP "100 unrelated
  //    subjects" release; see DESIGN.md for the substitution rationale).
  auto cohort = CohortSimulator::Create(HcpLikeConfig());
  if (!cohort.ok()) {
    std::fprintf(stderr, "cohort: %s\n", cohort.status().ToString().c_str());
    return 1;
  }
  std::printf("Simulated cohort: %zu subjects, %zu regions\n",
              cohort->config().num_subjects, cohort->config().num_regions);

  // 2. Build the two group matrices (features x subjects): the attacker's
  //    de-anonymized set and the anonymous target set.
  auto known = cohort->BuildGroupMatrix(TaskType::kRest, Encoding::kLeftRight);
  auto anonymous =
      cohort->BuildGroupMatrix(TaskType::kRest, Encoding::kRightLeft);
  if (!known.ok() || !anonymous.ok()) {
    std::fprintf(stderr, "group matrices failed\n");
    return 1;
  }
  std::printf("Group matrices: %zu features x %zu subjects\n",
              known->num_features(), known->num_subjects());

  // 3. Fit the attack on the known dataset: leverage scores -> top-100
  //    principal features.
  AttackOptions options;
  options.num_features = 100;
  auto attack = DeanonymizationAttack::Fit(*known, options);
  if (!attack.ok()) {
    std::fprintf(stderr, "fit: %s\n", attack.status().ToString().c_str());
    return 1;
  }
  std::printf("Selected %zu of %zu features by leverage score\n",
              attack->selected_features().size(), known->num_features());

  // 4. Identify the anonymous subjects.
  auto result = attack->Identify(*anonymous);
  if (!result.ok()) {
    std::fprintf(stderr, "identify: %s\n", result.status().ToString().c_str());
    return 1;
  }
  auto stats = ComputeSimilarityStats(result->similarity);
  std::printf("\nIdentification accuracy: %.1f%%\n", 100.0 * result->accuracy);
  if (stats.ok()) {
    std::printf("Similarity diagonal mean %.3f vs off-diagonal mean %.3f "
                "(contrast %.3f)\n",
                stats->diagonal_mean, stats->off_diagonal_mean,
                stats->contrast);
  }
  std::printf("\nFirst five matches:\n");
  for (std::size_t j = 0; j < 5 && j < result->predicted_ids.size(); ++j) {
    std::printf("  anonymous %s -> predicted %s\n",
                anonymous->subject_ids()[j].c_str(),
                result->predicted_ids[j].c_str());
  }

  // 5. Localize the signature (the paper's Discussion): which brain
  //    regions do the selected edges concentrate on? This is where a
  //    defender would have to add noise.
  auto importance = neuroprint::core::ComputeRegionImportance(
      attack->selected_features(), attack->leverage_scores(),
      cohort->config().num_regions);
  if (importance.ok()) {
    std::printf("\nTop signature regions (of %zu):\n",
                cohort->config().num_regions);
    for (std::size_t i = 0; i < 5; ++i) {
      const auto& entry = (*importance)[i];
      std::printf("  region %3zu: %2zu selected edges, leverage mass %.3f\n",
                  entry.region_index + 1, entry.edge_count,
                  entry.leverage_mass);
    }
  }
  return 0;
}
