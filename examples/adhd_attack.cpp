// Example: de-anonymizing a clinical cohort (the paper's Section 3.3.4).
//
// The ADHD-200-like cohort mixes controls with three ADHD subtypes, uses
// a different (116-region, AAL2-like) atlas than the HCP experiments, a
// different TR, and shorter scans — and the same attack still identifies
// subjects across sessions. The demo also shows the paper's train/test
// protocol: leverage features selected on one half of the cohort transfer
// to held-out subjects.
//
// Build & run:  ./build/examples/adhd_attack

#include <cstdio>
#include <vector>

#include "core/attack.h"
#include "core/matcher.h"
#include "sim/cohort.h"
#include "util/random.h"

using namespace neuroprint;

int main() {
  auto cohort = sim::CohortSimulator::Create(sim::AdhdLikeConfig());
  if (!cohort.ok()) {
    std::fprintf(stderr, "cohort: %s\n", cohort.status().ToString().c_str());
    return 1;
  }
  const auto& config = cohort->config();
  std::printf("ADHD-200-like cohort: %zu subjects (%zu controls + %zu/%zu/%zu "
              "ADHD subtypes), %zu regions\n",
              config.num_subjects, config.group_sizes[0],
              config.group_sizes[1], config.group_sizes[2],
              config.group_sizes[3], config.num_regions);

  auto session1 =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  auto session2 =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kRightLeft);
  if (!session1.ok() || !session2.ok()) return 1;
  std::printf("feature space: %zu region-pair correlations (paper: 6670)\n\n",
              session1->num_features());

  // Whole-cohort session-to-session identification (Figure 9).
  auto attack = core::DeanonymizationAttack::Fit(*session1);
  if (!attack.ok()) return 1;
  auto result = attack->Identify(*session2);
  if (!result.ok()) return 1;
  std::printf("full-cohort identification: %.1f%%  (paper: 94.12 ± 3.4%%)\n",
              100.0 * result->accuracy);

  // Per-group accuracy: cases are as identifiable as controls.
  std::printf("\nper-group accuracy:\n");
  const char* group_names[] = {"controls", "ADHD subtype 1", "ADHD subtype 2",
                               "ADHD subtype 3"};
  for (std::size_t g = 0; g < 4; ++g) {
    std::size_t total = 0, correct = 0;
    for (std::size_t s = 0; s < config.num_subjects; ++s) {
      if (cohort->GroupOf(s) != g) continue;
      ++total;
      if (result->predicted_ids[s] == session2->subject_ids()[s]) ++correct;
    }
    std::printf("  %-16s %5.1f%%  (%zu subjects)\n", group_names[g],
                100.0 * static_cast<double>(correct) / static_cast<double>(total),
                total);
  }

  // Train/test transfer: features chosen on half the cohort identify the
  // other half (paper: 97.2 ± 0.9%).
  Rng rng(99);
  auto order = rng.Permutation(config.num_subjects);
  const std::size_t half = config.num_subjects / 2;
  std::vector<linalg::Vector> train_cols, test1_cols, test2_cols;
  std::vector<std::string> train_ids, test_ids;
  for (std::size_t i = 0; i < config.num_subjects; ++i) {
    const std::size_t s = order[i];
    if (i < half) {
      train_cols.push_back(session1->SubjectColumn(s));
      train_ids.push_back(session1->subject_ids()[s]);
    } else {
      test1_cols.push_back(session1->SubjectColumn(s));
      test2_cols.push_back(session2->SubjectColumn(s));
      test_ids.push_back(session1->subject_ids()[s]);
    }
  }
  auto train = connectome::GroupMatrix::FromFeatureColumns(train_cols, train_ids);
  auto test1 = connectome::GroupMatrix::FromFeatureColumns(test1_cols, test_ids);
  auto test2 = connectome::GroupMatrix::FromFeatureColumns(test2_cols, test_ids);
  if (!train.ok() || !test1.ok() || !test2.ok()) return 1;

  auto feature_source = core::DeanonymizationAttack::Fit(*train);
  if (!feature_source.ok()) return 1;
  auto k = test1->RestrictToFeatures(feature_source->selected_features());
  auto a = test2->RestrictToFeatures(feature_source->selected_features());
  auto similarity = core::SimilarityMatrix(*k, *a);
  auto accuracy = core::IdentificationAccuracy(core::ArgmaxMatch(*similarity),
                                               k->subject_ids(),
                                               a->subject_ids());
  std::printf("\nheld-out transfer accuracy: %.1f%%  (paper: 97.2 ± 0.9%%)\n",
              100.0 * *accuracy);
  std::printf("\ntakeaway: hospital fMRI records of clinical populations are "
              "as linkable as research scans.\n");
  return 0;
}
