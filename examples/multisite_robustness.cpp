// Example: robustness of the brain signature to multi-site acquisition
// (the paper's Section 3.3.5 / Table 2).
//
// The second session's time series are degraded with the paper's noising
// operator (Gaussian noise carrying the signal's mean and a fraction of
// its variance) plus a structured scanner/site effect, and the attack is
// re-run at increasing noise levels.
//
// Build & run:  ./build/examples/multisite_robustness

#include <cstdio>

#include "core/attack.h"
#include "util/string_util.h"
#include "sim/cohort.h"

using namespace neuroprint;

int main() {
  sim::CohortConfig config = sim::HcpLikeConfig();
  config.num_subjects = 40;  // Reduced for demo speed; the full-scale
                             // reproduction is bench/bench_table2_multisite.
  auto cohort = sim::CohortSimulator::Create(config);
  if (!cohort.ok()) {
    std::fprintf(stderr, "cohort: %s\n", cohort.status().ToString().c_str());
    return 1;
  }

  auto known =
      cohort->BuildGroupMatrix(sim::TaskType::kRest, sim::Encoding::kLeftRight);
  if (!known.ok()) return 1;
  auto attack = core::DeanonymizationAttack::Fit(*known);
  if (!attack.ok()) return 1;
  std::printf("attack fitted on the clean session (%zu subjects)\n\n",
              config.num_subjects);

  std::printf("%-22s %s\n", "noise variance", "identification accuracy");
  for (const double fraction : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    auto anonymous = cohort->BuildGroupMatrix(
        sim::TaskType::kRest, sim::Encoding::kRightLeft, fraction);
    if (!anonymous.ok()) return 1;
    auto result = attack->Identify(*anonymous);
    if (!result.ok()) return 1;
    std::printf("%-22s %6.1f%%\n",
                fraction == 0.0 ? "none (same scanner)"
                                : StrFormat("%.0f%% of signal var",
                                            100 * fraction)
                                      .c_str(),
                100.0 * result->accuracy);
  }
  std::printf("\npaper (Table 2, HCP): 91.1%% at 10%%, 86.7%% at 20%%, "
              "79.1%% at 30%%.\n");
  std::printf("takeaway: scans taken on different machines at different "
              "hospitals remain linkable.\n");
  return 0;
}
