// CLI driver for the repo-invariant checker (tools/lint/lint.h).
//
// Usage: neuroprint_lint <src-dir>...
//
// Lints every .h/.cc under each directory and prints findings as
// `file:line: [rule] message`. Exits 0 when clean, 1 when any rule fired,
// 2 on usage error. Run via `tools/run_checks.sh` or ctest (`lint_test`).

#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <src-dir>...\n", argv[0]);
    return 2;
  }
  std::size_t total = 0;
  for (int i = 1; i < argc; ++i) {
    const std::vector<neuroprint::lint::Finding> findings =
        neuroprint::lint::LintTree(argv[i]);
    for (const neuroprint::lint::Finding& finding : findings) {
      std::fprintf(stderr, "%s\n", finding.ToString().c_str());
    }
    total += findings.size();
  }
  if (total > 0) {
    std::fprintf(stderr, "neuroprint_lint: %zu finding(s)\n", total);
    return 1;
  }
  std::printf("neuroprint_lint: clean\n");
  return 0;
}
