// CLI driver for the repo-invariant checker (tools/lint/lint.h).
//
// Usage: neuroprint_lint [--format=text|json|github] [--self-check] <dir>...
//
// Lints every .h/.cc under each directory. `--format` selects the output
// encoding: `text` (default, file:line: [rule] message), `json` (an array
// of finding objects for tooling), or `github` (::error workflow-command
// annotations that render inline on a PR diff). `--self-check <repo-root>`
// lints the engine's own sources under <repo-root>/tools/lint instead of
// the directories themselves, proving the checker passes its own rules.
//
// Exits 0 when clean, 1 when any rule fired, 2 on usage error. Run via
// `tools/run_checks.sh` or ctest (`lint_test`).

#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint/lint.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--format=text|json|github] [--self-check] <dir>...\n"
      "  <dir>           directory tree of .h/.cc files to lint (e.g. src)\n"
      "  --format=FMT    output encoding: text (default), json, github\n"
      "  --self-check    treat each <dir> as a repo root and lint its\n"
      "                  tools/lint sources under repo-relative paths\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  bool self_check = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "github") {
        std::fprintf(stderr, "%s: unknown format '%s'\n", argv[0],
                     format.c_str());
        return Usage(argv[0]);
      }
    } else if (arg == "--self-check") {
      self_check = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg.c_str());
      return Usage(argv[0]);
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) return Usage(argv[0]);

  std::size_t total = 0;
  std::string rendered;
  for (const std::string& dir : dirs) {
    std::vector<neuroprint::lint::Finding> findings;
    std::string prefix;
    if (self_check) {
      // Findings come back as "tools/lint/...", relative to the repo root.
      findings = neuroprint::lint::LintTreeRelative(dir + "/tools/lint", dir);
    } else {
      findings = neuroprint::lint::LintTree(dir);
      prefix = dir;
    }
    rendered += neuroprint::lint::FormatFindings(findings, format, prefix);
    total += findings.size();
  }
  if (format == "json" && dirs.size() > 1) {
    // Concatenated arrays are not valid JSON; one invocation, one tree.
    std::fprintf(stderr,
                 "%s: --format=json supports a single <dir> argument\n",
                 argv[0]);
    return 2;
  }
  std::fputs(rendered.c_str(), format == "json" ? stdout : stderr);
  if (total > 0) {
    std::fprintf(stderr, "neuroprint_lint: %zu finding(s)\n", total);
    return 1;
  }
  if (format != "json") std::printf("neuroprint_lint: clean\n");
  return 0;
}
