#!/usr/bin/env bash
# One-command static-analysis driver: format check + repo lint + clang-tidy.
#
#   tools/run_checks.sh [--fix]
#
# Environment:
#   BUILD_DIR   build tree with compile_commands.json (default: build)
#   SKIP_TIDY   set to 1 to skip clang-tidy even when installed
#
# External analyzers (clang-format, clang-tidy) are skipped with a notice
# when not installed, so the script degrades gracefully in minimal
# containers; the in-repo checks (neuroprint_lint) always run. Exit code is
# nonzero iff an executed check found a problem.

set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
FIX=0
[[ "${1:-}" == "--fix" ]] && FIX=1

failures=0
note() { printf '== %s\n' "$*"; }

# Library + tool sources; excludes third-party-free build trees.
mapfile -t sources < <(find src tools tests bench examples \
  -name '*.cc' -o -name '*.h' 2>/dev/null | sort)

# ---- 1. clang-format ------------------------------------------------------
if command -v clang-format >/dev/null 2>&1; then
  if [[ "$FIX" == 1 ]]; then
    note "clang-format: rewriting ${#sources[@]} files"
    clang-format -i "${sources[@]}" || failures=$((failures + 1))
  else
    note "clang-format: checking ${#sources[@]} files"
    if ! clang-format --dry-run -Werror "${sources[@]}"; then
      note "clang-format: FAILED (run tools/run_checks.sh --fix)"
      failures=$((failures + 1))
    fi
  fi
else
  note "clang-format: not installed, SKIPPED"
fi

# ---- 2. neuroprint_lint ---------------------------------------------------
note "neuroprint_lint: building"
config_log="$(mktemp)"
if ! cmake -B "$BUILD_DIR" -S . >"$config_log" 2>&1 ||
   ! cmake --build "$BUILD_DIR" --target neuroprint_lint -j >"$config_log" 2>&1; then
  cat "$config_log"
  note "neuroprint_lint: build FAILED"
  failures=$((failures + 1))
else
  note "neuroprint_lint: checking src/"
  if ! "$BUILD_DIR/tools/neuroprint_lint" src; then
    failures=$((failures + 1))
  fi
fi
rm -f "$config_log"

# ---- 3. clang-tidy --------------------------------------------------------
if [[ "${SKIP_TIDY:-0}" == 1 ]]; then
  note "clang-tidy: SKIP_TIDY=1, SKIPPED"
elif command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    note "clang-tidy: no $BUILD_DIR/compile_commands.json, SKIPPED"
  else
    mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
    note "clang-tidy: checking ${#tidy_sources[@]} files"
    if command -v run-clang-tidy >/dev/null 2>&1; then
      if ! run-clang-tidy -quiet -p "$BUILD_DIR" "${tidy_sources[@]}"; then
        failures=$((failures + 1))
      fi
    else
      if ! clang-tidy -quiet -p "$BUILD_DIR" "${tidy_sources[@]}"; then
        failures=$((failures + 1))
      fi
    fi
  fi
else
  note "clang-tidy: not installed, SKIPPED"
fi

# ---------------------------------------------------------------------------
if [[ "$failures" -gt 0 ]]; then
  note "run_checks: $failures check(s) FAILED"
  exit 1
fi
note "run_checks: all executed checks passed"
