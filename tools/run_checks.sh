#!/usr/bin/env bash
# One-command static-analysis driver: format check + repo lint + clang-tidy.
#
#   tools/run_checks.sh [--fix]
#
# Environment:
#   BUILD_DIR   build tree with compile_commands.json (default: build)
#   SKIP_TIDY   set to 1 to skip clang-tidy even when installed
#
# External analyzers (clang-format, clang-tidy) are skipped with a notice
# when not installed, and also when the installed version cannot parse the
# repo's .clang-format / .clang-tidy config (version skew would otherwise
# hard-fail every file), so the script degrades gracefully in minimal
# containers; the in-repo checks (neuroprint_lint) always run. Exit code is
# nonzero iff an executed check found a problem.
#
# Under GitHub Actions (GITHUB_ACTIONS=true) neuroprint_lint emits
# ::error annotations so findings render inline on the PR diff.

set -u -o pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
FIX=0
[[ "${1:-}" == "--fix" ]] && FIX=1

failures=0
note() { printf '== %s\n' "$*"; }

# Library + tool sources; excludes third-party-free build trees.
mapfile -t sources < <(find src tools tests bench examples \
  -name '*.cc' -o -name '*.h' 2>/dev/null | sort)

# ---- 1. clang-format ------------------------------------------------------
if ! command -v clang-format >/dev/null 2>&1; then
  note "clang-format: not installed, SKIPPED"
# Probe: an older clang-format aborts on unknown keys in .clang-format.
# Parsing the config against /dev/null separates "tool can't read our
# config" (skip with a warning) from "files need formatting" (a failure).
elif ! clang-format --style=file --assume-filename=probe.cc --dry-run \
    </dev/null >/dev/null 2>&1; then
  note "clang-format: installed version cannot parse .clang-format" \
    "(version skew), SKIPPED"
else
  if [[ "$FIX" == 1 ]]; then
    note "clang-format: rewriting ${#sources[@]} files"
    clang-format -i "${sources[@]}" || failures=$((failures + 1))
  else
    note "clang-format: checking ${#sources[@]} files"
    if ! clang-format --dry-run -Werror "${sources[@]}"; then
      note "clang-format: FAILED (run tools/run_checks.sh --fix)"
      failures=$((failures + 1))
    fi
  fi
fi

# ---- 2. neuroprint_lint ---------------------------------------------------
note "neuroprint_lint: building"
config_log="$(mktemp)"
if ! cmake -B "$BUILD_DIR" -S . >"$config_log" 2>&1 ||
   ! cmake --build "$BUILD_DIR" --target neuroprint_lint -j >"$config_log" 2>&1; then
  cat "$config_log"
  note "neuroprint_lint: build FAILED"
  failures=$((failures + 1))
else
  lint_format="text"
  [[ "${GITHUB_ACTIONS:-}" == "true" ]] && lint_format="github"
  note "neuroprint_lint: checking src/ (--format=$lint_format)"
  if ! "$BUILD_DIR/tools/neuroprint_lint" "--format=$lint_format" src; then
    failures=$((failures + 1))
  fi
  note "neuroprint_lint: self-check (tools/lint/)"
  if ! "$BUILD_DIR/tools/neuroprint_lint" "--format=$lint_format" \
      --self-check .; then
    failures=$((failures + 1))
  fi
fi
rm -f "$config_log"

# ---- 3. clang-tidy --------------------------------------------------------
if [[ "${SKIP_TIDY:-0}" == 1 ]]; then
  note "clang-tidy: SKIP_TIDY=1, SKIPPED"
elif command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    note "clang-tidy: no $BUILD_DIR/compile_commands.json, SKIPPED"
  # Probe: --list-checks parses .clang-tidy; an installed version that
  # rejects our config (unknown check names, version skew) should skip,
  # not fail every file.
  elif ! clang-tidy --list-checks >/dev/null 2>&1; then
    note "clang-tidy: installed version cannot parse .clang-tidy" \
      "(version skew), SKIPPED"
  else
    mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
    note "clang-tidy: checking ${#tidy_sources[@]} files"
    if command -v run-clang-tidy >/dev/null 2>&1; then
      if ! run-clang-tidy -quiet -p "$BUILD_DIR" "${tidy_sources[@]}"; then
        failures=$((failures + 1))
      fi
    else
      if ! clang-tidy -quiet -p "$BUILD_DIR" "${tidy_sources[@]}"; then
        failures=$((failures + 1))
      fi
    fi
  fi
else
  note "clang-tidy: not installed, SKIPPED"
fi

# ---------------------------------------------------------------------------
if [[ "$failures" -gt 0 ]]; then
  note "run_checks: $failures check(s) FAILED"
  exit 1
fi
note "run_checks: all executed checks passed"
