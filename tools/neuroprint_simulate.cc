// neuroprint_simulate: generate a synthetic multi-session fMRI dataset on
// disk — an atlas plus per-subject NIfTI scans for two sessions — so the
// attack tool (and any external pipeline) can be exercised without
// writing C++.
//
// Usage:
//   neuroprint_simulate --output DIR [--subjects N] [--regions N]
//                       [--frames N] [--grid X,Y,Z] [--seed S]
//                       [--motion STEP] [--multisite FRACTION]
//
// Produces:
//   DIR/atlas.nii.gz             label image (regions)
//   DIR/session1/subNNNN.nii.gz  identified scans (session 1)
//   DIR/session2/subNNNN.nii.gz  "anonymous" scans (session 2; optional
//                                multi-site noise applied)
//
// A follow-up attack run looks like:
//   neuroprint_attack --atlas DIR/atlas.nii.gz --known DIR/session1
//                     --anonymous DIR/session2 --no-temporal-filter

#include <cstdio>
#include <cstdlib>
#include <string>

#include "atlas/atlas_io.h"
#include "atlas/synthetic_atlas.h"
#include "nifti/nifti_io.h"
#include "sim/cohort.h"
#include "sim/voxel_render.h"
#include "util/string_util.h"
#include "util/trace.h"

using namespace neuroprint;

namespace {

struct CliOptions {
  std::string output_dir;
  std::size_t subjects = 8;
  std::size_t regions = 60;
  std::size_t frames = 280;
  std::size_t grid_x = 24, grid_y = 28, grid_z = 24;
  std::uint64_t seed = 2026;
  double motion_step = 0.02;
  double multisite_fraction = 0.0;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: neuroprint_simulate --output DIR [--subjects N]\n"
               "          [--regions N] [--frames N] [--grid X,Y,Z]\n"
               "          [--seed S] [--motion STEP] [--multisite FRAC]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--output" && (v = next()) != nullptr) {
      options.output_dir = v;
    } else if (arg == "--subjects" && (v = next()) != nullptr) {
      options.subjects = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--regions" && (v = next()) != nullptr) {
      options.regions = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--frames" && (v = next()) != nullptr) {
      options.frames = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--seed" && (v = next()) != nullptr) {
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--motion" && (v = next()) != nullptr) {
      options.motion_step = std::atof(v);
    } else if (arg == "--multisite" && (v = next()) != nullptr) {
      options.multisite_fraction = std::atof(v);
    } else if (arg == "--grid" && (v = next()) != nullptr) {
      const auto parts = StrSplit(v, ',');
      if (parts.size() != 3) return false;
      options.grid_x = static_cast<std::size_t>(std::atoll(parts[0].c_str()));
      options.grid_y = static_cast<std::size_t>(std::atoll(parts[1].c_str()));
      options.grid_z = static_cast<std::size_t>(std::atoll(parts[2].c_str()));
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !options.output_dir.empty();
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, options)) {
    PrintUsage();
    return 2;
  }
  for (const char* sub : {"", "/session1", "/session2"}) {
    const std::string dir = options.output_dir + sub;
    if (std::system(("mkdir -p " + dir).c_str()) != 0) {
      std::fprintf(stderr, "cannot create %s\n", dir.c_str());
      return 1;
    }
  }

  // Atlas.
  atlas::SyntheticAtlasConfig atlas_config;
  atlas_config.nx = options.grid_x;
  atlas_config.ny = options.grid_y;
  atlas_config.nz = options.grid_z;
  atlas_config.num_regions = options.regions;
  atlas_config.seed = options.seed ^ 0xa71a5;
  auto atlas = atlas::GenerateSyntheticAtlas(atlas_config);
  if (!atlas.ok()) {
    std::fprintf(stderr, "atlas: %s\n", atlas.status().ToString().c_str());
    return 1;
  }
  const std::string atlas_path = options.output_dir + "/atlas.nii.gz";
  Status written = atlas::WriteAtlasNifti(atlas_path, *atlas);
  if (!written.ok()) {
    std::fprintf(stderr, "atlas write: %s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu regions, %zux%zux%zu grid)\n", atlas_path.c_str(),
              options.regions, options.grid_x, options.grid_y, options.grid_z);

  // Cohort.
  sim::CohortConfig cohort_config = sim::HcpLikeConfig(options.seed);
  cohort_config.num_subjects = options.subjects;
  cohort_config.num_regions = options.regions;
  cohort_config.frames_override = options.frames;
  // Coarse demo parcels average many voxels (see sim/cohort.cc presets).
  cohort_config.signature_scale = 1.4;
  auto cohort = sim::CohortSimulator::Create(cohort_config);
  if (!cohort.ok()) {
    std::fprintf(stderr, "cohort: %s\n", cohort.status().ToString().c_str());
    return 1;
  }

  Rng render_rng(options.seed ^ 0x5e55);
  for (std::size_t s = 0; s < options.subjects; ++s) {
    for (const auto& [encoding, session] :
         {std::pair{sim::Encoding::kLeftRight, "session1"},
          std::pair{sim::Encoding::kRightLeft, "session2"}}) {
      auto series = cohort->SimulateRegionSeries(s, sim::TaskType::kRest, encoding);
      if (!series.ok()) return 1;
      if (encoding == sim::Encoding::kRightLeft &&
          options.multisite_fraction > 0.0) {
        Rng site_rng(options.seed ^ (0x9177 + s));
        if (!sim::AddMultisiteNoise(*series, options.multisite_fraction, site_rng)
                 .ok() ||
            !sim::AddSiteEffect(*series, options.multisite_fraction, site_rng)
                 .ok()) {
          return 1;
        }
      }
      sim::VoxelRenderConfig render;
      render.motion_step = options.motion_step;
      render.drift_amplitude = 12.0;
      render.plant_slice_timing = true;
      auto run = sim::RenderVoxelRun(*atlas, *series, render, render_rng);
      if (!run.ok()) {
        std::fprintf(stderr, "render: %s\n", run.status().ToString().c_str());
        return 1;
      }
      const std::string path = StrFormat("%s/%s/sub%04zu.nii.gz",
                                         options.output_dir.c_str(), session,
                                         s + 1);
      written = nifti::WriteNifti(path, *run);
      if (!written.ok()) {
        std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
        return 1;
      }
    }
    std::printf("subject %zu/%zu written\n", s + 1, options.subjects);
  }
  std::printf(
      "\ndataset ready. Try:\n"
      "  neuroprint_attack --atlas %s \\\n"
      "      --known %s/session1 --anonymous %s/session2 \\\n"
      "      --features 150 --no-temporal-filter\n",
      atlas_path.c_str(), options.output_dir.c_str(),
      options.output_dir.c_str());
  auto trace_written = trace::WriteEnvTraceIfRequested();
  if (!trace_written.ok()) {
    std::fprintf(stderr, "trace: %s\n",
                 trace_written.status().ToString().c_str());
  } else if (!trace_written->empty()) {
    std::printf("trace written to %s\n", trace_written->c_str());
  }
  return 0;
}
