// neuroprint_attack: command-line de-anonymization attack on directories
// of NIfTI scans.
//
// Usage:
//   neuroprint_attack --atlas atlas.nii.gz
//                     --known dir_with_identified_scans
//                     --anonymous dir_with_deidentified_scans
//                     [--features N] [--output matches.csv]
//                     [--no-motion-correction] [--task-filter]
//
// Every *.nii / *.nii.gz file in each directory is one subject's scan;
// the file stem is used as the subject identifier in the known set. The
// tool preprocesses each scan (Figure-4 pipeline), builds connectomes
// over the atlas, fits leverage-score feature selection on the known
// set, and prints the best identity match (with its correlation score)
// for every anonymous scan.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "atlas/atlas_io.h"
#include "connectome/connectome.h"
#include "connectome/group_matrix.h"
#include "connectome/group_matrix_io.h"
#include "core/attack.h"
#include "core/signature_map.h"
#include "nifti/nifti_io.h"
#include "preprocess/pipeline.h"
#include "util/csv_writer.h"
#include "util/string_util.h"
#include "util/trace.h"

using namespace neuroprint;
namespace fs = std::filesystem;

namespace {

struct CliOptions {
  std::string atlas_path;
  std::string known_dir;
  std::string anonymous_dir;
  std::string output_csv;
  std::string signature_map_path;
  std::string cache_dir;  // Cache preprocessed feature matrices here.
  std::size_t num_features = 100;
  bool motion_correction = true;
  bool task_filter = false;      // High-pass instead of resting band-pass.
  bool temporal_filter = true;   // --no-temporal-filter disables both.
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: neuroprint_attack --atlas FILE --known DIR --anonymous DIR\n"
      "                         [--features N] [--output FILE.csv]\n"
      "                         [--no-motion-correction] [--task-filter]\n"
      "                         [--no-temporal-filter]\n"
      "                         [--signature-map MAP.nii.gz]\n"
      "                         [--cache-dir DIR]\n");
}

bool ParseArgs(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--atlas") {
      const char* v = next();
      if (v == nullptr) return false;
      options.atlas_path = v;
    } else if (arg == "--known") {
      const char* v = next();
      if (v == nullptr) return false;
      options.known_dir = v;
    } else if (arg == "--anonymous") {
      const char* v = next();
      if (v == nullptr) return false;
      options.anonymous_dir = v;
    } else if (arg == "--output") {
      const char* v = next();
      if (v == nullptr) return false;
      options.output_csv = v;
    } else if (arg == "--features") {
      const char* v = next();
      if (v == nullptr) return false;
      options.num_features = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--no-motion-correction") {
      options.motion_correction = false;
    } else if (arg == "--task-filter") {
      options.task_filter = true;
    } else if (arg == "--no-temporal-filter") {
      options.temporal_filter = false;
    } else if (arg == "--signature-map") {
      const char* v = next();
      if (v == nullptr) return false;
      options.signature_map_path = v;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return false;
      options.cache_dir = v;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return !options.atlas_path.empty() && !options.known_dir.empty() &&
         !options.anonymous_dir.empty();
}

bool IsNiftiFile(const fs::path& path) {
  const std::string name = path.filename().string();
  return EndsWith(name, ".nii") || EndsWith(name, ".nii.gz");
}

std::string SubjectIdFromPath(const fs::path& path) {
  std::string name = path.filename().string();
  if (EndsWith(name, ".nii.gz")) return name.substr(0, name.size() - 7);
  if (EndsWith(name, ".nii")) return name.substr(0, name.size() - 4);
  return name;
}

// Scans a directory, preprocesses every NIfTI file, and assembles the
// group matrix. Skips (with a warning) files that fail to process.
Result<connectome::GroupMatrix> ProcessDirectory(
    const std::string& dir, const atlas::Atlas& atlas,
    const preprocess::PipelineConfig& pipeline) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && IsNiftiFile(entry.path())) {
      files.push_back(entry.path());
    }
  }
  if (ec) return Status::IOError("cannot list directory: " + dir);
  if (files.empty()) {
    return Status::NotFound("no .nii/.nii.gz files in " + dir);
  }
  std::sort(files.begin(), files.end());

  std::vector<linalg::Vector> columns;
  std::vector<std::string> ids;
  for (const fs::path& file : files) {
    auto image = nifti::ReadNifti(file.string());
    if (!image.ok()) {
      std::fprintf(stderr, "  skipping %s: %s\n", file.c_str(),
                   image.status().ToString().c_str());
      continue;
    }
    auto output = preprocess::RunPipeline(image->data, atlas, pipeline);
    if (!output.ok()) {
      std::fprintf(stderr, "  skipping %s: %s\n", file.c_str(),
                   output.status().ToString().c_str());
      continue;
    }
    auto conn = connectome::BuildConnectome(output->region_series);
    if (!conn.ok()) {
      std::fprintf(stderr, "  skipping %s: %s\n", file.c_str(),
                   conn.status().ToString().c_str());
      continue;
    }
    auto features = connectome::VectorizeUpperTriangle(*conn);
    if (!features.ok()) continue;
    columns.push_back(std::move(features).value());
    ids.push_back(SubjectIdFromPath(file));
    std::printf("  processed %s (%zu frames)\n", file.filename().c_str(),
                image->data.nt());
  }
  return connectome::GroupMatrix::FromFeatureColumns(columns, ids);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, options)) {
    PrintUsage();
    return 2;
  }

  auto atlas = atlas::ReadAtlasNifti(options.atlas_path);
  if (!atlas.ok()) {
    std::fprintf(stderr, "atlas: %s\n", atlas.status().ToString().c_str());
    return 1;
  }
  std::printf("atlas: %zu regions on a %zux%zux%zu grid\n",
              atlas->num_regions(), atlas->nx(), atlas->ny(), atlas->nz());

  preprocess::PipelineConfig pipeline = options.task_filter
                                            ? preprocess::TaskConfig()
                                            : preprocess::RestingStateConfig();
  pipeline.motion_correction = options.motion_correction;
  pipeline.registration.sample_stride = 2;
  if (!options.temporal_filter) {
    pipeline.temporal_filter = preprocess::TemporalFilter::kNone;
  }

  // Preprocessing dominates runtime, so feature matrices can be cached:
  // with --cache-dir, a directory whose cache file exists is loaded
  // instead of reprocessed.
  auto load_or_process =
      [&](const std::string& dir,
          const char* tag) -> Result<connectome::GroupMatrix> {
    const std::string cache_path =
        options.cache_dir.empty()
            ? std::string()
            : options.cache_dir + "/" + tag + ".npgm";
    if (!cache_path.empty()) {
      auto cached = connectome::ReadGroupMatrix(cache_path);
      if (cached.ok()) {
        std::printf("loaded %zu cached subjects from %s\n",
                    cached->num_subjects(), cache_path.c_str());
        return cached;
      }
    }
    std::printf("processing scans in %s:\n", dir.c_str());
    auto group = ProcessDirectory(dir, *atlas, pipeline);
    if (group.ok() && !cache_path.empty()) {
      const Status cached = connectome::WriteGroupMatrix(cache_path, *group);
      if (cached.ok()) {
        std::printf("cached features to %s\n", cache_path.c_str());
      }
    }
    return group;
  };

  auto known = load_or_process(options.known_dir, "known");
  if (!known.ok()) {
    std::fprintf(stderr, "known set: %s\n", known.status().ToString().c_str());
    return 1;
  }
  auto anonymous = load_or_process(options.anonymous_dir, "anonymous");
  if (!anonymous.ok()) {
    std::fprintf(stderr, "anonymous set: %s\n",
                 anonymous.status().ToString().c_str());
    return 1;
  }

  core::AttackOptions attack_options;
  attack_options.num_features = options.num_features;
  auto attack = core::DeanonymizationAttack::Fit(*known, attack_options);
  if (!attack.ok()) {
    std::fprintf(stderr, "fit: %s\n", attack.status().ToString().c_str());
    return 1;
  }
  auto result = attack->Identify(*anonymous);
  if (!result.ok()) {
    std::fprintf(stderr, "identify: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-28s %-28s %s\n", "anonymous scan", "predicted identity",
              "correlation");
  CsvWriter csv;
  csv.SetHeader({"anonymous_scan", "predicted_identity", "correlation"});
  for (std::size_t j = 0; j < anonymous->num_subjects(); ++j) {
    const std::size_t match = result->predicted_index[j];
    const double score = result->similarity(match, j);
    std::printf("%-28s %-28s %.4f\n", anonymous->subject_ids()[j].c_str(),
                result->predicted_ids[j].c_str(), score);
    csv.AddRow({anonymous->subject_ids()[j], result->predicted_ids[j],
                StrFormat("%.4f", score)});
  }
  if (!options.signature_map_path.empty()) {
    // Render the per-region signature importance as a NIfTI heat map —
    // the localization a defender needs (paper, Discussion).
    auto importance = core::ComputeRegionImportance(
        attack->selected_features(), attack->leverage_scores(),
        atlas->num_regions());
    if (importance.ok()) {
      auto map = core::RenderSignatureMap(*importance, *atlas);
      if (map.ok()) {
        const Status written =
            nifti::WriteNifti3D(options.signature_map_path, *map);
        if (written.ok()) {
          std::printf("\nsignature map written to %s\n",
                      options.signature_map_path.c_str());
        } else {
          std::fprintf(stderr, "signature map: %s\n",
                       written.ToString().c_str());
        }
      }
    }
  }
  if (!options.output_csv.empty()) {
    const Status written = csv.WriteFile(options.output_csv);
    if (!written.ok()) {
      std::fprintf(stderr, "output: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\nmatches written to %s\n", options.output_csv.c_str());
  }
  // NEUROPRINT_TRACE=1 (or =path) dumps the collected pipeline/attack
  // spans as chrome://tracing JSON.
  auto trace_written = trace::WriteEnvTraceIfRequested();
  if (!trace_written.ok()) {
    std::fprintf(stderr, "trace: %s\n",
                 trace_written.status().ToString().c_str());
  } else if (!trace_written->empty()) {
    std::printf("\ntrace written to %s\n", trace_written->c_str());
  }
  return 0;
}
