#!/usr/bin/env python3
"""Memory-regression gate for bench-smoke.

Compares the ``peak_rss_bytes`` field of fresh bench JSON records against
the committed baseline and fails when any record grew more than the
allowed fraction (default 15%). Peak RSS of a fixed fast-mode workload is
far more machine-portable than wall time — the dominant allocations are
deterministic matrix/gallery buffers — which is what makes a committed
absolute baseline workable where timing baselines are not.

Usage:
    check_rss.py [--baseline PATH] [--tolerance FRACTION] fresh.json...

The baseline maps record name -> peak RSS in bytes (keys starting with
``_`` are comments). Every baseline record must appear in at least one of
the fresh files — a silently dropped record would otherwise retire its
regression check. Fresh records without a baseline entry are listed as
informational so new benches get noticed and enrolled.

Shrinking memory is never an error; when a fresh value sits well below
baseline the printed hint suggests re-recording so the gate keeps teeth.
"""

import argparse
import json
import pathlib
import sys


def load_records(path):
    with open(path) as fh:
        records = json.load(fh)
    if not isinstance(records, list) or not records:
        sys.exit(f"{path}: expected a non-empty JSON array of bench records")
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(pathlib.Path(__file__).resolve().parent.parent
                    / "bench_results" / "rss_baseline.json"),
        help="committed name -> peak_rss_bytes map")
    parser.add_argument(
        "--tolerance", type=float, default=0.15,
        help="allowed fractional growth over baseline (default 0.15)")
    parser.add_argument("fresh", nargs="+", help="bench --json output files")
    args = parser.parse_args()

    with open(args.baseline) as fh:
        baseline = {k: v for k, v in json.load(fh).items()
                    if not k.startswith("_")}
    if not baseline:
        sys.exit(f"{args.baseline}: no baseline records")

    fresh = {}
    for path in args.fresh:
        for record in load_records(path):
            name = record.get("name", "?")
            rss = record.get("peak_rss_bytes")
            if name in fresh:
                continue  # ru_maxrss is monotone; first record is leanest.
            fresh[name] = (rss, path)

    failures = []
    for name, want in sorted(baseline.items()):
        if name not in fresh:
            failures.append(f"{name}: baseline record missing from fresh "
                            f"results ({', '.join(args.fresh)})")
            continue
        got, path = fresh[name]
        if not isinstance(got, (int, float)) or got <= 0:
            failures.append(f"{name} ({path}): peak_rss_bytes is {got!r}")
            continue
        limit = want * (1.0 + args.tolerance)
        ratio = got / want
        verdict = "OK"
        if got > limit:
            verdict = "FAIL"
            failures.append(
                f"{name} ({path}): peak RSS {got / 2**20:.1f} MiB is "
                f"{ratio:.2f}x the {want / 2**20:.1f} MiB baseline "
                f"(limit {1.0 + args.tolerance:.2f}x)")
        elif ratio < 0.7:
            verdict = "OK (consider re-recording the lower baseline)"
        print(f"{name}: {got / 2**20:.1f} MiB vs baseline "
              f"{want / 2**20:.1f} MiB ({ratio:.2f}x) {verdict}")

    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name}: no baseline entry (informational only)")

    if failures:
        print("\nRSS regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("RSS regression check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
