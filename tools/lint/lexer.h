// A small C++ lexer for the repo-invariant checker (tools/lint/lint.h).
//
// Produces a token stream (identifiers, numbers, string/char literals,
// punctuation) plus the comment list, so rules can match syntax instead of
// raw text. Handles the constructs that broke the old regex-over-stripped-
// text scanner:
//   * raw string literals `R"delim(...)delim"` (any prefix, any delimiter)
//   * line continuations (backslash-newline, inside and outside directives)
//   * digit separators (`1'000'000`) vs. char literals
//   * nested-looking block comments (`/* /* */` ends at the first `*/`)
//   * preprocessor directives (tokens are lexed but flagged, so statement
//     walkers can skip macro bodies while the include-guard rule still sees
//     `#ifndef` / `#define`)
//
// The lexer never fails: malformed input (unterminated literal or comment)
// lexes to a token that extends to end of file. Line numbers are 1-based
// physical lines (a continuation still advances the line counter).

#ifndef NEUROPRINT_TOOLS_LINT_LEXER_H_
#define NEUROPRINT_TOOLS_LINT_LEXER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace neuroprint::lint {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords (the lexer does not distinguish)
  kNumber,      // integer/float literals, including separators and suffixes
  kString,      // ordinary, prefixed, and raw string literals (with quotes)
  kChar,        // character literals (with quotes)
  kPunct,       // operators and punctuation, longest-munch (`<<=` is one)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;        // spelling; literals keep their quotes/prefixes
  int line = 0;            // 1-based physical line of the first character
  std::size_t offset = 0;  // byte offset of the first character
  bool in_preprocessor = false;  // token belongs to a #directive
};

struct Comment {
  int line = 0;            // line the comment starts on
  std::size_t offset = 0;  // byte offset of the // or /*
  std::size_t length = 0;  // full extent including the comment markers
  std::string text;        // contents without the // or /* */ markers
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Lexes `source` into tokens and comments. Never fails.
LexResult Lex(const std::string& source);

}  // namespace neuroprint::lint

#endif  // NEUROPRINT_TOOLS_LINT_LEXER_H_
