// neuroprint_lint: repo-invariant checker for library code under src/.
//
// Enforces conventions the compiler cannot (see docs/ANALYSIS.md for the
// rule catalog and rationale):
//   include-guard         headers use NEUROPRINT_<PATH>_H_ guards
//   no-rand               rand()/srand() only in src/util/random.*
//   no-naked-stdio        printf/fprintf only via util/logging.h
//   no-abort              abort() only in util/check.h
//   no-exit               exit()/_Exit()/quick_exit()/_exit() never in src/
//   no-throw              `throw` never in src/ (error paths return Status)
//   dcheck-side-effect    NP_DCHECK args must not mutate state
//   no-using-namespace    headers never `using namespace`
//   no-raw-thread         std::thread only in util/thread_pool.*
//   no-static-local       no `static` mutable locals outside util/
//   simd-confinement      intrinsic headers (<immintrin.h>, <arm_neon.h>)
//                         and ISA intrinsics only in linalg/simd/
//   -- status-flow family --
//   unused-status         a Status-returning call (free OR member, single-
//                         or multi-line) used as a bare statement
//   unused-result         a Result<T>-returning call dropped the same way
//   status-never-checked  `Status s = ...;` where s is never read again
//   -- determinism family --
//   nondet-wallclock      std::chrono / C time APIs outside the sanctioned
//                         util/{trace,metrics,fault,stopwatch} modules
//   nondet-unordered-iter range-for over an unordered container (iteration
//                         order is implementation-defined)
//   nondet-float-accum    compound float accumulation into captured state
//                         inside a ParallelFor/ParallelReduce lambda
//   -- parallel-race family --
//   parallel-race         a by-reference capture mutated inside a
//                         ParallelFor-family lambda that is not an atomic,
//                         a per-index (subscripted) write, or util/ internal
//   -- engine --
//   unused-suppression    an NP_LINT(rule) comment that suppressed nothing
//
// The engine is token-aware: tools/lint/lexer.h lexes each file (raw
// strings, line continuations, digit separators, preprocessor directives),
// a declaration index is built across all presented files, and the
// statement-level rules walk token ranges instead of regexing lines.
// Remaining blind spots are heuristic ones (macro-generated code, template
// type inference) and are documented per rule in lint.cc.
//
// False positives are suppressed in place with a trailing comment on the
// finding's line (or a comment-only line directly above it), naming the
// rule id to silence: `DoThing();  // NP_LINT(<rule-id>)`. Only known rule
// ids register; every suppression must fire, and stale ones are reported
// as unused-suppression so escapes cannot rot.

#ifndef NEUROPRINT_TOOLS_LINT_LINT_H_
#define NEUROPRINT_TOOLS_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

namespace neuroprint::lint {

/// One rule violation at a file/line.
struct Finding {
  std::string file;     // path as supplied (repo-relative by convention)
  int line = 0;         // 1-based
  std::string rule;     // stable rule id, e.g. "include-guard"
  std::string message;  // human-readable explanation

  std::string ToString() const;
};

/// A source file presented to the checker. `path` must be relative to the
/// linted root (e.g. "util/check.h" for src/util/check.h): rule exemptions
/// and the expected include-guard are derived from it.
struct SourceFile {
  std::string path;
  std::string contents;
};

/// Replaces comments, string literals, and char literals with spaces
/// (newlines preserved), so text scans cannot match inside them. Built on
/// the lexer, so raw strings and continuations are handled. Exposed for
/// tests and downstream text tooling.
std::string StripCommentsAndStrings(const std::string& contents);

/// Function-name index built across every presented file (headers and
/// sources): which names return Status, and which return Result<T>.
/// Feeds the status-flow rules.
struct DeclIndex {
  std::set<std::string> status_functions;
  std::set<std::string> result_functions;
};
DeclIndex BuildDeclIndex(const std::vector<SourceFile>& files);

/// Legacy shim over BuildDeclIndex: just the Status-returning names.
std::set<std::string> CollectStatusFunctions(
    const std::vector<SourceFile>& headers);

/// Runs every rule against one file. The index feeds the status-flow rules
/// (pass a default-constructed DeclIndex to disable them).
std::vector<Finding> LintFile(const SourceFile& file, const DeclIndex& index);

/// Lints a set of files as one unit: builds the declaration index across
/// all of them, then applies all rules to every file.
std::vector<Finding> LintFiles(const std::vector<SourceFile>& files);

/// Walks `root` (typically <repo>/src), reads every .h/.cc file, and lints
/// them. Returns findings sorted by file then line. Unreadable files become
/// findings under rule "io-error".
std::vector<Finding> LintTree(const std::string& root);

/// LintTree with rule paths computed relative to `base` instead of `root`,
/// e.g. LintTreeRelative("<repo>/tools/lint", "<repo>") lints the engine's
/// own sources under their repo-relative paths ("tools/lint/lint.cc"), so
/// include-guard expectations and path exemptions line up. Used by the CLI
/// `--self-check` mode.
std::vector<Finding> LintTreeRelative(const std::string& root,
                                      const std::string& base);

/// Serializes findings for the CLI: one of "text" (file:line: [rule] msg),
/// "json" (array of objects), or "github" (::error workflow annotations).
/// `path_prefix` is prepended to each finding's file for display (the CLI
/// passes the linted root so annotations are repo-relative).
std::string FormatFindings(const std::vector<Finding>& findings,
                           const std::string& format,
                           const std::string& path_prefix);

}  // namespace neuroprint::lint

#endif  // NEUROPRINT_TOOLS_LINT_LINT_H_
