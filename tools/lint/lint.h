// neuroprint_lint: repo-invariant checker for library code under src/.
//
// Enforces conventions the compiler cannot (see docs/ANALYSIS.md for the
// rule catalog and rationale):
//   include-guard       headers use NEUROPRINT_<PATH>_H_ guards
//   no-rand             rand()/srand() only in src/util/random.*
//   no-naked-stdio      printf/fprintf only via util/logging.h
//   no-abort            abort() only in util/check.h
//   no-exit             exit()/_Exit()/quick_exit()/_exit() never in src/
//   no-throw            `throw` never in src/ (error paths return Status)
//   dcheck-side-effect  NP_DCHECK args must not mutate state
//   no-using-namespace  headers never `using namespace`
//   unused-status       bare `Foo(...);` calls to Status-returning functions
//   no-raw-thread       std::thread only in util/thread_pool.*
//   no-static-local     no `static` mutable locals outside util/
//
// The checker is textual: it strips comments and string literals, then
// scans tokens. That keeps it dependency-free (no libclang in the image)
// at the cost of heuristics; each rule documents its blind spots.

#ifndef NEUROPRINT_TOOLS_LINT_LINT_H_
#define NEUROPRINT_TOOLS_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

namespace neuroprint::lint {

/// One rule violation at a file/line.
struct Finding {
  std::string file;     // path as supplied (repo-relative by convention)
  int line = 0;         // 1-based
  std::string rule;     // stable rule id, e.g. "include-guard"
  std::string message;  // human-readable explanation

  std::string ToString() const;
};

/// A source file presented to the checker. `path` must be relative to the
/// linted root (e.g. "util/check.h" for src/util/check.h): rule exemptions
/// and the expected include-guard are derived from it.
struct SourceFile {
  std::string path;
  std::string contents;
};

/// Replaces comments, string literals, and char literals with spaces
/// (newlines preserved), so token scans cannot match inside them.
/// Exposed for tests.
std::string StripCommentsAndStrings(const std::string& contents);

/// Scans header contents for `Status Foo(...)` declarations and returns the
/// function names. Factory-style members (`static Status Bar(...)`) are
/// included; `Result<T>` returns are not (their values are consumed by
/// construction).
std::set<std::string> CollectStatusFunctions(
    const std::vector<SourceFile>& headers);

/// Runs every rule against one file. `status_functions` feeds the
/// unused-status rule (pass an empty set to disable it).
std::vector<Finding> LintFile(const SourceFile& file,
                              const std::set<std::string>& status_functions);

/// Lints a set of files as one unit: builds the Status index from the
/// headers, then applies all rules to every file.
std::vector<Finding> LintFiles(const std::vector<SourceFile>& files);

/// Walks `root` (typically <repo>/src), reads every .h/.cc file, and lints
/// them. Returns findings sorted by file then line. Unreadable files become
/// findings under rule "io-error".
std::vector<Finding> LintTree(const std::string& root);

}  // namespace neuroprint::lint

#endif  // NEUROPRINT_TOOLS_LINT_LINT_H_
