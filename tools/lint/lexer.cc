#include "tools/lint/lexer.h"

#include <algorithm>
#include <cctype>
#include <string>

namespace neuroprint::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

// String-literal prefixes. A trailing R means the literal is raw.
bool IsStringPrefix(const std::string& ident, bool* raw) {
  for (const char* p : {"R", "u8R", "uR", "UR", "LR"}) {
    if (ident == p) {
      *raw = true;
      return true;
    }
  }
  for (const char* p : {"u8", "u", "U", "L"}) {
    if (ident == p) {
      *raw = false;
      return true;
    }
  }
  return false;
}

bool IsCharPrefix(const std::string& ident) {
  for (const char* p : {"u8", "u", "U", "L"}) {
    if (ident == p) return true;
  }
  return false;
}

// Multi-character punctuation, longest first so the scan is longest-munch.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "<=>", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  ".*",
};

class Lexer {
 public:
  explicit Lexer(const std::string& source) : src_(source) {}

  LexResult Run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      const char next = Peek(1);
      if (c == '\\' && next == '\n') {  // line continuation: splice
        pos_ += 2;
        ++line_;
        continue;
      }
      if (c == '\\' && next == '\r' && Peek(2) == '\n') {
        pos_ += 3;
        ++line_;
        continue;
      }
      if (c == '\n') {
        ++pos_;
        ++line_;
        at_line_start_ = true;
        in_directive_ = false;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
        ++pos_;
        continue;
      }
      if (c == '/' && next == '/') {
        LexLineComment();
        continue;
      }
      if (c == '/' && next == '*') {
        LexBlockComment();
        continue;
      }
      if (c == '#' && at_line_start_) {
        in_directive_ = true;
        Emit(TokenKind::kPunct, pos_, pos_ + 1, line_);
        ++pos_;
        continue;
      }
      at_line_start_ = false;
      if (IsIdentStart(c)) {
        LexIdentifierOrLiteral();
        continue;
      }
      if (IsDigit(c) || (c == '.' && IsDigit(next))) {
        LexNumber();
        continue;
      }
      if (c == '"') {
        LexString(pos_, line_, /*raw=*/false);
        continue;
      }
      if (c == '\'') {
        LexCharLiteral(pos_, line_);
        continue;
      }
      LexPunct();
    }
    return std::move(result_);
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void Emit(TokenKind kind, std::size_t begin, std::size_t end, int line) {
    result_.tokens.push_back({kind, src_.substr(begin, end - begin), line,
                              begin, in_directive_});
  }

  void LexLineComment() {
    const int line = line_;
    const std::size_t start = pos_;
    const std::size_t begin = pos_ + 2;
    pos_ += 2;
    while (pos_ < src_.size()) {
      if (src_[pos_] == '\\' && Peek(1) == '\n') {  // comment continues
        pos_ += 2;
        ++line_;
        continue;
      }
      if (src_[pos_] == '\n') break;  // newline stays for the main loop
      ++pos_;
    }
    result_.comments.push_back(
        {line, start, pos_ - start, src_.substr(begin, pos_ - begin)});
  }

  void LexBlockComment() {
    const int line = line_;
    const std::size_t start = pos_;
    const std::size_t begin = pos_ + 2;
    pos_ += 2;
    std::size_t end = src_.size();
    while (pos_ < src_.size()) {
      if (src_[pos_] == '*' && Peek(1) == '/') {
        end = pos_;
        pos_ += 2;
        break;
      }
      if (src_[pos_] == '\n') ++line_;
      ++pos_;
    }
    result_.comments.push_back(
        {line, start, pos_ - start, src_.substr(begin, end - begin)});
  }

  void LexIdentifierOrLiteral() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    const std::string ident = src_.substr(begin, pos_ - begin);
    bool raw = false;
    if (pos_ < src_.size() && src_[pos_] == '"' &&
        IsStringPrefix(ident, &raw)) {
      LexString(begin, line, raw);
      return;
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' && IsCharPrefix(ident)) {
      LexCharLiteral(begin, line);
      return;
    }
    Emit(TokenKind::kIdentifier, begin, pos_, line);
  }

  // `begin` covers any prefix already consumed; pos_ is at the opening `"`.
  void LexString(std::size_t begin, int line, bool raw) {
    ++pos_;  // consume the opening quote
    if (raw) {
      // R"delim( ... )delim"  — no escapes, newlines allowed.
      const std::size_t delim_begin = pos_;
      while (pos_ < src_.size() && src_[pos_] != '(') ++pos_;
      std::string closer = ")";
      closer.append(src_, delim_begin, pos_ - delim_begin);
      closer.push_back('"');
      if (pos_ < src_.size()) ++pos_;  // consume '('
      const std::size_t body = pos_;
      const std::size_t close = src_.find(closer, body);
      const std::size_t end =
          close == std::string::npos ? src_.size() : close + closer.size();
      for (std::size_t i = body; i < std::min(end, src_.size()); ++i) {
        if (src_[i] == '\n') ++line_;
      }
      pos_ = end;
      Emit(TokenKind::kString, begin, end, line);
      return;
    }
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        if (Peek(1) == '\n') ++line_;
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        break;
      }
      if (c == '\n') break;  // unterminated: stop at end of line
      ++pos_;
    }
    Emit(TokenKind::kString, begin, pos_, line);
  }

  void LexCharLiteral(std::size_t begin, int line) {
    ++pos_;  // consume the opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        ++pos_;
        break;
      }
      if (c == '\n') break;  // unterminated
      ++pos_;
    }
    Emit(TokenKind::kChar, begin, pos_, line);
  }

  void LexNumber() {
    const std::size_t begin = pos_;
    const int line = line_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.') {
        // Exponent signs belong to the literal: 1e+5, 0x1p-3.
        if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
            (Peek(1) == '+' || Peek(1) == '-')) {
          pos_ += 2;
          continue;
        }
        ++pos_;
        continue;
      }
      if (c == '\'' && IsIdentChar(Peek(1))) {  // digit separator
        pos_ += 2;
        continue;
      }
      break;
    }
    Emit(TokenKind::kNumber, begin, pos_, line);
  }

  void LexPunct() {
    for (const char* p : kPuncts) {
      const std::size_t n = std::char_traits<char>::length(p);
      if (src_.compare(pos_, n, p) == 0) {
        Emit(TokenKind::kPunct, pos_, pos_ + n, line_);
        pos_ += n;
        return;
      }
    }
    Emit(TokenKind::kPunct, pos_, pos_ + 1, line_);
    ++pos_;
  }

  const std::string& src_;
  LexResult result_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  bool in_directive_ = false;
};

}  // namespace

LexResult Lex(const std::string& source) { return Lexer(source).Run(); }

}  // namespace neuroprint::lint
