#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lexer.h"

namespace neuroprint::lint {
namespace {

using Tokens = std::vector<Token>;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// Every rule id the engine can emit (excluding the meta rules io-error and
// unused-suppression). NP_LINT comments naming anything else are ignored,
// so documentation can mention the syntax without registering suppressions.
constexpr const char* kKnownRules[] = {
    "include-guard",    "no-rand",
    "no-naked-stdio",   "no-abort",
    "no-exit",          "no-throw",
    "dcheck-side-effect", "no-using-namespace",
    "no-raw-thread",    "no-static-local",
    "unused-status",    "unused-result",
    "status-never-checked", "nondet-wallclock",
    "nondet-unordered-iter", "nondet-float-accum",
    "parallel-race",    "simd-confinement",
};

bool IsKnownRule(const std::string& rule) {
  for (const char* known : kKnownRules) {
    if (rule == known) return true;
  }
  return false;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool IsHeader(const std::string& path) { return HasSuffix(path, ".h"); }

bool IsIdent(const Tokens& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokenKind::kIdentifier;
}

bool IsIdent(const Tokens& t, std::size_t i, const char* text) {
  return IsIdent(t, i) && t[i].text == text;
}

bool IsPunct(const Tokens& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].kind == TokenKind::kPunct && t[i].text == text;
}

bool PunctIn(const Tokens& t, std::size_t i,
             std::initializer_list<const char*> texts) {
  if (i >= t.size() || t[i].kind != TokenKind::kPunct) return false;
  for (const char* text : texts) {
    if (t[i].text == text) return true;
  }
  return false;
}

// Returns the index one past the token matching the opener at `open`
// (one of ( [ {), or kNpos if the file ends unbalanced. Openers/closers of
// the other kinds are ignored, which is what C++ nesting needs.
std::size_t SkipBalanced(const Tokens& t, std::size_t open) {
  const std::string& o = t[open].text;
  const char* close = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kPunct) continue;
    if (t[i].text == o) ++depth;
    if (t[i].text == close) {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return kNpos;
}

// Skips a template argument list: `open` is at `<`; returns one past the
// matching `>`, or kNpos when the construct is not a balanced argument
// list (a comparison, or end of statement reached).
std::size_t SkipAngles(const Tokens& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kPunct) continue;
    const std::string& p = t[i].text;
    if (p == "<") ++depth;
    if (p == "<<") depth += 2;
    if (p == ">") --depth;
    if (p == ">>") depth -= 2;
    if (p == ";" || p == "{" || p == "}") return kNpos;
    if (depth <= 0) return i + 1;
  }
  return kNpos;
}

// --------------------------------------------------------------------------
// Per-file analysis shared by the rules.
// --------------------------------------------------------------------------

// Heuristic traits of declared names, collected file-wide (the engine does
// not track scopes, so a name's traits merge across declarations).
struct VarTraits {
  bool is_atomic = false;
  bool is_float = false;
  bool is_unordered = false;
};

struct Suppression {
  std::string rule;
  bool own_line = false;  // comment-only line: also covers the next line
  bool used = false;
};

struct FileAnalysis {
  LexResult lex;
  Tokens code;  // tokens outside preprocessor directives
  std::map<std::string, VarTraits> vars;
  std::map<int, std::vector<Suppression>> suppressions;  // keyed by line
};

// Identifiers that can precede a name without making it a declaration.
bool IsNonTypeKeyword(const std::string& s) {
  for (const char* kw : {"return", "co_return", "co_yield", "case", "goto",
                         "new", "delete", "sizeof", "if", "while", "else",
                         "do", "operator", "throw", "typedef", "using"}) {
    if (s == kw) return true;
  }
  return false;
}

// True when code[i] looks like the declared name in `Type name ...`:
// preceded by a type-ish token and followed by a declarator continuation.
bool LooksLikeDeclaredName(const Tokens& code, std::size_t i) {
  if (!IsIdent(code, i) || i == 0) return false;
  const Token& prev = code[i - 1];
  const bool type_prev =
      (prev.kind == TokenKind::kIdentifier && !IsNonTypeKeyword(prev.text) &&
       (i < 2 || (!IsPunct(code, i - 2, ".") && !IsPunct(code, i - 2, "->")))) ||
      (prev.kind == TokenKind::kPunct &&
       (prev.text == ">" || prev.text == "*" || prev.text == "&" ||
        prev.text == "&&"));
  if (!type_prev) return false;
  return i + 1 < code.size() &&
         PunctIn(code, i + 1, {"=", ";", ",", "{", "(", ")", ":", "["});
}

// Chained declarators after the confirmed declared name at `i`:
// `double s0 = 0.0, s1 = 0.0;` declares s1 too, but s1's previous token is
// a comma, so LooksLikeDeclaredName alone misses it. Walks forward to the
// end of the statement collecting names after top-level commas.
void AppendChainedDeclarators(const Tokens& t, std::size_t i, std::size_t end,
                              std::vector<std::string>* names) {
  int depth = 0;
  for (std::size_t j = i + 1; j < end; ++j) {
    if (t[j].kind != TokenKind::kPunct) continue;
    const std::string& p = t[j].text;
    if (p == "(" || p == "[" || p == "{") {
      ++depth;
    } else if (p == ")" || p == "]" || p == "}") {
      if (depth == 0) break;  // closes the enclosing context (for-init)
      --depth;
    } else if (p == ";" && depth == 0) {
      break;
    } else if (p == "," && depth == 0) {
      std::size_t k = j + 1;
      while (PunctIn(t, k, {"*", "&", "&&"})) ++k;
      if (IsIdent(t, k)) names->push_back(t[k].text);
    }
  }
}

// Walks the declaration backwards from the declared name at `i` to the
// statement start and reports whether the type tokens mention any of the
// trait keywords. Stops at tokens that end the previous statement or open
// the current context.
VarTraits TraitsOfDeclaration(const Tokens& code, std::size_t i) {
  VarTraits traits;
  int angle_depth = 0;  // commas inside <...> are template-arg separators
  for (std::size_t j = i; j-- > 0;) {
    const Token& tok = code[j];
    if (tok.kind == TokenKind::kPunct) {
      if (tok.text == ">") ++angle_depth;
      if (tok.text == ">>") angle_depth += 2;
      if (tok.text == "<") --angle_depth;
      if (tok.text == "<<") angle_depth -= 2;
      if (tok.text == ";" || tok.text == "{" || tok.text == "}" ||
          tok.text == "(" || tok.text == "=" ||
          (tok.text == "," && angle_depth <= 0)) {
        break;
      }
    }
    if (tok.kind != TokenKind::kIdentifier) continue;
    if (tok.text == "atomic") traits.is_atomic = true;
    if (tok.text == "double" || tok.text == "float") traits.is_float = true;
    if (HasPrefix(tok.text, "unordered_")) traits.is_unordered = true;
  }
  return traits;
}

void CollectVarTraits(const Tokens& code,
                      std::map<std::string, VarTraits>* vars) {
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!LooksLikeDeclaredName(code, i)) continue;
    const VarTraits traits = TraitsOfDeclaration(code, i);
    if (!traits.is_atomic && !traits.is_float && !traits.is_unordered) {
      continue;
    }
    std::vector<std::string> declared = {code[i].text};
    AppendChainedDeclarators(code, i, code.size(), &declared);
    for (const std::string& name : declared) {
      VarTraits& entry = (*vars)[name];
      entry.is_atomic |= traits.is_atomic;
      entry.is_float |= traits.is_float;
      entry.is_unordered |= traits.is_unordered;
    }
  }
}

void CollectSuppressions(const LexResult& lex,
                         std::map<int, std::vector<Suppression>>* out) {
  std::set<int> code_lines;
  for (const Token& tok : lex.tokens) code_lines.insert(tok.line);
  for (const Comment& comment : lex.comments) {
    const bool own_line = code_lines.count(comment.line) == 0;
    std::size_t pos = 0;
    while ((pos = comment.text.find("NP_LINT(", pos)) != std::string::npos) {
      std::size_t cursor = pos + 8;
      const std::size_t close = comment.text.find(')', cursor);
      if (close == std::string::npos) break;
      std::string list = comment.text.substr(cursor, close - cursor);
      std::istringstream items(list);
      std::string rule;
      while (std::getline(items, rule, ',')) {
        const std::size_t b = rule.find_first_not_of(" \t");
        const std::size_t e = rule.find_last_not_of(" \t");
        if (b == std::string::npos) continue;
        rule = rule.substr(b, e - b + 1);
        if (IsKnownRule(rule)) {
          (*out)[comment.line].push_back({rule, own_line, false});
        }
      }
      pos = close + 1;
    }
  }
}

FileAnalysis Analyze(const std::string& contents) {
  FileAnalysis a;
  a.lex = Lex(contents);
  for (const Token& tok : a.lex.tokens) {
    if (!tok.in_preprocessor) a.code.push_back(tok);
  }
  CollectVarTraits(a.code, &a.vars);
  CollectSuppressions(a.lex, &a.suppressions);
  return a;
}

// --------------------------------------------------------------------------
// Rule: include-guard
// --------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string guard = "NEUROPRINT_";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

void CheckIncludeGuard(const SourceFile& file, const FileAnalysis& a,
                       std::vector<Finding>* findings) {
  if (!IsHeader(file.path)) return;
  const std::string expected = ExpectedGuard(file.path);
  const Tokens& t = a.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsPunct(t, i, "#") || !t[i].in_preprocessor) continue;
    if (!IsIdent(t, i + 1, "ifndef")) continue;
    if (!IsIdent(t, i + 2)) continue;
    const std::string guard = t[i + 2].text;
    if (guard != expected) {
      findings->push_back({file.path, t[i].line, "include-guard",
                           "include guard `" + guard + "` should be `" +
                               expected + "`"});
      return;
    }
    for (std::size_t j = i + 3; j < t.size(); ++j) {
      if (IsPunct(t, j, "#") && t[j].in_preprocessor &&
          IsIdent(t, j + 1, "define") && IsIdent(t, j + 2, expected.c_str())) {
        return;  // guarded correctly
      }
    }
    findings->push_back({file.path, t[i].line, "include-guard",
                         "missing `#define " + expected + "` after #ifndef"});
    return;  // only the first #ifndef is the guard
  }
  findings->push_back(
      {file.path, 1, "include-guard",
       "header has no include guard (expected `" + expected + "`)"});
}

// --------------------------------------------------------------------------
// Banned-call rules (no-rand / no-naked-stdio / no-abort / no-exit /
// nondet-wallclock). A call is the exact identifier directly followed by
// `(` and not reached through `.` or `->`; `std::`-qualification matches.
// Macro bodies are scanned too: the expansion lands in user code.
// --------------------------------------------------------------------------

void CheckBannedCall(const SourceFile& file, const FileAnalysis& a,
                     const char* name, const std::string& rule,
                     const std::string& message,
                     std::vector<Finding>* findings) {
  const Tokens& t = a.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i, name) || !IsPunct(t, i + 1, "(")) continue;
    if (i > 0 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"))) {
      continue;  // member access: some other type's method
    }
    findings->push_back({file.path, t[i].line, rule, message});
  }
}

// --------------------------------------------------------------------------
// Rule: no-throw
// --------------------------------------------------------------------------

void CheckNoThrow(const SourceFile& file, const FileAnalysis& a,
                  std::vector<Finding>* findings) {
  for (const Token& tok : a.lex.tokens) {
    if (tok.kind == TokenKind::kIdentifier && tok.text == "throw") {
      findings->push_back(
          {file.path, tok.line, "no-throw",
           "`throw` in library code bypasses Status-based error handling "
           "and the batch FailurePolicy; return a Status instead"});
    }
  }
}

// --------------------------------------------------------------------------
// Rule: dcheck-side-effect
// --------------------------------------------------------------------------

void CheckDcheckSideEffects(const SourceFile& file, const FileAnalysis& a,
                            std::vector<Finding>* findings) {
  const Tokens& t = a.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!IsIdent(t, i) || !HasPrefix(t[i].text, "NP_DCHECK")) continue;
    if (!IsPunct(t, i + 1, "(")) continue;  // mention without invocation
    const std::size_t end = SkipBalanced(t, i + 1);
    if (end == kNpos) break;
    for (std::size_t j = i + 2; j + 1 < end; ++j) {
      if (PunctIn(t, j, {"++", "--", "=", "+=", "-=", "*=", "/=", "%=", "&=",
                         "|=", "^=", "<<=", ">>="})) {
        findings->push_back(
            {file.path, t[i].line, "dcheck-side-effect",
             "NP_DCHECK argument appears to have side effects; DCHECKs "
             "compile out in release builds"});
        break;
      }
    }
    i = end - 1;
  }
}

// --------------------------------------------------------------------------
// Rule: no-using-namespace
// --------------------------------------------------------------------------

void CheckUsingNamespace(const SourceFile& file, const FileAnalysis& a,
                         std::vector<Finding>* findings) {
  if (!IsHeader(file.path)) return;
  const Tokens& t = a.code;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (IsIdent(t, i, "using") && IsIdent(t, i + 1, "namespace")) {
      findings->push_back(
          {file.path, t[i].line, "no-using-namespace",
           "`using namespace` in a public header pollutes every includer"});
    }
  }
}

// --------------------------------------------------------------------------
// Rule: no-raw-thread
// --------------------------------------------------------------------------

void CheckNoRawThread(const SourceFile& file, const FileAnalysis& a,
                      std::vector<Finding>* findings) {
  if (HasPrefix(file.path, "util/thread_pool.")) return;
  const Tokens& t = a.lex.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (IsIdent(t, i, "std") && IsPunct(t, i + 1, "::") &&
        (IsIdent(t, i + 2, "thread") || IsIdent(t, i + 2, "jthread"))) {
      findings->push_back(
          {file.path, t[i].line, "no-raw-thread",
           "`std::" + t[i + 2].text +
               "` outside util/thread_pool.* skips the deterministic "
               "ParallelFor contract; use util/thread_pool.h"});
    }
  }
}

// --------------------------------------------------------------------------
// Rule: simd-confinement
// --------------------------------------------------------------------------

// ISA intrinsics are allowed only inside linalg/simd/, where every kernel
// family (scalar/AVX2/NEON) implements the one canonical arithmetic order
// behind the runtime dispatcher. An intrinsic anywhere else would create a
// second, unchecked vector code path whose results could diverge from the
// scalar kernels bit-for-bit — exactly what the determinism contract bans.
// Detected per token: the intrinsic headers in any #include directive, and
// identifiers with the characteristic vendor prefixes (`_mm`/`__m` for
// x86, `v...q_f64`-style names and `float64x2_t` for NEON).
void CheckSimdConfinement(const SourceFile& file, const FileAnalysis& a,
                          std::vector<Finding>* findings) {
  if (HasPrefix(file.path, "linalg/simd/")) return;
  const Tokens& t = a.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kIdentifier) continue;
    const std::string& text = t[i].text;
    if (t[i].in_preprocessor &&
        (text == "immintrin" || text == "arm_neon" || text == "x86intrin")) {
      findings->push_back(
          {file.path, t[i].line, "simd-confinement",
           "intrinsic header `" + text +
               ".h` outside linalg/simd/; vector code belongs behind the "
               "dispatched kernels in linalg/simd/simd.h"});
      continue;
    }
    const bool x86_intrinsic = HasPrefix(text, "_mm") || HasPrefix(text, "__m");
    const bool neon_intrinsic =
        HasPrefix(text, "float64x") || HasPrefix(text, "vld1") ||
        HasPrefix(text, "vst1") || HasPrefix(text, "vaddq") ||
        HasPrefix(text, "vmulq") || HasPrefix(text, "vfmaq") ||
        HasPrefix(text, "vdupq") || HasPrefix(text, "vgetq");
    if (x86_intrinsic || neon_intrinsic) {
      findings->push_back(
          {file.path, t[i].line, "simd-confinement",
           "ISA intrinsic `" + text +
               "` outside linalg/simd/ creates a second vector code path "
               "the scalar-parity tests never see; add a kernel to "
               "linalg/simd/ instead"});
    }
  }
}

// --------------------------------------------------------------------------
// Rule: nondet-wallclock
// --------------------------------------------------------------------------

// Wall-clock reads make output depend on when the code ran. Timing belongs
// to the sanctioned observability modules (util/trace, util/metrics,
// util/stopwatch) and failure schedules (util/fault); everything else in
// src/ must be a pure function of its inputs and seeds.
void CheckWallClock(const SourceFile& file, const FileAnalysis& a,
                    std::vector<Finding>* findings) {
  for (const char* exempt :
       {"util/trace", "util/metrics", "util/fault", "util/stopwatch"}) {
    if (HasPrefix(file.path, exempt)) return;
  }
  const Tokens& t = a.code;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (IsIdent(t, i, "std") && IsPunct(t, i + 1, "::") &&
        IsIdent(t, i + 2, "chrono")) {
      findings->push_back(
          {file.path, t[i].line, "nondet-wallclock",
           "`std::chrono` outside util/{trace,metrics,fault,stopwatch} makes "
           "output depend on wall-clock time; use util/stopwatch.h for "
           "timing or trace spans for observability"});
    }
  }
  for (const char* fn : {"time", "gettimeofday", "clock_gettime", "clock",
                         "localtime", "gmtime", "mktime"}) {
    const Tokens& all = a.lex.tokens;
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (!IsIdent(all, i, fn) || !IsPunct(all, i + 1, "(")) continue;
      if (i > 0 && (IsPunct(all, i - 1, ".") || IsPunct(all, i - 1, "->"))) {
        continue;  // member access: some other type's method
      }
      if (i > 0 && all[i - 1].kind == TokenKind::kIdentifier &&
          !IsNonTypeKeyword(all[i - 1].text)) {
        continue;  // declaration like `time_t time(...)` (but `return
                   // time(nullptr)` is still a call)
      }
      findings->push_back(
          {file.path, all[i].line, "nondet-wallclock",
           std::string("`") + fn +
               "` reads the wall clock; outputs must be a function of "
               "inputs and seeds only (see util/stopwatch.h for timing)"});
    }
  }
}

// --------------------------------------------------------------------------
// Rule: nondet-unordered-iter
// --------------------------------------------------------------------------

// Range-for over an unordered container visits elements in an
// implementation-defined order; anything accumulated or appended in the
// loop inherits that order. Iterator-based loops (`it = m.begin()`) are a
// documented blind spot.
void CheckUnorderedIteration(const SourceFile& file, const FileAnalysis& a,
                             std::vector<Finding>* findings) {
  const Tokens& t = a.code;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdent(t, i, "for") || !IsPunct(t, i + 1, "(")) continue;
    const std::size_t end = SkipBalanced(t, i + 1);
    if (end == kNpos) break;
    // Find the range-for `:` at top level of the parens.
    std::size_t colon = kNpos;
    int depth = 0;
    for (std::size_t j = i + 1; j + 1 < end; ++j) {
      if (t[j].kind != TokenKind::kPunct) continue;
      if (t[j].text == "(" || t[j].text == "[" || t[j].text == "{") ++depth;
      if (t[j].text == ")" || t[j].text == "]" || t[j].text == "}") --depth;
      if (t[j].text == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon == kNpos) continue;
    for (std::size_t j = colon + 1; j + 1 < end; ++j) {
      if (!IsIdent(t, j)) continue;
      const auto traits = a.vars.find(t[j].text);
      const bool unordered_type = HasPrefix(t[j].text, "unordered_");
      const bool unordered_var =
          traits != a.vars.end() && traits->second.is_unordered;
      if (unordered_type || unordered_var) {
        findings->push_back(
            {file.path, t[i].line, "nondet-unordered-iter",
             "range-for over an unordered container has "
             "implementation-defined order; iterate a sorted view (std::map "
             "or sorted keys) before feeding output buffers"});
        break;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Statement walker: no-static-local, status-flow family, and the
// ParallelFor lambda rules share one pass over the code tokens.
// --------------------------------------------------------------------------

struct BraceScope {
  int paren_depth = 0;      // () [] depth at the opening {
  bool is_function = false; // function/lambda body vs type/namespace scope
};

// Chain parse for a dropped-call statement: [::] ident ((::|.|->) ident)*
// with optional (args) after each segment and optional <T> before a call.
// Returns the called name when the whole statement is one call expression,
// or "" otherwise. `end` is the index of the terminating `;`.
std::string DroppedCallName(const Tokens& t, std::size_t begin,
                            std::size_t end) {
  std::size_t i = begin;
  // Skip control-flow headers: `if (cond) DropStatus();` is still a drop.
  while (i < end) {
    if (IsIdent(t, i, "else") || IsIdent(t, i, "do") ||
        IsIdent(t, i, "constexpr")) {
      ++i;
      continue;
    }
    if ((IsIdent(t, i, "if") || IsIdent(t, i, "while") ||
         IsIdent(t, i, "for")) &&
        IsPunct(t, i + 1, "(")) {
      const std::size_t after = SkipBalanced(t, i + 1);
      if (after == kNpos || after >= end) return "";
      i = after;
      continue;
    }
    break;
  }
  if (IsPunct(t, i, "::")) ++i;
  std::string last_name;
  bool last_called = false;
  while (i < end) {
    if (!IsIdent(t, i)) return "";
    last_name = t[i].text;
    last_called = false;
    ++i;
    if (IsPunct(t, i, "<")) {
      const std::size_t after = SkipAngles(t, i);
      if (after != kNpos && after < end && IsPunct(t, after, "(")) i = after;
    }
    if (IsPunct(t, i, "(")) {
      const std::size_t after = SkipBalanced(t, i);
      if (after == kNpos || after > end) return "";
      i = after;
      last_called = true;
    }
    if (PunctIn(t, i, {"::", ".", "->"})) {
      ++i;
      continue;
    }
    break;
  }
  if (i != end || !last_called) return "";
  return last_name;
}

// For `Status name = ...;` at statement start, returns the declared name
// (or "" when the statement is not such a declaration). `begin`/`end`
// bracket the statement, end at the `;`.
std::string DeclaredStatusName(const Tokens& t, std::size_t begin,
                               std::size_t end) {
  std::size_t i = begin;
  if (IsIdent(t, i, "const")) ++i;
  if (IsPunct(t, i, "::")) ++i;
  if (IsIdent(t, i, "neuroprint") && IsPunct(t, i + 1, "::")) i += 2;
  if (!IsIdent(t, i, "Status")) return "";
  ++i;
  if (!IsIdent(t, i) || i >= end) return "";
  const std::string name = t[i].text;
  ++i;
  if (i < end && !PunctIn(t, i, {"=", "(", "{"})) return "";
  return name;
}

// Scans forward from `from` and returns the token index where the
// enclosing brace scope closes (depth would go negative), or t.size().
std::size_t ScopeEnd(const Tokens& t, std::size_t from) {
  int depth = 0;
  for (std::size_t i = from; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kPunct) continue;
    if (t[i].text == "{") ++depth;
    if (t[i].text == "}") {
      --depth;
      if (depth < 0) return i;
    }
  }
  return t.size();
}

bool NameUsedIn(const Tokens& t, std::size_t begin, std::size_t end,
                const std::string& name) {
  for (std::size_t i = begin; i < end; ++i) {
    if (t[i].kind == TokenKind::kIdentifier && t[i].text == name) return true;
  }
  return false;
}

// ---- ParallelFor lambda analysis ----

struct LambdaInfo {
  bool ref_default = false;
  std::vector<std::string> ref_captures;
  std::vector<std::string> value_captures;
  std::vector<std::string> params;
  std::size_t body_begin = kNpos;  // token after the body {
  std::size_t body_end = kNpos;    // index of the body }
};

// Parses the lambda whose capture list opens at t[open] == "[". Returns
// false when the construct is not a lambda with a brace body.
bool ParseLambda(const Tokens& t, std::size_t open, LambdaInfo* info) {
  const std::size_t close = SkipBalanced(t, open);
  if (close == kNpos) return false;
  // Capture entries live in [open+1, close-1); split on top-level commas
  // (init-captures like `&acc = partials[i]` can nest brackets).
  const std::size_t rbracket = close - 1;
  std::size_t entry = open + 1;
  int depth = 0;
  for (std::size_t i = open + 1; i <= rbracket; ++i) {
    if (t[i].kind == TokenKind::kPunct) {
      const std::string& p = t[i].text;
      if (p == "(" || p == "[" || p == "{") ++depth;
      if (p == ")" || p == "]" || p == "}") --depth;
    }
    const bool boundary = i == rbracket || (IsPunct(t, i, ",") && depth == 0);
    if (!boundary) continue;
    if (entry < i) {
      if (IsPunct(t, entry, "&") && IsIdent(t, entry + 1) && entry + 1 < i) {
        info->ref_captures.push_back(t[entry + 1].text);
      } else if (IsPunct(t, entry, "&")) {
        info->ref_default = true;
      } else if (IsIdent(t, entry) && t[entry].text != "this") {
        info->value_captures.push_back(t[entry].text);
      }
    }
    entry = i + 1;
  }
  std::size_t i = close;
  if (IsPunct(t, i, "(")) {
    const std::size_t params_end = SkipBalanced(t, i);
    if (params_end == kNpos) return false;
    // A parameter name is the identifier directly before a top-level `,`
    // or the closing `)`.
    int depth = 0;
    for (std::size_t j = i; j < params_end; ++j) {
      if (t[j].kind != TokenKind::kPunct) continue;
      if (t[j].text == "(" || t[j].text == "<" || t[j].text == "[") ++depth;
      if (t[j].text == ")" || t[j].text == ">" || t[j].text == "]") --depth;
      const bool boundary = (t[j].text == "," && depth == 1) ||
                            (t[j].text == ")" && depth == 0);
      if (boundary && j > i && IsIdent(t, j - 1)) {
        info->params.push_back(t[j - 1].text);
      }
    }
    i = params_end;
  }
  while (i < t.size() && !IsPunct(t, i, "{")) {
    if (PunctIn(t, i, {";", ")", ","})) return false;  // not a lambda body
    ++i;
  }
  if (i >= t.size()) return false;
  const std::size_t body_close = SkipBalanced(t, i);
  if (body_close == kNpos) return false;
  info->body_begin = i + 1;
  info->body_end = body_close - 1;
  return true;
}

// Names declared anywhere inside [begin, end): lambda-local state. The scan
// ignores declaration order and nesting, which errs toward fewer findings
// (a name declared in a nested block masks outer mutations of the same
// name — an accepted blind spot).
std::vector<std::string> CollectLocalNames(const Tokens& t, std::size_t begin,
                                           std::size_t end) {
  std::vector<std::string> names;
  for (std::size_t i = begin; i < end; ++i) {
    if (!LooksLikeDeclaredName(t, i)) continue;
    names.push_back(t[i].text);
    AppendChainedDeclarators(t, i, end, &names);
  }
  return names;
}

bool Contains(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

// Mutating container/string members. Calling one of these on a captured
// reference from inside a parallel lambda is a data race unless the access
// is per-index (subscripted).
bool IsMutatingMember(const std::string& name) {
  for (const char* m : {"push_back", "emplace_back", "pop_back", "insert",
                        "emplace", "emplace_hint", "erase", "clear", "resize",
                        "reserve", "assign", "append", "swap"}) {
    if (name == m) return true;
  }
  return false;
}

// Walks a member chain backwards from the token before `i` (which is a `.`
// or `->`). Returns the root identifier index, or kNpos when the chain
// goes through a subscript (per-index access) or a call result.
std::size_t ChainRoot(const Tokens& t, std::size_t i) {
  std::size_t j = i;  // t[j] is the ident whose prev is . or ->
  while (j >= 2 && (IsPunct(t, j - 1, ".") || IsPunct(t, j - 1, "->"))) {
    const std::size_t before = j - 2;
    if (IsPunct(t, before, "]") || IsPunct(t, before, ")")) {
      return kNpos;  // per-index access or method-chain result: exempt
    }
    if (!IsIdent(t, before)) return kNpos;
    j = before;
  }
  return j;
}

struct MutationSite {
  std::size_t root;  // token index of the root identifier
  int line;
  bool is_accumulation;  // += or -= directly on the root identifier
};

// Collects candidate mutations of non-local names inside a lambda body.
void CollectMutations(const Tokens& t, const LambdaInfo& lambda,
                      std::vector<MutationSite>* sites) {
  for (std::size_t i = lambda.body_begin; i < lambda.body_end; ++i) {
    // Prefix increment/decrement: ++x / --x.
    if (PunctIn(t, i, {"++", "--"}) && IsIdent(t, i + 1) &&
        !PunctIn(t, i + 2, {".", "->"})) {
      sites->push_back({i + 1, t[i].line, false});
      continue;
    }
    if (!IsIdent(t, i)) continue;
    // Direct mutation: x = / x += / x++ ... (subscripted writes like
    // out[i] = v leave `]` before the operator and never match here).
    if (PunctIn(t, i + 1, {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=",
                           "^=", "<<=", ">>=", "++", "--"})) {
      if (LooksLikeDeclaredName(t, i)) continue;  // declaration with init
      std::size_t root = i;
      if (i >= 2 && (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"))) {
        root = ChainRoot(t, i);
        if (root == kNpos) continue;  // reached through [] or a call
      }
      const bool accum = IsPunct(t, i + 1, "+=") || IsPunct(t, i + 1, "-=");
      sites->push_back({root, t[i].line, accum});
      continue;
    }
    // Mutating member call: x.push_back(...), x->insert(...).
    if (IsPunct(t, i + 1, "(") && IsMutatingMember(t[i].text) && i >= 2 &&
        (IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->"))) {
      const std::size_t root = ChainRoot(t, i);
      if (root == kNpos) continue;
      sites->push_back({root, t[i].line, false});
    }
  }
}

constexpr const char* kParallelEntryPoints[] = {
    "ParallelFor", "ParallelForStatus", "ParallelForStatusCollect",
    "ParallelReduce", "PooledParallelFor"};

// Runs the parallel-race and nondet-float-accum rules over every lambda
// passed to a ParallelFor-family entry point.
void CheckParallelLambdas(const SourceFile& file, const FileAnalysis& a,
                          std::vector<Finding>* findings) {
  const bool util_internal = HasPrefix(file.path, "util/");
  const bool canonical_kernels = HasPrefix(file.path, "linalg/");
  if (util_internal) return;  // the pool and its tests own their internals
  const Tokens& t = a.code;
  for (std::size_t i = 0; i < t.size(); ++i) {
    bool is_entry = false;
    for (const char* entry : kParallelEntryPoints) {
      if (IsIdent(t, i, entry)) {
        is_entry = true;
        break;
      }
    }
    if (!is_entry || !IsPunct(t, i + 1, "(")) continue;
    const std::size_t args_end = SkipBalanced(t, i + 1);
    if (args_end == kNpos) break;
    for (std::size_t j = i + 2; j + 1 < args_end; ++j) {
      if (!IsPunct(t, j, "[")) continue;
      if (!(IsPunct(t, j - 1, "(") || IsPunct(t, j - 1, ","))) continue;
      LambdaInfo lambda;
      if (!ParseLambda(t, j, &lambda)) continue;
      if (lambda.body_end > args_end) continue;
      std::vector<std::string> locals =
          CollectLocalNames(t, lambda.body_begin, lambda.body_end);
      for (const std::string& p : lambda.params) locals.push_back(p);
      std::vector<MutationSite> sites;
      CollectMutations(t, lambda, &sites);
      for (const MutationSite& site : sites) {
        const std::string& name = t[site.root].text;
        if (Contains(locals, name)) continue;
        const bool by_ref =
            Contains(lambda.ref_captures, name) ||
            (lambda.ref_default && !Contains(lambda.value_captures, name));
        if (!by_ref) continue;
        const auto traits = a.vars.find(name);
        const bool is_atomic =
            traits != a.vars.end() && traits->second.is_atomic;
        const bool is_float =
            traits != a.vars.end() && traits->second.is_float;
        if (!is_atomic) {
          findings->push_back(
              {file.path, site.line, "parallel-race",
               "`" + name +
                   "` is captured by reference and mutated inside a "
                   "ParallelFor-family lambda; chunks run concurrently, so "
                   "write per-index (out[i] = ...), reduce via "
                   "ParallelReduce, or use an atomic"});
        }
        if (site.is_accumulation && is_float && !canonical_kernels) {
          findings->push_back(
              {file.path, site.line, "nondet-float-accum",
               "float accumulation into `" + name +
                   "` inside a parallel lambda is order-dependent and "
                   "breaks bitwise determinism (even with atomics); return "
                   "per-chunk partials via ParallelReduce or use the "
                   "canonical linalg/ kernels"});
        }
      }
      j = lambda.body_end;
    }
    i = args_end - 1;
  }
}

// ---- The shared statement walk ----

void WalkStatements(const SourceFile& file, const FileAnalysis& a,
                    const DeclIndex& index, std::vector<Finding>* findings) {
  const bool util_internal = HasPrefix(file.path, "util/");
  const Tokens& t = a.code;
  std::vector<BraceScope> braces;
  int function_depth = 0;
  int paren_depth = 0;
  std::size_t stmt_start = 0;
  auto base_depth = [&]() { return braces.empty() ? 0 : braces.back().paren_depth; };

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokenKind::kPunct) continue;
    const std::string& p = t[i].text;
    if (p == "(" || p == "[") {
      ++paren_depth;
      continue;
    }
    if (p == ")" || p == "]") {
      if (paren_depth > 0) --paren_depth;
      continue;
    }
    const bool at_stmt_level = paren_depth == base_depth();
    if (p == "{") {
      BraceScope scope;
      scope.paren_depth = paren_depth;
      if (at_stmt_level) {
        // The statement introducing this brace tells us the scope kind.
        bool type_scope = false;
        for (std::size_t j = stmt_start; j < i; ++j) {
          if (t[j].kind != TokenKind::kIdentifier) continue;
          for (const char* kw :
               {"namespace", "class", "struct", "union", "enum", "extern"}) {
            if (t[j].text == kw) type_scope = true;
          }
        }
        scope.is_function = !type_scope;
      } else {
        // Brace inside an expression: a lambda body when it follows a
        // parameter list / capture list, otherwise an initializer list.
        scope.is_function =
            i > 0 && (IsPunct(t, i - 1, ")") || IsPunct(t, i - 1, "]") ||
                      IsIdent(t, i - 1, "mutable"));
      }
      if (scope.is_function) ++function_depth;
      braces.push_back(scope);
      stmt_start = i + 1;
      continue;
    }
    if (p == "}") {
      if (!braces.empty()) {
        if (braces.back().is_function) --function_depth;
        braces.pop_back();
      }
      stmt_start = i + 1;
      continue;
    }
    if (p == ";" && at_stmt_level) {
      // --- status-flow rules on the statement [stmt_start, i) ---
      if (function_depth > 0 && i > stmt_start) {
        const std::string dropped = DroppedCallName(t, stmt_start, i);
        if (!dropped.empty()) {
          if (index.status_functions.count(dropped) != 0) {
            findings->push_back(
                {file.path, t[stmt_start].line, "unused-status",
                 "result of Status-returning `" + dropped +
                     "` is ignored; check it or NP_RETURN_IF_ERROR it"});
          } else if (index.result_functions.count(dropped) != 0) {
            findings->push_back(
                {file.path, t[stmt_start].line, "unused-result",
                 "`" + dropped +
                     "` returns Result<T>; dropping it discards both the "
                     "value and the error"});
          }
        }
        const std::string status_var = DeclaredStatusName(t, stmt_start, i);
        if (!status_var.empty()) {
          const std::size_t scope_end = ScopeEnd(t, i + 1);
          if (!NameUsedIn(t, i + 1, scope_end, status_var)) {
            findings->push_back(
                {file.path, t[stmt_start].line, "status-never-checked",
                 "`Status " + status_var +
                     " = ...` is never consumed afterwards; check it, "
                     "return it, or drop the variable"});
          }
        }
      }
      // --- no-static-local ---
      stmt_start = i + 1;
      continue;
    }
  }

  // no-static-local: a second, simpler pass using the same scope logic
  // would duplicate the walk; instead detect `static` inline here.
  if (!util_internal) {
    braces.clear();
    function_depth = 0;
    paren_depth = 0;
    stmt_start = 0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind == TokenKind::kIdentifier && t[i].text == "static" &&
          function_depth > 0) {
        if (!(IsIdent(t, i + 1, "const") || IsIdent(t, i + 1, "constexpr") ||
              IsIdent(t, i + 1, "constinit") ||
              IsIdent(t, i + 1, "thread_local"))) {
          findings->push_back(
              {file.path, t[i].line, "no-static-local",
               "`static` mutable local is shared state and a data race "
               "under ParallelFor; pass state explicitly or move it to "
               "util/"});
        }
        continue;
      }
      if (t[i].kind != TokenKind::kPunct) continue;
      const std::string& p = t[i].text;
      if (p == "(" || p == "[") {
        ++paren_depth;
      } else if (p == ")" || p == "]") {
        if (paren_depth > 0) --paren_depth;
      } else if (p == "{") {
        BraceScope scope;
        scope.paren_depth = paren_depth;
        const bool at_stmt_level =
            paren_depth == (braces.empty() ? 0 : braces.back().paren_depth);
        if (at_stmt_level) {
          bool type_scope = false;
          for (std::size_t j = stmt_start; j < i; ++j) {
            if (t[j].kind != TokenKind::kIdentifier) continue;
            for (const char* kw :
                 {"namespace", "class", "struct", "union", "enum", "extern"}) {
              if (t[j].text == kw) type_scope = true;
            }
          }
          scope.is_function = !type_scope;
        } else {
          scope.is_function =
              i > 0 && (IsPunct(t, i - 1, ")") || IsPunct(t, i - 1, "]") ||
                        IsIdent(t, i - 1, "mutable"));
        }
        if (scope.is_function) ++function_depth;
        braces.push_back(scope);
        stmt_start = i + 1;
      } else if (p == "}") {
        if (!braces.empty()) {
          if (braces.back().is_function) --function_depth;
          braces.pop_back();
        }
        stmt_start = i + 1;
      } else if (p == ";" &&
                 paren_depth ==
                     (braces.empty() ? 0 : braces.back().paren_depth)) {
        stmt_start = i + 1;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Suppressions
// --------------------------------------------------------------------------

void ApplySuppressions(FileAnalysis* a, const std::string& path,
                       std::vector<Finding>* findings) {
  std::vector<Finding> kept;
  for (Finding& finding : *findings) {
    bool suppressed = false;
    // A suppression on the finding's line (trailing comment) or a
    // comment-only line directly above it silences it. A trailing comment
    // never leaks onto the next line.
    for (int line : {finding.line, finding.line - 1}) {
      auto it = a->suppressions.find(line);
      if (it == a->suppressions.end()) continue;
      for (Suppression& s : it->second) {
        if (s.rule != finding.rule) continue;
        if (line != finding.line && !s.own_line) continue;
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) kept.push_back(std::move(finding));
  }
  for (const auto& [line, entries] : a->suppressions) {
    for (const Suppression& s : entries) {
      if (!s.used) {
        kept.push_back({path, line, "unused-suppression",
                        "NP_LINT(" + s.rule +
                            ") suppressed nothing; remove the stale "
                            "suppression"});
      }
    }
  }
  *findings = std::move(kept);
}

// --------------------------------------------------------------------------
// Declaration index
// --------------------------------------------------------------------------

void IndexFile(const SourceFile& file, DeclIndex* index) {
  const LexResult lex = Lex(file.contents);
  Tokens code;
  for (const Token& tok : lex.tokens) {
    if (!tok.in_preprocessor) code.push_back(tok);
  }
  for (std::size_t i = 0; i < code.size(); ++i) {
    bool is_status = false;
    std::size_t j = kNpos;
    if (IsIdent(code, i, "Status")) {
      is_status = true;
      j = i + 1;
    } else if (IsIdent(code, i, "Result") && IsPunct(code, i + 1, "<")) {
      j = SkipAngles(code, i + 1);
      if (j == kNpos) continue;
    } else {
      continue;
    }
    // Qualified declarator: Name or Class::Name or ns::Class::Name.
    std::string name;
    while (IsIdent(code, j)) {
      name = code[j].text;
      if (IsPunct(code, j + 1, "::")) {
        j += 2;
        continue;
      }
      j += 1;
      break;
    }
    if (name.empty() || name == "operator" || !IsPunct(code, j, "(")) {
      continue;
    }
    if (is_status) {
      index->status_functions.insert(name);
    } else {
      index->result_functions.insert(name);
    }
  }
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

std::string StripCommentsAndStrings(const std::string& contents) {
  std::string out = contents;
  const LexResult lex = Lex(contents);
  auto blank = [&out](std::size_t begin, std::size_t length) {
    const std::size_t end = std::min(begin + length, out.size());
    for (std::size_t i = begin; i < end; ++i) {
      if (out[i] != '\n') out[i] = ' ';
    }
  };
  for (const Comment& comment : lex.comments) {
    blank(comment.offset, comment.length);
  }
  for (const Token& tok : lex.tokens) {
    if (tok.kind == TokenKind::kString || tok.kind == TokenKind::kChar) {
      blank(tok.offset, tok.text.size());
    }
  }
  return out;
}

DeclIndex BuildDeclIndex(const std::vector<SourceFile>& files) {
  DeclIndex index;
  for (const SourceFile& file : files) {
    IndexFile(file, &index);
  }
  return index;
}

std::set<std::string> CollectStatusFunctions(
    const std::vector<SourceFile>& headers) {
  return BuildDeclIndex(headers).status_functions;
}

std::vector<Finding> LintFile(const SourceFile& file, const DeclIndex& index) {
  std::vector<Finding> findings;
  FileAnalysis a = Analyze(file.contents);

  CheckIncludeGuard(file, a, &findings);
  CheckUsingNamespace(file, a, &findings);
  CheckDcheckSideEffects(file, a, &findings);

  if (!HasPrefix(file.path, "util/random.")) {
    for (const char* fn : {"rand", "srand"}) {
      CheckBannedCall(file, a, fn, "no-rand",
                      std::string("`") + fn +
                          "` breaks seed reproducibility; use "
                          "neuroprint::Rng (util/random.h)",
                      &findings);
    }
  }
  if (file.path != "util/logging.h" && file.path != "util/logging.cc" &&
      file.path != "util/check.h") {
    for (const char* fn : {"printf", "fprintf"}) {
      CheckBannedCall(file, a, fn, "no-naked-stdio",
                      std::string("`") + fn +
                          "` bypasses leveled logging; use NP_LOG "
                          "(util/logging.h)",
                      &findings);
    }
  }
  if (file.path != "util/check.h") {
    CheckBannedCall(file, a, "abort", "no-abort",
                    "`abort` outside util/check.h loses the diagnostic "
                    "message; use NP_CHECK or Status",
                    &findings);
    for (const char* fn : {"exit", "_Exit", "quick_exit", "_exit"}) {
      CheckBannedCall(file, a, fn, "no-exit",
                      std::string("`") + fn +
                          "` terminates the process from library code, "
                          "skipping destructors and batch failure policies; "
                          "return Status instead",
                      &findings);
    }
    CheckNoThrow(file, a, &findings);
  }

  CheckNoRawThread(file, a, &findings);
  CheckSimdConfinement(file, a, &findings);
  CheckWallClock(file, a, &findings);
  CheckUnorderedIteration(file, a, &findings);
  CheckParallelLambdas(file, a, &findings);
  WalkStatements(file, a, index, &findings);

  ApplySuppressions(&a, file.path, &findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& x, const Finding& y) {
              if (x.line != y.line) return x.line < y.line;
              return x.rule < y.rule;
            });
  return findings;
}

std::vector<Finding> LintFiles(const std::vector<SourceFile>& files) {
  const DeclIndex index = BuildDeclIndex(files);
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    std::vector<Finding> file_findings = LintFile(file, index);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

std::vector<Finding> LintTreeRelative(const std::string& root,
                                      const std::string& base) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  std::vector<Finding> findings;
  std::error_code ec;
  fs::recursive_directory_iterator it(root, ec), end;
  if (ec) {
    findings.push_back({root, 0, "io-error", root + ": " + ec.message()});
  }
  for (; it != end; it.increment(ec)) {
    if (ec) {
      findings.push_back({root, 0, "io-error", ec.message()});
      break;
    }
    if (!it->is_regular_file()) continue;
    const std::string path = it->path().string();
    if (!HasSuffix(path, ".h") && !HasSuffix(path, ".cc")) continue;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      findings.push_back({path, 0, "io-error", "cannot read file"});
      continue;
    }
    files.push_back(
        {fs::path(path).lexically_relative(base).generic_string(),
         buffer.str()});
  }
  std::vector<Finding> lint_findings = LintFiles(files);
  findings.insert(findings.end(), lint_findings.begin(), lint_findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  return LintTreeRelative(root, root);
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JoinPath(const std::string& prefix, const std::string& file) {
  if (prefix.empty() || prefix == ".") return file;
  if (HasSuffix(prefix, "/")) return prefix + file;
  return prefix + "/" + file;
}

}  // namespace

std::string FormatFindings(const std::vector<Finding>& findings,
                           const std::string& format,
                           const std::string& path_prefix) {
  std::ostringstream os;
  if (format == "json") {
    os << "[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      const Finding& f = findings[i];
      os << (i == 0 ? "\n" : ",\n");
      os << "  {\"file\": \"" << JsonEscape(JoinPath(path_prefix, f.file))
         << "\", \"line\": " << f.line << ", \"rule\": \""
         << JsonEscape(f.rule) << "\", \"message\": \""
         << JsonEscape(f.message) << "\"}";
    }
    os << (findings.empty() ? "]\n" : "\n]\n");
    return os.str();
  }
  if (format == "github") {
    // GitHub workflow-command annotations: rendered inline on the PR diff.
    for (const Finding& f : findings) {
      os << "::error file=" << JoinPath(path_prefix, f.file)
         << ",line=" << f.line << ",title=" << f.rule << "::" << f.message
         << "\n";
    }
    return os.str();
  }
  for (const Finding& f : findings) {
    os << JoinPath(path_prefix, f.file) << ":" << f.line << ": [" << f.rule
       << "] " << f.message << "\n";
  }
  return os.str();
}

}  // namespace neuroprint::lint
