#include "tools/lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace neuroprint::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool IsHeader(const std::string& path) { return HasSuffix(path, ".h"); }

int LineOfOffset(const std::string& text, std::size_t offset) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + static_cast<long>(offset), '\n'));
}

// Returns the offset one past the ')' matching the '(' at `open`, or npos
// if the parens never balance.
std::size_t SkipBalancedParens(const std::string& text, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

struct Line {
  std::size_t begin = 0;  // offset of first char
  std::string text;       // sanitized line contents (no newline)
};

std::vector<Line> SplitLines(const std::string& text) {
  std::vector<Line> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.push_back({start, text.substr(start, i - start)});
      start = i + 1;
    }
  }
  return lines;
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// Rule: include-guard
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& path) {
  std::string guard = "NEUROPRINT_";
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

void CheckIncludeGuard(const SourceFile& file, const std::string& sanitized,
                       std::vector<Finding>* findings) {
  if (!IsHeader(file.path)) return;
  const std::string expected = ExpectedGuard(file.path);
  for (const Line& line : SplitLines(sanitized)) {
    const std::string trimmed = Trim(line.text);
    if (!HasPrefix(trimmed, "#ifndef")) continue;
    const std::string guard = Trim(trimmed.substr(7));
    if (guard != expected) {
      findings->push_back({file.path, LineOfOffset(sanitized, line.begin),
                           "include-guard",
                           "include guard `" + guard + "` should be `" +
                               expected + "`"});
    } else if (sanitized.find("#define " + expected) == std::string::npos) {
      findings->push_back({file.path, LineOfOffset(sanitized, line.begin),
                           "include-guard",
                           "missing `#define " + expected + "` after #ifndef"});
    }
    return;  // only the first #ifndef is the guard
  }
  findings->push_back(
      {file.path, 1, "include-guard",
       "header has no include guard (expected `" + expected + "`)"});
}

// ---------------------------------------------------------------------------
// Banned-call rules (no-rand / no-naked-stdio / no-abort)
// ---------------------------------------------------------------------------

// Finds offsets where the exact identifier `name` is invoked as a free (or
// namespace-qualified) function: not a member access (`x.name`, `p->name`)
// and directly followed by `(`.
std::vector<std::size_t> FindCalls(const std::string& text,
                                   const std::string& name) {
  std::vector<std::size_t> offsets;
  std::size_t pos = 0;
  while ((pos = text.find(name, pos)) != std::string::npos) {
    const std::size_t end = pos + name.size();
    const bool own_token =
        (pos == 0 || !IsIdentChar(text[pos - 1])) &&
        (end == text.size() || !IsIdentChar(text[end]));
    const bool member_access =
        (pos >= 1 && text[pos - 1] == '.') ||
        (pos >= 2 && text[pos - 2] == '-' && text[pos - 1] == '>');
    std::size_t after = end;
    while (after < text.size() &&
           (text[after] == ' ' || text[after] == '\t')) {
      ++after;
    }
    const bool called = after < text.size() && text[after] == '(';
    if (own_token && !member_access && called) offsets.push_back(pos);
    pos = end;
  }
  return offsets;
}

void CheckBannedCall(const SourceFile& file, const std::string& sanitized,
                     const std::string& name, const std::string& rule,
                     const std::string& message,
                     std::vector<Finding>* findings) {
  for (std::size_t offset : FindCalls(sanitized, name)) {
    findings->push_back(
        {file.path, LineOfOffset(sanitized, offset), rule, message});
  }
}

// ---------------------------------------------------------------------------
// Rule: no-throw
// ---------------------------------------------------------------------------

// Library code reports failures through Status/Result; a `throw` unwinds
// straight past the batch failure-policy machinery (and terminates the
// process under -fno-exceptions builds). The token-boundary check keeps
// `std::rethrow_exception` (used by the thread pool to forward worker
// exceptions) and identifiers like `throw_away` from matching.
void CheckNoThrow(const SourceFile& file, const std::string& sanitized,
                  std::vector<Finding>* findings) {
  std::size_t pos = 0;
  while ((pos = sanitized.find("throw", pos)) != std::string::npos) {
    const std::size_t end = pos + 5;
    const bool own_token =
        (pos == 0 || !IsIdentChar(sanitized[pos - 1])) &&
        (end == sanitized.size() || !IsIdentChar(sanitized[end]));
    if (own_token) {
      findings->push_back(
          {file.path, LineOfOffset(sanitized, pos), "no-throw",
           "`throw` in library code bypasses Status-based error handling "
           "and the batch FailurePolicy; return a Status instead"});
    }
    pos = end;
  }
}

// ---------------------------------------------------------------------------
// Rule: dcheck-side-effect
// ---------------------------------------------------------------------------

// Textual scan of an NP_DCHECK argument for mutation operators: ++, --,
// plain assignment, and compound assignment. Comparison operators
// (== != <= >= <=>) are not flagged. Side effects hidden inside function
// calls are a documented blind spot.
bool HasSideEffectToken(const std::string& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if ((c == '+' || c == '-') && i + 1 < args.size() && args[i + 1] == c) {
      return true;  // ++ or --
    }
    if (c != '=') continue;
    const char prev = i > 0 ? args[i - 1] : '\0';
    const char next = i + 1 < args.size() ? args[i + 1] : '\0';
    if (next == '=') {
      ++i;  // `==`: skip both
      continue;
    }
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>') {
      continue;  // second char of == != <= >= (or <=>)
    }
    return true;  // plain or compound assignment
  }
  return false;
}

void CheckDcheckSideEffects(const SourceFile& file,
                            const std::string& sanitized,
                            std::vector<Finding>* findings) {
  std::size_t pos = 0;
  while ((pos = sanitized.find("NP_DCHECK", pos)) != std::string::npos) {
    if (pos > 0 && IsIdentChar(sanitized[pos - 1])) {
      pos += 9;
      continue;
    }
    std::size_t open = pos + 9;  // after "NP_DCHECK"
    while (open < sanitized.size() && IsIdentChar(sanitized[open])) {
      ++open;  // _EQ, _GE, ... suffix
    }
    while (open < sanitized.size() &&
           (sanitized[open] == ' ' || sanitized[open] == '\t')) {
      ++open;
    }
    if (open >= sanitized.size() || sanitized[open] != '(') {
      pos = open;
      continue;  // mention without invocation (e.g. a #define)
    }
    const std::size_t close = SkipBalancedParens(sanitized, open);
    if (close == std::string::npos) break;
    const std::string args =
        sanitized.substr(open + 1, close - open - 2);
    if (HasSideEffectToken(args)) {
      findings->push_back(
          {file.path, LineOfOffset(sanitized, pos), "dcheck-side-effect",
           "NP_DCHECK argument appears to have side effects; DCHECKs "
           "compile out in release builds"});
    }
    pos = close;
  }
}

// ---------------------------------------------------------------------------
// Rule: no-using-namespace
// ---------------------------------------------------------------------------

void CheckUsingNamespace(const SourceFile& file, const std::string& sanitized,
                         std::vector<Finding>* findings) {
  if (!IsHeader(file.path)) return;
  std::size_t pos = 0;
  while ((pos = sanitized.find("using", pos)) != std::string::npos) {
    const bool own_token =
        (pos == 0 || !IsIdentChar(sanitized[pos - 1])) &&
        (pos + 5 >= sanitized.size() || !IsIdentChar(sanitized[pos + 5]));
    if (own_token) {
      std::size_t after = pos + 5;
      while (after < sanitized.size() &&
             std::isspace(static_cast<unsigned char>(sanitized[after])) != 0) {
        ++after;
      }
      if (sanitized.compare(after, 9, "namespace") == 0) {
        findings->push_back(
            {file.path, LineOfOffset(sanitized, pos), "no-using-namespace",
             "`using namespace` in a public header pollutes every includer"});
      }
    }
    pos += 5;
  }
}

// ---------------------------------------------------------------------------
// Rule: unused-status
// ---------------------------------------------------------------------------

// Heuristic declaration scan: a line of the form
//   [static|virtual|inline|friend|[[nodiscard]]]* Status <name>(...
// declares a Status-returning function called <name>.
void CollectFromHeader(const std::string& sanitized,
                       std::set<std::string>* names) {
  for (const Line& line : SplitLines(sanitized)) {
    std::string t = Trim(line.text);
    for (bool stripped = true; stripped;) {
      stripped = false;
      for (const char* prefix :
           {"static ", "virtual ", "inline ", "friend ", "[[nodiscard]] "}) {
        if (HasPrefix(t, prefix)) {
          t = Trim(t.substr(std::string(prefix).size()));
          stripped = true;
        }
      }
    }
    if (!HasPrefix(t, "Status ")) continue;
    std::size_t name_begin = 7;
    std::size_t name_end = name_begin;
    while (name_end < t.size() && IsIdentChar(t[name_end])) ++name_end;
    if (name_end == name_begin) continue;
    if (name_end >= t.size() || t[name_end] != '(') continue;
    const std::string name = t.substr(name_begin, name_end - name_begin);
    if (name == "operator") continue;
    names->insert(name);
  }
}

// Flags statement-position calls `Foo(...);` whose result (a Status) is
// silently dropped. Statement position = the previous non-whitespace
// character is one of ; { } or the file start, and the call's closing ')'
// is immediately followed by ';'. Member calls (`obj.Foo();`) and calls
// split so the name is not at the start of a line are blind spots.
void CheckUnusedStatus(const SourceFile& file, const std::string& sanitized,
                       const std::set<std::string>& status_functions,
                       std::vector<Finding>* findings) {
  if (status_functions.empty()) return;
  for (const Line& line : SplitLines(sanitized)) {
    const std::string t = Trim(line.text);
    if (t.empty() || t[0] == '#') continue;
    std::size_t name_end = 0;
    while (name_end < t.size() && IsIdentChar(t[name_end])) ++name_end;
    if (name_end == 0 || name_end >= t.size() || t[name_end] != '(') continue;
    const std::string name = t.substr(0, name_end);
    if (status_functions.count(name) == 0) continue;

    // Statement position: previous non-whitespace char ends a statement.
    std::size_t prev = line.begin;
    char prev_char = '\0';
    while (prev > 0) {
      --prev;
      const char c = sanitized[prev];
      if (std::isspace(static_cast<unsigned char>(c)) == 0) {
        prev_char = c;
        break;
      }
    }
    if (prev_char != '\0' && prev_char != ';' && prev_char != '{' &&
        prev_char != '}') {
      continue;  // continuation of an expression; the value is consumed
    }

    const std::size_t open =
        line.begin + line.text.find(name) + name.size();
    const std::size_t close = SkipBalancedParens(sanitized, open);
    if (close == std::string::npos) continue;
    std::size_t after = close;
    while (after < sanitized.size() &&
           std::isspace(static_cast<unsigned char>(sanitized[after])) != 0) {
      ++after;
    }
    if (after < sanitized.size() && sanitized[after] == ';') {
      findings->push_back(
          {file.path, LineOfOffset(sanitized, line.begin), "unused-status",
           "result of Status-returning `" + name +
               "` is ignored; check it or NP_RETURN_IF_ERROR it"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-raw-thread
// ---------------------------------------------------------------------------

// Raw std::thread (or std::jthread) outside util/thread_pool.* bypasses
// the deterministic ParallelFor contract and the TSan-covered pool.
// Token-boundary checks keep `std::this_thread` and `thread_local` from
// matching.
void CheckNoRawThread(const SourceFile& file, const std::string& sanitized,
                      std::vector<Finding>* findings) {
  if (HasPrefix(file.path, "util/thread_pool.")) return;
  for (const char* name : {"std::thread", "std::jthread"}) {
    const std::string token = name;
    std::size_t pos = 0;
    while ((pos = sanitized.find(token, pos)) != std::string::npos) {
      const std::size_t end = pos + token.size();
      const bool own_token =
          (pos == 0 ||
           (!IsIdentChar(sanitized[pos - 1]) && sanitized[pos - 1] != ':')) &&
          (end == sanitized.size() || !IsIdentChar(sanitized[end]));
      if (own_token) {
        findings->push_back(
            {file.path, LineOfOffset(sanitized, pos), "no-raw-thread",
             "`" + token +
                 "` outside util/thread_pool.* skips the deterministic "
                 "ParallelFor contract; use util/thread_pool.h"});
      }
      pos = end;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: no-static-local
// ---------------------------------------------------------------------------

// Whether the token `keyword` appears as its own word in `text`.
bool HasKeyword(const std::string& text, const std::string& keyword) {
  std::size_t pos = 0;
  while ((pos = text.find(keyword, pos)) != std::string::npos) {
    const std::size_t end = pos + keyword.size();
    if ((pos == 0 || !IsIdentChar(text[pos - 1])) &&
        (end == text.size() || !IsIdentChar(text[end]))) {
      return true;
    }
    pos = end;
  }
  return false;
}

// Function-local `static` data is shared mutable state — the classic data
// race under the new thread pool — so it is banned outside util/ (which
// owns the deliberately-shared singletons). Immutable locals (`static
// const/constexpr/constinit`) and per-thread state (`static thread_local`)
// are allowed.
//
// The scan tracks a brace-kind stack: a `{` opens a function-ish scope
// unless the statement introducing it mentions namespace / class / struct
// / union / enum / extern. `static` data members therefore do not trigger
// the rule; `static` declared in template functions whose introducer
// carries `template <class T>` is a documented blind spot.
void CheckStaticLocals(const SourceFile& file, const std::string& sanitized,
                       std::vector<Finding>* findings) {
  if (HasPrefix(file.path, "util/")) return;
  std::vector<bool> brace_is_function;
  std::size_t function_depth = 0;
  std::size_t stmt_start = 0;
  for (std::size_t i = 0; i < sanitized.size(); ++i) {
    const char c = sanitized[i];
    if (c == ';') {
      stmt_start = i + 1;
    } else if (c == '{') {
      const std::string intro = sanitized.substr(stmt_start, i - stmt_start);
      bool is_type_scope = false;
      for (const char* kw :
           {"namespace", "class", "struct", "union", "enum", "extern"}) {
        if (HasKeyword(intro, kw)) {
          is_type_scope = true;
          break;
        }
      }
      brace_is_function.push_back(!is_type_scope);
      if (!is_type_scope) ++function_depth;
      stmt_start = i + 1;
    } else if (c == '}') {
      if (!brace_is_function.empty()) {
        if (brace_is_function.back()) --function_depth;
        brace_is_function.pop_back();
      }
      stmt_start = i + 1;
    } else if (c == 's' && function_depth > 0 &&
               sanitized.compare(i, 6, "static") == 0) {
      const bool own_token =
          (i == 0 || !IsIdentChar(sanitized[i - 1])) &&
          (i + 6 == sanitized.size() || !IsIdentChar(sanitized[i + 6]));
      if (!own_token) continue;  // static_cast, static_assert, my_static...
      std::size_t after = i + 6;
      while (after < sanitized.size() &&
             std::isspace(static_cast<unsigned char>(sanitized[after])) != 0) {
        ++after;
      }
      std::size_t word_end = after;
      while (word_end < sanitized.size() && IsIdentChar(sanitized[word_end])) {
        ++word_end;
      }
      const std::string next = sanitized.substr(after, word_end - after);
      if (next != "const" && next != "constexpr" && next != "constinit" &&
          next != "thread_local") {
        findings->push_back(
            {file.path, LineOfOffset(sanitized, i), "no-static-local",
             "`static` mutable local is shared state and a data race under "
             "ParallelFor; pass state explicitly or move it to util/"});
      }
      i += 5;
    }
  }
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << message;
  return os.str();
}

std::string StripCommentsAndStrings(const std::string& contents) {
  std::string out = contents;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char terminator = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < out.size() && out[i + 1] != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == terminator) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

std::set<std::string> CollectStatusFunctions(
    const std::vector<SourceFile>& headers) {
  std::set<std::string> names;
  for (const SourceFile& header : headers) {
    if (!IsHeader(header.path)) continue;
    CollectFromHeader(StripCommentsAndStrings(header.contents), &names);
  }
  return names;
}

std::vector<Finding> LintFile(const SourceFile& file,
                              const std::set<std::string>& status_functions) {
  std::vector<Finding> findings;
  const std::string sanitized = StripCommentsAndStrings(file.contents);

  CheckIncludeGuard(file, sanitized, &findings);
  CheckUsingNamespace(file, sanitized, &findings);
  CheckDcheckSideEffects(file, sanitized, &findings);

  if (!HasPrefix(file.path, "util/random.")) {
    for (const char* fn : {"rand", "srand"}) {
      CheckBannedCall(file, sanitized, fn, "no-rand",
                      std::string("`") + fn +
                          "` breaks seed reproducibility; use "
                          "neuroprint::Rng (util/random.h)",
                      &findings);
    }
  }
  if (file.path != "util/logging.h" && file.path != "util/logging.cc" &&
      file.path != "util/check.h") {
    for (const char* fn : {"printf", "fprintf"}) {
      CheckBannedCall(file, sanitized, fn, "no-naked-stdio",
                      std::string("`") + fn +
                          "` bypasses leveled logging; use NP_LOG "
                          "(util/logging.h)",
                      &findings);
    }
  }
  if (file.path != "util/check.h") {
    CheckBannedCall(file, sanitized, "abort", "no-abort",
                    "`abort` outside util/check.h loses the diagnostic "
                    "message; use NP_CHECK or Status",
                    &findings);
    for (const char* fn : {"exit", "_Exit", "quick_exit", "_exit"}) {
      CheckBannedCall(file, sanitized, fn, "no-exit",
                      std::string("`") + fn +
                          "` terminates the process from library code, "
                          "skipping destructors and batch failure policies; "
                          "return Status instead",
                      &findings);
    }
    CheckNoThrow(file, sanitized, &findings);
  }

  CheckNoRawThread(file, sanitized, &findings);
  CheckStaticLocals(file, sanitized, &findings);

  CheckUnusedStatus(file, sanitized, status_functions, &findings);
  return findings;
}

std::vector<Finding> LintFiles(const std::vector<SourceFile>& files) {
  const std::set<std::string> status_functions = CollectStatusFunctions(files);
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    std::vector<Finding> file_findings = LintFile(file, status_functions);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  std::vector<Finding> findings;
  std::error_code ec;
  fs::recursive_directory_iterator it(root, ec), end;
  if (ec) {
    findings.push_back({root, 0, "io-error", root + ": " + ec.message()});
  }
  for (; it != end; it.increment(ec)) {
    if (ec) {
      findings.push_back({root, 0, "io-error", ec.message()});
      break;
    }
    if (!it->is_regular_file()) continue;
    const std::string path = it->path().string();
    if (!HasSuffix(path, ".h") && !HasSuffix(path, ".cc")) continue;
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!in) {
      findings.push_back({path, 0, "io-error", "cannot read file"});
      continue;
    }
    files.push_back(
        {fs::path(path).lexically_relative(root).generic_string(),
         buffer.str()});
  }
  std::vector<Finding> lint_findings = LintFiles(files);
  findings.insert(findings.end(), lint_findings.begin(), lint_findings.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return findings;
}

}  // namespace neuroprint::lint
