#include "util/random.h"

namespace neuroprint {

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  NP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    NP_DCHECK(w >= 0.0);
    total += w;
  }
  NP_CHECK(total > 0.0) << "Categorical requires a positive total weight";
  double u = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  // Floating-point slack: fall back to the last positively weighted index.
  for (std::size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

}  // namespace neuroprint
