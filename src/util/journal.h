// Crash-safe file primitives for the durable identification index:
// atomic whole-file replacement and an append-only write-ahead journal,
// both CRC-32C-guarded (util/crc32c.h) and both instrumented with
// deterministic crash injection.
//
// AtomicFileWriter publishes a file all-or-nothing: bytes accumulate in
// `path + ".tmp"`, and Commit() fsyncs the temp file, renames it over
// `path`, and fsyncs the parent directory. A crash before the rename
// leaves the old file untouched; a crash after it leaves the new file
// fully in place — rename(2) is the atomicity point, so no reader ever
// observes a half-written snapshot. Leftover `.tmp` files from a crash
// are inert (recovery unlinks them).
//
// JournalWriter appends length-prefixed records:
//
//   u32 payload_bytes | u32 crc32c(payload) | payload     (little-endian)
//
// Each Append() is a single buffered write followed (per
// JournalOptions::sync_every) by fsync, so a record is either fully
// durable or detectably torn: ReplayJournal() walks the file, hands every
// CRC-valid record to the caller in order, and stops at the first record
// whose length or checksum fails — the torn tail a crash mid-append
// leaves behind. The scan reports the valid byte count so the writer can
// truncate the tail and append from the last good record, rather than
// rejecting the whole journal (satisfying "pre-op or post-op, never
// wholesale loss").
//
// Crash injection: every syscall site consults the `io.journal` /
// `io.snapshot` fault points (util/fault.h). An `error` rule makes the
// site fail cleanly (the writer compensates and stays usable); `torn:N`
// performs only the first N bytes of a write; `crash` performs the
// syscall and then abandons. torn/crash flip the writer's sticky
// `crashed` flag: every later call — including the compensating
// truncate/unlink paths — refuses with IOError, which is exactly the
// behavior of a process that died at that instruction. Tests then reopen
// the on-disk state to prove recovery. The points are unkeyed (@hit
// sweeps are deterministic because all durable I/O is serial).

#ifndef NEUROPRINT_UTIL_JOURNAL_H_
#define NEUROPRINT_UTIL_JOURNAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace neuroprint {

/// Bytes of (length, crc) framing preceding every journal payload.
inline constexpr std::size_t kJournalRecordHeaderBytes = 8;

/// Hard cap on one record's payload; a length field beyond it is treated
/// as a corrupt tail, bounding what a scrambled length can make the
/// replayer allocate.
inline constexpr std::uint32_t kJournalMaxRecordBytes = 1u << 30;

class AtomicFileWriter {
 public:
  /// Opens `path + ".tmp"` for writing (truncating any leftover temp from
  /// a previous crash). `fault_point` names the injection point every
  /// syscall site consults; the default is the snapshot path's.
  static Result<AtomicFileWriter> Create(const std::string& path,
                                         const char* fault_point =
                                             "io.snapshot");

  /// An unopened writer: every operation fails FailedPrecondition until a
  /// Create() result is move-assigned in (lets owning classes hold one by
  /// value).
  AtomicFileWriter() = default;

  AtomicFileWriter(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;
  /// Abandons (unlinks the temp file) unless Commit() succeeded.
  ~AtomicFileWriter();

  /// Appends bytes to the temp file.
  Status Append(const void* data, std::size_t size);

  /// fsyncs the temp file, closes it, renames it over `path`, and fsyncs
  /// the parent directory. After OK the file is durably replaced; after
  /// an error the target is either untouched or already fully replaced
  /// (rename is the atomicity point).
  Status Commit();

  /// Closes and unlinks the temp file (no-op after Commit). A crashed
  /// writer only closes — a dead process cannot clean up, so the temp
  /// file stays for recovery to sweep, as it would after a real crash.
  void Abandon();

  std::uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  std::string temp_path_;
  const char* fault_point_ = "io.snapshot";
  std::uint64_t bytes_written_ = 0;
  bool committed_ = false;
  bool crashed_ = false;
};

/// Atomically replaces `path` with `size` bytes (Create + Append +
/// Commit in one call).
Status AtomicWriteFile(const std::string& path, const void* data,
                       std::size_t size,
                       const char* fault_point = "io.snapshot");

struct JournalOptions {
  /// fsync after every Nth appended record. 1 (the default) makes every
  /// record durable before Append returns — the write-ahead guarantee the
  /// durable index relies on. Larger values batch fsyncs for throughput
  /// at the cost of the tail: a crash can lose up to sync_every - 1
  /// committed records (recovery still yields a clean prefix).
  std::size_t sync_every = 1;
};

class JournalWriter {
 public:
  /// Opens `path` for appending at `valid_bytes` — the prefix ReplayJournal
  /// validated — truncating anything past it (the torn tail of a crashed
  /// append). Creates the file when absent (valid_bytes must then be 0).
  static Result<JournalWriter> Open(const std::string& path,
                                    std::uint64_t valid_bytes,
                                    const JournalOptions& options = {});

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one record (framing + payload, a single buffered write) and
  /// fsyncs per sync_every. On a clean failure the journal is truncated
  /// back to the previous record boundary, so an error implies the record
  /// is not on disk and the journal is still well-formed; on a simulated
  /// crash the torn bytes stay for recovery to find.
  Status Append(const void* payload, std::size_t size);

  /// fsyncs any buffered records now.
  Status Sync();

  /// Truncates the journal to `size` bytes (0 after a compaction snapshot)
  /// and syncs.
  Status TruncateTo(std::uint64_t size);

  std::uint64_t size_bytes() const { return size_bytes_; }
  const std::string& path() const { return path_; }

 private:
  JournalWriter() = default;

  /// fsync + fault gate shared by Append's auto-sync and Sync().
  Status SyncLocked();

  int fd_ = -1;
  std::string path_;
  JournalOptions options_;
  std::uint64_t size_bytes_ = 0;
  std::size_t unsynced_records_ = 0;
  bool crashed_ = false;
};

/// Outcome of scanning a journal.
struct JournalScan {
  std::uint64_t valid_bytes = 0;   ///< Prefix holding whole, CRC-valid records.
  std::size_t records = 0;         ///< Records in that prefix.
  std::uint64_t dropped_bytes = 0; ///< Torn/corrupt tail bytes past the prefix.
};

/// Scans `path`, invoking `fn` on every CRC-valid record in order, and
/// stops at the first invalid one (short framing, zero or implausible
/// length, short payload, or checksum mismatch) — the torn tail, reported
/// via dropped_bytes and truncated by the next JournalWriter::Open. A
/// missing file is an empty journal. An error from `fn` aborts the scan
/// and propagates (corruption *within* the valid prefix — a record that
/// passes CRC but fails to decode — should be surfaced that way, not
/// skipped).
Result<JournalScan> ReplayJournal(
    const std::string& path,
    const std::function<Status(const std::uint8_t* payload,
                               std::size_t size)>& fn);

}  // namespace neuroprint

#endif  // NEUROPRINT_UTIL_JOURNAL_H_
