#include "util/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace neuroprint::trace {
namespace {

// Collected spans plus the dense thread-id counter, behind one mutex.
// Span close is the only hot-path lock (span open is lock-free), and
// spans closing is rare relative to the work they bracket.
struct TraceState {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t next_thread_id = 0;
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

std::atomic<bool>& EnabledFlag() {
  // Latches NEUROPRINT_TRACE on first use, mirroring NEUROPRINT_THREADS
  // in the thread pool; SetEnabled overrides the latch afterwards.
  static std::atomic<bool> flag{
      ParseTraceEnv(std::getenv("NEUROPRINT_TRACE"))};
  return flag;
}

std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch())
          .count());
}

// Dense per-thread trace id, assigned in first-span order, plus the
// thread's current span nesting depth.
struct ThreadTraceState {
  std::uint32_t id = 0;
  bool id_assigned = false;
  std::uint32_t depth = 0;
};

ThreadTraceState& LocalState() {
  thread_local ThreadTraceState local;
  return local;
}

std::uint32_t LocalThreadId() {
  ThreadTraceState& local = LocalState();
  if (!local.id_assigned) {
    TraceState& state = State();
    std::lock_guard<std::mutex> lock(state.mu);
    local.id = state.next_thread_id++;
    local.id_assigned = true;
  }
  return local.id;
}

void AppendJsonEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

bool ParseTraceEnv(const char* value) {
  if (value == nullptr || value[0] == '\0') return false;
  return std::strcmp(value, "0") != 0;
}

ScopedEnable::ScopedEnable(bool enable) : engaged_(enable && !Enabled()) {
  if (engaged_) SetEnabled(true);
}

ScopedEnable::~ScopedEnable() {
  if (engaged_) SetEnabled(false);
}

ScopedSpan::ScopedSpan(const char* name) : name_(nullptr) {
  if (!Enabled()) return;
  name_ = name;
  depth_ = LocalState().depth++;
  start_ns_ = NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const std::uint64_t end_ns = NowNs();
  TraceEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  event.thread_id = LocalThreadId();
  event.depth = depth_;
  ThreadTraceState& local = LocalState();
  if (local.depth > 0) --local.depth;
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.push_back(std::move(event));
}

std::vector<TraceEvent> SnapshotEvents() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.events;
}

std::size_t EventCount() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.events.size();
}

void ClearEvents() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.events.clear();
}

std::string ToChromeJson() {
  const std::vector<TraceEvent> events = SnapshotEvents();
  std::string out = "{\"traceEvents\": [";
  char buf[160];
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": \"";
    AppendJsonEscaped(event.name, &out);
    // chrome://tracing wants microseconds; keep sub-microsecond spans
    // visible by emitting fractional ts/dur.
    std::snprintf(buf, sizeof(buf),
                  "\", \"cat\": \"neuroprint\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": %u}",
                  static_cast<double>(event.start_ns) / 1000.0,
                  static_cast<double>(event.duration_ns) / 1000.0,
                  event.thread_id);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open trace output: " + path);
  }
  const std::string json = ToChromeJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) {
    return Status::IOError("failed writing trace output: " + path);
  }
  return Status::OK();
}

Result<std::string> WriteEnvTraceIfRequested() {
  const char* value = std::getenv("NEUROPRINT_TRACE");
  if (!ParseTraceEnv(value)) return std::string();
  std::string path = value;
  if (path == "1" || path == "true") path = "neuroprint_trace.json";
  Status status = WriteChromeTrace(path);
  if (!status.ok()) return status;
  return path;
}

}  // namespace neuroprint::trace
