// CRC-32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding
// every durable byte the service writes (util/journal.h records, index
// snapshots, NPGM v2 trailers).
//
// This is the software slice-by-8 implementation on purpose: the SSE4.2
// crc32 instruction lives behind the SIMD dispatch confinement rule
// (intrinsics only under src/linalg/simd/), and checksumming is far from
// a hot path — the journal writes one small record per mutation and the
// snapshot/NPGM paths are bounded by disk bandwidth, not table lookups
// (~1.5 GB/s here). The output matches the iSCSI/RFC 3720 test vectors,
// so files checksum identically on any host.

#ifndef NEUROPRINT_UTIL_CRC32C_H_
#define NEUROPRINT_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace neuroprint::crc32c {

/// Extends a running CRC-32C over `size` more bytes. `crc` is the value
/// returned by a previous Extend/Value call (0 for an empty prefix), so
/// checksums can be accumulated incrementally across buffer boundaries:
/// Extend(Extend(0, a, n), b, m) == Value(concat(a, b), n + m).
std::uint32_t Extend(std::uint32_t crc, const void* data, std::size_t size);

/// CRC-32C of one contiguous buffer.
inline std::uint32_t Value(const void* data, std::size_t size) {
  return Extend(0, data, size);
}

}  // namespace neuroprint::crc32c

#endif  // NEUROPRINT_UTIL_CRC32C_H_
