// Seedable, reproducible random number generation for neuroprint.
//
// All stochastic components of the library (cohort simulation, randomized
// row sampling, t-SNE initialization, train/test splits) draw from an Rng
// passed in explicitly, so every experiment is reproducible from its seed.
// The generator is PCG64 (O'Neill 2014): small state, excellent statistical
// quality, and identical streams across platforms.

#ifndef NEUROPRINT_UTIL_RANDOM_H_
#define NEUROPRINT_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace neuroprint {

/// PCG64 (pcg128_64 XSL-RR) pseudo-random generator.
///
/// Satisfies the UniformRandomBitGenerator concept, so it also works with
/// <random> distributions, though the member helpers below are preferred
/// because their output is platform-stable.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a seed; equal seeds give equal streams.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    state_ = 0;
    inc_ = (static_cast<unsigned __int128>(seed) << 1u) | 1u;
    Next64();
    state_ += static_cast<unsigned __int128>(0x9e3779b97f4a7c15ULL) ^
              (static_cast<unsigned __int128>(seed) << 64);
    Next64();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next64(); }

  /// Uniform 64-bit value.
  std::uint64_t Next64() {
    const unsigned __int128 old = state_;
    state_ = old * kMultiplier + inc_;
    const std::uint64_t xored =
        static_cast<std::uint64_t>(old >> 64) ^ static_cast<std::uint64_t>(old);
    const unsigned rot = static_cast<unsigned>(old >> 122);
    return (xored >> rot) | (xored << ((-rot) & 63u));
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection to
  /// avoid modulo bias.
  std::uint64_t UniformInt(std::uint64_t n) {
    NP_DCHECK(n > 0);
    unsigned __int128 m =
        static_cast<unsigned __int128>(Next64()) * static_cast<unsigned __int128>(n);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (-n) % n;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(Next64()) *
            static_cast<unsigned __int128>(n);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal deviate (Marsaglia polar method).
  double Gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * Uniform() - 1.0;
      v = 2.0 * Uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double scale = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * scale;
    have_spare_ = true;
    return u * scale;
  }

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> Permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    std::iota(p.begin(), p.end(), std::size_t{0});
    Shuffle(p);
    return p;
  }

  /// Samples an index from the (unnormalized, non-negative) weight vector.
  /// Requires at least one positive weight.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Derives an independent generator; stream i is stable for a given seed.
  Rng Fork(std::uint64_t stream) {
    return Rng(Next64() ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  }

 private:
  static constexpr unsigned __int128 kMultiplier =
      (static_cast<unsigned __int128>(2549297995355413924ULL) << 64) |
      4865540595714422341ULL;

  unsigned __int128 state_ = 0;
  unsigned __int128 inc_ = 0;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace neuroprint

#endif  // NEUROPRINT_UTIL_RANDOM_H_
