#include "util/crc32c.h"

namespace neuroprint::crc32c {
namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

// Slice-by-8 lookup tables, computed at compile time (8 x 256 x 4 bytes).
// t[0] is the classic byte-at-a-time table; t[k][b] is the CRC of byte b
// followed by k zero bytes, which lets the hot loop fold 8 input bytes
// with 8 independent loads per iteration.
struct Tables {
  std::uint32_t t[8][256];
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) != 0 ? kPoly : 0u);
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = tables.t[0][crc & 0xffu] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

constexpr Tables kTables = BuildTables();

inline std::uint32_t Load32LE(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t Extend(std::uint32_t crc, const void* data, std::size_t size) {
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  crc = ~crc;
  while (size >= 8) {
    // Byte-wise LE loads keep this alignment- and endian-agnostic; the
    // compiler collapses them to single moves on little-endian hosts.
    const std::uint32_t lo = crc ^ Load32LE(p);
    const std::uint32_t hi = Load32LE(p + 4);
    crc = kTables.t[7][lo & 0xffu] ^ kTables.t[6][(lo >> 8) & 0xffu] ^
          kTables.t[5][(lo >> 16) & 0xffu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xffu] ^ kTables.t[2][(hi >> 8) & 0xffu] ^
          kTables.t[1][(hi >> 16) & 0xffu] ^ kTables.t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    crc = kTables.t[0][(crc ^ *p) & 0xffu] ^ (crc >> 8);
    ++p;
    --size;
  }
  return ~crc;
}

}  // namespace neuroprint::crc32c
