// Small string helpers shared across modules.

#ifndef NEUROPRINT_UTIL_STRING_UTIL_H_
#define NEUROPRINT_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace neuroprint {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `text` on `delim`; adjacent delimiters yield empty fields.
std::vector<std::string> StrSplit(const std::string& text, char delim);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

/// True if `text` ends with `suffix`.
bool EndsWith(const std::string& text, const std::string& suffix);

/// Strips ASCII whitespace from both ends.
std::string StrTrim(const std::string& text);

}  // namespace neuroprint

#endif  // NEUROPRINT_UTIL_STRING_UTIL_H_
