// Process-wide metrics registry: named counters, gauges, and histograms
// collected from the attack pipeline's hot paths (gemm FLOPs, SVD QR
// iterations, leverage path taken, connectome sizes, per-stage wall
// time, thread-pool steal/idle counts).
//
// Collection shares the runtime toggle with util/trace.h: the free
// helpers Count/SetGauge/Observe are no-ops unless trace::Enabled(), so
// instrumentation can stay in hot paths permanently at the cost of one
// relaxed atomic load when disabled.
//
// Determinism contract: every metric carries a Stability tag.
//  - kSemantic: a fact about the computation (FLOPs, iteration counts,
//    matrix sizes, paths taken). Must be bitwise-identical across thread
//    counts — the parallel-invariance tests enforce this. To keep that
//    guarantee, semantic metrics updated from inside parallel regions
//    must be integer counters (integer addition commutes exactly);
//    gauges are fine only when set from serial context.
//  - kTiming: wall-clock observations (histograms of stage seconds).
//    Inherently run-dependent; excluded from invariance checks.
//  - kScheduler: facts about how the work-stealing pool happened to
//    schedule this run (steals, idle scans, chunk counts). Explicitly
//    nondeterministic across thread counts and runs; excluded from
//    invariance checks.

#ifndef NEUROPRINT_UTIL_METRICS_H_
#define NEUROPRINT_UTIL_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace neuroprint::metrics {

/// Determinism classification of a metric; see the file comment.
enum class Stability {
  kSemantic = 0,
  kTiming = 1,
  kScheduler = 2,
};

/// "semantic" / "timing" / "scheduler".
const char* StabilityName(Stability stability);

/// A monotonically accumulated integer counter.
struct CounterValue {
  std::string name;
  Stability stability = Stability::kSemantic;
  std::uint64_t value = 0;
};

/// A last-write-wins scalar.
struct GaugeValue {
  std::string name;
  Stability stability = Stability::kSemantic;
  double value = 0.0;
};

/// Summary statistics over observed samples (no buckets; count/sum/
/// min/max are enough for stage-time reporting).
struct HistogramValue {
  std::string name;
  Stability stability = Stability::kTiming;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// A point-in-time copy of the registry, each section sorted by name.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// This snapshot restricted to kSemantic entries — the set the
  /// invariance tests compare bitwise across thread counts.
  Snapshot SemanticOnly() const;

  /// JSON array of metric objects: {"name", "kind", "stability",
  /// "value"} for counters/gauges, {"name", "kind", "stability",
  /// "count", "sum", "min", "max"} for histograms.
  std::string ToJson() const;

  /// CSV with header name,kind,stability,value,count,sum,min,max
  /// (unused cells empty).
  std::string ToCsv() const;
};

/// Thread-safe registry of named metrics. Normal code uses the free
/// helpers below (which hit the Global() instance and respect the trace
/// toggle); tests may construct private registries.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry that the free helpers write to.
  static Registry& Global();

  /// Adds `delta` to counter `name`, registering it on first use. The
  /// first registration's stability tag wins.
  void Add(std::string_view name, std::uint64_t delta,
           Stability stability = Stability::kSemantic);

  /// Sets gauge `name` to `value` (last write wins).
  void Set(std::string_view name, double value,
           Stability stability = Stability::kSemantic);

  /// Records one sample into histogram `name`.
  void Observe(std::string_view name, double value,
               Stability stability = Stability::kTiming);

  Snapshot TakeSnapshot() const;

  /// Removes every metric (used between test cases / bench phases).
  void Reset();

 private:
  struct CounterCell {
    Stability stability = Stability::kSemantic;
    std::uint64_t value = 0;
  };
  struct GaugeCell {
    Stability stability = Stability::kSemantic;
    double value = 0.0;
  };
  struct HistogramCell {
    Stability stability = Stability::kTiming;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  mutable std::mutex mu_;
  std::map<std::string, CounterCell, std::less<>> counters_;
  std::map<std::string, GaugeCell, std::less<>> gauges_;
  std::map<std::string, HistogramCell, std::less<>> histograms_;
};

/// Adds `delta` to the global counter `name`; no-op unless
/// trace::Enabled(). Safe from any thread.
void Count(std::string_view name, std::uint64_t delta,
           Stability stability = Stability::kSemantic);

/// Sets the global gauge `name`; no-op unless trace::Enabled(). Call
/// from serial context only when tagged kSemantic (see file comment).
void SetGauge(std::string_view name, double value,
              Stability stability = Stability::kSemantic);

/// Records a sample into the global histogram `name`; no-op unless
/// trace::Enabled().
void Observe(std::string_view name, double value,
             Stability stability = Stability::kTiming);

/// Writes Global().TakeSnapshot().ToJson() to `path`, overwriting.
Status WriteJson(const std::string& path);

}  // namespace neuroprint::metrics

#endif  // NEUROPRINT_UTIL_METRICS_H_
