#include "util/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define NEUROPRINT_HAS_POSIX_IO 1
#else
#define NEUROPRINT_HAS_POSIX_IO 0
#endif

#include "util/crc32c.h"
#include "util/endian.h"
#include "util/fault.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace neuroprint {

#if NEUROPRINT_HAS_POSIX_IO

namespace {

Status ErrnoError(const char* what, const std::string& path) {
  return Status::IOError(StrFormat("%s failed (%s): %s", what,
                                   std::strerror(errno), path.c_str()));
}

Status WriteFully(int fd, const std::uint8_t* data, std::size_t size,
                  const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write", path);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

// Performs one write honoring the fault point's rules. kError fails
// before the syscall (the file is untouched, the writer stays usable);
// kCorrupt writes a deterministically scrambled copy and reports success
// (media corruption, caught later by CRC); kTorn writes only the first
// torn_bytes bytes and kills the writer; kCrash writes everything and
// kills the writer (crash between the write and whatever came next).
Status FaultyWrite(int fd, const std::uint8_t* data, std::size_t size,
                   const char* point, bool* crashed,
                   const std::string& path) {
  if (!fault::Enabled()) return WriteFully(fd, data, size, path);
  const fault::Injection injection = fault::Hit(point);
  switch (injection.action) {
    case fault::Action::kNone:
      return WriteFully(fd, data, size, path);
    case fault::Action::kError:
      return injection.status;
    case fault::Action::kCorrupt: {
      std::vector<std::uint8_t> scrambled(data, data + size);
      fault::ScrambleBytes(injection.seed, scrambled.data(), size);
      return WriteFully(fd, scrambled.data(), size, path);
    }
    case fault::Action::kNaN:
      return Status::Internal(std::string("fault point '") + point +
                              "' does not support action 'nan'");
    case fault::Action::kTorn: {
      const std::size_t keep = static_cast<std::size_t>(
          std::min<std::uint64_t>(injection.torn_bytes, size));
      Status status =
          keep > 0 ? WriteFully(fd, data, keep, path) : Status::OK();
      *crashed = true;
      if (!status.ok()) return status;
      return Status::IOError(StrFormat(
          "simulated torn write (%zu of %zu bytes) at %s: %s", keep, size,
          point, path.c_str()));
    }
    case fault::Action::kCrash: {
      Status status = WriteFully(fd, data, size, path);
      *crashed = true;
      if (!status.ok()) return status;
      return Status::IOError(StrFormat("simulated crash after write at %s: %s",
                                       point, path.c_str()));
    }
  }
  return WriteFully(fd, data, size, path);
}

// Fault gate for non-write syscall sites (open, fsync, rename, truncate).
// kError fails cleanly without performing the syscall; kTorn crashes
// *before* it (an fsync or rename has no partial form, so the nearest
// crash point is just shy of the syscall); kCrash asks the caller to
// perform the syscall and then crash (crash_after).
struct SyscallGate {
  Status status;  ///< Non-OK: do not perform the syscall.
  bool crash_after = false;
};

SyscallGate GateSyscall(const char* point, bool* crashed,
                        const std::string& path) {
  SyscallGate gate;
  if (!fault::Enabled()) return gate;
  const fault::Injection injection = fault::Hit(point);
  switch (injection.action) {
    case fault::Action::kNone:
      break;
    case fault::Action::kError:
      gate.status = injection.status;
      break;
    case fault::Action::kTorn:
      *crashed = true;
      gate.status = Status::IOError(StrFormat(
          "simulated crash before syscall at %s: %s", point, path.c_str()));
      break;
    case fault::Action::kCrash:
      gate.crash_after = true;
      break;
    case fault::Action::kNaN:
    case fault::Action::kCorrupt:
      gate.status =
          Status::Internal(std::string("fault point '") + point +
                           "' does not support action '" +
                           fault::ActionName(injection.action) +
                           "' at a non-write site");
      break;
  }
  return gate;
}

Status CrashedError(const char* what, const std::string& path) {
  return Status::IOError(StrFormat(
      "%s refused: writer already crashed (simulated): %s", what,
      path.c_str()));
}

// Best-effort durability for a directory entry (file creation / rename).
void FsyncParentDir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? std::string(".") : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

}  // namespace

Result<AtomicFileWriter> AtomicFileWriter::Create(const std::string& path,
                                                  const char* fault_point) {
  bool gate_crashed = false;
  const SyscallGate gate = GateSyscall(fault_point, &gate_crashed, path);
  if (!gate.status.ok()) return gate.status;
  AtomicFileWriter writer;
  writer.path_ = path;
  writer.temp_path_ = path + ".tmp";
  writer.fault_point_ = fault_point;
  writer.fd_ = ::open(writer.temp_path_.c_str(),
                      O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (writer.fd_ < 0) return ErrnoError("open", writer.temp_path_);
  if (gate.crash_after) {
    // Crash right after the open: the (empty) temp file stays behind for
    // recovery to sweep, exactly as a dead process would leave it.
    (void)::close(writer.fd_);
    writer.fd_ = -1;
    writer.crashed_ = true;
    return Status::IOError(StrFormat("simulated crash after open at %s: %s",
                                     fault_point, path.c_str()));
  }
  return writer;
}

AtomicFileWriter::AtomicFileWriter(AtomicFileWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      temp_path_(std::move(other.temp_path_)),
      fault_point_(other.fault_point_),
      bytes_written_(other.bytes_written_),
      committed_(other.committed_),
      crashed_(other.crashed_) {
  other.fd_ = -1;
  other.temp_path_.clear();
  other.committed_ = true;  // Disarm the moved-from destructor.
}

AtomicFileWriter& AtomicFileWriter::operator=(
    AtomicFileWriter&& other) noexcept {
  if (this == &other) return *this;
  Abandon();
  fd_ = other.fd_;
  path_ = std::move(other.path_);
  temp_path_ = std::move(other.temp_path_);
  fault_point_ = other.fault_point_;
  bytes_written_ = other.bytes_written_;
  committed_ = other.committed_;
  crashed_ = other.crashed_;
  other.fd_ = -1;
  other.temp_path_.clear();
  other.committed_ = true;
  return *this;
}

AtomicFileWriter::~AtomicFileWriter() { Abandon(); }

Status AtomicFileWriter::Append(const void* data, std::size_t size) {
  if (crashed_) return CrashedError("Append", path_);
  if (fd_ < 0 || committed_) {
    return Status::FailedPrecondition("AtomicFileWriter: not open: " + path_);
  }
  if (size == 0) return Status::OK();
  NP_RETURN_IF_ERROR(FaultyWrite(fd_, static_cast<const std::uint8_t*>(data),
                                 size, fault_point_, &crashed_, temp_path_));
  bytes_written_ += size;
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (crashed_) return CrashedError("Commit", path_);
  if (fd_ < 0 || committed_) {
    return Status::FailedPrecondition("AtomicFileWriter: not open: " + path_);
  }
  // 1. Make the temp file's bytes durable.
  {
    const SyscallGate gate = GateSyscall(fault_point_, &crashed_, path_);
    if (!gate.status.ok()) return gate.status;
    if (::fsync(fd_) != 0) return ErrnoError("fsync", temp_path_);
    if (gate.crash_after) {
      crashed_ = true;
      (void)::close(fd_);
      fd_ = -1;
      return Status::IOError(StrFormat("simulated crash after fsync at %s: %s",
                                       fault_point_, path_.c_str()));
    }
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    return ErrnoError("close", temp_path_);
  }
  fd_ = -1;
  // 2. The atomicity point: rename publishes the whole file or nothing.
  {
    const SyscallGate gate = GateSyscall(fault_point_, &crashed_, path_);
    if (!gate.status.ok()) return gate.status;
    if (::rename(temp_path_.c_str(), path_.c_str()) != 0) {
      return ErrnoError("rename", path_);
    }
    if (gate.crash_after) {
      // Crash after the rename: the new file is fully in place (the
      // directory entry may not be durable yet, but its contents are) —
      // recovery observes the post-commit state.
      crashed_ = true;
      return Status::IOError(StrFormat(
          "simulated crash after rename at %s: %s", fault_point_,
          path_.c_str()));
    }
  }
  // 3. Make the rename itself durable.
  {
    const SyscallGate gate = GateSyscall(fault_point_, &crashed_, path_);
    if (!gate.status.ok()) {
      // The rename already happened; the file is valid either way.
      committed_ = true;
      return gate.status;
    }
    FsyncParentDir(path_);
    committed_ = true;
    if (gate.crash_after) {
      crashed_ = true;
      return Status::IOError(StrFormat(
          "simulated crash after directory fsync at %s: %s", fault_point_,
          path_.c_str()));
    }
  }
  return Status::OK();
}

void AtomicFileWriter::Abandon() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
  if (committed_ || temp_path_.empty()) return;
  // A crashed writer is a dead process: it cannot clean up, so the temp
  // file stays on disk for recovery to unlink.
  if (!crashed_) (void)::unlink(temp_path_.c_str());
  temp_path_.clear();
}

Status AtomicWriteFile(const std::string& path, const void* data,
                       std::size_t size, const char* fault_point) {
  Result<AtomicFileWriter> writer = AtomicFileWriter::Create(path, fault_point);
  if (!writer.ok()) return writer.status();
  NP_RETURN_IF_ERROR(writer->Append(data, size));
  return writer->Commit();
}

Result<JournalWriter> JournalWriter::Open(const std::string& path,
                                          std::uint64_t valid_bytes,
                                          const JournalOptions& options) {
  if (options.sync_every == 0) {
    return Status::InvalidArgument("JournalOptions: sync_every must be >= 1");
  }
  bool gate_crashed = false;
  const SyscallGate gate = GateSyscall("io.journal", &gate_crashed, path);
  if (!gate.status.ok()) return gate.status;

  JournalWriter journal;
  journal.path_ = path;
  journal.options_ = options;
  journal.fd_ =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (journal.fd_ < 0) return ErrnoError("open", path);
  FsyncParentDir(path);

  struct stat st{};
  if (::fstat(journal.fd_, &st) != 0) return ErrnoError("fstat", path);
  const std::uint64_t on_disk = static_cast<std::uint64_t>(st.st_size);
  if (valid_bytes > on_disk) {
    return Status::CorruptData(StrFormat(
        "journal shrank below its validated prefix (%llu < %llu bytes): %s",
        static_cast<unsigned long long>(on_disk),
        static_cast<unsigned long long>(valid_bytes), path.c_str()));
  }
  if (on_disk > valid_bytes) {
    // Drop the torn tail a crashed append left behind, durably, before
    // anything new lands after the last valid record.
    if (::ftruncate(journal.fd_, static_cast<off_t>(valid_bytes)) != 0) {
      return ErrnoError("ftruncate", path);
    }
    if (::fsync(journal.fd_) != 0) return ErrnoError("fsync", path);
    metrics::Count("journal.tails_truncated", 1);
  }
  if (::lseek(journal.fd_, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    return ErrnoError("lseek", path);
  }
  journal.size_bytes_ = valid_bytes;
  if (gate.crash_after) {
    (void)::close(journal.fd_);
    journal.fd_ = -1;
    journal.crashed_ = true;
    return Status::IOError(
        StrFormat("simulated crash after journal open: %s", path.c_str()));
  }
  return journal;
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      options_(other.options_),
      size_bytes_(other.size_bytes_),
      unsynced_records_(other.unsynced_records_),
      crashed_(other.crashed_) {
  other.fd_ = -1;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) {
    if (!crashed_) (void)::fsync(fd_);
    (void)::close(fd_);
  }
  fd_ = other.fd_;
  path_ = std::move(other.path_);
  options_ = other.options_;
  size_bytes_ = other.size_bytes_;
  unsynced_records_ = other.unsynced_records_;
  crashed_ = other.crashed_;
  other.fd_ = -1;
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ < 0) return;
  if (!crashed_) (void)::fsync(fd_);
  (void)::close(fd_);
}

Status JournalWriter::Append(const void* payload, std::size_t size) {
  if (crashed_) return CrashedError("Append", path_);
  if (fd_ < 0) {
    return Status::FailedPrecondition("JournalWriter: not open: " + path_);
  }
  if (size == 0) {
    return Status::InvalidArgument("JournalWriter: empty record");
  }
  if (size > kJournalMaxRecordBytes) {
    return Status::InvalidArgument(StrFormat(
        "JournalWriter: record of %zu bytes exceeds the %u-byte bound", size,
        kJournalMaxRecordBytes));
  }
  // One buffered write per record: framing + payload land together, so a
  // torn append can only damage the final record, never an earlier one.
  std::vector<std::uint8_t> buffer;
  buffer.reserve(kJournalRecordHeaderBytes + size);
  AppendLE(buffer, static_cast<std::uint32_t>(size));
  AppendLE(buffer, crc32c::Value(payload, size));
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(payload);
  buffer.insert(buffer.end(), bytes, bytes + size);

  const std::uint64_t record_offset = size_bytes_;
  Status status =
      FaultyWrite(fd_, buffer.data(), buffer.size(), "io.journal", &crashed_,
                  path_);
  if (status.ok()) {
    size_bytes_ += buffer.size();
    ++unsynced_records_;
    if (unsynced_records_ < options_.sync_every) {
      metrics::Count("journal.appends", 1);
      return Status::OK();
    }
    status = SyncLocked();
    if (status.ok()) {
      metrics::Count("journal.appends", 1);
      return Status::OK();
    }
    --unsynced_records_;
  }
  // Roll the file back to the previous record boundary so a returned
  // error always means "this record is not on disk" (a crashed writer
  // cannot compensate — the torn bytes stay for recovery to truncate).
  if (!crashed_) {
    if (::ftruncate(fd_, static_cast<off_t>(record_offset)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(record_offset), SEEK_SET) < 0 ||
        ::fsync(fd_) != 0) {
      // The disk state is now unknown; refuse further use like a crash.
      crashed_ = true;
    }
  }
  size_bytes_ = record_offset;
  return status;
}

Status JournalWriter::SyncLocked() {
  const SyscallGate gate = GateSyscall("io.journal", &crashed_, path_);
  if (!gate.status.ok()) return gate.status;
  if (::fsync(fd_) != 0) return ErrnoError("fsync", path_);
  if (gate.crash_after) {
    // The fsync completed, so everything appended so far is durable; the
    // "crash" only means no later operation can run.
    crashed_ = true;
    return Status::IOError(
        StrFormat("simulated crash after journal fsync: %s", path_.c_str()));
  }
  unsynced_records_ = 0;
  return Status::OK();
}

Status JournalWriter::Sync() {
  if (crashed_) return CrashedError("Sync", path_);
  if (fd_ < 0) {
    return Status::FailedPrecondition("JournalWriter: not open: " + path_);
  }
  return SyncLocked();
}

Status JournalWriter::TruncateTo(std::uint64_t size) {
  if (crashed_) return CrashedError("TruncateTo", path_);
  if (fd_ < 0) {
    return Status::FailedPrecondition("JournalWriter: not open: " + path_);
  }
  if (size > size_bytes_) {
    return Status::InvalidArgument(
        "JournalWriter: cannot truncate to a larger size");
  }
  const SyscallGate gate = GateSyscall("io.journal", &crashed_, path_);
  if (!gate.status.ok()) return gate.status;
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoError("ftruncate", path_);
  }
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return ErrnoError("lseek", path_);
  }
  if (::fsync(fd_) != 0) return ErrnoError("fsync", path_);
  size_bytes_ = size;
  unsynced_records_ = 0;
  metrics::Count("journal.truncates", 1);
  if (gate.crash_after) {
    // The truncate is already durable; only later operations are lost.
    crashed_ = true;
    return Status::IOError(StrFormat(
        "simulated crash after journal truncate: %s", path_.c_str()));
  }
  return Status::OK();
}

#else  // !NEUROPRINT_HAS_POSIX_IO

// Durability requires POSIX fd I/O (fsync/rename/ftruncate); other hosts
// get explicit Unimplemented instead of silent non-durability.
namespace {
Status NoPosix() {
  return Status::Unimplemented("durable I/O requires a POSIX host");
}
}  // namespace

Result<AtomicFileWriter> AtomicFileWriter::Create(const std::string&,
                                                  const char*) {
  return NoPosix();
}
AtomicFileWriter::AtomicFileWriter(AtomicFileWriter&&) noexcept = default;
AtomicFileWriter& AtomicFileWriter::operator=(AtomicFileWriter&&) noexcept =
    default;
AtomicFileWriter::~AtomicFileWriter() = default;
Status AtomicFileWriter::Append(const void*, std::size_t) { return NoPosix(); }
Status AtomicFileWriter::Commit() { return NoPosix(); }
void AtomicFileWriter::Abandon() {}
Status AtomicWriteFile(const std::string&, const void*, std::size_t,
                       const char*) {
  return NoPosix();
}
Result<JournalWriter> JournalWriter::Open(const std::string&, std::uint64_t,
                                          const JournalOptions&) {
  return NoPosix();
}
JournalWriter::JournalWriter(JournalWriter&&) noexcept = default;
JournalWriter& JournalWriter::operator=(JournalWriter&&) noexcept = default;
JournalWriter::~JournalWriter() = default;
Status JournalWriter::Append(const void*, std::size_t) { return NoPosix(); }
Status JournalWriter::Sync() { return NoPosix(); }
Status JournalWriter::SyncLocked() { return NoPosix(); }
Status JournalWriter::TruncateTo(std::uint64_t) { return NoPosix(); }

#endif  // NEUROPRINT_HAS_POSIX_IO

Result<JournalScan> ReplayJournal(
    const std::string& path,
    const std::function<Status(const std::uint8_t* payload,
                               std::size_t size)>& fn) {
  if (fault::Enabled()) {
    const fault::Injection injection = fault::Hit("io.journal");
    // Only `error` rules fire on the read side; torn/crash/corrupt target
    // the writer's syscalls, and ignoring them here lets recovery run
    // under a still-active crash schedule.
    if (injection.action == fault::Action::kError) return injection.status;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return JournalScan{};
    return Status::IOError("cannot open journal: " + path);
  }
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  if (end < 0) return Status::IOError("cannot size journal: " + path);
  const std::uint64_t file_size = static_cast<std::uint64_t>(end);
  in.seekg(0);

  JournalScan scan;
  std::vector<std::uint8_t> payload;
  std::uint64_t pos = 0;
  while (file_size - pos >= kJournalRecordHeaderBytes) {
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    if (!ReadLE(in, length) || !ReadLE(in, crc)) break;
    // A zero, implausible, or beyond-EOF length is the torn tail: stop
    // scanning (never allocate against a scrambled length field).
    if (length == 0 || length > kJournalMaxRecordBytes ||
        file_size - pos - kJournalRecordHeaderBytes < length) {
      break;
    }
    payload.resize(length);
    if (!in.read(reinterpret_cast<char*>(payload.data()), length)) break;
    if (crc32c::Value(payload.data(), length) != crc) break;
    NP_RETURN_IF_ERROR(fn(payload.data(), length));
    pos += kJournalRecordHeaderBytes + length;
    ++scan.records;
  }
  scan.valid_bytes = pos;
  scan.dropped_bytes = file_size - pos;
  if (scan.dropped_bytes > 0) {
    metrics::Count("journal.tail_bytes_dropped", scan.dropped_bytes);
  }
  return scan;
}

}  // namespace neuroprint
