// Endian-safe scalar (de)serialization.
//
// Binary file formats in neuroprint (NIfTI-1, the group-matrix container)
// are little-endian on disk. These helpers encode and decode scalars one
// byte at a time, so they are correct on any host byte order and never
// perform misaligned or type-punned loads — the I/O paths stay clean under
// UBSan and on strict-alignment targets. Floating-point values round-trip
// through their same-width unsigned integer via std::bit_cast.
//
// On little-endian hosts GCC/Clang collapse the byte loops into single
// moves, so there is no penalty over memcpy.

#ifndef NEUROPRINT_UTIL_ENDIAN_H_
#define NEUROPRINT_UTIL_ENDIAN_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <istream>
#include <type_traits>
#include <vector>

namespace neuroprint {
namespace internal {

template <std::size_t N>
struct UintBytes;
template <>
struct UintBytes<1> {
  using type = std::uint8_t;
};
template <>
struct UintBytes<2> {
  using type = std::uint16_t;
};
template <>
struct UintBytes<4> {
  using type = std::uint32_t;
};
template <>
struct UintBytes<8> {
  using type = std::uint64_t;
};

template <typename T>
concept EncodableScalar =
    (std::is_integral_v<T> || std::is_floating_point_v<T>) && sizeof(T) <= 8;

}  // namespace internal

/// Encodes `value` as sizeof(T) little-endian bytes at `dst`.
template <internal::EncodableScalar T>
inline void WriteLE(T value, std::uint8_t* dst) {
  using U = typename internal::UintBytes<sizeof(T)>::type;
  const U bits = std::bit_cast<U>(value);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    dst[i] = static_cast<std::uint8_t>(bits >> (8 * i));
  }
}

/// Decodes sizeof(T) little-endian bytes at `src` into a T.
template <internal::EncodableScalar T>
inline T ReadLE(const std::uint8_t* src) {
  using U = typename internal::UintBytes<sizeof(T)>::type;
  U bits = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bits = static_cast<U>(bits | static_cast<U>(static_cast<U>(src[i])
                                                << (8 * i)));
  }
  return std::bit_cast<T>(bits);
}

/// Decodes sizeof(T) big-endian bytes at `src` into a T (byte-swapped
/// NIfTI files).
template <internal::EncodableScalar T>
inline T ReadBE(const std::uint8_t* src) {
  using U = typename internal::UintBytes<sizeof(T)>::type;
  U bits = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    bits = static_cast<U>(bits << 8) | static_cast<U>(src[i]);
  }
  return std::bit_cast<T>(bits);
}

/// Appends the little-endian encoding of `value` to a byte buffer.
template <internal::EncodableScalar T, typename Byte>
inline void AppendLE(std::vector<Byte>& out, T value) {
  static_assert(sizeof(Byte) == 1);
  std::uint8_t bytes[sizeof(T)];
  WriteLE(value, bytes);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<Byte>(bytes[i]));
  }
}

/// Reads one little-endian scalar from a binary stream. Returns false on a
/// short read (stream failbit is set, `value` untouched).
template <internal::EncodableScalar T>
inline bool ReadLE(std::istream& in, T& value) {
  std::uint8_t bytes[sizeof(T)];
  // Casting uint8_t* to char* for istream::read is well-defined (both are
  // byte types); the decode itself never type-puns.
  if (!in.read(reinterpret_cast<char*>(bytes), sizeof(T))) return false;
  value = ReadLE<T>(bytes);
  return true;
}

}  // namespace neuroprint

#endif  // NEUROPRINT_UTIL_ENDIAN_H_
