#include "util/spill.h"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "util/fault.h"
#include "util/string_util.h"

namespace neuroprint {
namespace {

std::size_t LatchMemoryBudget() {
  const char* env = std::getenv("NEUROPRINT_MEMORY_BUDGET_MB");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long mb = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;
  return static_cast<std::size_t>(mb) << 20;
}

std::string LatchSpillDirectory() {
  const char* env = std::getenv("NEUROPRINT_SPILL_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

std::uint64_t ProcessId() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(getpid());
#else
  return 0;
#endif
}

// Applies a fired `io.spill` rule to a column payload in place: kError
// propagates, kCorrupt scrambles the bytes, kNaN poisons every value.
Status ApplyColumnInjection(const fault::Injection& injection, double* values,
                            std::size_t count) {
  switch (injection.action) {
    case fault::Action::kNone:
      return Status::OK();
    case fault::Action::kError:
      return injection.status;
    case fault::Action::kCorrupt:
      fault::ScrambleBytes(injection.seed, values, count * sizeof(double));
      return Status::OK();
    case fault::Action::kNaN:
      for (std::size_t i = 0; i < count; ++i) {
        values[i] = std::numeric_limits<double>::quiet_NaN();
      }
      return Status::OK();
    case fault::Action::kTorn:
    case fault::Action::kCrash:
      // Crash simulation is for the durable writers (util/journal.h);
      // spill files are process-local scratch that die with the process.
      return Status::Internal(
          std::string("fault point 'io.spill' does not support action '") +
          fault::ActionName(injection.action) + "'");
  }
  return Status::OK();
}

}  // namespace

std::size_t MemoryBudgetBytes() {
  static const std::size_t budget = LatchMemoryBudget();
  return budget;
}

const std::string& SpillDirectory() {
  static const std::string dir = LatchSpillDirectory();
  return dir;
}

Result<SpillFile> SpillFile::Create(const std::string& dir) {
  std::filesystem::path base;
  const char* source = "the `dir` argument";
  if (!dir.empty()) {
    base = dir;
  } else if (!SpillDirectory().empty()) {
    base = SpillDirectory();
    source = "NEUROPRINT_SPILL_DIR";
  } else {
    std::error_code ec;
    base = std::filesystem::temp_directory_path(ec);
    if (ec) return Status::IOError("SpillFile: no temp directory available");
    source = "the system temp directory";
  }
  // Validate the directory before handing back a writer: a missing or
  // non-directory spill target should fail here, naming the directory and
  // where it came from, not deep inside a batch at first append.
  std::error_code ec;
  if (!std::filesystem::is_directory(base, ec) || ec) {
    return Status::IOError(StrFormat(
        "SpillFile: spill directory '%s' (from %s) does not exist or is not "
        "a directory",
        base.string().c_str(), source));
  }
  // Unique within the machine without wall-clock or randomness: process
  // id plus a process-wide counter.
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t serial =
      counter.fetch_add(1, std::memory_order_relaxed);
  SpillFile file;
  file.path_ = (base / StrFormat("np_spill_%llu_%llu.bin",
                                 static_cast<unsigned long long>(ProcessId()),
                                 static_cast<unsigned long long>(serial)))
                   .string();
  file.writer_.open(file.path_, std::ios::binary | std::ios::trunc);
  if (!file.writer_) {
    return Status::IOError("SpillFile: cannot create " + file.path_);
  }
  return file;
}

SpillFile::SpillFile(SpillFile&& other) noexcept
    : path_(std::move(other.path_)),
      writer_(std::move(other.writer_)),
      bytes_written_(other.bytes_written_),
      columns_(std::move(other.columns_)) {
  other.path_.clear();
  other.columns_.clear();
}

SpillFile& SpillFile::operator=(SpillFile&& other) noexcept {
  if (this == &other) return *this;
  if (!path_.empty()) {
    writer_.close();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  path_ = std::move(other.path_);
  writer_ = std::move(other.writer_);
  bytes_written_ = other.bytes_written_;
  columns_ = std::move(other.columns_);
  other.path_.clear();
  other.columns_.clear();
  return *this;
}

SpillFile::~SpillFile() {
  if (path_.empty()) return;
  writer_.close();
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

Status SpillFile::AppendColumn(const double* values, std::size_t count) {
  if (count == 0) {
    return Status::InvalidArgument("SpillFile: cannot append an empty column");
  }
  const std::size_t index = columns_.size();
  std::vector<double> staged;
  const double* payload = values;
  if (fault::Enabled()) {
    const fault::Injection injection = fault::Hit("io.spill", index);
    if (injection.action == fault::Action::kError) return injection.status;
    if (injection.action != fault::Action::kNone) {
      staged.assign(values, values + count);
      NP_RETURN_IF_ERROR(
          ApplyColumnInjection(injection, staged.data(), count));
      payload = staged.data();
    }
  }
  writer_.write(reinterpret_cast<const char*>(payload),
                static_cast<std::streamsize>(count * sizeof(double)));
  writer_.flush();
  if (!writer_) {
    return Status::IOError("SpillFile: append failed: " + path_);
  }
  ColumnExtent extent;
  extent.offset = bytes_written_;
  extent.count = count;
  columns_.push_back(extent);
  bytes_written_ += static_cast<std::uint64_t>(count * sizeof(double));
  return Status::OK();
}

Status SpillFile::ReadColumn(std::size_t index,
                             std::vector<double>* out) const {
  if (index >= columns_.size()) {
    return Status::InvalidArgument(StrFormat(
        "SpillFile: column %zu out of range (%zu spilled)", index,
        columns_.size()));
  }
  const ColumnExtent& extent = columns_[index];
  // A fresh handle per read: if the file was deleted mid-batch the open
  // fails here with IOError instead of serving stale cached state.
  std::ifstream reader(path_, std::ios::binary);
  if (!reader) {
    return Status::IOError("SpillFile: cannot reopen " + path_ +
                           " (deleted mid-batch?)");
  }
  reader.seekg(static_cast<std::streamoff>(extent.offset));
  out->resize(static_cast<std::size_t>(extent.count));
  reader.read(reinterpret_cast<char*>(out->data()),
              static_cast<std::streamsize>(extent.count * sizeof(double)));
  if (!reader) {
    return Status::CorruptData(StrFormat(
        "SpillFile: column %zu truncated (wanted %llu doubles at offset "
        "%llu): %s",
        index, static_cast<unsigned long long>(extent.count),
        static_cast<unsigned long long>(extent.offset), path_.c_str()));
  }
  if (fault::Enabled()) {
    const fault::Injection injection = fault::Hit("io.spill", index);
    NP_RETURN_IF_ERROR(
        ApplyColumnInjection(injection, out->data(), out->size()));
  }
  return Status::OK();
}

}  // namespace neuroprint
