#include "util/status.h"

#include "util/check.h"

namespace neuroprint {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruptData:
      return "CorruptData";
    case StatusCode::kNotConverged:
      return "NotConverged";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromString(std::string_view name) {
  static constexpr StatusCode kAllCodes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kOutOfRange,   StatusCode::kFailedPrecondition,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kIOError,      StatusCode::kCorruptData,
      StatusCode::kNotConverged, StatusCode::kUnimplemented,
      StatusCode::kInternal,
  };
  for (StatusCode code : kAllCodes) {
    if (name == StatusCodeToString(code)) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal {

void DieBadResultAccess(const Status& status) {
  CheckFailed("util/status.h", 0, "Result::ok()",
              "accessed value of failed Result: " + status.ToString());
}

}  // namespace internal
}  // namespace neuroprint
