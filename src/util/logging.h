// Minimal leveled logging to stderr.
//
// NP_LOG(INFO) << "fitted " << n << " subjects";
// Severity below the global threshold is skipped cheaply. Not thread-safe
// by design (the library itself is single-threaded per pipeline).

#ifndef NEUROPRINT_UTIL_LOGGING_H_
#define NEUROPRINT_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace neuroprint {

enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the mutable global log threshold; messages below it are dropped.
LogSeverity& MinLogSeverity();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace neuroprint

#define NP_LOG(severity)                                        \
  ::neuroprint::internal::LogMessage(                           \
      ::neuroprint::LogSeverity::k##severity, __FILE__, __LINE__)

#endif  // NEUROPRINT_UTIL_LOGGING_H_
