// Status and Result<T>: exception-free error propagation for neuroprint.
//
// Library code never throws. Fallible operations return Status (no payload)
// or Result<T> (payload or error), in the style of arrow::Status /
// rocksdb::Status. Programmer errors (violated preconditions) use the
// NP_CHECK macros from check.h instead.

#ifndef NEUROPRINT_UTIL_STATUS_H_
#define NEUROPRINT_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace neuroprint {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruptData,
  kNotConverged,
  kUnimplemented,
  kInternal,
};

/// Human-readable name of a StatusCode ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString: "CorruptData" -> kCorruptData.
/// Returns nullopt for names that match no code (including "Unknown").
std::optional<StatusCode> StatusCodeFromString(std::string_view name);

/// Outcome of a fallible operation: OK, or a code plus message.
///
/// A Status is cheap to copy in the OK case (no allocation). Use the
/// factory functions (`Status::OK()`, `Status::InvalidArgument(...)`) to
/// construct one, and `ok()` / `code()` / `message()` to inspect it.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status CorruptData(std::string msg) {
    return Status(StatusCode::kCorruptData, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value of type T, or the Status explaining why it could not be produced.
///
/// Usage:
///   Result<Matrix> r = LoadMatrix(path);
///   if (!r.ok()) return r.status();
///   Matrix m = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access to the value. Requires ok(); aborts otherwise.
  const T& value() const& { return CheckedValue(); }
  T& value() & { return CheckedMutableValue(); }
  T&& value() && { return std::move(CheckedMutableValue()); }

  const T& operator*() const& { return CheckedValue(); }
  T& operator*() & { return CheckedMutableValue(); }
  const T* operator->() const { return &CheckedValue(); }
  T* operator->() { return &CheckedMutableValue(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  const T& CheckedValue() const;
  T& CheckedMutableValue();

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void DieBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
const T& Result<T>::CheckedValue() const {
  if (!ok()) internal::DieBadResultAccess(status_);
  return *value_;
}

template <typename T>
T& Result<T>::CheckedMutableValue() {
  if (!ok()) internal::DieBadResultAccess(status_);
  return *value_;
}

/// Propagates a non-OK Status from an expression to the caller.
#define NP_RETURN_IF_ERROR(expr)                       \
  do {                                                 \
    ::neuroprint::Status _np_status = (expr);          \
    if (!_np_status.ok()) return _np_status;           \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// move-assigns the value into `lhs` (which must already be declared).
#define NP_ASSIGN_OR_RETURN(lhs, expr)                 \
  do {                                                 \
    auto _np_result = (expr);                          \
    if (!_np_result.ok()) return _np_result.status();  \
    lhs = std::move(_np_result).value();               \
  } while (0)

}  // namespace neuroprint

#endif  // NEUROPRINT_UTIL_STATUS_H_
