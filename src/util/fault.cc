#include "util/fault.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include "util/metrics.h"

namespace neuroprint::fault {
namespace {

// Active schedule plus per-(point, key) arrival counters, behind one
// mutex. Every access happens after the Enabled() fast-path check, so
// the lock is never taken when injection is off.
struct FaultState {
  std::mutex mu;
  Schedule schedule;
  std::map<std::pair<std::string, std::uint64_t>, std::uint64_t> hits;
};

FaultState& State() {
  static FaultState* state = new FaultState();
  return *state;
}

// Latches NEUROPRINT_FAULT into the process schedule on first use,
// mirroring trace::EnabledFlag(). A malformed env schedule is dropped
// (injection stays off) — library code must not abort on env input, and
// tests cover ParseSchedule directly.
bool LatchEnvSchedule() {
  const char* value = std::getenv("NEUROPRINT_FAULT");
  if (value == nullptr || value[0] == '\0') return false;
  Result<Schedule> parsed = ParseSchedule(value);
  if (!parsed.ok() || parsed->empty()) return false;
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.schedule = std::move(parsed).value();
  return true;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{LatchEnvSchedule()};
  return flag;
}

// The flag's static initializer writes the env schedule into State();
// force it before installing a schedule so the latch can't clobber one
// installed first.
void EnsureEnvLatched() { (void)EnabledFlag(); }

// SplitMix64 finalizer — deterministic seed mixing for injection
// payloads, matching the sim's ScanSeed construction.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashString(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Result<Rule> ParseRule(const std::string& entry) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) {
    return Status::InvalidArgument("fault rule missing '=': '" + entry + "'");
  }
  Rule rule;
  std::string lhs = entry.substr(0, eq);
  const std::string rhs = entry.substr(eq + 1);

  const std::size_t at = lhs.find('@');
  if (at != std::string::npos) {
    const std::string hit_text = lhs.substr(at + 1);
    lhs.resize(at);
    char* end = nullptr;
    rule.hit = std::strtoull(hit_text.c_str(), &end, 10);
    if (hit_text.empty() || *end != '\0' || rule.hit == 0) {
      return Status::InvalidArgument("fault rule has bad @hit count: '" +
                                     entry + "'");
    }
  }
  const std::size_t hash = lhs.find('#');
  if (hash != std::string::npos) {
    const std::string key_text = lhs.substr(hash + 1);
    lhs.resize(hash);
    char* end = nullptr;
    rule.key = std::strtoull(key_text.c_str(), &end, 10);
    if (key_text.empty() || *end != '\0') {
      return Status::InvalidArgument("fault rule has bad #key: '" + entry +
                                     "'");
    }
    rule.has_key = true;
  }
  if (lhs.empty()) {
    return Status::InvalidArgument("fault rule has empty point name: '" +
                                   entry + "'");
  }
  rule.point = lhs;

  // rhs: 'error'[':'code[':'message]] | 'nan' | 'corrupt'
  //    | 'torn' ':' bytes | 'crash'
  std::string action = rhs;
  std::string rest;
  const std::size_t colon = rhs.find(':');
  if (colon != std::string::npos) {
    action = rhs.substr(0, colon);
    rest = rhs.substr(colon + 1);
  }
  if (action == "nan") {
    rule.action = Action::kNaN;
  } else if (action == "corrupt") {
    rule.action = Action::kCorrupt;
  } else if (action == "error") {
    rule.action = Action::kError;
  } else if (action == "crash") {
    rule.action = Action::kCrash;
  } else if (action == "torn") {
    rule.action = Action::kTorn;
    char* end = nullptr;
    rule.torn_bytes = std::strtoull(rest.c_str(), &end, 10);
    // torn requires an explicit byte count (torn:0 — the write vanishes
    // entirely — is legal and distinct from a missing count).
    if (colon == std::string::npos || rest.empty() || *end != '\0') {
      return Status::InvalidArgument(
          "fault action 'torn' needs a byte count, e.g. torn:12: '" + entry +
          "'");
    }
    return rule;
  } else {
    return Status::InvalidArgument("fault rule has unknown action '" + action +
                                   "': '" + entry + "'");
  }
  if (rule.action != Action::kError) {
    if (!rest.empty()) {
      return Status::InvalidArgument("fault action '" + action +
                                     "' takes no arguments: '" + entry + "'");
    }
    return rule;
  }
  if (!rest.empty()) {
    std::string code_name = rest;
    const std::size_t msg_colon = rest.find(':');
    if (msg_colon != std::string::npos) {
      code_name = rest.substr(0, msg_colon);
      rule.message = rest.substr(msg_colon + 1);
    }
    std::optional<StatusCode> code = StatusCodeFromString(code_name);
    if (!code.has_value() || *code == StatusCode::kOk) {
      return Status::InvalidArgument("fault rule has bad status code '" +
                                     code_name + "': '" + entry + "'");
    }
    rule.code = *code;
  }
  return rule;
}

// Finds the first rule matching (point, key) given this arrival's
// 1-based count. Rules are checked in schedule order, keyed rules only
// against keyed arrivals with the same key.
const Rule* MatchLocked(const FaultState& state, const char* point,
                        bool has_key, std::uint64_t key, std::uint64_t count) {
  for (const Rule& rule : state.schedule.rules) {
    if (rule.point != point) continue;
    if (rule.has_key && (!has_key || rule.key != key)) continue;
    if (rule.hit != 0 && rule.hit != count) continue;
    return &rule;
  }
  return nullptr;
}

Injection HitImpl(const char* point, bool has_key, std::uint64_t key) {
  FaultState& state = State();
  const Rule* rule = nullptr;
  std::uint64_t count = 0;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    count = ++state.hits[{point, has_key ? key : ~std::uint64_t{0}}];
    rule = MatchLocked(state, point, has_key, key, count);
    if (rule == nullptr) return Injection{};
  }
  Injection injection;
  injection.action = rule->action;
  injection.seed = Mix64(HashString(point) ^ Mix64(key) ^ count);
  injection.torn_bytes = rule->torn_bytes;
  if (rule->action == Action::kError) {
    std::string message = rule->message.empty()
                              ? "injected fault at " + std::string(point)
                              : rule->message;
    injection.status = Status(rule->code, std::move(message));
  }
  metrics::Count("fault.injected", 1);
  return injection;
}

}  // namespace

const char* ActionName(Action action) {
  switch (action) {
    case Action::kNone:
      return "none";
    case Action::kError:
      return "error";
    case Action::kNaN:
      return "nan";
    case Action::kCorrupt:
      return "corrupt";
    case Action::kTorn:
      return "torn";
    case Action::kCrash:
      return "crash";
  }
  return "unknown";
}

Result<Schedule> ParseSchedule(const std::string& text) {
  Schedule schedule;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    // Trim surrounding whitespace so multi-line env values read cleanly.
    std::size_t begin = pos;
    std::size_t end = semi;
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin]))) {
      ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
      --end;
    }
    if (end > begin) {
      Rule rule;
      NP_ASSIGN_OR_RETURN(rule, ParseRule(text.substr(begin, end - begin)));
      schedule.rules.push_back(std::move(rule));
    }
    pos = semi + 1;
  }
  return schedule;
}

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void InstallSchedule(Schedule schedule) {
  EnsureEnvLatched();
  FaultState& state = State();
  const bool enabled = !schedule.empty();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.schedule = std::move(schedule);
    state.hits.clear();
  }
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

void ClearSchedule() { InstallSchedule(Schedule{}); }

void ResetHitCounters() {
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.hits.clear();
}

std::uint64_t ArrivalCount(const char* point) {
  FaultState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::uint64_t total = 0;
  for (const auto& [site, count] : state.hits) {
    if (site.first == point) total += count;
  }
  return total;
}

ScopedSchedule::ScopedSchedule(const std::string& schedule_text) {
  if (schedule_text.empty()) return;
  EnsureEnvLatched();
  Result<Schedule> parsed = ParseSchedule(schedule_text);
  if (!parsed.ok()) {
    status_ = parsed.status();
    return;
  }
  FaultState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    previous_ = std::move(state.schedule);
    state.schedule = std::move(parsed).value();
    state.hits.clear();
  }
  previous_enabled_ = Enabled();
  EnabledFlag().store(true, std::memory_order_relaxed);
  engaged_ = true;
}

ScopedSchedule::~ScopedSchedule() {
  if (!engaged_) return;
  FaultState& state = State();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.schedule = std::move(previous_);
    state.hits.clear();
  }
  EnabledFlag().store(previous_enabled_, std::memory_order_relaxed);
}

Injection Hit(const char* point) { return HitImpl(point, false, 0); }

Injection Hit(const char* point, std::uint64_t key) {
  return HitImpl(point, true, key);
}

Status InjectedError(const char* point) {
  if (!Enabled()) return Status::OK();
  Injection injection = Hit(point);
  if (injection.action == Action::kError) return injection.status;
  if (injection.action != Action::kNone) {
    return Status::Internal(std::string("fault point '") + point +
                            "' does not support action '" +
                            ActionName(injection.action) + "'");
  }
  return Status::OK();
}

Status InjectedError(const char* point, std::uint64_t key) {
  if (!Enabled()) return Status::OK();
  Injection injection = Hit(point, key);
  if (injection.action == Action::kError) return injection.status;
  if (injection.action != Action::kNone) {
    return Status::Internal(std::string("fault point '") + point +
                            "' does not support action '" +
                            ActionName(injection.action) + "'");
  }
  return Status::OK();
}

void ScrambleBytes(std::uint64_t seed, void* data, std::size_t size) {
  // xorshift64* byte stream; seed 0 would be a fixed point, so mix first.
  std::uint64_t s = Mix64(seed) | 1ULL;
  unsigned char* bytes = static_cast<unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    bytes[i] ^= static_cast<unsigned char>((s * 0x2545f4914f6cdd1dULL) >> 56);
  }
}

}  // namespace neuroprint::fault
