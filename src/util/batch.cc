#include "util/batch.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"

namespace neuroprint {
namespace {

std::string ItemLabel(const BatchItemReport& item) {
  std::string label =
      item.id.empty() ? StrFormat("#%zu", item.index) : item.id;
  if (!item.stage.empty()) label += " [" + item.stage + "]";
  return label;
}

}  // namespace

const char* FailureModeName(FailureMode mode) {
  switch (mode) {
    case FailureMode::kFailFast:
      return "fail_fast";
    case FailureMode::kSkipAndReport:
      return "skip_and_report";
    case FailureMode::kQuorum:
      return "quorum";
  }
  return "unknown";
}

std::string BatchReport::ToString() const {
  std::string out = "batch: " + std::to_string(num_succeeded()) + "/" +
                    std::to_string(attempted) + " succeeded";
  if (!degraded.empty()) {
    out += ", " + std::to_string(degraded.size()) + " degraded";
  }
  for (const BatchItemReport& item : failed) {
    out += "\n  failed " + ItemLabel(item) + ": " + item.status.ToString();
  }
  for (const BatchItemReport& item : degraded) {
    out += "\n  degraded " + ItemLabel(item) + ":";
    for (const std::string& d : item.degradations) out += " " + d;
  }
  return out;
}

Status ResolveBatch(const FailurePolicy& policy, const BatchReport& report) {
  if (report.failed.empty()) return Status::OK();
  if (policy.mode == FailureMode::kFailFast) {
    const auto lowest = std::min_element(
        report.failed.begin(), report.failed.end(),
        [](const BatchItemReport& a, const BatchItemReport& b) {
          return a.index < b.index;
        });
    return lowest->status;
  }
  const std::size_t survivors = report.num_succeeded();
  if (survivors == 0) {
    return Status::FailedPrecondition("all " +
                                      std::to_string(report.attempted) +
                                      " batch items failed\n" +
                                      report.ToString());
  }
  if (policy.mode == FailureMode::kQuorum) {
    const double fraction = report.attempted == 0
                                ? 1.0
                                : static_cast<double>(survivors) /
                                      static_cast<double>(report.attempted);
    if (fraction < policy.min_fraction) {
      char frac[64];
      std::snprintf(frac, sizeof(frac), "%.3f < required %.3f", fraction,
                    policy.min_fraction);
      return Status::FailedPrecondition("batch quorum violated: " +
                                        std::string(frac) + "\n" +
                                        report.ToString());
    }
  }
  return Status::OK();
}

}  // namespace neuroprint
