// Deterministic fault injection for robustness testing.
//
// Library code marks failure-prone places with named injection points
// (NP_FAULT_POINT("nifti.read"), fault::Hit("cohort.simulate_scan", s));
// a schedule decides which points fire and what they do: return an
// injected Status, corrupt a buffer, or poison values with NaNs. With no
// schedule active — the default — a point is one relaxed atomic load and
// a branch, cheap enough to leave in every path permanently (the
// bench-smoke CI job asserts this stays within noise of the baselines).
//
// Schedule resolution mirrors ParallelContext: a per-call FaultConfig on
// the public configs (PipelineConfig, CohortConfig, AttackOptions)
// replaces the process schedule for that call via ScopedSchedule; else
// the NEUROPRINT_FAULT environment variable (latched on first use); else
// off.
//
// Schedule grammar (entries separated by ';'):
//
//   entry  := point ['#' key] ['@' hit] '=' action
//   action := 'error' [':' code [':' message]] | 'nan' | 'corrupt'
//           | 'torn' ':' bytes | 'crash'
//
//   point    dotted injection-point name, e.g. cohort.simulate_scan
//   #key     only fire for this instance key (subject index, frame, ...)
//   @hit     only fire on the Nth arrival (1-based) at that (point, key)
//   code     a StatusCode name (default Internal), e.g. CorruptData
//   bytes    how many bytes of the write survive the simulated crash
//
// `torn:N` and `crash` simulate process death at an I/O site and are
// honored by the durable writers (util/journal.h, points `io.journal` /
// `io.snapshot`): `torn:N` performs only the first N bytes of the write
// (a torn write — N = 0 loses it entirely) and then "kills" the writer,
// while `crash` lets the syscall complete and kills the writer
// immediately after (crash-after-syscall — e.g. between a rename and the
// directory fsync). A killed writer object refuses every subsequent
// operation, so compensating cleanup cannot run — exactly like a real
// crash — and the test reopens the files to exercise recovery. At
// Status-only points (NP_FAULT_POINT) both map to an Internal
// "unsupported action" error, like nan/corrupt.
//
// Example:
//   NEUROPRINT_FAULT='cohort.simulate_scan#2=error:CorruptData:truncated
//   gzip stream;cohort.simulate_scan#7=nan'
//
// Determinism contract: keyed matches depend only on the key, so they are
// deterministic under any thread count — use them at points reached from
// parallel regions. @hit counters are kept per (point, key); an unkeyed
// @hit match at a point reached concurrently depends on arrival order and
// is only deterministic at serial points.
//
// Thread safety: points may fire on any thread; the registry is
// mutex-guarded (fires are rare and off the disabled fast path).

#ifndef NEUROPRINT_UTIL_FAULT_H_
#define NEUROPRINT_UTIL_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace neuroprint::fault {

/// Per-call fault-injection knob, embedded in the public configs. An
/// empty schedule leaves the process schedule (env or installed) in
/// force; a non-empty one replaces it for the duration of the call.
struct FaultConfig {
  std::string schedule;
};

/// What a fired injection point should do.
enum class Action {
  kNone = 0,  ///< No rule matched; proceed normally.
  kError,     ///< Return the injected Status.
  kNaN,       ///< Poison the produced values with quiet NaNs.
  kCorrupt,   ///< Scramble the produced bytes (deterministic in `seed`).
  kTorn,      ///< Write only `torn_bytes` bytes, then crash the writer.
  kCrash,     ///< Perform the syscall, then crash the writer.
};

const char* ActionName(Action action);

/// One parsed schedule entry.
struct Rule {
  std::string point;
  bool has_key = false;
  std::uint64_t key = 0;
  std::uint64_t hit = 0;  ///< 0 = every arrival; N = only the Nth (1-based).
  Action action = Action::kError;
  StatusCode code = StatusCode::kInternal;
  std::string message;
  std::uint64_t torn_bytes = 0;  ///< kTorn: bytes that survive the crash.
};

struct Schedule {
  std::vector<Rule> rules;
  bool empty() const { return rules.empty(); }
};

/// Parses the schedule grammar above. Returns InvalidArgument with the
/// offending entry on malformed input.
Result<Schedule> ParseSchedule(const std::string& text);

/// True when a non-empty schedule is active. One relaxed atomic load.
bool Enabled();

/// Replaces the process schedule (an empty schedule disables injection).
void InstallSchedule(Schedule schedule);

/// Removes the process schedule and disables injection (the environment
/// latch is not re-read).
void ClearSchedule();

/// Drops every per-(point, key) arrival counter. Schedules with @hit
/// rules call this between runs to make hit counts reproducible.
void ResetHitCounters();

/// Total arrivals recorded at `point` since the last counter reset,
/// summed over every key. Lets sweep-style crash harnesses detect when an
/// `@hit` index has walked past the last I/O site of a scenario (nothing
/// fired, so the sweep is complete). Arrivals are only counted while a
/// schedule is installed.
std::uint64_t ArrivalCount(const char* point);

/// RAII per-call schedule, used by library entry points honoring
/// FaultConfig and by tests. An empty `schedule_text` is a no-op; a
/// non-empty one is parsed and swapped in (hit counters reset), and the
/// previous schedule is restored on destruction. A parse failure leaves
/// the process schedule untouched and is surfaced via status().
class ScopedSchedule {
 public:
  explicit ScopedSchedule(const std::string& schedule_text);
  ~ScopedSchedule();
  ScopedSchedule(const ScopedSchedule&) = delete;
  ScopedSchedule& operator=(const ScopedSchedule&) = delete;

  const Status& status() const { return status_; }

 private:
  bool engaged_ = false;
  Schedule previous_;
  bool previous_enabled_ = false;
  Status status_;
};

/// The outcome of arriving at an injection point.
struct Injection {
  Action action = Action::kNone;
  /// The injected error when action == kError (OK otherwise).
  Status status;
  /// Deterministic seed for kCorrupt/kNaN payload mangling, derived from
  /// (point, key, arrival index).
  std::uint64_t seed = 0;
  /// kTorn: how many leading bytes of the write survive.
  std::uint64_t torn_bytes = 0;
};

/// Arrival at an unkeyed injection point. Increments the point's arrival
/// counter and returns the matched rule's action (kNone when nothing
/// matches). Call only when Enabled() — the macros below do the gating.
Injection Hit(const char* point);

/// Arrival at a keyed injection point; only rules without a key or with
/// this exact key can match.
Injection Hit(const char* point, std::uint64_t key);

/// Convenience for call sites that can only propagate a Status: fires the
/// point and returns the injected error, mapping kNaN/kCorrupt rules to
/// an Internal error naming the unsupported action. Returns OK (without
/// counting the arrival) when injection is disabled.
Status InjectedError(const char* point);
Status InjectedError(const char* point, std::uint64_t key);

/// Deterministically scrambles `size` bytes in place (xorshift stream
/// seeded by `seed`) — the standard payload for kCorrupt rules.
void ScrambleBytes(std::uint64_t seed, void* data, std::size_t size);

}  // namespace neuroprint::fault

/// Status-returning injection point: in a function returning Status or
/// Result<T>, returns the injected error when a matching `error` rule
/// fires. One relaxed atomic load when injection is disabled.
#define NP_FAULT_POINT(point)                                    \
  do {                                                           \
    if (::neuroprint::fault::Enabled()) {                        \
      ::neuroprint::Status _np_fault_status =                    \
          ::neuroprint::fault::InjectedError(point);             \
      if (!_np_fault_status.ok()) return _np_fault_status;       \
    }                                                            \
  } while (0)

/// Keyed variant: `key` (converted to std::uint64_t) selects the
/// instance — subject index, frame number — so schedules stay
/// deterministic when the point is reached from parallel regions.
#define NP_FAULT_POINT_KEYED(point, key)                         \
  do {                                                           \
    if (::neuroprint::fault::Enabled()) {                        \
      ::neuroprint::Status _np_fault_status =                    \
          ::neuroprint::fault::InjectedError(                    \
              point, static_cast<std::uint64_t>(key));           \
      if (!_np_fault_status.ok()) return _np_fault_status;       \
    }                                                            \
  } while (0)

#endif  // NEUROPRINT_UTIL_FAULT_H_
