// Partial-failure semantics for multi-item batches (cohort synthesis,
// multi-run preprocessing, group-matrix assembly, attack fit/identify).
//
// A batch stage runs every item, records per-item failures in a
// BatchReport, and then resolves the batch against a FailurePolicy:
//
//   kFailFast       any failure fails the batch with the lowest-index
//                   item's Status (the pre-existing ParallelForStatus
//                   contract — deterministic at any thread count).
//   kSkipAndReport  failed items are dropped; survivors proceed. The
//                   batch only fails when nothing survives.
//   kQuorum         like kSkipAndReport, but the batch fails with an
//                   aggregate error when fewer than
//                   min_fraction * attempted items survive.
//
// Degradations (an item that proceeded through a fallback — identity
// transform for an unregistrable frame, zeroed flat region) are not
// failures; they are recorded separately and never consume quorum.

#ifndef NEUROPRINT_UTIL_BATCH_H_
#define NEUROPRINT_UTIL_BATCH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace neuroprint {

enum class FailureMode {
  kFailFast = 0,
  kSkipAndReport,
  kQuorum,
};

const char* FailureModeName(FailureMode mode);

/// How a batch responds to per-item failures. Default-constructed policy
/// is fail-fast, preserving the pre-PR-5 behavior of every batch API.
struct FailurePolicy {
  FailureMode mode = FailureMode::kFailFast;
  /// Minimum surviving fraction for kQuorum (ignored otherwise).
  double min_fraction = 0.5;

  static FailurePolicy FailFast() { return FailurePolicy{}; }
  static FailurePolicy SkipAndReport() {
    return FailurePolicy{FailureMode::kSkipAndReport, 0.0};
  }
  static FailurePolicy Quorum(double min_fraction) {
    return FailurePolicy{FailureMode::kQuorum, min_fraction};
  }
};

/// One failed or degraded batch item.
struct BatchItemReport {
  std::size_t index = 0;   ///< Position in the attempted batch.
  std::string id;          ///< Subject/run id when known ("S0003").
  std::string stage;       ///< Stage that failed ("simulate", "motion", ...).
  Status status;           ///< The per-item error (OK for degradations).
  /// Fallbacks the item went through while still succeeding
  /// ("identity_transform_frame_12").
  std::vector<std::string> degradations;
};

/// Outcome summary of one batch stage. Failed items appear in `failed`
/// (ascending index); items that succeeded via a fallback appear in
/// `degraded`.
struct BatchReport {
  std::size_t attempted = 0;
  std::vector<BatchItemReport> failed;
  std::vector<BatchItemReport> degraded;

  std::size_t num_succeeded() const { return attempted - failed.size(); }
  void Clear() {
    attempted = 0;
    failed.clear();
    degraded.clear();
  }
  /// Multi-line human-readable summary for logs and error messages.
  std::string ToString() const;
};

/// Applies `policy` to a populated report. Returns OK when the batch may
/// proceed with the survivors; otherwise the batch-level error:
/// fail-fast -> the lowest-index failure's Status, skip-and-report ->
/// FailedPrecondition only when no item survived, quorum -> an aggregate
/// FailedPrecondition naming every failed item and its stage.
Status ResolveBatch(const FailurePolicy& policy, const BatchReport& report);

}  // namespace neuroprint

#endif  // NEUROPRINT_UTIL_BATCH_H_
