// Deterministic data parallelism for the attack hot paths.
//
// The central primitive is ParallelFor(ctx, begin, end, grain, fn): the
// index range [begin, end) is split into fixed chunks of `grain` indices
// and fn(chunk_begin, chunk_end) runs once per chunk, possibly on worker
// threads. Determinism contract:
//
//   * Chunk boundaries depend only on (begin, end, grain) — never on the
//     thread count. Grain sizes must themselves be pure functions of the
//     problem shape (use GrainForWork).
//   * Each chunk writes only its own disjoint slice of the output; the
//     thread count decides which worker executes a chunk, never what the
//     chunk computes.
//   * Reductions (ParallelReduce, ParallelForStatus) combine per-chunk
//     partials in ascending chunk order on the calling thread.
//
// Together these make every parallelized kernel produce bitwise-identical
// results for 1, 2, or 64 threads — the property the `concurrency` test
// tier asserts — and, because the parallel kernels preserve the serial
// per-element operation order, identical to the original serial code.
//
// Scheduling is work-stealing: each runner starts with a contiguous range
// of chunk indices, pops its own range from the front, and steals from the
// back of another runner's range when it goes dry. Stealing only moves
// *which thread* executes a chunk — the chunk -> output mapping is fixed —
// so load balance under skewed chunk costs comes at no determinism cost.
//
// Thread-count resolution: ParallelContext{n} pins a call site to n
// threads; n == 0 defers to SetDefaultThreadCount(), then the
// NEUROPRINT_THREADS environment variable, then the hardware concurrency.
// Nested ParallelFor calls (from inside a chunk) run inline on the calling
// worker, so composed parallel kernels cannot deadlock the fixed-size pool.

#ifndef NEUROPRINT_UTIL_THREAD_POOL_H_
#define NEUROPRINT_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.h"

namespace neuroprint {

/// Per-call parallelism knob, embedded in the public configs
/// (PipelineConfig, CohortConfig, AttackOptions, ...).
struct ParallelContext {
  /// Maximum threads (including the calling thread) a parallel region may
  /// use. 0 defers to the process default (SetDefaultThreadCount /
  /// NEUROPRINT_THREADS / hardware concurrency). The value never changes
  /// results, only wall-clock time.
  std::size_t num_threads = 0;
};

/// Hard cap on any resolved thread count (keeps a typo'd
/// NEUROPRINT_THREADS=1e9 from spawning a thread per feature).
constexpr std::size_t kMaxThreadCount = 256;

/// Parses a thread-count string ("8"). Returns 0 for absent/invalid/zero
/// values (meaning "use the hardware default"); counts above
/// kMaxThreadCount clamp to it. Exposed for tests.
std::size_t ParseThreadCount(const char* value);

/// The process-wide default used when ParallelContext::num_threads == 0:
/// the SetDefaultThreadCount override if set, else NEUROPRINT_THREADS,
/// else std::thread::hardware_concurrency() (at least 1).
std::size_t DefaultThreadCount();

/// Overrides DefaultThreadCount() for the process (0 clears the override).
/// Benches use this for their --threads flag; prefer per-call
/// ParallelContext in library code.
void SetDefaultThreadCount(std::size_t num_threads);

/// RAII override of the process default; restores the previous override on
/// destruction. Passing 0 keeps the current setting (no-op guard).
class ScopedDefaultThreadCount {
 public:
  explicit ScopedDefaultThreadCount(std::size_t num_threads);
  ~ScopedDefaultThreadCount();
  ScopedDefaultThreadCount(const ScopedDefaultThreadCount&) = delete;
  ScopedDefaultThreadCount& operator=(const ScopedDefaultThreadCount&) = delete;

 private:
  std::size_t previous_;
  bool engaged_;
};

/// The thread count a context resolves to (>= 1, <= kMaxThreadCount).
std::size_t ResolveThreadCount(const ParallelContext& ctx);

/// Work (in inner-loop iterations, roughly FLOPs) one chunk should carry
/// so that scheduling overhead stays negligible next to the chunk body.
constexpr std::size_t kGrainTargetWork = std::size_t{1} << 16;

/// Chunk size (in items) for items costing `work_per_item` inner
/// iterations each: a pure function of the problem shape, so chunk
/// boundaries are thread-count-invariant.
inline std::size_t GrainForWork(std::size_t work_per_item) {
  const std::size_t w = work_per_item == 0 ? 1 : work_per_item;
  const std::size_t grain = kGrainTargetWork / w;
  return grain == 0 ? 1 : grain;
}

/// Fixed-size worker pool. Most code should use the free ParallelFor /
/// ParallelReduce functions (which share one lazily-grown process pool);
/// the class is public for tests and special-purpose pools.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (0 is valid: every ParallelFor
  /// then runs inline on the caller).
  explicit ThreadPool(std::size_t num_workers);

  /// Drains queued work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_workers() const { return workers_.size(); }

  /// Runs fn(chunk_begin, chunk_end) for every grain-sized chunk of
  /// [begin, end), on at most `max_runners` threads (0 = workers + the
  /// calling thread, which always participates), scheduled by work
  /// stealing over per-runner chunk ranges. Blocks until every chunk ran.
  /// If chunks throw, the exception from the lowest-indexed throwing chunk
  /// is rethrown after all chunks completed.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn,
                   std::size_t max_runners = 0);

  /// True while the calling thread is executing a chunk of some
  /// ParallelFor; nested parallel regions detect this and run inline.
  static bool InParallelRegion();

 private:
  void WorkerLoop();
  void Submit(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
};

namespace internal {
/// Dispatches to the shared process pool, growing it if it has fewer than
/// `num_threads - 1` workers.
void PooledParallelFor(std::size_t num_threads, std::size_t begin,
                       std::size_t end, std::size_t grain,
                       const std::function<void(std::size_t, std::size_t)>& fn);
}  // namespace internal

/// Chunked parallel loop on the shared pool (see the file comment for the
/// determinism contract). fn(chunk_begin, chunk_end) must only touch state
/// owned by its chunk. Runs inline when the resolved thread count is 1,
/// the range fits one chunk, or the caller is already inside a parallel
/// region.
template <typename Fn>
void ParallelFor(const ParallelContext& ctx, std::size_t begin,
                 std::size_t end, std::size_t grain, const Fn& fn) {
  if (end <= begin) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t num_chunks = (end - begin + g - 1) / g;
  if (num_chunks <= 1 || ThreadPool::InParallelRegion() ||
      ResolveThreadCount(ctx) <= 1) {
    for (std::size_t lo = begin; lo < end; lo += g) {
      fn(lo, end - lo <= g ? end : lo + g);
    }
    return;
  }
  internal::PooledParallelFor(ResolveThreadCount(ctx), begin, end, g, fn);
}

/// ParallelFor over Status-returning chunks. All chunks run (no early
/// exit); returns OK if every chunk succeeded, else the error of the
/// lowest-indexed failing chunk — the same Status a serial loop that stops
/// at the first error would produce.
template <typename Fn>
Status ParallelForStatus(const ParallelContext& ctx, std::size_t begin,
                         std::size_t end, std::size_t grain, const Fn& fn) {
  if (end <= begin) return Status::OK();
  const std::size_t g = grain == 0 ? 1 : grain;
  std::mutex error_mutex;
  std::size_t error_chunk = static_cast<std::size_t>(-1);
  Status first_error = Status::OK();
  ParallelFor(ctx, begin, end, g,
              [&](std::size_t chunk_begin, std::size_t chunk_end) {
                Status status = fn(chunk_begin, chunk_end);
                if (status.ok()) return;
                const std::size_t chunk = (chunk_begin - begin) / g;
                std::lock_guard<std::mutex> lock(error_mutex);
                if (chunk < error_chunk) {
                  error_chunk = chunk;
                  first_error = std::move(status);
                }
              });
  return first_error;
}

/// ParallelFor over per-item Status-returning work, collecting every
/// failure instead of keeping only the first: fn(i) runs for each index
/// in [begin, end) and each non-OK result is appended to `errors` as
/// (index, Status). All items run; on return `errors` is sorted by index,
/// so its contents are deterministic at any thread count. This is the
/// substrate for FailurePolicy::kSkipAndReport / kQuorum batches — under
/// fail-fast use ParallelForStatus, whose single-error contract matches.
template <typename Fn>
void ParallelForStatusCollect(
    const ParallelContext& ctx, std::size_t begin, std::size_t end,
    std::size_t grain, const Fn& fn,
    std::vector<std::pair<std::size_t, Status>>* errors) {
  errors->clear();
  if (end <= begin) return;
  std::mutex error_mutex;
  ParallelFor(ctx, begin, end, grain,
              [&](std::size_t chunk_begin, std::size_t chunk_end) {
                for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
                  Status status = fn(i);
                  if (status.ok()) continue;
                  std::lock_guard<std::mutex> lock(error_mutex);
                  errors->emplace_back(i, std::move(status));
                }
              });
  std::sort(errors->begin(), errors->end(),
            [](const std::pair<std::size_t, Status>& a,
               const std::pair<std::size_t, Status>& b) {
              return a.first < b.first;
            });
}

/// Deterministic parallel reduction: chunk_fn(chunk_begin, chunk_end)
/// produces one partial per chunk; partials are combined with
/// combine(acc, partial) in ascending chunk order on the calling thread,
/// starting from `init`. Chunking (and therefore the floating-point
/// grouping) depends only on (begin, end, grain), so the result is
/// bitwise-identical at any thread count.
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduce(const ParallelContext& ctx, std::size_t begin,
                 std::size_t end, std::size_t grain, T init,
                 const ChunkFn& chunk_fn, const CombineFn& combine) {
  if (end <= begin) return init;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t num_chunks = (end - begin + g - 1) / g;
  std::vector<T> partials(num_chunks, init);
  ParallelFor(ctx, 0, num_chunks, 1,
              [&](std::size_t chunk_lo, std::size_t chunk_hi) {
                for (std::size_t c = chunk_lo; c < chunk_hi; ++c) {
                  const std::size_t lo = begin + c * g;
                  partials[c] = chunk_fn(lo, end - lo <= g ? end : lo + g);
                }
              });
  T acc = std::move(init);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    acc = combine(std::move(acc), std::move(partials[c]));
  }
  return acc;
}

}  // namespace neuroprint

#endif  // NEUROPRINT_UTIL_THREAD_POOL_H_
