// Small CSV writer used by the bench harnesses to persist the rows/series
// that regenerate the paper's tables and figures.

#ifndef NEUROPRINT_UTIL_CSV_WRITER_H_
#define NEUROPRINT_UTIL_CSV_WRITER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace neuroprint {

/// Accumulates rows in memory and writes them out as RFC-4180-ish CSV
/// (fields containing comma, quote, or newline are quoted and escaped).
class CsvWriter {
 public:
  /// Sets the header row. Must be called before the first AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a row; its width must match the header if one was set.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with %.6g.
  void AddNumericRow(const std::vector<double>& row);

  std::size_t row_count() const { return rows_.size(); }

  /// Serializes header + rows to a string.
  std::string ToString() const;

  /// Writes the CSV to `path`, overwriting.
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace neuroprint

#endif  // NEUROPRINT_UTIL_CSV_WRITER_H_
