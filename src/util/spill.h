// Spill-to-disk staging for bounded-memory batch stages.
//
// A SpillFile is an append-only on-disk column store: a batch stage
// writes intermediate double-precision columns in arrival order and
// reads them back by index during its commit phase, so the stage's
// resident set stays O(window) instead of O(batch). Columns are raw
// host-endian doubles — spill files are process-local scratch, never an
// interchange format (connectome/group_matrix_io.h owns the portable
// NPGM encoding).
//
// Lifecycle: Create() places the file under `dir`, else
// NEUROPRINT_SPILL_DIR (latched on first use), else the system temp
// directory; the destructor unlinks it. Reads open a fresh handle per
// call, so deleting the file mid-batch surfaces IOError on the next
// read-back instead of crashing — the contract fault_injection_test and
// out_of_core_test pin down.
//
// Fault injection: the `io.spill` point (keyed by column index) fires on
// both append and read-back; `corrupt`/`nan` rules mangle the column
// payload deterministically, `error` rules surface the injected Status.

#ifndef NEUROPRINT_UTIL_SPILL_H_
#define NEUROPRINT_UTIL_SPILL_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace neuroprint {

/// Process-wide memory budget in bytes from NEUROPRINT_MEMORY_BUDGET_MB
/// (latched on first use, like the other NEUROPRINT_* knobs). 0 when the
/// variable is unset or unparsable — callers then apply their own
/// default working-set size.
std::size_t MemoryBudgetBytes();

/// Directory for spill files from NEUROPRINT_SPILL_DIR (latched on first
/// use). Empty when unset — Create() then uses the system temp directory.
const std::string& SpillDirectory();

class SpillFile {
 public:
  /// Creates an empty spill file. `dir` overrides the NEUROPRINT_SPILL_DIR
  /// / temp-directory resolution (used by tests); the name is unique
  /// within the process.
  static Result<SpillFile> Create(const std::string& dir = "");

  SpillFile(SpillFile&& other) noexcept;
  SpillFile& operator=(SpillFile&& other) noexcept;
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  /// Unlinks the backing file.
  ~SpillFile();

  /// Appends one column of `count` doubles; columns are indexed in
  /// append order. IOError when the write fails (disk full, file gone).
  Status AppendColumn(const double* values, std::size_t count);

  /// Reads column `index` back into `out` (resized). InvalidArgument for
  /// an out-of-range index, IOError when the file cannot be reopened
  /// (deleted mid-batch), CorruptData on a short read (truncated).
  Status ReadColumn(std::size_t index, std::vector<double>* out) const;

  std::size_t num_columns() const { return columns_.size(); }

  /// Backing path (tests delete/truncate it to exercise the IO errors).
  const std::string& path() const { return path_; }

 private:
  struct ColumnExtent {
    std::uint64_t offset = 0;
    std::uint64_t count = 0;
  };

  SpillFile() = default;

  std::string path_;
  std::ofstream writer_;
  std::uint64_t bytes_written_ = 0;
  std::vector<ColumnExtent> columns_;
};

}  // namespace neuroprint

#endif  // NEUROPRINT_UTIL_SPILL_H_
