// Fail-fast precondition macros.
//
// NP_CHECK is for programmer errors (violated invariants, out-of-contract
// calls): it aborts with a message. It is always on, in all build types;
// NP_DCHECK compiles out in NDEBUG builds and is meant for hot loops.
// Recoverable conditions (bad input files, non-convergence) must use
// Status/Result instead.

#ifndef NEUROPRINT_UTIL_CHECK_H_
#define NEUROPRINT_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace neuroprint::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "Check failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Builds the optional streamed message for a failed check lazily.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

// Swallows the builder so the ternary's branches both have type void;
// `&` binds more loosely than `<<`, so streamed context is applied first.
struct CheckVoidify {
  void operator&(const CheckMessageBuilder&) {}
};

}  // namespace neuroprint::internal

/// Aborts with a diagnostic if `cond` is false. Supports streaming extra
/// context: NP_CHECK(i < n) << "i=" << i;
#define NP_CHECK(cond)                                          \
  (cond) ? (void)0                                              \
         : ::neuroprint::internal::CheckVoidify() &             \
               ::neuroprint::internal::CheckMessageBuilder(     \
                   __FILE__, __LINE__, #cond)

#define NP_CHECK_EQ(a, b) NP_CHECK((a) == (b))
#define NP_CHECK_NE(a, b) NP_CHECK((a) != (b))
#define NP_CHECK_LT(a, b) NP_CHECK((a) < (b))
#define NP_CHECK_LE(a, b) NP_CHECK((a) <= (b))
#define NP_CHECK_GT(a, b) NP_CHECK((a) > (b))
#define NP_CHECK_GE(a, b) NP_CHECK((a) >= (b))

#ifdef NDEBUG
#define NP_DCHECK(cond) NP_CHECK(true || (cond))
#else
#define NP_DCHECK(cond) NP_CHECK(cond)
#endif

#endif  // NEUROPRINT_UTIL_CHECK_H_
