// Fail-fast precondition macros.
//
// NP_CHECK is for programmer errors (violated invariants, out-of-contract
// calls): it aborts with a message. It is always on, in all build types;
// NP_DCHECK compiles out in NDEBUG builds and is meant for hot loops.
// Recoverable conditions (bad input files, non-convergence) must use
// Status/Result instead.

#ifndef NEUROPRINT_UTIL_CHECK_H_
#define NEUROPRINT_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace neuroprint::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "Check failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

// Builds the optional streamed message for a failed check lazily.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

// Swallows the builder so the ternary's branches both have type void;
// `&` binds more loosely than `<<`, so streamed context is applied first.
struct CheckVoidify {
  void operator&(const CheckMessageBuilder&) {}
};

}  // namespace neuroprint::internal

/// Aborts with a diagnostic if `cond` is false. Supports streaming extra
/// context: NP_CHECK(i < n) << "i=" << i;
#define NP_CHECK(cond)                                          \
  (cond) ? (void)0                                              \
         : ::neuroprint::internal::CheckVoidify() &             \
               ::neuroprint::internal::CheckMessageBuilder(     \
                   __FILE__, __LINE__, #cond)

#define NP_CHECK_EQ(a, b) NP_CHECK((a) == (b))
#define NP_CHECK_NE(a, b) NP_CHECK((a) != (b))
#define NP_CHECK_LT(a, b) NP_CHECK((a) < (b))
#define NP_CHECK_LE(a, b) NP_CHECK((a) <= (b))
#define NP_CHECK_GT(a, b) NP_CHECK((a) > (b))
#define NP_CHECK_GE(a, b) NP_CHECK((a) >= (b))

/// Debug-only check: identical to NP_CHECK in debug builds, compiles to
/// nothing in NDEBUG builds. The release stub keeps `cond` inside an
/// unevaluated sizeof/decltype operand, so it must still typecheck (and be
/// contextually convertible to bool) — misuse breaks release builds at
/// compile time — but it is never evaluated, never odr-uses anything, and
/// emits no code. Do not put side-effecting expressions in NP_DCHECK.
#ifdef NDEBUG
#define NP_DCHECK(cond) \
  NP_CHECK(sizeof(decltype(static_cast<bool>(cond))) != 0)
#else
#define NP_DCHECK(cond) NP_CHECK(cond)
#endif

#define NP_DCHECK_EQ(a, b) NP_DCHECK((a) == (b))
#define NP_DCHECK_NE(a, b) NP_DCHECK((a) != (b))
#define NP_DCHECK_LT(a, b) NP_DCHECK((a) < (b))
#define NP_DCHECK_LE(a, b) NP_DCHECK((a) <= (b))
#define NP_DCHECK_GT(a, b) NP_DCHECK((a) > (b))
#define NP_DCHECK_GE(a, b) NP_DCHECK((a) >= (b))

#endif  // NEUROPRINT_UTIL_CHECK_H_
