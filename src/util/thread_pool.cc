#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "util/metrics.h"
#include "util/trace.h"

namespace neuroprint {
namespace {

// Set while a thread (worker or caller) is executing ParallelFor chunks;
// nested parallel regions check it and run inline instead of re-entering
// the pool, which would deadlock a fixed-size worker set.
thread_local bool t_in_parallel_region = false;

class ScopedParallelRegion {
 public:
  ScopedParallelRegion() : previous_(t_in_parallel_region) {
    t_in_parallel_region = true;
  }
  ~ScopedParallelRegion() { t_in_parallel_region = previous_; }
  ScopedParallelRegion(const ScopedParallelRegion&) = delete;
  ScopedParallelRegion& operator=(const ScopedParallelRegion&) = delete;

 private:
  bool previous_;
};

std::size_t HardwareThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

// Process-wide override installed by SetDefaultThreadCount; 0 = unset.
std::atomic<std::size_t>& DefaultOverride() {
  static std::atomic<std::size_t> override{0};
  return override;
}

// A half-open range of chunk indices [lo, hi) packed into one atomic word
// (lo in the low 32 bits) so owner-pops and steals are single CAS
// operations. Within one loop lo only grows and hi only shrinks, so a
// stale expected value can never be reproduced by later updates (no ABA).
inline std::uint64_t PackChunkRange(std::uint64_t lo, std::uint64_t hi) {
  return (hi << 32) | lo;
}
constexpr std::uint64_t kChunkLoMask = 0xffffffffULL;

std::size_t EnvThreadCount() {
  // Latched on first use: mutating NEUROPRINT_THREADS mid-process does not
  // retune already-running parallel code (and keeps this getenv race-free
  // under TSan).
  static const std::size_t count =
      ParseThreadCount(std::getenv("NEUROPRINT_THREADS"));
  return count;
}

}  // namespace

std::size_t ParseThreadCount(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  std::size_t count = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    count = count * 10 + static_cast<std::size_t>(*p - '0');
    if (count > kMaxThreadCount) return kMaxThreadCount;
  }
  return count;
}

std::size_t DefaultThreadCount() {
  const std::size_t forced = DefaultOverride().load(std::memory_order_relaxed);
  if (forced != 0) return std::min(forced, kMaxThreadCount);
  const std::size_t env = EnvThreadCount();
  if (env != 0) return env;
  return std::min(HardwareThreadCount(), kMaxThreadCount);
}

void SetDefaultThreadCount(std::size_t num_threads) {
  DefaultOverride().store(num_threads, std::memory_order_relaxed);
}

ScopedDefaultThreadCount::ScopedDefaultThreadCount(std::size_t num_threads)
    : previous_(DefaultOverride().load(std::memory_order_relaxed)),
      engaged_(num_threads != 0) {
  if (engaged_) SetDefaultThreadCount(num_threads);
}

ScopedDefaultThreadCount::~ScopedDefaultThreadCount() {
  if (engaged_) SetDefaultThreadCount(previous_);
}

std::size_t ResolveThreadCount(const ParallelContext& ctx) {
  const std::size_t requested =
      ctx.num_threads != 0 ? ctx.num_threads : DefaultThreadCount();
  return std::max<std::size_t>(1, std::min(requested, kMaxThreadCount));
}

ThreadPool::ThreadPool(std::size_t num_workers) {
  workers_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t max_runners) {
  if (end <= begin) return;
  std::size_t g = grain == 0 ? 1 : grain;
  // Chunk indices are packed two-per-word in the stealing slots; widen the
  // grain in the degenerate > 2^32-chunks case so they fit. (The widening
  // is a pure function of (begin, end, grain), so determinism holds.)
  while ((end - begin + g - 1) / g > kChunkLoMask) g *= 2;
  const std::size_t num_chunks = (end - begin + g - 1) / g;

  std::size_t runners =
      max_runners == 0 ? workers_.size() + 1 : std::min(max_runners,
                                                        workers_.size() + 1);
  runners = std::min(runners, num_chunks);

  // Shared state for one loop: a work-stealing scheduler over chunk
  // indices. Every runner owns a slot holding a contiguous chunk range
  // packed {lo, hi}; the owner CAS-pops the front of its own range, and
  // runners that go dry CAS-pop the *back* of someone else's. Chunk
  // boundaries and the chunk -> output mapping stay pure functions of
  // (begin, end, grain); stealing only moves which thread executes a
  // chunk, never what the chunk computes, so results are bitwise-identical
  // at every thread count (the `concurrency` test tier asserts this).
  struct LoopState {
    struct alignas(64) Slot {
      std::atomic<std::uint64_t> range{0};
    };
    explicit LoopState(std::size_t num_slots) : slots(num_slots) {}
    std::vector<Slot> slots;
    std::atomic<std::size_t> remaining{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::mutex error_mutex;
    std::size_t error_chunk = static_cast<std::size_t>(-1);
    std::exception_ptr error;
    // Scheduler telemetry, published to the metrics registry after the
    // loop completes. How chunks land on runners depends on timing, so
    // these are tagged Stability::kScheduler (nondeterministic).
    std::atomic<std::size_t> steals{0};
    std::atomic<std::size_t> idle_scans{0};
  };
  auto state = std::make_shared<LoopState>(runners);
  state->remaining.store(num_chunks, std::memory_order_relaxed);

  // Balanced contiguous distribution: runner r starts with chunks
  // [r*base + min(r, extra), ...); stealing rebalances from there.
  const std::size_t base = num_chunks / runners;
  const std::size_t extra = num_chunks % runners;
  std::size_t next_lo = 0;
  for (std::size_t r = 0; r < runners; ++r) {
    const std::size_t count = base + (r < extra ? 1 : 0);
    state->slots[r].range.store(PackChunkRange(next_lo, next_lo + count),
                                std::memory_order_relaxed);
    next_lo += count;
  }

  auto run_chunks = [state, begin, end, g, &fn](std::size_t self) {
    ScopedParallelRegion region;
    auto execute = [&](std::uint64_t chunk) {
      const std::size_t c = static_cast<std::size_t>(chunk);
      const std::size_t lo = begin + c * g;
      const std::size_t hi = end - lo <= g ? end : lo + g;
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->error_mutex);
        if (c < state->error_chunk) {
          state->error_chunk = c;
          state->error = std::current_exception();
        }
      }
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->done_mutex);
        state->done_cv.notify_all();
      }
    };

    // Drain the owned range front-to-back.
    std::atomic<std::uint64_t>& own = state->slots[self].range;
    std::uint64_t r = own.load(std::memory_order_acquire);
    for (;;) {
      const std::uint64_t lo = r & kChunkLoMask;
      const std::uint64_t hi = r >> 32;
      if (lo >= hi) break;
      if (own.compare_exchange_weak(r, PackChunkRange(lo + 1, hi),
                                    std::memory_order_acq_rel)) {
        execute(lo);
        r = own.load(std::memory_order_acquire);
      }
      // CAS failure refreshed r; a thief took the back, retry the front.
    }

    // Steal from the back of the other runners' ranges until a full scan
    // finds every slot empty (in-flight chunks are already claimed, and
    // the caller's done_cv wait covers their completion).
    const std::size_t num_slots = state->slots.size();
    for (;;) {
      bool stole = false;
      for (std::size_t off = 1; off < num_slots && !stole; ++off) {
        std::atomic<std::uint64_t>& victim =
            state->slots[(self + off) % num_slots].range;
        std::uint64_t v = victim.load(std::memory_order_acquire);
        for (;;) {
          const std::uint64_t lo = v & kChunkLoMask;
          const std::uint64_t hi = v >> 32;
          if (lo >= hi) break;
          if (victim.compare_exchange_weak(v, PackChunkRange(lo, hi - 1),
                                           std::memory_order_acq_rel)) {
            execute(hi - 1);
            stole = true;
            state->steals.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
      if (!stole) {
        state->idle_scans.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  };

  // The caller is always runner 0; enqueue the rest.
  for (std::size_t i = 1; i < runners; ++i) {
    Submit([run_chunks, i] { run_chunks(i); });
  }
  run_chunks(0);

  // Chunks may still be running on workers after the caller runs dry.
  {
    std::unique_lock<std::mutex> lock(state->done_mutex);
    state->done_cv.wait(lock, [&state] {
      return state->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  if (trace::Enabled()) {
    using metrics::Stability;
    metrics::Count("threadpool.loops", 1, Stability::kScheduler);
    metrics::Count("threadpool.chunks", num_chunks, Stability::kScheduler);
    metrics::Count("threadpool.runners", runners, Stability::kScheduler);
    metrics::Count("threadpool.steals",
                   state->steals.load(std::memory_order_relaxed),
                   Stability::kScheduler);
    metrics::Count("threadpool.idle_scans",
                   state->idle_scans.load(std::memory_order_relaxed),
                   Stability::kScheduler);
  }
  // Move the propagated exception out of the shared state before
  // rethrowing: workers may still hold their LoopState reference (their
  // task std::function dies after remaining hits 0), and if one of them
  // performed the final exception_ptr release, the exception object
  // would be destroyed on a worker concurrently with this thread's catch
  // handler reading it. That ordering is actually safe — eh_ptr's
  // refcount is atomic — but the refcount lives in uninstrumented
  // libsupc++, so TSan cannot see the synchronization and reports it as
  // a race. Draining the pointer here keeps the final release on the
  // calling thread.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state->error_mutex);
    error = std::move(state->error);
    state->error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

namespace internal {
namespace {

// The lazily-created shared pool. Grown (recreated) under the mutex when a
// caller asks for more threads than it has; in-flight loops keep the old
// pool alive through their shared_ptr.
std::mutex& SharedPoolMutex() {
  static std::mutex mutex;
  return mutex;
}

std::shared_ptr<ThreadPool>& SharedPoolSlot() {
  static std::shared_ptr<ThreadPool> pool;
  return pool;
}

std::shared_ptr<ThreadPool> SharedPool(std::size_t min_workers) {
  std::lock_guard<std::mutex> lock(SharedPoolMutex());
  std::shared_ptr<ThreadPool>& slot = SharedPoolSlot();
  if (slot == nullptr || slot->num_workers() < min_workers) {
    slot = std::make_shared<ThreadPool>(min_workers);
  }
  return slot;
}

}  // namespace

void PooledParallelFor(
    std::size_t num_threads, std::size_t begin, std::size_t end,
    std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  // num_threads includes the calling thread.
  const std::shared_ptr<ThreadPool> pool = SharedPool(num_threads - 1);
  pool->ParallelFor(begin, end, grain, fn, num_threads);
}

}  // namespace internal
}  // namespace neuroprint
