// Hierarchical tracing spans for the attack pipeline.
//
// Instrumented code brackets a stage with NP_TRACE_SCOPE("stage.name");
// when tracing is enabled the span records its monotonic start time,
// duration, executing thread, and nesting depth into a process-wide event
// buffer that exports as chrome://tracing-compatible JSON (load the file
// via chrome://tracing or https://ui.perfetto.dev). When tracing is
// disabled — the default — a span is one relaxed atomic load and a
// branch, cheap enough to leave in every hot path permanently.
//
// Enablement resolves, in order: SetEnabled() override, then the
// NEUROPRINT_TRACE environment variable (latched on first use; "" and "0"
// mean off, anything else on), else off. Library configs carry a
// TraceConfig so one pipeline/attack call can opt in programmatically via
// ScopedEnable without touching the process environment.
//
// Determinism: spans carry wall-clock measurements and are inherently
// nondeterministic; they are observability output only and must never
// feed back into computation. The companion metrics registry
// (util/metrics.h) is where semantic, determinism-checked measurements
// live.
//
// Thread safety: spans may open and close on any thread (including
// ParallelFor workers); the event buffer is mutex-guarded and thread ids
// are dense per-process indices in first-span order.

#ifndef NEUROPRINT_UTIL_TRACE_H_
#define NEUROPRINT_UTIL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace neuroprint::trace {

/// Per-call observability knob, embedded in the public configs
/// (PipelineConfig, AttackOptions, ...). `enabled = true` turns span and
/// metric collection on for the duration of that call even when
/// NEUROPRINT_TRACE is unset; it never turns an enabled process off.
struct TraceConfig {
  bool enabled = false;
};

/// True when span/metric collection is on. One relaxed atomic load.
bool Enabled();

/// Process-wide override of the NEUROPRINT_TRACE latch.
void SetEnabled(bool enabled);

/// Parses a NEUROPRINT_TRACE value: nullptr, "", and "0" mean disabled.
/// Exposed for tests.
bool ParseTraceEnv(const char* value);

/// RAII enable: turns collection on if `enable` is set and it was off,
/// and restores the previous state on destruction. Used by library entry
/// points honoring TraceConfig, and by tests.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool enable);
  ~ScopedEnable();
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  bool engaged_;
};

/// One completed span. Timestamps are nanoseconds on the steady clock,
/// relative to the process trace epoch (first span ever recorded).
struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Dense per-process thread index (0 = first thread that traced).
  std::uint32_t thread_id = 0;
  /// Nesting depth on its thread at span open (0 = top level).
  std::uint32_t depth = 0;
};

/// RAII span. Use via NP_TRACE_SCOPE; `name` must outlive the span (pass
/// a string literal).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;  // nullptr when tracing was off at construction.
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

/// Copies out every completed span, in completion order.
std::vector<TraceEvent> SnapshotEvents();

/// Number of completed spans in the buffer.
std::size_t EventCount();

/// Drops all collected spans (the trace epoch is preserved).
void ClearEvents();

/// Serializes the collected spans as a chrome://tracing JSON document:
/// {"traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid",
/// "tid"}, ...]} with microsecond timestamps.
std::string ToChromeJson();

/// Writes ToChromeJson() to `path`, overwriting.
Status WriteChromeTrace(const std::string& path);

/// Honors a NEUROPRINT_TRACE output request at tool exit: value "1" (or
/// "true") writes "neuroprint_trace.json", any other enabled value is
/// used as the output path. Returns the path written, "" when tracing was
/// not requested via the environment, or the write error.
Result<std::string> WriteEnvTraceIfRequested();

}  // namespace neuroprint::trace

#define NP_TRACE_CONCAT_INNER(a, b) a##b
#define NP_TRACE_CONCAT(a, b) NP_TRACE_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define NP_TRACE_SCOPE(name)                                 \
  ::neuroprint::trace::ScopedSpan NP_TRACE_CONCAT(           \
      np_trace_scope_, __LINE__)(name)

#endif  // NEUROPRINT_UTIL_TRACE_H_
