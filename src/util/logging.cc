#include "util/logging.h"

#include <cstring>

namespace neuroprint {

LogSeverity& MinLogSeverity() {
  static LogSeverity severity = LogSeverity::kWarning;
  return severity;
}

namespace internal {
namespace {

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : enabled_(severity >= MinLogSeverity()), severity_(severity) {
  if (enabled_) {
    stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":"
            << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) std::cerr << stream_.str() << "\n";
}

}  // namespace internal
}  // namespace neuroprint
