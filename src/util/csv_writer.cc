#include "util/csv_writer.h"

#include <cstdio>
#include <fstream>

#include "util/check.h"

namespace neuroprint {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void AppendField(const std::string& field, std::string& out) {
  if (!NeedsQuoting(field)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

void AppendRow(const std::vector<std::string>& row, std::string& out) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ',';
    AppendField(row[i], out);
  }
  out += '\n';
}

}  // namespace

void CsvWriter::SetHeader(std::vector<std::string> header) {
  NP_CHECK(rows_.empty()) << "SetHeader must precede AddRow";
  header_ = std::move(header);
}

void CsvWriter::AddRow(std::vector<std::string> row) {
  if (!header_.empty()) {
    NP_CHECK_EQ(row.size(), header_.size())
        << "row width " << row.size() << " != header width " << header_.size();
  }
  rows_.push_back(std::move(row));
}

void CsvWriter::AddNumericRow(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  char buf[64];
  for (double v : row) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    fields.emplace_back(buf);
  }
  AddRow(std::move(fields));
}

std::string CsvWriter::ToString() const {
  std::string out;
  if (!header_.empty()) AppendRow(header_, out);
  for (const auto& row : rows_) AppendRow(row, out);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IOError("cannot open for write: " + path);
  const std::string contents = ToString();
  file.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!file) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace neuroprint
