#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "util/trace.h"

namespace neuroprint::metrics {
namespace {

// %.17g round-trips doubles exactly; JSON has no NaN/Inf literals, so
// non-finite values (shouldn't happen) serialize as null.
void AppendJsonNumber(double value, std::string* out) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void AppendEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
}

}  // namespace

const char* StabilityName(Stability stability) {
  switch (stability) {
    case Stability::kSemantic:
      return "semantic";
    case Stability::kTiming:
      return "timing";
    case Stability::kScheduler:
      return "scheduler";
  }
  return "unknown";
}

Snapshot Snapshot::SemanticOnly() const {
  Snapshot out;
  for (const CounterValue& c : counters) {
    if (c.stability == Stability::kSemantic) out.counters.push_back(c);
  }
  for (const GaugeValue& g : gauges) {
    if (g.stability == Stability::kSemantic) out.gauges.push_back(g);
  }
  for (const HistogramValue& h : histograms) {
    if (h.stability == Stability::kSemantic) out.histograms.push_back(h);
  }
  return out;
}

std::string Snapshot::ToJson() const {
  std::string out = "[";
  bool first = true;
  char buf[64];
  auto begin_entry = [&](const std::string& name, const char* kind,
                         Stability stability) {
    if (!first) out += ",";
    first = false;
    out += "\n  {\"name\": \"";
    AppendEscaped(name, &out);
    out += "\", \"kind\": \"";
    out += kind;
    out += "\", \"stability\": \"";
    out += StabilityName(stability);
    out += "\"";
  };
  for (const CounterValue& c : counters) {
    begin_entry(c.name, "counter", c.stability);
    std::snprintf(buf, sizeof(buf), ", \"value\": %llu}",
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const GaugeValue& g : gauges) {
    begin_entry(g.name, "gauge", g.stability);
    out += ", \"value\": ";
    AppendJsonNumber(g.value, &out);
    out += "}";
  }
  for (const HistogramValue& h : histograms) {
    begin_entry(h.name, "histogram", h.stability);
    std::snprintf(buf, sizeof(buf), ", \"count\": %llu",
                  static_cast<unsigned long long>(h.count));
    out += buf;
    out += ", \"sum\": ";
    AppendJsonNumber(h.sum, &out);
    out += ", \"min\": ";
    AppendJsonNumber(h.count > 0 ? h.min : 0.0, &out);
    out += ", \"max\": ";
    AppendJsonNumber(h.count > 0 ? h.max : 0.0, &out);
    out += "}";
  }
  out += "\n]\n";
  return out;
}

std::string Snapshot::ToCsv() const {
  std::string out = "name,kind,stability,value,count,sum,min,max\n";
  char buf[128];
  for (const CounterValue& c : counters) {
    std::snprintf(buf, sizeof(buf), "%s,counter,%s,%llu,,,,\n",
                  c.name.c_str(), StabilityName(c.stability),
                  static_cast<unsigned long long>(c.value));
    out += buf;
  }
  for (const GaugeValue& g : gauges) {
    std::snprintf(buf, sizeof(buf), "%s,gauge,%s,%.17g,,,,\n",
                  g.name.c_str(), StabilityName(g.stability), g.value);
    out += buf;
  }
  for (const HistogramValue& h : histograms) {
    std::snprintf(buf, sizeof(buf), "%s,histogram,%s,,%llu,%.17g,%.17g,%.17g\n",
                  h.name.c_str(), StabilityName(h.stability),
                  static_cast<unsigned long long>(h.count), h.sum,
                  h.count > 0 ? h.min : 0.0, h.count > 0 ? h.max : 0.0);
    out += buf;
  }
  return out;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

void Registry::Add(std::string_view name, std::uint64_t delta,
                   Stability stability) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), CounterCell{stability, 0})
             .first;
  }
  it->second.value += delta;
}

void Registry::Set(std::string_view name, double value, Stability stability) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), GaugeCell{stability, 0.0}).first;
  }
  it->second.value = value;
}

void Registry::Observe(std::string_view name, double value,
                       Stability stability) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), HistogramCell{stability})
             .first;
  }
  HistogramCell& cell = it->second;
  if (cell.count == 0) {
    cell.min = value;
    cell.max = value;
  } else {
    cell.min = std::min(cell.min, value);
    cell.max = std::max(cell.max, value);
  }
  ++cell.count;
  cell.sum += value;
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    snapshot.counters.push_back(CounterValue{name, cell.stability, cell.value});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    snapshot.gauges.push_back(GaugeValue{name, cell.stability, cell.value});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    snapshot.histograms.push_back(HistogramValue{name, cell.stability,
                                                 cell.count, cell.sum,
                                                 cell.min, cell.max});
  }
  return snapshot;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void Count(std::string_view name, std::uint64_t delta, Stability stability) {
  if (!trace::Enabled()) return;
  Registry::Global().Add(name, delta, stability);
}

void SetGauge(std::string_view name, double value, Stability stability) {
  if (!trace::Enabled()) return;
  Registry::Global().Set(name, value, stability);
}

void Observe(std::string_view name, double value, Stability stability) {
  if (!trace::Enabled()) return;
  Registry::Global().Observe(name, value, stability);
}

Status WriteJson(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open metrics output: " + path);
  }
  const std::string json = Registry::Global().TakeSnapshot().ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out) {
    return Status::IOError("failed writing metrics output: " + path);
  }
  return Status::OK();
}

}  // namespace neuroprint::metrics
