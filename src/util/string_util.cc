#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace neuroprint {

std::string StrFormat(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StrTrim(const std::string& text) {
  const char* ws = " \t\r\n\f\v";
  const std::size_t begin = text.find_first_not_of(ws);
  if (begin == std::string::npos) return {};
  const std::size_t end = text.find_last_not_of(ws);
  return text.substr(begin, end - begin + 1);
}

}  // namespace neuroprint
