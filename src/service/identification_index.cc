#include "service/identification_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "linalg/simd/simd.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/spill.h"
#include "util/string_util.h"

namespace neuroprint::service {
namespace {

// Conservative slack on the cluster ball bound: a cluster is pruned only
// when its bound is below best - kPruneSlack, so bound-side rounding can
// never skip a candidate that ties or beats the current best. Similarity
// values are O(1) correlations, so an absolute slack is well-scaled.
constexpr double kPruneSlack = 1e-9;

// True when (sim, id) beats (best_sim, best_id) under the global
// tie-break: higher similarity wins, exact ties go to the
// lexicographically smaller subject id.
bool BeatsBest(double sim, const std::string& id, double best_sim,
               const std::string& best_id) {
  if (sim != best_sim) return sim > best_sim;
  return id < best_id;
}

// Cosine scores go through the SIMD dispatch layer's dot kernel; the
// lane-split reduction is bit-identical across ISAs, so shard scan
// results (and the tie-breaks built on them) never depend on the host.
double DotProduct(const linalg::Vector& a, const linalg::Vector& b) {
  NP_CHECK_EQ(a.size(), b.size());
  return linalg::simd::ActiveOps().dot(a.data(), b.data(), a.size());
}

bool AllFinite(const linalg::Vector& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

// Upper bound on dot(q, member) for any member of a cluster whose
// centroid has similarity cq to q and whose angular radius r satisfies
// cos(r) = cos_radius: cos(max(0, angle(q, centroid) - r)), expanded
// algebraically so no inverse trig is needed.
double ClusterBound(double cq, double cos_radius, double sin_radius) {
  if (cq >= cos_radius) return 1.0;  // Probe inside the cluster cone.
  const double sq = std::sqrt(std::max(0.0, 1.0 - cq * cq));
  return cq * cos_radius + sq * sin_radius;
}

}  // namespace

std::uint64_t SubjectHash(const std::string& subject_id) {
  // FNV-1a, 64-bit: a pure byte-stream hash, stable across platforms and
  // processes, so subject -> shard assignment never depends on process
  // state or enrollment order.
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : subject_id) {
    h ^= static_cast<std::uint64_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::size_t IdentificationIndex::ShardOf(const std::string& subject_id) const {
  return static_cast<std::size_t>(SubjectHash(subject_id) %
                                  static_cast<std::uint64_t>(shards_.size()));
}

linalg::Vector IdentificationIndex::MakeFingerprint(
    const linalg::Vector& full_features) const {
  // Mean-centered, unit-normalized restriction to the selected rows:
  // dot(fingerprint_a, fingerprint_b) is exactly the Pearson correlation
  // the brute-force matcher computes over the same feature subset.
  linalg::Vector f(selected_features_.size(), 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < selected_features_.size(); ++i) {
    f[i] = full_features[selected_features_[i]];
    sum += f[i];
  }
  const double mean = sum / static_cast<double>(f.size());
  double norm_sq = 0.0;
  for (double& x : f) {
    x -= mean;
    norm_sq += x * x;
  }
  const double norm = std::sqrt(norm_sq);
  if (norm > 0.0) {
    for (double& x : f) x /= norm;
  } else {
    // Zero-variance subject: correlation 0 with everything (the
    // linalg::ColumnCrossCorrelation convention) — store the zero vector.
    std::fill(f.begin(), f.end(), 0.0);
  }
  return f;
}

Result<IdentificationIndex> IdentificationIndex::Create(
    const connectome::GroupMatrix& reference, const IndexOptions& options,
    BatchReport* report) {
  trace::ScopedEnable trace_enable(options.trace.enabled);
  fault::ScopedSchedule fault_schedule(options.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("service.create");
  if (options.num_features == 0) {
    return Status::InvalidArgument("IndexOptions: num_features must be > 0");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("IndexOptions: num_shards must be > 0");
  }
  if (options.kmeans_iterations == 0) {
    return Status::InvalidArgument(
        "IndexOptions: kmeans_iterations must be > 0");
  }
  if (reference.num_subjects() < 2) {
    return Status::InvalidArgument(
        "IdentificationIndex: need at least 2 reference subjects");
  }
  if (reference.num_features() < reference.num_subjects()) {
    return Status::InvalidArgument(StrFormat(
        "IdentificationIndex: reference must be tall (features >= subjects) "
        "for leverage scoring — got %zu x %zu; fit on a reference sample and "
        "EnrollBatch the rest",
        reference.num_features(), reference.num_subjects()));
  }

  IdentificationIndex index;
  index.options_ = options;
  index.full_feature_count_ = reference.num_features();
  index.shards_.resize(options.num_shards);

  // Fit the subspace exactly like DeanonymizationAttack::Fit: leverage
  // scores on the reference gallery, top-t rows kept.
  core::LeverageOptions leverage = options.leverage;
  if (leverage.parallel.num_threads == 0) {
    leverage.parallel = options.parallel;
  }
  linalg::Vector scores;
  {
    NP_TRACE_SCOPE("service.create.leverage");
    NP_ASSIGN_OR_RETURN(scores,
                        core::ComputeLeverageScores(reference.data(), leverage));
  }
  index.selected_features_ = core::TopKIndices(scores, options.num_features);
  if (index.selected_features_.size() < 2) {
    return Status::FailedPrecondition(
        "IdentificationIndex: fewer than 2 usable features");
  }

  // The reference subjects become the initial gallery (same screening and
  // fault points as any later EnrollBatch).
  NP_RETURN_IF_ERROR(index.EnrollMatrixColumns(reference, report));
  if (index.size_ < 2) {
    return Status::FailedPrecondition(
        "IdentificationIndex: fewer than 2 usable reference subjects");
  }
  // The subspace was fitted on exactly this gallery: staleness starts at 0.
  index.sketch_staleness_ = 0;
  metrics::SetGauge("service.sketch_staleness", 0.0);
  metrics::Count("service.creates", 1);
  return index;
}

Status IdentificationIndex::EnrollLocked(const std::string& subject_id,
                                         const linalg::Vector& full_features,
                                         std::uint64_t fault_key) {
  if (full_features.size() != full_feature_count_) {
    return Status::InvalidArgument(StrFormat(
        "Enroll: subject %s has %zu features, index holds %zu",
        subject_id.c_str(), full_features.size(), full_feature_count_));
  }
  linalg::Vector column = full_features;
  if (fault::Enabled()) {
    const fault::Injection injection = fault::Hit("service.enroll", fault_key);
    if (injection.action == fault::Action::kError) return injection.status;
    if (injection.action == fault::Action::kNaN) {
      for (double& x : column) x = std::numeric_limits<double>::quiet_NaN();
    } else if (injection.action == fault::Action::kCorrupt) {
      fault::ScrambleBytes(injection.seed, column.data(),
                           column.size() * sizeof(double));
    }
  }
  if (!AllFinite(column)) {
    return Status::CorruptData(StrFormat(
        "Enroll: subject %s has non-finite feature values",
        subject_id.c_str()));
  }
  if (Contains(subject_id)) {
    return Status::AlreadyExists(
        StrFormat("Enroll: subject %s already enrolled", subject_id.c_str()));
  }
  // Write-ahead: the screened column reaches the journal before any
  // shard changes; a journal error leaves the index bit-unchanged.
  if (journal_ != nullptr) {
    std::vector<PendingEnroll> pending(1);
    pending[0].id = &subject_id;
    pending[0].column = &column;
    NP_RETURN_IF_ERROR(JournalEnrolls(pending));
  }
  CommitEnroll(subject_id, std::move(column));
  return Status::OK();
}

void IdentificationIndex::CommitEnroll(const std::string& subject_id,
                                       linalg::Vector column) {
  Shard& shard = shards_[ShardOf(subject_id)];
  const auto pos = std::lower_bound(
      shard.entries.begin(), shard.entries.end(), subject_id,
      [](const Entry& e, const std::string& id) { return e.id < id; });
  Entry entry;
  entry.id = subject_id;
  entry.fingerprint = MakeFingerprint(column);
  if (options_.retain_full_columns) entry.full = std::move(column);
  shard.entries.insert(pos, std::move(entry));
  shard.clusters_dirty = true;
  ++size_;
  NoteMutation();
}

Status IdentificationIndex::Enroll(const std::string& subject_id,
                                   const linalg::Vector& full_features) {
  trace::ScopedEnable trace_enable(options_.trace.enabled);
  fault::ScopedSchedule fault_schedule(options_.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("service.enroll");
  NP_RETURN_IF_ERROR(
      EnrollLocked(subject_id, full_features, SubjectHash(subject_id)));
  metrics::Count("service.enrolls", 1);
  metrics::SetGauge("service.gallery_size", static_cast<double>(size_));
  NP_RETURN_IF_ERROR(MaybeAutoRefresh());
  return MaybeCompact();
}

Status IdentificationIndex::EnrollMatrixColumns(
    const connectome::GroupMatrix& subjects, BatchReport* report) {
  BatchReport local_report;
  if (report == nullptr) report = &local_report;
  report->Clear();
  const std::size_t n = subjects.num_subjects();
  report->attempted = n;
  if (subjects.num_features() != full_feature_count_) {
    return Status::InvalidArgument(StrFormat(
        "EnrollBatch: subjects have %zu features, index holds %zu",
        subjects.num_features(), full_feature_count_));
  }

  // Stage every column first (screening + fault injection + fingerprint,
  // parallel over subjects, disjoint slots), then resolve the batch and
  // commit the survivors in index order — fail-fast therefore leaves the
  // index untouched on any error.
  std::vector<linalg::Vector> staged_columns(n);
  std::vector<Status> staged_status(n, Status::OK());
  const std::size_t grain = GrainForWork(full_feature_count_);
  ParallelFor(options_.parallel, 0, n, grain,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t j = lo; j < hi; ++j) {
                  linalg::Vector column = subjects.SubjectColumn(j);
                  if (fault::Enabled()) {
                    const fault::Injection injection =
                        fault::Hit("service.enroll", j);
                    if (injection.action == fault::Action::kError) {
                      staged_status[j] = injection.status;
                      continue;
                    }
                    if (injection.action == fault::Action::kNaN) {
                      for (double& x : column) {
                        x = std::numeric_limits<double>::quiet_NaN();
                      }
                    } else if (injection.action == fault::Action::kCorrupt) {
                      fault::ScrambleBytes(injection.seed, column.data(),
                                           column.size() * sizeof(double));
                    }
                  }
                  if (!AllFinite(column)) {
                    staged_status[j] = Status::CorruptData(StrFormat(
                        "subject %s has non-finite feature values",
                        subjects.subject_ids()[j].c_str()));
                    continue;
                  }
                  staged_columns[j] = std::move(column);
                }
              });

  // Serial pass: duplicate detection (against the index and within the
  // batch, in batch order) and report assembly.
  std::vector<std::size_t> survivors;
  survivors.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::string& id = subjects.subject_ids()[j];
    Status status = staged_status[j];
    if (status.ok() && Contains(id)) {
      status = Status::AlreadyExists(
          StrFormat("subject %s already enrolled", id.c_str()));
    }
    if (status.ok()) {
      for (std::size_t k : survivors) {
        if (subjects.subject_ids()[k] == id) {
          status = Status::AlreadyExists(StrFormat(
              "subject %s duplicated within the batch", id.c_str()));
          break;
        }
      }
    }
    if (status.ok()) {
      survivors.push_back(j);
      continue;
    }
    BatchItemReport item;
    item.index = j;
    item.id = id;
    item.stage = "enroll_screen";
    item.status = std::move(status);
    report->failed.push_back(std::move(item));
  }
  NP_RETURN_IF_ERROR(ResolveBatch(options_.failure_policy, *report));
  if (!report->failed.empty()) {
    metrics::Count("batch.subjects_skipped", report->failed.size());
  }

  // Write-ahead: one journal record covers the whole surviving batch, so
  // across a crash the batch commits all-or-nothing, exactly like the
  // in-memory commit loop below. A journal error (nothing reached disk)
  // fails the call with the index bit-unchanged.
  if (journal_ != nullptr && !survivors.empty()) {
    std::vector<PendingEnroll> pending(survivors.size());
    for (std::size_t s = 0; s < survivors.size(); ++s) {
      pending[s].id = &subjects.subject_ids()[survivors[s]];
      pending[s].column = &staged_columns[survivors[s]];
    }
    NP_RETURN_IF_ERROR(JournalEnrolls(pending));
  }

  // Commit phase: nothing below can fail.
  for (std::size_t j : survivors) {
    const std::string& id = subjects.subject_ids()[j];
    Shard& shard = shards_[ShardOf(id)];
    const auto pos = std::lower_bound(
        shard.entries.begin(), shard.entries.end(), id,
        [](const Entry& e, const std::string& want) { return e.id < want; });
    Entry entry;
    entry.id = id;
    entry.fingerprint = MakeFingerprint(staged_columns[j]);
    if (options_.retain_full_columns) {
      entry.full = std::move(staged_columns[j]);
    }
    shard.entries.insert(pos, std::move(entry));
    shard.clusters_dirty = true;
    ++size_;
    NoteMutation();
  }
  metrics::Count("service.enrolls", survivors.size());
  metrics::SetGauge("service.gallery_size", static_cast<double>(size_));
  return Status::OK();
}

Status IdentificationIndex::EnrollBatch(const connectome::GroupMatrix& subjects,
                                        BatchReport* report) {
  trace::ScopedEnable trace_enable(options_.trace.enabled);
  fault::ScopedSchedule fault_schedule(options_.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("service.enroll_batch");
  NP_RETURN_IF_ERROR(EnrollMatrixColumns(subjects, report));
  NP_RETURN_IF_ERROR(MaybeAutoRefresh());
  return MaybeCompact();
}

Status IdentificationIndex::EnrollStream(const connectome::MatrixStore& subjects,
                                         BatchReport* report,
                                         std::size_t window_cols) {
  trace::ScopedEnable trace_enable(options_.trace.enabled);
  fault::ScopedSchedule fault_schedule(options_.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("service.enroll_stream");

  BatchReport local_report;
  if (report == nullptr) report = &local_report;
  report->Clear();
  const std::size_t n = subjects.num_subjects();
  report->attempted = n;
  if (subjects.num_features() != full_feature_count_) {
    return Status::InvalidArgument(StrFormat(
        "EnrollBatch: subjects have %zu features, index holds %zu",
        subjects.num_features(), full_feature_count_));
  }

  // Staging in column windows: at most one window of full columns is
  // resident at a time. Fingerprints are small and stay in RAM; the full
  // columns the index retains — or must journal, since a write-ahead
  // record carries the full column — spill to disk until the batch
  // resolves, so the EnrollMatrixColumns invariant holds unchanged —
  // nothing touches a shard until every subject has been screened and
  // the policy resolved.
  std::vector<linalg::Vector> staged_fingerprints(n);
  std::vector<Status> staged_status(n, Status::OK());
  std::optional<SpillFile> spill;
  std::vector<std::size_t> spill_slot;
  if (options_.retain_full_columns || journal_ != nullptr) {
    auto created = SpillFile::Create();
    if (!created.ok()) return created.status();
    spill.emplace(std::move(created).value());
    spill_slot.assign(n, 0);
  }
  const std::size_t window =
      connectome::DeriveWindowCols(full_feature_count_, n, window_cols);
  const std::size_t grain = GrainForWork(full_feature_count_);
  linalg::Matrix slab;
  for (std::size_t c0 = 0; c0 < n; c0 += window) {
    const std::size_t count = std::min(window, n - c0);
    NP_RETURN_IF_ERROR(subjects.ReadColumns(c0, count, &slab));
    std::vector<linalg::Vector> columns(count);
    ParallelFor(options_.parallel, 0, count, grain,
                [&](std::size_t lo, std::size_t hi) {
                  for (std::size_t c = lo; c < hi; ++c) {
                    const std::size_t j = c0 + c;
                    linalg::Vector column(full_feature_count_);
                    for (std::size_t i = 0; i < full_feature_count_; ++i) {
                      column[i] = slab(i, c);
                    }
                    if (fault::Enabled()) {
                      const fault::Injection injection =
                          fault::Hit("service.enroll", j);
                      if (injection.action == fault::Action::kError) {
                        staged_status[j] = injection.status;
                        continue;
                      }
                      if (injection.action == fault::Action::kNaN) {
                        for (double& x : column) {
                          x = std::numeric_limits<double>::quiet_NaN();
                        }
                      } else if (injection.action == fault::Action::kCorrupt) {
                        fault::ScrambleBytes(injection.seed, column.data(),
                                             column.size() * sizeof(double));
                      }
                    }
                    if (!AllFinite(column)) {
                      staged_status[j] = Status::CorruptData(StrFormat(
                          "subject %s has non-finite feature values",
                          subjects.subject_ids()[j].c_str()));
                      continue;
                    }
                    staged_fingerprints[j] = MakeFingerprint(column);
                    if (spill.has_value()) columns[c] = std::move(column);
                  }
                });
    if (spill.has_value()) {
      for (std::size_t c = 0; c < count; ++c) {
        const std::size_t j = c0 + c;
        if (!staged_status[j].ok()) continue;
        spill_slot[j] = spill->num_columns();
        NP_RETURN_IF_ERROR(
            spill->AppendColumn(columns[c].data(), columns[c].size()));
      }
    }
  }

  // Serial pass: duplicate detection (against the index and within the
  // batch, in batch order) and report assembly — byte-for-byte the
  // EnrollMatrixColumns screen.
  std::vector<std::size_t> survivors;
  survivors.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    const std::string& id = subjects.subject_ids()[j];
    Status status = staged_status[j];
    if (status.ok() && Contains(id)) {
      status = Status::AlreadyExists(
          StrFormat("subject %s already enrolled", id.c_str()));
    }
    if (status.ok()) {
      for (std::size_t k : survivors) {
        if (subjects.subject_ids()[k] == id) {
          status = Status::AlreadyExists(StrFormat(
              "subject %s duplicated within the batch", id.c_str()));
          break;
        }
      }
    }
    if (status.ok()) {
      survivors.push_back(j);
      continue;
    }
    BatchItemReport item;
    item.index = j;
    item.id = id;
    item.stage = "enroll_screen";
    item.status = std::move(status);
    report->failed.push_back(std::move(item));
  }
  NP_RETURN_IF_ERROR(ResolveBatch(options_.failure_policy, *report));
  if (!report->failed.empty()) {
    metrics::Count("batch.subjects_skipped", report->failed.size());
  }

  // Read the surviving full columns back before touching any shard, so a
  // spill failure (file deleted mid-batch, injected `io.spill` fault)
  // propagates with the index bit-unchanged — no rollback needed.
  std::vector<linalg::Vector> staged_full(survivors.size());
  if (spill.has_value()) {
    std::vector<double> buffer;
    for (std::size_t s = 0; s < survivors.size(); ++s) {
      NP_RETURN_IF_ERROR(spill->ReadColumn(spill_slot[survivors[s]], &buffer));
      staged_full[s] = std::move(buffer);
      buffer.clear();
    }
  }

  // Write-ahead: the surviving batch as one record (see
  // EnrollMatrixColumns); the journaled columns are the spill read-backs
  // above, which are the bytes the commit loop enrolls.
  if (journal_ != nullptr && !survivors.empty()) {
    std::vector<PendingEnroll> pending(survivors.size());
    for (std::size_t s = 0; s < survivors.size(); ++s) {
      pending[s].id = &subjects.subject_ids()[survivors[s]];
      pending[s].column = &staged_full[s];
    }
    NP_RETURN_IF_ERROR(JournalEnrolls(pending));
  }

  // Commit phase: nothing below can fail.
  for (std::size_t s = 0; s < survivors.size(); ++s) {
    const std::size_t j = survivors[s];
    const std::string& id = subjects.subject_ids()[j];
    Shard& shard = shards_[ShardOf(id)];
    const auto pos = std::lower_bound(
        shard.entries.begin(), shard.entries.end(), id,
        [](const Entry& e, const std::string& want) { return e.id < want; });
    Entry entry;
    entry.id = id;
    entry.fingerprint = std::move(staged_fingerprints[j]);
    if (options_.retain_full_columns) {
      entry.full = std::move(staged_full[s]);
    }
    shard.entries.insert(pos, std::move(entry));
    shard.clusters_dirty = true;
    ++size_;
    NoteMutation();
  }
  metrics::Count("service.enrolls", survivors.size());
  metrics::SetGauge("service.gallery_size", static_cast<double>(size_));
  NP_RETURN_IF_ERROR(MaybeAutoRefresh());
  return MaybeCompact();
}

Status IdentificationIndex::Remove(const std::string& subject_id) {
  trace::ScopedEnable trace_enable(options_.trace.enabled);
  NP_TRACE_SCOPE("service.remove");
  Shard& shard = shards_[ShardOf(subject_id)];
  const auto pos = std::lower_bound(
      shard.entries.begin(), shard.entries.end(), subject_id,
      [](const Entry& e, const std::string& id) { return e.id < id; });
  if (pos == shard.entries.end() || pos->id != subject_id) {
    return Status::NotFound(
        StrFormat("Remove: subject %s not enrolled", subject_id.c_str()));
  }
  // Write-ahead: the removal is durable before the entry disappears (the
  // journal append does not touch shards, so `pos` stays valid).
  NP_RETURN_IF_ERROR(JournalRemove(subject_id));
  shard.entries.erase(pos);
  shard.clusters_dirty = true;
  --size_;
  NoteMutation();
  metrics::Count("service.removals", 1);
  metrics::SetGauge("service.gallery_size", static_cast<double>(size_));
  NP_RETURN_IF_ERROR(MaybeAutoRefresh());
  return MaybeCompact();
}

bool IdentificationIndex::Contains(const std::string& subject_id) const {
  const Shard& shard = shards_[ShardOf(subject_id)];
  const auto pos = std::lower_bound(
      shard.entries.begin(), shard.entries.end(), subject_id,
      [](const Entry& e, const std::string& id) { return e.id < id; });
  return pos != shard.entries.end() && pos->id == subject_id;
}

std::vector<std::string> IdentificationIndex::EnrolledIds() const {
  std::vector<std::string> ids;
  ids.reserve(size_);
  for (const Shard& shard : shards_) {
    for (const Entry& entry : shard.entries) ids.push_back(entry.id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void IdentificationIndex::NoteMutation() {
  ++sketch_staleness_;
  metrics::SetGauge("service.sketch_staleness",
                    static_cast<double>(sketch_staleness_));
}

Status IdentificationIndex::MaybeAutoRefresh() {
  if (options_.refresh_interval == 0) return Status::OK();
  if (sketch_staleness_ < options_.refresh_interval) return Status::OK();
  if (!options_.retain_full_columns || size_ < 2) return Status::OK();
  return RefreshSketch();
}

Status IdentificationIndex::RefreshSketch() {
  trace::ScopedEnable trace_enable(options_.trace.enabled);
  fault::ScopedSchedule fault_schedule(options_.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("service.refresh");
  NP_FAULT_POINT("service.refresh");
  if (!options_.retain_full_columns) {
    return Status::FailedPrecondition(
        "RefreshSketch: index was built with retain_full_columns = false");
  }
  if (size_ < 2) {
    return Status::FailedPrecondition(
        "RefreshSketch: need at least 2 enrolled subjects");
  }

  // Deterministic refit sample: evenly strided over the canonical
  // (ascending-id) gallery order, clamped so the leverage input stays
  // tall (features >= sampled subjects).
  std::vector<const Entry*> ordered;
  ordered.reserve(size_);
  for (const Shard& shard : shards_) {
    for (const Entry& entry : shard.entries) ordered.push_back(&entry);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Entry* a, const Entry* b) { return a->id < b->id; });
  const std::size_t sample = std::min(
      {options_.refresh_sample == 0 ? size_ : options_.refresh_sample, size_,
       full_feature_count_});
  if (sample < 2) {
    return Status::FailedPrecondition(
        "RefreshSketch: refit sample smaller than 2 subjects");
  }
  linalg::Matrix refit(full_feature_count_, sample);
  for (std::size_t j = 0; j < sample; ++j) {
    const Entry* entry = ordered[(j * size_) / sample];
    for (std::size_t i = 0; i < full_feature_count_; ++i) {
      refit(i, j) = entry->full[i];
    }
  }
  core::LeverageOptions leverage = options_.leverage;
  if (leverage.parallel.num_threads == 0) {
    leverage.parallel = options_.parallel;
  }
  linalg::Vector scores;
  NP_ASSIGN_OR_RETURN(scores, core::ComputeLeverageScores(refit, leverage));
  std::vector<std::size_t> selected =
      core::TopKIndices(scores, options_.num_features);
  if (selected.size() < 2) {
    return Status::FailedPrecondition(
        "RefreshSketch: fewer than 2 usable features");
  }
  selected_features_ = std::move(selected);

  // Re-project every member into the refreshed subspace.
  for (Shard& shard : shards_) {
    const std::size_t n = shard.entries.size();
    ParallelFor(options_.parallel, 0, n, GrainForWork(full_feature_count_),
                [&](std::size_t lo, std::size_t hi) {
                  for (std::size_t e = lo; e < hi; ++e) {
                    shard.entries[e].fingerprint =
                        MakeFingerprint(shard.entries[e].full);
                  }
                });
    shard.clusters_dirty = true;
  }
  sketch_staleness_ = 0;
  metrics::SetGauge("service.sketch_staleness", 0.0);
  metrics::Count("service.sketch_refreshes", 1);
  // The refitted subspace is snapshot state, not expressible as journal
  // records: checkpoint immediately so a reopened index matches this one.
  // On a checkpoint error the refresh stays committed in memory and the
  // on-disk state still recovers consistently (to the pre-refresh
  // subspace over the same member set).
  if (journal_ != nullptr) return Checkpoint();
  return Status::OK();
}

void IdentificationIndex::RebuildShardClusters(std::size_t shard_index) {
  Shard& shard = shards_[shard_index];
  shard.clusters.clear();
  shard.clusters_dirty = false;
  const std::size_t n = shard.entries.size();
  if (n == 0) return;
  const std::size_t dim = selected_features_.size();

  std::size_t k = options_.clusters_per_shard;
  if (k == 0) {
    k = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
  }
  k = std::min(k, n);
  if (n < options_.min_cluster_shard_size || k <= 1) {
    // Flat shard: one cluster holding everything, never pruned
    // (cos_radius -1 makes the bound 1 for every probe).
    Cluster flat;
    flat.centroid.assign(dim, 0.0);
    flat.cos_radius = -1.0;
    flat.sin_radius = 0.0;
    flat.members.resize(n);
    for (std::size_t e = 0; e < n; ++e) flat.members[e] = e;
    shard.clusters.push_back(std::move(flat));
    return;
  }

  // Seeded deterministic k-means on the unit fingerprints: one random
  // first center, farthest-point (max-min cosine distance, ties to the
  // lowest index) for the rest, then a fixed number of Lloyd rounds.
  // Everything is a pure function of (sorted member set, seed), which is
  // what makes the enroll/remove round-trip property hold.
  Rng rng(options_.seed ^ (0x9e3779b97f4a7c15ULL *
                           (static_cast<std::uint64_t>(shard_index) + 1)));
  std::vector<std::size_t> centers;
  centers.reserve(k);
  centers.push_back(static_cast<std::size_t>(rng.UniformInt(n)));
  std::vector<double> best_sim(n, -2.0);
  while (centers.size() < k) {
    const linalg::Vector& last = shard.entries[centers.back()].fingerprint;
    for (std::size_t e = 0; e < n; ++e) {
      best_sim[e] = std::max(best_sim[e],
                             DotProduct(shard.entries[e].fingerprint, last));
    }
    std::size_t farthest = 0;
    double farthest_sim = 2.0;
    for (std::size_t e = 0; e < n; ++e) {
      if (best_sim[e] < farthest_sim) {
        farthest_sim = best_sim[e];
        farthest = e;
      }
    }
    centers.push_back(farthest);
  }

  std::vector<linalg::Vector> centroids;
  centroids.reserve(k);
  for (std::size_t c : centers) {
    centroids.push_back(shard.entries[c].fingerprint);
  }
  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t iter = 0; iter < options_.kmeans_iterations; ++iter) {
    // Assignment: nearest centroid by cosine similarity, ties to the
    // lowest cluster index.
    for (std::size_t e = 0; e < n; ++e) {
      double best = -2.0;
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double sim =
            DotProduct(shard.entries[e].fingerprint, centroids[c]);
        if (sim > best) {
          best = sim;
          best_c = c;
        }
      }
      assignment[e] = best_c;
    }
    // Update: normalized mean of the members; empty clusters keep their
    // previous centroid.
    for (std::size_t c = 0; c < k; ++c) {
      linalg::Vector mean(dim, 0.0);
      std::size_t count = 0;
      for (std::size_t e = 0; e < n; ++e) {
        if (assignment[e] != c) continue;
        ++count;
        const linalg::Vector& f = shard.entries[e].fingerprint;
        for (std::size_t d = 0; d < dim; ++d) mean[d] += f[d];
      }
      if (count == 0) continue;
      double norm_sq = 0.0;
      for (double x : mean) norm_sq += x * x;
      const double norm = std::sqrt(norm_sq);
      if (norm > 0.0) {
        for (double& x : mean) x /= norm;
        centroids[c] = std::move(mean);
      }
    }
  }

  shard.clusters.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    shard.clusters[c].centroid = centroids[c];
    shard.clusters[c].members.clear();
  }
  for (std::size_t e = 0; e < n; ++e) {
    shard.clusters[assignment[e]].members.push_back(e);
  }
  // Drop empty clusters (keeping relative order) and compute radii.
  std::size_t out = 0;
  for (std::size_t c = 0; c < k; ++c) {
    if (shard.clusters[c].members.empty()) continue;
    if (out != c) shard.clusters[out] = std::move(shard.clusters[c]);
    Cluster& cluster = shard.clusters[out];
    double min_sim = 2.0;
    for (std::size_t e : cluster.members) {
      min_sim = std::min(
          min_sim, DotProduct(shard.entries[e].fingerprint, cluster.centroid));
    }
    cluster.cos_radius = std::clamp(min_sim, -1.0, 1.0);
    cluster.sin_radius =
        std::sqrt(std::max(0.0, 1.0 - cluster.cos_radius * cluster.cos_radius));
    ++out;
  }
  shard.clusters.resize(out);
}

void IdentificationIndex::RebuildDirtyClusters() {
  NP_TRACE_SCOPE("service.rebuild_clusters");
  std::vector<std::size_t> dirty;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].clusters_dirty) dirty.push_back(s);
  }
  if (dirty.empty()) return;
  // Shards rebuild independently (disjoint state), one work item each.
  ParallelFor(options_.parallel, 0, dirty.size(), 1,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  RebuildShardClusters(dirty[i]);
                }
              });
  metrics::Count("service.cluster_rebuilds", dirty.size());
}

void IdentificationIndex::ProbeShard(const linalg::Vector& probe_fingerprint,
                                     std::size_t shard_index, bool brute_force,
                                     ShardCandidate* out) const {
  const Shard& shard = shards_[shard_index];
  *out = ShardCandidate{};
  out->shard = shard_index;
  const std::size_t n = shard.entries.size();
  if (n == 0) return;

  double best = 0.0, second = 0.0;
  std::size_t best_entry = 0;
  bool has_best = false, has_second = false;
  std::size_t scanned = 0;
  const auto scan_entry = [&](std::size_t e) {
    const double sim =
        DotProduct(probe_fingerprint, shard.entries[e].fingerprint);
    ++scanned;
    if (!has_best || BeatsBest(sim, shard.entries[e].id, best,
                               shard.entries[best_entry].id)) {
      if (has_best) {
        second = best;
        has_second = true;
      }
      best = sim;
      best_entry = e;
      has_best = true;
    } else if (!has_second || sim > second) {
      second = sim;
      has_second = true;
    }
  };

  if (brute_force || shard.clusters.size() <= 1) {
    for (std::size_t e = 0; e < n; ++e) scan_entry(e);
  } else {
    // Score every centroid, then visit clusters in decreasing bound
    // order; stop as soon as a bound cannot beat the current best (the
    // ordering makes every later bound no larger).
    const std::size_t k = shard.clusters.size();
    std::vector<std::pair<double, std::size_t>> order(k);
    for (std::size_t c = 0; c < k; ++c) {
      const Cluster& cluster = shard.clusters[c];
      const double cq = DotProduct(probe_fingerprint, cluster.centroid);
      order[c] = {ClusterBound(cq, cluster.cos_radius, cluster.sin_radius), c};
    }
    std::sort(order.begin(), order.end(),
              [](const std::pair<double, std::size_t>& a,
                 const std::pair<double, std::size_t>& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (const auto& [bound, c] : order) {
      if (has_best && bound < best - kPruneSlack) break;
      for (std::size_t e : shard.clusters[c].members) scan_entry(e);
    }
  }
  out->best_entry = best_entry;
  out->best = best;
  out->second = second;
  out->scanned = scanned;
  out->has_best = has_best;
  out->has_second = has_second;
}

IdentifyMatch IdentificationIndex::MergeShardCandidates(
    const ShardCandidate* candidates, std::size_t count) const {
  // Ascending shard order; the (similarity, id) tie-break makes the
  // outcome independent of shard layout and execution order.
  IdentifyMatch match;
  double best = 0.0, second = 0.0;
  const Entry* best_entry = nullptr;
  bool has_second = false;
  for (std::size_t s = 0; s < count; ++s) {
    const ShardCandidate& c = candidates[s];
    if (!c.has_best) continue;
    match.candidates_scanned += c.scanned;
    const Entry& entry = shards_[c.shard].entries[c.best_entry];
    if (best_entry == nullptr ||
        BeatsBest(c.best, entry.id, best, best_entry->id)) {
      if (best_entry != nullptr) {
        second = std::max(second, best);
        has_second = true;
      }
      best = c.best;
      best_entry = &entry;
    } else if (!has_second || c.best > second) {
      second = c.best;
      has_second = true;
    }
    if (c.has_second && (!has_second || c.second > second)) {
      second = c.second;
      has_second = true;
    }
  }
  if (best_entry != nullptr) {
    match.subject_id = best_entry->id;
    match.similarity = best;
    match.margin = has_second ? best - second : 0.0;
  }
  return match;
}

Result<IdentifyMatch> IdentificationIndex::Identify(
    const linalg::Vector& probe_features) {
  trace::ScopedEnable trace_enable(options_.trace.enabled);
  fault::ScopedSchedule fault_schedule(options_.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("service.identify");
  NP_FAULT_POINT("service.probe");
  if (size_ == 0) {
    return Status::FailedPrecondition("Identify: empty gallery");
  }
  if (probe_features.size() != full_feature_count_) {
    return Status::InvalidArgument(StrFormat(
        "Identify: probe has %zu features, index holds %zu",
        probe_features.size(), full_feature_count_));
  }
  if (!AllFinite(probe_features)) {
    return Status::CorruptData("Identify: probe has non-finite values");
  }
  RebuildDirtyClusters();
  const linalg::Vector fingerprint = MakeFingerprint(probe_features);

  const std::size_t num_shards = shards_.size();
  std::vector<ShardCandidate> candidates(num_shards);
  const std::size_t shard_work =
      (size_ / num_shards + 1) * selected_features_.size();
  ParallelFor(options_.parallel, 0, num_shards, GrainForWork(shard_work),
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t s = lo; s < hi; ++s) {
                  ProbeShard(fingerprint, s, /*brute_force=*/false,
                             &candidates[s]);
                }
              });
  IdentifyMatch match = MergeShardCandidates(candidates.data(), num_shards);
  if (options_.exact_rescore_margin > 0.0 && size_ > 1 &&
      match.margin < options_.exact_rescore_margin) {
    const std::size_t scanned_before = match.candidates_scanned;
    for (std::size_t s = 0; s < num_shards; ++s) {
      ProbeShard(fingerprint, s, /*brute_force=*/true, &candidates[s]);
    }
    match = MergeShardCandidates(candidates.data(), num_shards);
    match.candidates_scanned += scanned_before;
    metrics::Count("service.exact_rescores", 1);
  }
  metrics::Count("service.identifies", 1);
  metrics::Count("service.candidates_scanned", match.candidates_scanned);
  return match;
}

Result<BatchIdentifyResult> IdentificationIndex::IdentifyBatchImpl(
    const connectome::GroupMatrix& probes, BatchReport* report,
    bool brute_force) {
  if (size_ == 0) {
    return Status::FailedPrecondition("IdentifyBatch: empty gallery");
  }
  if (probes.num_features() != full_feature_count_) {
    return Status::InvalidArgument(StrFormat(
        "IdentifyBatch: probes have %zu features, index holds %zu",
        probes.num_features(), full_feature_count_));
  }
  if (probes.num_subjects() == 0) {
    return Status::InvalidArgument("IdentifyBatch: no probes");
  }
  RebuildDirtyClusters();

  // Screen + fingerprint every probe (parallel, disjoint slots).
  const std::size_t n = probes.num_subjects();
  BatchReport local_report;
  if (report == nullptr) report = &local_report;
  report->Clear();
  report->attempted = n;
  std::vector<linalg::Vector> fingerprints(n);
  std::vector<Status> probe_status(n, Status::OK());
  ParallelFor(options_.parallel, 0, n, GrainForWork(full_feature_count_),
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t j = lo; j < hi; ++j) {
                  linalg::Vector column = probes.SubjectColumn(j);
                  if (fault::Enabled()) {
                    const fault::Injection injection =
                        fault::Hit("service.probe", j);
                    if (injection.action == fault::Action::kError) {
                      probe_status[j] = injection.status;
                      continue;
                    }
                    if (injection.action == fault::Action::kNaN) {
                      for (double& x : column) {
                        x = std::numeric_limits<double>::quiet_NaN();
                      }
                    } else if (injection.action == fault::Action::kCorrupt) {
                      fault::ScrambleBytes(injection.seed, column.data(),
                                           column.size() * sizeof(double));
                    }
                  }
                  if (!AllFinite(column)) {
                    probe_status[j] = Status::CorruptData(StrFormat(
                        "probe %s has non-finite feature values",
                        probes.subject_ids()[j].c_str()));
                    continue;
                  }
                  fingerprints[j] = MakeFingerprint(column);
                }
              });
  std::vector<std::size_t> survivors;
  survivors.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (probe_status[j].ok()) {
      survivors.push_back(j);
      continue;
    }
    BatchItemReport item;
    item.index = j;
    item.id = probes.subject_ids()[j];
    item.stage = "probe_screen";
    item.status = probe_status[j];
    report->failed.push_back(std::move(item));
  }
  NP_RETURN_IF_ERROR(ResolveBatch(options_.failure_policy, *report));
  if (!report->failed.empty()) {
    metrics::Count("batch.subjects_skipped", report->failed.size());
  }

  // Fan out (probe x shard) work items; each writes its own slot, and the
  // per-probe merge walks shards in ascending order — bitwise identical
  // at any thread count.
  const std::size_t num_shards = shards_.size();
  const std::size_t num_survivors = survivors.size();
  std::vector<ShardCandidate> candidates(num_survivors * num_shards);
  const std::size_t pair_work =
      (size_ / num_shards + 1) * selected_features_.size();
  {
    NP_TRACE_SCOPE("service.identify_batch.probe");
    ParallelFor(options_.parallel, 0, num_survivors * num_shards,
                GrainForWork(pair_work),
                [&](std::size_t lo, std::size_t hi) {
                  for (std::size_t i = lo; i < hi; ++i) {
                    const std::size_t p = i / num_shards;
                    const std::size_t s = i % num_shards;
                    ProbeShard(fingerprints[survivors[p]], s, brute_force,
                               &candidates[i]);
                  }
                });
  }

  BatchIdentifyResult result;
  result.probe_ids.reserve(num_survivors);
  result.matches.resize(num_survivors);
  std::vector<std::size_t> rescore;
  for (std::size_t p = 0; p < num_survivors; ++p) {
    result.probe_ids.push_back(probes.subject_ids()[survivors[p]]);
    result.matches[p] =
        MergeShardCandidates(&candidates[p * num_shards], num_shards);
    if (!brute_force && options_.exact_rescore_margin > 0.0 && size_ > 1 &&
        result.matches[p].margin < options_.exact_rescore_margin) {
      rescore.push_back(p);
    }
  }

  // Low-margin probes fall back to an exact full rescore (disjoint
  // per-probe slots again, so the fallback is thread-count-invariant too).
  if (!rescore.empty()) {
    NP_TRACE_SCOPE("service.identify_batch.rescore");
    const std::size_t rescore_work = size_ * selected_features_.size();
    ParallelFor(
        options_.parallel, 0, rescore.size(), GrainForWork(rescore_work),
        [&](std::size_t lo, std::size_t hi) {
          std::vector<ShardCandidate> local(num_shards);
          for (std::size_t i = lo; i < hi; ++i) {
            const std::size_t p = rescore[i];
            for (std::size_t s = 0; s < num_shards; ++s) {
              ProbeShard(fingerprints[survivors[p]], s, /*brute_force=*/true,
                         &local[s]);
            }
            IdentifyMatch exact =
                MergeShardCandidates(local.data(), num_shards);
            exact.candidates_scanned += result.matches[p].candidates_scanned;
            result.matches[p] = std::move(exact);
          }
        });
    metrics::Count("service.exact_rescores", rescore.size());
  }

  std::size_t correct = 0;
  std::size_t total_scanned = 0;
  for (std::size_t p = 0; p < num_survivors; ++p) {
    if (result.matches[p].subject_id == result.probe_ids[p]) ++correct;
    total_scanned += result.matches[p].candidates_scanned;
  }
  result.accuracy = num_survivors == 0
                        ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(num_survivors);
  metrics::Count("service.identifies", num_survivors);
  metrics::Count("service.candidates_scanned", total_scanned);
  return result;
}

Result<BatchIdentifyResult> IdentificationIndex::IdentifyBatch(
    const connectome::GroupMatrix& probes, BatchReport* report) {
  trace::ScopedEnable trace_enable(options_.trace.enabled);
  fault::ScopedSchedule fault_schedule(options_.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("service.identify_batch");
  return IdentifyBatchImpl(probes, report, /*brute_force=*/false);
}

Result<BatchIdentifyResult> IdentificationIndex::IdentifyBatchBruteForce(
    const connectome::GroupMatrix& probes, BatchReport* report) {
  trace::ScopedEnable trace_enable(options_.trace.enabled);
  fault::ScopedSchedule fault_schedule(options_.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  NP_TRACE_SCOPE("service.identify_batch_brute");
  return IdentifyBatchImpl(probes, report, /*brute_force=*/true);
}

std::string IdentificationIndex::DebugStateString() {
  RebuildDirtyClusters();
  std::string out = StrFormat("features:%zu selected:%zu shards:%zu\n",
                              full_feature_count_, selected_features_.size(),
                              shards_.size());
  out += "selected_rows:";
  for (std::size_t row : selected_features_) out += StrFormat(" %zu", row);
  out += "\n";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    out += StrFormat("shard %zu (%zu entries)\n", s, shard.entries.size());
    for (const Entry& entry : shard.entries) {
      out += StrFormat("  %s:", entry.id.c_str());
      for (double x : entry.fingerprint) {
        out += StrFormat(" %016llx",
                         static_cast<unsigned long long>(
                             std::bit_cast<std::uint64_t>(x)));
      }
      out += "\n";
    }
    for (std::size_t c = 0; c < shard.clusters.size(); ++c) {
      const Cluster& cluster = shard.clusters[c];
      out += StrFormat(
          "  cluster %zu cos_r=%016llx members:", c,
          static_cast<unsigned long long>(
              std::bit_cast<std::uint64_t>(cluster.cos_radius)));
      for (std::size_t e : cluster.members) out += StrFormat(" %zu", e);
      out += "\n";
    }
  }
  return out;
}

}  // namespace neuroprint::service
