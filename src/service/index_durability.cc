// Durability for IdentificationIndex: snapshot (de)serialization, the
// write-ahead journal record codec, and the durable open/create/compact
// paths. The mutation hooks (journal-before-commit) live with the
// mutation code in identification_index.cc; everything here is the
// storage layer they call into.
//
// Snapshot format ("NPIX" v1, little-endian):
//
//   magic "NPIX" | u32 version | u64 payload_bytes | u32 crc32c(payload) |
//   payload:
//     u64 full_feature_count | u8 retain_full_columns | u64 staleness |
//     u64 selected_count, u64 rows... |
//     u64 entry_count, per entry (ascending id):
//       u32 id_length, id bytes |
//       selected_count f64 fingerprint values (bitwise — NOT recomputed
//       on load, so a reopened index is bit-identical) |
//       full_feature_count f64 values when retain_full_columns
//
// Journal record payloads (framing + CRC are JournalWriter's):
//
//   u8 1 (enroll) | u32 count, per subject:
//       u32 id_length, id bytes, full_feature_count f64 values
//   u8 2 (remove) | u32 id_length, id bytes
//
// Enroll records carry the *screened* full column (post fault-injection,
// finite-checked), and a whole batch is ONE record: replay re-derives
// each fingerprint with MakeFingerprint, which is deterministic, so
// recovery commits exactly the bytes the live index committed — and a
// batch is all-or-nothing across a crash, like the in-memory commit
// phase it mirrors.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <utility>

#include "service/identification_index.h"
#include "util/check.h"
#include "util/crc32c.h"
#include "util/endian.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace neuroprint::service {
namespace {

constexpr char kSnapshotMagic[4] = {'N', 'P', 'I', 'X'};
constexpr std::uint32_t kSnapshotVersion = 1;
// magic + version + payload size + crc.
constexpr std::size_t kSnapshotHeaderBytes = 4 + 4 + 8 + 4;
// Same id bound as the NPGM container: protects the decoders from
// allocating against a scrambled length field.
constexpr std::uint32_t kMaxIdBytes = 4096;
constexpr std::uint64_t kMaxSnapshotFeatures = 1ull << 32;
constexpr std::uint64_t kMaxSnapshotEntries = 1ull << 32;

constexpr std::uint8_t kRecordEnroll = 1;
constexpr std::uint8_t kRecordRemove = 2;

constexpr const char* kSnapshotFile = "snapshot.npix";
constexpr const char* kJournalFile = "journal.wal";

std::string LatchDataDirectory() {
  const char* env = std::getenv("NEUROPRINT_DATA_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

// The directory a durable index lives in: explicit option first, then the
// latched environment fallback, else an error naming both knobs.
Result<std::string> ResolveDataDir(const DurabilityOptions& durability) {
  if (durability.sync_every == 0) {
    return Status::InvalidArgument(
        "DurabilityOptions: sync_every must be >= 1");
  }
  if (!durability.data_dir.empty()) return durability.data_dir;
  if (!DataDirectory().empty()) return DataDirectory();
  return Status::InvalidArgument(
      "durable index: no data directory — set DurabilityOptions::data_dir "
      "or the NEUROPRINT_DATA_DIR environment variable");
}

std::string SnapshotPathIn(const std::string& dir) {
  return (std::filesystem::path(dir) / kSnapshotFile).string();
}

std::string JournalPathIn(const std::string& dir) {
  return (std::filesystem::path(dir) / kJournalFile).string();
}

// Bounds-checked little-endian cursor over a decoded payload; every
// reader returns false instead of walking past the end, and the callers
// turn false into CorruptData.
class PayloadCursor {
 public:
  PayloadCursor(const std::uint8_t* data, std::size_t size)
      : p_(data), remaining_(size) {}

  template <typename T>
  bool Read(T* value) {
    if (remaining_ < sizeof(T)) return false;
    *value = ReadLE<T>(p_);
    p_ += sizeof(T);
    remaining_ -= sizeof(T);
    return true;
  }

  bool ReadString(std::uint32_t length, std::string* out) {
    if (remaining_ < length) return false;
    out->assign(reinterpret_cast<const char*>(p_), length);
    p_ += length;
    remaining_ -= length;
    return true;
  }

  bool ReadDoubles(std::size_t count, linalg::Vector* out) {
    if (remaining_ < count * sizeof(double)) return false;
    out->resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      (*out)[i] = ReadLE<double>(p_ + i * sizeof(double));
    }
    p_ += count * sizeof(double);
    remaining_ -= count * sizeof(double);
    return true;
  }

  std::size_t remaining() const { return remaining_; }

 private:
  const std::uint8_t* p_;
  std::size_t remaining_;
};

}  // namespace

const std::string& DataDirectory() {
  static const std::string dir = LatchDataDirectory();
  return dir;
}

Result<std::vector<std::uint8_t>> IdentificationIndex::SerializeSnapshot()
    const {
  const std::size_t dim = selected_features_.size();
  std::vector<std::uint8_t> payload;
  payload.reserve(64 + dim * 8 +
                  size_ * (8 + dim * sizeof(double) +
                           (options_.retain_full_columns
                                ? full_feature_count_ * sizeof(double)
                                : 0)));
  AppendLE(payload, static_cast<std::uint64_t>(full_feature_count_));
  payload.push_back(options_.retain_full_columns ? std::uint8_t{1}
                                                 : std::uint8_t{0});
  AppendLE(payload, static_cast<std::uint64_t>(sketch_staleness_));
  AppendLE(payload, static_cast<std::uint64_t>(dim));
  for (std::size_t row : selected_features_) {
    AppendLE(payload, static_cast<std::uint64_t>(row));
  }

  // Entries in ascending-id order across all shards: the shard layout is
  // a pure function of (id, num_shards) and re-derived on load, so the
  // snapshot stays valid if only num_shards changes.
  std::vector<const Entry*> ordered;
  ordered.reserve(size_);
  for (const Shard& shard : shards_) {
    for (const Entry& entry : shard.entries) ordered.push_back(&entry);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const Entry* a, const Entry* b) { return a->id < b->id; });
  AppendLE(payload, static_cast<std::uint64_t>(ordered.size()));
  for (const Entry* entry : ordered) {
    if (entry->id.size() > kMaxIdBytes) {
      return Status::InvalidArgument(StrFormat(
          "SaveSnapshot: subject id of %zu bytes exceeds the format bound",
          entry->id.size()));
    }
    AppendLE(payload, static_cast<std::uint32_t>(entry->id.size()));
    payload.insert(payload.end(), entry->id.begin(), entry->id.end());
    for (double x : entry->fingerprint) AppendLE(payload, x);
    if (options_.retain_full_columns) {
      for (double x : entry->full) AppendLE(payload, x);
    }
  }

  std::vector<std::uint8_t> image;
  image.reserve(kSnapshotHeaderBytes + payload.size());
  image.insert(image.end(), kSnapshotMagic, kSnapshotMagic + 4);
  AppendLE(image, kSnapshotVersion);
  AppendLE(image, static_cast<std::uint64_t>(payload.size()));
  AppendLE(image, crc32c::Value(payload.data(), payload.size()));
  image.insert(image.end(), payload.begin(), payload.end());
  return image;
}

Status IdentificationIndex::SaveSnapshot(const std::string& path) const {
  std::vector<std::uint8_t> image;
  NP_ASSIGN_OR_RETURN(image, SerializeSnapshot());
  NP_RETURN_IF_ERROR(AtomicWriteFile(path, image.data(), image.size()));
  metrics::Count("service.snapshot_saves", 1);
  metrics::SetGauge("service.snapshot_bytes",
                    static_cast<double>(image.size()));
  return Status::OK();
}

Result<IdentificationIndex> IdentificationIndex::OpenFromSnapshot(
    const std::string& path, const IndexOptions& options) {
  fault::ScopedSchedule fault_schedule(options.fault.schedule);
  NP_RETURN_IF_ERROR(fault_schedule.status());
  if (options.num_shards == 0) {
    return Status::InvalidArgument("IndexOptions: num_shards must be > 0");
  }
  if (options.kmeans_iterations == 0) {
    return Status::InvalidArgument(
        "IndexOptions: kmeans_iterations must be > 0");
  }
  // The read side honors only clean error injection: recovery must be
  // able to run while a torn/crash schedule aimed at the writers is
  // still active.
  if (fault::Enabled()) {
    const fault::Injection injection = fault::Hit("io.snapshot");
    if (injection.action == fault::Action::kError) return injection.status;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open index snapshot: " + path);
  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kSnapshotMagic, 4) != 0) {
    return Status::CorruptData("not an index snapshot: " + path);
  }
  std::uint32_t version = 0;
  std::uint64_t payload_size = 0;
  std::uint32_t stored_crc = 0;
  if (!ReadLE(in, version) || !ReadLE(in, payload_size) ||
      !ReadLE(in, stored_crc)) {
    return Status::CorruptData("truncated index-snapshot header: " + path);
  }
  if (version != kSnapshotVersion) {
    return Status::Unimplemented(
        StrFormat("unsupported index-snapshot version %u", version));
  }
  const std::streampos data_begin = in.tellg();
  in.seekg(0, std::ios::end);
  const std::streampos file_end = in.tellg();
  if (data_begin < 0 || file_end < data_begin ||
      static_cast<std::uint64_t>(file_end - data_begin) != payload_size) {
    return Status::CorruptData(StrFormat(
        "index snapshot payload size mismatch (header promises %llu "
        "bytes): %s",
        static_cast<unsigned long long>(payload_size), path.c_str()));
  }
  in.seekg(data_begin);
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(payload_size));
  if (payload_size > 0 &&
      !in.read(reinterpret_cast<char*>(payload.data()),
               static_cast<std::streamsize>(payload.size()))) {
    return Status::CorruptData("unreadable index-snapshot payload: " + path);
  }
  const std::uint32_t computed_crc =
      crc32c::Value(payload.data(), payload.size());
  if (computed_crc != stored_crc) {
    return Status::CorruptData(StrFormat(
        "index snapshot checksum mismatch (stored %08x, computed %08x): %s",
        stored_crc, computed_crc, path.c_str()));
  }

  PayloadCursor cursor(payload.data(), payload.size());
  std::uint64_t feature_count = 0;
  std::uint8_t retain = 0;
  std::uint64_t staleness = 0;
  std::uint64_t dim = 0;
  if (!cursor.Read(&feature_count) || !cursor.Read(&retain) ||
      !cursor.Read(&staleness) || !cursor.Read(&dim)) {
    return Status::CorruptData("truncated index-snapshot payload: " + path);
  }
  if (feature_count == 0 || feature_count > kMaxSnapshotFeatures ||
      retain > 1 || dim < 2 || dim > feature_count) {
    return Status::CorruptData("implausible index-snapshot metadata: " +
                               path);
  }
  if ((retain != 0) != options.retain_full_columns) {
    return Status::FailedPrecondition(StrFormat(
        "index snapshot was written with retain_full_columns = %s but the "
        "open options say %s",
        retain != 0 ? "true" : "false",
        options.retain_full_columns ? "true" : "false"));
  }

  IdentificationIndex index;
  index.options_ = options;
  index.full_feature_count_ = static_cast<std::size_t>(feature_count);
  index.sketch_staleness_ = static_cast<std::size_t>(staleness);
  index.shards_.resize(options.num_shards);
  index.selected_features_.resize(static_cast<std::size_t>(dim));
  for (std::size_t i = 0; i < index.selected_features_.size(); ++i) {
    std::uint64_t row = 0;
    if (!cursor.Read(&row)) {
      return Status::CorruptData("truncated index-snapshot payload: " + path);
    }
    if (row >= feature_count) {
      return Status::CorruptData(
          "index snapshot selects a feature row out of range: " + path);
    }
    index.selected_features_[i] = static_cast<std::size_t>(row);
  }

  std::uint64_t entry_count = 0;
  if (!cursor.Read(&entry_count) || entry_count > kMaxSnapshotEntries) {
    return Status::CorruptData("truncated index-snapshot payload: " + path);
  }
  std::string previous_id;
  for (std::uint64_t e = 0; e < entry_count; ++e) {
    std::uint32_t id_length = 0;
    if (!cursor.Read(&id_length) || id_length > kMaxIdBytes) {
      return Status::CorruptData("bad subject id in index snapshot: " + path);
    }
    Entry entry;
    if (!cursor.ReadString(id_length, &entry.id) ||
        !cursor.ReadDoubles(index.selected_features_.size(),
                            &entry.fingerprint)) {
      return Status::CorruptData("truncated index-snapshot entry: " + path);
    }
    if (retain != 0 &&
        !cursor.ReadDoubles(index.full_feature_count_, &entry.full)) {
      return Status::CorruptData("truncated index-snapshot entry: " + path);
    }
    // Strictly ascending ids: guards duplicates and lets each shard take
    // its entries by push_back while staying sorted.
    if (e > 0 && !(previous_id < entry.id)) {
      return Status::CorruptData("index-snapshot ids out of order: " + path);
    }
    previous_id = entry.id;
    Shard& shard = index.shards_[index.ShardOf(entry.id)];
    shard.entries.push_back(std::move(entry));
    shard.clusters_dirty = true;
  }
  if (cursor.remaining() != 0) {
    return Status::CorruptData(StrFormat(
        "index snapshot has %zu trailing payload bytes: %s",
        cursor.remaining(), path.c_str()));
  }
  index.size_ = static_cast<std::size_t>(entry_count);
  metrics::Count("service.snapshot_loads", 1);
  metrics::SetGauge("service.gallery_size", static_cast<double>(index.size_));
  metrics::SetGauge("service.sketch_staleness",
                    static_cast<double>(index.sketch_staleness_));
  return index;
}

Status IdentificationIndex::JournalEnrolls(
    const std::vector<PendingEnroll>& pending) {
  if (journal_ == nullptr || pending.empty()) return Status::OK();
  std::vector<std::uint8_t> payload;
  payload.reserve(5 + pending.size() *
                          (8 + full_feature_count_ * sizeof(double)));
  payload.push_back(kRecordEnroll);
  AppendLE(payload, static_cast<std::uint32_t>(pending.size()));
  for (const PendingEnroll& enroll : pending) {
    if (enroll.id->size() > kMaxIdBytes) {
      return Status::InvalidArgument(StrFormat(
          "Enroll: subject id of %zu bytes exceeds the journal bound",
          enroll.id->size()));
    }
    NP_CHECK_EQ(enroll.column->size(), full_feature_count_);
    AppendLE(payload, static_cast<std::uint32_t>(enroll.id->size()));
    payload.insert(payload.end(), enroll.id->begin(), enroll.id->end());
    for (double x : *enroll.column) AppendLE(payload, x);
  }
  return journal_->Append(payload.data(), payload.size());
}

Status IdentificationIndex::JournalRemove(const std::string& subject_id) {
  if (journal_ == nullptr) return Status::OK();
  if (subject_id.size() > kMaxIdBytes) {
    return Status::InvalidArgument(StrFormat(
        "Remove: subject id of %zu bytes exceeds the journal bound",
        subject_id.size()));
  }
  std::vector<std::uint8_t> payload;
  payload.reserve(5 + subject_id.size());
  payload.push_back(kRecordRemove);
  AppendLE(payload, static_cast<std::uint32_t>(subject_id.size()));
  payload.insert(payload.end(), subject_id.begin(), subject_id.end());
  return journal_->Append(payload.data(), payload.size());
}

Status IdentificationIndex::ApplyJournalRecord(const std::uint8_t* payload,
                                               std::size_t size) {
  PayloadCursor cursor(payload, size);
  std::uint8_t type = 0;
  if (!cursor.Read(&type)) {
    return Status::CorruptData("empty journal record");
  }
  if (type == kRecordEnroll) {
    std::uint32_t count = 0;
    if (!cursor.Read(&count)) {
      return Status::CorruptData("truncated journal enroll record");
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t id_length = 0;
      std::string id;
      linalg::Vector column;
      if (!cursor.Read(&id_length) || id_length > kMaxIdBytes ||
          !cursor.ReadString(id_length, &id) ||
          !cursor.ReadDoubles(full_feature_count_, &column)) {
        return Status::CorruptData("truncated journal enroll record");
      }
      // Already enrolled: this record predates the snapshot (a checkpoint
      // crashed after publishing it but before truncating the journal) —
      // replay converges by skipping, not failing.
      if (Contains(id)) continue;
      CommitEnroll(id, std::move(column));
    }
  } else if (type == kRecordRemove) {
    std::uint32_t id_length = 0;
    std::string id;
    if (!cursor.Read(&id_length) || id_length > kMaxIdBytes ||
        !cursor.ReadString(id_length, &id)) {
      return Status::CorruptData("truncated journal remove record");
    }
    Shard& shard = shards_[ShardOf(id)];
    const auto pos = std::lower_bound(
        shard.entries.begin(), shard.entries.end(), id,
        [](const Entry& e, const std::string& want) { return e.id < want; });
    // Absent: redundant like the enroll case above — skip.
    if (pos == shard.entries.end() || pos->id != id) return Status::OK();
    shard.entries.erase(pos);
    shard.clusters_dirty = true;
    --size_;
    NoteMutation();
  } else {
    return Status::CorruptData(
        StrFormat("unknown journal record type %u", type));
  }
  if (cursor.remaining() != 0) {
    return Status::CorruptData(StrFormat(
        "journal record has %zu trailing bytes", cursor.remaining()));
  }
  return Status::OK();
}

Result<IdentificationIndex> IdentificationIndex::CreateDurable(
    const connectome::GroupMatrix& reference,
    const DurabilityOptions& durability, const IndexOptions& options,
    BatchReport* report) {
  std::string dir;
  NP_ASSIGN_OR_RETURN(dir, ResolveDataDir(durability));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError(StrFormat(
        "CreateDurable: cannot create data directory '%s': %s", dir.c_str(),
        ec.message().c_str()));
  }
  Result<IdentificationIndex> created = Create(reference, options, report);
  if (!created.ok()) return created.status();
  IdentificationIndex index = std::move(created).value();
  index.durability_ = durability;
  index.durability_.data_dir = dir;
  index.snapshot_path_ = SnapshotPathIn(dir);
  // Sweep the temp a crashed snapshot writer may have left; it is inert
  // (Commit never ran) but should not accumulate.
  std::filesystem::remove(index.snapshot_path_ + ".tmp", ec);

  std::vector<std::uint8_t> image;
  NP_ASSIGN_OR_RETURN(image, index.SerializeSnapshot());
  NP_RETURN_IF_ERROR(
      AtomicWriteFile(index.snapshot_path_, image.data(), image.size()));
  index.snapshot_bytes_ = image.size();
  metrics::Count("service.snapshot_saves", 1);
  metrics::SetGauge("service.snapshot_bytes",
                    static_cast<double>(image.size()));

  // A fresh journal: Open at offset 0 truncates whatever a previous
  // incarnation left (its state is superseded by the snapshot above).
  JournalOptions journal_options;
  journal_options.sync_every = durability.sync_every;
  Result<JournalWriter> journal =
      JournalWriter::Open(JournalPathIn(dir), 0, journal_options);
  if (!journal.ok()) return journal.status();
  index.journal_ =
      std::make_unique<JournalWriter>(std::move(journal).value());
  return index;
}

Result<IdentificationIndex> IdentificationIndex::OpenDurable(
    const DurabilityOptions& durability, const IndexOptions& options) {
  std::string dir;
  NP_ASSIGN_OR_RETURN(dir, ResolveDataDir(durability));
  const std::string snapshot_path = SnapshotPathIn(dir);
  const std::string journal_path = JournalPathIn(dir);
  std::error_code ec;
  std::filesystem::remove(snapshot_path + ".tmp", ec);

  Result<IdentificationIndex> opened =
      OpenFromSnapshot(snapshot_path, options);
  if (!opened.ok()) return opened.status();
  IdentificationIndex index = std::move(opened).value();
  index.durability_ = durability;
  index.durability_.data_dir = dir;
  index.snapshot_path_ = snapshot_path;
  const std::uintmax_t snapshot_bytes =
      std::filesystem::file_size(snapshot_path, ec);
  if (ec) {
    return Status::IOError("OpenDurable: cannot stat snapshot: " +
                           snapshot_path);
  }
  index.snapshot_bytes_ = static_cast<std::uint64_t>(snapshot_bytes);

  // Replay the committed mutations since that snapshot. A torn tail
  // (crash mid-append) ends the valid prefix and is truncated by the
  // writer below; a record that passes CRC but fails to decode is real
  // corruption and aborts the open.
  JournalScan scan;
  {
    Result<JournalScan> replayed = ReplayJournal(
        journal_path,
        [&index](const std::uint8_t* payload, std::size_t size) {
          return index.ApplyJournalRecord(payload, size);
        });
    if (!replayed.ok()) return replayed.status();
    scan = *replayed;
  }
  metrics::Count("service.journal_replays", 1);
  metrics::Count("service.journal_records_replayed", scan.records);

  JournalOptions journal_options;
  journal_options.sync_every = durability.sync_every;
  Result<JournalWriter> journal =
      JournalWriter::Open(journal_path, scan.valid_bytes, journal_options);
  if (!journal.ok()) return journal.status();
  index.journal_ =
      std::make_unique<JournalWriter>(std::move(journal).value());

  // A journal that already outgrew its snapshot compacts now, so reopen
  // cost stays bounded across many crash/reopen cycles.
  NP_RETURN_IF_ERROR(index.MaybeCompact());
  return index;
}

Status IdentificationIndex::Checkpoint() {
  if (!durable()) {
    return Status::FailedPrecondition(
        "Checkpoint: index has no journal (CreateDurable/OpenDurable)");
  }
  std::vector<std::uint8_t> image;
  NP_ASSIGN_OR_RETURN(image, SerializeSnapshot());
  NP_RETURN_IF_ERROR(
      AtomicWriteFile(snapshot_path_, image.data(), image.size()));
  snapshot_bytes_ = image.size();
  metrics::Count("service.snapshot_saves", 1);
  metrics::SetGauge("service.snapshot_bytes",
                    static_cast<double>(image.size()));
  // Crash window: the snapshot is published but the journal still holds
  // the records it absorbed. Safe — replay skips already-present enrolls
  // and already-absent removes, so the next open converges to the same
  // state.
  NP_RETURN_IF_ERROR(journal_->TruncateTo(0));
  metrics::Count("service.checkpoints", 1);
  return Status::OK();
}

Status IdentificationIndex::MaybeCompact() {
  if (!durable() || durability_.compact_min_bytes == 0) return Status::OK();
  const std::uint64_t journal_bytes = journal_->size_bytes();
  if (journal_bytes < durability_.compact_min_bytes) return Status::OK();
  if (static_cast<double>(journal_bytes) <
      durability_.compact_ratio * static_cast<double>(snapshot_bytes_)) {
    return Status::OK();
  }
  metrics::Count("service.compactions", 1);
  return Checkpoint();
}

}  // namespace neuroprint::service
