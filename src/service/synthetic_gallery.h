// Seeded synthetic galleries for exercising the identification service at
// scale without running the full simulation pipeline.
//
// Each subject owns a persistent feature "signature" drawn from a seed that
// depends only on (config.seed, subject index); a session adds fresh
// zero-mean noise drawn from (config.seed, subject index, session). Two
// sessions of the same gallery therefore share signatures but not noise —
// exactly the repeat-scan structure the paper's attack exploits — so a
// session-1 probe set is identifiable against a session-0 gallery with
// accuracy controlled by noise_scale.
//
// Real connectome cohorts are not isotropic: subjects share population,
// site, and family structure, which is what makes cluster-pruned search
// effective. num_communities > 0 models that by blending each signature
// from a shared per-community direction (subject % num_communities) and
// an individual remainder, with community_weight controlling the shared
// variance fraction. The default (0) keeps signatures fully independent.
//
// Columns are generated independently per subject (every subject re-seeds
// its own Rng), so generation parallelizes over subjects and the result is
// bitwise-identical at any thread count and for any subject subset.

#ifndef NEUROPRINT_SERVICE_SYNTHETIC_GALLERY_H_
#define NEUROPRINT_SERVICE_SYNTHETIC_GALLERY_H_

#include <cstdint>
#include <string>

#include "connectome/group_matrix.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace neuroprint::service {

struct SyntheticGalleryConfig {
  /// Gallery population; ids are SyntheticSubjectId(0..num_subjects-1).
  std::size_t num_subjects = 1000;
  /// Feature dimension of every column.
  std::size_t num_features = 256;
  /// Standard deviation of the per-subject persistent signature.
  double signature_scale = 1.0;
  /// Standard deviation of the per-session noise added on top.
  double noise_scale = 0.35;
  /// Communities sharing a signature component (0 = none: fully
  /// independent subjects). Subject j belongs to community
  /// j % num_communities.
  std::size_t num_communities = 0;
  /// Fraction of signature variance shared within a community (ignored
  /// when num_communities == 0). Must be in [0, 1).
  double community_weight = 0.75;
  /// Master seed; equal configs give bitwise-equal galleries.
  std::uint64_t seed = 0x67616c6c65727931ULL;
  /// Threading for column generation (0 = default chain).
  ParallelContext parallel;
};

/// Canonical id of gallery subject `index` ("G000042").
std::string SyntheticSubjectId(std::size_t index);

/// Generates one session of the gallery (features x subjects). `session` 0
/// is conventionally the enrolled gallery and 1, 2, ... are probe scans.
Result<connectome::GroupMatrix> MakeSyntheticGallery(
    const SyntheticGalleryConfig& config, std::uint64_t session);

/// Generates the columns for a contiguous id range [begin, end) of the
/// same gallery — bitwise-identical to the corresponding columns of the
/// full MakeSyntheticGallery result. Lets benches enroll a large gallery
/// in bounded-memory batches.
Result<connectome::GroupMatrix> MakeSyntheticGallerySlice(
    const SyntheticGalleryConfig& config, std::uint64_t session,
    std::size_t begin, std::size_t end);

}  // namespace neuroprint::service

#endif  // NEUROPRINT_SERVICE_SYNTHETIC_GALLERY_H_
