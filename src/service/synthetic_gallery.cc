#include "service/synthetic_gallery.h"

#include <cmath>
#include <utility>
#include <vector>

#include "util/random.h"
#include "util/string_util.h"

namespace neuroprint::service {
namespace {

// SplitMix64 finalizer: decorrelates the structured (seed, subject,
// session) tuples before they become Rng seeds.
std::uint64_t MixSeed(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  std::uint64_t z = a;
  z ^= b + 0x9e3779b97f4a7c15ULL + (z << 6) + (z >> 2);
  z ^= c + 0x9e3779b97f4a7c15ULL + (z << 6) + (z >> 2);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

// Session tag for the persistent signature stream; real sessions use their
// own value so signature and noise streams never collide.
constexpr std::uint64_t kSignatureStream = 0xf1f1f1f1f1f1f1f1ULL;
// Tag for the per-community shared-direction stream.
constexpr std::uint64_t kCommunityStream = 0xc033c033c033c033ULL;

}  // namespace

std::string SyntheticSubjectId(std::size_t index) {
  return StrFormat("G%06zu", index);
}

Result<connectome::GroupMatrix> MakeSyntheticGallerySlice(
    const SyntheticGalleryConfig& config, std::uint64_t session,
    std::size_t begin, std::size_t end) {
  if (config.num_features == 0) {
    return Status::InvalidArgument("synthetic gallery needs num_features > 0");
  }
  if (begin >= end || end > config.num_subjects) {
    return Status::InvalidArgument(
        StrFormat("synthetic gallery slice [%zu, %zu) out of range for %zu "
                  "subjects",
                  begin, end, config.num_subjects));
  }
  if (config.community_weight < 0.0 || config.community_weight >= 1.0) {
    return Status::InvalidArgument(
        "synthetic gallery community_weight must be in [0, 1)");
  }
  // Variance split between the shared community direction and the
  // individual remainder (signature variance stays signature_scale^2).
  const double shared =
      config.num_communities > 0 ? std::sqrt(config.community_weight) : 0.0;
  const double solo = config.num_communities > 0
                          ? std::sqrt(1.0 - config.community_weight)
                          : 1.0;
  const std::size_t count = end - begin;
  std::vector<linalg::Vector> columns(count);
  std::vector<std::string> ids(count);
  ParallelFor(config.parallel, 0, count, GrainForWork(4 * config.num_features),
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t j = lo; j < hi; ++j) {
                  const std::size_t subject = begin + j;
                  Rng signature_rng(
                      MixSeed(config.seed, subject, kSignatureStream));
                  Rng noise_rng(MixSeed(config.seed, subject, session));
                  // Every member of a community regenerates the same
                  // shared stream, so slices stay order-independent.
                  Rng community_rng(
                      config.num_communities > 0
                          ? MixSeed(config.seed ^ kCommunityStream,
                                    subject % config.num_communities,
                                    kSignatureStream)
                          : 0);
                  linalg::Vector column(config.num_features);
                  for (std::size_t f = 0; f < config.num_features; ++f) {
                    double signature = solo * signature_rng.Gaussian();
                    if (config.num_communities > 0) {
                      signature += shared * community_rng.Gaussian();
                    }
                    column[f] = config.signature_scale * signature +
                                config.noise_scale * noise_rng.Gaussian();
                  }
                  columns[j] = std::move(column);
                  ids[j] = SyntheticSubjectId(subject);
                }
              });
  return connectome::GroupMatrix::FromFeatureColumns(columns, std::move(ids));
}

Result<connectome::GroupMatrix> MakeSyntheticGallery(
    const SyntheticGalleryConfig& config, std::uint64_t session) {
  if (config.num_subjects == 0) {
    return Status::InvalidArgument("synthetic gallery needs num_subjects > 0");
  }
  return MakeSyntheticGallerySlice(config, session, 0, config.num_subjects);
}

}  // namespace neuroprint::service
