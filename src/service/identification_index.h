// Gallery-scale identification service: a long-lived, sharded,
// incrementally-updatable index over the leverage-selected feature
// subspace, replacing the one-shot Fit + linear-matcher scan of
// core/attack.h for serving workloads.
//
// Architecture (see docs/ANALYSIS.md "Identification service"):
//
//   * Subspace. Create() fits leverage scores on a reference gallery
//     (exactly like DeanonymizationAttack::Fit) and keeps the top-t
//     feature rows. Every enrolled subject stores only its mean-centered,
//     unit-normalized restriction to those rows, so similarity against a
//     probe is one dot product equal to the Pearson correlation the
//     brute-force matcher computes over the same feature set
//     (Ravindra/Drineas/Grama: leverage-compressed fingerprints stay
//     discriminative at very small dimension).
//
//   * Sharding. Subjects are assigned to a fixed number of shards by a
//     pure hash of the subject id (ShardOf), so the assignment is stable
//     across processes, enrollment orders, and thread counts. Probes fan
//     out over (probe x shard) work items on the work-stealing pool and
//     the per-shard candidates are merged in ascending shard order, so
//     IdentifyBatch output is bitwise-identical at any thread count.
//
//   * Incremental enrollment. Enroll/Remove update one shard without
//     refitting the subspace. Mutations since the last (re)fit are
//     counted as the sketch staleness (gauge `service.sketch_staleness`);
//     RefreshSketch() refits leverage on the current gallery — requires
//     retain_full_columns — and IndexOptions::refresh_interval makes that
//     happen automatically every N mutations.
//
//   * Sublinear search. Each shard clusters its members with a seeded,
//     deterministic k-means over the unit fingerprints. A probe scores
//     every centroid, visits clusters in decreasing similarity-bound
//     order, and prunes clusters whose cosine ball bound cannot beat the
//     best candidate found so far — an exact top-1 search (the bound is
//     conservative by kPruneSlack). Low-margin matches additionally fall
//     back to an exact full rescore (exact_rescore_margin), so reported
//     margins for near-ties are exact too.
//
// Determinism contract: index state is a pure function of the option set
// and the sequence of committed mutations; IdentifyBatch results are
// bitwise-identical at any thread count (asserted by the `service` and
// `concurrency` test tiers). Ties on similarity break toward the
// lexicographically smaller subject id, independent of shard layout.
//
//   * Durability (optional; see docs/ANALYSIS.md "Durability & crash
//     recovery"). CreateDurable/OpenDurable bind the index to a data
//     directory holding a checksummed snapshot ("NPIX", published
//     atomically via util/journal.h AtomicFileWriter) plus a write-ahead
//     journal. Every committed mutation is journaled — fsynced per
//     DurabilityOptions::sync_every — *before* it touches a shard, so
//     after a crash OpenDurable recovers exactly the committed state:
//     snapshot, then replay of every CRC-valid journal record, with the
//     torn tail of a mid-append crash truncated rather than rejected.
//     The recovered index's DebugStateString is bit-identical to a
//     never-crashed index over the same member set (the `durability`
//     test tier sweeps a crash into every journal/snapshot I/O site to
//     prove it). Checkpoint() compacts: fresh snapshot, journal
//     truncated to zero; compaction also triggers automatically once the
//     journal outgrows DurabilityOptions::compact_min_bytes and
//     compact_ratio x the snapshot.

#ifndef NEUROPRINT_SERVICE_IDENTIFICATION_INDEX_H_
#define NEUROPRINT_SERVICE_IDENTIFICATION_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "connectome/group_matrix.h"
#include "connectome/matrix_store.h"
#include "core/leverage.h"
#include "util/batch.h"
#include "util/fault.h"
#include "util/journal.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace neuroprint::service {

struct IndexOptions {
  /// Leverage-selected features to keep (clamped to the reference
  /// gallery's feature count, like AttackOptions::num_features).
  std::size_t num_features = 100;
  /// Fixed shard count; subject -> shard assignment is ShardOf(id) and
  /// never changes for the lifetime of the index. Must be >= 1.
  std::size_t num_shards = 8;
  /// k-means clusters per shard. 0 picks ceil(sqrt(shard_size)) per
  /// shard (re-derived on every rebuild); 1 makes every shard one flat
  /// cluster (no pruning).
  std::size_t clusters_per_shard = 0;
  /// Shards smaller than this stay flat (one cluster): pruning overhead
  /// only pays off once a shard has enough members to skip.
  std::size_t min_cluster_shard_size = 32;
  /// Lloyd iterations per cluster rebuild (fixed count — no
  /// convergence-dependent control flow, so rebuilds are deterministic).
  std::size_t kmeans_iterations = 8;
  /// Seed for the per-shard k-means initialization.
  std::uint64_t seed = 0x6e70736572766963ULL;
  /// A probe whose pruned-search margin (best - runner-up among scanned
  /// candidates) falls below this threshold is rescored exactly against
  /// the full gallery, making low-margin results (and their margins)
  /// identical to brute force. <= 0 disables the fallback.
  double exact_rescore_margin = 0.02;
  /// Mutations (enrolls + removals) between automatic sketch refreshes;
  /// 0 means refresh only when RefreshSketch() is called explicitly.
  /// Automatic refresh requires retain_full_columns.
  std::size_t refresh_interval = 0;
  /// Subjects the refit samples from the gallery (evenly strided over the
  /// canonical id order, clamped so the leverage input stays tall:
  /// ComputeLeverageScores requires features >= subjects). Keeps
  /// RefreshSketch O(features * sample) instead of O(features * gallery).
  std::size_t refresh_sample = 256;
  /// Keep every subject's full feature column so RefreshSketch can refit
  /// the subspace. Disable for memory-lean serving (the 50k-subject
  /// bench does); RefreshSketch then returns FailedPrecondition.
  bool retain_full_columns = true;
  /// Feature-selection knobs for Create/RefreshSketch (sketch = true
  /// runs the randomized-sketch leverage path).
  core::LeverageOptions leverage;
  /// Threads for enrollment screening and sharded probing (never changes
  /// results).
  ParallelContext parallel;
  /// Observability toggle for this index's operations (see util/trace.h).
  trace::TraceConfig trace;
  /// How EnrollBatch / IdentifyBatch treat unusable subjects (non-finite
  /// columns, duplicate ids, injected faults): fail-fast errors on the
  /// lowest-index item and leaves the index unchanged; skip-and-report /
  /// quorum drop them into the BatchReport and commit the survivors.
  FailurePolicy failure_policy;
  /// Fault injection for this index's operations (points
  /// `service.enroll`, `service.probe`, `service.refresh`).
  fault::FaultConfig fault;
};

/// Where and how a durable index persists itself (CreateDurable /
/// OpenDurable). The data directory holds exactly two live files —
/// `snapshot.npix` and `journal.wal` — plus, transiently, the
/// `snapshot.npix.tmp` an in-flight (or crashed) snapshot writer leaves
/// behind; open sweeps the stale temp away.
struct DurabilityOptions {
  /// Data directory. Empty falls back to NEUROPRINT_DATA_DIR (latched at
  /// first use, like the other env knobs); when both are empty the durable
  /// factories fail with an error naming the variable. Created (with
  /// parents) by CreateDurable.
  std::string data_dir;
  /// Journal fsync cadence, forwarded to JournalOptions::sync_every: 1
  /// (default) makes every mutation durable before it commits; N batches
  /// fsyncs so a crash can lose up to the last N - 1 mutations (recovery
  /// still yields a clean prefix of the committed sequence).
  std::size_t sync_every = 1;
  /// Auto-compaction floor: the journal must reach this many bytes before
  /// a mutation considers checkpointing. 0 compacts only via Checkpoint().
  std::uint64_t compact_min_bytes = 4ull << 20;
  /// ... and must also exceed this multiple of the snapshot's size (a
  /// journal that out-grows its snapshot costs more to replay than a
  /// fresh snapshot costs to write).
  double compact_ratio = 1.0;
};

/// One probe's identification outcome.
struct IdentifyMatch {
  std::string subject_id;  ///< Best-matching gallery identity.
  double similarity = 0.0;  ///< Pearson correlation in the subspace.
  /// best - runner-up similarity. Exact whenever it is below
  /// exact_rescore_margin (fallback rescore) or pruning is off;
  /// otherwise computed among scanned candidates (an upper bound).
  double margin = 0.0;
  /// Gallery members actually scored for this probe (== gallery size
  /// for a brute-force scan; less when cluster pruning skipped work).
  std::size_t candidates_scanned = 0;
};

/// Outcome of IdentifyBatch over the surviving probes, in their original
/// probe order.
struct BatchIdentifyResult {
  std::vector<std::string> probe_ids;  ///< Ids of surviving probes.
  std::vector<IdentifyMatch> matches;  ///< One per surviving probe.
  /// Fraction of surviving probes whose best match equals their own id
  /// (probes carry ground-truth ids, as in AttackResult::accuracy).
  double accuracy = 0.0;
};

class IdentificationIndex {
 public:
  /// Fits the feature subspace on `reference` (its subjects become the
  /// initial gallery) under `options`. Screens reference subjects by the
  /// failure policy like DeanonymizationAttack::Fit (stage
  /// "enroll_screen" in `report`).
  static Result<IdentificationIndex> Create(
      const connectome::GroupMatrix& reference,
      const IndexOptions& options = {}, BatchReport* report = nullptr);

  /// Create() plus durability: creates the data directory, writes the
  /// initial snapshot, and opens a fresh journal. Every subsequent
  /// mutation is write-ahead journaled. Fails if the directory cannot be
  /// resolved (see DurabilityOptions::data_dir) or the initial snapshot
  /// cannot be published.
  static Result<IdentificationIndex> CreateDurable(
      const connectome::GroupMatrix& reference,
      const DurabilityOptions& durability, const IndexOptions& options = {},
      BatchReport* report = nullptr);

  /// Reopens a durable index from its data directory: sweeps stale
  /// snapshot temps, loads the snapshot, replays every CRC-valid journal
  /// record (a torn tail is truncated, never fatal; records made
  /// redundant by a prior compaction are skipped), and resumes journaling
  /// at the validated offset. `options` must match the ones the index
  /// was created with — the snapshot carries the fitted subspace, not the
  /// option set.
  static Result<IdentificationIndex> OpenDurable(
      const DurabilityOptions& durability, const IndexOptions& options = {});

  /// Writes a point-in-time snapshot of this index to `path` (atomic
  /// publish, CRC-checksummed). Works on non-durable indexes too.
  Status SaveSnapshot(const std::string& path) const;

  /// Loads an index from a SaveSnapshot file. `options` must match the
  /// writer's (in particular retain_full_columns and num_shards). The
  /// loaded index is not durable; OpenDurable builds on this.
  static Result<IdentificationIndex> OpenFromSnapshot(
      const std::string& path, const IndexOptions& options = {});

  /// Durable indexes only: publishes a fresh snapshot and truncates the
  /// journal to zero (compaction). Crash-safe at every step — a crash
  /// between the snapshot rename and the truncate just leaves redundant
  /// journal records for the next open to skip.
  Status Checkpoint();

  /// True when mutations are write-ahead journaled (CreateDurable /
  /// OpenDurable).
  bool durable() const { return journal_ != nullptr; }

  /// Journal bytes pending compaction (0 for a non-durable index).
  std::uint64_t journal_size_bytes() const {
    return journal_ == nullptr ? 0 : journal_->size_bytes();
  }

  /// Enrolls one subject (full-feature column, same space the index was
  /// fitted on). Fails with AlreadyExists for a duplicate id,
  /// InvalidArgument for a dimension mismatch, CorruptData for
  /// non-finite values. May trigger an automatic sketch refresh.
  Status Enroll(const std::string& subject_id,
                const linalg::Vector& full_features);

  /// Enrolls every subject of `subjects` under the index failure policy.
  /// Fail-fast leaves the index untouched on any error; skip-and-report /
  /// quorum commit the survivors (stage "enroll_screen" / "enroll" in
  /// `report`, which may be null).
  Status EnrollBatch(const connectome::GroupMatrix& subjects,
                     BatchReport* report = nullptr);

  /// Out-of-core EnrollBatch: pulls subject columns from `subjects` in
  /// windows of `window_cols` (0 derives a width from the memory budget,
  /// see connectome::DeriveWindowCols), so peak RSS is one window of full
  /// columns plus the fingerprints instead of the whole cohort. When the
  /// index retains full columns they spill to disk (util/spill.h) during
  /// staging and are read back only at commit. Index state, report
  /// contents, and failure semantics are identical to EnrollBatch over
  /// the materialized store at any window size; a store or spill I/O
  /// failure (including the `io.stream` / `io.spill` fault points) fails
  /// the call with the index bit-unchanged.
  Status EnrollStream(const connectome::MatrixStore& subjects,
                      BatchReport* report = nullptr,
                      std::size_t window_cols = 0);

  /// Removes one subject. NotFound when the id is not enrolled. The
  /// resulting index state is identical to one that never enrolled the
  /// subject (the enroll/remove round-trip property).
  Status Remove(const std::string& subject_id);

  /// True when the subject is enrolled.
  bool Contains(const std::string& subject_id) const;

  /// Enrolled gallery size.
  std::size_t size() const { return size_; }

  /// Every enrolled id, ascending (canonical order).
  std::vector<std::string> EnrolledIds() const;

  /// The shard a subject id maps to: a pure function of (id, num_shards),
  /// stable across processes and enrollment orders.
  std::size_t ShardOf(const std::string& subject_id) const;

  /// Feature rows (into the full feature space) the index matches on.
  const std::vector<std::size_t>& selected_features() const {
    return selected_features_;
  }

  /// Mutations committed since the subspace was last (re)fitted. Also
  /// exported as the gauge `service.sketch_staleness`.
  std::size_t sketch_staleness() const { return sketch_staleness_; }

  /// Refits the leverage subspace on the current gallery, re-projects
  /// every member, and resets the staleness counter. Requires
  /// retain_full_columns and a non-empty gallery.
  Status RefreshSketch();

  /// Identifies one probe (full-feature column) against the gallery via
  /// the sharded, cluster-pruned search. FailedPrecondition on an empty
  /// gallery; InvalidArgument on a dimension mismatch; CorruptData on a
  /// non-finite probe (the screening convention of core/attack.h).
  Result<IdentifyMatch> Identify(const linalg::Vector& probe_features);

  /// Identifies every probe of `probes` concurrently ((probe x shard)
  /// work items on the thread pool, merged in shard order — bitwise
  /// identical at any thread count). Probes with non-finite columns are
  /// screened by the index failure policy (stage "probe_screen"; faults
  /// at `service.probe` count as probe failures under skip/quorum).
  Result<BatchIdentifyResult> IdentifyBatch(
      const connectome::GroupMatrix& probes, BatchReport* report = nullptr);

  /// The exact linear-scan oracle: identical tie-break and output shape
  /// to IdentifyBatch with pruning disabled. Used by the property/soak
  /// tests and the bench to prove top-1 parity; costs O(gallery) per
  /// probe.
  Result<BatchIdentifyResult> IdentifyBatchBruteForce(
      const connectome::GroupMatrix& probes, BatchReport* report = nullptr);

  /// Canonical dump of the observable index state — per shard: entry ids,
  /// fingerprint bytes (hex, bitwise), cluster memberships and radii.
  /// Two indexes with equal dumps answer every query identically; the
  /// property tests compare dumps for the enroll/remove round-trip.
  std::string DebugStateString();

 private:
  struct Entry {
    std::string id;
    /// Mean-centered, unit-normalized selected-feature fingerprint (all
    /// zeros for a zero-variance subject, matching the matcher's
    /// correlation-0 convention).
    linalg::Vector fingerprint;
    /// Retained full feature column (empty unless retain_full_columns).
    linalg::Vector full;
  };
  struct Cluster {
    linalg::Vector centroid;          ///< Unit norm (or zero).
    double cos_radius = 1.0;          ///< cos(max angle to a member).
    double sin_radius = 0.0;
    std::vector<std::size_t> members;  ///< Entry indices, ascending.
  };
  struct Shard {
    std::vector<Entry> entries;  ///< Sorted by id.
    std::vector<Cluster> clusters;
    bool clusters_dirty = true;
  };
  /// Per-(probe, shard) candidate produced by the parallel fan-out and
  /// consumed by the ordered merge.
  struct ShardCandidate {
    std::size_t best_entry = 0;
    std::size_t shard = 0;
    double best = 0.0;
    double second = 0.0;
    std::size_t scanned = 0;
    bool has_best = false;
    bool has_second = false;
  };

  /// An enroll staged for commit: the screened column a journal record
  /// must capture byte-for-byte (replay re-derives the fingerprint from
  /// it, so recovery is bit-identical).
  struct PendingEnroll {
    const std::string* id = nullptr;
    const linalg::Vector* column = nullptr;
  };

  IdentificationIndex() = default;

  Status EnrollLocked(const std::string& subject_id,
                      const linalg::Vector& full_features,
                      std::uint64_t fault_key);
  /// Inserts a screened subject into its shard — the commit half of
  /// every enroll path; cannot fail.
  void CommitEnroll(const std::string& subject_id, linalg::Vector column);
  /// Write-ahead journals a batch of staged enrolls as ONE record (no-op
  /// when not durable). An error means nothing reached the disk and no
  /// shard may be touched.
  Status JournalEnrolls(const std::vector<PendingEnroll>& pending);
  Status JournalRemove(const std::string& subject_id);
  /// Applies one replayed journal record. Enrolls of already-present ids
  /// and removals of absent ids are skipped, not errors: a checkpoint
  /// that crashed before truncating its journal leaves records the
  /// snapshot already contains. Malformed payloads are CorruptData.
  Status ApplyJournalRecord(const std::uint8_t* payload, std::size_t size);
  /// Checkpoint() when the journal has outgrown the compaction trigger.
  Status MaybeCompact();
  Result<std::vector<std::uint8_t>> SerializeSnapshot() const;
  Status EnrollMatrixColumns(const connectome::GroupMatrix& subjects,
                             BatchReport* report);
  linalg::Vector MakeFingerprint(const linalg::Vector& full_features) const;
  void RebuildDirtyClusters();
  void RebuildShardClusters(std::size_t shard_index);
  void ProbeShard(const linalg::Vector& probe_fingerprint,
                  std::size_t shard_index, bool brute_force,
                  ShardCandidate* out) const;
  IdentifyMatch MergeShardCandidates(const ShardCandidate* candidates,
                                     std::size_t count) const;
  Result<BatchIdentifyResult> IdentifyBatchImpl(
      const connectome::GroupMatrix& probes, BatchReport* report,
      bool brute_force);
  void NoteMutation();
  /// Runs RefreshSketch when the auto-refresh cadence is due. An
  /// auto-refresh failure is returned by the mutation that triggered it
  /// (the mutation itself stays committed).
  Status MaybeAutoRefresh();

  IndexOptions options_;
  std::size_t full_feature_count_ = 0;
  std::vector<std::size_t> selected_features_;
  std::vector<Shard> shards_;
  std::size_t size_ = 0;
  std::size_t sketch_staleness_ = 0;
  /// Durability state (null journal <=> not durable). The unique_ptr
  /// makes the index move-only, which every caller already treats it as.
  std::unique_ptr<JournalWriter> journal_;
  DurabilityOptions durability_;
  std::string snapshot_path_;
  std::uint64_t snapshot_bytes_ = 0;
};

/// Seeded deterministic FNV-1a of a subject id — the shard hash. Exposed
/// so tests can assert the assignment is a pure function of the id.
std::uint64_t SubjectHash(const std::string& subject_id);

/// Latched NEUROPRINT_DATA_DIR (empty when unset): the fallback data
/// directory for durable indexes when DurabilityOptions::data_dir is
/// empty.
const std::string& DataDirectory();

}  // namespace neuroprint::service

#endif  // NEUROPRINT_SERVICE_IDENTIFICATION_INDEX_H_
