// Synthetic parcellation generation.
//
// We do not ship the (restricted) Glasser or AAL2 label files; instead we
// grow a parcellation with the same statistical shape: seed points sampled
// inside an ellipsoidal brain mask, grown by a Voronoi flood so parcels
// are compact, contiguous, and tile the whole mask — the properties the
// paper's Section 3.2.2 lists as desirable. Presets match the paper's two
// atlases in region count (360 Glasser-like, 116 AAL2-like -> 6670
// region-pair features).

#ifndef NEUROPRINT_ATLAS_SYNTHETIC_ATLAS_H_
#define NEUROPRINT_ATLAS_SYNTHETIC_ATLAS_H_

#include <cstdint>

#include "atlas/atlas.h"
#include "util/random.h"
#include "util/status.h"

namespace neuroprint::atlas {

struct SyntheticAtlasConfig {
  std::size_t nx = 32;
  std::size_t ny = 38;
  std::size_t nz = 32;
  std::size_t num_regions = 360;
  /// Ellipsoid semi-axes as a fraction of each half-dimension.
  double mask_fraction = 0.9;
  std::uint64_t seed = 17;
};

/// Grows a Voronoi parcellation of an ellipsoidal mask. Fails if the mask
/// has fewer voxels than regions.
Result<Atlas> GenerateSyntheticAtlas(const SyntheticAtlasConfig& config);

/// 360-region preset mirroring the Glasser HCP parcellation's region count.
Result<Atlas> GlasserLikeAtlas(std::uint64_t seed = 17);

/// 116-region preset mirroring AAL2 (116 * 115 / 2 = 6670 edge features,
/// the count the paper reports for ADHD-200).
Result<Atlas> Aal2LikeAtlas(std::uint64_t seed = 23);

}  // namespace neuroprint::atlas

#endif  // NEUROPRINT_ATLAS_SYNTHETIC_ATLAS_H_
