// Atlas <-> NIfTI label-volume conversion. Real parcellations (Glasser,
// AAL2) ship as integer label images in NIfTI format; these helpers let
// neuroprint load such files and persist its synthetic atlases the same
// way, so external tools can inspect them.

#ifndef NEUROPRINT_ATLAS_ATLAS_IO_H_
#define NEUROPRINT_ATLAS_ATLAS_IO_H_

#include <string>

#include "atlas/atlas.h"
#include "image/volume.h"
#include "util/status.h"

namespace neuroprint::atlas {

/// Interprets a 3-D volume of integer labels as an atlas. Labels must be
/// non-negative integers (values are rounded; 0 is background); the
/// region count is the maximum label. Fails on negative or non-integral
/// labels and on empty regions (every label in 1..max must occur).
Result<Atlas> AtlasFromLabelVolume(const image::Volume3D& labels);

/// Renders the atlas as a float label volume (for WriteNifti).
image::Volume3D AtlasToLabelVolume(const Atlas& atlas);

/// Reads an atlas from a NIfTI label image (.nii or .nii.gz; must be 3-D).
Result<Atlas> ReadAtlasNifti(const std::string& path);

/// Writes the atlas as an int16 NIfTI label image.
Status WriteAtlasNifti(const std::string& path, const Atlas& atlas);

}  // namespace neuroprint::atlas

#endif  // NEUROPRINT_ATLAS_ATLAS_IO_H_
