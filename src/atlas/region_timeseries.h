// Collapsing a 4-D run into region-average time series — the atlas step
// of the paper's pipeline: a voxel x time matrix becomes region x time by
// averaging all voxels with the same label.

#ifndef NEUROPRINT_ATLAS_REGION_TIMESERIES_H_
#define NEUROPRINT_ATLAS_REGION_TIMESERIES_H_

#include "atlas/atlas.h"
#include "image/volume.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace neuroprint::atlas {

/// Averages voxel time series within each atlas region. Output is a
/// num_regions x nt matrix (row r = region r+1's mean series). Grid
/// dimensions of run and atlas must match. Empty regions are rejected by
/// Atlas::Validate at construction, so every row is a true average.
Result<linalg::Matrix> ExtractRegionTimeSeries(const image::Volume4D& run,
                                               const Atlas& atlas);

}  // namespace neuroprint::atlas

#endif  // NEUROPRINT_ATLAS_REGION_TIMESERIES_H_
